package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. The zero value is LevelInfo, so a zero-configured
// logger defaults to the conventional production level.
type Level int32

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical lower-case level name.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel converts a level name ("debug", "info", "warn", "error",
// case-insensitive) into a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger is a leveled structured logger writing one line per record, either
// as readable text or as JSON. It is safe for concurrent use; loggers
// derived with With share the sink, mutex, and level with their parent. A
// nil *Logger is a valid no-op logger: every method is nil-receiver safe.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *atomic.Int32
	json  bool
	attrs []any // bound key/value pairs, flattened

	// now is the clock; overridable in tests for stable output.
	now func() time.Time
}

// New builds a logger writing to w. format selects the encoder, "text"
// (default when empty) or "json". Records below level are dropped.
func New(w io.Writer, format string, level Level) (*Logger, error) {
	var jsonEnc bool
	switch format {
	case "", "text":
	case "json":
		jsonEnc = true
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	l := &Logger{
		mu:    &sync.Mutex{},
		w:     w,
		level: &atomic.Int32{},
		json:  jsonEnc,
		now:   time.Now,
	}
	l.level.Store(int32(level))
	return l, nil
}

// SetLevel changes the minimum level at runtime (concurrency-safe).
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether records at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// With returns a logger that prepends the given key/value pairs to every
// record. The child shares the parent's sink and level.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := *l
	child.attrs = append(append([]any(nil), l.attrs...), kv...)
	return &child
}

// Debug, Info, Warn, and Error emit one record at the named level. kv is a
// flat list of alternating keys and values; a trailing key without a value
// is paired with "(MISSING)".
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := l.now().UTC().Format("2006-01-02T15:04:05.000Z")
	var buf []byte
	if l.json {
		buf = appendJSONRecord(buf, ts, level, msg, l.attrs, kv)
	} else {
		buf = appendTextRecord(buf, ts, level, msg, l.attrs, kv)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf) //nolint:errcheck // logging is best-effort by design
	l.mu.Unlock()
}

// pairs normalizes a flat kv list into (key, value) tuples.
func pairs(kv []any) [][2]any {
	out := make([][2]any, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		var v any = "(MISSING)"
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		out = append(out, [2]any{kv[i], v})
	}
	return out
}

func keyString(k any) string {
	if s, ok := k.(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

func appendTextRecord(buf []byte, ts string, level Level, msg string, attrs, kv []any) []byte {
	buf = append(buf, ts...)
	buf = append(buf, ' ')
	lv := strings.ToUpper(level.String())
	buf = append(buf, lv...)
	for i := len(lv); i < 5; i++ {
		buf = append(buf, ' ')
	}
	buf = append(buf, ' ')
	buf = appendTextValue(buf, msg)
	for _, p := range append(pairs(attrs), pairs(kv)...) {
		buf = append(buf, ' ')
		buf = append(buf, keyString(p[0])...)
		buf = append(buf, '=')
		buf = appendTextValue(buf, p[1])
	}
	return buf
}

// appendTextValue renders a value, quoting strings that would be ambiguous
// in key=value position.
func appendTextValue(buf []byte, v any) []byte {
	switch t := v.(type) {
	case string:
		if strings.ContainsAny(t, " \t\n\"=") || t == "" {
			return strconv.AppendQuote(buf, t)
		}
		return append(buf, t...)
	case error:
		return appendTextValue(buf, t.Error())
	case float64:
		return strconv.AppendFloat(buf, t, 'g', -1, 64)
	case float32:
		return strconv.AppendFloat(buf, float64(t), 'g', -1, 32)
	case fmt.Stringer:
		return appendTextValue(buf, t.String())
	default:
		return fmt.Append(buf, v)
	}
}

func appendJSONRecord(buf []byte, ts string, level Level, msg string, attrs, kv []any) []byte {
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendQuote(buf, ts)
	buf = append(buf, `,"level":`...)
	buf = strconv.AppendQuote(buf, level.String())
	buf = append(buf, `,"msg":`...)
	buf = strconv.AppendQuote(buf, msg)
	for _, p := range append(pairs(attrs), pairs(kv)...) {
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, keyString(p[0]))
		buf = append(buf, ':')
		buf = appendJSONValue(buf, p[1])
	}
	return append(buf, '}')
}

// appendJSONValue marshals one value, degrading to its string form when the
// value itself cannot be marshalled (channels, NaN floats, ...).
func appendJSONValue(buf []byte, v any) []byte {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	b, err := json.Marshal(v)
	if err != nil {
		return strconv.AppendQuote(buf, fmt.Sprint(v))
	}
	return append(buf, b...)
}

// ctxKey is the private context key for logger propagation.
type ctxKey struct{}

// IntoContext returns a context carrying the logger.
func IntoContext(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the logger carried by ctx, or nil (the no-op logger)
// when none was attached.
func FromContext(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(ctxKey{}).(*Logger)
	return l
}
