package obs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins the logger timestamp for exact output assertions.
func fixedClock(l *Logger) {
	ts := time.Date(2026, 8, 6, 10, 30, 0, 123e6, time.UTC)
	l.now = func() time.Time { return ts }
}

func TestTextFormat(t *testing.T) {
	var sb strings.Builder
	l, err := New(&sb, "text", LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	fixedClock(l)
	l.Info("gp: starting", "design", "adhoc64", "workers", 4, "overflow", 0.5, "note", "two words")
	got := sb.String()
	// The message is quoted by the same rule as values; "gp: starting"
	// contains a space, so it is quoted.
	want := `2026-08-06T10:30:00.123Z INFO  "gp: starting" design=adhoc64 workers=4 overflow=0.5 note="two words"` + "\n"
	if got != want {
		t.Errorf("text record:\n got %q\nwant %q", got, want)
	}
}

func TestJSONFormat(t *testing.T) {
	var sb strings.Builder
	l, err := New(&sb, "json", LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	fixedClock(l)
	l.Warn("drain", "budget", "30s", "jobs", 2, "err", errors.New("boom"))
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("JSON record does not parse: %v\n%s", err, sb.String())
	}
	for k, want := range map[string]any{
		"ts":     "2026-08-06T10:30:00.123Z",
		"level":  "warn",
		"msg":    "drain",
		"budget": "30s",
		"jobs":   2.0,
		"err":    "boom",
	} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v, want %v", k, rec[k], want)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l, err := New(&sb, "", LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown")
	if n := strings.Count(sb.String(), "shown"); n != 2 {
		t.Errorf("emitted %d records, want 2:\n%s", n, sb.String())
	}
	if strings.Contains(sb.String(), "hidden") {
		t.Errorf("suppressed levels leaked:\n%s", sb.String())
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel(debug) did not enable debug records")
	}
}

func TestWithBindsAttrs(t *testing.T) {
	var sb strings.Builder
	l, _ := New(&sb, "text", LevelInfo)
	fixedClock(l)
	jl := l.With("job", "job-000007")
	jl.Info("started", "model", "ME")
	if !strings.Contains(sb.String(), "job=job-000007 model=ME") {
		t.Errorf("bound attrs missing: %s", sb.String())
	}
	sb.Reset()
	l.Info("plain")
	if strings.Contains(sb.String(), "job=") {
		t.Errorf("With leaked attrs into parent: %s", sb.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	l.SetLevel(LevelDebug)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	if l.With("k", "v") != nil {
		t.Error("nil logger With != nil")
	}
}

func TestContextPropagation(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on empty context != nil")
	}
	l, _ := New(&strings.Builder{}, "text", LevelInfo)
	ctx := IntoContext(context.Background(), l)
	if FromContext(ctx) != l {
		t.Error("FromContext did not return the attached logger")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "Error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// TestConcurrentLogging is meaningful under -race: shared sink, shared
// level, derived loggers.
func TestConcurrentLogging(t *testing.T) {
	var sb safeBuilder
	l, _ := New(&sb, "json", LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			child := l.With("worker", i)
			for j := 0; j < 200; j++ {
				child.Info("tick", "j", j)
				if j%50 == 0 {
					l.SetLevel(LevelInfo)
				}
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved record is not valid JSON: %v\n%q", err, line)
		}
	}
}

// safeBuilder is a mutex-guarded strings.Builder; the logger serializes
// writes itself, but the final read in the test races a plain Builder.
type safeBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *safeBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *safeBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
