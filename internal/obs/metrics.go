package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Point is one convergence sample of a placement run. A non-positive HPWL
// means "not measured this iteration" (exact HPWL is only computed when a
// trajectory hook or recorder is active) and leaves the HPWL gauge as is.
type Point struct {
	Iter     int
	HPWL     float64
	Overflow float64
	Lambda   float64
	Param    float64 // smoothing parameter (gamma or the Moreau t)
	Step     float64 // optimizer step length (Barzilai-Borwein alpha)
}

// atomicFloat is a float64 with atomic load/store through its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Metrics is the convergence metrics registry of one placement run: live
// gauges, monotonic counters, cumulative per-phase seconds, and a free-form
// named-counter map for model-specific statistics. All methods are safe for
// concurrent use and nil-receiver safe.
type Metrics struct {
	// OnIteration, when non-nil, receives every iteration's wall time in
	// seconds; OnPhase receives every phase span's name and seconds. Both
	// must be set before the run starts and must be fast (they are invoked
	// from the placement goroutine — typical sinks are the atomic
	// Prometheus histograms of internal/service/telemetry).
	OnIteration func(seconds float64)
	OnPhase     func(phase string, seconds float64)

	iterations  atomic.Int64
	evaluations atomic.Int64
	checkpoints atomic.Int64

	iter                               atomic.Int64
	hpwl, overflow, lambda, param, bbs atomicFloat

	mu         sync.Mutex
	phaseSecs  map[string]float64
	phaseCalls map[string]int64
	counters   map[string]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		phaseSecs:  make(map[string]float64),
		phaseCalls: make(map[string]int64),
		counters:   make(map[string]int64),
	}
}

// IterationDone counts one completed optimizer iteration and forwards its
// duration to the OnIteration sink.
func (m *Metrics) IterationDone(d time.Duration) {
	if m == nil {
		return
	}
	m.iterations.Add(1)
	if m.OnIteration != nil {
		m.OnIteration(d.Seconds())
	}
}

// EvalDone counts one objective/gradient evaluation (including backtracking
// trials).
func (m *Metrics) EvalDone() {
	if m != nil {
		m.evaluations.Add(1)
	}
}

// CheckpointDone counts one snapshot written to disk.
func (m *Metrics) CheckpointDone() {
	if m != nil {
		m.checkpoints.Add(1)
	}
}

// Record updates the convergence gauges from one sample. HPWL <= 0 leaves
// the HPWL gauge untouched (see Point).
func (m *Metrics) Record(p Point) {
	if m == nil {
		return
	}
	m.iter.Store(int64(p.Iter))
	m.overflow.Store(p.Overflow)
	m.lambda.Store(p.Lambda)
	m.param.Store(p.Param)
	m.bbs.Store(p.Step)
	if p.HPWL > 0 {
		m.hpwl.Store(p.HPWL)
	}
}

// Count adds delta to a named counter (model- or caller-specific extras,
// e.g. Moreau kernel branch statistics).
func (m *Metrics) Count(name string, delta int64) {
	if m == nil || delta == 0 {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// observePhase accumulates one phase span and forwards it to OnPhase.
func (m *Metrics) observePhase(name string, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	m.phaseSecs[name] += sec
	m.phaseCalls[name]++
	m.mu.Unlock()
	if m.OnPhase != nil {
		m.OnPhase(name, sec)
	}
}

// Snapshot is a point-in-time copy of every metric in the registry.
type Snapshot struct {
	Iterations  int64
	Evaluations int64
	Checkpoints int64

	Iter     int
	HPWL     float64
	Overflow float64
	Lambda   float64
	Param    float64
	Step     float64

	PhaseSeconds map[string]float64
	PhaseCalls   map[string]int64
	Counters     map[string]int64
}

// Snapshot copies the registry. A nil registry yields a zero snapshot.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Iterations:   m.iterations.Load(),
		Evaluations:  m.evaluations.Load(),
		Checkpoints:  m.checkpoints.Load(),
		Iter:         int(m.iter.Load()),
		HPWL:         m.hpwl.Load(),
		Overflow:     m.overflow.Load(),
		Lambda:       m.lambda.Load(),
		Param:        m.param.Load(),
		Step:         m.bbs.Load(),
		PhaseSeconds: make(map[string]float64),
		PhaseCalls:   make(map[string]int64),
		Counters:     make(map[string]int64),
	}
	m.mu.Lock()
	for k, v := range m.phaseSecs {
		s.PhaseSeconds[k] = v
	}
	for k, v := range m.phaseCalls {
		s.PhaseCalls[k] = v
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	m.mu.Unlock()
	return s
}
