package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanEvent is one completed span: a named stretch of wall time, tagged with
// the global placement iteration it ran in (-1 outside the loop). TS and Dur
// are microseconds relative to the tracer's start, stored as float64 so they
// survive a JSON round-trip bit-exactly.
type SpanEvent struct {
	Name string  `json:"name"`
	Iter int     `json:"iter"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// MaxTraceEvents bounds a tracer's in-memory buffer; spans beyond it are
// counted in Dropped instead of recorded, so a runaway run cannot exhaust
// memory through its own instrumentation.
const MaxTraceEvents = 1 << 20

// Tracer records spans for one run. Span recording is safe for concurrent
// use; export methods may run concurrently with recording and see a
// consistent snapshot.
type Tracer struct {
	start   time.Time
	iter    atomic.Int64
	workers atomic.Int64

	mu      sync.Mutex
	events  []SpanEvent
	dropped int64
}

// NewTracer starts a tracer; spans are timestamped relative to this call.
func NewTracer() *Tracer {
	t := &Tracer{start: time.Now()}
	t.iter.Store(-1)
	return t
}

// SetWorkers records the run's worker-pool size (export metadata).
func (t *Tracer) SetWorkers(n int) {
	if t != nil {
		t.workers.Store(int64(n))
	}
}

// Workers returns the recorded worker-pool size.
func (t *Tracer) Workers() int { return int(t.workers.Load()) }

// SetIter tags subsequently started spans with iteration k.
func (t *Tracer) SetIter(k int) {
	if t != nil {
		t.iter.Store(int64(k))
	}
}

// add records one completed span.
func (t *Tracer) add(name string, iter int, start time.Time, d time.Duration) {
	ev := SpanEvent{
		Name: name,
		Iter: iter,
		TS:   float64(start.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(d) / float64(time.Microsecond),
	}
	t.mu.Lock()
	if len(t.events) >= MaxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded spans in completion order.
func (t *Tracer) Events() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Dropped reports how many spans were discarded after the buffer filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Trace is the decoded form of an exported trace.
type Trace struct {
	Workers int
	Events  []SpanEvent
}

// chromeEvent is one entry of the Chrome trace_event format ("X" = complete
// event with explicit duration; ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavour of the trace file format, which
// both chrome://tracing and Perfetto accept.
type chromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
	TraceEvents     []chromeEvent     `json:"traceEvents"`
}

// WriteChromeTrace renders the recorded spans as a Chrome trace_event JSON
// document, sorted by start time so nested spans follow their parents.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].TS != events[b].TS {
			return events[a].TS < events[b].TS
		}
		return events[a].Dur > events[b].Dur // parents before children
	})
	ct := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"workers": fmt.Sprint(t.Workers())},
		TraceEvents:     make([]chromeEvent, len(events)),
	}
	for i, ev := range events {
		ct.TraceEvents[i] = chromeEvent{
			Name: ev.Name,
			Cat:  "place",
			Ph:   "X",
			PID:  1,
			TID:  1,
			TS:   ev.TS,
			Dur:  ev.Dur,
			Args: map[string]any{"iter": ev.Iter},
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ReadChromeTrace decodes a trace written by WriteChromeTrace (or any
// trace_event JSON object with complete "X" events) back into span events.
func ReadChromeTrace(r io.Reader) (*Trace, error) {
	var ct chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("obs: decoding chrome trace: %w", err)
	}
	tr := &Trace{}
	if ws, ok := ct.OtherData["workers"]; ok {
		fmt.Sscanf(ws, "%d", &tr.Workers) //nolint:errcheck // optional metadata
	}
	for _, ce := range ct.TraceEvents {
		if ce.Ph != "X" {
			continue
		}
		ev := SpanEvent{Name: ce.Name, Iter: -1, TS: ce.TS, Dur: ce.Dur}
		if it, ok := ce.Args["iter"].(float64); ok {
			ev.Iter = int(it)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// WriteJSONL renders the recorded spans as one JSON object per line, in
// completion order — the streaming-friendly export.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes a JSONL event stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]SpanEvent, error) {
	var out []SpanEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev SpanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("obs: decoding JSONL event: %w", err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}
