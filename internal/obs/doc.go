// Package obs is the placer's observability layer: a zero-dependency
// structured logger, a span tracer, and a convergence metrics registry,
// bundled into an Observer that threads through the whole stack (engine,
// flow, service, CLIs).
//
// The three pieces compose but are independently optional:
//
//   - Logger: leveled key/value logging with text and JSON encoders and
//     context.Context propagation. A nil *Logger is a valid no-op sink, so
//     call sites never need nil checks.
//
//   - Tracer: named spans with per-iteration tagging. A run exports as
//     Chrome trace_event JSON (chrome://tracing, Perfetto) or as a JSONL
//     event stream; both round-trip through the matching Read functions.
//
//   - Metrics: convergence gauges (HPWL, overflow, lambda, smoothing
//     parameter, BB step length), counters (iterations, evaluations,
//     checkpoint writes, named extras), and cumulative per-phase seconds,
//     with optional sinks that forward per-iteration and per-phase
//     durations to an external collector (e.g. Prometheus histograms).
//
// The hot path is engineered for a true no-op fast path: with a nil
// Observer (or one with neither Tracer nor Metrics) StartPhase returns a
// zero Span without reading the clock, and Span.End is a single nil check.
package obs
