package obs

import "time"

// Phase names used by the engine's per-iteration sub-spans (the Table-III
// style runtime breakdown) and the coarse flow phases. The five engine
// phases are the ones the service exports per-phase latency histograms for.
const (
	PhaseWirelength = "wirelength"     // model gradient (per eval)
	PhaseStamp      = "density-stamp"  // smoothed stamping + overflow
	PhaseSolve      = "poisson-solve"  // spectral solve + energy
	PhaseGather     = "field-gather"   // per-cell field sampling
	PhaseStep       = "optimizer-step" // whole optimizer step (evals nest inside)

	PhaseIteration = "iteration" // umbrella span, one per loop iteration
	PhaseSetup     = "gp-setup"  // grid, fillers, init, lambda calibration
	PhaseLegalize  = "legalize"
	PhaseDetailed  = "detailed"

	// PhaseGuardRollback wraps a divergence-guard rollback: snapshot
	// lookup, optimizer/schedule restore, and step shrink. Rare by
	// construction, so it gets a span (visible in traces) but no histogram.
	PhaseGuardRollback = "guard-rollback"

	// Spectral-solver sub-spans (inside PhaseSolve).
	PhaseDCT      = "dct-forward"
	PhaseSynthPsi = "synth-psi"
	PhaseSynthEx  = "synth-ex"
	PhaseSynthEy  = "synth-ey"
)

// EnginePhases lists the per-iteration engine phases in breakdown order;
// the service registers one latency histogram per entry.
func EnginePhases() []string {
	return []string{PhaseWirelength, PhaseStamp, PhaseSolve, PhaseGather, PhaseStep}
}

// Observer bundles the three observability pieces for one run. Any field
// may be nil; a nil *Observer disables everything. It is plumbed through
// placer.Config and carried by the engine into the density solver.
type Observer struct {
	Log     *Logger
	Trace   *Tracer
	Metrics *Metrics
}

// Logger returns the observer's logger; nil-safe (a nil logger no-ops).
func (o *Observer) Logger() *Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// Span is an in-flight phase measurement started by StartPhase or
// StartIteration. The zero Span is inert: End on it is a single nil check.
type Span struct {
	o     *Observer
	name  string
	iter  int
	start time.Time
	// iteration marks the umbrella span, which feeds the iteration-latency
	// metric instead of the per-phase accumulator.
	iteration bool
}

// StartPhase begins a named span. When the observer is nil or has neither
// tracer nor metrics the zero Span is returned without reading the clock —
// the no-op fast path the engine relies on.
func (o *Observer) StartPhase(name string) Span {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return Span{}
	}
	iter := -1
	if o.Trace != nil {
		iter = int(o.Trace.iter.Load())
	}
	return Span{o: o, name: name, iter: iter, start: time.Now()}
}

// StartIteration begins iteration k's umbrella span and tags subsequent
// spans with k. Its End records the iteration-latency metric.
func (o *Observer) StartIteration(k int) Span {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		return Span{}
	}
	if o.Trace != nil {
		o.Trace.iter.Store(int64(k))
	}
	return Span{o: o, name: PhaseIteration, iter: k, start: time.Now(), iteration: true}
}

// End completes the span, feeding the tracer buffer and the metrics
// accumulators. Safe on the zero Span.
func (s Span) End() {
	if s.o == nil {
		return
	}
	d := time.Since(s.start)
	if t := s.o.Trace; t != nil {
		t.add(s.name, s.iter, s.start, d)
	}
	if m := s.o.Metrics; m != nil {
		if s.iteration {
			m.IterationDone(d)
		} else {
			m.observePhase(s.name, d)
		}
	}
}
