package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetWorkers(4)
	o := &Observer{Trace: tr}

	setup := o.StartPhase(PhaseSetup)
	setup.End()
	for k := 0; k < 3; k++ {
		it := o.StartIteration(k)
		for _, name := range EnginePhases() {
			sp := o.StartPhase(name)
			sp.End()
		}
		it.End()
	}

	evs := tr.Events()
	wantN := 1 + 3*(len(EnginePhases())+1)
	if len(evs) != wantN {
		t.Fatalf("recorded %d spans, want %d", len(evs), wantN)
	}
	if evs[0].Name != PhaseSetup || evs[0].Iter != -1 {
		t.Errorf("setup span = %+v, want name=%s iter=-1", evs[0], PhaseSetup)
	}
	// The iteration umbrella span ends last within each iteration; all spans
	// inside iteration k must be tagged k.
	for _, ev := range evs[1:] {
		if ev.Iter < 0 || ev.Iter > 2 {
			t.Errorf("span %q tagged iter=%d, want 0..2", ev.Name, ev.Iter)
		}
		if ev.Dur < 0 || ev.TS < 0 {
			t.Errorf("span %q has negative time: %+v", ev.Name, ev)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", tr.Dropped())
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.SetWorkers(7)
	base := time.Now()
	tr.add(PhaseIteration, 0, base, 500*time.Microsecond)
	tr.add(PhaseWirelength, 0, base.Add(10*time.Microsecond), 120*time.Microsecond)
	tr.add(PhaseSolve, 1, base.Add(600*time.Microsecond), 90*time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Validate the envelope shape independently of our own decoder.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if raw["displayTimeUnit"] != "ms" {
		t.Errorf("displayTimeUnit = %v, want ms", raw["displayTimeUnit"])
	}

	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 7 {
		t.Errorf("Workers = %d, want 7", got.Workers)
	}
	want := tr.Events() // already TS-sorted: added in ascending start order
	if len(got.Events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got.Events), len(want))
	}
	for i := range want {
		if got.Events[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v (round trip must be exact)", i, got.Events[i], want[i])
		}
	}
}

func TestChromeTraceParentsPrecedeChildren(t *testing.T) {
	tr := NewTracer()
	base := time.Now()
	// Child added before parent, same start time: export must order the
	// longer (enclosing) span first so viewers nest them correctly.
	tr.add(PhaseWirelength, 0, base, 100*time.Microsecond)
	tr.add(PhaseIteration, 0, base, 400*time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Name != PhaseIteration {
		t.Errorf("first exported span = %q, want the enclosing %q", got.Events[0].Name, PhaseIteration)
	}
}

func TestReadChromeTraceSkipsOtherPhases(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"proc","ph":"M","pid":1,"tid":1},
		{"name":"wirelength","cat":"place","ph":"X","pid":1,"tid":1,"ts":1.5,"dur":2.25,"args":{"iter":3}}
	]}`
	got, err := ReadChromeTrace(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 1 {
		t.Fatalf("decoded %d events, want 1 (metadata event must be skipped)", len(got.Events))
	}
	want := SpanEvent{Name: "wirelength", Iter: 3, TS: 1.5, Dur: 2.25}
	if got.Events[0] != want {
		t.Errorf("event = %+v, want %+v", got.Events[0], want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	base := time.Now()
	tr.add(PhaseStamp, 2, base, 33*time.Microsecond)
	tr.add(PhaseGather, 2, base.Add(40*time.Microsecond), 21*time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestNoopFastPath(t *testing.T) {
	// All three disabled shapes must return the zero Span.
	var nilObs *Observer
	if sp := nilObs.StartPhase(PhaseSolve); sp != (Span{}) {
		t.Error("nil observer StartPhase returned a live span")
	}
	if sp := nilObs.StartIteration(0); sp != (Span{}) {
		t.Error("nil observer StartIteration returned a live span")
	}
	logOnly := &Observer{}
	if sp := logOnly.StartPhase(PhaseSolve); sp != (Span{}) {
		t.Error("observer without tracer/metrics returned a live span")
	}
	(Span{}).End() // must not panic

	var nilTr *Tracer
	nilTr.SetWorkers(3)
	nilTr.SetIter(5)
}

func TestMaxTraceEventsDrops(t *testing.T) {
	tr := NewTracer()
	tr.events = make([]SpanEvent, MaxTraceEvents) // pre-fill to the cap
	tr.add("overflowing", 0, time.Now(), time.Microsecond)
	tr.add("overflowing", 1, time.Now(), time.Microsecond)
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2", got)
	}
	if len(tr.Events()) != MaxTraceEvents {
		t.Errorf("buffer grew past MaxTraceEvents: %d", len(tr.Events()))
	}
}

// TestConcurrentSpans exercises recording + export under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	o := &Observer{Trace: tr, Metrics: NewMetrics()}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := o.StartPhase(PhaseWirelength)
				sp.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Error(err)
			}
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	if got := len(tr.Events()); got != 400 {
		t.Errorf("recorded %d spans, want 400", got)
	}
}
