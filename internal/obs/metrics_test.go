package obs

import (
	"sync"
	"testing"
	"time"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.IterationDone(10 * time.Millisecond)
	m.IterationDone(20 * time.Millisecond)
	m.EvalDone()
	m.EvalDone()
	m.EvalDone()
	m.CheckpointDone()
	m.Record(Point{Iter: 41, HPWL: 123.5, Overflow: 0.25, Lambda: 2e-4, Param: 0.8, Step: 1.5})

	s := m.Snapshot()
	if s.Iterations != 2 || s.Evaluations != 3 || s.Checkpoints != 1 {
		t.Errorf("counters = %d/%d/%d, want 2/3/1", s.Iterations, s.Evaluations, s.Checkpoints)
	}
	if s.Iter != 41 || s.HPWL != 123.5 || s.Overflow != 0.25 || s.Lambda != 2e-4 || s.Param != 0.8 || s.Step != 1.5 {
		t.Errorf("gauges = %+v", s)
	}

	// HPWL <= 0 means "not measured": the gauge keeps its last value.
	m.Record(Point{Iter: 42, HPWL: 0, Overflow: 0.2})
	s = m.Snapshot()
	if s.HPWL != 123.5 {
		t.Errorf("HPWL gauge overwritten by unmeasured sample: %v", s.HPWL)
	}
	if s.Iter != 42 || s.Overflow != 0.2 {
		t.Errorf("other gauges not updated: %+v", s)
	}
}

func TestMetricsPhaseAccumulation(t *testing.T) {
	m := NewMetrics()
	m.observePhase(PhaseSolve, 100*time.Millisecond)
	m.observePhase(PhaseSolve, 50*time.Millisecond)
	m.observePhase(PhaseStamp, 10*time.Millisecond)

	s := m.Snapshot()
	if got := s.PhaseSeconds[PhaseSolve]; got < 0.1499 || got > 0.1501 {
		t.Errorf("PhaseSeconds[solve] = %v, want 0.15", got)
	}
	if s.PhaseCalls[PhaseSolve] != 2 || s.PhaseCalls[PhaseStamp] != 1 {
		t.Errorf("PhaseCalls = %v", s.PhaseCalls)
	}
}

func TestMetricsSinks(t *testing.T) {
	m := NewMetrics()
	var iterSecs []float64
	type phaseObs struct {
		name string
		sec  float64
	}
	var phases []phaseObs
	m.OnIteration = func(sec float64) { iterSecs = append(iterSecs, sec) }
	m.OnPhase = func(name string, sec float64) { phases = append(phases, phaseObs{name, sec}) }

	o := &Observer{Metrics: m}
	it := o.StartIteration(0)
	sp := o.StartPhase(PhaseGather)
	sp.End()
	it.End()

	if len(iterSecs) != 1 {
		t.Errorf("OnIteration called %d times, want 1", len(iterSecs))
	}
	if len(phases) != 1 || phases[0].name != PhaseGather {
		t.Errorf("OnPhase observations = %v, want one %s", phases, PhaseGather)
	}
}

func TestMetricsNamedCounters(t *testing.T) {
	m := NewMetrics()
	m.Count("moreau_degenerate", 3)
	m.Count("moreau_degenerate", 2)
	m.Count("noop", 0) // zero delta must not create the key
	s := m.Snapshot()
	if s.Counters["moreau_degenerate"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["moreau_degenerate"])
	}
	if _, ok := s.Counters["noop"]; ok {
		t.Error("zero-delta Count created a key")
	}
}

func TestNilMetricsIsSafe(t *testing.T) {
	var m *Metrics
	m.IterationDone(time.Second)
	m.EvalDone()
	m.CheckpointDone()
	m.Record(Point{Iter: 1})
	m.Count("x", 1)
	if s := m.Snapshot(); s.Iterations != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

// TestMetricsConcurrent exercises every mutator under -race.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.IterationDone(time.Microsecond)
				m.EvalDone()
				m.Record(Point{Iter: i, HPWL: float64(i + 1), Overflow: 0.1})
				m.observePhase(PhaseStep, time.Microsecond)
				m.Count("c", 1)
				if i%50 == 0 {
					_ = m.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Iterations != 1600 || s.Evaluations != 1600 || s.Counters["c"] != 1600 || s.PhaseCalls[PhaseStep] != 1600 {
		t.Errorf("concurrent totals wrong: %+v", s)
	}
}
