package metrics

import (
	"sort"

	"repro/internal/netlist"
)

// TotalOverlap returns the total pairwise overlap area among movable cells
// (and between movable and fixed cells) — the raw quantity the density
// penalty drives to zero and legalization eliminates. Computed with a
// sweep over x using an active interval list; O(n log n + k) for k
// overlapping pairs.
func TotalOverlap(d *netlist.Design) float64 {
	type box struct {
		xl, yl, xh, yh float64
	}
	boxes := make([]box, 0, d.NumCells())
	for i, c := range d.Cells {
		if c.Area() == 0 {
			continue
		}
		if !c.Kind.Moves() && c.Kind != netlist.Fixed {
			continue
		}
		r := d.CellRect(i)
		boxes = append(boxes, box{r.XL, r.YL, r.XH, r.YH})
	}
	sort.Slice(boxes, func(a, b int) bool { return boxes[a].xl < boxes[b].xl })
	total := 0.0
	// Active set: boxes whose x-interval may still overlap upcoming boxes.
	active := make([]int, 0, 64)
	for i := range boxes {
		b := boxes[i]
		keep := active[:0]
		for _, j := range active {
			a := boxes[j]
			if a.xh <= b.xl {
				continue // expired in x
			}
			keep = append(keep, j)
			ox := minF(a.xh, b.xh) - b.xl
			oy := minF(a.yh, b.yh) - maxF(a.yl, b.yl)
			if ox > 0 && oy > 0 {
				total += ox * oy
			}
		}
		active = append(keep, i)
	}
	return total
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
