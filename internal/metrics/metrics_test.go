package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

func sampleTable() *Table {
	t := NewTable("Test Table", []string{"WA", "ME"}, "ME")
	t.Set("alpha", "WA", Cell{LGWL: 110e6, DPWL: 105e6, RT: 10})
	t.Set("alpha", "ME", Cell{LGWL: 100e6, DPWL: 100e6, RT: 20})
	t.Set("beta", "WA", Cell{LGWL: 52.5e6, DPWL: 51e6, RT: 5})
	t.Set("beta", "ME", Cell{LGWL: 50e6, DPWL: 50e6, RT: 10})
	return t
}

func TestAvgRatios(t *testing.T) {
	tbl := sampleTable()
	r := tbl.AvgRatios()
	wa := r["WA"]
	// LGWL ratios: 1.10 and 1.05 -> mean 1.075.
	if math.Abs(wa[0]-1.075) > 1e-12 {
		t.Errorf("WA LGWL ratio = %g, want 1.075", wa[0])
	}
	// DPWL ratios: 1.05, 1.02 -> 1.035.
	if math.Abs(wa[1]-1.035) > 1e-12 {
		t.Errorf("WA DPWL ratio = %g", wa[1])
	}
	// RT ratios: 0.5, 0.5 -> 0.5.
	if math.Abs(wa[2]-0.5) > 1e-12 {
		t.Errorf("WA RT ratio = %g", wa[2])
	}
	me := r["ME"]
	for i, v := range me {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("ME self ratio[%d] = %g, want 1", i, v)
		}
	}
}

func TestAvgRatiosSkipsMissing(t *testing.T) {
	tbl := sampleTable()
	tbl.Set("gamma", "WA", Cell{LGWL: 999e6, DPWL: 999e6, RT: 1})
	// gamma has no ME cell; ratios must be unchanged.
	r := tbl.AvgRatios()
	if math.Abs(r["WA"][0]-1.075) > 1e-12 {
		t.Errorf("missing-ref design leaked into ratios: %g", r["WA"][0])
	}
}

func TestRenderContainsEverything(t *testing.T) {
	out := sampleTable().Render()
	for _, want := range []string{"Test Table", "alpha", "beta", "Avg.Ratio", "WA.LGWL", "ME.RT(s)", "1.075"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingCell(t *testing.T) {
	tbl := sampleTable()
	tbl.Set("gamma", "ME", Cell{LGWL: 10e6, DPWL: 10e6, RT: 1})
	out := tbl.Render()
	if !strings.Contains(out, "-") {
		t.Error("missing cells should render as -")
	}
}

func TestFmtWLPrecision(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.41036e6, "0.41036"},
		{17.5e6, "17.500"},
		{211.68e6, "211.68"},
	}
	for _, c := range cases {
		if got := fmtWL(c.v); got != c.want {
			t.Errorf("fmtWL(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDesignsOrderStable(t *testing.T) {
	tbl := sampleTable()
	d := tbl.Designs()
	if len(d) != 2 || d[0] != "alpha" || d[1] != "beta" {
		t.Errorf("Designs() = %v", d)
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Fig. X", "overflow", "hpwl", []Series{
		{Name: "WA", X: []float64{0.9, 0.5}, Y: []float64{1, 2}},
		{Name: "Ours", X: []float64{0.8}, Y: []float64{3}},
	})
	for _, want := range []string{"Fig. X", "series: WA", "series: Ours", "0.9", "overflow"} {
		if !strings.Contains(out, want) {
			t.Errorf("series render missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	k := SortedKeys(m)
	if len(k) != 3 || k[0] != "a" || k[2] != "c" {
		t.Errorf("SortedKeys = %v", k)
	}
}

func TestTotalOverlap(t *testing.T) {
	b := netlist.NewBuilder("ov")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 100, YH: 100})
	// Two 4x4 cells overlapping in a 2x4 strip.
	b.AddCell("a", netlist.Movable, 4, 4, 0, 0)
	b.AddCell("b", netlist.Movable, 4, 4, 2, 0)
	// A third far away.
	b.AddCell("c", netlist.Movable, 4, 4, 50, 50)
	// A fixed block overlapping c in a 1x4 strip.
	b.AddCell("f", netlist.Fixed, 4, 4, 53, 50)
	// A zero-area terminal never counts.
	b.AddCell("p", netlist.Terminal, 0, 0, 1, 1)
	d := b.MustBuild()
	got := TotalOverlap(d)
	want := 2.0*4 + 1.0*4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalOverlap = %g, want %g", got, want)
	}
}

func TestTotalOverlapZeroWhenLegal(t *testing.T) {
	b := netlist.NewBuilder("legal")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 100, YH: 100})
	for i := 0; i < 10; i++ {
		b.AddCell("", netlist.Movable, 4, 4, float64(i*5), 0)
	}
	d := b.MustBuild()
	if got := TotalOverlap(d); got != 0 {
		t.Errorf("overlap of abutting cells = %g, want 0", got)
	}
}

func TestTotalOverlapMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := netlist.NewBuilder("bf")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 60, YH: 60})
	n := 40
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*8
		h := 1 + rng.Float64()*8
		b.AddCell("", netlist.Movable, w, h, rng.Float64()*50, rng.Float64()*50)
	}
	d := b.MustBuild()
	want := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want += d.CellRect(i).OverlapArea(d.CellRect(j))
		}
	}
	got := TotalOverlap(d)
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("TotalOverlap = %g, brute force %g", got, want)
	}
}
