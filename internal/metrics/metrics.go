// Package metrics assembles and renders the paper-style comparison tables:
// per-design LGWL/DPWL/runtime columns for several wirelength models plus
// the "Avg. Ratio" row normalized to a reference model, exactly as Tables II
// and III of the paper report them.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Cell is one (LGWL, DPWL, RT) triple of a comparison table.
type Cell struct {
	LGWL, DPWL, RT float64
	// Missing marks absent data (rendered as "-").
	Missing bool
}

// Table is a paper-style comparison table: rows are designs, column groups
// are models.
type Table struct {
	Title  string
	Models []string // column-group order
	// Ref is the model ratios normalize to (the paper normalizes to
	// "Ours", i.e. "ME").
	Ref   string
	rows  []string
	cells map[string]map[string]Cell // design -> model -> cell
}

// NewTable creates an empty table with the model column order and the
// ratio-reference model.
func NewTable(title string, models []string, ref string) *Table {
	return &Table{
		Title:  title,
		Models: models,
		Ref:    ref,
		cells:  map[string]map[string]Cell{},
	}
}

// Set records the cell for (design, model).
func (t *Table) Set(design, model string, c Cell) {
	if _, ok := t.cells[design]; !ok {
		t.cells[design] = map[string]Cell{}
		t.rows = append(t.rows, design)
	}
	t.cells[design][model] = c
}

// Get returns the cell for (design, model).
func (t *Table) Get(design, model string) (Cell, bool) {
	m, ok := t.cells[design]
	if !ok {
		return Cell{}, false
	}
	c, ok := m[model]
	return c, ok
}

// Designs returns the rows in insertion order.
func (t *Table) Designs() []string { return t.rows }

// AvgRatios returns, for each model, the arithmetic mean over designs of
// value(model)/value(ref), separately for LGWL, DPWL and RT — the "Avg.
// Ratio" row of the paper's tables. Designs lacking data for either model
// are skipped.
func (t *Table) AvgRatios() map[string][3]float64 {
	out := map[string][3]float64{}
	for _, model := range t.Models {
		var sum [3]float64
		n := 0
		for _, d := range t.rows {
			a, okA := t.Get(d, model)
			r, okR := t.Get(d, t.Ref)
			if !okA || !okR || a.Missing || r.Missing {
				continue
			}
			if r.LGWL <= 0 || r.DPWL <= 0 || r.RT <= 0 {
				continue
			}
			sum[0] += a.LGWL / r.LGWL
			sum[1] += a.DPWL / r.DPWL
			sum[2] += a.RT / r.RT
			n++
		}
		if n > 0 {
			out[model] = [3]float64{sum[0] / float64(n), sum[1] / float64(n), sum[2] / float64(n)}
		}
	}
	return out
}

// fmtWL renders a wirelength in the paper's 10^6 units with adaptive
// precision (small designs keep more digits, like ispd19_test1's 0.41036).
func fmtWL(v float64) string {
	m := v / 1e6
	switch {
	case m >= 100:
		return fmt.Sprintf("%.2f", m)
	case m >= 1:
		return fmt.Sprintf("%.3f", m)
	default:
		return fmt.Sprintf("%.5f", m)
	}
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	header := []string{"Benchmark"}
	for _, m := range t.Models {
		header = append(header, m+".LGWL(1e6)", m+".DPWL(1e6)", m+".RT(s)")
	}
	rows := [][]string{header}
	for _, d := range t.rows {
		row := []string{d}
		for _, m := range t.Models {
			c, ok := t.Get(d, m)
			if !ok || c.Missing {
				row = append(row, "-", "-", "-")
				continue
			}
			row = append(row, fmtWL(c.LGWL), fmtWL(c.DPWL), fmt.Sprintf("%.2f", c.RT))
		}
		rows = append(rows, row)
	}
	ratios := t.AvgRatios()
	ratioRow := []string{"Avg.Ratio"}
	for _, m := range t.Models {
		r, ok := ratios[m]
		if !ok {
			ratioRow = append(ratioRow, "-", "-", "-")
			continue
		}
		ratioRow = append(ratioRow, fmt.Sprintf("%.3f", r[0]), fmt.Sprintf("%.3f", r[1]), fmt.Sprintf("%.2f", r[2]))
	}
	rows = append(rows, ratioRow)

	// Column widths.
	width := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s", width[i]+2, cell)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range width {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Series is a named list of (x, y) points, used for figure data (Fig. 1 and
// Fig. 3 curves).
type Series struct {
	Name string
	X, Y []float64
}

// RenderSeries prints the series as gnuplot-style blocks (each series has
// its own x column; blocks are separated by blank lines).
func RenderSeries(title, xLabel, yLabel string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", title)
	for _, s := range series {
		fmt.Fprintf(&sb, "\n# series: %s\n# %-14s %-16s\n", s.Name, xLabel, yLabel)
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "  %-14.6g %-16.6g\n", s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

// SortedKeys returns map keys in sorted order (deterministic rendering).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
