package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ecocache"
)

// cacheSpec is a small deterministic GP-only job used by the cache tests.
func cacheSpec(cells int) JobSpec {
	return JobSpec{
		Design: DesignSpec{Synth: &SynthSpec{Cells: cells, Seed: 3}},
		Model:  "ME",
		Placer: PlacerSpec{
			MaxIters:     300,
			StopOverflow: 0.15,
			GridX:        32,
			GridY:        32,
			Workers:      2,
		},
		Flow: FlowSpec{GPOnly: true},
	}
}

// newDurableManager opens a store-backed manager (which also opens the
// placement-result cache under <dir>/ecocache).
func newDurableManager(t *testing.T, dir string, workers int) *Manager {
	t.Helper()
	m, err := OpenManager(Config{DataDir: dir, Workers: workers, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck // double shutdown in cleanup is fine
	})
	return m
}

// TestCacheExactHitBitIdentical pins the exact-hit contract: resubmitting an
// identical spec is served from the cache without running the GP loop, and
// the served positions are bit-identical to what actually running the flow
// produces.
func TestCacheExactHitBitIdentical(t *testing.T) {
	dir := t.TempDir()
	m := newDurableManager(t, dir, 1)
	spec := cacheSpec(120)

	v1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done1 := waitState(t, m, v1.ID, StateDone)
	if done1.Cache != "miss" {
		t.Errorf("first run cache outcome %q, want miss", done1.Cache)
	}

	// Ground truth: replay the same spec through the flow directly. The
	// pipeline is deterministic, so these are the bits the cache must serve.
	d, err := spec.buildDesign("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunFlow(d, spec.flowConfig()); err != nil {
		t.Fatal(err)
	}

	v2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done2 := waitState(t, m, v2.ID, StateDone)
	if done2.Cache != "hit" {
		t.Fatalf("resubmission cache outcome %q, want hit", done2.Cache)
	}
	if done2.Result == nil || done2.Result.GPIters != 0 {
		t.Errorf("exact hit ran the GP loop: %+v", done2.Result)
	}
	if done2.Result.DPWL != done1.Result.DPWL {
		t.Errorf("hit HPWL %v differs from original %v", done2.Result.DPWL, done1.Result.DPWL)
	}

	key := ecocache.Key{Design: d.ContentHash(), Config: spec.cacheFingerprint().Key()}
	cached := m.cache.Get(key)
	if cached == nil {
		t.Fatal("finished job not found in the cache")
	}
	for i := range d.X {
		if cached.X[i] != d.X[i] || cached.Y[i] != d.Y[i] {
			t.Fatalf("cached position %d not bit-identical to a fresh run", i)
		}
	}

	st := m.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 || st.CacheBytes <= 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestCacheHitSurvivesRestart reopens the manager on the same data dir and
// expects the resubmission to hit the recovered cache.
func TestCacheHitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := cacheSpec(100)

	m1, err := OpenManager(Config{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, v1.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newDurableManager(t, dir, 1)
	if st := m2.Stats(); st.CacheEntries != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", st.CacheEntries)
	}
	v2, err := m2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m2, v2.ID, StateDone)
	if done.Cache != "hit" {
		t.Fatalf("post-restart resubmission cache outcome %q, want hit", done.Cache)
	}
}

// TestCacheNearHitWarmStartsFromParent submits an ECO child (parent spec plus
// a small perturbation and the parent reference) and expects the near-hit
// path: warm start off the parent's cached placement, fewer GP iterations
// than the parent's cold run.
func TestCacheNearHitWarmStartsFromParent(t *testing.T) {
	dir := t.TempDir()
	m := newDurableManager(t, dir, 1)
	parentSpec := cacheSpec(300)

	v1, err := m.Submit(parentSpec)
	if err != nil {
		t.Fatal(err)
	}
	parent := waitState(t, m, v1.ID, StateDone)

	childSpec := parentSpec
	childSpec.Parent = v1.ID
	childSpec.Design.Perturb = &PerturbSpec{Seed: 9, CellFrac: 0.01}
	v2, err := m.Submit(childSpec)
	if err != nil {
		t.Fatal(err)
	}
	child := waitState(t, m, v2.ID, StateDone)
	if child.Cache != "near_hit" {
		t.Fatalf("child cache outcome %q, want near_hit", child.Cache)
	}
	if child.Result == nil || child.Result.GPIters >= parent.Result.GPIters {
		t.Errorf("warm start took %d GP iterations, parent cold run took %d",
			child.Result.GPIters, parent.Result.GPIters)
	}
	if st := m.Stats(); st.CacheNearHits != 1 {
		t.Errorf("stats = %+v, want 1 near hit", st)
	}

	// A child referencing an unknown parent must degrade to a cold start.
	orphan := childSpec
	orphan.Parent = "job-999999"
	orphan.Design.Perturb = &PerturbSpec{Seed: 10, CellFrac: 0.01}
	v3, err := m.Submit(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitState(t, m, v3.ID, StateDone); done.Cache != "miss" {
		t.Errorf("orphan child cache outcome %q, want miss", done.Cache)
	}
}

// TestCacheNearHitSurvivesRetentionPrune pins the spec-archive contract: a
// parent's cached placement outlives its job record, so an ECO child must
// still warm-start after retention pruning deleted the parent's job
// directory (the spec moves into the archive instead of vanishing).
func TestCacheNearHitSurvivesRetentionPrune(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(Config{DataDir: dir, Workers: 1, QueueDepth: 8, Retention: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck
	})
	parentSpec := cacheSpec(300)
	v1, err := m.Submit(parentSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v1.ID, StateDone)

	// Age the parent out of retention with filler jobs of a different design.
	for i := 0; i < 3; i++ {
		filler := cacheSpec(80)
		filler.Design.Synth.Seed = int64(100 + i)
		fv, err := m.Submit(filler)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, fv.ID, StateDone)
	}
	if _, err := m.store.LoadSpec(v1.ID); err == nil {
		t.Fatal("parent job directory survived retention pruning; test premise broken")
	}
	if _, err := m.store.LoadArchivedSpec(v1.ID); err != nil {
		t.Fatalf("pruned parent spec not archived: %v", err)
	}

	child := parentSpec
	child.Parent = v1.ID
	child.Design.Perturb = &PerturbSpec{Seed: 9, CellFrac: 0.01}
	v2, err := m.Submit(child)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitState(t, m, v2.ID, StateDone); done.Cache != "near_hit" {
		t.Fatalf("child of pruned parent cache outcome %q, want near_hit", done.Cache)
	}
}
