package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// Store is the durable on-disk job store behind a Manager. Each job owns a
// directory under <root>/jobs/<id>/ holding its immutable spec, its latest
// status, and a rotating set of placement snapshots:
//
//	<root>/jobs/job-000001/spec.json
//	<root>/jobs/job-000001/status.json
//	<root>/jobs/job-000001/checkpoints/ckpt-000000050.ckpt
//
// All JSON writes are atomic (temp file + rename), so a crash at any point
// leaves every job either at its previous status or its next one. On boot
// the manager replays the store: finished jobs come back as inspectable
// history, interrupted ones are re-enqueued as warm-start resumes.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: store directory is empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) jobDir(id string) string { return filepath.Join(s.root, "jobs", id) }

// CheckpointDir returns the directory placement snapshots for a job land in.
func (s *Store) CheckpointDir(id string) string {
	return filepath.Join(s.jobDir(id), "checkpoints")
}

// PersistedStatus is the durable view of one job's progress, updated on
// every state transition.
type PersistedStatus struct {
	State       State            `json:"state"`
	Design      string           `json:"design,omitempty"`
	Model       string           `json:"model,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   time.Time        `json:"started_at"`
	FinishedAt  time.Time        `json:"finished_at"`
	Error       string           `json:"error,omitempty"`
	Result      *core.FlowResult `json:"result,omitempty"`
	// Resumes counts how many times the job was recovered after a daemon
	// restart (each recovery warm-starts from the latest snapshot).
	Resumes int `json:"resumes,omitempty"`
	// Guard carries the run's numerical-health guard summary, when it tripped.
	Guard *GuardStatus `json:"guard,omitempty"`
	// Cache is the placement-result cache outcome (hit, near_hit, miss).
	Cache string `json:"cache,omitempty"`
}

// PersistedJob pairs a job's spec with its last persisted status.
type PersistedJob struct {
	ID     string
	Spec   JobSpec
	Status PersistedStatus
}

// writeJSONFile atomically writes v as JSON to path.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".store-*.tmp")
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("service: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	return nil
}

// SaveSpec persists a job's immutable spec (written once at submit).
func (s *Store) SaveSpec(id string, spec JobSpec) error {
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	return writeJSONFile(filepath.Join(s.jobDir(id), "spec.json"), spec)
}

// LoadSpec loads one job's persisted spec. The ECO near-hit path uses it to
// rebuild a parent design whose job finished in an earlier daemon life (the
// in-memory job table only reaches back to the retention cap).
func (s *Store) LoadSpec(id string) (JobSpec, error) {
	var spec JobSpec
	if !readJSON(filepath.Join(s.jobDir(id), "spec.json"), &spec) {
		return JobSpec{}, fmt.Errorf("service: store: no spec for job %q", id)
	}
	return spec, nil
}

// SaveStatus persists a job's current status.
func (s *Store) SaveStatus(id string, st PersistedStatus) error {
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	return writeJSONFile(filepath.Join(s.jobDir(id), "status.json"), st)
}

// Delete removes a job's directory (spec, status, and snapshots).
func (s *Store) Delete(id string) error {
	return os.RemoveAll(s.jobDir(id))
}

// ArchiveSpec moves a job's spec into the spec archive
// (<root>/specarchive/<id>.json) before the job's directory is pruned, so
// the ECO near-hit path can still rebuild the design of a parent whose job
// record aged out of retention. The archive's lifetime is coupled to the
// placement-result cache — a parent is warm-startable exactly as long as
// its placement is cached — so the manager prunes it with the cache's
// entry bound (see PruneSpecArchive).
func (s *Store) ArchiveSpec(id string) error {
	dir := filepath.Join(s.root, "specarchive")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(filepath.Join(s.jobDir(id), "spec.json"), filepath.Join(dir, id+".json")); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	return nil
}

// LoadArchivedSpec loads a pruned job's archived spec. A successful load
// touches the file's mtime: PruneSpecArchive evicts by that timestamp, so
// a parent that keeps receiving ECO children stays archived while parents
// nobody references age out (least-recently-used, like the result cache).
func (s *Store) LoadArchivedSpec(id string) (JobSpec, error) {
	path := filepath.Join(s.root, "specarchive", id+".json")
	var spec JobSpec
	if !readJSON(path, &spec) {
		return JobSpec{}, fmt.Errorf("service: store: no archived spec for job %q", id)
	}
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck // best-effort LRU touch
	return spec, nil
}

// PruneSpecArchive drops the least-recently-used archived specs (by
// modification time, refreshed on every LoadArchivedSpec) beyond the max
// bound. Best-effort: an unreadable entry is simply kept.
func (s *Store) PruneSpecArchive(max int) {
	dir := filepath.Join(s.root, "specarchive")
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) <= max {
		return
	}
	type rec struct {
		name string
		mod  time.Time
	}
	recs := make([]rec, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{e.Name(), info.ModTime()})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].mod.Before(recs[b].mod) })
	for i := 0; i < len(recs)-max; i++ {
		os.Remove(filepath.Join(dir, recs[i].name)) //nolint:errcheck // best-effort GC
	}
}

// LatestSnapshot loads the newest decodable placement snapshot of a job;
// checkpoint.ErrNoSnapshot when the job never checkpointed.
func (s *Store) LatestSnapshot(id string) (*checkpoint.Snapshot, error) {
	snap, _, err := checkpoint.LoadLatest(s.CheckpointDir(id))
	return snap, err
}

// Load scans the store and returns every persisted job, sorted by the
// numeric suffix of the job ID (submission order). Jobs whose spec or
// status files are unreadable or unparsable are skipped: recovery must
// proceed past any single corrupted record.
func (s *Store) Load() ([]PersistedJob, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	var jobs []PersistedJob
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		var pj PersistedJob
		pj.ID = id
		if !readJSON(filepath.Join(s.jobDir(id), "spec.json"), &pj.Spec) {
			continue
		}
		if !readJSON(filepath.Join(s.jobDir(id), "status.json"), &pj.Status) {
			continue
		}
		jobs = append(jobs, pj)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobSeq(jobs[a].ID) < jobSeq(jobs[b].ID) })
	return jobs, nil
}

// MaxSeq returns the largest numeric job-ID suffix present in the store, so
// a restarted manager never reissues an ID.
func (s *Store) MaxSeq() int64 {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return 0
	}
	var max int64
	for _, e := range entries {
		if n := jobSeq(e.Name()); n > max {
			max = n
		}
	}
	return max
}

// jobSeq extracts the numeric suffix of "job-000123" (0 when malformed).
func jobSeq(id string) int64 {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// readJSON loads path into v, reporting success.
func readJSON(path string, v any) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}
