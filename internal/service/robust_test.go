package service

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/wirelength"
)

// TestWorkerPanicIsolatesJob a panic inside one job's run must mark only
// that job failed (with the stack in its status), bump the panic counter,
// and leave the worker pool and HTTP surface fully alive for later jobs.
// Meaningful under -race: the panicking run and the follow-up job share the
// manager, telemetry, and (with Workers > 1) the worker pool.
func TestWorkerPanicIsolatesJob(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteServiceRun, Mode: faultinject.ModePanic,
	})
	// Install before the workers start and clear after they stop (cleanups
	// run LIFO, so this one fires after newTestServer's Shutdown).
	t.Cleanup(func() { runHook = nil })
	runHook = func(jobID string) {
		if f, ok := plan.Visit(faultinject.SiteServiceRun); ok {
			panic(fmt.Sprintf("%s: injected %s fault in job %s", f.Site, f.Mode, jobID))
		}
	}
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// First job hits the panic (single worker: submission order = run order).
	doomed, err := m.Submit(synthSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	fv := waitState(t, m, doomed.ID, StateFailed)
	if !strings.HasPrefix(fv.Error, "panic:") {
		t.Errorf("panicked job error = %q, want a panic: prefix", fv.Error)
	}
	if !strings.Contains(fv.Error, "goroutine") {
		t.Errorf("panicked job error carries no stack trace:\n%s", fv.Error)
	}
	if !strings.Contains(fv.Error, doomed.ID) {
		t.Errorf("panic message lost the job id: %q", fv.Error)
	}

	// The daemon keeps serving: the next job on the same worker completes.
	ok, err := m.Submit(synthSpec(20))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, ok.ID, StateDone)

	if got := m.Telemetry().JobsPanicked.Value(); got != 1 {
		t.Errorf("JobsPanicked = %d, want 1", got)
	}
	if got := m.Telemetry().JobsFailed.Value(); got != 1 {
		t.Errorf("JobsFailed = %d, want 1", got)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "placerd_jobs_panicked_total 1") {
		t.Error("/metrics missing placerd_jobs_panicked_total 1")
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz after a worker panic = %d, want 200", hz.StatusCode)
	}
}

// TestGuardTripSurfacesInJobAndStream a job submitted with the guard spec
// knob recovers from an injected NaN, and the trip is visible everywhere the
// API reports it: the job view's guard block, the trajectory stream's
// cumulative guard_trips field, and the Prometheus counters.
func TestGuardTripSurfacesInJobAndStream(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteWirelengthGrad, Mode: faultinject.ModeNaN, After: 40,
	})
	t.Cleanup(func() { wirelength.GradHook = nil })
	wirelength.GradHook = func(model string, gradX, gradY []float64) {
		if _, ok := plan.Visit(faultinject.SiteWirelengthGrad); ok {
			for i := range gradX {
				gradX[i] = math.NaN()
			}
		}
	}
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	spec := synthSpec(60)
	spec.Placer.Guard = true
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, v.ID, StateDone)
	if plan.Fired(faultinject.SiteWirelengthGrad) != 1 {
		t.Fatalf("fault fired %d times, want 1", plan.Fired(faultinject.SiteWirelengthGrad))
	}
	if done.Guard == nil {
		t.Fatal("job view has no guard block after a trip")
	}
	if done.Guard.Trips != 1 || done.Guard.Rollbacks != 1 {
		t.Errorf("guard status = %+v, want 1 trip and 1 rollback", done.Guard)
	}
	if done.Guard.Recoveries != 1 {
		t.Errorf("guard recoveries = %d, want 1", done.Guard.Recoveries)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trajectory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	pts := readTrajectoryStream(t, resp.Body)
	if len(pts) == 0 {
		t.Fatal("empty trajectory stream")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Iter <= pts[i-1].Iter {
			t.Fatalf("stream iterations not ascending after rollback: %d then %d",
				pts[i-1].Iter, pts[i].Iter)
		}
	}
	if last := pts[len(pts)-1]; last.GuardTrips != 1 {
		t.Errorf("final stream point guard_trips = %d, want 1", last.GuardTrips)
	}
	if first := pts[0]; first.GuardTrips != 0 {
		t.Errorf("first stream point guard_trips = %d, want 0 (trip happened mid-run)", first.GuardTrips)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"placerd_guard_trips_total 1",
		"placerd_guard_rollbacks_total 1",
		"placerd_guard_recoveries_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestGuardSpecKnobIsOffByDefault a plain spec never builds a guard config,
// so existing clients keep bit-identical behavior.
func TestGuardSpecKnobIsOffByDefault(t *testing.T) {
	spec := synthSpec(10)
	if cfg := spec.placerConfig(); cfg.Guard != nil {
		t.Error("placerConfig built a guard.Config without the spec knob")
	}
	spec.Placer.Guard = true
	spec.Placer.GuardMaxRetries = 7
	cfg := spec.placerConfig()
	if cfg.Guard == nil || cfg.Guard.MaxRetries != 7 {
		t.Errorf("guard spec knob not translated: %+v", cfg.Guard)
	}
}
