package service

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// synthSpec builds a small synthetic GP-only job. maxIters controls how long
// it runs: StopOverflow is set unreachably low, so the job runs exactly
// maxIters iterations unless cancelled.
func synthSpec(maxIters int) JobSpec {
	return JobSpec{
		Design: DesignSpec{Synth: &SynthSpec{Cells: 64, Seed: 1}},
		Model:  "WA",
		Placer: PlacerSpec{
			MaxIters:     maxIters,
			StopOverflow: 1e-9,
			GridX:        16,
			GridY:        16,
		},
		Flow: FlowSpec{GPOnly: true},
	}
}

// slowIters is large enough that a job never finishes on its own within a
// test run; such jobs must always be cancelled (or killed by Shutdown).
const slowIters = 1 << 20

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		m.Shutdown(ctx) // double Shutdown returns ErrDraining; fine in cleanup
	})
	return m
}

// waitState polls until the job reaches want (or any terminal state, which
// fails the test if it is not the wanted one).
func waitState(t *testing.T, m *Manager, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %s (err=%q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return JobView{}
}

func TestJobLifecycleDone(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	const iters = 40
	v, err := m.Submit(synthSpec(iters))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued {
		t.Errorf("fresh job state %s, want queued", v.State)
	}
	done := waitState(t, m, v.ID, StateDone)
	if done.Result == nil {
		t.Fatal("done job has no result")
	}
	if done.Result.GPIters != iters {
		t.Errorf("ran %d GP iterations, want %d", done.Result.GPIters, iters)
	}
	if done.Result.DPWL <= 0 {
		t.Errorf("done job has no HPWL: %+v", done.Result)
	}
	if done.Progress == nil || done.Progress.Iteration != iters {
		t.Errorf("live progress = %+v, want iteration %d", done.Progress, iters)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("done job missing start/finish timestamps")
	}
	if done.RunSeconds <= 0 {
		t.Errorf("done job RunSeconds = %g, want > 0", done.RunSeconds)
	}

	pts, err := m.Trajectory(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != iters {
		t.Errorf("trajectory has %d points, want %d", len(pts), iters)
	}

	tel := m.Telemetry()
	if got := tel.JobsDone.Value(); got != 1 {
		t.Errorf("JobsDone = %d, want 1", got)
	}
	if got := tel.Iterations.Value(); got != iters {
		t.Errorf("Iterations = %d, want %d", got, iters)
	}
	if tel.LastHPWL.Value() <= 0 {
		t.Error("LastHPWL not set after a finished job")
	}
	if tel.TotalSeconds.Count() != 1 || tel.GPSeconds.Count() != 1 {
		t.Error("stage latency histograms not observed")
	}
}

func TestQueueFullAndCancelQueuedVsRunning(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})

	a, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning)

	// The single worker is busy with a; b occupies the whole queue.
	b, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(synthSpec(slowIters)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit beyond QueueDepth: got %v, want ErrQueueFull", err)
	}
	if got := m.Telemetry().JobsRejected.Value(); got != 1 {
		t.Errorf("JobsRejected = %d, want 1", got)
	}

	// Cancelling a queued job is immediate: it never runs.
	bv, err := m.Cancel(b.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if bv.State != StateCancelled {
		t.Errorf("queued job state after cancel = %s, want cancelled", bv.State)
	}
	if bv.StartedAt != nil {
		t.Error("cancelled-while-queued job has a start time")
	}
	if bv.FinishedAt == nil {
		t.Error("cancelled-while-queued job has no finish time")
	}

	// Cancelling a running job takes effect within one placement iteration.
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	av := waitState(t, m, a.ID, StateCancelled)
	if av.RunSeconds <= 0 {
		t.Errorf("cancelled running job RunSeconds = %g, want > 0", av.RunSeconds)
	}
	if _, err := m.Cancel(a.ID); !errors.Is(err, ErrJobFinished) {
		t.Errorf("cancel finished job: got %v, want ErrJobFinished", err)
	}

	if got := m.Telemetry().JobsCancelled.Value(); got != 2 {
		t.Errorf("JobsCancelled = %d, want 2", got)
	}
	if _, err := m.Get("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Get unknown: got %v, want ErrUnknownJob", err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel unknown: got %v, want ErrUnknownJob", err)
	}
}

func TestConcurrentSubmitsBeyondQueueDepth(t *testing.T) {
	const depth = 2
	m := newTestManager(t, Config{Workers: 1, QueueDepth: depth})

	blocker, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)

	// With the worker pinned, exactly depth of these can be accepted.
	const n = 12
	var wg sync.WaitGroup
	ids := make(chan string, n)
	var full, other int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Submit(synthSpec(slowIters))
			switch {
			case err == nil:
				ids <- v.ID
			case errors.Is(err, ErrQueueFull):
				mu.Lock()
				full++
				mu.Unlock()
			default:
				mu.Lock()
				other++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(ids)

	accepted := 0
	for id := range ids {
		accepted++
		if _, err := m.Cancel(id); err != nil {
			t.Errorf("cancel queued %s: %v", id, err)
		}
	}
	if accepted != depth {
		t.Errorf("accepted %d concurrent submits, want %d", accepted, depth)
	}
	if full != n-depth {
		t.Errorf("%d rejections with ErrQueueFull, want %d", full, n-depth)
	}
	if other != 0 {
		t.Errorf("%d submits failed with unexpected errors", other)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateCancelled)
}

// TestRaceLifecycle runs the full submit -> poll -> cancel lifecycle from
// many goroutines while readers hammer List and the metrics endpoint; it is
// only meaningful under `go test -race`.
func TestRaceLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2, QueueDepth: 16})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.List()
			m.Telemetry().WritePrometheus(io.Discard)
			time.Sleep(time.Millisecond)
		}
	}()

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			iters := 15
			if i%2 == 0 {
				iters = slowIters // these must be cancelled mid-run
			}
			v, err := m.Submit(synthSpec(iters))
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				cur, err := m.Get(v.ID)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if cur.State.Terminal() {
					return
				}
				if i%2 == 0 && cur.State == StateRunning {
					m.Cancel(v.ID) //nolint:errcheck // racing a finishing job is fine
				}
				m.Trajectory(v.ID) //nolint:errcheck
				time.Sleep(2 * time.Millisecond)
			}
			t.Errorf("job %s never finished", v.ID)
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	tel := m.Telemetry()
	if got := tel.JobsSubmitted.Value(); got != n {
		t.Errorf("JobsSubmitted = %d, want %d", got, n)
	}
	if done, canc := tel.JobsDone.Value(), tel.JobsCancelled.Value(); done+canc != n {
		t.Errorf("done %d + cancelled %d != submitted %d", done, canc, n)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"no design source", func(s *JobSpec) { s.Design = DesignSpec{} }},
		{"two design sources", func(s *JobSpec) {
			s.Design.Suite, s.Design.Name = "ispd2006", "adaptec5"
		}},
		{"aux disabled", func(s *JobSpec) {
			s.Design = DesignSpec{Aux: "adaptec5.aux"}
		}},
		{"unknown model", func(s *JobSpec) { s.Model = "nope" }},
		{"bad optimizer", func(s *JobSpec) { s.Placer.Optimizer = "sgd" }},
		{"non-pow2 grid", func(s *JobSpec) { s.Placer.GridX = 100 }},
		{"negative timeout", func(s *JobSpec) { s.TimeoutSeconds = -1 }},
		{"zero cells", func(s *JobSpec) { s.Design.Synth.Cells = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := synthSpec(10)
			tc.mut(&spec)
			if _, err := m.Submit(spec); !errors.Is(err, ErrSpecRejected) {
				t.Errorf("got %v, want ErrSpecRejected", err)
			}
		})
	}
	if got := m.Telemetry().JobsRejected.Value(); got != int64(len(cases)) {
		t.Errorf("JobsRejected = %d, want %d", got, len(cases))
	}
}

func TestJobDeadlineExceeded(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})
	spec := synthSpec(slowIters)
	spec.TimeoutSeconds = 0.05
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fv := waitState(t, m, v.ID, StateFailed)
	if fv.Error != "deadline exceeded" {
		t.Errorf("error = %q, want %q", fv.Error, "deadline exceeded")
	}
	if got := m.Telemetry().JobsFailed.Value(); got != 1 {
		t.Errorf("JobsFailed = %d, want 1", got)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	v, err := m.Submit(synthSpec(25))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	got, err := m.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Errorf("drained job state = %s, want done", got.State)
	}
	if _, err := m.Submit(synthSpec(10)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown: got %v, want ErrDraining", err)
	}
}

func TestRetentionGC(t *testing.T) {
	const keep = 2
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8, Retention: keep})
	var ids []string
	for i := 0; i < 5; i++ {
		v, err := m.Submit(synthSpec(5))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, v.ID, StateDone)
		ids = append(ids, v.ID)
	}
	if got := len(m.List()); got != keep {
		t.Errorf("retained %d finished jobs, want %d", got, keep)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest job should be pruned, Get returned %v", err)
	}
	if _, err := m.Get(ids[len(ids)-1]); err != nil {
		t.Errorf("newest job should be retained, Get returned %v", err)
	}
}
