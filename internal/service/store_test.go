package service

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// durableSpec is synthSpec pinned to one worker: bit-exact resume only holds
// at a fixed worker count, and the recovery test compares HPWL across boots.
func durableSpec(maxIters int) JobSpec {
	s := synthSpec(maxIters)
	s.Placer.Workers = 1
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Root() != dir {
		t.Errorf("Root() = %q, want %q", s.Root(), dir)
	}

	spec := durableSpec(10)
	status := PersistedStatus{
		State:       StateRunning,
		Design:      "synth",
		Model:       "WA",
		SubmittedAt: time.Now(),
		Resumes:     2,
	}
	if err := s.SaveSpec("job-000007", spec); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveStatus("job-000007", status); err != nil {
		t.Fatal(err)
	}

	jobs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("Load returned %d jobs, want 1", len(jobs))
	}
	pj := jobs[0]
	if pj.ID != "job-000007" || pj.Status.State != StateRunning || pj.Status.Resumes != 2 {
		t.Errorf("loaded job = %+v", pj)
	}
	if pj.Spec.Placer.MaxIters != 10 || pj.Spec.Placer.Workers != 1 {
		t.Errorf("loaded spec = %+v", pj.Spec)
	}
	if got := s.MaxSeq(); got != 7 {
		t.Errorf("MaxSeq = %d, want 7", got)
	}

	if _, err := s.LatestSnapshot("job-000007"); !errors.Is(err, checkpoint.ErrNoSnapshot) {
		t.Errorf("LatestSnapshot without checkpoints: err = %v, want ErrNoSnapshot", err)
	}

	if err := s.Delete("job-000007"); err != nil {
		t.Fatal(err)
	}
	jobs, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("after Delete, Load returned %d jobs", len(jobs))
	}
}

// TestStoreLoadSkipsCorruptRecords recovery must proceed past a job whose
// spec or status file is damaged.
func TestStoreLoadSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSpec("job-000001", durableSpec(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveStatus("job-000001", PersistedStatus{State: StateDone}); err != nil {
		t.Fatal(err)
	}
	// job-000002 has a spec but a mangled status file.
	if err := s.SaveSpec("job-000002", durableSpec(5)); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFile(filepath.Join(s.jobDir("job-000002"), "status.json"), "not a status"); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "job-000001" {
		t.Errorf("Load = %+v, want only job-000001", jobs)
	}
	// The damaged directory still counts for ID allocation.
	if got := s.MaxSeq(); got != 2 {
		t.Errorf("MaxSeq = %d, want 2", got)
	}
}

// TestManagerRecoversInterruptedJob is the daemon-level kill-and-resume test:
// a job interrupted by a hard shutdown must be persisted as interrupted,
// recovered by the next manager on the same data dir, resumed from its
// snapshot, and finish with the same HPWL as a never-interrupted run.
func TestManagerRecoversInterruptedJob(t *testing.T) {
	const iters = 300
	dataDir := t.TempDir()

	// Reference: the same spec run to completion without interruption.
	ref := newTestManager(t, Config{Workers: 1})
	rv, err := ref.Submit(durableSpec(iters))
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitState(t, ref, rv.ID, StateDone)

	// Boot A: run the job partway, then shut down with an expired budget so
	// the drain cancels it mid-flight.
	mA, err := OpenManager(Config{Workers: 1, DataDir: dataDir, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mA.Submit(durableSpec(iters))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jv, err := mA.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.Progress != nil && jv.Progress.Iteration >= 20 {
			break
		}
		if jv.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted: %+v", jv)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached iteration 20")
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	if err := mA.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (drain cancel)", err)
	}
	if got := mA.Telemetry().JobsInterrupted.Value(); got != 1 {
		t.Errorf("boot A JobsInterrupted = %d, want 1", got)
	}

	// The store must show the job as interrupted with a snapshot behind it.
	store, err := OpenStore(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	persisted, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != 1 || persisted[0].Status.State != StateInterrupted {
		t.Fatalf("persisted jobs = %+v, want one interrupted", persisted)
	}
	snap, err := store.LatestSnapshot(v.ID)
	if err != nil {
		t.Fatalf("interrupted job has no snapshot: %v", err)
	}
	if snap.Iter <= 0 || snap.Iter >= iters {
		t.Errorf("snapshot at iteration %d, want mid-run", snap.Iter)
	}

	// Boot B: same data dir. The job must be recovered, resumed, and finish
	// bit-identically to the reference.
	mB, err := OpenManager(Config{Workers: 1, DataDir: dataDir, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mB.Shutdown(ctx) //nolint:errcheck
	})
	if got := mB.Telemetry().JobsRecovered.Value(); got != 1 {
		t.Fatalf("boot B JobsRecovered = %d, want 1", got)
	}
	done := waitState(t, mB, v.ID, StateDone)
	if done.Resumes != 1 {
		t.Errorf("recovered job Resumes = %d, want 1", done.Resumes)
	}
	if done.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if done.Result.GPIters != iters {
		t.Errorf("recovered job ran %d GP iterations, want %d", done.Result.GPIters, iters)
	}
	if done.Result.DPWL != refDone.Result.DPWL {
		t.Errorf("recovered HPWL = %v, want bit-identical %v (diff %g)",
			done.Result.DPWL, refDone.Result.DPWL, done.Result.DPWL-refDone.Result.DPWL)
	}
	if done.Result.Overflow != refDone.Result.Overflow {
		t.Errorf("recovered Overflow = %v, want bit-identical %v",
			done.Result.Overflow, refDone.Result.Overflow)
	}

	// A fresh submission on boot B must not collide with the recovered ID.
	v2, err := mB.Submit(durableSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID == v.ID {
		t.Errorf("new job reused recovered ID %s", v2.ID)
	}
	waitState(t, mB, v2.ID, StateDone)

	// Done jobs persist as history across yet another boot.
	ctx, cancelB := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelB()
	if err := mB.Shutdown(ctx); err != nil {
		t.Fatalf("boot B drain: %v", err)
	}
	mC, err := OpenManager(Config{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mC.Shutdown(ctx) //nolint:errcheck
	})
	hv, err := mC.Get(v.ID)
	if err != nil {
		t.Fatalf("boot C lost the finished job: %v", err)
	}
	if hv.State != StateDone || hv.Result == nil || hv.Result.DPWL != refDone.Result.DPWL {
		t.Errorf("boot C history = %+v, want done with the same result", hv)
	}
	if got := mC.Telemetry().JobsRecovered.Value(); got != 0 {
		t.Errorf("boot C re-enqueued finished jobs: JobsRecovered = %d", got)
	}
}

// TestManagerUserCancelIsNotResumed an explicit Cancel must stay cancelled
// across a restart — only drain-interrupted jobs are re-enqueued.
func TestManagerUserCancelIsNotResumed(t *testing.T) {
	dataDir := t.TempDir()
	mA, err := OpenManager(Config{Workers: 1, DataDir: dataDir, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	v, err := mA.Submit(durableSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, mA, v.ID, StateRunning)
	if _, err := mA.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, mA, v.ID, StateCancelled)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mA.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	mB, err := OpenManager(Config{Workers: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mB.Shutdown(ctx) //nolint:errcheck
	})
	if got := mB.Telemetry().JobsRecovered.Value(); got != 0 {
		t.Errorf("cancelled job was re-enqueued: JobsRecovered = %d", got)
	}
	hv, err := mB.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hv.State != StateCancelled {
		t.Errorf("recovered state = %s, want cancelled", hv.State)
	}
}
