package service

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/bookshelf"
	"repro/internal/core"
	"repro/internal/ecocache"
	"repro/internal/guard"
	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

// JobSpec is the JSON body of POST /jobs: a design source, a wirelength
// model, and optional placer/flow tuning.
type JobSpec struct {
	Design DesignSpec `json:"design"`
	// Model names the wirelength model (LSE, WA, BiG_CHKS, ME, HPWL);
	// default "ME", the paper's Moreau-envelope model.
	Model  string     `json:"model,omitempty"`
	Placer PlacerSpec `json:"placer,omitempty"`
	Flow   FlowSpec   `json:"flow,omitempty"`
	// TimeoutSeconds bounds the job's run time; 0 uses the manager's
	// default (which may be unlimited).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Resume warm-starts the job from checkpoints recorded by another run
	// (typically on another fleet node sharing a filesystem). Only honored
	// when the daemon was started with -resume-root and the directory is
	// inside that root; rejected otherwise.
	Resume *ResumeSpec `json:"resume,omitempty"`
	// Parent names an earlier job this one is an incremental (ECO) revision
	// of. When the parent's placement is in the result cache and the design
	// delta is small, the job is served as a near hit: positions seed from
	// the parent and only the delta's blast region is re-placed. A missing or
	// uncached parent silently degrades to a cold start.
	Parent string `json:"parent,omitempty"`
}

// ResumeSpec points a job at an existing checkpoint directory.
type ResumeSpec struct {
	// Dir is scanned for the newest snapshot whose config fingerprint
	// matches this job; a mismatch (or no snapshot) cold-starts the run.
	Dir string `json:"dir,omitempty"`
}

// DesignSpec selects exactly one design source.
type DesignSpec struct {
	// Aux is a Bookshelf .aux path on the server (only allowed when the
	// manager was configured with an AuxRoot sandbox directory).
	Aux string `json:"aux,omitempty"`
	// Suite/Name pick a design from a synthetic contest suite
	// ("ispd2006" or "ispd2019"); Scale shrinks it (default suite scale).
	Suite string  `json:"suite,omitempty"`
	Name  string  `json:"name,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Synth generates an ad-hoc synthetic design inline.
	Synth *SynthSpec `json:"synth,omitempty"`
	// Perturb applies a deterministic structural edit (cell resizes and net
	// rewires, see netlist.Perturb) after the design is built. It models ECO
	// resubmission traffic: a child job keeps the parent's design spec and
	// adds a perturbation plus the parent reference.
	Perturb *PerturbSpec `json:"perturb,omitempty"`
}

// PerturbSpec mirrors netlist.Perturbation with JSON tags.
type PerturbSpec struct {
	Seed     int64   `json:"seed,omitempty"`
	CellFrac float64 `json:"cell_frac,omitempty"`
	NetFrac  float64 `json:"net_frac,omitempty"`
}

// SynthSpec mirrors synth.Spec with JSON tags and service defaults.
type SynthSpec struct {
	Name          string  `json:"name,omitempty"`
	Cells         int     `json:"cells"`
	Macros        int     `json:"macros,omitempty"`
	Pads          int     `json:"pads,omitempty"`
	FixedBlocks   int     `json:"fixed_blocks,omitempty"`
	Nets          int     `json:"nets,omitempty"`
	AvgDegree     float64 `json:"avg_degree,omitempty"`
	Utilization   float64 `json:"utilization,omitempty"`
	TargetDensity float64 `json:"target_density,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
}

// PlacerSpec is the JSON view of the placer.Config knobs the service exposes.
type PlacerSpec struct {
	MaxIters     int     `json:"max_iters,omitempty"`
	StopOverflow float64 `json:"stop_overflow,omitempty"`
	GridX        int     `json:"grid_x,omitempty"`
	GridY        int     `json:"grid_y,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Optimizer    string  `json:"optimizer,omitempty"`
	Init         string  `json:"init,omitempty"`
	Schedule     string  `json:"schedule,omitempty"`
	RecordEvery  int     `json:"record_every,omitempty"`
	// Workers sizes the shared placement worker pool (wirelength model,
	// density stamping, spectral solve, field gather).
	Workers int `json:"workers,omitempty"`
	// WLWorkers is a deprecated alias for Workers kept for old clients;
	// it applies only when workers is absent. This JSON knob is the only
	// place the alias still exists — placer.Config has a single Workers
	// field, and placerConfig folds the alias into it.
	WLWorkers    int  `json:"wl_workers,omitempty"`
	Precondition bool `json:"precondition,omitempty"`
	// Guard enables the numerical-health guard (divergence detection plus
	// snapshot rollback, see internal/guard) with default thresholds.
	// GuardMaxRetries overrides the per-episode rollback budget (0 keeps
	// the default).
	Guard           bool `json:"guard,omitempty"`
	GuardMaxRetries int  `json:"guard_max_retries,omitempty"`
}

// FlowSpec selects which stages run after global placement.
type FlowSpec struct {
	// GPOnly stops after global placement (fastest; the usual service
	// request shape).
	GPOnly bool `json:"gp_only,omitempty"`
	// SkipDetailed stops after legalization.
	SkipDetailed bool `json:"skip_detailed,omitempty"`
	// UseTetris swaps Abacus for the greedy Tetris legalizer.
	UseTetris bool `json:"use_tetris,omitempty"`
}

// Validate checks the spec without doing any heavy work, so bad requests are
// rejected at submit time rather than failing inside a worker.
func (s *JobSpec) Validate(auxRoot string) error {
	srcs := 0
	if s.Design.Aux != "" {
		srcs++
		if auxRoot == "" {
			return fmt.Errorf("aux jobs are disabled (daemon started without -aux-root)")
		}
		if _, err := s.auxPath(auxRoot); err != nil {
			return err
		}
	}
	if s.Design.Suite != "" || s.Design.Name != "" {
		srcs++
		if s.Design.Suite == "" || s.Design.Name == "" {
			return fmt.Errorf("suite jobs need both design.suite and design.name")
		}
	}
	if s.Design.Synth != nil {
		srcs++
		if s.Design.Synth.Cells <= 0 {
			return fmt.Errorf("design.synth.cells must be positive")
		}
	}
	if srcs != 1 {
		return fmt.Errorf("design must give exactly one of aux, suite/name, or synth (got %d)", srcs)
	}
	if pt := s.Design.Perturb; pt != nil {
		if pt.CellFrac < 0 || pt.CellFrac > 1 || pt.NetFrac < 0 || pt.NetFrac > 1 {
			return fmt.Errorf("design.perturb fractions must be in [0,1]")
		}
		if pt.CellFrac == 0 && pt.NetFrac == 0 {
			return fmt.Errorf("design.perturb needs cell_frac or net_frac > 0")
		}
	}
	m, err := wirelength.ByName(s.modelName())
	if err != nil {
		return err
	}
	if p := s.Placer; p.Workers > 0 && p.WLWorkers > 0 && p.Workers != p.WLWorkers {
		return fmt.Errorf("placer.workers (%d) and the deprecated placer.wl_workers alias (%d) are both set and disagree; set only workers", p.Workers, p.WLWorkers)
	}
	cfg := s.placerConfig()
	cfg.Model = m
	if err := cfg.Validate(); err != nil {
		return err
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("timeout_seconds must be >= 0")
	}
	return nil
}

// designLabel names the design source for job listings before the design is
// actually built (the worker replaces it with the real design name).
func (s *JobSpec) designLabel() string {
	switch {
	case s.Design.Aux != "":
		return filepath.Base(s.Design.Aux)
	case s.Design.Suite != "":
		return s.Design.Suite + "/" + s.Design.Name
	case s.Design.Synth != nil && s.Design.Synth.Name != "":
		return s.Design.Synth.Name
	case s.Design.Synth != nil:
		return fmt.Sprintf("synth%d", s.Design.Synth.Cells)
	}
	return ""
}

func (s *JobSpec) modelName() string {
	if s.Model == "" {
		return "ME"
	}
	return s.Model
}

// validateResumeDir checks the optional cross-node resume pointer against
// the manager's ResumeRoot sandbox. Kept out of Validate because the root is
// manager state, not part of the spec contract (old persisted specs without
// a resume block validate unchanged).
func (s *JobSpec) validateResumeDir(resumeRoot string) error {
	if s.Resume == nil || s.Resume.Dir == "" {
		return nil
	}
	if resumeRoot == "" {
		return fmt.Errorf("resume.dir jobs are disabled (daemon started without -resume-root)")
	}
	rel, err := filepath.Rel(resumeRoot, s.Resume.Dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return fmt.Errorf("resume.dir %q escapes the resume root", s.Resume.Dir)
	}
	return nil
}

// auxPath resolves the aux file inside the sandbox root, rejecting escapes.
func (s *JobSpec) auxPath(auxRoot string) (string, error) {
	p := filepath.Join(auxRoot, filepath.Clean("/"+s.Design.Aux))
	rel, err := filepath.Rel(auxRoot, p)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("aux path %q escapes the aux root", s.Design.Aux)
	}
	return p, nil
}

// placerConfig translates PlacerSpec into placer.Config (Model left nil).
// Each call builds a fresh guard.Config, so per-run OnEvent wiring never
// leaks between jobs sharing a spec. The deprecated wl_workers alias is
// resolved here — downstream code only ever sees Workers (Validate has
// already rejected conflicting non-zero values).
func (s *JobSpec) placerConfig() placer.Config {
	p := s.Placer
	workers := p.Workers
	if workers == 0 {
		workers = p.WLWorkers
	}
	cfg := placer.Config{
		MaxIters:     p.MaxIters,
		StopOverflow: p.StopOverflow,
		GridX:        p.GridX,
		GridY:        p.GridY,
		Seed:         p.Seed,
		Optimizer:    p.Optimizer,
		Init:         p.Init,
		Schedule:     p.Schedule,
		RecordEvery:  p.RecordEvery,
		Workers:      workers,
		Precondition: p.Precondition,
	}
	if p.Guard {
		cfg.Guard = &guard.Config{MaxRetries: p.GuardMaxRetries}
	}
	return cfg
}

// buildDesign materializes the design (and applies the optional ECO
// perturbation). Called inside a worker: generation of large synthetic
// designs and Bookshelf parsing can be slow.
func (s *JobSpec) buildDesign(auxRoot string) (*netlist.Design, error) {
	d, err := s.buildBaseDesign(auxRoot)
	if err != nil {
		return nil, err
	}
	if pt := s.Design.Perturb; pt != nil {
		return netlist.Perturb(d, netlist.Perturbation{
			Seed: pt.Seed, CellFrac: pt.CellFrac, NetFrac: pt.NetFrac,
		})
	}
	return d, nil
}

// buildBaseDesign materializes the design source before any perturbation.
func (s *JobSpec) buildBaseDesign(auxRoot string) (*netlist.Design, error) {
	d := s.Design
	switch {
	case d.Aux != "":
		p, err := s.auxPath(auxRoot)
		if err != nil {
			return nil, err
		}
		return bookshelf.ReadDesign(p)
	case d.Suite != "":
		scale := d.Scale
		if scale <= 0 {
			scale = 0.01
		}
		specs, err := synth.SuiteScaled(d.Suite, scale)
		if err != nil {
			return nil, err
		}
		for _, sp := range specs {
			if sp.Name == d.Name {
				return synth.Generate(sp)
			}
		}
		return nil, fmt.Errorf("design %q not in suite %s", d.Name, d.Suite)
	default:
		sp := d.Synth
		spec := synth.Spec{
			Name:           sp.Name,
			NumMovable:     sp.Cells,
			NumMacros:      sp.Macros,
			NumPads:        sp.Pads,
			NumFixedBlocks: sp.FixedBlocks,
			NumNets:        sp.Nets,
			AvgDegree:      sp.AvgDegree,
			Utilization:    sp.Utilization,
			TargetDensity:  sp.TargetDensity,
			Seed:           sp.Seed,
		}
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("synth%d", sp.Cells)
		}
		if spec.NumPads <= 0 {
			spec.NumPads = 8
		}
		if spec.NumNets <= 0 {
			spec.NumNets = sp.Cells + sp.Cells/10
		}
		if spec.AvgDegree < 2 {
			spec.AvgDegree = 3.9
		}
		if spec.Utilization <= 0 {
			spec.Utilization = 0.7
		}
		if spec.TargetDensity <= 0 {
			spec.TargetDensity = 1
		}
		return synth.Generate(spec)
	}
}

// cacheFingerprint condenses every result-determining knob of this spec into
// the config half of the placement-result cache key. Knobs the JSON spec does
// not expose stay at their zero value: the fingerprint only has to agree for
// specs that are the same computation and differ when they are not (a
// disagreement costs a cache miss, never a wrong result).
func (s *JobSpec) cacheFingerprint() ecocache.ConfigFingerprint {
	p := s.placerConfig()
	f := ecocache.ConfigFingerprint{
		Model:        s.modelName(),
		GridX:        p.GridX,
		GridY:        p.GridY,
		MaxIters:     p.MaxIters,
		StopOverflow: p.StopOverflow,
		Seed:         p.Seed,
		Init:         p.Init,
		Optimizer:    p.Optimizer,
		Schedule:     p.Schedule,
		Precondition: p.Precondition,
		Workers:      p.Workers,
		GPOnly:       s.Flow.GPOnly,
		SkipDetailed: s.Flow.SkipDetailed,
		UseTetris:    s.Flow.UseTetris,
	}
	if p.Guard != nil {
		f.Guard = true
		f.GuardRetries = p.Guard.MaxRetries
	}
	return f
}

// flowConfig builds the core.FlowConfig for this spec.
func (s *JobSpec) flowConfig() core.FlowConfig {
	cfg := core.DefaultFlowConfig(s.modelName())
	cfg.GP = s.placerConfig()
	cfg.GPOnly = s.Flow.GPOnly
	cfg.SkipDetailed = s.Flow.SkipDetailed
	cfg.UseTetris = s.Flow.UseTetris
	return cfg
}
