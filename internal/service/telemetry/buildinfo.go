package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// buildInfo is resolved once per process: module version and VCS revision
// from the embedded build metadata (when the binary was built from a module
// checkout) plus the Go toolchain version.
var (
	buildInfoOnce sync.Once
	buildVersion  string
	buildRevision string
	buildGo       string
)

func readBuildInfo() (version, revision, goVersion string) {
	buildInfoOnce.Do(func() {
		buildVersion, buildGo = "unknown", runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildVersion = bi.Main.Version
		}
		if bi.GoVersion != "" {
			buildGo = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				buildRevision = s.Value
			}
		}
	})
	return buildVersion, buildRevision, buildGo
}

// WriteBuildInfo renders the <prefix>_build_info gauge in the Prometheus
// "info metric" idiom: constant value 1, the interesting facts in labels, so
// dashboards can join any series against the version that produced it.
func WriteBuildInfo(w io.Writer, prefix string) {
	version, revision, goVersion := readBuildInfo()
	name := prefix + "_build_info"
	fmt.Fprintf(w, "# HELP %s Build metadata: constant 1 with version labels.\n# TYPE %s gauge\n", name, name)
	var labels strings.Builder
	fmt.Fprintf(&labels, "version=%q,go=%q", version, goVersion)
	if revision != "" {
		fmt.Fprintf(&labels, ",revision=%q", revision)
	}
	fmt.Fprintf(w, "%s{%s} 1\n", name, labels.String())
}
