package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// WorkerHealth is one worker's liveness row for the per-worker metric
// series: how stale its last heartbeat is, whether it is still within the
// registry TTL, and its last reported load.
type WorkerHealth struct {
	ID         string
	AgeSeconds float64
	Live       bool
	// Suspect flags an open circuit breaker: the worker heartbeats but its
	// dispatches keep failing, so it is tried last.
	Suspect    bool
	QueueDepth int
	Running    int
}

// FleetCollector aggregates the placement coordinator's metrics: admission
// decisions, routing outcomes (affinity hits, steals, re-routes), worker
// liveness, and submit-path latency. Rendered under the placercoord_ prefix
// so a fleet's coordinator and its workers can be scraped side by side.
type FleetCollector struct {
	// Admission and routing outcomes.
	JobsSubmitted Counter // jobs accepted by admission control
	JobsRejected  Counter // 429s: rate limit, quota, or fleet saturation
	JobsAssigned  Counter // jobs successfully placed on a worker
	JobsRerouted  Counter // jobs moved off a dead worker after heartbeat expiry
	JobsStolen    Counter // queued jobs stolen from a hot node onto an idle one
	AffinityHits  Counter // submissions routed to the node holding their checkpoints
	ParentRoutes  Counter // ECO children routed by their parent's placement location
	ProxyErrors   Counter // failed coordinator -> worker HTTP calls

	// Crash-safety: the coordinator job journal and its boot-time replay.
	JournalRecords Counter // records appended to the job journal
	JournalReplays Counter // records replayed from the journal at boot
	JobsRecovered  Counter // non-terminal jobs reconstructed by replay

	// Worker fleet state.
	Heartbeats     Counter // heartbeat reports received
	WorkersLive    Gauge   // workers currently within their heartbeat TTL
	WorkersSuspect Gauge   // workers with an open circuit breaker

	// Coordinator-side pending queue (jobs admitted but waiting for fleet
	// capacity).
	JobsPending Gauge

	// SubmitSeconds is the coordinator-side latency of placing one job on a
	// worker (admission through worker 202).
	SubmitSeconds *Histogram

	// workers is the latest per-worker health snapshot, refreshed by the
	// coordinator's maintenance tick and rendered as labeled gauges so
	// per-worker liveness is visible on /metrics directly, not just
	// inferable from TTL expiry side effects.
	workersMu sync.Mutex
	workers   []WorkerHealth
}

// NewFleetCollector returns a FleetCollector with default buckets.
func NewFleetCollector() *FleetCollector {
	return &FleetCollector{
		SubmitSeconds: NewHistogram(DurationBuckets()...),
	}
}

// SetWorkerHealth replaces the per-worker health snapshot (sorted by ID for
// a stable exposition order).
func (c *FleetCollector) SetWorkerHealth(ws []WorkerHealth) {
	cp := append([]WorkerHealth(nil), ws...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].ID < cp[j].ID })
	c.workersMu.Lock()
	c.workers = cp
	c.workersMu.Unlock()
}

// WritePrometheus renders the fleet metrics in the Prometheus text
// exposition format (version 0.0.4).
func (c *FleetCollector) WritePrometheus(w io.Writer) {
	WriteBuildInfo(w, "placercoord")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("placercoord_jobs_submitted_total", "Jobs accepted by admission control.", c.JobsSubmitted.Value())
	counter("placercoord_jobs_rejected_total", "Jobs rejected with 429 (rate limit, quota, or saturation).", c.JobsRejected.Value())
	counter("placercoord_jobs_assigned_total", "Jobs successfully placed on a worker.", c.JobsAssigned.Value())
	counter("placercoord_jobs_rerouted_total", "Jobs re-routed off a dead worker.", c.JobsRerouted.Value())
	counter("placercoord_jobs_stolen_total", "Queued jobs stolen from a hot node onto an idle one.", c.JobsStolen.Value())
	counter("placercoord_affinity_hits_total", "Submissions routed by checkpoint affinity.", c.AffinityHits.Value())
	counter("placercoord_parent_routes_total", "ECO children routed to the worker holding the parent placement.", c.ParentRoutes.Value())
	counter("placercoord_proxy_errors_total", "Failed coordinator-to-worker HTTP calls.", c.ProxyErrors.Value())
	counter("placercoord_heartbeats_total", "Worker heartbeat reports received.", c.Heartbeats.Value())
	counter("placercoord_journal_records_total", "Records appended to the crash-safety job journal.", c.JournalRecords.Value())
	counter("placercoord_journal_replays_total", "Journal records replayed at coordinator boot.", c.JournalReplays.Value())
	counter("placercoord_journal_recovered_jobs_total", "Non-terminal jobs reconstructed from the journal at boot.", c.JobsRecovered.Value())
	gauge("placercoord_workers_live", "Workers currently within their heartbeat TTL.", c.WorkersLive.Value())
	gauge("placercoord_workers_suspect", "Workers whose circuit breaker is open (dispatches failing).", c.WorkersSuspect.Value())
	gauge("placercoord_jobs_pending", "Admitted jobs waiting for fleet capacity.", c.JobsPending.Value())

	c.workersMu.Lock()
	workers := c.workers
	c.workersMu.Unlock()
	if len(workers) > 0 {
		labeled := func(name, help, kind string, value func(WorkerHealth) string) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
			for _, wh := range workers {
				fmt.Fprintf(w, "%s{worker=%q} %s\n", name, wh.ID, value(wh))
			}
		}
		labeled("placercoord_worker_heartbeat_age_seconds",
			"Seconds since each worker's last heartbeat.", "gauge",
			func(wh WorkerHealth) string { return formatFloat(wh.AgeSeconds) })
		labeled("placercoord_worker_live",
			"Whether each worker is within its heartbeat TTL (1 = live).", "gauge",
			func(wh WorkerHealth) string {
				if wh.Live {
					return "1"
				}
				return "0"
			})
		labeled("placercoord_worker_breaker_state",
			"Each worker's circuit-breaker state (0 = live, 1 = suspect).", "gauge",
			func(wh WorkerHealth) string {
				if wh.Suspect {
					return "1"
				}
				return "0"
			})
		labeled("placercoord_worker_queue_depth",
			"Each worker's last reported queue depth.", "gauge",
			func(wh WorkerHealth) string { return fmt.Sprintf("%d", wh.QueueDepth) })
		labeled("placercoord_worker_running",
			"Each worker's last reported running-job count.", "gauge",
			func(wh WorkerHealth) string { return fmt.Sprintf("%d", wh.Running) })
	}

	fmt.Fprintf(w, "# HELP placercoord_submit_seconds Coordinator-side submit-to-assignment latency.\n")
	fmt.Fprintf(w, "# TYPE placercoord_submit_seconds histogram\n")
	h := c.SubmitSeconds
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "placercoord_submit_seconds_bucket{le=%q} %d\n", formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "placercoord_submit_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "placercoord_submit_seconds_sum %s\n", formatFloat(h.Sum()))
	fmt.Fprintf(w, "placercoord_submit_seconds_count %d\n", h.Count())
}
