package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters never go down
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGauges(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	var f FloatGauge
	f.Set(3.25)
	if got := f.Value(); got != 3.25 {
		t.Errorf("float gauge = %g, want 3.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 1, 1.5, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-110) > 1e-12 {
		t.Errorf("sum = %g, want 110", got)
	}
	// Cumulative counts: le=1 holds {0.5, 1}, le=5 adds {1.5}, le=10 adds
	// {7}, +Inf adds {100}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	c := NewCollector()
	c.JobsSubmitted.Add(3)
	c.JobsDone.Inc()
	c.JobsCancelled.Inc()
	c.QueueDepth.Set(2)
	c.Iterations.Add(123)
	c.LastHPWL.Set(4567.5)
	c.GPSeconds.Observe(0.3)
	c.TotalSeconds.Observe(1.2)
	c.QueueSeconds.Observe(0.001)

	var sb strings.Builder
	c.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE placerd_jobs_submitted_total counter",
		"placerd_jobs_submitted_total 3",
		`placerd_jobs_finished_total{state="done"} 1`,
		`placerd_jobs_finished_total{state="cancelled"} 1`,
		`placerd_jobs_finished_total{state="failed"} 0`,
		"placerd_queue_depth 2",
		"placerd_gp_iterations_total 123",
		"placerd_last_hpwl 4567.5",
		`placerd_stage_seconds_bucket{stage="gp",le="0.5"} 1`,
		`placerd_stage_seconds_count{stage="gp"} 1`,
		`placerd_job_seconds_bucket{le="+Inf"} 1`,
		"placerd_job_seconds_count 1",
		"placerd_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

// TestHistogramExactExposition pins the exact Prometheus text a histogram
// family renders: HELP/TYPE header, cumulative buckets (each le includes
// everything below it), the +Inf bucket equal to the total count, and the
// sum/count pair.
func TestHistogramExactExposition(t *testing.T) {
	c := &Collector{}
	h := NewHistogram(0.5, 2)
	for _, v := range []float64{0.1, 0.5, 1, 3} {
		h.Observe(v)
	}
	var sb strings.Builder
	c.writeHistogram(&sb, "x_seconds", "Help text.", "stage", map[string]*Histogram{"gp": h})
	want := `# HELP x_seconds Help text.
# TYPE x_seconds histogram
x_seconds_bucket{stage="gp",le="0.5"} 2
x_seconds_bucket{stage="gp",le="2"} 3
x_seconds_bucket{stage="gp",le="+Inf"} 4
x_seconds_sum{stage="gp"} 4.6
x_seconds_count{stage="gp"} 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition:\n got %q\nwant %q", got, want)
	}

	// Without a label key the series carry no labels beyond le.
	sb.Reset()
	c.writeHistogram(&sb, "y_seconds", "H.", "", map[string]*Histogram{"": h})
	for _, line := range []string{
		`y_seconds_bucket{le="+Inf"} 4`, "y_seconds_sum 4.6", "y_seconds_count 4",
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("unlabeled exposition missing %q\n%s", line, sb.String())
		}
	}
}

// TestHistogramInfBucket: values above every bound land only in +Inf; the
// +Inf cumulative count always equals Count().
func TestHistogramInfBucket(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(100)
	h.Observe(1e18)
	if got := h.counts[0].Load(); got != 0 {
		t.Errorf("finite bucket = %d, want 0", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines
// with values spread across buckets; meaningful under -race, and the CAS
// float sum must not lose updates.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	vals := []float64{0.5, 5, 50, 500}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(vals[(w+i)%len(vals)])
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	perBucket := int64(workers * per / len(vals))
	for i := range vals {
		if got := h.counts[i].Load(); got != perBucket {
			t.Errorf("bucket %d = %d, want %d", i, got, perBucket)
		}
	}
	wantSum := float64(workers*per/len(vals)) * (0.5 + 5 + 50 + 500)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g (CAS lost updates)", got, wantSum)
	}
}

// TestEngineHistograms covers the iteration-latency and per-phase families
// added for the placement engine.
func TestEngineHistograms(t *testing.T) {
	c := NewCollector("wirelength", "poisson-solve")
	c.IterationSeconds.Observe(0.01)
	c.ObservePhase("wirelength", 0.002)
	c.ObservePhase("wirelength", 0.004)
	c.ObservePhase("poisson-solve", 0.008)
	c.ObservePhase("unregistered", 1) // silently dropped

	var sb strings.Builder
	c.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE placerd_gp_iteration_seconds histogram",
		"placerd_gp_iteration_seconds_count 1",
		`placerd_gp_phase_seconds_count{phase="wirelength"} 2`,
		`placerd_gp_phase_seconds_count{phase="poisson-solve"} 1`,
		`placerd_gp_phase_seconds_bucket{phase="wirelength",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "unregistered") {
		t.Error("unregistered phase leaked into the exposition")
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// meaningful under `go test -race`.
func TestConcurrentUpdates(t *testing.T) {
	c := NewCollector()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.JobsSubmitted.Inc()
				c.QueueDepth.Add(1)
				c.QueueDepth.Add(-1)
				c.LastHPWL.Set(float64(j))
				c.GPSeconds.Observe(0.25)
				var sb strings.Builder
				if j%100 == 0 {
					c.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.JobsSubmitted.Value(); got != workers*per {
		t.Errorf("submitted = %d, want %d", got, workers*per)
	}
	if got := c.QueueDepth.Value(); got != 0 {
		t.Errorf("queue depth = %d, want 0", got)
	}
	if got := c.GPSeconds.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.GPSeconds.Sum(); math.Abs(got-float64(workers*per)*0.25) > 1e-9 {
		t.Errorf("histogram sum = %g, want %g", got, float64(workers*per)*0.25)
	}
}

// TestFleetCollectorExposition pins the coordinator metric names — the
// journal/recovery counters and the breaker gauges are part of the scrape
// contract the failure-model docs point dashboards at.
func TestFleetCollectorExposition(t *testing.T) {
	c := NewFleetCollector()
	c.JournalRecords.Add(5)
	c.JournalReplays.Add(3)
	c.JobsRecovered.Add(2)
	c.WorkersSuspect.Set(1)
	c.SetWorkerHealth([]WorkerHealth{
		{ID: "w1", AgeSeconds: 0.5, Live: true, Suspect: true, QueueDepth: 2, Running: 1},
		{ID: "w0", AgeSeconds: 1.5, Live: true},
	})

	var sb strings.Builder
	c.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"placercoord_journal_records_total 5",
		"placercoord_journal_replays_total 3",
		"placercoord_journal_recovered_jobs_total 2",
		"placercoord_workers_suspect 1",
		`placercoord_worker_breaker_state{worker="w0"} 0`,
		`placercoord_worker_breaker_state{worker="w1"} 1`,
		`placercoord_worker_queue_depth{worker="w1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
	// SetWorkerHealth sorts by ID for stable exposition order.
	if strings.Index(out, `worker="w0"`) > strings.Index(out, `worker="w1"`) {
		t.Error("worker series not sorted by ID")
	}
}
