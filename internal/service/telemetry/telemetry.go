// Package telemetry collects service metrics — atomic counters, gauges, and
// fixed-bucket histograms — and renders them in the Prometheus text
// exposition format. Everything is stdlib-only and safe for concurrent use
// from the job manager's worker goroutines and HTTP scrape handlers.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value; Add adjusts it by delta (which may be negative).
func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic instantaneous float value (stored as bits).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// bucket i counts observations <= Bounds[i], plus an implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float bits, CAS-updated
	count  atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DurationBuckets are the default latency bounds in seconds.
func DurationBuckets() []float64 {
	return []float64{0.005, 0.02, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
}

// EngineBuckets are latency bounds for per-iteration engine work, which is
// orders of magnitude faster than whole jobs.
func EngineBuckets() []float64 {
	return []float64{1e-5, 5e-5, 2e-4, 1e-3, 5e-3, 0.02, 0.1, 0.5, 2, 10}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Collector aggregates every metric the placement service exports.
type Collector struct {
	// Job lifecycle counters.
	JobsSubmitted Counter // accepted into the queue
	JobsRejected  Counter // refused (queue full or shutting down)
	JobsDone      Counter
	JobsFailed    Counter
	JobsCancelled Counter
	// JobsRecovered counts jobs re-enqueued from the durable store at boot;
	// JobsInterrupted counts running jobs persisted as interrupted by a drain.
	JobsRecovered   Counter
	JobsInterrupted Counter
	// JobsPanicked counts worker runs that ended in a recovered panic. Each
	// such job is also counted in JobsFailed; the daemon itself keeps serving.
	JobsPanicked Counter

	// Numerical-health guard activity across all jobs (see internal/guard).
	GuardTrips      Counter
	GuardRollbacks  Counter
	GuardRecoveries Counter

	// CheckpointRetries counts transient snapshot-write failures that were
	// absorbed by the checkpoint retry loop.
	CheckpointRetries Counter

	// Placement-result cache outcomes (the ECO fast path, internal/ecocache):
	// hits were served bit-identically from the cache without running the GP
	// loop, near hits warm-started from a parent's cached placement with only
	// the delta's blast region released, misses cold-started.
	CacheHits     Counter
	CacheNearHits Counter
	CacheMisses   Counter

	// Live gauges.
	QueueDepth  Gauge
	JobsRunning Gauge
	// Placement-result cache size.
	CacheEntries Gauge
	CacheBytes   Gauge

	// Engine throughput and quality.
	Iterations   Counter    // global placement iterations across all jobs
	LastHPWL     FloatGauge // exact HPWL of the most recently finished job
	LastOverflow FloatGauge

	// Stage latencies in seconds.
	GPSeconds    *Histogram
	LGSeconds    *Histogram
	DPSeconds    *Histogram
	TotalSeconds *Histogram
	QueueSeconds *Histogram // time from submit to start

	// Engine-level latencies: one optimizer iteration, and the
	// per-iteration phases keyed by obs phase name (wirelength gradient,
	// density stamp, Poisson solve, field gather, optimizer step). The
	// PhaseSeconds map is built once in NewCollector and never mutated, so
	// concurrent ObservePhase calls need no locking.
	IterationSeconds *Histogram
	PhaseSeconds     map[string]*Histogram
}

// NewCollector returns a Collector with default histogram buckets. The
// per-phase histograms cover the given phase names (obs.EnginePhases() for
// the placement daemon).
func NewCollector(phases ...string) *Collector {
	c := &Collector{
		GPSeconds:        NewHistogram(DurationBuckets()...),
		LGSeconds:        NewHistogram(DurationBuckets()...),
		DPSeconds:        NewHistogram(DurationBuckets()...),
		TotalSeconds:     NewHistogram(DurationBuckets()...),
		QueueSeconds:     NewHistogram(DurationBuckets()...),
		IterationSeconds: NewHistogram(EngineBuckets()...),
		PhaseSeconds:     make(map[string]*Histogram, len(phases)),
	}
	for _, p := range phases {
		c.PhaseSeconds[p] = NewHistogram(EngineBuckets()...)
	}
	return c
}

// ObservePhase records one engine phase span. Phases not registered at
// construction are dropped (the map is immutable for lock-free reads).
func (c *Collector) ObservePhase(phase string, seconds float64) {
	if h := c.PhaseSeconds[phase]; h != nil {
		h.Observe(seconds)
	}
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4).
func (c *Collector) WritePrometheus(w io.Writer) {
	WriteBuildInfo(w, "placerd")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}

	counter("placerd_jobs_submitted_total", "Jobs accepted into the queue.", c.JobsSubmitted.Value())
	counter("placerd_jobs_rejected_total", "Jobs rejected at submit (queue full or draining).", c.JobsRejected.Value())

	fmt.Fprintf(w, "# HELP placerd_jobs_finished_total Jobs that reached a terminal state.\n")
	fmt.Fprintf(w, "# TYPE placerd_jobs_finished_total counter\n")
	fmt.Fprintf(w, "placerd_jobs_finished_total{state=\"done\"} %d\n", c.JobsDone.Value())
	fmt.Fprintf(w, "placerd_jobs_finished_total{state=\"failed\"} %d\n", c.JobsFailed.Value())
	fmt.Fprintf(w, "placerd_jobs_finished_total{state=\"cancelled\"} %d\n", c.JobsCancelled.Value())

	counter("placerd_jobs_recovered_total", "Jobs re-enqueued from the durable store at boot.", c.JobsRecovered.Value())
	counter("placerd_jobs_interrupted_total", "Running jobs persisted as interrupted during shutdown.", c.JobsInterrupted.Value())
	counter("placerd_jobs_panicked_total", "Worker runs that ended in a recovered panic.", c.JobsPanicked.Value())

	counter("placerd_guard_trips_total", "Numerical-health guard invariant violations.", c.GuardTrips.Value())
	counter("placerd_guard_rollbacks_total", "Guard rollbacks to an earlier snapshot.", c.GuardRollbacks.Value())
	counter("placerd_guard_recoveries_total", "Divergence episodes closed cleanly after rollback.", c.GuardRecoveries.Value())
	counter("placerd_checkpoint_write_retries_total", "Transient checkpoint write failures absorbed by retry.", c.CheckpointRetries.Value())

	counter("placerd_cache_hits_total", "Jobs served bit-identically from the placement-result cache.", c.CacheHits.Value())
	counter("placerd_cache_near_hits_total", "Jobs warm-started from a parent's cached placement (partial release).", c.CacheNearHits.Value())
	counter("placerd_cache_misses_total", "Cache-enabled jobs that cold-started.", c.CacheMisses.Value())

	gauge("placerd_queue_depth", "Jobs waiting in the queue.", fmt.Sprintf("%d", c.QueueDepth.Value()))
	gauge("placerd_jobs_running", "Jobs currently placing.", fmt.Sprintf("%d", c.JobsRunning.Value()))
	gauge("placerd_cache_entries", "Entries in the placement-result cache.", fmt.Sprintf("%d", c.CacheEntries.Value()))
	gauge("placerd_cache_bytes", "Bytes held by the placement-result cache.", fmt.Sprintf("%d", c.CacheBytes.Value()))

	counter("placerd_gp_iterations_total", "Global placement iterations across all jobs.", c.Iterations.Value())
	gauge("placerd_last_hpwl", "Exact HPWL of the most recently finished job.", formatFloat(c.LastHPWL.Value()))
	gauge("placerd_last_overflow", "Final density overflow of the most recently finished job.", formatFloat(c.LastOverflow.Value()))

	c.writeHistogram(w, "placerd_stage_seconds", "Per-stage wall-clock latency in seconds.", "stage", map[string]*Histogram{
		"gp": c.GPSeconds, "lg": c.LGSeconds, "dp": c.DPSeconds,
	})
	c.writeHistogram(w, "placerd_job_seconds", "End-to-end job latency in seconds.", "", map[string]*Histogram{
		"": c.TotalSeconds,
	})
	c.writeHistogram(w, "placerd_queue_wait_seconds", "Time jobs spent queued before starting.", "", map[string]*Histogram{
		"": c.QueueSeconds,
	})
	c.writeHistogram(w, "placerd_gp_iteration_seconds", "Wall-clock latency of one optimizer iteration.", "", map[string]*Histogram{
		"": c.IterationSeconds,
	})
	c.writeHistogram(w, "placerd_gp_phase_seconds", "Per-iteration engine phase latency in seconds.", "phase", c.PhaseSeconds)
}

// writeHistogram renders one histogram family; map keys become a
// labelKey="..." label (empty key = no label).
func (c *Collector) writeHistogram(w io.Writer, name, help, labelKey string, hs map[string]*Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	keys := make([]string, 0, len(hs))
	for s := range hs {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := hs[key]
		if h == nil {
			continue
		}
		labels := func(le string) string {
			if key == "" || labelKey == "" {
				return fmt.Sprintf("{le=%q}", le)
			}
			return fmt.Sprintf("{%s=%q,le=%q}", labelKey, key, le)
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels(formatFloat(b)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels("+Inf"), cum)
		suffix := ""
		if key != "" && labelKey != "" {
			suffix = fmt.Sprintf("{%s=%q}", labelKey, key)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
	}
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation, no exponent for typical magnitudes).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
