// Package service turns the batch placement flow into a long-running
// placement service: a job manager with a bounded FIFO queue and a worker
// pool executes placement flows (internal/core) with per-job cancellation
// and deadlines, streams live progress through the engine's OnIteration
// hook, and exports metrics via internal/service/telemetry. The HTTP layer
// in http.go exposes it as the placerd JSON API.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ecocache"
	"repro/internal/guard"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/service/telemetry"
)

// runHook, when non-nil, is called at the top of every job run with the job
// id. It exists for fault injection in tests (e.g. a hook that panics proves
// the worker's recover isolates the blast radius to one job); production
// builds never set it.
var runHook func(jobID string)

// Errors returned by Submit and Cancel; the HTTP layer maps them to status
// codes (429, 404, 409, 503).
var (
	ErrQueueFull    = errors.New("service: job queue is full")
	ErrDraining     = errors.New("service: manager is shutting down")
	ErrUnknownJob   = errors.New("service: unknown job")
	ErrJobFinished  = errors.New("service: job already finished")
	ErrJobRunning   = errors.New("service: job is already running")
	ErrSpecRejected = errors.New("service: invalid job spec")
)

// Config tunes the job manager.
type Config struct {
	// Workers is the number of concurrent placement workers (default 2).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submits beyond it fail with ErrQueueFull (default 16).
	QueueDepth int
	// Retention caps how many finished jobs are kept for inspection;
	// older ones are garbage-collected FIFO (default 64).
	Retention int
	// DefaultTimeout bounds jobs that do not set timeout_seconds
	// themselves; 0 means no default deadline.
	DefaultTimeout time.Duration
	// AuxRoot, when non-empty, allows Bookshelf aux jobs restricted to
	// paths under this directory. Empty disables aux jobs.
	AuxRoot string
	// DataDir, when non-empty, makes the manager durable: specs, statuses,
	// and placement snapshots are persisted under this directory, and on
	// the next boot unfinished jobs are recovered and re-enqueued as
	// warm-start resumes (see Store).
	DataDir string
	// ResumeRoot, when non-empty, allows jobs to carry a resume.dir
	// pointing at a checkpoint directory under this root. The fleet
	// coordinator uses it to hand a dead worker's snapshots to a live one
	// on a shared filesystem; empty disables cross-node resume.
	ResumeRoot string
	// CheckpointEvery is the placement snapshot cadence (iterations) for
	// store-backed jobs; default 25. Ignored without DataDir.
	CheckpointEvery int
	// CacheEntries/CacheBytes bound the durable placement-result cache the
	// manager keeps under <DataDir>/ecocache (0 keeps the ecocache package
	// defaults). The cache is the serving fast path: an exact (design hash,
	// config) match returns the stored placement without running the GP loop,
	// and a job with a Parent reference warm-starts off the parent's cached
	// placement. Ignored without DataDir.
	CacheEntries int
	CacheBytes   int64
	// Telemetry receives metrics; nil allocates a private collector.
	Telemetry *telemetry.Collector
	// Log receives the manager's structured log records (job lifecycle
	// events plus the engine's own logging, tagged with the job id). Nil
	// disables logging.
	Log *obs.Logger
	// TraceDir, when non-empty, enables span tracing for every job: each
	// run exports a Chrome trace_event file <TraceDir>/<job-id>.trace.json
	// on completion (loadable in chrome://tracing or Perfetto).
	TraceDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Retention <= 0 {
		c.Retention = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewCollector(obs.EnginePhases()...)
	}
	return c
}

// Manager owns the job queue, worker pool, and job table.
type Manager struct {
	cfg Config
	tel *telemetry.Collector
	log *obs.Logger

	// store is the durable job store; nil for an in-memory-only manager.
	store *Store
	// cache is the durable placement-result cache; nil without a DataDir.
	cache *ecocache.Cache

	queue chan *job

	baseCtx    context.Context // parent of every job context
	baseCancel context.CancelFunc

	wg sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for listing and retention GC
	seq      int64
	draining bool
}

// NewManager starts an in-memory manager with cfg.Workers worker
// goroutines. It ignores cfg.DataDir; use OpenManager for a durable one.
func NewManager(cfg Config) *Manager {
	cfg.DataDir = ""
	m, err := OpenManager(cfg)
	if err != nil {
		// Unreachable: without a DataDir nothing in OpenManager can fail.
		panic(err)
	}
	return m
}

// OpenManager starts a manager. With cfg.DataDir set it opens the durable
// job store there, replays finished jobs into the inspectable job table,
// and re-enqueues every unfinished job (queued, running, or interrupted at
// the previous shutdown) as a warm-start resume from its latest snapshot.
func OpenManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	var store *Store
	var persisted []PersistedJob
	if cfg.DataDir != "" {
		var err error
		store, err = OpenStore(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		persisted, err = store.Load()
		if err != nil {
			return nil, err
		}
	}
	// Size the queue so every recovered job fits alongside a full queue of
	// fresh submissions.
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		tel:        cfg.Telemetry,
		log:        cfg.Log,
		store:      store,
		queue:      make(chan *job, cfg.QueueDepth+len(persisted)),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	if store != nil {
		cache, err := ecocache.Open(filepath.Join(cfg.DataDir, "ecocache"), ecocache.Options{
			MaxEntries: cfg.CacheEntries,
			MaxBytes:   cfg.CacheBytes,
		})
		if err != nil {
			return nil, err
		}
		m.cache = cache
		m.updateCacheGauges()
		m.seq = store.MaxSeq()
		m.recover(persisted)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover replays the persisted job table: terminal jobs come back as
// inspectable history, unfinished ones are re-enqueued for a resumed run.
// Runs before the workers start, so no locking subtleties apply.
func (m *Manager) recover(persisted []PersistedJob) {
	for _, pj := range persisted {
		st := pj.Status
		if st.State.Terminal() {
			j := &job{
				id:        pj.ID,
				seq:       jobSeq(pj.ID),
				spec:      pj.Spec,
				cancel:    func() {},
				state:     st.State,
				design:    st.Design,
				model:     st.Model,
				submitted: st.SubmittedAt,
				started:   st.StartedAt,
				finished:  st.FinishedAt,
				err:       st.Error,
				result:    st.Result,
				resumes:   st.Resumes,
				cache:     st.Cache,
			}
			if st.Guard != nil {
				j.guard = *st.Guard
			}
			if j.model == "" {
				j.model = pj.Spec.modelName()
			}
			m.jobs[j.id] = j
			m.order = append(m.order, j)
			continue
		}
		// Unfinished: re-enqueue as a resume. The job context is rebuilt
		// from the spec (the old deadline, if any, starts afresh).
		jctx, cancel := m.jobContext(pj.Spec)
		j := &job{
			id:        pj.ID,
			seq:       jobSeq(pj.ID),
			spec:      pj.Spec,
			ctx:       jctx,
			cancel:    cancel,
			resume:    true,
			state:     StateQueued,
			model:     pj.Spec.modelName(),
			design:    pj.Spec.designLabel(),
			submitted: st.SubmittedAt,
			resumes:   st.Resumes + 1,
		}
		if j.submitted.IsZero() {
			j.submitted = time.Now()
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j)
		m.queue <- j // sized to hold every recovered job
		m.persist(j, "")
		m.tel.JobsRecovered.Inc()
		m.tel.QueueDepth.Add(1)
	}
}

// jobContext builds a job's run context from its spec timeout and the
// manager default.
func (m *Manager) jobContext(spec JobSpec) (context.Context, context.CancelFunc) {
	timeout := m.cfg.DefaultTimeout
	if spec.TimeoutSeconds > 0 {
		timeout = time.Duration(spec.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		return context.WithTimeout(m.baseCtx, timeout)
	}
	return context.WithCancel(m.baseCtx)
}

// persist writes a job's current status to the store (no-op without one).
// Best-effort by design: a failed status write must not take down a running
// placement.
func (m *Manager) persist(j *job, override State) {
	if m.store == nil {
		return
	}
	m.store.SaveStatus(j.id, j.persisted(override)) //nolint:errcheck // best-effort
}

// Telemetry returns the manager's metrics collector.
func (m *Manager) Telemetry() *telemetry.Collector { return m.tel }

// Submit validates the spec and enqueues a job, returning its snapshot.
// Fails fast with ErrQueueFull when the queue is at capacity and
// ErrDraining after Shutdown has begun.
func (m *Manager) Submit(spec JobSpec) (JobView, error) {
	if err := spec.Validate(m.cfg.AuxRoot); err != nil {
		m.tel.JobsRejected.Inc()
		return JobView{}, fmt.Errorf("%w: %v", ErrSpecRejected, err)
	}
	if err := spec.validateResumeDir(m.cfg.ResumeRoot); err != nil {
		m.tel.JobsRejected.Inc()
		return JobView{}, fmt.Errorf("%w: %v", ErrSpecRejected, err)
	}

	jctx, cancel := m.jobContext(spec)

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		cancel()
		m.tel.JobsRejected.Inc()
		return JobView{}, ErrDraining
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", m.seq),
		seq:       m.seq,
		spec:      spec,
		ctx:       jctx,
		cancel:    cancel,
		state:     StateQueued,
		model:     spec.modelName(),
		design:    spec.designLabel(),
		submitted: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		m.tel.JobsRejected.Inc()
		return JobView{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j)
	m.mu.Unlock()

	if m.store != nil {
		m.store.SaveSpec(j.id, spec) //nolint:errcheck // best-effort
		m.persist(j, "")
	}
	m.tel.JobsSubmitted.Inc()
	m.tel.QueueDepth.Add(1)
	return j.view(), nil
}

// Store returns the durable job store, or nil for an in-memory manager.
func (m *Manager) Store() *Store { return m.store }

// Get returns the snapshot of one job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	return j.view(), nil
}

// Trajectory returns the live trajectory buffer of one job.
func (m *Manager) Trajectory(id string) ([]JobTrajectoryPoint, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	pts := j.trajectory()
	out := make([]JobTrajectoryPoint, len(pts))
	for i, p := range pts {
		out[i] = JobTrajectoryPoint{
			Iter: p.Iter, Overflow: p.Overflow, HPWL: p.HPWL,
			Objective: p.Objective, Param: p.Param, Lambda: p.Lambda,
			GuardTrips: p.GuardTrips,
		}
	}
	return out, nil
}

// TrajectoryAfter returns the job's trajectory points with Iter > after
// (pass after = -1 for everything), plus whether the job has reached a
// terminal state. The streaming trajectory endpoint polls this: filtering by
// the monotonic Iter field stays correct even when the live buffer thins
// itself in place (which shifts slice indices).
func (m *Manager) TrajectoryAfter(id string, after int) ([]JobTrajectoryPoint, bool, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false, ErrUnknownJob
	}
	pts, terminal := j.trajectoryAfter(after)
	out := make([]JobTrajectoryPoint, len(pts))
	for i, p := range pts {
		out[i] = JobTrajectoryPoint{
			Iter: p.Iter, Overflow: p.Overflow, HPWL: p.HPWL,
			Objective: p.Objective, Param: p.Param, Lambda: p.Lambda,
			GuardTrips: p.GuardTrips,
		}
	}
	return out, terminal, nil
}

// JobTrajectoryPoint is the JSON form of placer.TrajectoryPoint.
type JobTrajectoryPoint struct {
	Iter      int     `json:"iter"`
	Overflow  float64 `json:"overflow"`
	HPWL      float64 `json:"hpwl"`
	Objective float64 `json:"objective"`
	Param     float64 `json:"param"`
	Lambda    float64 `json:"lambda"`
	// GuardTrips is the cumulative guard-trip count when the point was
	// recorded; a jump marks where the run rolled back and replayed.
	GuardTrips int `json:"guard_trips,omitempty"`
}

// List returns snapshots of all retained jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	jobs := make([]*job, len(m.order))
	copy(jobs, m.order)
	m.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Cancel cancels a queued or running job. Queued jobs flip to cancelled
// immediately; running jobs get their context cancelled and transition once
// the engine notices (within one placement iteration).
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	if j.currentState().Terminal() {
		return j.view(), ErrJobFinished
	}
	j.markUserCancelled()
	if j.markCancelledIfQueued() {
		// The worker will drain it from the queue and skip it.
		j.cancel()
		m.persist(j, "")
		m.tel.QueueDepth.Add(-1)
		m.tel.JobsCancelled.Inc()
		m.pruneFinished()
		return j.view(), nil
	}
	j.cancel() // running: the engine returns ctx.Err() at the next iteration
	return j.view(), nil
}

// CancelQueued cancels a job only while it is still waiting in the queue.
// Unlike Cancel it never touches a running placement: the fleet
// coordinator's work stealer uses it to pull queued jobs off a hot node,
// and a job that started in the meantime answers ErrJobRunning (the steal
// is simply abandoned). The race between checking and cancelling is closed
// by markCancelledIfQueued's internal lock.
func (m *Manager) CancelQueued(id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	if j.currentState().Terminal() {
		return j.view(), ErrJobFinished
	}
	if !j.markCancelledIfQueued() {
		return j.view(), ErrJobRunning
	}
	// Stolen jobs must stay cancelled across a restart, exactly like an
	// explicit user cancel (the coordinator re-owns the work).
	j.markUserCancelled()
	j.cancel()
	m.persist(j, "")
	m.tel.QueueDepth.Add(-1)
	m.tel.JobsCancelled.Inc()
	m.pruneFinished()
	return j.view(), nil
}

// ManagerStats is the capacity/load report a worker sends the fleet
// coordinator with every heartbeat.
type ManagerStats struct {
	// PlaceWorkers is the size of the placement worker pool (how many jobs
	// can run concurrently).
	PlaceWorkers int `json:"place_workers"`
	// QueueCap is the configured bound on waiting jobs.
	QueueCap int `json:"queue_cap"`
	// QueueDepth and Running are the live counts.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// Placement-result cache footprint and cumulative outcome counts
	// (zero-valued on managers running without a cache).
	CacheEntries  int64 `json:"cache_entries,omitempty"`
	CacheBytes    int64 `json:"cache_bytes,omitempty"`
	CacheHits     int64 `json:"cache_hits,omitempty"`
	CacheNearHits int64 `json:"cache_near_hits,omitempty"`
	CacheMisses   int64 `json:"cache_misses,omitempty"`
}

// Stats snapshots the manager's capacity and current load.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		PlaceWorkers:  m.cfg.Workers,
		QueueCap:      m.cfg.QueueDepth,
		QueueDepth:    int(m.tel.QueueDepth.Value()),
		Running:       int(m.tel.JobsRunning.Value()),
		CacheEntries:  m.tel.CacheEntries.Value(),
		CacheBytes:    m.tel.CacheBytes.Value(),
		CacheHits:     m.tel.CacheHits.Value(),
		CacheNearHits: m.tel.CacheNearHits.Value(),
		CacheMisses:   m.tel.CacheMisses.Value(),
	}
}

// worker consumes the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if !j.markRunning() {
			continue // cancelled while queued
		}
		m.persist(j, "")
		m.tel.QueueDepth.Add(-1)
		m.tel.JobsRunning.Add(1)
		v := j.view()
		m.tel.QueueSeconds.Observe(v.QueueWait)
		m.run(j)
		m.tel.JobsRunning.Add(-1)
		m.pruneFinished()
	}
}

// jobObserver builds the observability bundle for one job run: a logger
// tagged with the job id, a tracer when TraceDir is set, and a metrics
// registry whose latency sinks feed the shared Prometheus histograms.
func (m *Manager) jobObserver(j *job) *obs.Observer {
	met := obs.NewMetrics()
	met.OnIteration = m.tel.IterationSeconds.Observe
	met.OnPhase = m.tel.ObservePhase
	o := &obs.Observer{
		Log:     m.log.With("job", j.id),
		Metrics: met,
	}
	if m.cfg.TraceDir != "" {
		o.Trace = obs.NewTracer()
	}
	return o
}

// exportTrace writes a finished job's trace file (best-effort: a failed
// export is logged, never fails the job).
func (m *Manager) exportTrace(j *job, t *obs.Tracer) {
	if t == nil {
		return
	}
	path := filepath.Join(m.cfg.TraceDir, j.id+".trace.json")
	if err := os.MkdirAll(m.cfg.TraceDir, 0o755); err != nil {
		m.log.Warn("trace export failed", "job", j.id, "err", err)
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = t.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		m.log.Warn("trace export failed", "job", j.id, "err", err)
		return
	}
	m.log.Debug("trace exported", "job", j.id, "path", path, "spans", len(t.Events()), "dropped", t.Dropped())
}

// run executes one job's placement flow and records its terminal state. A
// panic anywhere in the flow (engine bug, poisoned input, injected fault) is
// recovered here: the job fails with the stack in its status, the worker
// survives, and the daemon keeps serving every other job.
func (m *Manager) run(j *job) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		j.finish(StateFailed, nil, fmt.Sprintf("panic: %v\n%s", r, debug.Stack()))
		m.persist(j, "")
		m.tel.JobsPanicked.Inc()
		m.tel.JobsFailed.Inc()
		m.log.Error("job panicked, worker recovered", "job", j.id, "panic", fmt.Sprint(r))
	}()
	if h := runHook; h != nil {
		h(j.id)
	}
	d, err := j.spec.buildDesign(m.cfg.AuxRoot)
	if err != nil {
		m.log.Warn("job rejected: bad design", "job", j.id, "err", err)
		j.finish(StateFailed, nil, err.Error())
		m.persist(j, "")
		m.tel.JobsFailed.Inc()
		return
	}
	j.mu.Lock()
	j.design = d.Name
	j.mu.Unlock()

	// Consult the placement-result cache: an exact (design hash, config
	// fingerprint) match serves the stored placement bit-identically without
	// entering the GP loop.
	var cacheKey ecocache.Key
	if m.cache != nil {
		cacheKey = ecocache.Key{Design: d.ContentHash(), Config: j.spec.cacheFingerprint().Key()}
		if cached := m.cache.Get(cacheKey); cached != nil && len(cached.X) == d.NumCells() {
			m.serveCacheHit(j, d, cached)
			return
		}
	}

	cfg := j.spec.flowConfig()
	if m.cache != nil {
		outcome := "miss"
		if j.spec.Parent != "" {
			if ws := m.planNearHit(j, d); ws != nil {
				// Near hit: the design now carries the parent's placement
				// (matched cells) with added cells centroid-seeded. Keep those
				// positions and release only the delta's blast region.
				cfg.GP.Freeze = ws.Freeze
				cfg.GP.Init = "keep"
				outcome = "near_hit"
				m.log.Info("job warm-starts from parent", "job", j.id, "parent", j.spec.Parent,
					"released", ws.Released, "frozen", ws.Frozen, "touched_frac", ws.TouchedFrac)
			}
		}
		j.setCacheOutcome(outcome)
		if outcome == "near_hit" {
			m.tel.CacheNearHits.Inc()
		} else {
			m.tel.CacheMisses.Inc()
		}
	}
	cfg.GP.OnIteration = func(pt placer.TrajectoryPoint) bool {
		j.recordIteration(pt)
		m.tel.Iterations.Inc()
		return true
	}
	if gc := cfg.GP.Guard; gc != nil {
		// Surface guard activity on the job (status + trajectory stream) and
		// in the shared Prometheus counters.
		gc.OnEvent = func(ev guard.Event) {
			j.recordGuardEvent(ev)
			switch ev.Kind {
			case guard.EventTrip:
				m.tel.GuardTrips.Inc()
			case guard.EventRollback:
				m.tel.GuardRollbacks.Inc()
			case guard.EventRecover:
				m.tel.GuardRecoveries.Inc()
			}
		}
	}
	o := m.jobObserver(j)
	cfg.GP.Obs = o
	defer m.exportTrace(j, o.Trace)
	m.log.Info("job started", "job", j.id, "design", d.Name, "model", j.spec.modelName(), "resumes", j.resumes)
	if m.store != nil {
		// Durable mode: snapshot periodically into the job's directory,
		// and warm-start recovered jobs from their latest snapshot. A
		// missing or mismatched snapshot degrades to a cold start (the
		// deterministic pipeline makes a matched resume bit-exact, so a
		// fingerprint mismatch means the spec or binary changed).
		cfg.GP.Checkpoint = placer.CheckpointConfig{
			Every: m.cfg.CheckpointEvery,
			Dir:   m.store.CheckpointDir(j.id),
		}
		if j.resume {
			if snap, err := m.store.LatestSnapshot(j.id); err == nil {
				cfg.GP.Resume = snap
			}
		}
	}
	if cfg.GP.Resume == nil && j.spec.Resume != nil && j.spec.Resume.Dir != "" {
		// Cross-node handoff: the coordinator re-routed this job here with a
		// pointer at another node's checkpoint directory (shared filesystem).
		// ResumeDir scans for the newest fingerprint-matching snapshot and
		// silently cold-starts when nothing matches, so a changed spec or
		// binary degrades to a fresh run instead of failing the job.
		cfg.GP.ResumeDir = j.spec.Resume.Dir
	}

	res, err := core.RunFlowContext(j.ctx, d, cfg)
	if err != nil && errors.Is(err, checkpoint.ErrMismatch) && cfg.GP.Resume != nil {
		// The snapshot no longer matches the rebuilt run (e.g. the spec's
		// worker count changed between boots): restart cold instead of
		// failing the job.
		cfg.GP.Resume = nil
		res, err = core.RunFlowContext(j.ctx, d, cfg)
	}
	switch {
	case err == nil:
		j.finish(StateDone, res, "")
		m.persist(j, "")
		if m.cache != nil {
			// Store the finished placement so an identical resubmission is an
			// exact hit and an ECO child can warm-start from it. Best-effort:
			// a full disk must not fail the job that just placed.
			m.cache.Put(cacheKey, &checkpoint.PlacementResult{ //nolint:errcheck
				DesignHash: [32]byte(cacheKey.Design),
				ConfigKey:  cacheKey.Config,
				HPWL:       res.DPWL,
				Overflow:   res.Overflow,
				Iterations: res.GPIters,
				Seconds:    res.TotalSeconds,
				X:          append([]float64(nil), d.X...),
				Y:          append([]float64(nil), d.Y...),
			})
			m.updateCacheGauges()
		}
		m.tel.JobsDone.Inc()
		m.tel.LastHPWL.Set(res.DPWL)
		m.tel.LastOverflow.Set(res.Overflow)
		m.tel.GPSeconds.Observe(res.GPSeconds)
		m.tel.LGSeconds.Observe(res.LGSeconds)
		m.tel.DPSeconds.Observe(res.DPSeconds)
		m.tel.TotalSeconds.Observe(res.TotalSeconds)
		m.log.Info("job done", "job", j.id, "design", d.Name,
			"hpwl", res.DPWL, "overflow", res.Overflow, "seconds", res.TotalSeconds)
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, "cancelled")
		if m.isDraining() && !j.wasUserCancelled() {
			// Shutdown drain, not an explicit cancel: persist the job as
			// interrupted so the next boot resumes it from the snapshot
			// the engine just wrote on its way out.
			m.persist(j, StateInterrupted)
			m.tel.JobsInterrupted.Inc()
			m.log.Info("job interrupted by drain", "job", j.id)
		} else {
			m.persist(j, "")
			m.tel.JobsCancelled.Inc()
			m.log.Info("job cancelled", "job", j.id)
		}
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, nil, "deadline exceeded")
		m.persist(j, "")
		m.tel.JobsFailed.Inc()
		m.log.Warn("job failed: deadline exceeded", "job", j.id)
	default:
		j.finish(StateFailed, nil, err.Error())
		m.persist(j, "")
		m.tel.JobsFailed.Inc()
		m.log.Warn("job failed", "job", j.id, "err", err)
	}
}

// serveCacheHit finishes a job straight from the placement-result cache: the
// stored positions are the final placement (bit-identical to the run that
// produced them), so the job reports done without one GP iteration.
func (m *Manager) serveCacheHit(j *job, d *netlist.Design, cached *checkpoint.PlacementResult) {
	copy(d.X, cached.X)
	copy(d.Y, cached.Y)
	res := &core.FlowResult{
		Design:   d.Name,
		Model:    j.spec.modelName(),
		GPWL:     cached.HPWL,
		LGWL:     cached.HPWL,
		DPWL:     cached.HPWL,
		Overflow: cached.Overflow,
	}
	j.setCacheOutcome("hit")
	j.finish(StateDone, res, "")
	m.persist(j, "")
	m.tel.CacheHits.Inc()
	m.tel.JobsDone.Inc()
	m.tel.LastHPWL.Set(cached.HPWL)
	m.tel.LastOverflow.Set(cached.Overflow)
	m.log.Info("job served from cache", "job", j.id, "design", d.Name, "hpwl", cached.HPWL)
}

// planNearHit tries to serve job j as an ECO near hit off its parent's cached
// placement: rebuild the parent design from its persisted spec, look the
// placement up under the parent's cache key, and plan a partial release of
// the child around the structural delta. Any missing piece — unknown parent,
// uncached placement, oversized delta — returns nil and the job cold-starts;
// the ECO path degrades, it never fails a job.
func (m *Manager) planNearHit(j *job, child *netlist.Design) *ecocache.WarmStart {
	parentID := j.spec.Parent
	var parentSpec JobSpec
	ok := false
	m.mu.Lock()
	if pj, found := m.jobs[parentID]; found {
		parentSpec, ok = pj.spec, true
	}
	m.mu.Unlock()
	if !ok && m.store != nil {
		if sp, err := m.store.LoadSpec(parentID); err == nil {
			parentSpec, ok = sp, true
		} else if sp, err := m.store.LoadArchivedSpec(parentID); err == nil {
			// The parent's job record was pruned, but its spec was archived
			// alongside the still-cached placement.
			parentSpec, ok = sp, true
		}
	}
	if !ok {
		m.log.Info("eco parent unknown, cold start", "job", j.id, "parent", parentID)
		return nil
	}
	parentD, err := parentSpec.buildDesign(m.cfg.AuxRoot)
	if err != nil {
		m.log.Warn("eco parent design rebuild failed, cold start", "job", j.id, "parent", parentID, "err", err)
		return nil
	}
	key := ecocache.Key{Design: parentD.ContentHash(), Config: parentSpec.cacheFingerprint().Key()}
	parentRes := m.cache.Get(key)
	if parentRes == nil {
		m.log.Info("eco parent not cached, cold start", "job", j.id, "parent", parentID)
		return nil
	}
	ws, reason := ecocache.PlanWarmStart(parentRes, parentD, child, ecocache.WarmStartOptions{})
	if ws == nil {
		m.log.Info("eco near hit rejected, cold start", "job", j.id, "parent", parentID, "reason", reason)
		return nil
	}
	return ws
}

// updateCacheGauges refreshes the cache size gauges (no-op without a cache).
func (m *Manager) updateCacheGauges() {
	if m.cache == nil {
		return
	}
	st := m.cache.Stats()
	m.tel.CacheEntries.Set(int64(st.Entries))
	m.tel.CacheBytes.Set(st.Bytes)
}

// isDraining reports whether Shutdown has begun.
func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// pruneFinished drops the oldest finished jobs beyond the retention cap.
func (m *Manager) pruneFinished() {
	m.mu.Lock()
	defer m.mu.Unlock()
	finished := 0
	for _, j := range m.order {
		if j.currentState().Terminal() {
			finished++
		}
	}
	if finished <= m.cfg.Retention {
		return
	}
	drop := finished - m.cfg.Retention
	kept := m.order[:0]
	archived := false
	for _, j := range m.order {
		if drop > 0 && j.currentState().Terminal() {
			delete(m.jobs, j.id)
			// Drop the job's directory too — except during a drain, when a
			// just-"cancelled" job may be persisted as interrupted and must
			// survive for recovery on the next boot. With a result cache the
			// spec is archived first: the job's cached placement outlives its
			// record, and an ECO child naming this job as parent still needs
			// the spec to rebuild the parent design for the structural diff.
			if m.store != nil && !m.draining {
				if m.cache != nil {
					if m.store.ArchiveSpec(j.id) == nil {
						archived = true
					}
				}
				m.store.Delete(j.id) //nolint:errcheck // best-effort GC
			}
			drop--
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
	if archived {
		m.store.PruneSpecArchive(m.specArchiveLimit())
	}
}

// specArchiveLimit bounds the pruned-job spec archive to the result cache's
// entry bound: archived specs only matter while the matching placement is
// still cached.
func (m *Manager) specArchiveLimit() int {
	if m.cfg.CacheEntries > 0 {
		return m.cfg.CacheEntries
	}
	return 256 // ecocache's default MaxEntries
}

// Shutdown drains the manager: no new submits are accepted, queued and
// running jobs are allowed to finish until ctx expires, after which every
// remaining job is cancelled. Blocks until all workers exit.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return ErrDraining
	}
	m.draining = true
	close(m.queue) // Submit holds mu while sending, so no send can race this
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.baseCancel() // cancel every in-flight job, then wait for workers
		<-done
	}
	m.baseCancel()
	return err
}
