package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// NewHandler wires the manager into the placerd JSON API:
//
//	POST   /jobs                    submit a JobSpec, returns the job snapshot
//	POST   /v1/jobs                 alias of POST /jobs (ECO clients; spec may carry "parent")
//	GET    /jobs                    list retained jobs
//	GET    /jobs/{id}               one job's live status
//	GET    /jobs/{id}/trajectory    the job's recorded HPWL-vs-overflow curve
//	DELETE /jobs/{id}               cancel a job (?if=queued: steal-safe cancel)
//	GET    /v1/jobs/{id}/trajectory stream trajectory points as NDJSON
//	GET    /stats                   capacity/queue-depth snapshot (fleet heartbeats)
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness probe
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	submit := func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		v, err := m.Submit(spec)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	}
	mux.HandleFunc("POST /jobs", submit)
	// /v1/jobs is the stable alias ECO clients use; `parent` in the spec
	// routes the job through the placement-result cache's near-hit path.
	mux.HandleFunc("POST /v1/jobs", submit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/trajectory", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		pts, err := m.Trajectory(id)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "trajectory": pts})
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trajectory", func(w http.ResponseWriter, r *http.Request) {
		streamTrajectory(m, w, r)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		// ?if=queued makes the cancel steal-safe: it refuses (409) when the
		// job already started, so a fleet coordinator can pull queued work
		// off a busy node without ever killing a running placement.
		var (
			v   JobView
			err error
		)
		if r.URL.Query().Get("if") == "queued" {
			v, err = m.CancelQueued(r.PathValue("id"))
		} else {
			v, err = m.Cancel(r.PathValue("id"))
		}
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Telemetry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// trajectoryPollInterval is how often the streaming endpoint checks a live
// job for new points.
const trajectoryPollInterval = 50 * time.Millisecond

// streamTrajectory serves GET /v1/jobs/{id}/trajectory: newline-delimited
// JSON, one trajectory point per line, flushed as the run produces them.
// The stream ends when the job reaches a terminal state (or, with
// ?follow=false, after the currently buffered points). The Fig. 3 curves of
// the paper replay directly from this endpoint. Optional query parameters:
//
//	after  only stream points with iter > after (resume a dropped stream)
//	follow "false" returns the current buffer and closes (default true)
func streamTrajectory(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := -1
	if s := r.URL.Query().Get("after"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad after parameter: "+err.Error())
			return
		}
		after = v
	}
	follow := r.URL.Query().Get("follow") != "false"

	// Fail with a proper status before committing to the stream.
	if _, _, err := m.TrajectoryAfter(id, after); err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		pts, terminal, err := m.TrajectoryAfter(id, after)
		if err != nil {
			return // job pruned mid-stream; the line stream just ends
		}
		for _, p := range pts {
			if err := enc.Encode(p); err != nil {
				return // client went away
			}
			after = p.Iter
		}
		if len(pts) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal || !follow {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(trajectoryPollInterval):
		}
	}
}

// statusFor maps manager errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrJobFinished):
		return http.StatusConflict
	case errors.Is(err, ErrJobRunning):
		return http.StatusConflict
	case errors.Is(err, ErrSpecRejected):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
