package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler wires the manager into the placerd JSON API:
//
//	POST   /jobs                 submit a JobSpec, returns the job snapshot
//	GET    /jobs                 list retained jobs
//	GET    /jobs/{id}            one job's live status
//	GET    /jobs/{id}/trajectory the job's recorded HPWL-vs-overflow curve
//	DELETE /jobs/{id}            cancel a queued or running job
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness probe
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
			return
		}
		v, err := m.Submit(spec)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/trajectory", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		pts, err := m.Trajectory(id)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "trajectory": pts})
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Telemetry().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// statusFor maps manager errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrJobFinished):
		return http.StatusConflict
	case errors.Is(err, ErrSpecRejected):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
