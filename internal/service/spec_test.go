package service

import (
	"encoding/json"
	"testing"
)

// TestPlacerSpecWorkers pins the JSON knob → placer.Config mapping for the
// shared worker pool, including the deprecated wl_workers alias. Setting
// both knobs to different values is ambiguous and rejected at validation.
func TestPlacerSpecWorkers(t *testing.T) {
	var spec JobSpec
	body := `{"design": {"synth": {"cells": 100}}, "placer": {"workers": 4, "wl_workers": 2}}`
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	cfg := spec.placerConfig()
	if cfg.Workers != 4 {
		t.Errorf("Workers = %d, want 4", cfg.Workers)
	}
	if cfg.WLWorkers != 2 {
		t.Errorf("WLWorkers = %d, want 2", cfg.WLWorkers)
	}
	if err := spec.Validate(""); err == nil {
		t.Fatal("spec with conflicting workers and wl_workers passed validation")
	}

	var agree JobSpec
	if err := json.Unmarshal([]byte(`{"design": {"synth": {"cells": 100}}, "placer": {"workers": 4, "wl_workers": 4}}`), &agree); err != nil {
		t.Fatal(err)
	}
	if err := agree.Validate(""); err != nil {
		t.Fatalf("spec with agreeing workers knobs failed validation: %v", err)
	}

	var legacy JobSpec
	if err := json.Unmarshal([]byte(`{"design": {"synth": {"cells": 100}}, "placer": {"wl_workers": 3}}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if cfg := legacy.placerConfig(); cfg.Workers != 0 || cfg.WLWorkers != 3 {
		t.Errorf("legacy spec mapped to Workers=%d WLWorkers=%d, want 0/3", cfg.Workers, cfg.WLWorkers)
	}
}
