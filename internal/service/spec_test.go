package service

import (
	"encoding/json"
	"testing"
)

// TestPlacerSpecWorkers is the single test pinning the wl_workers
// deprecation contract, which now lives entirely in this package: the JSON
// alias folds into placer.Config.Workers when workers is absent, agrees
// silently when the values match, and is rejected at validation when both
// knobs are set and disagree. placer.Config itself has no alias field.
func TestPlacerSpecWorkers(t *testing.T) {
	var spec JobSpec
	body := `{"design": {"synth": {"cells": 100}}, "placer": {"workers": 4, "wl_workers": 2}}`
	if err := json.Unmarshal([]byte(body), &spec); err != nil {
		t.Fatal(err)
	}
	if cfg := spec.placerConfig(); cfg.Workers != 4 {
		t.Errorf("Workers = %d, want 4 (workers wins over the alias)", cfg.Workers)
	}
	if err := spec.Validate(""); err == nil {
		t.Fatal("spec with conflicting workers and wl_workers passed validation")
	}

	var agree JobSpec
	if err := json.Unmarshal([]byte(`{"design": {"synth": {"cells": 100}}, "placer": {"workers": 4, "wl_workers": 4}}`), &agree); err != nil {
		t.Fatal(err)
	}
	if err := agree.Validate(""); err != nil {
		t.Fatalf("spec with agreeing workers knobs failed validation: %v", err)
	}

	var legacy JobSpec
	if err := json.Unmarshal([]byte(`{"design": {"synth": {"cells": 100}}, "placer": {"wl_workers": 3}}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Validate(""); err != nil {
		t.Fatalf("legacy wl_workers-only spec failed validation: %v", err)
	}
	if cfg := legacy.placerConfig(); cfg.Workers != 3 {
		t.Errorf("legacy spec mapped to Workers=%d, want 3 (alias folded in)", cfg.Workers)
	}
}
