package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/placer"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateInterrupted marks a job whose run was stopped by a daemon
	// shutdown with its latest snapshot persisted. It appears only in the
	// durable store: on the next boot the job is re-enqueued as a resume.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final. Interrupted is deliberately
// non-terminal: it is the resumable state recovery re-enqueues from.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is the live view of a running job, updated from the placement
// engine's OnIteration hook.
type Progress struct {
	Iteration int     `json:"iteration"`
	Overflow  float64 `json:"overflow"`
	HPWL      float64 `json:"hpwl"`
	Lambda    float64 `json:"lambda,omitempty"`
	Param     float64 `json:"param,omitempty"`
}

// GuardStatus summarizes a job's numerical-health guard activity: how often
// the per-iteration invariants tripped, how many rollbacks replayed from a
// snapshot, and how many divergence episodes closed cleanly.
type GuardStatus struct {
	Trips      int    `json:"trips"`
	Rollbacks  int    `json:"rollbacks"`
	Recoveries int    `json:"recoveries"`
	LastEvent  string `json:"last_event,omitempty"`
}

// JobView is the JSON snapshot served by GET /jobs and GET /jobs/{id}.
type JobView struct {
	ID          string           `json:"id"`
	State       State            `json:"state"`
	Design      string           `json:"design,omitempty"`
	Model       string           `json:"model"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   *time.Time       `json:"started_at,omitempty"`
	FinishedAt  *time.Time       `json:"finished_at,omitempty"`
	QueueWait   float64          `json:"queue_wait_seconds,omitempty"`
	RunSeconds  float64          `json:"run_seconds,omitempty"`
	Error       string           `json:"error,omitempty"`
	Progress    *Progress        `json:"progress,omitempty"`
	Result      *core.FlowResult `json:"result,omitempty"`
	// Resumes counts daemon restarts this job survived; a non-zero value
	// means the current run warm-started from a persisted snapshot.
	Resumes int `json:"resumes,omitempty"`
	// Guard is present once the run's numerical-health guard has tripped.
	Guard *GuardStatus `json:"guard,omitempty"`
	// Cache reports how the placement-result cache served this job: "hit"
	// (stored placement returned, no GP loop), "near_hit" (warm start off the
	// parent's placement with a partial release), or "miss" (cold start).
	// Empty when the manager runs without a cache.
	Cache string `json:"cache,omitempty"`
}

// maxTrajectoryPoints bounds the per-job live trajectory buffer; beyond it
// the buffer keeps every other point (repeatedly), preserving shape without
// unbounded growth on very long runs.
const maxTrajectoryPoints = 2048

// trajPoint pairs an engine trajectory point with the job's cumulative
// guard-trip count at the moment it was recorded, so rollbacks are visible
// in the streamed trajectory (the count jumps where the curve rewinds).
type trajPoint struct {
	placer.TrajectoryPoint
	GuardTrips int
}

// job is the manager's internal record. All mutable fields are guarded by
// mu; the context/cancel pair is immutable after creation.
type job struct {
	id   string
	seq  int64
	spec JobSpec

	ctx    context.Context
	cancel context.CancelFunc

	// resume marks a job recovered from the durable store: its run
	// warm-starts from the latest persisted snapshot (if any).
	resume bool

	mu     sync.Mutex
	state  State
	design string
	model  string
	// resumes counts recoveries; userCancelled distinguishes an explicit
	// Cancel from a shutdown drain (only the latter persists the job as
	// interrupted for resume on the next boot).
	resumes       int
	userCancelled bool
	// submitted/started/finished are time.Now() readings taken in-process,
	// so Sub between them uses the embedded monotonic clock.
	submitted  time.Time
	started    time.Time
	finished   time.Time
	err        string
	progress   Progress
	hasProg    bool
	result     *core.FlowResult
	traj       []trajPoint
	trajStride int // current sampling stride for the live buffer
	guard      GuardStatus
	cache      string // placement-result cache outcome: hit, near_hit, miss
}

// view snapshots the job for JSON serialization.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Design:      j.design,
		Model:       j.model,
		SubmittedAt: j.submitted,
		Error:       j.err,
		Result:      j.result,
		Resumes:     j.resumes,
		Cache:       j.cache,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
		v.QueueWait = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() { // cancelled-while-queued jobs never ran
			v.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	} else if j.state == StateRunning {
		v.RunSeconds = time.Since(j.started).Seconds()
	}
	if j.hasProg {
		p := j.progress
		v.Progress = &p
	}
	if j.guard.Trips > 0 {
		g := j.guard
		v.Guard = &g
	}
	return v
}

// trajectory returns a copy of the live trajectory buffer.
func (j *job) trajectory() []trajPoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]trajPoint, len(j.traj))
	copy(out, j.traj)
	return out
}

// trajectoryAfter returns a copy of the buffered points with Iter strictly
// greater than after, plus whether the job is terminal. Iter values are
// ascending, so a binary search finds the resume position.
func (j *job) trajectoryAfter(after int) ([]trajPoint, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lo, hi := 0, len(j.traj)
	for lo < hi {
		mid := (lo + hi) / 2
		if j.traj[mid].Iter <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := make([]trajPoint, len(j.traj)-lo)
	copy(out, j.traj[lo:])
	return out, j.state.Terminal()
}

// recordIteration updates live progress and the bounded trajectory buffer.
func (j *job) recordIteration(pt placer.TrajectoryPoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = Progress{
		Iteration: pt.Iter + 1,
		Overflow:  pt.Overflow,
		HPWL:      pt.HPWL,
		Lambda:    pt.Lambda,
		Param:     pt.Param,
	}
	j.hasProg = true
	// A guard rollback rewinds the engine to an earlier iteration. Drop the
	// buffered points from the abandoned future so Iter stays strictly
	// ascending — trajectoryAfter binary-searches on that invariant.
	for len(j.traj) > 0 && j.traj[len(j.traj)-1].Iter >= pt.Iter {
		j.traj = j.traj[:len(j.traj)-1]
	}
	if j.trajStride == 0 {
		j.trajStride = 1
	}
	if pt.Iter%j.trajStride != 0 {
		return
	}
	if len(j.traj) >= maxTrajectoryPoints {
		// Thin in place: drop every other point and double the stride.
		kept := j.traj[:0]
		for i, p := range j.traj {
			if i%2 == 0 {
				kept = append(kept, p)
			}
		}
		j.traj = kept
		j.trajStride *= 2
		if pt.Iter%j.trajStride != 0 {
			return
		}
	}
	j.traj = append(j.traj, trajPoint{TrajectoryPoint: pt, GuardTrips: j.guard.Trips})
}

// recordGuardEvent folds one guard event into the job's guard status.
func (j *job) recordGuardEvent(ev guard.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch ev.Kind {
	case guard.EventTrip:
		j.guard.Trips++
	case guard.EventRollback:
		j.guard.Rollbacks++
	case guard.EventRecover:
		j.guard.Recoveries++
	}
	j.guard.LastEvent = string(ev.Kind)
}

// markRunning transitions queued -> running; returns false if the job was
// cancelled while queued (the worker then skips it).
func (j *job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// markCancelledIfQueued flips a still-queued job straight to cancelled.
func (j *job) markCancelledIfQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.finished = time.Now()
	return true
}

// finish records the terminal state of a run.
func (j *job) finish(state State, res *core.FlowResult, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.err = errMsg
}

// setCacheOutcome records how the placement-result cache served this run.
func (j *job) setCacheOutcome(outcome string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cache = outcome
}

func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// markUserCancelled records that Cancel (not a drain) ended this job.
func (j *job) markUserCancelled() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.userCancelled = true
}

func (j *job) wasUserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}

// persisted snapshots the job for the durable store, optionally overriding
// the recorded state (used to persist "interrupted" during a drain while
// the in-memory job reports cancelled).
func (j *job) persisted(override State) PersistedStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := PersistedStatus{
		State:       j.state,
		Design:      j.design,
		Model:       j.model,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Error:       j.err,
		Result:      j.result,
		Resumes:     j.resumes,
		Cache:       j.cache,
	}
	if j.guard.Trips > 0 {
		g := j.guard
		st.Guard = &g
	}
	if override != "" {
		st.State = override
	}
	return st
}
