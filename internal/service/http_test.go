package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func decodeJob(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func TestHandlerSubmitAndStatus(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body, _ := json.Marshal(synthSpec(20))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d, want 202", resp.StatusCode)
	}
	v := decodeJob(t, resp)
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("unexpected submit response: %+v", v)
	}
	waitState(t, m, v.ID, StateDone)

	resp, err = http.Get(srv.URL + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id} status = %d, want 200", resp.StatusCode)
	}
	got := decodeJob(t, resp)
	if got.State != StateDone || got.Result == nil {
		t.Errorf("job view after completion: %+v", got)
	}
}

func TestHandlerErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Malformed JSON -> 400.
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}

	// Unknown JSON field -> 400 (DisallowUnknownFields).
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"design":{"synth":{"cells":10}},"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}

	// Invalid spec -> 400.
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"design":{"synth":{"cells":10}},"model":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status = %d, want 400", resp.StatusCode)
	}

	// Unknown job -> 404 on status, trajectory, and cancel.
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/job-999999"},
		{http.MethodGet, "/jobs/job-999999/trajectory"},
		{http.MethodDelete, "/jobs/job-999999"},
	} {
		r, _ := http.NewRequest(req.method, srv.URL+req.path, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s status = %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestHandlerQueueFullIs429(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	blocker, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	if _, err := m.Submit(synthSpec(slowIters)); err != nil { // fills the queue
		t.Fatal(err)
	}

	body, _ := json.Marshal(synthSpec(slowIters))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("queue-full submit status = %d, want 429", resp.StatusCode)
	}
}

func TestHandlerHealthAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"placerd_jobs_submitted_total",
		"placerd_queue_depth",
		"placerd_gp_iterations_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
