package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func decodeJob(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

func TestHandlerSubmitAndStatus(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body, _ := json.Marshal(synthSpec(20))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d, want 202", resp.StatusCode)
	}
	v := decodeJob(t, resp)
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("unexpected submit response: %+v", v)
	}
	waitState(t, m, v.ID, StateDone)

	resp, err = http.Get(srv.URL + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id} status = %d, want 200", resp.StatusCode)
	}
	got := decodeJob(t, resp)
	if got.State != StateDone || got.Result == nil {
		t.Errorf("job view after completion: %+v", got)
	}
}

func TestHandlerErrorMapping(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Malformed JSON -> 400.
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}

	// Unknown JSON field -> 400 (DisallowUnknownFields).
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"design":{"synth":{"cells":10}},"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}

	// Invalid spec -> 400.
	resp, err = http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"design":{"synth":{"cells":10}},"model":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status = %d, want 400", resp.StatusCode)
	}

	// Unknown job -> 404 on status, trajectory, and cancel.
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/job-999999"},
		{http.MethodGet, "/jobs/job-999999/trajectory"},
		{http.MethodDelete, "/jobs/job-999999"},
	} {
		r, _ := http.NewRequest(req.method, srv.URL+req.path, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s status = %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestHandlerQueueFullIs429(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	blocker, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	if _, err := m.Submit(synthSpec(slowIters)); err != nil { // fills the queue
		t.Fatal(err)
	}

	body, _ := json.Marshal(synthSpec(slowIters))
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("queue-full submit status = %d, want 429", resp.StatusCode)
	}
}

// readTrajectoryStream decodes an NDJSON trajectory stream to completion.
func readTrajectoryStream(t *testing.T, body io.Reader) []JobTrajectoryPoint {
	t.Helper()
	var pts []JobTrajectoryPoint
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var p JobTrajectoryPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("stream line is not a trajectory point: %v\n%q", err, sc.Text())
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return pts
}

// nonFlusher hides the recorder's Flush method. Wrapping middleware (and
// writers behind buffering proxies) may hand the trajectory handler a
// ResponseWriter that does not implement http.Flusher; the stream must
// degrade to plain buffered writes instead of panicking on a nil interface.
type nonFlusher struct{ http.ResponseWriter }

// TestStreamTrajectoryWithoutFlusher serves a finished job's trajectory to
// a non-Flusher ResponseWriter and checks the complete, strictly ascending
// point stream still arrives.
func TestStreamTrajectoryWithoutFlusher(t *testing.T) {
	_, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	h := NewHandler(m)
	v, err := m.Submit(synthSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	if _, ok := any(httptest.NewRecorder()).(http.Flusher); !ok {
		t.Fatal("test premise broken: ResponseRecorder no longer implements Flusher")
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+v.ID+"/trajectory", nil)
	h.ServeHTTP(nonFlusher{rec}, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("stream status = %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
	pts := readTrajectoryStream(t, rec.Body)
	if len(pts) == 0 {
		t.Fatal("no points streamed through non-Flusher writer")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Iter <= pts[i-1].Iter {
			t.Fatalf("points not strictly ascending at %d: %d then %d", i, pts[i-1].Iter, pts[i].Iter)
		}
	}
}

// TestStreamTrajectoryFinishedJob: streaming a done job returns the whole
// buffer and terminates without waiting.
func TestStreamTrajectoryFinishedJob(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v, err := m.Submit(synthSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trajectory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}
	pts := readTrajectoryStream(t, resp.Body)
	if len(pts) != 40 {
		t.Fatalf("streamed %d points, want 40 (one per iteration)", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Iter <= pts[i-1].Iter {
			t.Fatalf("iterations not strictly increasing: %d then %d", pts[i-1].Iter, pts[i].Iter)
		}
	}
	if pts[len(pts)-1].Iter != 39 {
		t.Errorf("last iter = %d, want 39", pts[len(pts)-1].Iter)
	}

	// Resume semantics: after=K returns only later points.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trajectory?after=35&follow=false")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tail := readTrajectoryStream(t, resp.Body)
	if len(tail) != 4 || tail[0].Iter != 36 {
		t.Errorf("after=35 returned %d points starting at %v, want 4 starting at 36", len(tail), tail)
	}
}

// TestStreamTrajectoryFollowsLiveJob: the stream delivers points while the
// job is still running and ends once it reaches a terminal state (here via
// cancellation). Meaningful under -race: the stream reader polls the same
// buffer the engine goroutine appends to.
func TestStreamTrajectoryFollowsLiveJob(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v, err := m.Submit(synthSpec(slowIters))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trajectory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	got := 0
	for got < 3 && sc.Scan() {
		var p JobTrajectoryPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("live stream line: %v", err)
		}
		got++
	}
	if got < 3 {
		t.Fatalf("live stream ended after %d points: %v", got, sc.Err())
	}
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	for sc.Scan() { // must terminate once the job is cancelled
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("draining stream after cancel: %v", err)
	}
	waitState(t, m, v.ID, StateCancelled)
}

func TestStreamTrajectoryErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999999/trajectory")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job stream status = %d, want 404", resp.StatusCode)
	}
}

// TestHandlerEngineMetrics: after one completed job /metrics exposes the
// iteration-latency histogram and one per-phase histogram per engine phase.
func TestHandlerEngineMetrics(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v, err := m.Submit(synthSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE placerd_gp_iteration_seconds histogram",
		"# TYPE placerd_gp_phase_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var iterCount int64
	for _, line := range strings.Split(out, "\n") {
		if n, ok := strings.CutPrefix(line, "placerd_gp_iteration_seconds_count "); ok {
			if _, err := json.Number(n).Int64(); err != nil {
				t.Fatalf("bad count line %q", line)
			}
			v, _ := json.Number(n).Int64()
			iterCount = v
		}
	}
	if iterCount < 30 {
		t.Errorf("iteration histogram count = %d, want >= 30", iterCount)
	}
	for _, phase := range obs.EnginePhases() {
		want := `placerd_gp_phase_seconds_count{phase="` + phase + `"}`
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing per-phase series %s", want)
		}
	}
}

// TestJobTraceExport: with TraceDir set every finished job leaves a Chrome
// trace file that decodes back to one span per engine phase per iteration.
func TestJobTraceExport(t *testing.T) {
	dir := t.TempDir()
	_, m := newTestServer(t, Config{Workers: 1, QueueDepth: 4, TraceDir: dir})
	v, err := m.Submit(synthSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)

	// The export runs in a defer after the job is already Done, so poll: the
	// file may not exist (or be mid-write) the instant the state flips.
	var tr *obs.Trace
	deadline := time.Now().Add(10 * time.Second)
	for {
		f, err := os.Open(filepath.Join(dir, v.ID+".trace.json"))
		if err == nil {
			tr, err = obs.ReadChromeTrace(f)
			f.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace file not readable: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	perPhase := map[string]int{}
	for _, ev := range tr.Events {
		perPhase[ev.Name]++
	}
	for _, phase := range obs.EnginePhases() {
		if perPhase[phase] < 10 {
			t.Errorf("trace has %d %q spans, want >= 10 (one per iteration)", perPhase[phase], phase)
		}
	}
	if perPhase["iteration"] != 10 {
		t.Errorf("trace has %d iteration spans, want 10", perPhase["iteration"])
	}
}

func TestHandlerHealthAndMetrics(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE placerd_build_info gauge",
		"placerd_build_info{",
		`go="go`,
		"placerd_jobs_submitted_total",
		"placerd_queue_depth",
		"placerd_gp_iterations_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
