// Package trajclient consumes the placement service's NDJSON trajectory
// streams (GET /v1/jobs/{id}/trajectory). It speaks to a single placerd
// worker or to a fleet coordinator's proxy interchangeably — both serve the
// same endpoint shape — and turns the line protocol into typed points with
// exactly-once, strictly-ascending-iteration delivery across reconnects:
// every reconnect resumes with ?after=<last delivered iteration>, so a
// dropped connection never loses or duplicates a point. This is the client
// half of the live Fig.-3 view: placertop tails these streams to draw
// HPWL/overflow convergence sparklines while a job runs.
package trajclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Point is one decoded trajectory sample: the JSON wire form of the
// service's per-iteration record (service.JobTrajectoryPoint).
type Point struct {
	Iter      int     `json:"iter"`
	Overflow  float64 `json:"overflow"`
	HPWL      float64 `json:"hpwl"`
	Objective float64 `json:"objective"`
	Param     float64 `json:"param"`
	Lambda    float64 `json:"lambda"`
	// GuardTrips is the job's cumulative guard-trip count when the point was
	// recorded; a jump marks a divergence rollback.
	GuardTrips int `json:"guard_trips,omitempty"`
}

// Stop may be returned by a Stream sink to end the stream cleanly: Stream
// stops delivering and returns nil.
var Stop = errors.New("trajclient: stop streaming") //nolint:errname // sentinel, not an error condition

// ErrNotFound marks a permanent 4xx from the server (unknown job, bad
// request): retrying cannot help, so Stream and Fetch fail immediately.
var ErrNotFound = errors.New("trajclient: job not found")

// Client streams trajectories from one base URL (a placerd worker or a
// coordinator proxying for its fleet). The zero value is not usable; set
// Base. All other fields are optional.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the client used for stream requests. nil uses a private
	// timeout-free client: a followed stream lives as long as the job runs,
	// so an overall request timeout would cut it off mid-run. Cancellation
	// comes from the context instead.
	HTTP *http.Client
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (defaults 100ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxAttempts is how many consecutive failed connect/read attempts
	// Stream tolerates before giving up (default 8; any successfully
	// delivered point resets the budget). Negative means retry forever.
	MaxAttempts int
	// OnRetry, when non-nil, observes each reconnect: the error that ended
	// the previous attempt and the wait before the next one.
	OnRetry func(jobID string, attempt int, wait time.Duration, err error)
}

// defaultStreamClient is shared by clients that do not inject their own: no
// overall timeout (streams are long-lived), cancellation via context.
var defaultStreamClient = &http.Client{}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultStreamClient
}

func (c *Client) backoffBounds() (min, max time.Duration) {
	min, max = c.BackoffMin, c.BackoffMax
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < min {
		max = min
	}
	return min, max
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts == 0 {
		return 8
	}
	return c.MaxAttempts
}

// streamURL builds the endpoint URL for one connection attempt.
func (c *Client) streamURL(jobID string, after int, follow bool) string {
	q := url.Values{}
	q.Set("after", strconv.Itoa(after))
	if !follow {
		q.Set("follow", "false")
	}
	return c.Base + "/v1/jobs/" + url.PathEscape(jobID) + "/trajectory?" + q.Encode()
}

// Fetch returns the currently buffered points with Iter > after in one
// round trip (no follow): the snapshot mode placertop -once uses.
func (c *Client) Fetch(ctx context.Context, jobID string, after int) ([]Point, error) {
	var pts []Point
	last := after
	err := c.streamOnce(ctx, jobID, false, &last, func(p Point) error {
		pts = append(pts, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// Stream follows the job's trajectory, invoking fn once per point in
// strictly ascending Iter order, starting after the given iteration (use -1
// for the whole history). Dropped connections are retried with exponential
// backoff, resuming via ?after so no point is delivered twice. Stream
// returns nil when the server ends the stream (the job reached a terminal
// state) or fn returns Stop; it returns ctx.Err() on cancellation, the
// sink's error if fn fails, and the last transport error once the retry
// budget is spent.
func (c *Client) Stream(ctx context.Context, jobID string, after int, fn func(Point) error) error {
	last := after
	attempt := 0
	minB, maxB := c.backoffBounds()
	wait := minB
	for {
		before := last
		err := c.streamOnce(ctx, jobID, true, &last, fn)
		switch {
		case err == nil:
			return nil // clean end of stream: job is terminal
		case errors.Is(err, Stop):
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, ErrNotFound):
			return err
		}
		var sinkErr *sinkError
		if errors.As(err, &sinkErr) {
			return sinkErr.err
		}
		if last > before {
			// Progress was made this attempt; reset the failure budget.
			attempt = 0
			wait = minB
		}
		attempt++
		if max := c.maxAttempts(); max > 0 && attempt > max {
			return fmt.Errorf("trajclient: job %s: giving up after %d attempts: %w", jobID, attempt-1, err)
		}
		if c.OnRetry != nil {
			c.OnRetry(jobID, attempt, wait, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		wait *= 2
		if wait > maxB {
			wait = maxB
		}
	}
}

// sinkError wraps an error returned by the caller's fn so Stream can tell
// "the sink rejected a point" (fail immediately, unwrapped) apart from "the
// transport failed" (reconnect and resume).
type sinkError struct{ err error }

func (e *sinkError) Error() string { return e.err.Error() }
func (e *sinkError) Unwrap() error { return e.err }

// streamOnce runs a single connection: it requests points after *last,
// decodes NDJSON lines, and delivers every point with Iter > *last (updating
// *last as it goes — the server already filters by ?after, the client-side
// check makes duplicate delivery impossible even against a buggy or proxied
// server). A nil return means the server ended the stream cleanly.
func (c *Client) streamOnce(ctx context.Context, jobID string, follow bool, last *int, fn func(Point) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.streamURL(jobID, *last, follow), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		// fall through to the line loop
	case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%w: %s (status %d, %s)", ErrNotFound, jobID, resp.StatusCode, msg)
	default:
		// 409 (pending at the coordinator, no worker yet), 502 (worker
		// unreachable mid-reroute), 503: all retryable.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return fmt.Errorf("trajclient: job %s: status %d", jobID, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p Point
		if err := json.Unmarshal(line, &p); err != nil {
			return fmt.Errorf("trajclient: job %s: bad stream line: %w", jobID, err)
		}
		if p.Iter <= *last {
			continue // duplicate across a reconnect boundary
		}
		if err := fn(p); err != nil {
			if errors.Is(err, Stop) {
				return Stop
			}
			return &sinkError{err: err}
		}
		*last = p.Iter
	}
	return sc.Err()
}
