package trajclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// writePoints renders NDJSON trajectory lines for iterations [from, to).
func writePoints(w http.ResponseWriter, from, to int) {
	for i := from; i < to; i++ {
		fmt.Fprintf(w, `{"iter":%d,"overflow":%g,"hpwl":%g,"objective":0,"param":0,"lambda":0}`+"\n",
			i, 1.0/float64(i+1), 1e6-float64(i)*1000)
	}
}

// dropConn abruptly severs the client connection (no clean chunked EOF), so
// the client observes a transport error rather than end-of-stream.
func dropConn(t *testing.T, w http.ResponseWriter) {
	t.Helper()
	hj, ok := w.(http.Hijacker)
	if !ok {
		t.Fatal("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

// TestStreamResumesAfterDrop is the reconnect contract: the connection dies
// mid-stream (after a half-written line, even) and the client resumes with
// ?after=<last delivered>, ending up with exactly-once, strictly ascending
// points.
func TestStreamResumesAfterDrop(t *testing.T) {
	var calls atomic.Int32
	var afterSeen atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after, err := strconv.Atoi(r.URL.Query().Get("after"))
		if err != nil {
			t.Errorf("bad after param: %v", err)
		}
		switch calls.Add(1) {
		case 1:
			if after != -1 {
				t.Errorf("first connect after = %d, want -1", after)
			}
			w.Header().Set("Content-Type", "application/x-ndjson")
			writePoints(w, 0, 3)
			// Half-written line: the decoder must treat it as a transport
			// error, not deliver a mangled point.
			fmt.Fprintf(w, `{"iter":3,"hp`)
			w.(http.Flusher).Flush()
			dropConn(t, w)
		default:
			afterSeen.Store(int32(after))
			w.Header().Set("Content-Type", "application/x-ndjson")
			// Deliberately replay an already-delivered point (a proxied
			// worker might): the client must drop it.
			writePoints(w, after, 6)
		}
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond}
	var got []int
	err := c.Stream(context.Background(), "job-1", -1, func(p Point) error {
		got = append(got, p.Iter)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("server saw %d connections, want >= 2 (a reconnect)", calls.Load())
	}
	if afterSeen.Load() != 2 {
		t.Errorf("reconnect used after=%d, want 2 (last fully delivered iter)", afterSeen.Load())
	}
	want := []int{0, 1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i, iter := range got {
		if iter != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("iterations not strictly ascending: %v", got)
		}
	}
}

// TestStreamRetryableStatusThenSuccess: a 409 (job pending at the
// coordinator, no worker yet) is retried, not fatal.
func TestStreamRetryableStatusThenSuccess(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"job has no worker yet (pending)"}`, http.StatusConflict)
			return
		}
		writePoints(w, 0, 3)
	}))
	defer srv.Close()

	retries := 0
	c := &Client{
		Base: srv.URL, BackoffMin: time.Millisecond, BackoffMax: time.Millisecond,
		OnRetry: func(jobID string, attempt int, wait time.Duration, err error) { retries++ },
	}
	n := 0
	if err := c.Stream(context.Background(), "job-1", -1, func(Point) error { n++; return nil }); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if n != 3 {
		t.Errorf("delivered %d points, want 3", n)
	}
	if retries == 0 {
		t.Error("OnRetry never fired for the 409")
	}
}

// TestStreamNotFoundIsPermanent: 404 fails immediately, no retry storm.
func TestStreamNotFoundIsPermanent(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, BackoffMin: time.Millisecond}
	err := c.Stream(context.Background(), "job-404", -1, func(Point) error { return nil })
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stream err = %v, want ErrNotFound", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d requests, want 1 (no retries on 404)", calls.Load())
	}
}

// TestStreamRetryBudgetExhausted: a server that always drops eventually
// exhausts MaxAttempts and surfaces the transport error.
func TestStreamRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, BackoffMin: time.Millisecond, BackoffMax: time.Millisecond, MaxAttempts: 3}
	err := c.Stream(context.Background(), "job-1", -1, func(Point) error { return nil })
	if err == nil {
		t.Fatal("Stream succeeded against an always-502 server")
	}
}

// TestStreamSinkStopAndError: Stop ends the stream cleanly; any other sink
// error is returned as-is without reconnecting.
func TestStreamSinkStopAndError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writePoints(w, 0, 10)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL, BackoffMin: time.Millisecond}
	n := 0
	err := c.Stream(context.Background(), "job-1", -1, func(p Point) error {
		n++
		if p.Iter == 2 {
			return Stop
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("Stop: err = %v after %d points, want nil after 3", err, n)
	}

	boom := errors.New("sink exploded")
	err = c.Stream(context.Background(), "job-1", -1, func(p Point) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("sink error = %v, want %v", err, boom)
	}
}

// TestStreamContextCancel: cancellation wins over an endless follow.
func TestStreamContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writePoints(w, 0, 1)
		w.(http.Flusher).Flush()
		<-r.Context().Done() // hold the stream open until the client goes away
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{Base: srv.URL, BackoffMin: time.Millisecond}
	errc := make(chan error, 1)
	go func() {
		errc <- c.Stream(ctx, "job-1", -1, func(Point) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Stream err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not return after cancellation")
	}
}

// TestFetch: one-shot snapshot honors after and does not follow.
func TestFetch(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("follow") != "false" {
			t.Errorf("Fetch must pass follow=false, got %q", r.URL.RawQuery)
		}
		after, _ := strconv.Atoi(r.URL.Query().Get("after"))
		writePoints(w, after+1, 8)
	}))
	defer srv.Close()

	c := &Client{Base: srv.URL}
	pts, err := c.Fetch(context.Background(), "job-1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Iter != 5 || pts[2].Iter != 7 {
		t.Fatalf("Fetch after=4 = %+v, want iters 5..7", pts)
	}
}
