package netlist

import (
	"sort"
	"testing"

	"repro/internal/geom"
)

// ecoBase builds a small named design: 8 movable cells in a row region, one
// fixed block, and a handful of nets including one "clock-like" big net.
func ecoBase(t testing.TB) *Design {
	t.Helper()
	b := NewBuilder("eco")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 20, YH: 20})
	b.SetTargetDensity(0.9)
	b.AddRow(Row{Y: 0, Height: 1, XL: 0, XH: 20, SiteW: 1})
	for i := 0; i < 8; i++ {
		b.AddCell(cellName(i), Movable, 2, 1, float64(2*i), 1)
	}
	b.AddCell("blk", Fixed, 3, 3, 10, 10)
	n0 := b.AddNet("n0", 1) // c0-c1
	b.AddPin(n0, 0, 0, 0)
	b.AddPin(n0, 1, 0, 0)
	n1 := b.AddNet("n1", 1) // c1-c2-c3
	b.AddPin(n1, 1, 1, 0)
	b.AddPin(n1, 2, 0, 0)
	b.AddPin(n1, 3, 0, 0)
	n2 := b.AddNet("n2", 2) // c4-c5, weighted
	b.AddPin(n2, 4, 0, 0)
	b.AddPin(n2, 5, 0, 0)
	n3 := b.AddNet("clk", 1) // big net over everything movable
	for i := 0; i < 8; i++ {
		b.AddPin(n3, i, 0.5, 0.5)
	}
	n4 := b.AddNet("n4", 1) // c6-c7-blk
	b.AddPin(n4, 6, 0, 0)
	b.AddPin(n4, 7, 0, 0)
	b.AddPin(n4, 8, 1, 1)
	return b.MustBuild()
}

func cellName(i int) string {
	return string(rune('a'+i)) + "cell"
}

// rebuild round-trips a design through the Builder applying edit callbacks.
type rebuildOpts struct {
	skipCell   map[int]bool
	editCell   func(i int, c *Cell)
	skipNet    map[int]bool
	editPin    func(e, k int, cell *int)
	extraCells func(b *Builder)
	extraNets  func(b *Builder)
}

func rebuild(t testing.TB, d *Design, o rebuildOpts) *Design {
	t.Helper()
	b := NewBuilder(d.Name)
	b.SetRegion(d.Region)
	b.SetTargetDensity(d.TargetDensity)
	for _, r := range d.Rows {
		b.AddRow(r)
	}
	kept := make([]int, 0, len(d.Cells))
	for i, c := range d.Cells {
		if o.skipCell[i] {
			kept = append(kept, -1)
			continue
		}
		cc := c
		if o.editCell != nil {
			o.editCell(i, &cc)
		}
		kept = append(kept, b.AddCell(cc.Name, cc.Kind, cc.W, cc.H, d.X[i], d.Y[i]))
	}
	if o.extraCells != nil {
		o.extraCells(b)
	}
	for e := range d.Nets {
		if o.skipNet[e] {
			continue
		}
		ne := b.AddNet(d.Nets[e].Name, d.Nets[e].Weight)
		for k, p := range d.NetPins(e) {
			cell := int(p.Cell)
			if o.editPin != nil {
				o.editPin(e, k, &cell)
			}
			if cell < 0 || kept[cell] < 0 {
				continue
			}
			b.AddPin(ne, kept[cell], p.Dx, p.Dy)
		}
	}
	if o.extraNets != nil {
		o.extraNets(b)
	}
	return b.MustBuild()
}

func TestDiffIdenticalDesignsIsEmpty(t *testing.T) {
	parent := ecoBase(t)
	child := rebuild(t, parent, rebuildOpts{})
	dl := Diff(parent, child)
	if !dl.Empty() {
		t.Fatalf("identical designs produced non-empty delta: %+v", dl)
	}
	if len(dl.Touched) != 0 {
		t.Fatalf("identical designs touched cells %v", dl.Touched)
	}
	if parent.ContentHash() != child.ContentHash() {
		t.Fatal("identical rebuilt design hashes differ")
	}
}

func TestDiffClassification(t *testing.T) {
	parent := ecoBase(t)
	child := rebuild(t, parent, rebuildOpts{
		editCell: func(i int, c *Cell) {
			if c.Name == cellName(4) {
				c.W = 4 // resize c4
			}
		},
		skipNet: map[int]bool{0: true}, // remove n0 (c0-c1)
		editPin: func(e, k int, cell *int) {
			if e == 1 && k == 2 { // n1: c3 -> c5
				*cell = 5
			}
		},
		extraCells: func(b *Builder) {
			b.AddCell("newcell", Movable, 1, 1, 0, 0)
		},
		extraNets: func(b *Builder) {
			// Wire the new cell to c7.
			ne := b.AddNet("nnew", 1)
			nc, _ := b.CellIndex("newcell")
			c7, _ := b.CellIndex(cellName(7))
			b.AddPin(ne, nc, 0, 0)
			b.AddPin(ne, c7, 0, 0)
		},
	})
	dl := Diff(parent, child)
	if len(dl.AddedCells) != 1 || child.Cells[dl.AddedCells[0]].Name != "newcell" {
		t.Fatalf("AddedCells = %v", dl.AddedCells)
	}
	if len(dl.ResizedCells) != 1 || child.Cells[dl.ResizedCells[0]].Name != cellName(4) {
		t.Fatalf("ResizedCells = %v", dl.ResizedCells)
	}
	if len(dl.RemovedCells) != 0 {
		t.Fatalf("RemovedCells = %v", dl.RemovedCells)
	}
	rewired := map[string]bool{}
	for _, e := range dl.RewiredNets {
		rewired[child.Nets[e].Name] = true
	}
	if !rewired["n1"] || !rewired["nnew"] || len(rewired) != 2 {
		t.Fatalf("RewiredNets = %v", rewired)
	}
	if len(dl.RemovedNets) != 1 || parent.Nets[dl.RemovedNets[0]].Name != "n0" {
		t.Fatalf("RemovedNets = %v", dl.RemovedNets)
	}
	// Touched: resized c4; rewired n1 pins (c1,c2,c5) + nnew (new cell, c7);
	// removed n0 pins (c0,c1).
	want := map[string]bool{
		cellName(0): true, cellName(1): true, cellName(2): true,
		cellName(4): true, cellName(5): true, cellName(7): true,
		"newcell": true,
	}
	got := map[string]bool{}
	for _, i := range dl.Touched {
		got[child.Cells[i].Name] = true
	}
	if len(got) != len(want) {
		t.Fatalf("Touched = %v, want %v", got, want)
	}
	for n := range want {
		if !got[n] {
			t.Fatalf("Touched missing %s (got %v)", n, got)
		}
	}
	if f := dl.TouchedFraction(child); f <= 0 || f > 1 {
		t.Fatalf("TouchedFraction = %g", f)
	}
}

func TestDiffMovedFixedTouchesNeighbors(t *testing.T) {
	parent := ecoBase(t)
	child := rebuild(t, parent, rebuildOpts{})
	blk, _ := 0, 0
	for i, c := range child.Cells {
		if c.Name == "blk" {
			blk = i
		}
	}
	child.X[blk] += 2
	dl := Diff(parent, child)
	if len(dl.MovedFixed) != 1 {
		t.Fatalf("MovedFixed = %v", dl.MovedFixed)
	}
	// n4 connects blk to c6 and c7, so both must be touched.
	got := map[string]bool{}
	for _, i := range dl.Touched {
		got[child.Cells[i].Name] = true
	}
	if !got[cellName(6)] || !got[cellName(7)] {
		t.Fatalf("moved fixed block did not touch its net neighbors: %v", got)
	}
}

func TestBlastRegionExpandsThroughSmallNetsOnly(t *testing.T) {
	parent := ecoBase(t)
	child := rebuild(t, parent, rebuildOpts{
		editCell: func(i int, c *Cell) {
			if c.Name == cellName(0) {
				c.W = 3
			}
		},
	})
	dl := Diff(parent, child)
	if len(dl.Touched) != 1 || child.Cells[dl.Touched[0]].Name != cellName(0) {
		t.Fatalf("Touched = %v", dl.Touched)
	}
	r0 := dl.BlastRegion(child, 0)
	if countTrue(r0) != 1 {
		t.Fatalf("hops=0 released %d cells", countTrue(r0))
	}
	r1 := dl.BlastRegion(child, 1)
	// One hop: c0 releases c1 via n0 (degree 2). The clk net (degree 8 <= 16)
	// also expands, releasing all 8 movable cells — but never the fixed block.
	if !r1[1] {
		t.Fatal("hop 1 did not release the n0 neighbor")
	}
	for i, rel := range r1 {
		if rel && !child.Cells[i].Kind.Moves() {
			t.Fatalf("released non-movable cell %s", child.Cells[i].Name)
		}
	}
}

func TestBlastRegionRespectsDegreeCap(t *testing.T) {
	// A star net of degree 20 (> maxExpandDegree) must not propagate.
	b := NewBuilder("star")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 30, YH: 30})
	for i := 0; i < 21; i++ {
		b.AddCell(cellName(i%8)+string(rune('0'+i/8)), Movable, 1, 1, float64(i), 1)
	}
	big := b.AddNet("big", 1)
	for i := 0; i < 20; i++ {
		b.AddPin(big, i, 0, 0)
	}
	sm := b.AddNet("small", 1)
	b.AddPin(sm, 0, 0, 0)
	b.AddPin(sm, 20, 0, 0)
	d := b.MustBuild()
	dl := &Delta{Touched: []int{0}}
	r := dl.BlastRegion(d, 2)
	if !r[0] || !r[20] {
		t.Fatal("small net neighbor not released")
	}
	if countTrue(r) != 2 {
		t.Fatalf("big net leaked the blast region: released %d cells", countTrue(r))
	}
}

func TestWarmPositionsTransfersAndSeeds(t *testing.T) {
	parent := ecoBase(t)
	// Pretend the parent was placed: shift everything.
	px := append([]float64(nil), parent.X...)
	py := append([]float64(nil), parent.Y...)
	for i, c := range parent.Cells {
		if c.Kind.Moves() {
			px[i] += 3
			py[i] += 2
		}
	}
	child := rebuild(t, parent, rebuildOpts{
		extraCells: func(b *Builder) { b.AddCell("newcell", Movable, 1, 1, 0, 0) },
		extraNets: func(b *Builder) {
			ne := b.AddNet("nnew", 1)
			nc, _ := b.CellIndex("newcell")
			c0, _ := b.CellIndex(cellName(0))
			c1, _ := b.CellIndex(cellName(1))
			b.AddPin(ne, nc, 0, 0)
			b.AddPin(ne, c0, 0, 0)
			b.AddPin(ne, c1, 0, 0)
		},
	})
	dl := Diff(parent, child)
	dl.WarmPositions(px, py, child)
	for i, c := range child.Cells {
		if c.Name == "newcell" || !c.Kind.Moves() {
			continue
		}
		pi := dl.CellMap[i]
		if child.X[i] != px[pi] || child.Y[i] != py[pi] {
			t.Fatalf("cell %s did not take parent position", c.Name)
		}
	}
	nc := dl.AddedCells[0]
	// The new cell should sit near the centroid of c0 and c1, not at origin.
	wantX := (child.CenterX(0) + child.CenterX(1)) / 2
	wantY := (child.CenterY(0) + child.CenterY(1)) / 2
	if abs(child.CenterX(nc)-wantX) > 1e-9 || abs(child.CenterY(nc)-wantY) > 1e-9 {
		t.Fatalf("new cell at (%g,%g), want centroid (%g,%g)",
			child.CenterX(nc), child.CenterY(nc), wantX, wantY)
	}
}

func TestNetSubsetSharesPositionsAndSplitsHPWL(t *testing.T) {
	d := ecoBase(t)
	keep := make([]bool, d.NumNets())
	inv := make([]bool, d.NumNets())
	for e := range keep {
		keep[e] = e%2 == 0
		inv[e] = !keep[e]
	}
	sub := d.NetSubset(keep)
	rest := d.NetSubset(inv)
	if err := sub.Validate(); err != nil {
		t.Fatalf("subset invalid: %v", err)
	}
	if err := rest.Validate(); err != nil {
		t.Fatalf("complement invalid: %v", err)
	}
	total := hpwlOf(d)
	if got := hpwlOf(sub) + hpwlOf(rest); abs(got-total) > 1e-9 {
		t.Fatalf("subset HPWL split %g != total %g", got, total)
	}
	// Moving a cell through the parent must be visible in the subset view.
	d.X[0] += 5
	if sub.X[0] != d.X[0] {
		t.Fatal("subset does not share the position backing arrays")
	}
}

func TestPerturbDeterministicAndDiffable(t *testing.T) {
	base := ecoBase(t)
	p1, err := Perturb(base, Perturbation{Seed: 9, CellFrac: 0.25, NetFrac: 0.4})
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	p2, err := Perturb(base, Perturbation{Seed: 9, CellFrac: 0.25, NetFrac: 0.4})
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	if p1.ContentHash() != p2.ContentHash() {
		t.Fatal("Perturb is not deterministic")
	}
	if p1.ContentHash() == base.ContentHash() {
		t.Fatal("Perturb did not change the design")
	}
	if base.ContentHash() != ecoBase(t).ContentHash() {
		t.Fatal("Perturb mutated its input")
	}
	dl := Diff(base, p1)
	if dl.Empty() {
		t.Fatal("diff of perturbed design is empty")
	}
	if len(dl.AddedCells) != 0 || len(dl.RemovedCells) != 0 {
		t.Fatalf("perturb added/removed cells: %v %v", dl.AddedCells, dl.RemovedCells)
	}
	if _, err := Perturb(base, Perturbation{CellFrac: 2}); err == nil {
		t.Fatal("Perturb accepted CellFrac > 1")
	}
}

func TestPerturbSmallFractionStaysSmall(t *testing.T) {
	d := randomBigDesign(t)
	p, err := Perturb(d, Perturbation{Seed: 4, CellFrac: 0.01, NetFrac: 0.005})
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	dl := Diff(d, p)
	if f := dl.TouchedFraction(p); f == 0 || f > 0.05 {
		t.Fatalf("TouchedFraction = %g, want (0, 0.05]", f)
	}
}

// randomBigDesign builds a ~600-cell named design for fraction statistics.
func randomBigDesign(t testing.TB) *Design {
	t.Helper()
	b := NewBuilder("big")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 60, YH: 60})
	n := 600
	for i := 0; i < n; i++ {
		b.AddCell(cellName(i%8)+string(rune('0'+i/8%10))+string(rune('0'+i/80)), Movable, 1+float64(i%3), 1, float64(i%60), float64(i/60))
	}
	for e := 0; e < 650; e++ {
		ne := b.AddNet("net"+string(rune('0'+e%10))+string(rune('0'+e/10%10))+string(rune('0'+e/100)), 1)
		base := (e * 7) % n
		deg := 2 + e%3
		for k := 0; k < deg; k++ {
			b.AddPin(ne, (base+k*3)%n, 0, 0)
		}
	}
	return b.MustBuild()
}

func countTrue(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func hpwlOf(d *Design) float64 {
	total := 0.0
	for e := range d.Nets {
		pins := d.NetPins(e)
		if len(pins) == 0 {
			continue
		}
		xs := make([]float64, len(pins))
		ys := make([]float64, len(pins))
		for i, p := range pins {
			xs[i] = d.X[p.Cell] + p.Dx
			ys[i] = d.Y[p.Cell] + p.Dy
		}
		sort.Float64s(xs)
		sort.Float64s(ys)
		total += d.Nets[e].Weight * (xs[len(xs)-1] - xs[0] + ys[len(ys)-1] - ys[0])
	}
	return total
}
