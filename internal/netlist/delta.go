package netlist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Delta classifies a resubmitted design (the child) against the design it
// was derived from (the parent): which cells appeared, disappeared, or
// changed shape, and which nets were rewired. The ecocache uses it to decide
// between an exact cache hit, a warm-started partial re-placement (releasing
// only the delta's blast region), and a cold start.
type Delta struct {
	// CellMap maps each child cell index to its parent index, -1 for cells
	// with no parent counterpart (added cells).
	CellMap []int
	// AddedCells, ResizedCells, and MovedFixed are child cell indices:
	// cells with no parent match, matched cells whose kind or dimensions
	// changed, and matched non-movable cells whose pinned position changed.
	AddedCells   []int
	ResizedCells []int
	MovedFixed   []int
	// RemovedCells are parent cell indices with no child match.
	RemovedCells []int
	// RewiredNets are child net indices whose weight or pin multiset
	// differs from the parent (including nets that are entirely new).
	RewiredNets []int
	// RemovedNets are parent net indices with no child match.
	RemovedNets []int
	// Touched lists the child's movable cell indices directly affected by
	// the delta — the seed of the blast region: added/resized cells, cells
	// on rewired or removed nets, and movable cells sharing a net with a
	// moved or resized fixed cell.
	Touched []int
}

// cellKey identifies a cell across the two designs: by name when every cell
// in both designs has a unique non-empty name (the normal case for generated
// and Bookshelf designs), by index otherwise.
func cellKeys(d *Design) (map[string]int, bool) {
	m := make(map[string]int, len(d.Cells))
	for i, c := range d.Cells {
		if c.Name == "" {
			return nil, false
		}
		if _, dup := m[c.Name]; dup {
			return nil, false
		}
		m[c.Name] = i
	}
	return m, true
}

// Diff computes the structural delta from parent to child. Cells and nets
// are matched by name when names are unique and non-empty on both sides,
// falling back to index matching otherwise.
func Diff(parent, child *Design) *Delta {
	dl := &Delta{CellMap: make([]int, len(child.Cells))}

	pByName, pok := cellKeys(parent)
	_, cok := cellKeys(child)
	byName := pok && cok
	parentMatched := make([]bool, len(parent.Cells))
	for i, c := range child.Cells {
		pi := -1
		if byName {
			if j, ok := pByName[c.Name]; ok {
				pi = j
			}
		} else if i < len(parent.Cells) {
			pi = i
		}
		dl.CellMap[i] = pi
		if pi < 0 {
			dl.AddedCells = append(dl.AddedCells, i)
			continue
		}
		parentMatched[pi] = true
		pc := parent.Cells[pi]
		if pc.Kind != c.Kind || pc.W != c.W || pc.H != c.H {
			dl.ResizedCells = append(dl.ResizedCells, i)
		} else if !c.Kind.Moves() && (parent.X[pi] != child.X[i] || parent.Y[pi] != child.Y[i]) {
			dl.MovedFixed = append(dl.MovedFixed, i)
		}
	}
	for pi, ok := range parentMatched {
		if !ok {
			dl.RemovedCells = append(dl.RemovedCells, pi)
		}
	}

	// parentOf maps a child cell index to the key used in net signatures:
	// the parent index when matched, or a negative synthetic key for added
	// cells (which can never appear in any parent net signature).
	parentOf := func(ci int32) int {
		if pi := dl.CellMap[ci]; pi >= 0 {
			return pi
		}
		return -1 - int(ci)
	}

	// Net signatures: weight plus the (parent-keyed cell, dx, dy) pin
	// multiset. Matched by name when possible, by index otherwise.
	identity := func(ci int32) int { return int(ci) }
	netByName := byName && uniqueNetNames(parent) && uniqueNetNames(child)
	parentNetIdx := make(map[string]int, len(parent.Nets))
	if netByName {
		for e := range parent.Nets {
			parentNetIdx[parent.Nets[e].Name] = e
		}
	}
	childMatchedParentNet := make([]bool, len(parent.Nets))
	for e := range child.Nets {
		sig := netSignature(child, e, parentOf)
		pe := -1
		if netByName {
			if j, ok := parentNetIdx[child.Nets[e].Name]; ok {
				pe = j
			}
		} else if e < len(parent.Nets) {
			pe = e
		}
		if pe < 0 {
			dl.RewiredNets = append(dl.RewiredNets, e)
			continue
		}
		childMatchedParentNet[pe] = true
		if netSignature(parent, pe, identity) != sig {
			dl.RewiredNets = append(dl.RewiredNets, e)
		}
	}
	for pe, ok := range childMatchedParentNet {
		if !ok {
			dl.RemovedNets = append(dl.RemovedNets, pe)
		}
	}

	dl.Touched = dl.computeTouched(parent, child)
	return dl
}

// computeTouched derives the blast-region seed set (see Delta.Touched).
func (dl *Delta) computeTouched(parent, child *Design) []int {
	mark := make([]bool, len(child.Cells))
	markMovable := func(i int) {
		if i >= 0 && i < len(mark) && child.Cells[i].Kind.Moves() {
			mark[i] = true
		}
	}
	for _, i := range dl.AddedCells {
		markMovable(i)
	}
	for _, i := range dl.ResizedCells {
		markMovable(i)
	}
	// A moved or resized fixed cell (or a removed cell of any kind) changes
	// the neighborhood of every movable cell wired to it.
	disturbed := make(map[int]bool)
	for _, i := range dl.ResizedCells {
		if !child.Cells[i].Kind.Moves() {
			disturbed[i] = true
		}
	}
	for _, i := range dl.MovedFixed {
		disturbed[i] = true
	}
	for e := range child.Nets {
		hit := false
		for _, p := range child.NetPins(e) {
			if disturbed[int(p.Cell)] {
				hit = true
				break
			}
		}
		if hit {
			for _, p := range child.NetPins(e) {
				markMovable(int(p.Cell))
			}
		}
	}
	for _, e := range dl.RewiredNets {
		for _, p := range child.NetPins(e) {
			markMovable(int(p.Cell))
		}
	}
	// Cells that survive a removed parent net lost a connection: map the
	// parent's pins back to child indices.
	if len(dl.RemovedNets) > 0 {
		childOf := make(map[int]int, len(dl.CellMap))
		for ci, pi := range dl.CellMap {
			if pi >= 0 {
				childOf[pi] = ci
			}
		}
		for _, pe := range dl.RemovedNets {
			for _, p := range parent.NetPins(pe) {
				if ci, ok := childOf[int(p.Cell)]; ok {
					markMovable(ci)
				}
			}
		}
	}
	var out []int
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// Empty reports whether the delta carries no semantic change.
func (dl *Delta) Empty() bool {
	return len(dl.AddedCells) == 0 && len(dl.RemovedCells) == 0 &&
		len(dl.ResizedCells) == 0 && len(dl.MovedFixed) == 0 &&
		len(dl.RewiredNets) == 0 && len(dl.RemovedNets) == 0
}

// TouchedFraction returns |Touched| / (movable cells of child): the delta
// size measure the near-hit threshold is applied to.
func (dl *Delta) TouchedFraction(child *Design) float64 {
	movable := 0
	for _, c := range child.Cells {
		if c.Kind.Moves() {
			movable++
		}
	}
	if movable == 0 {
		return 0
	}
	return float64(len(dl.Touched)) / float64(movable)
}

// maxExpandDegree bounds which nets propagate the blast region outward: a
// huge net (clock-like) would otherwise release the whole design in one hop.
const maxExpandDegree = 16

// BlastRegion returns the per-cell release mask for a warm start: true for
// movable cells the engine should re-place, false for everything else. The
// region starts at Touched and expands hops times through shared nets of
// degree <= maxExpandDegree, giving the perturbed cells breathing room to
// resettle without releasing the whole design.
func (dl *Delta) BlastRegion(child *Design, hops int) []bool {
	release := make([]bool, len(child.Cells))
	frontier := make([]int, 0, len(dl.Touched))
	for _, i := range dl.Touched {
		release[i] = true
		frontier = append(frontier, i)
	}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		netSeen := make(map[int32]bool)
		var next []int
		for _, c := range frontier {
			for _, pi := range child.PinsOfCell(c) {
				e := child.Pins[pi].Net
				if netSeen[e] || child.NetDegree(int(e)) > maxExpandDegree {
					continue
				}
				netSeen[e] = true
				for _, p := range child.NetPins(int(e)) {
					ci := int(p.Cell)
					if !release[ci] && child.Cells[ci].Kind.Moves() {
						release[ci] = true
						next = append(next, ci)
					}
				}
			}
		}
		frontier = next
	}
	return release
}

// WarmPositions seeds the child's placement from the parent's: matched cells
// take the parent's final position, and added movable cells start at the
// centroid of their already-placed net neighbors (region center if none).
// parentX/parentY are the parent's final lower-left positions, indexed like
// the parent design.
func (dl *Delta) WarmPositions(parentX, parentY []float64, child *Design) {
	placed := make([]bool, len(child.Cells))
	for i, pi := range dl.CellMap {
		if pi < 0 || pi >= len(parentX) {
			continue
		}
		if child.Cells[i].Kind.Moves() {
			child.X[i] = parentX[pi]
			child.Y[i] = parentY[pi]
		}
		placed[i] = true
	}
	cx, cy := child.Region.Center().X, child.Region.Center().Y
	for _, i := range dl.AddedCells {
		if !child.Cells[i].Kind.Moves() {
			continue
		}
		var sx, sy float64
		var n int
		for _, pi := range child.PinsOfCell(i) {
			e := int(child.Pins[pi].Net)
			for _, p := range child.NetPins(e) {
				if c := int(p.Cell); c != i && placed[c] {
					sx += child.CenterX(c)
					sy += child.CenterY(c)
					n++
				}
			}
		}
		if n > 0 {
			child.SetCenter(i, sx/float64(n), sy/float64(n))
		} else {
			child.SetCenter(i, cx, cy)
		}
	}
	child.ClampToRegion()
}

// NetSubset returns a view of d containing only the nets with keep[e] true,
// with pins renumbered to the new net indices. The view SHARES d's Cells, X,
// and Y slices — positions written through either design are visible in both
// — so a partial-release engine can evaluate wirelength over just the active
// subgraph while moving the real cells. Rows, region, and density carry over.
func (d *Design) NetSubset(keep []bool) *Design {
	sub := &Design{
		Name:          d.Name,
		Cells:         d.Cells,
		X:             d.X,
		Y:             d.Y,
		Region:        d.Region,
		Rows:          d.Rows,
		TargetDensity: d.TargetDensity,
	}
	kept := 0
	pins := 0
	for e, k := range keep {
		if k {
			kept++
			pins += d.NetDegree(e)
		}
	}
	sub.Nets = make([]Net, 0, kept)
	sub.Pins = make([]Pin, 0, pins)
	sub.NetStart = make([]int32, 1, kept+1)
	for e, k := range keep {
		if !k {
			continue
		}
		ne := int32(len(sub.Nets))
		sub.Nets = append(sub.Nets, d.Nets[e])
		for _, p := range d.NetPins(e) {
			p.Net = ne
			sub.Pins = append(sub.Pins, p)
		}
		sub.NetStart = append(sub.NetStart, int32(len(sub.Pins)))
	}
	// Transposed cell -> pin index (counting sort by cell), as in Build.
	n := len(sub.Cells)
	sub.CellPinStart = make([]int32, n+1)
	for _, p := range sub.Pins {
		sub.CellPinStart[p.Cell+1]++
	}
	for c := 0; c < n; c++ {
		sub.CellPinStart[c+1] += sub.CellPinStart[c]
	}
	sub.CellPins = make([]int32, len(sub.Pins))
	fill := make([]int32, n)
	for pi, p := range sub.Pins {
		c := p.Cell
		sub.CellPins[sub.CellPinStart[c]+fill[c]] = int32(pi)
		fill[c]++
	}
	sub.PinLanes()
	return sub
}

// Perturbation parameterizes a deterministic synthetic ECO delta: resize a
// fraction of the movable standard cells and rewire a pin on a fraction of
// the small nets. Used by the load harness and the warm-start quality tests
// to generate realistic resubmissions.
type Perturbation struct {
	Seed int64
	// CellFrac is the fraction of movable standard cells to resize.
	CellFrac float64
	// NetFrac is the fraction of nets to rewire (one pin moves to a
	// different movable cell).
	NetFrac float64
}

// Perturb returns a perturbed deep copy of d (d itself is untouched). The
// result is rebuilt through Builder, so all CSR arrays and pin lanes are
// fresh and valid.
func Perturb(d *Design, pt Perturbation) (*Design, error) {
	if pt.CellFrac < 0 || pt.CellFrac > 1 || pt.NetFrac < 0 || pt.NetFrac > 1 {
		return nil, fmt.Errorf("netlist: perturbation fractions must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(pt.Seed))

	cells := append([]Cell(nil), d.Cells...)
	var std []int
	for i, c := range cells {
		if c.Kind == Movable {
			std = append(std, i)
		}
	}
	nResize := int(float64(len(std))*pt.CellFrac + 0.5)
	if nResize > len(std) {
		nResize = len(std)
	}
	for _, k := range rng.Perm(len(std))[:nResize] {
		i := std[k]
		// A different width in the standard 1..4-site range; height stays
		// row-bound. Guaranteed to differ so the diff sees every resize.
		w := float64(1 + rng.Intn(4))
		for w == cells[i].W {
			w = float64(1 + rng.Intn(4))
		}
		cells[i].W = w
	}

	type netEdit struct{ pin, cell int } // pin index within the net -> new cell
	edits := make(map[int]netEdit)
	var movable []int
	for i, c := range cells {
		if c.Kind.Moves() {
			movable = append(movable, i)
		}
	}
	nRewire := int(float64(len(d.Nets))*pt.NetFrac + 0.5)
	if nRewire > len(d.Nets) {
		nRewire = len(d.Nets)
	}
	if len(movable) > 1 {
		for _, e := range rng.Perm(len(d.Nets))[:nRewire] {
			deg := d.NetDegree(e)
			if deg == 0 || deg > maxExpandDegree {
				continue
			}
			pins := d.NetPins(e)
			pi := rng.Intn(deg)
			on := make(map[int32]bool, deg)
			for _, p := range pins {
				on[p.Cell] = true
			}
			nc := movable[rng.Intn(len(movable))]
			for tries := 0; on[int32(nc)] && tries < 8; tries++ {
				nc = movable[rng.Intn(len(movable))]
			}
			if on[int32(nc)] {
				continue
			}
			edits[e] = netEdit{pin: pi, cell: nc}
		}
	}

	b := NewBuilder(d.Name)
	b.SetRegion(d.Region)
	b.SetTargetDensity(d.TargetDensity)
	for _, r := range d.Rows {
		b.AddRow(r)
	}
	for i, c := range cells {
		b.AddCell(c.Name, c.Kind, c.W, c.H, d.X[i], d.Y[i])
	}
	for e := range d.Nets {
		ne := b.AddNet(d.Nets[e].Name, d.Nets[e].Weight)
		ed, edited := edits[e]
		for k, p := range d.NetPins(e) {
			cell := int(p.Cell)
			dx, dy := p.Dx, p.Dy
			if edited && k == ed.pin {
				cell = ed.cell
				dx = rng.Float64() * cells[cell].W
				dy = rng.Float64() * cells[cell].H
			}
			b.AddPin(ne, cell, dx, dy)
		}
	}
	return b.Build()
}

// uniqueNetNames reports whether every net has a unique non-empty name.
func uniqueNetNames(d *Design) bool {
	seen := make(map[string]bool, len(d.Nets))
	for _, n := range d.Nets {
		if n.Name == "" || seen[n.Name] {
			return false
		}
		seen[n.Name] = true
	}
	return true
}

// netSignature renders net e's semantic content as a comparable string:
// weight plus the sorted (mapped cell key, dx, dy) pin multiset. cellKey
// translates pin cell indices into the comparison space (parent indices when
// diffing child against parent).
func netSignature(d *Design, e int, cellKey func(int32) int) string {
	pins := d.NetPins(e)
	type sigPin struct {
		cell   int
		dx, dy float64
	}
	sp := make([]sigPin, len(pins))
	for i, p := range pins {
		sp[i] = sigPin{cell: cellKey(p.Cell), dx: p.Dx, dy: p.Dy}
	}
	sort.Slice(sp, func(a, b int) bool {
		if sp[a].cell != sp[b].cell {
			return sp[a].cell < sp[b].cell
		}
		if sp[a].dx != sp[b].dx {
			return sp[a].dx < sp[b].dx
		}
		return sp[a].dy < sp[b].dy
	})
	var sb []byte
	sb = append(sb, fmt.Sprintf("w%x", math.Float64bits(d.Nets[e].Weight))...)
	for _, p := range sp {
		sb = append(sb, fmt.Sprintf("|%d:%x:%x", p.cell, math.Float64bits(p.dx), math.Float64bits(p.dy))...)
	}
	return string(sb)
}
