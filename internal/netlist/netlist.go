// Package netlist defines the circuit data model used by every stage of the
// placement flow: cells, pins, nets, standard-cell rows, and the placement
// region, together with derived statistics and validity checks.
//
// The representation is array-oriented (CSR-style flattened pin arrays) so
// that the hot loops of global placement iterate over contiguous memory:
//
//   - Design.Pins holds every pin, grouped by net; Design.NetStart[e] ..
//     Design.NetStart[e+1] delimit the pins of net e.
//   - Design.CellPins / CellPinStart provide the transposed view (pins of a
//     cell), used by incremental HPWL updates in detailed placement.
//
// Cell positions (X, Y) are the lower-left corner of the cell, following the
// Bookshelf .pl convention; pin offsets (Dx, Dy) are relative to that corner.
package netlist

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
)

// CellKind classifies a cell for the placement flow.
type CellKind uint8

const (
	// Movable is a standard cell the placer may move freely.
	Movable CellKind = iota
	// Fixed is a pre-placed blockage or fixed macro that must not move.
	Fixed
	// Terminal is a fixed I/O pad, typically on the die periphery. It is
	// treated like Fixed by every algorithm but kept distinct for
	// statistics and Bookshelf round-tripping.
	Terminal
	// MovableMacro is a large movable block (e.g. the newblue1 macros the
	// paper highlights). It participates in global placement like a
	// movable cell but is legalized separately.
	MovableMacro
)

func (k CellKind) String() string {
	switch k {
	case Movable:
		return "movable"
	case Fixed:
		return "fixed"
	case Terminal:
		return "terminal"
	case MovableMacro:
		return "movable-macro"
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Moves reports whether a cell of this kind is repositioned by the placer.
func (k CellKind) Moves() bool { return k == Movable || k == MovableMacro }

// Cell is a placeable or fixed circuit component.
type Cell struct {
	Name string
	W, H float64
	Kind CellKind
}

// Area returns the cell area.
func (c Cell) Area() float64 { return c.W * c.H }

// Pin connects a cell to a net at an offset from the cell's lower-left
// corner.
type Pin struct {
	Cell int32
	Net  int32
	// Dx, Dy are the pin offsets from the cell's lower-left corner.
	Dx, Dy float64
}

// Net is a named hyperedge; its pins live in Design.Pins.
type Net struct {
	Name string
	// Weight scales the net's wirelength contribution. 1 by default.
	Weight float64
}

// Row is a standard-cell row for legalization.
type Row struct {
	Y      float64 // bottom of the row
	Height float64
	XL, XH float64 // usable horizontal span
	SiteW  float64 // site width (placement grid along the row)
}

// Sites returns the number of whole sites in the row.
func (r Row) Sites() int {
	if r.SiteW <= 0 {
		return 0
	}
	return int((r.XH - r.XL) / r.SiteW)
}

// Design is a complete placement instance.
type Design struct {
	Name string

	Cells []Cell
	// X, Y are the current lower-left coordinates of every cell, indexed
	// like Cells. Fixed cells' entries never change.
	X, Y []float64

	Nets []Net
	// Pins grouped by net: pins of net e are Pins[NetStart[e]:NetStart[e+1]].
	Pins     []Pin
	NetStart []int32

	// CellPins lists pin indices (into Pins) grouped by cell:
	// CellPins[CellPinStart[c]:CellPinStart[c+1]] are the pins of cell c.
	CellPins     []int32
	CellPinStart []int32

	// Region is the placement area (core region).
	Region geom.Rect
	// Rows are the standard-cell rows inside Region. May be empty for
	// purely analytical studies; legalization requires them.
	Rows []Row
	// TargetDensity is the density upper bound per bin (utilization
	// target), e.g. 1.0 for wirelength-driven contests.
	TargetDensity float64

	// lanes is the flat structure-of-arrays view of the pin topology,
	// built once (lazily, or eagerly by Builder.Build/Clone) and immutable
	// afterwards. Guarded by lanesOnce so concurrent evaluators share one
	// copy safely.
	lanesOnce sync.Once
	lanes     Lanes
}

// Lanes is the structure-of-arrays mirror of Design.Pins used by the
// evaluation hot paths: one contiguous lane per pin field, indexed like
// Pins and delimited per net by Design.NetStart. Splitting the 24-byte Pin
// records into an int32 lane and two float64 lanes lets the gather/scatter
// loops stream each field sequentially with no struct padding in the way.
//
// Lanes hold only immutable topology — cell indices and pin offsets. Net
// weights are deliberately absent: they are user-mutable after Build
// (experiments re-weight nets in place), so evaluators read
// Design.Nets[e].Weight at evaluation time.
type Lanes struct {
	// PinCell[i] == Pins[i].Cell.
	PinCell []int32
	// PinDx[i], PinDy[i] == Pins[i].Dx, Pins[i].Dy.
	PinDx, PinDy []float64
}

// PinLanes returns the design's flat pin lanes, building them on first use.
// The returned Lanes are shared and must be treated as read-only; the pin
// topology (Pins, NetStart) must not change after the first call.
func (d *Design) PinLanes() *Lanes {
	d.lanesOnce.Do(d.buildLanes)
	return &d.lanes
}

func (d *Design) buildLanes() {
	n := len(d.Pins)
	d.lanes = Lanes{
		PinCell: make([]int32, n),
		PinDx:   make([]float64, n),
		PinDy:   make([]float64, n),
	}
	for i, p := range d.Pins {
		d.lanes.PinCell[i] = p.Cell
		d.lanes.PinDx[i] = p.Dx
		d.lanes.PinDy[i] = p.Dy
	}
}

// NetPins returns the pins of net e as a sub-slice of d.Pins.
func (d *Design) NetPins(e int) []Pin {
	return d.Pins[d.NetStart[e]:d.NetStart[e+1]]
}

// NetDegree returns the number of pins on net e.
func (d *Design) NetDegree(e int) int {
	return int(d.NetStart[e+1] - d.NetStart[e])
}

// PinsOfCell returns the indices (into d.Pins) of the pins on cell c.
func (d *Design) PinsOfCell(c int) []int32 {
	return d.CellPins[d.CellPinStart[c]:d.CellPinStart[c+1]]
}

// NumCells returns the total number of cells.
func (d *Design) NumCells() int { return len(d.Cells) }

// NumNets returns the number of nets.
func (d *Design) NumNets() int { return len(d.Nets) }

// NumPins returns the number of pins.
func (d *Design) NumPins() int { return len(d.Pins) }

// PinPos returns the absolute position of pin p under the current placement.
func (d *Design) PinPos(p Pin) geom.Point {
	return geom.Point{X: d.X[p.Cell] + p.Dx, Y: d.Y[p.Cell] + p.Dy}
}

// CellRect returns the bounding rectangle of cell c at its current position.
func (d *Design) CellRect(c int) geom.Rect {
	return geom.Rect{
		XL: d.X[c], YL: d.Y[c],
		XH: d.X[c] + d.Cells[c].W, YH: d.Y[c] + d.Cells[c].H,
	}
}

// MovableIndices returns the indices of all cells that move (standard cells
// and movable macros).
func (d *Design) MovableIndices() []int {
	idx := make([]int, 0, len(d.Cells))
	for i, c := range d.Cells {
		if c.Kind.Moves() {
			idx = append(idx, i)
		}
	}
	return idx
}

// Stats summarizes a design, matching the columns of Table I in the paper.
type Stats struct {
	Name        string
	NumMovable  int
	NumFixed    int // fixed cells + terminals
	NumNets     int
	NumPins     int
	MovableArea float64
	FixedArea   float64 // fixed area inside the region
	RegionArea  float64
	Utilization float64 // movable area / free area
	MaxDegree   int
	AvgDegree   float64
	NumMacros   int // movable macros
}

// ComputeStats derives the statistics of d.
func (d *Design) ComputeStats() Stats {
	s := Stats{
		Name:       d.Name,
		NumNets:    len(d.Nets),
		NumPins:    len(d.Pins),
		RegionArea: d.Region.Area(),
	}
	for i, c := range d.Cells {
		switch c.Kind {
		case Movable:
			s.NumMovable++
			s.MovableArea += c.Area()
		case MovableMacro:
			s.NumMovable++
			s.NumMacros++
			s.MovableArea += c.Area()
		default:
			s.NumFixed++
			s.FixedArea += d.CellRect(i).Intersect(d.Region).Area()
		}
	}
	for e := range d.Nets {
		deg := d.NetDegree(e)
		if deg > s.MaxDegree {
			s.MaxDegree = deg
		}
	}
	if len(d.Nets) > 0 {
		s.AvgDegree = float64(len(d.Pins)) / float64(len(d.Nets))
	}
	if free := s.RegionArea - s.FixedArea; free > 0 {
		s.Utilization = s.MovableArea / free
	}
	return s
}

// Validate checks structural invariants of the design and returns the first
// violation found, or nil if the design is well-formed.
func (d *Design) Validate() error {
	n := len(d.Cells)
	if len(d.X) != n || len(d.Y) != n {
		return fmt.Errorf("netlist: coordinate arrays (%d,%d) do not match %d cells", len(d.X), len(d.Y), n)
	}
	if len(d.NetStart) != len(d.Nets)+1 {
		return fmt.Errorf("netlist: NetStart has %d entries for %d nets", len(d.NetStart), len(d.Nets))
	}
	if len(d.NetStart) > 0 {
		if d.NetStart[0] != 0 || int(d.NetStart[len(d.Nets)]) != len(d.Pins) {
			return fmt.Errorf("netlist: NetStart does not span the pin array")
		}
	}
	for e := 0; e < len(d.Nets); e++ {
		if d.NetStart[e] > d.NetStart[e+1] {
			return fmt.Errorf("netlist: net %d has negative pin count", e)
		}
		for _, p := range d.Pins[d.NetStart[e]:d.NetStart[e+1]] {
			if int(p.Net) != e {
				return fmt.Errorf("netlist: net %d's pin range contains a pin of net %d", e, p.Net)
			}
		}
	}
	for i, p := range d.Pins {
		if p.Cell < 0 || int(p.Cell) >= n {
			return fmt.Errorf("netlist: pin %d references cell %d of %d", i, p.Cell, n)
		}
		if p.Net < 0 || int(p.Net) >= len(d.Nets) {
			return fmt.Errorf("netlist: pin %d references net %d of %d", i, p.Net, len(d.Nets))
		}
		if math.IsNaN(p.Dx) || math.IsNaN(p.Dy) {
			return fmt.Errorf("netlist: pin %d has NaN offset", i)
		}
	}
	if len(d.CellPinStart) != n+1 {
		return fmt.Errorf("netlist: CellPinStart has %d entries for %d cells", len(d.CellPinStart), n)
	}
	if n > 0 && int(d.CellPinStart[n]) != len(d.CellPins) {
		return fmt.Errorf("netlist: CellPinStart does not span CellPins")
	}
	for c := 0; c < n; c++ {
		for _, pi := range d.PinsOfCell(c) {
			if int(d.Pins[pi].Cell) != c {
				return fmt.Errorf("netlist: CellPins of cell %d contains pin of cell %d", c, d.Pins[pi].Cell)
			}
		}
	}
	for i, c := range d.Cells {
		if c.W < 0 || c.H < 0 {
			return fmt.Errorf("netlist: cell %d (%s) has negative size", i, c.Name)
		}
		if math.IsNaN(d.X[i]) || math.IsNaN(d.Y[i]) {
			return fmt.Errorf("netlist: cell %d (%s) has NaN position", i, c.Name)
		}
	}
	if d.Region.Empty() {
		return fmt.Errorf("netlist: empty placement region %v", d.Region)
	}
	return nil
}

// Clone returns a deep copy of the design. The copy shares no mutable state
// with the original, so flows for different wirelength models can run from
// identical starting points.
func (d *Design) Clone() *Design {
	c := &Design{
		Name:          d.Name,
		Cells:         append([]Cell(nil), d.Cells...),
		X:             append([]float64(nil), d.X...),
		Y:             append([]float64(nil), d.Y...),
		Nets:          append([]Net(nil), d.Nets...),
		Pins:          append([]Pin(nil), d.Pins...),
		NetStart:      append([]int32(nil), d.NetStart...),
		CellPins:      append([]int32(nil), d.CellPins...),
		CellPinStart:  append([]int32(nil), d.CellPinStart...),
		Region:        d.Region,
		Rows:          append([]Row(nil), d.Rows...),
		TargetDensity: d.TargetDensity,
	}
	c.PinLanes()
	return c
}

// CopyPositionsFrom copies cell positions from src; the designs must have the
// same number of cells.
func (d *Design) CopyPositionsFrom(src *Design) {
	copy(d.X, src.X)
	copy(d.Y, src.Y)
}

// CenterX returns the x coordinate of cell c's center.
func (d *Design) CenterX(c int) float64 { return d.X[c] + d.Cells[c].W/2 }

// CenterY returns the y coordinate of cell c's center.
func (d *Design) CenterY(c int) float64 { return d.Y[c] + d.Cells[c].H/2 }

// SetCenter moves cell c so that its center is at (cx, cy).
func (d *Design) SetCenter(c int, cx, cy float64) {
	d.X[c] = cx - d.Cells[c].W/2
	d.Y[c] = cy - d.Cells[c].H/2
}

// ClampToRegion moves movable cells so they lie fully inside the region.
func (d *Design) ClampToRegion() {
	r := d.Region
	for i, c := range d.Cells {
		if !c.Kind.Moves() {
			continue
		}
		d.X[i] = geom.Clamp(d.X[i], r.XL, math.Max(r.XL, r.XH-c.W))
		d.Y[i] = geom.Clamp(d.Y[i], r.YL, math.Max(r.YL, r.YH-c.H))
	}
}
