package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomDesign builds a deterministic random design: a few fixed blocks and
// pads, movable cells with varied widths, and nets of mixed degree with
// non-uniform weights, exercising every field the content hash covers.
func randomDesign(t testing.TB, seed int64) *Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 40, YH: 40})
	b.SetTargetDensity(0.8 + 0.2*rng.Float64())
	for r := 0; r < 4; r++ {
		b.AddRow(Row{Y: float64(r), Height: 1, XL: 0, XH: 40, SiteW: 1})
	}
	nCells := 12 + rng.Intn(20)
	for i := 0; i < nCells; i++ {
		kind := Movable
		switch {
		case i%11 == 10:
			kind = Fixed
		case i%7 == 6:
			kind = Terminal
		case i%13 == 12:
			kind = MovableMacro
		}
		w := float64(1 + rng.Intn(4))
		h := 1.0
		if kind == MovableMacro {
			w, h = 4, 4
		}
		b.AddCell("", kind, w, h, rng.Float64()*30, rng.Float64()*30)
	}
	nNets := 8 + rng.Intn(16)
	for e := 0; e < nNets; e++ {
		w := 1.0
		if rng.Intn(3) == 0 {
			w = 0.5 + rng.Float64()
		}
		ne := b.AddNet("", w)
		deg := 2 + rng.Intn(5)
		for k := 0; k < deg; k++ {
			c := rng.Intn(nCells)
			b.AddPin(ne, c, rng.Float64(), rng.Float64())
		}
	}
	d, err := b.Build()
	if err != nil {
		t.Fatalf("randomDesign(%d): %v", seed, err)
	}
	return d
}

// permuteNetsAndPins rebuilds d with the net declaration order and the pin
// order within every net shuffled; cells stay in index order. The result is
// the same placement problem, so its content hash must not change.
func permuteNetsAndPins(t testing.TB, d *Design, seed int64) *Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(d.Name)
	b.SetRegion(d.Region)
	b.SetTargetDensity(d.TargetDensity)
	for _, r := range d.Rows {
		b.AddRow(r)
	}
	for i, c := range d.Cells {
		b.AddCell(c.Name, c.Kind, c.W, c.H, d.X[i], d.Y[i])
	}
	for _, e := range rng.Perm(len(d.Nets)) {
		ne := b.AddNet(d.Nets[e].Name, d.Nets[e].Weight)
		pins := d.NetPins(e)
		for _, k := range rng.Perm(len(pins)) {
			p := pins[k]
			b.AddPin(ne, int(p.Cell), p.Dx, p.Dy)
		}
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("permute: %v", err)
	}
	return out
}

func TestContentHashPermutationInvariance(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		d := randomDesign(t, seed)
		h := d.ContentHash()
		for ps := int64(100); ps < 103; ps++ {
			p := permuteNetsAndPins(t, d, ps)
			if got := p.ContentHash(); got != h {
				t.Fatalf("seed %d perm %d: hash changed under net/pin permutation:\n  %s\n  %s", seed, ps, h, got)
			}
		}
	}
}

func TestContentHashIgnoresMovablePositionsAndNames(t *testing.T) {
	d := randomDesign(t, 3)
	h := d.ContentHash()
	moved := d.Clone()
	for i, c := range moved.Cells {
		if c.Kind.Moves() {
			moved.X[i] += 1.5
			moved.Y[i] += 0.5
		}
	}
	if moved.ContentHash() != h {
		t.Fatal("hash changed when only movable cell positions moved")
	}
	renamed := d.Clone()
	renamed.Name = "other"
	for i := range renamed.Cells {
		renamed.Cells[i].Name = "x" + renamed.Cells[i].Name
	}
	if renamed.ContentHash() != h {
		t.Fatal("hash changed under non-semantic renames")
	}
}

func TestContentHashChangesUnderSemanticEdits(t *testing.T) {
	base := randomDesign(t, 5)
	h := base.ContentHash()
	fixedIdx := -1
	for i, c := range base.Cells {
		if !c.Kind.Moves() {
			fixedIdx = i
			break
		}
	}
	edits := map[string]func(d *Design){
		"net weight":     func(d *Design) { d.Nets[0].Weight *= 2 },
		"pin offset":     func(d *Design) { d.Pins[0].Dx += 0.25 },
		"pin cell":       func(d *Design) { d.Pins[0].Cell = (d.Pins[0].Cell + 1) % int32(len(d.Cells)) },
		"cell width":     func(d *Design) { d.Cells[1].W += 1 },
		"cell kind":      func(d *Design) { d.Cells[1].Kind = MovableMacro },
		"fixed position": func(d *Design) { d.X[fixedIdx] += 2 },
		"region":         func(d *Design) { d.Region.XH += 1 },
		"target density": func(d *Design) { d.TargetDensity *= 0.9 },
		"row":            func(d *Design) { d.Rows[0].SiteW = 2 },
		"drop net": func(d *Design) {
			d.Nets = d.Nets[:len(d.Nets)-1]
			d.Pins = d.Pins[:d.NetStart[len(d.Nets)]]
			d.NetStart = d.NetStart[:len(d.Nets)+1]
		},
	}
	if fixedIdx < 0 {
		delete(edits, "fixed position")
	}
	for name, edit := range edits {
		d := base.Clone()
		edit(d)
		if d.ContentHash() == h {
			t.Errorf("edit %q did not change the content hash", name)
		}
	}
}

func TestHashRoundTrip(t *testing.T) {
	h := randomDesign(t, 7).ContentHash()
	if h.IsZero() {
		t.Fatal("content hash is zero")
	}
	parsed, err := ParseHash(h.String())
	if err != nil {
		t.Fatalf("ParseHash: %v", err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, h)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatal("ParseHash accepted garbage")
	}
}

// FuzzContentHashInvariance fuzzes the canonicality property: for any
// generated design and any permutation of its net/pin declaration order, the
// content hash is unchanged; and flipping one net weight always changes it.
func FuzzContentHashInvariance(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(1337))
	f.Add(int64(-9), int64(0))
	f.Fuzz(func(t *testing.T, genSeed, permSeed int64) {
		d := randomDesign(t, genSeed)
		h := d.ContentHash()
		p := permuteNetsAndPins(t, d, permSeed)
		if p.ContentHash() != h {
			t.Fatalf("hash not permutation-invariant (gen %d, perm %d)", genSeed, permSeed)
		}
		edited := d.Clone()
		edited.Nets[int(uint64(permSeed)%uint64(len(edited.Nets)))].Weight += 1
		if edited.ContentHash() == h {
			t.Fatalf("hash ignored a net weight edit (gen %d)", genSeed)
		}
	})
}
