package netlist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
)

// Hash is the canonical SHA-256 content hash of a Design. Two designs with
// equal hashes are the same placement problem: the ecocache uses the hash
// (together with a config fingerprint) as the key under which finished
// placements are stored and served back.
type Hash [32]byte

// String returns the full lowercase hex form (64 characters).
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 bytes in hex, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:8]) }

// IsZero reports whether h is the zero hash (no hash computed).
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash parses the 64-character hex form produced by String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return Hash{}, fmt.Errorf("netlist: malformed design hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// hashWriter wraps a hash.Hash with fixed-width little-endian primitives so
// every field lands in the digest with an unambiguous binary form.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *hashWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hashWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *hashWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *hashWriter) byte(b byte)   { w.h.Write([]byte{b}) }

// ContentHash returns the canonical content hash of the design.
//
// The hash covers exactly the semantic content of the placement problem:
//
//   - the region, target density, and standard-cell rows;
//   - every cell's kind and dimensions, in index order, plus the position of
//     non-movable cells (fixed blockages and terminals shape the problem;
//     movable cells' input positions do not — the placer re-initializes);
//   - every net's weight and pin multiset (owning cell index + pin offsets).
//
// It is deliberately invariant under the non-semantic freedoms of a netlist
// file: the declaration order of nets, the declaration order of pins within
// a net, and cell/net/design names. Cell index order IS significant — cached
// placements are applied back by cell index, so two designs that permute
// their cells are different problems to the cache even if isomorphic.
func (d *Design) ContentHash() Hash {
	top := &hashWriter{h: sha256.New()}
	top.h.Write([]byte("megp-design-hash-v1"))

	// Geometry header.
	top.f64(d.Region.XL)
	top.f64(d.Region.YL)
	top.f64(d.Region.XH)
	top.f64(d.Region.YH)
	top.f64(d.TargetDensity)
	top.i64(int64(len(d.Rows)))
	for _, r := range d.Rows {
		top.f64(r.Y)
		top.f64(r.Height)
		top.f64(r.XL)
		top.f64(r.XH)
		top.f64(r.SiteW)
	}

	// Cells in index order.
	top.i64(int64(len(d.Cells)))
	for i, c := range d.Cells {
		top.byte(byte(c.Kind))
		top.f64(c.W)
		top.f64(c.H)
		if !c.Kind.Moves() {
			top.f64(d.X[i])
			top.f64(d.Y[i])
		}
	}

	// Nets as an order-independent multiset of per-net digests: each net
	// hashes its weight plus its pins sorted by (cell, dx, dy), then the
	// sorted list of net digests feeds the top hash. Permuting net
	// declaration order or pin order within a net cannot change the result.
	digests := make([][sha256.Size]byte, len(d.Nets))
	var pinScratch []Pin
	nw := &hashWriter{h: sha256.New()}
	for e := range d.Nets {
		pins := d.NetPins(e)
		pinScratch = append(pinScratch[:0], pins...)
		sort.Slice(pinScratch, func(a, b int) bool {
			pa, pb := pinScratch[a], pinScratch[b]
			if pa.Cell != pb.Cell {
				return pa.Cell < pb.Cell
			}
			if pa.Dx != pb.Dx {
				return pa.Dx < pb.Dx
			}
			return pa.Dy < pb.Dy
		})
		nw.h.Reset()
		nw.f64(d.Nets[e].Weight)
		nw.i64(int64(len(pinScratch)))
		for _, p := range pinScratch {
			nw.i64(int64(p.Cell))
			nw.f64(p.Dx)
			nw.f64(p.Dy)
		}
		nw.h.Sum(digests[e][:0])
	}
	sort.Slice(digests, func(a, b int) bool {
		return bytes.Compare(digests[a][:], digests[b][:]) < 0
	})
	top.i64(int64(len(digests)))
	for i := range digests {
		top.h.Write(digests[i][:])
	}

	var out Hash
	top.h.Sum(out[:0])
	return out
}
