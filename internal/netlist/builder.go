package netlist

import (
	"fmt"

	"repro/internal/geom"
)

// Builder incrementally assembles a Design. It buffers pins per net and
// finalizes the CSR arrays (NetStart, CellPins) in Build.
type Builder struct {
	name     string
	cells    []Cell
	x, y     []float64
	nets     []Net
	netPins  [][]Pin
	region   geom.Rect
	rows     []Row
	density  float64
	cellByNm map[string]int
}

// NewBuilder creates a builder for a design with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		density:  1.0,
		cellByNm: make(map[string]int),
	}
}

// SetRegion sets the placement region.
func (b *Builder) SetRegion(r geom.Rect) *Builder {
	b.region = r
	return b
}

// SetTargetDensity sets the bin density target.
func (b *Builder) SetTargetDensity(td float64) *Builder {
	b.density = td
	return b
}

// AddRow appends a standard-cell row.
func (b *Builder) AddRow(r Row) *Builder {
	b.rows = append(b.rows, r)
	return b
}

// AddCell appends a cell with an initial position and returns its index.
func (b *Builder) AddCell(name string, kind CellKind, w, h, x, y float64) int {
	idx := len(b.cells)
	b.cells = append(b.cells, Cell{Name: name, W: w, H: h, Kind: kind})
	b.x = append(b.x, x)
	b.y = append(b.y, y)
	if name != "" {
		b.cellByNm[name] = idx
	}
	return idx
}

// CellIndex looks up a cell by name.
func (b *Builder) CellIndex(name string) (int, bool) {
	i, ok := b.cellByNm[name]
	return i, ok
}

// NumCells returns the number of cells added so far.
func (b *Builder) NumCells() int { return len(b.cells) }

// AddNet appends an empty net and returns its index.
func (b *Builder) AddNet(name string, weight float64) int {
	idx := len(b.nets)
	b.nets = append(b.nets, Net{Name: name, Weight: weight})
	b.netPins = append(b.netPins, nil)
	return idx
}

// AddPin attaches a pin to net e on cell c with offsets from the cell's
// lower-left corner.
func (b *Builder) AddPin(e, c int, dx, dy float64) {
	b.netPins[e] = append(b.netPins[e], Pin{Cell: int32(c), Net: int32(e), Dx: dx, Dy: dy})
}

// Build finalizes the design, constructing the flattened pin arrays and the
// cell-to-pin index, and validates the result.
func (b *Builder) Build() (*Design, error) {
	d := &Design{
		Name:          b.name,
		Cells:         b.cells,
		X:             b.x,
		Y:             b.y,
		Nets:          b.nets,
		Region:        b.region,
		Rows:          b.rows,
		TargetDensity: b.density,
	}
	totalPins := 0
	for _, ps := range b.netPins {
		totalPins += len(ps)
	}
	d.Pins = make([]Pin, 0, totalPins)
	d.NetStart = make([]int32, len(b.nets)+1)
	for e, ps := range b.netPins {
		d.NetStart[e] = int32(len(d.Pins))
		d.Pins = append(d.Pins, ps...)
		_ = e
	}
	d.NetStart[len(b.nets)] = int32(len(d.Pins))

	// Transposed cell -> pin index (counting sort by cell).
	n := len(b.cells)
	d.CellPinStart = make([]int32, n+1)
	for _, p := range d.Pins {
		d.CellPinStart[p.Cell+1]++
	}
	for c := 0; c < n; c++ {
		d.CellPinStart[c+1] += d.CellPinStart[c]
	}
	d.CellPins = make([]int32, len(d.Pins))
	fill := make([]int32, n)
	for pi, p := range d.Pins {
		c := p.Cell
		d.CellPins[d.CellPinStart[c]+fill[c]] = int32(pi)
		fill[c]++
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("netlist build: %w", err)
	}
	d.PinLanes() // build the SoA pin lanes eagerly while the caches are warm
	return d, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose inputs are known-valid by construction.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}
