package netlist

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// buildTiny constructs a 4-cell, 2-net design used across tests:
//
//	c0 (movable 2x1), c1 (movable 2x1), f0 (fixed 4x4), p0 (terminal 0x0)
//	net0: c0, c1, f0    net1: c1, p0
func buildTiny(t testing.TB) *Design {
	t.Helper()
	b := NewBuilder("tiny")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 100, YH: 100})
	c0 := b.AddCell("c0", Movable, 2, 1, 10, 10)
	c1 := b.AddCell("c1", Movable, 2, 1, 20, 20)
	f0 := b.AddCell("f0", Fixed, 4, 4, 50, 50)
	p0 := b.AddCell("p0", Terminal, 0, 0, 0, 100)
	n0 := b.AddNet("n0", 1)
	n1 := b.AddNet("n1", 1)
	b.AddPin(n0, c0, 1, 0.5)
	b.AddPin(n0, c1, 0, 0)
	b.AddPin(n0, f0, 2, 2)
	b.AddPin(n1, c1, 2, 1)
	b.AddPin(n1, p0, 0, 0)
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuilderProducesValidDesign(t *testing.T) {
	d := buildTiny(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumCells() != 4 || d.NumNets() != 2 || d.NumPins() != 5 {
		t.Errorf("counts = %d cells, %d nets, %d pins", d.NumCells(), d.NumNets(), d.NumPins())
	}
}

func TestNetPinAccess(t *testing.T) {
	d := buildTiny(t)
	if got := d.NetDegree(0); got != 3 {
		t.Errorf("NetDegree(0) = %d, want 3", got)
	}
	if got := d.NetDegree(1); got != 2 {
		t.Errorf("NetDegree(1) = %d, want 2", got)
	}
	ps := d.NetPins(1)
	if len(ps) != 2 || ps[0].Cell != 1 || ps[1].Cell != 3 {
		t.Errorf("NetPins(1) = %+v", ps)
	}
}

func TestCellPinTranspose(t *testing.T) {
	d := buildTiny(t)
	// c1 appears on both nets.
	pins := d.PinsOfCell(1)
	if len(pins) != 2 {
		t.Fatalf("PinsOfCell(1) has %d pins, want 2", len(pins))
	}
	nets := map[int32]bool{}
	for _, pi := range pins {
		nets[d.Pins[pi].Net] = true
	}
	if !nets[0] || !nets[1] {
		t.Errorf("cell 1 pins cover nets %v, want {0,1}", nets)
	}
	// Terminal p0 has exactly one pin.
	if len(d.PinsOfCell(3)) != 1 {
		t.Errorf("PinsOfCell(3) = %v", d.PinsOfCell(3))
	}
}

func TestPinPosAppliesOffsets(t *testing.T) {
	d := buildTiny(t)
	p := d.NetPins(0)[0] // pin on c0 at offset (1, 0.5); c0 at (10,10)
	got := d.PinPos(p)
	if got != (geom.Point{X: 11, Y: 10.5}) {
		t.Errorf("PinPos = %v", got)
	}
}

func TestStats(t *testing.T) {
	d := buildTiny(t)
	s := d.ComputeStats()
	if s.NumMovable != 2 || s.NumFixed != 2 {
		t.Errorf("movable/fixed = %d/%d", s.NumMovable, s.NumFixed)
	}
	if s.NumNets != 2 || s.NumPins != 5 {
		t.Errorf("nets/pins = %d/%d", s.NumNets, s.NumPins)
	}
	if s.MovableArea != 4 { // two 2x1 cells
		t.Errorf("MovableArea = %g", s.MovableArea)
	}
	if s.FixedArea != 16 { // the 4x4 fixed block; terminal has zero area
		t.Errorf("FixedArea = %g", s.FixedArea)
	}
	if s.MaxDegree != 3 {
		t.Errorf("MaxDegree = %d", s.MaxDegree)
	}
	if math.Abs(s.AvgDegree-2.5) > 1e-12 {
		t.Errorf("AvgDegree = %g", s.AvgDegree)
	}
	wantUtil := 4.0 / (100*100 - 16)
	if math.Abs(s.Utilization-wantUtil) > 1e-12 {
		t.Errorf("Utilization = %g, want %g", s.Utilization, wantUtil)
	}
}

func TestCellKindMoves(t *testing.T) {
	if !Movable.Moves() || !MovableMacro.Moves() {
		t.Error("movable kinds should move")
	}
	if Fixed.Moves() || Terminal.Moves() {
		t.Error("fixed kinds should not move")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildTiny(t)
	c := d.Clone()
	c.X[0] = 999
	c.Cells[0].W = 42
	if d.X[0] == 999 || d.Cells[0].W == 42 {
		t.Error("Clone shares state with original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestCenterHelpers(t *testing.T) {
	d := buildTiny(t)
	d.SetCenter(0, 30, 40)
	if d.X[0] != 29 || d.Y[0] != 39.5 {
		t.Errorf("SetCenter placed lower-left at (%g,%g)", d.X[0], d.Y[0])
	}
	if d.CenterX(0) != 30 || d.CenterY(0) != 40 {
		t.Errorf("Center = (%g,%g)", d.CenterX(0), d.CenterY(0))
	}
}

func TestClampToRegion(t *testing.T) {
	d := buildTiny(t)
	d.X[0], d.Y[0] = -50, 200 // way outside
	d.X[2], d.Y[2] = -50, 200 // fixed: must NOT be clamped
	d.ClampToRegion()
	if d.X[0] != 0 || d.Y[0] != 99 { // region 100 high, cell 1 tall
		t.Errorf("movable clamped to (%g,%g)", d.X[0], d.Y[0])
	}
	if d.X[2] != -50 || d.Y[2] != 200 {
		t.Error("fixed cell was moved by ClampToRegion")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Design)
	}{
		{"coord length", func(d *Design) { d.X = d.X[:1] }},
		{"netstart span", func(d *Design) { d.NetStart[len(d.NetStart)-1]++ }},
		{"pin cell range", func(d *Design) { d.Pins[0].Cell = 99 }},
		{"pin net range", func(d *Design) { d.Pins[0].Net = -1 }},
		{"nan offset", func(d *Design) { d.Pins[0].Dx = math.NaN() }},
		{"negative size", func(d *Design) { d.Cells[0].W = -1 }},
		{"nan position", func(d *Design) { d.X[0] = math.NaN() }},
		{"empty region", func(d *Design) { d.Region = geom.Rect{} }},
		{"cellpin mismatch", func(d *Design) { d.CellPins[0] = 4 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := buildTiny(t)
			tc.break_(d)
			if err := d.Validate(); err == nil {
				t.Errorf("Validate accepted corrupted design (%s)", tc.name)
			}
		})
	}
}

func TestBuilderCellIndexLookup(t *testing.T) {
	b := NewBuilder("x")
	b.SetRegion(geom.Rect{XH: 1, YH: 1})
	i := b.AddCell("alpha", Movable, 1, 1, 0, 0)
	j, ok := b.CellIndex("alpha")
	if !ok || j != i {
		t.Errorf("CellIndex = %d,%v", j, ok)
	}
	if _, ok := b.CellIndex("nope"); ok {
		t.Error("CellIndex found nonexistent cell")
	}
}

func TestRowSites(t *testing.T) {
	r := Row{XL: 0, XH: 10, SiteW: 3}
	if r.Sites() != 3 {
		t.Errorf("Sites = %d", r.Sites())
	}
	if (Row{}).Sites() != 0 {
		t.Error("zero row should have 0 sites")
	}
}

func TestMovableIndices(t *testing.T) {
	d := buildTiny(t)
	idx := d.MovableIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("MovableIndices = %v", idx)
	}
}

func TestCellKindString(t *testing.T) {
	cases := map[CellKind]string{
		Movable:      "movable",
		Fixed:        "fixed",
		Terminal:     "terminal",
		MovableMacro: "movable-macro",
		CellKind(9):  "CellKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestCellArea(t *testing.T) {
	c := Cell{W: 3, H: 2}
	if c.Area() != 6 {
		t.Errorf("Area = %g", c.Area())
	}
}

func TestCopyPositionsFrom(t *testing.T) {
	d := buildTiny(t)
	c := d.Clone()
	c.X[0], c.Y[0] = 77, 88
	d.CopyPositionsFrom(c)
	if d.X[0] != 77 || d.Y[0] != 88 {
		t.Error("positions not copied")
	}
}

func TestCellRect(t *testing.T) {
	d := buildTiny(t)
	r := d.CellRect(0) // 2x1 at (10,10)
	if r.XL != 10 || r.YL != 10 || r.XH != 12 || r.YH != 11 {
		t.Errorf("CellRect = %v", r)
	}
}

func TestValidateNetStartPinConsistency(t *testing.T) {
	d := buildTiny(t)
	// Shift the boundary so net 0's range swallows one of net 1's pins.
	d.NetStart[1] = 4
	if err := d.Validate(); err == nil {
		t.Error("net range / pin.Net mismatch accepted")
	}
}
