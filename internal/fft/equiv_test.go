package fft

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// refDCT2 computes the type-II DCT through a FULL-length complex FFT
// (Makhoul's even permutation followed by an N-point complex transform and
// the quarter-wave post-rotation). It shares no code with the half-size
// real-input path in CosPlan.DCT2, so agreement between the two pins the
// conjugate-symmetry unpack, not just the trig tables.
func refDCT2(dst, src []float64) {
	n := len(src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	re := make([]float64, n)
	im := make([]float64, n)
	for m := 0; m < n; m++ {
		if 2*m < n {
			re[m] = src[2*m]
		} else {
			re[m] = src[2*n-2*m-1]
		}
	}
	NewPlan(n).Transform(re, im, false)
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		dst[k] = math.Cos(ang)*re[k] + math.Sin(ang)*im[k]
	}
}

// maxAbs returns max_i |s_i|.
func maxAbs(s []float64) float64 {
	m := 0.0
	for _, v := range s {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

// TestDCT2MatchesComplexReference compares the half-size real-input DCT2
// against the full-length complex-FFT reference at 1e-12 relative — far
// tighter than the 1e-9 naive-trig-sum tests, because both sides use exact
// table-driven twiddles.
func TestDCT2MatchesComplexReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512} {
		src := randSlice(rng, n)
		got := make([]float64, n)
		want := make([]float64, n)
		NewCosPlan(n).DCT2(got, src)
		refDCT2(want, src)
		scale := maxAbs(want) + 1
		for k := range got {
			if math.Abs(got[k]-want[k]) > 1e-12*scale {
				t.Fatalf("n=%d: DCT2[%d] = %g, complex reference %g", n, k, got[k], want[k])
			}
		}
	}
}

// TestSynthesisRoundTripTight pins IDCT as the exact inverse of DCT2 (and
// IDXST against the cosine identity it is derived from) at 1e-12 relative.
func TestSynthesisRoundTripTight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 4, 8, 16, 64, 256, 512} {
		cp := NewCosPlan(n)
		x := randSlice(rng, n)
		coef := make([]float64, n)
		back := make([]float64, n)
		cp.DCT2(coef, x)
		cp.IDCT(back, coef)
		scale := maxAbs(x) + 1
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-12*scale {
				t.Fatalf("n=%d: IDCT(DCT2(x))[%d] = %g, want %g", n, i, back[i], x[i])
			}
		}

		// IDXST(b)[m] = (-1)^m * IDCT(a)[m] with a_j = b_{n-j}, a_0 = 0:
		// the identity the sine synthesis is folded from.
		b := randSlice(rng, n)
		a := make([]float64, n)
		for j := 1; j < n; j++ {
			a[j] = b[n-j]
		}
		wantRaw := make([]float64, n)
		cp.IDCT(wantRaw, a)
		got := make([]float64, n)
		cp.IDXST(got, b)
		scale = maxAbs(wantRaw) + 1
		for m := range got {
			want := wantRaw[m]
			if m%2 == 1 {
				want = -want
			}
			if math.Abs(got[m]-want) > 1e-12*scale {
				t.Fatalf("n=%d: IDXST[%d] = %g, want %g", n, m, got[m], want)
			}
		}
	}
}

// TestScaledSynthesisBitExact pins the fused IDCTScale/IDXSTScale against
// pre-scaling the coefficients and calling the plain transforms. The fusion
// performs the identical multiply (src[k]*scale[k]) at the identical point in
// the computation, so the outputs must match bit for bit.
func TestScaledSynthesisBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, 4, 16, 128, 256} {
		cp := NewCosPlan(n)
		src := randSlice(rng, n)
		scale := randSlice(rng, n)
		pre := make([]float64, n)
		for i := range pre {
			pre[i] = src[i] * scale[i]
		}
		want := make([]float64, n)
		got := make([]float64, n)

		cp.IDCT(want, pre)
		cp.IDCTScale(got, src, scale)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: IDCTScale[%d] = %g, plain on pre-scaled = %g", n, i, got[i], want[i])
			}
		}

		cp.IDXST(want, pre)
		cp.IDXSTScale(got, src, scale)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: IDXSTScale[%d] = %g, plain on pre-scaled = %g", n, i, got[i], want[i])
			}
		}

		// Nil scale must be the plain transform.
		cp.IDCT(want, src)
		cp.IDCTScale(got, src, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: IDCTScale nil != IDCT at %d", n, i)
			}
		}
	}
}

// TestPlanCacheSharing verifies the structural contract of the plan cache:
// plans of one length share the immutable tables (one copy process-wide) but
// never the mutable packing scratch.
func TestPlanCacheSharing(t *testing.T) {
	p1 := NewCosPlan(64)
	p2 := NewCosPlan(64)
	if p1.t != p2.t {
		t.Error("CosPlans of the same length should share cosTables")
	}
	if p1.half.t != p2.half.t {
		t.Error("half Plans of the same length should share planTables")
	}
	if &p1.zre[0] == &p2.zre[0] || &p1.zim[0] == &p2.zim[0] {
		t.Error("CosPlans must not share packing scratch")
	}
	if NewPlan(128).t != NewPlan(128).t {
		t.Error("Plans of the same length should share planTables")
	}
}

// TestPlanCacheConcurrent hammers the plan cache and the shared tables from
// many goroutines, each with its own CosPlan of the same length, and checks
// every result against a serially computed expectation. Under -race this
// proves workers share only immutable tables, never mutable scratch.
func TestPlanCacheConcurrent(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(44))
	src := randSlice(rng, n)
	want := make([]float64, n)
	NewCosPlan(n).DCT2(want, src)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cp := NewCosPlan(n) // concurrent cache hit on the shared tables
			dst := make([]float64, n)
			back := make([]float64, n)
			for iter := 0; iter < 50; iter++ {
				cp.DCT2(dst, src)
				for k := range dst {
					if dst[k] != want[k] {
						errs <- "concurrent DCT2 diverged from serial result"
						return
					}
				}
				cp.IDCT(back, dst) // exercise the synthesis scratch too
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
