// Package fft provides the spectral transforms needed by the electrostatic
// placement engine: an iterative radix-2 complex FFT, the DCT-II/DCT-III
// pair used for Neumann-boundary Poisson analysis/synthesis, and the shifted
// sine synthesis (IDXST) used to evaluate the electric field from cosine
// potential coefficients.
//
// All lengths must be powers of two. Transforms are deterministic and
// allocation-free after plan construction.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan caches twiddle factors and the bit-reversal permutation for complex
// FFTs of one fixed power-of-two length.
type Plan struct {
	n      int
	rev    []int
	cosTab []float64 // cos(2*pi*k/n) for k < n/2
	sinTab []float64 // sin(2*pi*k/n) for k < n/2
}

// NewPlan creates an FFT plan for length n (a power of two, n >= 1).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a positive power of two", n))
	}
	p := &Plan{n: n}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	p.cosTab = make([]float64, n/2)
	p.sinTab = make([]float64, n/2)
	for k := 0; k < n/2; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		p.cosTab[k] = math.Cos(ang)
		p.sinTab[k] = math.Sin(ang)
	}
	return p
}

// N returns the plan length.
func (p *Plan) N() int { return p.n }

// Transform computes the in-place complex DFT of (re, im):
//
//	X_k = sum_n x_n * exp(-2*pi*i*k*n/N)   (forward)
//
// With inverse=true it computes the unscaled inverse DFT (conjugate
// exponent); callers divide by N to invert a forward transform.
func (p *Plan) Transform(re, im []float64, inverse bool) {
	n := p.n
	if len(re) != n || len(im) != n {
		panic("fft: slice length does not match plan")
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for j := start; j < start+half; j++ {
				c := p.cosTab[k]
				s := p.sinTab[k]
				if !inverse {
					s = -s
				}
				l := j + half
				tre := re[l]*c - im[l]*s
				tim := re[l]*s + im[l]*c
				re[l] = re[j] - tre
				im[l] = im[j] - tim
				re[j] += tre
				im[j] += tim
				k += step
			}
		}
	}
}

// CosPlan bundles the FFT plan and scratch needed by the real cosine/sine
// transforms of one length.
type CosPlan struct {
	fft      *Plan
	wre, wim []float64 // length-n scratch for the packed FFT
	cosQ     []float64 // cos(pi*k/(2n))
	sinQ     []float64 // sin(pi*k/(2n))
}

// NewCosPlan creates the cosine/sine transform plan for length n (power of
// two).
func NewCosPlan(n int) *CosPlan {
	cp := &CosPlan{
		fft:  NewPlan(n),
		wre:  make([]float64, n),
		wim:  make([]float64, n),
		cosQ: make([]float64, n),
		sinQ: make([]float64, n),
	}
	for k := 0; k < n; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		cp.cosQ[k] = math.Cos(ang)
		cp.sinQ[k] = math.Sin(ang)
	}
	return cp
}

// N returns the plan length.
func (cp *CosPlan) N() int { return cp.fft.n }

// DCT2 computes the (unnormalized) type-II discrete cosine transform
//
//	X_k = sum_{m=0}^{N-1} x_m * cos(pi*k*(2m+1)/(2N)),
//
// writing the result into dst (dst and src may alias). It uses Makhoul's
// even permutation so one length-N complex FFT suffices.
func (cp *CosPlan) DCT2(dst, src []float64) {
	n := cp.fft.n
	if len(src) != n || len(dst) != n {
		panic("fft: DCT2 length mismatch")
	}
	// v[m] = x[2m], v[N-1-m] = x[2m+1]
	for m := 0; m < (n+1)/2; m++ {
		cp.wre[m] = src[2*m]
	}
	for m := 0; 2*m+1 < n; m++ {
		cp.wre[n-1-m] = src[2*m+1]
	}
	for i := range cp.wim {
		cp.wim[i] = 0
	}
	cp.fft.Transform(cp.wre, cp.wim, false)
	// X_k = Re( e^{-i*pi*k/(2N)} * V_k )
	for k := 0; k < n; k++ {
		dst[k] = cp.cosQ[k]*cp.wre[k] + cp.sinQ[k]*cp.wim[k]
	}
}

// IDCT synthesizes samples from type-II DCT coefficients with the standard
// normalization, inverting DCT2 exactly:
//
//	x_m = A_0/N + (2/N) * sum_{k=1}^{N-1} A_k * cos(pi*k*(2m+1)/(2N)).
//
// dst and src may alias.
func (cp *CosPlan) IDCT(dst, src []float64) {
	n := cp.fft.n
	if len(src) != n || len(dst) != n {
		panic("fft: IDCT length mismatch")
	}
	// Conjugate-symmetry construction: V_k = e^{+i*pi*k/(2N)} *
	// (A_k - i*A_{N-k}) with A_N := 0, then (1/N)*IFFT(V) recovers the
	// even permutation of x.
	invN := 1 / float64(n)
	cp.wre[0] = src[0] * invN
	cp.wim[0] = 0
	for k := 1; k < n; k++ {
		a := src[k]
		b := src[n-k]
		cp.wre[k] = (a*cp.cosQ[k] + b*cp.sinQ[k]) * invN
		cp.wim[k] = (a*cp.sinQ[k] - b*cp.cosQ[k]) * invN
	}
	cp.fft.Transform(cp.wre, cp.wim, true)
	for m := 0; m < (n+1)/2; m++ {
		dst[2*m] = cp.wre[m]
	}
	for m := 0; 2*m+1 < n; m++ {
		dst[2*m+1] = cp.wre[n-1-m]
	}
}

// IDXST synthesizes the shifted sine series
//
//	s_m = (2/N) * sum_{k=1}^{N-1} B_k * sin(pi*k*(2m+1)/(2N)),
//
// the transform DREAMPlace calls IDXST, used to evaluate electric fields
// from cosine potential coefficients (B_0 is ignored). It reduces to an
// IDCT through the identity sin(w_k*(m+1/2)) = (-1)^m * cos(w_{N-k}*(m+1/2)).
// dst and src must not alias.
func (cp *CosPlan) IDXST(dst, src []float64) {
	n := cp.fft.n
	if len(src) != n || len(dst) != n {
		panic("fft: IDXST length mismatch")
	}
	if &dst[0] == &src[0] {
		panic("fft: IDXST dst must not alias src")
	}
	// c_j = B_{N-j} for j >= 1; c_0 = 0. The IDCT constant term uses
	// A_0/N (not 2/N), so zeroing c_0 matches the 2/N sine normalization.
	dst[0] = 0
	for j := 1; j < n; j++ {
		dst[j] = src[n-j]
	}
	cp.IDCT(dst, dst)
	for m := 1; m < n; m += 2 {
		dst[m] = -dst[m]
	}
}

// naiveDCT2 is the O(N^2) reference used by tests.
func naiveDCT2(dst, src []float64) {
	n := len(src)
	for k := 0; k < n; k++ {
		s := 0.0
		for m := 0; m < n; m++ {
			s += src[m] * math.Cos(math.Pi*float64(k)*(2*float64(m)+1)/(2*float64(n)))
		}
		dst[k] = s
	}
}
