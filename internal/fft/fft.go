// Package fft provides the spectral transforms needed by the electrostatic
// placement engine: an iterative radix-2 complex FFT, the DCT-II/DCT-III
// pair used for Neumann-boundary Poisson analysis/synthesis, and the shifted
// sine synthesis (IDXST) used to evaluate the electric field from cosine
// potential coefficients.
//
// All real transforms of length N run through one complex FFT of length N/2:
// the N real inputs are packed into N/2 complex points and the spectrum is
// unpacked with conjugate symmetry, which halves the butterfly work of every
// DCT2/IDCT/IDXST call relative to the classic Makhoul full-length embedding.
// The synthesis transforms also exist in fused *Scale variants that fold an
// elementwise coefficient scaling into the spectrum-packing pass, so callers
// like the Poisson solver never need a separate whole-grid scaling loop.
//
// Twiddle factors, quarter-wave tables, and bit-reversal permutations are
// immutable per length and shared process-wide through a plan cache; every
// Plan/CosPlan instance carries only private scratch, so per-worker plans are
// cheap and safe to use concurrently (one plan per goroutine).
//
// All lengths must be powers of two. Transforms are deterministic and
// allocation-free after plan construction.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// planTables holds the immutable per-length data of a complex FFT: the
// bit-reversal permutation and the twiddle tables. Instances are shared
// read-only between every Plan of the same length via the plan cache.
type planTables struct {
	rev    []int
	cosTab []float64 // cos(2*pi*k/n) for k < n/2
	sinTab []float64 // sin(2*pi*k/n) for k < n/2
}

var planCache sync.Map // int -> *planTables

// tablesFor returns the shared immutable tables for a length-n complex FFT,
// building them on first use.
func tablesFor(n int) *planTables {
	if t, ok := planCache.Load(n); ok {
		return t.(*planTables)
	}
	t := &planTables{
		rev:    make([]int, n),
		cosTab: make([]float64, n/2),
		sinTab: make([]float64, n/2),
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		t.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := 0; k < n/2; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		t.cosTab[k] = math.Cos(ang)
		t.sinTab[k] = math.Sin(ang)
	}
	actual, _ := planCache.LoadOrStore(n, t)
	return actual.(*planTables)
}

// Plan caches twiddle factors and the bit-reversal permutation for complex
// FFTs of one fixed power-of-two length. Plans of the same length share their
// tables read-only; a Plan itself carries no mutable state, so it is safe for
// concurrent Transform calls on disjoint slices.
type Plan struct {
	n int
	t *planTables
}

// NewPlan creates an FFT plan for length n (a power of two, n >= 1).
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a positive power of two", n))
	}
	return &Plan{n: n, t: tablesFor(n)}
}

// N returns the plan length.
func (p *Plan) N() int { return p.n }

// Transform computes the in-place complex DFT of (re, im):
//
//	X_k = sum_n x_n * exp(-2*pi*i*k*n/N)   (forward)
//
// With inverse=true it computes the unscaled inverse DFT (conjugate
// exponent); callers divide by N to invert a forward transform.
func (p *Plan) Transform(re, im []float64, inverse bool) {
	n := p.n
	if len(re) != n || len(im) != n {
		panic("fft: slice length does not match plan")
	}
	// Bit-reversal permutation.
	for i, j := range p.t.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Stage size=2: unit twiddle, pure add/sub butterflies.
	for j := 0; j+1 < n; j += 2 {
		tre, tim := re[j+1], im[j+1]
		re[j+1] = re[j] - tre
		im[j+1] = im[j] - tim
		re[j] += tre
		im[j] += tim
	}
	// Stage size=4: twiddles are 1 and -i (forward) / +i (inverse), so the
	// second butterfly of each group is a swap/negate instead of a complex
	// multiply.
	if n >= 4 {
		for j := 0; j+3 < n; j += 4 {
			tre, tim := re[j+2], im[j+2]
			re[j+2] = re[j] - tre
			im[j+2] = im[j] - tim
			re[j] += tre
			im[j] += tim
			var ure, uim float64
			if inverse {
				ure, uim = -im[j+3], re[j+3]
			} else {
				ure, uim = im[j+3], -re[j+3]
			}
			re[j+3] = re[j+1] - ure
			im[j+3] = im[j+1] - uim
			re[j+1] += ure
			im[j+1] += uim
		}
	}
	cosTab, sinTab := p.t.cosTab, p.t.sinTab
	for size := 8; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for j := start; j < start+half; j++ {
				c := cosTab[k]
				s := sinTab[k]
				if !inverse {
					s = -s
				}
				l := j + half
				tre := re[l]*c - im[l]*s
				tim := re[l]*s + im[l]*c
				re[l] = re[j] - tre
				im[l] = im[j] - tim
				re[j] += tre
				im[j] += tim
				k += step
			}
		}
	}
}

// cosTables holds the immutable per-length data of the real cosine/sine
// transforms: quarter-wave twiddles for the DCT post/pre-rotation and the
// pack/unpack twiddles of the half-size real FFT. Shared read-only between
// every CosPlan of the same length.
type cosTables struct {
	cosQ, sinQ []float64 // cos/sin(pi*k/(2n)), k = 0..n/2
	pakC, pakS []float64 // cos/sin(2*pi*k/n),  k = 0..n/2-1
}

var cosCache sync.Map // int -> *cosTables

func cosTablesFor(n int) *cosTables {
	if t, ok := cosCache.Load(n); ok {
		return t.(*cosTables)
	}
	h := n / 2
	t := &cosTables{
		cosQ: make([]float64, h+1),
		sinQ: make([]float64, h+1),
		pakC: make([]float64, h),
		pakS: make([]float64, h),
	}
	for k := 0; k <= h; k++ {
		ang := math.Pi * float64(k) / float64(2*n)
		t.cosQ[k] = math.Cos(ang)
		t.sinQ[k] = math.Sin(ang)
	}
	for k := 0; k < h; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		t.pakC[k] = math.Cos(ang)
		t.pakS[k] = math.Sin(ang)
	}
	actual, _ := cosCache.LoadOrStore(n, t)
	return actual.(*cosTables)
}

// CosPlan computes the real cosine/sine transforms of one length through a
// half-size complex FFT. The twiddle/quarter-wave tables are shared read-only
// across all plans of the same length (see the plan cache); only the packing
// scratch is private, so create one CosPlan per worker goroutine and the
// workers never contend.
type CosPlan struct {
	n    int
	half *Plan // complex FFT of length n/2 (nil when n == 1)
	t    *cosTables
	// zre, zim are the private length-n/2 packing scratch.
	zre, zim []float64
}

// NewCosPlan creates the cosine/sine transform plan for length n (power of
// two).
func NewCosPlan(n int) *CosPlan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a positive power of two", n))
	}
	cp := &CosPlan{n: n, t: cosTablesFor(n)}
	if n > 1 {
		h := n / 2
		cp.half = NewPlan(h)
		cp.zre = make([]float64, h)
		cp.zim = make([]float64, h)
	}
	return cp
}

// N returns the plan length.
func (cp *CosPlan) N() int { return cp.n }

// DCT2 computes the (unnormalized) type-II discrete cosine transform
//
//	X_k = sum_{m=0}^{N-1} x_m * cos(pi*k*(2m+1)/(2N)),
//
// writing the result into dst (dst and src may alias). It uses Makhoul's
// even permutation, packs the permuted reals into N/2 complex points, runs
// one half-size complex FFT, and unpacks with conjugate symmetry.
func (cp *CosPlan) DCT2(dst, src []float64) {
	n := cp.n
	if len(src) != n || len(dst) != n {
		panic("fft: DCT2 length mismatch")
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	if n == 2 {
		// Length-1 half transform is the identity; unpack directly.
		a, b := src[0], src[1]
		dst[0] = a + b
		dst[1] = cp.t.cosQ[1] * (a - b)
		return
	}
	h := n / 2
	zre, zim := cp.zre, cp.zim
	// Pack: v[m] = x[2m] for m < h, v[m] = x[2n-2m-1] for m >= h (Makhoul's
	// even permutation), then z_j = v[2j] + i*v[2j+1]. h is even for n >= 4,
	// so the permutation branch splits cleanly at j = h/2 into two
	// branch-free loops.
	for j := 0; j < h/2; j++ {
		zre[j] = src[4*j]
		zim[j] = src[4*j+2]
	}
	for j := h / 2; j < h; j++ {
		zre[j] = src[2*n-4*j-1]
		zim[j] = src[2*n-4*j-3]
	}
	cp.half.Transform(zre, zim, false)
	// Unpack V_k = E_k - i*w^k*D_k (w = e^{-2*pi*i/n}) from the half
	// spectrum and post-rotate: X_k = Re(e^{-i*pi*k/(2N)} * V_k). The
	// conjugate half follows from V_{n-k} = conj(V_k) together with the
	// quarter-wave identities cosQ[n-k] = sinQ[k], sinQ[n-k] = cosQ[k].
	cosQ, sinQ := cp.t.cosQ, cp.t.sinQ
	pakC, pakS := cp.t.pakC, cp.t.pakS
	dst[0] = zre[0] + zim[0]
	dst[h] = cp.t.cosQ[h] * (zre[0] - zim[0])
	for k := 1; k < h; k++ {
		ar, ai := zre[k], zim[k]
		br, bi := zre[h-k], -zim[h-k]
		er, ei := (ar+br)/2, (ai+bi)/2
		dr, di := (ar-br)/2, (ai-bi)/2
		c, s := pakC[k], pakS[k]
		vre := er + (c*di - s*dr)
		vim := ei - (c*dr + s*di)
		dst[k] = cosQ[k]*vre + sinQ[k]*vim
		dst[n-k] = sinQ[k]*vre - cosQ[k]*vim
	}
}

// IDCT synthesizes samples from type-II DCT coefficients with the standard
// normalization, inverting DCT2 exactly:
//
//	x_m = A_0/N + (2/N) * sum_{k=1}^{N-1} A_k * cos(pi*k*(2m+1)/(2N)).
//
// dst and src may alias.
func (cp *CosPlan) IDCT(dst, src []float64) {
	cp.synth(dst, src, nil, false)
}

// IDCTScale is IDCT of the elementwise product src[i]*scale[i]: the scaling
// folds into the spectrum-packing pass, so no separate scaled copy of the
// coefficients is ever materialized. dst and src may alias. A nil scale is
// the plain IDCT.
func (cp *CosPlan) IDCTScale(dst, src, scale []float64) {
	cp.synth(dst, src, scale, false)
}

// IDXST synthesizes the shifted sine series
//
//	s_m = (2/N) * sum_{k=1}^{N-1} B_k * sin(pi*k*(2m+1)/(2N)),
//
// the transform DREAMPlace calls IDXST, used to evaluate electric fields
// from cosine potential coefficients (B_0 is ignored). It reduces to an
// IDCT through the identity sin(w_k*(m+1/2)) = (-1)^m * cos(w_{N-k}*(m+1/2));
// the coefficient reversal and the (-1)^m sign flip are folded into the
// packing and scatter passes. dst and src may alias.
func (cp *CosPlan) IDXST(dst, src []float64) {
	cp.synth(dst, src, nil, true)
}

// IDXSTScale is IDXST of the elementwise product src[i]*scale[i]; see
// IDCTScale. dst and src may alias. A nil scale is the plain IDXST.
func (cp *CosPlan) IDXSTScale(dst, src, scale []float64) {
	cp.synth(dst, src, scale, true)
}

// synth is the shared DCT-III/IDXST synthesis: it builds the conjugate-
// symmetric spectrum V_k = e^{+i*pi*k/(2N)}*(c_k - i*c_{N-k})*(2/N) for
// k = 0..N/2 from the (optionally scaled, optionally reversed-for-sine)
// coefficients, folds it into the N/2-point spectrum of the packed real
// sequence, runs one half-size inverse FFT, and scatters the evens/odds
// back through Makhoul's permutation (negating odd outputs for the sine
// synthesis). src is fully consumed before dst is written, so they may
// alias.
func (cp *CosPlan) synth(dst, src, scale []float64, sine bool) {
	n := cp.n
	if len(src) != n || len(dst) != n {
		panic("fft: synthesis length mismatch")
	}
	if scale != nil && len(scale) != n {
		panic("fft: synthesis scale length mismatch")
	}
	if n == 1 {
		if sine {
			dst[0] = 0
		} else if scale != nil {
			dst[0] = src[0] * scale[0]
		} else {
			dst[0] = src[0]
		}
		return
	}
	h := n / 2
	zre, zim := cp.zre, cp.zim
	cosQ, sinQ := cp.t.cosQ, cp.t.sinQ
	inv := 2 / float64(n)

	// coefAt reads the effective coefficient c_k: src[k] (cosine) or the
	// reversed src[n-k] with c_0 = 0 (sine), times the optional scale.
	// Inlined below as explicit branches to keep the pack loop branch-light.
	var v0, vh float64 // V_0 and V_{n/2} (both real)
	if sine {
		if scale != nil {
			v0 = 0
			a := src[h] * scale[h]
			vh = a * (cosQ[h] + sinQ[h]) * inv
			// Build V_k for k = 1..h-1 into zre/zim (staging in the
			// scratch before the in-place spectrum fold below).
			for k := 1; k < h; k++ {
				a := src[n-k] * scale[n-k]
				b := src[k] * scale[k]
				zre[k] = (a*cosQ[k] + b*sinQ[k]) * inv
				zim[k] = (a*sinQ[k] - b*cosQ[k]) * inv
			}
		} else {
			v0 = 0
			vh = src[h] * (cosQ[h] + sinQ[h]) * inv
			for k := 1; k < h; k++ {
				a := src[n-k]
				b := src[k]
				zre[k] = (a*cosQ[k] + b*sinQ[k]) * inv
				zim[k] = (a*sinQ[k] - b*cosQ[k]) * inv
			}
		}
	} else {
		if scale != nil {
			v0 = src[0] * scale[0] * inv
			a := src[h] * scale[h]
			vh = a * (cosQ[h] + sinQ[h]) * inv
			for k := 1; k < h; k++ {
				a := src[k] * scale[k]
				b := src[n-k] * scale[n-k]
				zre[k] = (a*cosQ[k] + b*sinQ[k]) * inv
				zim[k] = (a*sinQ[k] - b*cosQ[k]) * inv
			}
		} else {
			v0 = src[0] * inv
			vh = src[h] * (cosQ[h] + sinQ[h]) * inv
			for k := 1; k < h; k++ {
				a := src[k]
				b := src[n-k]
				zre[k] = (a*cosQ[k] + b*sinQ[k]) * inv
				zim[k] = (a*sinQ[k] - b*cosQ[k]) * inv
			}
		}
	}

	// Fold the conjugate-symmetric V into the half spectrum:
	// Z_k = E_k + D_k with E_k = (V_k + conj(V_{h-k}))/2 and
	// D_k = (i/2)*e^{+2*pi*i*k/n}*(V_k - conj(V_{h-k})). The fold for pair
	// (k, h-k) reads exactly the entries it overwrites, so it runs in place
	// over the staged V values.
	pakC, pakS := cp.t.pakC, cp.t.pakS
	zre[0] = (v0 + vh) / 2
	zim[0] = (v0 - vh) / 2
	for k := 1; k <= h/2; k++ {
		ar, ai := zre[k], zim[k]
		br, bi := zre[h-k], -zim[h-k]
		er, ei := (ar+br)/2, (ai+bi)/2
		dr, di := (ar-br)/2, (ai-bi)/2
		c, s := pakC[k], pakS[k]
		zr := er - (c*di + s*dr)
		zi := ei + (c*dr - s*di)
		if k == h-k {
			zre[k], zim[k] = zr, zi
			break
		}
		// Mirror index: A' = V_{h-k}, conj(B') = conj(V_k).
		er2, ei2 := (br+ar)/2, (-bi-ai)/2
		dr2, di2 := (br-ar)/2, (-bi+ai)/2
		c2, s2 := pakC[h-k], pakS[h-k]
		zre[h-k] = er2 - (c2*di2 + s2*dr2)
		zim[h-k] = ei2 + (c2*dr2 - s2*di2)
		zre[k], zim[k] = zr, zi
	}
	cp.half.Transform(zre, zim, true)

	// Scatter: v[2j] = Re z_j, v[2j+1] = Im z_j, then undo the even
	// permutation (v[m] -> x[2m] for m < h, v[m] -> x[2n-2m-1] for m >= h).
	// The m >= h branch lands exactly on the odd outputs, which is where the
	// sine synthesis flips signs. h is even for n >= 4, so the branch splits
	// cleanly at j = h/2 into branch-free loops; n == 2 (h == 1) straddles
	// the split within one element and is handled directly.
	if h == 1 {
		dst[0] = zre[0]
		if sine {
			dst[1] = -zim[0]
		} else {
			dst[1] = zim[0]
		}
		return
	}
	for j := 0; j < h/2; j++ {
		dst[4*j] = zre[j]
		dst[4*j+2] = zim[j]
	}
	if sine {
		for j := h / 2; j < h; j++ {
			dst[2*n-4*j-1] = -zre[j]
			dst[2*n-4*j-3] = -zim[j]
		}
	} else {
		for j := h / 2; j < h; j++ {
			dst[2*n-4*j-1] = zre[j]
			dst[2*n-4*j-3] = zim[j]
		}
	}
}

// naiveDCT2 is the O(N^2) reference used by tests.
func naiveDCT2(dst, src []float64) {
	n := len(src)
	for k := 0; k < n; k++ {
		s := 0.0
		for m := 0; m < n; m++ {
			s += src[m] * math.Cos(math.Pi*float64(k)*(2*float64(m)+1)/(2*float64(n)))
		}
		dst[k] = s
	}
}
