package fft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDFT is the O(N^2) reference DFT.
func naiveDFT(re, im []float64, inverse bool) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		for m := 0; m < n; m++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(m) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			or[k] += re[m]*c - im[m]*s
			oi[k] += re[m]*s + im[m]*c
		}
	}
	return or, oi
}

func randSlice(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		re := randSlice(rng, n)
		im := randSlice(rng, n)
		wantRe, wantIm := naiveDFT(re, im, false)
		p := NewPlan(n)
		gotRe := append([]float64(nil), re...)
		gotIm := append([]float64(nil), im...)
		p.Transform(gotRe, gotIm, false)
		for i := 0; i < n; i++ {
			if math.Abs(gotRe[i]-wantRe[i]) > 1e-9*(1+math.Abs(wantRe[i])) ||
				math.Abs(gotIm[i]-wantIm[i]) > 1e-9*(1+math.Abs(wantIm[i])) {
				t.Fatalf("n=%d k=%d: FFT (%g,%g) vs DFT (%g,%g)", n, i, gotRe[i], gotIm[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 128, 512} {
		re := randSlice(rng, n)
		im := randSlice(rng, n)
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)
		p := NewPlan(n)
		p.Transform(re, im, false)
		p.Transform(re, im, true)
		for i := 0; i < n; i++ {
			if math.Abs(re[i]/float64(n)-origRe[i]) > 1e-10 ||
				math.Abs(im[i]/float64(n)-origIm[i]) > 1e-10 {
				t.Fatalf("n=%d: roundtrip mismatch at %d", n, i)
			}
		}
	}
}

// Parseval: sum |x|^2 == (1/N) sum |X|^2.
func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	re := randSlice(rng, n)
	im := randSlice(rng, n)
	var timeE float64
	for i := range re {
		timeE += re[i]*re[i] + im[i]*im[i]
	}
	p := NewPlan(n)
	p.Transform(re, im, false)
	var freqE float64
	for i := range re {
		freqE += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(timeE-freqE/float64(n)) > 1e-8*timeE {
		t.Errorf("Parseval violated: %g vs %g", timeE, freqE/float64(n))
	}
}

func TestNewPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
}

func TestDCT2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 4, 16, 128} {
		src := randSlice(rng, n)
		want := make([]float64, n)
		naiveDCT2(want, src)
		cp := NewCosPlan(n)
		got := make([]float64, n)
		cp.DCT2(got, src)
		for k := 0; k < n; k++ {
			if math.Abs(got[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
				t.Fatalf("n=%d k=%d: DCT2 %g vs naive %g", n, k, got[k], want[k])
			}
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 8, 64, 512} {
		src := randSlice(rng, n)
		cp := NewCosPlan(n)
		coeff := make([]float64, n)
		back := make([]float64, n)
		cp.DCT2(coeff, src)
		cp.IDCT(back, coeff)
		for i := 0; i < n; i++ {
			if math.Abs(back[i]-src[i]) > 1e-9 {
				t.Fatalf("n=%d: IDCT(DCT2(x))[%d] = %g, want %g", n, i, back[i], src[i])
			}
		}
	}
}

func TestDCT2InPlaceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 64
	src := randSlice(rng, n)
	cp := NewCosPlan(n)
	want := make([]float64, n)
	cp.DCT2(want, src)
	inPlace := append([]float64(nil), src...)
	cp.DCT2(inPlace, inPlace)
	for k := range want {
		if inPlace[k] != want[k] {
			t.Fatalf("aliased DCT2 differs at %d", k)
		}
	}
}

// naiveIDCT implements x_m = A_0/N + (2/N) sum A_k cos(pi k (2m+1)/(2N)).
func naiveIDCT(dst, src []float64) {
	n := len(src)
	for m := 0; m < n; m++ {
		s := src[0] / float64(n)
		for k := 1; k < n; k++ {
			s += 2 / float64(n) * src[k] * math.Cos(math.Pi*float64(k)*(2*float64(m)+1)/(2*float64(n)))
		}
		dst[m] = s
	}
}

func TestIDCTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 32, 128} {
		src := randSlice(rng, n)
		want := make([]float64, n)
		naiveIDCT(want, src)
		cp := NewCosPlan(n)
		got := make([]float64, n)
		cp.IDCT(got, src)
		for m := 0; m < n; m++ {
			if math.Abs(got[m]-want[m]) > 1e-9*(1+math.Abs(want[m])) {
				t.Fatalf("n=%d m=%d: IDCT %g vs naive %g", n, m, got[m], want[m])
			}
		}
	}
}

// naiveIDXST implements s_m = (2/N) sum_{k>=1} B_k sin(pi k (2m+1)/(2N)).
func naiveIDXST(dst, src []float64) {
	n := len(src)
	for m := 0; m < n; m++ {
		s := 0.0
		for k := 1; k < n; k++ {
			s += 2 / float64(n) * src[k] * math.Sin(math.Pi*float64(k)*(2*float64(m)+1)/(2*float64(n)))
		}
		dst[m] = s
	}
}

func TestIDXSTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 4, 32, 256} {
		src := randSlice(rng, n)
		want := make([]float64, n)
		naiveIDXST(want, src)
		cp := NewCosPlan(n)
		got := make([]float64, n)
		cp.IDXST(got, src)
		for m := 0; m < n; m++ {
			if math.Abs(got[m]-want[m]) > 1e-9*(1+math.Abs(want[m])) {
				t.Fatalf("n=%d m=%d: IDXST %g vs naive %g", n, m, got[m], want[m])
			}
		}
	}
}

// IDXST must ignore B_0 entirely.
func TestIDXSTIgnoresDC(t *testing.T) {
	n := 32
	rng := rand.New(rand.NewSource(9))
	src := randSlice(rng, n)
	cp := NewCosPlan(n)
	a := make([]float64, n)
	b := make([]float64, n)
	cp.IDXST(a, src)
	src[0] = 12345
	cp.IDXST(b, src)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("IDXST depends on B_0 at %d", i)
		}
	}
}

// A pure cosine mode must produce exactly one DCT coefficient.
func TestDCT2PureMode(t *testing.T) {
	n := 64
	k0 := 5
	src := make([]float64, n)
	for m := range src {
		src[m] = math.Cos(math.Pi * float64(k0) * (2*float64(m) + 1) / (2 * float64(n)))
	}
	cp := NewCosPlan(n)
	coeff := make([]float64, n)
	cp.DCT2(coeff, src)
	for k := range coeff {
		want := 0.0
		if k == k0 {
			want = float64(n) / 2
		}
		if math.Abs(coeff[k]-want) > 1e-9 {
			t.Fatalf("coeff[%d] = %g, want %g", k, coeff[k], want)
		}
	}
}

func BenchmarkFFT256(b *testing.B) {
	p := NewPlan(256)
	re := make([]float64, 256)
	im := make([]float64, 256)
	for i := range re {
		re[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transform(re, im, i%2 == 1)
	}
}

func BenchmarkDCT2_256(b *testing.B) {
	cp := NewCosPlan(256)
	src := make([]float64, 256)
	dst := make([]float64, 256)
	for i := range src {
		src[i] = float64(i % 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.DCT2(dst, src)
	}
}
