package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/synth"
)

// AblationVariant is one configuration of the ablation study.
type AblationVariant struct {
	Name  string
	Model string
	// Mutate adjusts the flow configuration after defaults are applied.
	Mutate func(*core.FlowConfig)
}

// AblationVariants lists the design choices the reproduction isolates:
//
//   - the paper's tangent t-schedule (Eq. 14) vs driving the Moreau model
//     with the ePlace gamma schedule,
//   - whitespace fillers on vs off,
//   - Nesterov (ePlace) vs Adam vs plain momentum as the optimizer,
//   - the WA baseline under the identical engine, for reference.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "ME(default)", Model: "ME", Mutate: func(*core.FlowConfig) {}},
		{Name: "ME+gammaSched", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.Schedule = "gamma" }},
		{Name: "ME-nofillers", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.NoFillers = true }},
		{Name: "ME+adam", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.Optimizer = "adam" }},
		{Name: "ME+momentum", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.Optimizer = "momentum" }},
		{Name: "ME+qinit", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.Init = "quadratic" }},
		{Name: "ME+precond", Model: "ME", Mutate: func(c *core.FlowConfig) { c.GP.Precondition = true }},
		// The non-smooth baseline from the paper's introduction: optimize
		// exact HPWL with its canonical subgradient (Eq. 17); the paper
		// notes such methods converge slowly and poorly.
		{Name: "HPWL-subgrad", Model: "HPWL", Mutate: func(*core.FlowConfig) {}},
		{Name: "WA(reference)", Model: "WA", Mutate: func(*core.FlowConfig) {}},
	}
}

// AblationRow is one result of the ablation study.
type AblationRow struct {
	Name             string
	GPWL, LGWL, DPWL float64
	Overflow         float64
	Seconds          float64
}

// Ablation runs the ablation variants on the newblue1-like design (the
// paper's headline case) and prints the comparison. It returns the rows for
// programmatic checks.
func Ablation(w io.Writer, o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	spec := synth.SpecFromContest(synth.ISPD2006[1], o.Scale2006)
	d, err := synth.Generate(spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Ablation study on %s (%d movable cells)\n", spec.Name, spec.NumMovable+spec.NumMacros)
	fmt.Fprintf(w, "%-16s %-12s %-12s %-12s %-10s %-8s\n", "variant", "GPWL", "LGWL", "DPWL", "overflow", "RT(s)")
	var rows []AblationRow
	for _, v := range AblationVariants() {
		cfg := o.flowConfig(v.Model)
		v.Mutate(&cfg)
		res, err := core.RunFlowContext(o.ctx(), d.Clone(), cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.Name, err)
		}
		row := AblationRow{
			Name: v.Name, GPWL: res.GPWL, LGWL: res.LGWL, DPWL: res.DPWL,
			Overflow: res.Overflow, Seconds: res.TotalSeconds,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-16s %-12.5g %-12.5g %-12.5g %-10.3f %-8.2f\n",
			row.Name, row.GPWL, row.LGWL, row.DPWL, row.Overflow, row.Seconds)
		o.progressf("  ablation %-16s DPWL=%.5g\n", v.Name, row.DPWL)
	}
	return rows, nil
}
