package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/synth"
)

// tinyOptions keeps experiment tests fast: micro-scale suites, short GP.
func tinyOptions() Options {
	return Options{
		Scale2006:    0.0005,
		Scale2019:    0.002,
		MaxIters:     120,
		StopOverflow: 0.25,
		Workers:      2,
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"adaptec5", "newblue7", "ispd19_test10", "842482", "3957499"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestRunSuiteTinyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("flow suite in -short mode")
	}
	o := tinyOptions()
	specs := []synth.Spec{
		{Name: "t1", NumMovable: 200, NumPads: 4, NumNets: 220, AvgDegree: 3.5,
			Utilization: 0.7, TargetDensity: 1, Seed: 1},
		{Name: "t2", NumMovable: 150, NumPads: 4, NumNets: 160, AvgDegree: 3.5,
			Utilization: 0.7, TargetDensity: 1, Seed: 2},
	}
	tbl, err := RunSuite("tiny", specs, []string{"WA", "ME"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Designs()) != 2 {
		t.Fatalf("table has %d rows", len(tbl.Designs()))
	}
	for _, d := range tbl.Designs() {
		for _, m := range []string{"WA", "ME"} {
			c, ok := tbl.Get(d, m)
			if !ok || c.LGWL <= 0 || c.DPWL <= 0 || c.RT <= 0 {
				t.Errorf("%s/%s cell invalid: %+v ok=%v", d, m, c, ok)
			}
			// DP never worsens the legalized wirelength.
			if c.DPWL > c.LGWL+1e-6 {
				t.Errorf("%s/%s: DPWL %g > LGWL %g", d, m, c.DPWL, c.LGWL)
			}
		}
	}
	ratios := tbl.AvgRatios()
	if r, ok := ratios["ME"]; !ok || math.Abs(r[1]-1) > 1e-12 {
		t.Errorf("ME self-ratio = %v", ratios["ME"])
	}
}

func TestRunSuitePropagatesErrors(t *testing.T) {
	o := tinyOptions()
	specs := []synth.Spec{{Name: "bad", NumMovable: 0, NumNets: 1, AvgDegree: 2, Utilization: 0.5}}
	if _, err := RunSuite("bad", specs, []string{"WA"}, o); err == nil {
		t.Error("invalid spec did not fail the suite")
	}
	specs = []synth.Spec{{Name: "badmodel", NumMovable: 100, NumPads: 4, NumNets: 110,
		AvgDegree: 3, Utilization: 0.7, TargetDensity: 1, Seed: 1}}
	if _, err := RunSuite("badmodel", specs, []string{"NOPE"}, o); err == nil {
		t.Error("unknown model did not fail the suite")
	}
}

func TestFig1aFindsWANonConvexity(t *testing.T) {
	var buf bytes.Buffer
	_, nonConvex := Fig1a(&buf)
	if len(nonConvex) == 0 {
		t.Error("Fig1a found no WA convexity violations; the paper's Fig. 1(a) shows them")
	}
	out := buf.String()
	if !strings.Contains(out, "WA(gamma=10)") || !strings.Contains(out, "ME(t=10)") {
		t.Error("Fig1a output missing expected series")
	}
	if !strings.Contains(out, "ME violations: false") {
		t.Error("ME curve should have no convexity violations")
	}
}

func TestFig1bErrorOrderingAndTrend(t *testing.T) {
	var buf bytes.Buffer
	pts := Fig1b(&buf, 500, 42)
	if len(pts) < 5 {
		t.Fatalf("only %d points", len(pts))
	}
	// The paper's claim (its model is W^t + t): for equal smoothing
	// parameter the reported Moreau model has lower average error than
	// LSE and WA throughout the practical range (param up to dx/2). The
	// raw envelope's error is ~t by Theorem 2; the +t offset cancels it.
	for _, p := range pts {
		if p.Param > 100 {
			continue
		}
		if p.MEPlusOffset > p.LSE+1e-9 || p.MEPlusOffset > p.WA+1e-9 {
			t.Errorf("param=%g: ME+t error %g above LSE %g or WA %g",
				p.Param, p.MEPlusOffset, p.LSE, p.WA)
		}
		// And the raw envelope error tracks the Theorem 2 bound ~t.
		if p.ME > p.Param*1.01+1e-9 {
			t.Errorf("param=%g: raw envelope error %g exceeds t", p.Param, p.ME)
		}
	}
	// Errors grow with the smoothing parameter for every model.
	last := pts[len(pts)-1]
	first := pts[0]
	if !(last.LSE > first.LSE && last.WA > first.WA && last.ME > first.ME) {
		t.Error("errors should grow with the smoothing parameter")
	}
	// At tiny parameters every model approximates well.
	if first.LSE > 5 || first.WA > 5 || first.ME > 1 {
		t.Errorf("errors at param=%g too large: %+v", first.Param, first)
	}
}

func TestStabilityStudyShowsOverflow(t *testing.T) {
	var buf bytes.Buffer
	StabilityStudy(&buf)
	out := buf.String()
	if !strings.Contains(out, "OVERFLOW") {
		t.Error("naive kernels should overflow somewhere in the table")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	lastLine := lines[len(lines)-1] // gamma = 0.1 row
	if strings.Count(lastLine, "OVERFLOW") < 2 {
		t.Errorf("gamma=0.1 row should overflow both naive kernels: %q", lastLine)
	}
	// Stable columns never overflow: count total occurrences (2 naive
	// columns x 2 small gammas = up to 4; stable columns add none).
	if strings.Count(out, "OVERFLOW") > 8 {
		t.Errorf("stable kernels overflowed:\n%s", out)
	}
}

func TestFig3TrajectoriesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 flows in -short mode")
	}
	o := tinyOptions()
	o.Scale2006 = 0.0008
	o.Scale2019 = 0.0008
	var buf bytes.Buffer
	blocks, err := Fig3(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 || len(blocks[0].Series) != 2 {
		t.Fatalf("unexpected Fig3 blocks: %d", len(blocks))
	}
	out := buf.String()
	for _, want := range []string{"Fig3a-newblue1-like", "Fig3b-ispd19_test10-like", "series: WA", "series: ME"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q", want)
		}
	}
}

func TestAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation flows in -short mode")
	}
	o := tinyOptions()
	o.Scale2006 = 0.0008
	var buf bytes.Buffer
	rows, err := Ablation(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants()) {
		t.Fatalf("%d rows for %d variants", len(rows), len(AblationVariants()))
	}
	for _, r := range rows {
		if r.DPWL <= 0 || r.Seconds <= 0 {
			t.Errorf("variant %s produced invalid row: %+v", r.Name, r)
		}
	}
	out := buf.String()
	for _, want := range []string{"ME(default)", "ME+gammaSched", "ME+adam", "WA(reference)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestSeedStudyTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("seed study flows in -short mode")
	}
	o := tinyOptions()
	o.Scale2006 = 0.0006
	var buf bytes.Buffer
	stats, err := SeedStudy(&buf, o, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d stat rows", len(stats))
	}
	for _, s := range stats {
		if s.Mean <= 0 || len(s.PerSeed) != 2 {
			t.Errorf("bad stats: %+v", s)
		}
		if s.Min > s.Mean || s.Max < s.Mean {
			t.Errorf("min/mean/max inconsistent: %+v", s)
		}
	}
	if !strings.Contains(buf.String(), "Seed study") {
		t.Error("missing header")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale2006 != synth.Scale2006 || o.Scale2019 != synth.Scale2019 {
		t.Errorf("default scales wrong: %g %g", o.Scale2006, o.Scale2019)
	}
	if o.MaxIters != 2500 || o.StopOverflow != 0.07 {
		t.Errorf("default effort wrong: %d %g", o.MaxIters, o.StopOverflow)
	}
	if o.Workers < 1 {
		t.Errorf("workers = %d", o.Workers)
	}
	// Explicit values survive.
	o2 := Options{MaxIters: 7, StopOverflow: 0.5, Workers: 3}.withDefaults()
	if o2.MaxIters != 7 || o2.StopOverflow != 0.5 || o2.Workers != 3 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestFlowConfigSchedulesByModel(t *testing.T) {
	o := Options{}.withDefaults()
	me := o.flowConfig("ME")
	if me.ModelName != "ME" {
		t.Errorf("model name = %q", me.ModelName)
	}
	if me.GP.MaxIters != o.MaxIters || me.GP.StopOverflow != o.StopOverflow {
		t.Error("flow config did not inherit effort settings")
	}
}
