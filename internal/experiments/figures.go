package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

// Fig1a regenerates the non-convexity study of Fig. 1(a): the WA model on a
// 3-pin net x = (0, x, 100) for several gamma values, plus the Moreau
// envelope at a comparable smoothing for contrast (convex by construction).
// Returns the curves and the gamma values for which a convexity violation
// was detected.
func Fig1a(w io.Writer) ([]metrics.Series, []float64) {
	gammas := []float64{5, 10, 20, 40}
	var series []metrics.Series
	var nonConvex []float64
	for _, g := range gammas {
		s := metrics.Series{Name: fmt.Sprintf("WA(gamma=%g)", g)}
		for x := 0.0; x <= 100; x += 1 {
			s.X = append(s.X, x)
			s.Y = append(s.Y, wirelength.NetWA([]float64{0, x, 100}, g, nil))
		}
		series = append(series, s)
		if hasConvexityViolation(s.Y) {
			nonConvex = append(nonConvex, g)
		}
	}
	me := metrics.Series{Name: "ME(t=10)"}
	for x := 0.0; x <= 100; x += 1 {
		me.X = append(me.X, x)
		me.Y = append(me.Y, wirelength.NetMoreau([]float64{0, x, 100}, 10, nil))
	}
	series = append(series, me)
	fmt.Fprint(w, metrics.RenderSeries(
		"Fig. 1(a)  WA wirelength of the 3-pin net (0, x, 100): non-convex in x; ME shown for contrast",
		"x", "approx_dx", series))
	fmt.Fprintf(w, "\n# WA convexity violations detected at gamma = %v; ME violations: %v\n",
		nonConvex, hasConvexityViolation(me.Y))
	return series, nonConvex
}

// hasConvexityViolation checks midpoint convexity on a uniformly sampled
// curve.
func hasConvexityViolation(y []float64) bool {
	for i := 1; i+1 < len(y); i++ {
		if y[i] > (y[i-1]+y[i+1])/2+1e-9 {
			return true
		}
	}
	return false
}

// Fig1bPoint is one sample of the approximation-error study.
type Fig1bPoint struct {
	Param        float64
	LSE, WA, ME  float64 // mean |approx - 200| over the random nets
	MEPlusOffset float64 // ME with the paper's +t reporting offset
	SamplesPerPt int
}

// Fig1b regenerates the approximation-error study of Fig. 1(b): 4-pin nets
// with fixed span dx = 200 (ends pinned, two interior pins uniform), 3000
// samples per smoothing-parameter value, mean absolute error of LSE, WA and
// the Moreau envelope against the true span.
func Fig1b(w io.Writer, samples int, seed int64) []Fig1bPoint {
	if samples <= 0 {
		samples = 3000
	}
	rng := rand.New(rand.NewSource(seed))
	const span = 200.0
	params := []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000}
	nets := make([][]float64, samples)
	for i := range nets {
		nets[i] = []float64{0, span, rng.Float64() * span, rng.Float64() * span}
	}
	var pts []Fig1bPoint
	for _, p := range params {
		var eLSE, eWA, eME, eMEo float64
		for _, x := range nets {
			eLSE += math.Abs(wirelength.NetLSE(x, p, nil) - span)
			eWA += math.Abs(wirelength.NetWA(x, p, nil) - span)
			me := wirelength.NetMoreau(x, p, nil) // envelope + t
			eME += math.Abs((me - p) - span)      // raw envelope error
			eMEo += math.Abs(me - span)
		}
		n := float64(samples)
		pts = append(pts, Fig1bPoint{
			Param: p, LSE: eLSE / n, WA: eWA / n, ME: eME / n,
			MEPlusOffset: eMEo / n, SamplesPerPt: samples,
		})
	}
	series := Fig1bSeries(pts)
	fmt.Fprint(w, metrics.RenderSeries(
		fmt.Sprintf("Fig. 1(b)  Mean approximation error, 4-pin nets, dx=200, %d samples per point", samples),
		"param", "mean_abs_err", series))
	return pts
}

// Fig1bSeries converts the approximation-error points into plottable
// series (LSE, WA, raw envelope, and the paper's ME+t model).
func Fig1bSeries(pts []Fig1bPoint) []metrics.Series {
	series := []metrics.Series{{Name: "LSE"}, {Name: "WA"}, {Name: "ME"}, {Name: "ME+t"}}
	for _, pt := range pts {
		series[0].X = append(series[0].X, pt.Param)
		series[0].Y = append(series[0].Y, pt.LSE)
		series[1].X = append(series[1].X, pt.Param)
		series[1].Y = append(series[1].Y, pt.WA)
		series[2].X = append(series[2].X, pt.Param)
		series[2].Y = append(series[2].Y, pt.ME)
		series[3].X = append(series[3].X, pt.Param)
		series[3].Y = append(series[3].Y, pt.MEPlusOffset)
	}
	return series
}

// FigureBlock is one labelled sub-figure (Fig. 3 has two).
type FigureBlock struct {
	Label  string
	Series []metrics.Series
}

// Fig3 regenerates the wirelength-vs-overflow trajectories of Fig. 3 for a
// newblue1-like case (a) and an ispd19_test10-like case (b), comparing WA
// and the Moreau model during global placement.
func Fig3(w io.Writer, o Options) ([]FigureBlock, error) {
	o = o.withDefaults()
	cases := []struct {
		label string
		spec  synth.Spec
	}{
		{"Fig3a-newblue1-like", synth.SpecFromContest(synth.ISPD2006[1], o.Scale2006)},
		{"Fig3b-ispd19_test10-like", synth.SpecFromContest(synth.ISPD2019[9], o.Scale2019)},
	}
	var blocks []FigureBlock
	for _, c := range cases {
		d, err := synth.Generate(c.spec)
		if err != nil {
			return nil, err
		}
		var series []metrics.Series
		for _, model := range []string{"WA", "ME"} {
			cfg := o.flowConfig(model)
			cfg.GP.RecordEvery = 5
			cfg.SkipDetailed = true
			res, err := core.RunFlowContext(o.ctx(), d.Clone(), cfg)
			if err != nil {
				return nil, err
			}
			s := metrics.Series{Name: model}
			for _, p := range res.Trajectory {
				s.X = append(s.X, p.Overflow)
				s.Y = append(s.Y, p.HPWL)
			}
			series = append(series, s)
			o.progressf("  %s %s: GPWL=%.4g overflow=%.3f\n", c.label, model, res.GPWL, res.Overflow)
		}
		fmt.Fprint(w, metrics.RenderSeries(
			c.label+"  HPWL vs density overflow during global placement",
			"overflow", "hpwl", series))
		fmt.Fprintln(w)
		blocks = append(blocks, FigureBlock{Label: c.label, Series: series})
	}
	return blocks, nil
}

// StabilityStudy prints the Section II-D(1) numerical-stability table: the
// naive exponential kernels overflow for small gamma at realistic spreads
// while the stabilized kernels and the Moreau envelope stay finite.
func StabilityStudy(w io.Writer) {
	x := []float64{0, 350, 700, 1000}
	fmt.Fprintln(w, "Numerical stability at spread dx=1000 (finite = ok, NaN/Inf = overflow)")
	fmt.Fprintf(w, "%-10s %-14s %-14s %-14s %-14s %-14s\n", "gamma", "LSE(naive)", "WA(naive)", "LSE", "WA", "ME")
	show := func(v float64) string {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "OVERFLOW"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, g := range []float64{100, 10, 1, 0.1} {
		fmt.Fprintf(w, "%-10g %-14s %-14s %-14s %-14s %-14s\n", g,
			show(wirelength.NetLSENaive(x, g, nil)),
			show(wirelength.NetWANaive(x, g, nil)),
			show(wirelength.NetLSE(x, g, nil)),
			show(wirelength.NetWA(x, g, nil)),
			show(wirelength.NetMoreau(x, g, nil)))
	}
}
