package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/synth"
)

// SeedStats summarizes DPWL across seeds for one model.
type SeedStats struct {
	Model               string
	Mean, Std           float64
	Min, Max            float64
	PerSeed             []float64
	MeanImprovementVsWA float64 // filled for non-WA models
}

// SeedStudy quantifies run-to-run noise: it places the newblue1-like design
// with WA and ME across several seeds and reports mean/std DPWL per model
// plus ME's mean improvement. The paper reports single-seed numbers; this
// study shows whether the reproduction's model gaps exceed seed noise.
func SeedStudy(w io.Writer, o Options, seeds []int64) ([]SeedStats, error) {
	o = o.withDefaults()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	spec := synth.SpecFromContest(synth.ISPD2006[1], o.Scale2006)
	d, err := synth.Generate(spec)
	if err != nil {
		return nil, err
	}
	models := []string{"WA", "ME"}
	results := map[string][]float64{}
	for _, model := range models {
		for _, seed := range seeds {
			cfg := o.flowConfig(model)
			cfg.GP.Seed = seed
			res, err := core.RunFlowContext(o.ctx(), d.Clone(), cfg)
			if err != nil {
				return nil, fmt.Errorf("seed study %s seed %d: %w", model, seed, err)
			}
			results[model] = append(results[model], res.DPWL)
			o.progressf("  seed study %-3s seed=%-3d DPWL=%.5g\n", model, seed, res.DPWL)
		}
	}
	var out []SeedStats
	var waMean float64
	for _, model := range models {
		vals := results[model]
		s := SeedStats{Model: model, PerSeed: vals, Min: math.Inf(1), Max: math.Inf(-1)}
		for _, v := range vals {
			s.Mean += v
			s.Min = math.Min(s.Min, v)
			s.Max = math.Max(s.Max, v)
		}
		s.Mean /= float64(len(vals))
		for _, v := range vals {
			s.Std += (v - s.Mean) * (v - s.Mean)
		}
		s.Std = math.Sqrt(s.Std / float64(len(vals)))
		if model == "WA" {
			waMean = s.Mean
		} else if waMean > 0 {
			s.MeanImprovementVsWA = (waMean - s.Mean) / waMean
		}
		out = append(out, s)
	}
	fmt.Fprintf(w, "Seed study on %s (%d seeds)\n", spec.Name, len(seeds))
	fmt.Fprintf(w, "%-6s %-12s %-10s %-12s %-12s %s\n", "model", "meanDPWL", "std", "min", "max", "improvement vs WA")
	for _, s := range out {
		imp := ""
		if s.Model != "WA" {
			imp = fmt.Sprintf("%+.2f%%", 100*s.MeanImprovementVsWA)
		}
		fmt.Fprintf(w, "%-6s %-12.5g %-10.3g %-12.5g %-12.5g %s\n", s.Model, s.Mean, s.Std, s.Min, s.Max, imp)
	}
	return out, nil
}
