// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic contest suites: Table I (benchmark
// statistics), Tables II/III (LGWL/DPWL/runtime comparisons across
// wirelength models), Fig. 1(a) (WA non-convexity), Fig. 1(b) (approximation
// error vs smoothing parameter), Fig. 3 (HPWL vs density overflow during
// global placement), plus the Section II-D numerical-stability study.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
)

// Options tunes experiment scale and effort so the same harness serves both
// quick smoke runs and the full reproduction.
type Options struct {
	// Scale2006, Scale2019 shrink the contest statistics; defaults are
	// synth.Scale2006 and synth.Scale2019.
	Scale2006, Scale2019 float64
	// MaxIters caps global placement iterations (default 2500; flows
	// normally stop at StopOverflow well before the cap — the Moreau
	// model needs ~20-50% more iterations than WA to reach the same
	// overflow, so a tight cap would compare models at unequal
	// convergence).
	MaxIters int
	// StopOverflow is the global placement stopping overflow (default 0.07).
	StopOverflow float64
	// Workers bounds concurrent designs (default: NumCPU/2, at least 1).
	// Models within one design always run sequentially so their runtime
	// ratio stays meaningful.
	Workers int
	// PlaceWorkers sizes each placement's shared worker pool (wirelength
	// model + density pipeline); 0 leaves runs serial. Keep it at 1 when
	// comparing per-model runtimes with Workers > 1, or the pools of
	// concurrent designs will contend.
	PlaceWorkers int
	// Progress, when non-nil, receives one line per completed flow.
	Progress io.Writer
	// Ctx, when non-nil, cancels in-flight flows (checked every global
	// placement iteration); a cancelled experiment returns ctx.Err().
	Ctx context.Context
}

// ctx returns the run context, defaulting to context.Background().
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Scale2006 <= 0 {
		o.Scale2006 = synth.Scale2006
	}
	if o.Scale2019 <= 0 {
		o.Scale2019 = synth.Scale2019
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 2500
	}
	if o.StopOverflow <= 0 {
		o.StopOverflow = 0.07
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU() / 2
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	return o
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format, args...)
	}
}

// flowConfig builds the standard experiment flow for a model.
func (o Options) flowConfig(modelName string) core.FlowConfig {
	cfg := core.DefaultFlowConfig(modelName)
	cfg.GP = placer.Config{} // filled by core from modelName
	cfg.GP.MaxIters = o.MaxIters
	cfg.GP.StopOverflow = o.StopOverflow
	cfg.GP.Workers = o.PlaceWorkers
	return cfg
}

// RefTetris is the label of the reference-flow column substituting the
// NTUPlace3 binary the paper lists for context (see DESIGN.md): the WA
// model with the greedy Tetris legalizer and no detailed placement.
const RefTetris = "REF_T"

// runModelOnDesign executes one flow; design is cloned so callers can reuse
// the input.
func runModelOnDesign(d *netlist.Design, model string, o Options) (*core.FlowResult, error) {
	dd := d.Clone()
	var cfg core.FlowConfig
	if model == RefTetris {
		cfg = o.flowConfig("WA")
		cfg.UseTetris = true
		cfg.SkipDetailed = true
	} else {
		cfg = o.flowConfig(model)
	}
	res, err := core.RunFlowContext(o.ctx(), dd, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", model, d.Name, err)
	}
	res.Model = model // keep the REF_T label
	return res, nil
}

// RunSuite generates every design of the given specs and runs all models on
// each, filling a metrics table (normalized to "ME", like the paper).
func RunSuite(title string, specs []synth.Spec, models []string, o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	tbl := metrics.NewTable(title, models, "ME")
	type job struct {
		idx  int
		spec synth.Spec
	}
	type outcome struct {
		idx     int
		design  string
		results map[string]*core.FlowResult
		err     error
	}
	jobs := make(chan job)
	outs := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				d, err := synth.Generate(j.spec)
				if err != nil {
					outs <- outcome{idx: j.idx, err: err}
					continue
				}
				results := map[string]*core.FlowResult{}
				for _, m := range models {
					res, err := runModelOnDesign(d, m, o)
					if err != nil {
						outs <- outcome{idx: j.idx, err: err}
						results = nil
						break
					}
					results[m] = res
					o.progressf("  %-14s %-9s LGWL=%.4g DPWL=%.4g RT=%.1fs overflow=%.3f\n",
						j.spec.Name, m, res.LGWL, res.DPWL, res.TotalSeconds, res.Overflow)
				}
				if results != nil {
					outs <- outcome{idx: j.idx, design: j.spec.Name, results: results}
				}
			}
		}()
	}
	go func() {
		for i, s := range specs {
			jobs <- job{idx: i, spec: s}
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	collected := make([]outcome, 0, len(specs))
	for out := range outs {
		if out.err != nil {
			// Drain remaining outcomes before returning.
			for range outs {
			}
			return nil, out.err
		}
		collected = append(collected, out)
	}
	// Deterministic row order regardless of completion order.
	for i := range specs {
		for _, out := range collected {
			if out.idx != i {
				continue
			}
			for _, m := range models {
				r := out.results[m]
				tbl.Set(out.design, m, metrics.Cell{LGWL: r.LGWL, DPWL: r.DPWL, RT: r.TotalSeconds})
			}
		}
	}
	return tbl, nil
}
