package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

// Table1 prints the benchmark statistics table: the paper's published
// contest numbers next to the generated synthetic mirrors at the configured
// scale.
func Table1(w io.Writer, o Options) error {
	o = o.withDefaults()
	fmt.Fprintln(w, "TABLE I  Benchmark statistics: contest (paper) vs synthetic mirror (generated)")
	fmt.Fprintf(w, "%-15s %10s %8s %9s %10s | %10s %8s %9s %10s %7s\n",
		"Benchmark", "#Movable", "#Fixed", "#Nets", "#Pins",
		"gen.Mov", "gen.Fix", "gen.Nets", "gen.Pins", "util")
	print := func(suite []synth.ContestDesign, scale float64) error {
		for _, cd := range suite {
			spec := synth.SpecFromContest(cd, scale)
			d, err := synth.Generate(spec)
			if err != nil {
				return err
			}
			s := d.ComputeStats()
			fmt.Fprintf(w, "%-15s %10d %8d %9d %10d | %10d %8d %9d %10d %7.2f\n",
				cd.Name, cd.Movable, cd.Fixed, cd.Nets, cd.Pins,
				s.NumMovable, s.NumFixed, s.NumNets, s.NumPins, s.Utilization)
		}
		return nil
	}
	if err := print(synth.ISPD2006, o.Scale2006); err != nil {
		return err
	}
	if err := print(synth.ISPD2019, o.Scale2019); err != nil {
		return err
	}
	fmt.Fprintf(w, "(scales: ISPD2006 x%.4g, ISPD2019 x%.4g — see DESIGN.md)\n", o.Scale2006, o.Scale2019)
	return nil
}

// Table2 regenerates the ISPD2006 comparison (Table II): the reference
// Tetris flow (NTUPlace3-substitute column), BiG(CHKS), LSE, WA, and the
// Moreau-envelope model, each through GP + legalization + detailed
// placement, with the Avg. Ratio row normalized to ours.
func Table2(w io.Writer, o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	models := append([]string{RefTetris}, wirelength.AllModelNames()...)
	tbl, err := RunSuite(
		"TABLE II  HPWL and runtime on the ISPD2006-like suite (REF_T = Tetris reference flow, substitute for the NTUPlace3 column)",
		synth.Suite2006WithScale(o.Scale2006), models, o)
	if err != nil {
		return nil, err
	}
	fmt.Fprint(w, tbl.Render())
	return tbl, nil
}

// Table3 regenerates the ISPD2019 comparison (Table III): BiG(CHKS), LSE,
// WA, and ours.
func Table3(w io.Writer, o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	tbl, err := RunSuite(
		"TABLE III  HPWL and runtime on the ISPD2019-like suite",
		synth.Suite2019WithScale(o.Scale2019), wirelength.AllModelNames(), o)
	if err != nil {
		return nil, err
	}
	fmt.Fprint(w, tbl.Render())
	return tbl, nil
}
