package detailed

import (
	"sort"
)

// ismPass runs independent-set matching (the third ABCDPlace move): batches
// of equal-width cells that share no nets are collected, the HPWL cost of
// every cell-to-slot assignment within a batch is evaluated, and the optimal
// permutation is applied via the Hungarian algorithm. Because the batch is
// net-disjoint, per-cell deltas are additive, so the matching is exact.
// Returns the number of batches whose assignment changed.
func (st *state) ismPass(batchSize int) int {
	if batchSize < 2 {
		batchSize = 8
	}
	d := st.d
	// Group movable std cells by width, ordered spatially so batches are
	// local (swapping far-apart cells rarely helps and slows convergence).
	byWidth := map[float64][]int32{}
	for _, ci := range d.MovableIndices() {
		c := int32(ci)
		if _, ok := st.rowOf[c]; !ok {
			continue
		}
		byWidth[d.Cells[ci].W] = append(byWidth[d.Cells[ci].W], c)
	}
	widths := make([]float64, 0, len(byWidth))
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Float64s(widths)

	improved := 0
	for _, w := range widths {
		cells := byWidth[w]
		sort.Slice(cells, func(a, b int) bool {
			ca, cb := cells[a], cells[b]
			if d.Y[ca] != d.Y[cb] {
				return d.Y[ca] < d.Y[cb]
			}
			return d.X[ca] < d.X[cb]
		})
		// Greedy net-disjoint batching over the spatial order.
		batch := make([]int32, 0, batchSize)
		nets := map[int32]bool{}
		flush := func() {
			if len(batch) >= 2 && st.matchBatch(batch) {
				improved++
			}
			batch = batch[:0]
			for k := range nets {
				delete(nets, k)
			}
		}
		for _, c := range cells {
			conflict := false
			for _, pi := range d.PinsOfCell(int(c)) {
				if nets[d.Pins[pi].Net] {
					conflict = true
					break
				}
			}
			if conflict {
				flush()
			}
			batch = append(batch, c)
			for _, pi := range d.PinsOfCell(int(c)) {
				nets[d.Pins[pi].Net] = true
			}
			if len(batch) == batchSize {
				flush()
			}
		}
		flush()
	}
	return improved
}

// matchBatch assigns the batch's cells optimally to the batch's slots and
// applies the permutation when it strictly improves HPWL. Reports whether
// anything moved.
func (st *state) matchBatch(batch []int32) bool {
	d := st.d
	n := len(batch)
	// Slot j is cell batch[j]'s current position.
	slotX := make([]float64, n)
	slotY := make([]float64, n)
	for j, c := range batch {
		slotX[j] = d.X[c]
		slotY[j] = d.Y[c]
	}
	cost := make([][]float64, n)
	for i, c := range batch {
		cost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				cost[i][j] = 0
				continue
			}
			// Net-disjointness makes single-cell deltas additive.
			cost[i][j] = st.hpwlDelta([]int32{c}, []float64{slotX[j]}, []float64{slotY[j]})
		}
	}
	perm := hungarian(cost)
	total := 0.0
	identity := true
	for i, j := range perm {
		total += cost[i][j]
		if i != j {
			identity = false
		}
	}
	if identity || total >= -1e-12 {
		return false
	}
	// Apply: each cell i takes slot perm[i]. Swap row bookkeeping by
	// rebuilding the touched slots (all slots belong to batch cells, and
	// widths are equal, so positions exchange cleanly).
	type loc struct {
		row, slot int
	}
	slotLoc := make([]loc, n)
	for j, c := range batch {
		slotLoc[j] = loc{st.rowOf[c], st.slotOf[c]}
	}
	for i, c := range batch {
		j := perm[i]
		d.X[c] = slotX[j]
		d.Y[c] = slotY[j]
		l := slotLoc[j]
		st.rows[l.row].items[l.slot].cell = c
		st.rowOf[c] = l.row
		st.slotOf[c] = l.slot
	}
	return true
}
