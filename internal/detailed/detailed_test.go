package detailed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

// legalDesign returns a small design after GP + Abacus legalization.
func legalDesign(t testing.TB, cells, macros int, seed int64) *netlist.Design {
	t.Helper()
	spec := synth.Spec{
		Name:           "dp-test",
		NumMovable:     cells,
		NumMacros:      macros,
		NumPads:        8,
		NumFixedBlocks: 2,
		NumNets:        cells + cells/8,
		AvgDegree:      3.8,
		Utilization:    0.6,
		TargetDensity:  1.0,
		Seed:           seed,
	}
	d, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := wirelength.ByName("WA")
	cfg := placer.DefaultConfig(m)
	cfg.MaxIters = 250
	cfg.StopOverflow = 0.18
	if _, err := placer.Place(d, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := legalize.Abacus(d, legalize.Options{}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetailedImprovesHPWLAndStaysLegal(t *testing.T) {
	d := legalDesign(t, 400, 0, 3)
	res, err := Place(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL > res.StartHPWL {
		t.Errorf("detailed placement worsened HPWL: %g -> %g", res.StartHPWL, res.HPWL)
	}
	if res.Moves+res.Swaps+res.Reorders == 0 {
		t.Error("no moves accepted at all; suspicious")
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("detailed placement output illegal: %v", err)
	}
}

func TestDetailedWithMacros(t *testing.T) {
	d := legalDesign(t, 300, 2, 4)
	if _, err := Place(d, Options{Passes: 2}); err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("illegal with macros: %v", err)
	}
}

func TestDetailedRequiresLegalInput(t *testing.T) {
	d := legalDesign(t, 100, 0, 5)
	mov := d.MovableIndices()
	d.Y[mov[0]] += 0.37 // knock a cell off its row
	if _, err := Place(d, Options{}); err == nil {
		t.Error("off-row input accepted")
	}
	d2 := legalDesign(t, 100, 0, 6)
	d2.Rows = nil
	if _, err := Place(d2, Options{}); err == nil {
		t.Error("rowless input accepted")
	}
}

func TestDetailedDeterministic(t *testing.T) {
	d1 := legalDesign(t, 200, 0, 7)
	d2 := d1.Clone()
	r1, err := Place(d1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.HPWL != r2.HPWL {
		t.Errorf("nondeterministic: %g vs %g", r1.HPWL, r2.HPWL)
	}
	for i := range d1.X {
		if d1.X[i] != d2.X[i] || d1.Y[i] != d2.Y[i] {
			t.Fatalf("positions differ at %d", i)
		}
	}
}

func TestDetailedIdempotentAfterConvergence(t *testing.T) {
	d := legalDesign(t, 200, 0, 8)
	if _, err := Place(d, Options{Passes: 6}); err != nil {
		t.Fatal(err)
	}
	res2, err := Place(d, Options{Passes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A second run on converged output should find little or nothing.
	if res2.HPWL > res2.StartHPWL {
		t.Errorf("second run worsened HPWL: %g -> %g", res2.StartHPWL, res2.HPWL)
	}
}

func TestPermutations(t *testing.T) {
	p3 := permutations(3)
	if len(p3) != 6 {
		t.Fatalf("3! = %d", len(p3))
	}
	// First must be the identity (skipped by the reorder pass).
	id := p3[0]
	for i, v := range id {
		if v != i {
			t.Fatalf("permutation 0 is %v, want identity", id)
		}
	}
	seen := map[[3]int]bool{}
	for _, p := range p3 {
		var k [3]int
		copy(k[:], p)
		if seen[k] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[k] = true
	}
}

func TestWindowSizeBounds(t *testing.T) {
	d := legalDesign(t, 150, 0, 9)
	// Window of 5 is the cap; 99 must be clamped, not explode.
	if _, err := Place(d, Options{WindowSize: 99, Passes: 1}); err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatal(err)
	}
}

func TestHpwlDeltaMatchesRecompute(t *testing.T) {
	d := legalDesign(t, 150, 0, 10)
	st, err := buildState(d)
	if err != nil {
		t.Fatal(err)
	}
	mov := d.MovableIndices()
	c := int32(mov[3])
	before := wirelength.TotalHPWL(d)
	newX, newY := d.X[c]+2.5, d.Y[c]
	delta := st.hpwlDelta([]int32{c}, []float64{newX}, []float64{newY})
	oldX := d.X[c]
	d.X[c] = newX
	after := wirelength.TotalHPWL(d)
	d.X[c] = oldX
	if diff := (after - before) - delta; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("hpwlDelta %g != recompute %g", delta, after-before)
	}
}

func TestHungarianKnownMatrices(t *testing.T) {
	// Classic 3x3: optimal assignment (0->1, 1->0, 2->2) with cost 5.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	perm := hungarian(cost)
	total := 0.0
	for i, j := range perm {
		total += cost[i][j]
	}
	if total != 5 {
		t.Errorf("assignment cost = %g, want 5 (perm %v)", total, perm)
	}
	// Permutation must be a bijection.
	seen := map[int]bool{}
	for _, j := range perm {
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
	if len(hungarian(nil)) != 0 {
		t.Error("empty matrix should yield empty assignment")
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.NormFloat64() * 10
			}
		}
		perm := hungarian(cost)
		got := 0.0
		for i, j := range perm {
			got += cost[i][j]
		}
		// Brute force over all permutations.
		best := math.Inf(1)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		var rec func(k int, cur float64, used []bool)
		used := make([]bool, n)
		rec = func(k int, cur float64, used []bool) {
			if k == n {
				if cur < best {
					best = cur
				}
				return
			}
			for j := 0; j < n; j++ {
				if !used[j] {
					used[j] = true
					rec(k+1, cur+cost[k][j], used)
					used[j] = false
				}
			}
		}
		rec(0, 0, used)
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("hungarian cost %g != brute force %g (n=%d)", got, best, n)
		}
	}
}

func TestDetailedWithISM(t *testing.T) {
	d := legalDesign(t, 400, 0, 13)
	res, err := Place(d, Options{UseISM: true, Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL > res.StartHPWL {
		t.Errorf("ISM run worsened HPWL: %g -> %g", res.StartHPWL, res.HPWL)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("ISM output illegal: %v", err)
	}
}

func TestISMBeatsOrMatchesSwapOnly(t *testing.T) {
	d1 := legalDesign(t, 500, 0, 14)
	d2 := d1.Clone()
	plain, err := Place(d1, Options{Passes: 3})
	if err != nil {
		t.Fatal(err)
	}
	ism, err := Place(d2, Options{Passes: 3, UseISM: true})
	if err != nil {
		t.Fatal(err)
	}
	// ISM adds an exact move; it should never end up meaningfully worse.
	if ism.HPWL > plain.HPWL*1.001 {
		t.Errorf("ISM HPWL %g worse than swap-only %g", ism.HPWL, plain.HPWL)
	}
}

func BenchmarkDetailedPasses(b *testing.B) {
	base := legalDesign(b, 800, 0, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := Place(d, Options{Passes: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetailedISM(b *testing.B) {
	base := legalDesign(b, 800, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := Place(d, Options{Passes: 2, UseISM: true}); err != nil {
			b.Fatal(err)
		}
	}
}
