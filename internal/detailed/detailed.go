// Package detailed implements legality-preserving detailed placement in the
// style of ABCDPlace's CPU passes: global swap (move each cell toward the
// median of its nets, swapping with an equal-width cell or sliding into
// whitespace when profitable) and local reordering (optimal permutation of
// small windows of consecutive cells in a row). Both passes strictly
// decrease HPWL or leave the placement unchanged.
package detailed

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/wirelength"
)

// Options configures the detailed placer.
type Options struct {
	// Passes is the number of (swap + reorder) rounds (default 3).
	Passes int
	// WindowSize is the reordering window (default 3, max 5).
	WindowSize int
	// SearchRows bounds the vertical swap search (default 3 rows each way).
	SearchRows int
	// UseISM additionally runs independent-set matching each pass (the
	// third ABCDPlace move): exact Hungarian assignment within batches of
	// net-disjoint equal-width cells.
	UseISM bool
	// ISMBatch is the matching batch size (default 8, exact assignment is
	// O(batch^3)).
	ISMBatch int
}

// Result summarizes a detailed placement run.
type Result struct {
	// HPWL is the final exact wirelength (DPWL in the paper's tables).
	HPWL float64
	// StartHPWL is the wirelength of the input placement.
	StartHPWL float64
	// Moves and Swaps count accepted whitespace moves and cell swaps.
	Moves, Swaps int
	// Reorders counts accepted window permutations.
	Reorders int
	// ISMBatches counts batches improved by independent-set matching.
	ISMBatches int
}

// entry is one slot in a row: a standard cell or a blockage interval.
type entry struct {
	x, w float64
	cell int32 // -1 for obstacles
}

type rowState struct {
	y      float64
	xl, xh float64
	items  []entry // sorted by x
}

type state struct {
	d       *netlist.Design
	rows    []rowState
	rowOf   map[int32]int // cell -> row index
	slotOf  map[int32]int // cell -> index into rows[rowOf].items (maintained per pass)
	nets    []int32       // scratch: affected nets
	overpos map[int32][2]float64
}

// Place runs detailed placement on a legal design, preserving legality.
func Place(d *netlist.Design, opt Options) (*Result, error) {
	if opt.Passes <= 0 {
		opt.Passes = 3
	}
	if opt.WindowSize <= 0 {
		opt.WindowSize = 3
	}
	if opt.WindowSize > 5 {
		opt.WindowSize = 5
	}
	if opt.SearchRows <= 0 {
		opt.SearchRows = 3
	}
	st, err := buildState(d)
	if err != nil {
		return nil, err
	}
	res := &Result{StartHPWL: wirelength.TotalHPWL(d)}
	for p := 0; p < opt.Passes; p++ {
		moves, swaps := st.globalSwapPass(opt.SearchRows)
		reorders := st.reorderPass(opt.WindowSize)
		isms := 0
		if opt.UseISM {
			isms = st.ismPass(opt.ISMBatch)
		}
		res.Moves += moves
		res.Swaps += swaps
		res.Reorders += reorders
		res.ISMBatches += isms
		if moves+swaps+reorders+isms == 0 {
			break
		}
	}
	res.HPWL = wirelength.TotalHPWL(d)
	return res, nil
}

// buildState indexes the legal placement into per-row occupancy lists.
func buildState(d *netlist.Design) (*state, error) {
	if len(d.Rows) == 0 {
		return nil, fmt.Errorf("detailed: design has no rows")
	}
	rows := append([]netlist.Row(nil), d.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Y < rows[j].Y })
	st := &state{
		d:       d,
		rowOf:   make(map[int32]int),
		slotOf:  make(map[int32]int),
		overpos: make(map[int32][2]float64, 4),
	}
	st.rows = make([]rowState, len(rows))
	rowIdx := make(map[float64]int, len(rows))
	for i, r := range rows {
		st.rows[i] = rowState{y: r.Y, xl: r.XL, xh: r.XH}
		rowIdx[r.Y] = i
	}
	findRow := func(y float64) (int, bool) {
		if i, ok := rowIdx[y]; ok {
			return i, true
		}
		for i, r := range st.rows {
			if math.Abs(r.y-y) < 1e-6 {
				return i, true
			}
		}
		return 0, false
	}

	// Obstacles: fixed cells and movable macros.
	for i, c := range d.Cells {
		isObstacle := (c.Kind == netlist.Fixed && c.Area() > 0) || c.Kind == netlist.MovableMacro
		if !isObstacle {
			continue
		}
		r := d.CellRect(i)
		for ri := range st.rows {
			rowTop := st.rows[ri].y + rows[ri].Height
			if r.YL < rowTop && r.YH > st.rows[ri].y {
				st.rows[ri].items = append(st.rows[ri].items, entry{x: r.XL, w: r.W(), cell: -1})
			}
		}
	}
	for _, c := range d.MovableIndices() {
		if d.Cells[c].Kind == netlist.MovableMacro {
			continue
		}
		ri, ok := findRow(d.Y[c])
		if !ok {
			return nil, fmt.Errorf("detailed: cell %d not on a row (y=%g); legalize first", c, d.Y[c])
		}
		st.rows[ri].items = append(st.rows[ri].items, entry{x: d.X[c], w: d.Cells[c].W, cell: int32(c)})
		st.rowOf[int32(c)] = ri
	}
	for ri := range st.rows {
		items := st.rows[ri].items
		sort.Slice(items, func(a, b int) bool { return items[a].x < items[b].x })
		// Merge overlapping obstacle intervals (fixed blocks may overlap
		// each other legally); then sanity-check movable cells.
		merged := items[:0]
		for _, e := range items {
			if n := len(merged); n > 0 && e.cell < 0 && merged[n-1].cell < 0 &&
				merged[n-1].x+merged[n-1].w > e.x {
				if end := e.x + e.w; end > merged[n-1].x+merged[n-1].w {
					merged[n-1].w = end - merged[n-1].x
				}
				continue
			}
			merged = append(merged, e)
		}
		st.rows[ri].items = merged
		items = merged
		for si, e := range items {
			if e.cell >= 0 {
				st.slotOf[e.cell] = si
			}
		}
		for si := 1; si < len(items); si++ {
			if items[si-1].x+items[si-1].w > items[si].x+1e-6 {
				return nil, fmt.Errorf("detailed: input row y=%g has overlap at slot %d; legalize first", st.rows[ri].y, si)
			}
		}
	}
	return st, nil
}

// hpwlDelta returns the change in total HPWL if the cells in moves were
// repositioned (negative is an improvement).
func (st *state) hpwlDelta(cells []int32, newX, newY []float64) float64 {
	d := st.d
	for k := range st.overpos {
		delete(st.overpos, k)
	}
	st.nets = st.nets[:0]
	seen := map[int32]bool{}
	for i, c := range cells {
		st.overpos[c] = [2]float64{newX[i], newY[i]}
		for _, pi := range d.PinsOfCell(int(c)) {
			e := d.Pins[pi].Net
			if !seen[e] {
				seen[e] = true
				st.nets = append(st.nets, e)
			}
		}
	}
	delta := 0.0
	for _, e := range st.nets {
		pins := d.NetPins(int(e))
		var oxl, oxh, oyl, oyh float64
		var nxl, nxh, nyl, nyh float64
		for i, p := range pins {
			ox := d.X[p.Cell] + p.Dx
			oy := d.Y[p.Cell] + p.Dy
			nx, ny := ox, oy
			if np, ok := st.overpos[p.Cell]; ok {
				nx = np[0] + p.Dx
				ny = np[1] + p.Dy
			}
			if i == 0 {
				oxl, oxh, oyl, oyh = ox, ox, oy, oy
				nxl, nxh, nyl, nyh = nx, nx, ny, ny
				continue
			}
			oxl = math.Min(oxl, ox)
			oxh = math.Max(oxh, ox)
			oyl = math.Min(oyl, oy)
			oyh = math.Max(oyh, oy)
			nxl = math.Min(nxl, nx)
			nxh = math.Max(nxh, nx)
			nyl = math.Min(nyl, ny)
			nyh = math.Max(nyh, ny)
		}
		w := d.Nets[e].Weight
		delta += w * ((nxh - nxl + nyh - nyl) - (oxh - oxl + oyh - oyl))
	}
	return delta
}

// optimalPoint returns the median-based optimal region center for cell c:
// the median of the other pins' coordinates across all its nets.
func (st *state) optimalPoint(c int32) (float64, float64) {
	d := st.d
	var xs, ys []float64
	for _, pi := range d.PinsOfCell(int(c)) {
		e := d.Pins[pi].Net
		for _, p := range d.NetPins(int(e)) {
			if p.Cell == c {
				continue
			}
			xs = append(xs, d.X[p.Cell]+p.Dx)
			ys = append(ys, d.Y[p.Cell]+p.Dy)
		}
	}
	if len(xs) == 0 {
		return d.X[c], d.Y[c]
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return xs[len(xs)/2], ys[len(ys)/2]
}
