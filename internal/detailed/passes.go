package detailed

import (
	"math"
	"sort"
)

// globalSwapPass tries, for every cell, a whitespace move or an equal-width
// swap near the median of its nets. Returns accepted (moves, swaps).
func (st *state) globalSwapPass(searchRows int) (moves, swaps int) {
	d := st.d
	for _, ci := range d.MovableIndices() {
		c := int32(ci)
		if _, ok := st.rowOf[c]; !ok {
			continue // macro
		}
		optX, optY := st.optimalPoint(c)
		curRow := st.rowOf[c]

		// Candidate rows around the optimal y.
		base := st.nearestRow(optY)
		bestDelta := -1e-12 // require strict improvement
		type action struct {
			kind    int // 0 = move, 1 = swap
			row     int
			slot    int // gap slot (move) or partner slot (swap)
			x       float64
			partner int32
		}
		var best *action
		w := d.Cells[c].W

		for off := -searchRows; off <= searchRows; off++ {
			ri := base + off
			if ri < 0 || ri >= len(st.rows) {
				continue
			}
			row := &st.rows[ri]
			// -- whitespace moves: gaps around the insertion point.
			lo, hi, gi := st.gapAround(ri, optX, w, c)
			if gi >= 0 {
				x := math.Max(lo, math.Min(optX, hi-w))
				delta := st.hpwlDelta([]int32{c}, []float64{x}, []float64{row.y})
				if delta < bestDelta {
					bestDelta = delta
					best = &action{kind: 0, row: ri, slot: gi, x: x}
				}
			}
			// -- equal-width swaps with nearby cells.
			si := sort.Search(len(row.items), func(i int) bool { return row.items[i].x >= optX })
			for probe := si - 2; probe <= si+2; probe++ {
				if probe < 0 || probe >= len(row.items) {
					continue
				}
				s := row.items[probe].cell
				if s < 0 || s == c {
					continue
				}
				if math.Abs(d.Cells[s].W-w) > 1e-9 {
					continue
				}
				if st.rowOf[s] == curRow && st.slotOf[s] == st.slotOf[c] {
					continue
				}
				delta := st.hpwlDelta(
					[]int32{c, s},
					[]float64{row.items[probe].x, d.X[c]},
					[]float64{row.y, d.Y[c]},
				)
				if delta < bestDelta {
					bestDelta = delta
					best = &action{kind: 1, row: ri, slot: probe, partner: s}
				}
			}
		}
		if best == nil {
			continue
		}
		if best.kind == 0 {
			st.applyMove(c, best.row, best.x)
			moves++
		} else {
			st.applySwap(c, best.partner)
			swaps++
		}
	}
	return moves, swaps
}

// nearestRow returns the index of the row whose bottom is closest to y.
func (st *state) nearestRow(y float64) int {
	lo, hi := 0, len(st.rows)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if st.rows[mid].y < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && math.Abs(st.rows[lo-1].y-y) < math.Abs(st.rows[lo].y-y) {
		return lo - 1
	}
	return lo
}

// gapBounds returns the free interval of gap g in the row (gap g sits
// between items[g-1] and items[g]; g ranges 0..len(items)). Slots occupied
// by `self` are treated as vacated, widening the gap.
func gapBounds(row *rowState, g int, self int32) (lo, hi float64) {
	items := row.items
	lo, hi = row.xl, row.xh
	// Walk left past self to the nearest real neighbor.
	for j := g - 1; j >= 0; j-- {
		if items[j].cell == self {
			continue
		}
		lo = items[j].x + items[j].w
		break
	}
	for j := g; j < len(items); j++ {
		if items[j].cell == self {
			continue
		}
		hi = items[j].x
		break
	}
	return lo, hi
}

// gapAround finds the free interval in row ri covering/nearest x that fits
// width w, ignoring cell self (it vacates its slot). Returns the gap bounds
// and the gap index, or gi = -1 when nothing fits nearby.
func (st *state) gapAround(ri int, x, w float64, self int32) (lo, hi float64, gi int) {
	row := &st.rows[ri]
	items := row.items
	si := sort.Search(len(items), func(i int) bool { return items[i].x >= x })
	bestGap := -1
	bestDist := math.Inf(1)
	gLo, gHi := si-1, si+1
	if gLo < 0 {
		gLo = 0
	}
	if gHi > len(items) {
		gHi = len(items)
	}
	for g := gLo; g <= gHi; g++ {
		lo, hi := gapBounds(row, g, self)
		if hi-lo < w-1e-9 {
			continue
		}
		dist := 0.0
		if x < lo {
			dist = lo - x
		} else if x > hi {
			dist = x - hi
		}
		if dist < bestDist {
			bestDist = dist
			bestGap = g
		}
	}
	if bestGap < 0 {
		return 0, 0, -1
	}
	lo, hi = gapBounds(row, bestGap, self)
	return lo, hi, bestGap
}

// applyMove relocates cell c into row ri at position x, updating indices.
func (st *state) applyMove(c int32, ri int, x float64) {
	d := st.d
	// Remove from the old row.
	oldRow := st.rowOf[c]
	oldSlot := st.slotOf[c]
	items := st.rows[oldRow].items
	st.rows[oldRow].items = append(items[:oldSlot], items[oldSlot+1:]...)
	for si := oldSlot; si < len(st.rows[oldRow].items); si++ {
		if e := st.rows[oldRow].items[si]; e.cell >= 0 {
			st.slotOf[e.cell] = si
		}
	}
	// Insert into the new row.
	d.X[c] = x
	d.Y[c] = st.rows[ri].y
	row := &st.rows[ri]
	pos := sort.Search(len(row.items), func(i int) bool { return row.items[i].x >= x })
	row.items = append(row.items, entry{})
	copy(row.items[pos+1:], row.items[pos:])
	row.items[pos] = entry{x: x, w: d.Cells[c].W, cell: c}
	for si := pos; si < len(row.items); si++ {
		if e := row.items[si]; e.cell >= 0 {
			st.slotOf[e.cell] = si
		}
	}
	st.rowOf[c] = ri
}

// applySwap exchanges the slots of equal-width cells c and s.
func (st *state) applySwap(c, s int32) {
	d := st.d
	rc, sc := st.rowOf[c], st.slotOf[c]
	rs, ss := st.rowOf[s], st.slotOf[s]
	d.X[c], d.X[s] = d.X[s], d.X[c]
	d.Y[c], d.Y[s] = d.Y[s], d.Y[c]
	st.rows[rc].items[sc].cell = s
	st.rows[rs].items[ss].cell = c
	st.rowOf[c], st.rowOf[s] = rs, rc
	st.slotOf[c], st.slotOf[s] = ss, sc
}

// reorderPass permutes windows of consecutive cells within each row,
// packing each permutation from the window's left edge; the best legal
// permutation by HPWL is kept. Returns accepted reorders.
func (st *state) reorderPass(window int) int {
	d := st.d
	accepted := 0
	cells := make([]int32, 0, window)
	xs := make([]float64, 0, window)
	ys := make([]float64, 0, window)
	for ri := range st.rows {
		row := &st.rows[ri]
		for start := 0; start < len(row.items); start++ {
			// Collect up to `window` consecutive movable cells.
			cells = cells[:0]
			end := start
			for end < len(row.items) && len(cells) < window {
				if row.items[end].cell < 0 {
					break
				}
				cells = append(cells, row.items[end].cell)
				end++
			}
			if len(cells) < 2 {
				continue
			}
			left := row.items[start].x
			limit := row.xh
			if end < len(row.items) {
				limit = row.items[end].x
			}
			bestPerm := -1
			bestDelta := -1e-12
			perms := permutations(len(cells))
			for pi, perm := range perms {
				if pi == 0 {
					continue // identity
				}
				// Pack the permuted cells from `left`.
				x := left
				xs = xs[:0]
				ys = ys[:0]
				ok := true
				for _, k := range perm {
					c := cells[k]
					xs = append(xs, x)
					ys = append(ys, row.y)
					x += d.Cells[c].W
				}
				if x > limit+1e-9 {
					ok = false
				}
				if !ok {
					continue
				}
				// Order cells to match move API (cells[perm[j]] -> xs[j]).
				ordered := make([]int32, len(perm))
				for j, k := range perm {
					ordered[j] = cells[k]
				}
				delta := st.hpwlDelta(ordered, append([]float64(nil), xs...), append([]float64(nil), ys...))
				if delta < bestDelta {
					bestDelta = delta
					bestPerm = pi
				}
			}
			if bestPerm < 0 {
				continue
			}
			perm := perms[bestPerm]
			x := left
			for j, k := range perm {
				c := cells[k]
				d.X[c] = x
				row.items[start+j] = entry{x: x, w: d.Cells[c].W, cell: c}
				st.slotOf[c] = start + j
				x += d.Cells[c].W
			}
			accepted++
		}
	}
	return accepted
}

// permutations returns all permutations of 0..n-1; permutation 0 is the
// identity. n is small (<= 5).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(cur, rest[i])
			var rem []int
			rem = append(rem, rest[:i]...)
			rem = append(rem, rest[i+1:]...)
			rec(next, rem)
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	rec(nil, ids)
	return out
}
