package wirelength

// GradHook, when non-nil, observes — and may deliberately corrupt — the
// gradient buffers of every whole-design WirelengthGrad call, after the
// model has filled them and before they reach the optimizer. Both the
// serial kernel path and the parallel reduction path call it, so it covers
// every named model. It is a build-tag-free fault-injection seam for the
// divergence-guard tests: production code pays one nil check per gradient
// evaluation and never sets it. Calls with a nil gradX (value-only
// evaluations) are not reported.
//
// The hook is read without synchronization from the placement goroutine;
// install it before a run starts and clear it after the run finishes.
var GradHook func(model string, gradX, gradY []float64)
