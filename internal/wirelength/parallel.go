package wirelength

import (
	"fmt"

	"repro/internal/moreau"
	"repro/internal/netlist"
	"repro/internal/parallel"
)

// parallelModel evaluates a kernel model with a pool of goroutines, one
// kernel instance (or Moreau batch evaluator), one lane scratch, and one
// gradient accumulator per worker, reduced after the barrier. Each worker
// runs the same SoA gather/kernel/scatter passes as the sequential
// evaluator over its own contiguous net range, so per-cell gradients are
// bit-identical to the sequential path up to the worker-order summation of
// the per-worker accumulators (workers own disjoint net ranges but cells
// are shared).
//
// A parallelModel is not safe for concurrent WirelengthGrad calls on the
// same value: the workers it spawns own its per-worker scratch (and
// parameters pass through struct fields so the steady state allocates
// nothing), but two overlapping top-level calls would share both. Create
// one model per concurrent placement run (ParallelByName is cheap).
type parallelModel struct {
	name    string
	kind    ParamKind
	workers int
	kernels []Kernel
	// batch, when non-nil, holds one Moreau batch evaluator per worker
	// (private sort scratch, shared atomic Stats) and selects the batch
	// path.
	batch []*moreau.Evaluator

	// Per-call scratch, reused across evaluations: totals holds one
	// partial sum per worker; gxs/gys hold per-worker gradient
	// accumulators, (re)sized only when the design's cell count changes;
	// lanes holds each worker's gather/scatter lanes.
	totals   []float64
	gxs, gys [][]float64
	lanes    []laneScratch

	// Prebuilt worker loop body and its per-call parameters: closures
	// built inside WirelengthGrad would escape to the heap on every call,
	// so the body is constructed once and reads these fields instead.
	d        *netlist.Design
	ln       *netlist.Lanes
	prm      float64
	needGrad bool
	fnEval   func(w, lo, hi int)
}

// Parallelize wraps a kernel-backed model (anything built by
// NewKernelModel or ByName) in a fixed-size worker pool. Moreau batch
// models get one batch evaluator per worker sharing the base model's Stats;
// other models call factory once per worker for private kernel scratch.
// workers <= 1 returns the model unchanged.
func Parallelize(m Model, workers int, factory func() Kernel) (Model, error) {
	if workers <= 1 {
		return m, nil
	}
	p := &parallelModel{
		name:    m.Name(),
		kind:    m.ParamKind(),
		workers: workers,
		totals:  make([]float64, workers),
		gxs:     make([][]float64, workers),
		gys:     make([][]float64, workers),
		lanes:   make([]laneScratch, workers),
	}
	if km, ok := m.(*kernelModel); ok && km.batch != nil {
		for w := 0; w < workers; w++ {
			ev := moreau.NewEvaluator(64)
			ev.Stats = km.batch.Stats
			p.batch = append(p.batch, ev)
		}
	} else {
		if factory == nil {
			return nil, fmt.Errorf("wirelength: Parallelize needs a kernel factory")
		}
		for w := 0; w < workers; w++ {
			p.kernels = append(p.kernels, factory())
		}
	}
	p.fnEval = func(w, lo, hi int) {
		s := &p.lanes[w]
		var gx, gy []float64
		if p.needGrad {
			gx, gy = p.gxs[w], p.gys[w]
			for i := range gx {
				gx[i] = 0
				gy[i] = 0
			}
		}
		if p.batch != nil {
			p.totals[w] = evalBatchRange(p.d, p.ln, s, p.batch[w], lo, hi, p.prm, gx, gy)
		} else {
			p.totals[w] = evalKernelRange(p.d, p.ln, s, p.kernels[w], lo, hi, p.prm, gx, gy)
		}
	}
	return p, nil
}

// ParallelByName builds a parallel version of a named model.
func ParallelByName(name string, workers int) (Model, error) {
	return ParallelByNameStats(name, workers, nil)
}

// ParallelByNameStats is ParallelByName with an optional Moreau branch
// counter shared across every worker's evaluator (see ByNameStats).
func ParallelByNameStats(name string, workers int, stats *moreau.Stats) (Model, error) {
	base, err := ByNameStats(name, stats)
	if err != nil {
		return nil, err
	}
	var factory func() Kernel
	switch name {
	case "LSE", "lse":
		factory = func() Kernel { return NetLSE }
	case "WA", "wa":
		factory = func() Kernel { return NetWA }
	case "BiG_CHKS", "big_chks", "BIG_CHKS", "big":
		factory = NewBiGKernel
	case "BiG_WA", "big_wa", "BIG_WA":
		factory = NewBiGWAKernel
	case "ME", "me", "moreau", "Moreau":
		factory = func() Kernel { return NewMoreauKernelStats(stats) }
	case "HPWL", "hpwl":
		factory = func() Kernel { return NetHPWL }
	}
	return Parallelize(base, workers, factory)
}

func (m *parallelModel) Name() string         { return m.name }
func (m *parallelModel) ParamKind() ParamKind { return m.kind }

// ensureGradScratch (re)sizes the per-worker gradient accumulators to n
// cells. In the steady state (same design every call) this is a single
// length comparison; the resize path only runs when the cell count changes.
func (m *parallelModel) ensureGradScratch(n int) {
	if len(m.gxs[0]) == n {
		return
	}
	for w := range m.gxs {
		m.gxs[w] = make([]float64, n)
		m.gys[w] = make([]float64, n)
	}
}

func (m *parallelModel) WirelengthGrad(d *netlist.Design, p float64, gradX, gradY []float64) float64 {
	n := d.NumCells()
	needGrad := gradX != nil
	if needGrad {
		m.ensureGradScratch(n)
	}

	numNets := d.NumNets()
	active := parallel.Active(m.workers, numNets)
	m.d, m.ln, m.prm, m.needGrad = d, d.PinLanes(), p, needGrad
	parallel.For(m.workers, numNets, m.fnEval)

	total := 0.0
	for w := 0; w < active; w++ {
		total += m.totals[w]
	}
	if needGrad {
		for i := range gradX {
			gradX[i] = 0
			gradY[i] = 0
		}
		for w := 0; w < active; w++ {
			gx, gy := m.gxs[w], m.gys[w]
			for i := 0; i < n; i++ {
				gradX[i] += gx[i]
				gradY[i] += gy[i]
			}
		}
		if h := GradHook; h != nil {
			h(m.Name(), gradX, gradY)
		}
	}
	return total
}
