package wirelength

import (
	"fmt"

	"repro/internal/moreau"
	"repro/internal/netlist"
	"repro/internal/parallel"
)

// parallelModel evaluates a kernel model with a pool of goroutines, one
// kernel instance and one gradient accumulator per worker, reduced after the
// barrier. Results are bit-identical to the sequential evaluator up to
// floating-point addition order within a cell's accumulator (workers own
// disjoint net ranges but cells are shared, so per-worker partial gradients
// are summed deterministically worker-by-worker).
//
// A parallelModel is not safe for concurrent WirelengthGrad calls on the
// same value: the workers it spawns own its per-worker scratch, but two
// overlapping top-level calls would share it. Create one model per
// concurrent placement run (ParallelByName is cheap).
type parallelModel struct {
	name    string
	kind    ParamKind
	workers int
	kernels []Kernel

	// Per-call scratch, reused across evaluations: totals holds one
	// partial sum per worker; gxs/gys hold per-worker gradient
	// accumulators, (re)sized only when the design's cell count changes.
	totals   []float64
	gxs, gys [][]float64

	// coords/pins are per-worker pin coordinate and gradient buffers,
	// grown on demand to the largest net degree each worker has seen.
	coords, pins [][]float64
}

// Parallelize wraps a kernel-backed model (anything built by
// NewKernelModel, which includes every model ByName returns) in a
// fixed-size worker pool. workers <= 1 returns the model unchanged.
func Parallelize(m Model, workers int, factory func() Kernel) (Model, error) {
	if workers <= 1 {
		return m, nil
	}
	if factory == nil {
		return nil, fmt.Errorf("wirelength: Parallelize needs a kernel factory")
	}
	p := &parallelModel{
		name:    m.Name(),
		kind:    m.ParamKind(),
		workers: workers,
		totals:  make([]float64, workers),
		gxs:     make([][]float64, workers),
		gys:     make([][]float64, workers),
		coords:  make([][]float64, workers),
		pins:    make([][]float64, workers),
	}
	for w := 0; w < workers; w++ {
		p.kernels = append(p.kernels, factory())
	}
	return p, nil
}

// ParallelByName builds a parallel version of a named model.
func ParallelByName(name string, workers int) (Model, error) {
	return ParallelByNameStats(name, workers, nil)
}

// ParallelByNameStats is ParallelByName with an optional Moreau branch
// counter shared across every worker's evaluator (see ByNameStats).
func ParallelByNameStats(name string, workers int, stats *moreau.Stats) (Model, error) {
	base, err := ByNameStats(name, stats)
	if err != nil {
		return nil, err
	}
	var factory func() Kernel
	switch name {
	case "LSE", "lse":
		factory = func() Kernel { return NetLSE }
	case "WA", "wa":
		factory = func() Kernel { return NetWA }
	case "BiG_CHKS", "big_chks", "BIG_CHKS", "big":
		factory = NewBiGKernel
	case "BiG_WA", "big_wa", "BIG_WA":
		factory = NewBiGWAKernel
	case "ME", "me", "moreau", "Moreau":
		factory = func() Kernel { return NewMoreauKernelStats(stats) }
	case "HPWL", "hpwl":
		factory = func() Kernel { return NetHPWL }
	}
	return Parallelize(base, workers, factory)
}

func (m *parallelModel) Name() string         { return m.name }
func (m *parallelModel) ParamKind() ParamKind { return m.kind }

// ensureGradScratch (re)sizes the per-worker gradient accumulators to n
// cells. In the steady state (same design every call) this is a single
// length comparison; the resize path only runs when the cell count changes.
func (m *parallelModel) ensureGradScratch(n int) {
	if len(m.gxs[0]) == n {
		return
	}
	for w := range m.gxs {
		m.gxs[w] = make([]float64, n)
		m.gys[w] = make([]float64, n)
	}
}

func (m *parallelModel) WirelengthGrad(d *netlist.Design, p float64, gradX, gradY []float64) float64 {
	n := d.NumCells()
	needGrad := gradX != nil
	if needGrad {
		m.ensureGradScratch(n)
	}

	numNets := d.NumNets()
	active := parallel.Active(m.workers, numNets)
	parallel.For(m.workers, numNets, func(w, lo, hi int) {
		kernel := m.kernels[w]
		coord, pg := m.coords[w], m.pins[w]
		var gx, gy []float64
		if needGrad {
			gx, gy = m.gxs[w], m.gys[w]
			for i := range gx {
				gx[i] = 0
				gy[i] = 0
			}
		}
		sum := 0.0
		for e := lo; e < hi; e++ {
			pins := d.NetPins(e)
			np := len(pins)
			if np == 0 {
				continue
			}
			if cap(coord) < np {
				coord = make([]float64, np)
				pg = make([]float64, np)
			}
			c := coord[:np]
			var g []float64
			if needGrad {
				g = pg[:np]
			}
			wgt := d.Nets[e].Weight
			for i, pin := range pins {
				c[i] = d.X[pin.Cell] + pin.Dx
			}
			sum += wgt * kernel(c, p, g)
			if needGrad {
				for i, pin := range pins {
					gx[pin.Cell] += wgt * g[i]
				}
			}
			for i, pin := range pins {
				c[i] = d.Y[pin.Cell] + pin.Dy
			}
			sum += wgt * kernel(c, p, g)
			if needGrad {
				for i, pin := range pins {
					gy[pin.Cell] += wgt * g[i]
				}
			}
		}
		m.coords[w], m.pins[w] = coord, pg
		m.totals[w] = sum
	})

	total := 0.0
	for w := 0; w < active; w++ {
		total += m.totals[w]
	}
	if needGrad {
		for i := range gradX {
			gradX[i] = 0
			gradY[i] = 0
		}
		for w := 0; w < active; w++ {
			gx, gy := m.gxs[w], m.gys[w]
			for i := 0; i < n; i++ {
				gradX[i] += gx[i]
				gradY[i] += gy[i]
			}
		}
		if h := GradHook; h != nil {
			h(m.Name(), gradX, gradY)
		}
	}
	return total
}
