package wirelength

import "math"

// NetLSE is the log-sum-exp smooth HPWL kernel (Naylor et al.):
//
//	W = gamma*ln(sum exp(x_i/gamma)) + gamma*ln(sum exp(-x_i/gamma)).
//
// This implementation is numerically stabilized by factoring out the extreme
// coordinate from each exponential sum, the same trick DREAMPlace uses, so
// it never overflows regardless of how small gamma is relative to the
// coordinate spread. Gradient: softmax(+) - softmax(-).
func NetLSE(x []float64, gamma float64, grad []float64) float64 {
	checkKernelArgs(x, gamma)
	lo, hi := spanExtremes(x)
	inv := 1 / gamma

	var sumHi, sumLo float64
	for _, v := range x {
		sumHi += math.Exp((v - hi) * inv)
		sumLo += math.Exp((lo - v) * inv)
	}
	val := hi + gamma*math.Log(sumHi) + (-lo + gamma*math.Log(sumLo))

	if grad != nil {
		for i, v := range x {
			grad[i] = math.Exp((v-hi)*inv)/sumHi - math.Exp((lo-v)*inv)/sumLo
		}
	}
	return val
}

// NetLSENaive is the textbook LSE kernel without stabilization. It exists
// to reproduce the numerical-overflow failure mode discussed in Section
// II-D(1) of the paper: for spreads of hundreds of units and small gamma the
// raw exponentials overflow float64 and the result becomes +Inf or NaN.
// Never use it inside a placer flow.
func NetLSENaive(x []float64, gamma float64, grad []float64) float64 {
	checkKernelArgs(x, gamma)
	inv := 1 / gamma
	var sumHi, sumLo float64
	for _, v := range x {
		sumHi += math.Exp(v * inv)
		sumLo += math.Exp(-v * inv)
	}
	if grad != nil {
		for i, v := range x {
			grad[i] = math.Exp(v*inv)/sumHi - math.Exp(-v*inv)/sumLo
		}
	}
	return gamma*math.Log(sumHi) + gamma*math.Log(sumLo)
}

// NewLSE returns the LSE wirelength model.
func NewLSE() Model { return NewKernelModel("LSE", ParamGamma, NetLSE) }
