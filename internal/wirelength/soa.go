package wirelength

import (
	"repro/internal/moreau"
	"repro/internal/netlist"
)

// laneScratch holds one evaluation worker's contiguous streaming lanes: pin
// coordinates gathered from cell positions plus offsets, the per-pin kernel
// gradient lane, and the per-net weight lane of the batch path. Buffers grow
// on demand and are reused across evaluations, so the steady state performs
// no allocations. Each worker owns exactly one laneScratch; nothing here is
// shared.
type laneScratch struct {
	// cx, cy are the gathered pin X/Y coordinate lanes for the worker's
	// net range, indexed by pin position relative to the range start.
	cx, cy []float64
	// pg receives per-pin kernel gradients; it is consumed by the scatter
	// pass after each axis, so one lane serves both axes.
	pg []float64
	// wts is the per-net weight lane handed to batch kernels.
	wts []float64
}

// ensure grows the lanes to hold pins coordinates and nets weights.
func (s *laneScratch) ensure(pins, nets int) {
	if cap(s.cx) < pins {
		s.cx = make([]float64, pins)
		s.cy = make([]float64, pins)
		s.pg = make([]float64, pins)
	}
	if cap(s.wts) < nets {
		s.wts = make([]float64, nets)
	}
}

// gather fills the coordinate lanes for every pin of nets [lo, hi) in one
// branch-free pass over the design's SoA pin lanes: cx[i] = X[cell]+dx,
// cy[i] = Y[cell]+dy, indexed relative to the range's first pin. It returns
// the absolute pin range.
func (s *laneScratch) gather(d *netlist.Design, ln *netlist.Lanes, lo, hi int) (pinLo, pinHi int) {
	pinLo = int(d.NetStart[lo])
	pinHi = int(d.NetStart[hi])
	s.ensure(pinHi-pinLo, hi-lo)
	pc := ln.PinCell[pinLo:pinHi]
	dx := ln.PinDx[pinLo:pinHi:pinHi]
	dy := ln.PinDy[pinLo:pinHi:pinHi]
	cx := s.cx[:len(pc)]
	cy := s.cy[:len(pc)]
	X, Y := d.X, d.Y
	for i := range pc {
		c := pc[i]
		cx[i] = X[c] + dx[i]
		cy[i] = Y[c] + dy[i]
	}
	return pinLo, pinHi
}

// evalKernelRange evaluates nets [lo, hi) with a per-net kernel over the
// gathered lanes: one gather pass, then per net a kernel call on the
// contiguous coordinate slice followed by a weighted scatter of the
// gradient back onto cells. The per-net X-kernel/X-scatter/Y-kernel/
// Y-scatter order and every per-element operation match the historical
// pointer-walk evaluator exactly, so values and gradients are bit-identical
// to it. gx/gy may be nil to skip gradient work.
func evalKernelRange(d *netlist.Design, ln *netlist.Lanes, s *laneScratch, k Kernel, lo, hi int, p float64, gx, gy []float64) float64 {
	if hi == lo {
		return 0
	}
	pinLo, _ := s.gather(d, ln, lo, hi)
	pc := ln.PinCell
	pg := s.pg
	sum := 0.0
	for e := lo; e < hi; e++ {
		s0 := int(d.NetStart[e]) - pinLo
		s1 := int(d.NetStart[e+1]) - pinLo
		if s1 == s0 {
			continue
		}
		w := d.Nets[e].Weight
		var g []float64
		if gx != nil {
			g = pg[s0:s1]
		}
		sum += w * k(s.cx[s0:s1], p, g)
		if gx != nil {
			for i := s0; i < s1; i++ {
				gx[pc[pinLo+i]] += w * pg[i]
			}
		}
		sum += w * k(s.cy[s0:s1], p, g)
		if gy != nil {
			for i := s0; i < s1; i++ {
				gy[pc[pinLo+i]] += w * pg[i]
			}
		}
	}
	return sum
}

// evalBatchRange evaluates nets [lo, hi) with the Moreau batch kernel: one
// gather pass, one GradBatch call per axis over the contiguous lanes (which
// writes weight-scaled per-pin gradients), and one flat scatter pass per
// axis. Gradients are bit-identical to the per-net path (same per-element
// arithmetic, same net-order scatter); the scalar total sums all X terms
// before all Y terms within the range, a reassociation of the historical
// interleaved sum that agrees to ~1e-12 relative. gx/gy may be nil to skip
// gradient work.
func evalBatchRange(d *netlist.Design, ln *netlist.Lanes, s *laneScratch, ev *moreau.Evaluator, lo, hi int, t float64, gx, gy []float64) float64 {
	if hi == lo {
		return 0
	}
	pinLo, pinHi := s.gather(d, ln, lo, hi)
	n := pinHi - pinLo
	wts := s.wts[:hi-lo]
	for b := range wts {
		wts[b] = d.Nets[lo+b].Weight
	}
	starts := d.NetStart[lo : hi+1]
	var pg []float64
	if gx != nil || gy != nil {
		pg = s.pg[:n]
	}
	sum := ev.GradBatch(starts, s.cx[:n], t, wts, pg)
	if gx != nil {
		pc := ln.PinCell[pinLo:pinHi]
		for i, c := range pc {
			gx[c] += pg[i]
		}
	}
	sum += ev.GradBatch(starts, s.cy[:n], t, wts, pg)
	if gy != nil {
		pc := ln.PinCell[pinLo:pinHi]
		for i, c := range pc {
			gy[c] += pg[i]
		}
	}
	return sum
}
