package wirelength

import "math"

// CHKS is the Chen-Harker-Kanzow-Smale bivariate smoothing function
//
//	chks(a, b) = (a + b + sqrt((a-b)^2 + 4*gamma^2)) / 2,
//
// a smooth over-approximation of max(a, b) with error at most gamma
// (attained at a == b). The BiG model (Sun & Chang, DAC 2019) folds an
// n-ary smooth maximum out of this bivariate function.
func CHKS(a, b, gamma float64) float64 {
	d := a - b
	return (a + b + math.Sqrt(d*d+4*gamma*gamma)) / 2
}

// chksPartials returns d(chks)/da and d(chks)/db. The partials are positive
// and sum to one, which is what gives the folded BiG gradient the same
// sum-to-one property as the WA smooth maximum (Theorem 5).
func chksPartials(a, b, gamma float64) (da, db float64) {
	d := a - b
	s := math.Sqrt(d*d + 4*gamma*gamma)
	da = (1 + d/s) / 2
	db = (1 - d/s) / 2
	return
}

// bigScratch carries the fold state reused across nets by the model.
type bigScratch struct {
	fold []float64 // running smooth-max values m_k
	da   []float64 // d(m_k)/d(m_{k-1}) at each fold step
	db   []float64 // d(m_k)/d(x_k) at each fold step
}

func (s *bigScratch) ensure(n int) {
	if cap(s.fold) < n {
		s.fold = make([]float64, n)
		s.da = make([]float64, n)
		s.db = make([]float64, n)
	}
	s.fold = s.fold[:n]
	s.da = s.da[:n]
	s.db = s.db[:n]
}

// smoothMaxFold computes the folded smooth maximum m_n of x and, when grad
// is non-nil, adds sign * d(m_n)/dx_i to grad[i] via the reverse chain rule.
func (s *bigScratch) smoothMaxFold(x []float64, gamma float64, grad []float64, negate bool, sign float64) float64 {
	n := len(x)
	s.ensure(n)
	get := func(i int) float64 {
		if negate {
			return -x[i]
		}
		return x[i]
	}
	m := get(0)
	s.fold[0] = m
	s.da[0], s.db[0] = 0, 1
	for k := 1; k < n; k++ {
		v := get(k)
		da, db := chksPartials(m, v, gamma)
		m = CHKS(m, v, gamma)
		s.fold[k] = m
		s.da[k], s.db[k] = da, db
	}
	if grad != nil {
		// Suffix products of da give d(m_n)/dx_k = db_k * prod_{j>k} da_j.
		suffix := 1.0
		for k := n - 1; k >= 0; k-- {
			g := s.db[k] * suffix
			if negate {
				g = -g
			}
			grad[k] += sign * g
			suffix *= s.da[k]
		}
	}
	return m
}

// NewBiGKernel returns a BiG(CHKS) kernel with private fold scratch. The
// kernel value is smoothmax(x) + smoothmax(-x), i.e. an over-approximation
// of max(x) - min(x); the gradient is exact for that folded value.
func NewBiGKernel() Kernel {
	var s bigScratch
	return func(x []float64, gamma float64, grad []float64) float64 {
		checkKernelArgs(x, gamma)
		if grad != nil {
			for i := range grad {
				grad[i] = 0
			}
		}
		if len(x) == 1 {
			return 0
		}
		smax := s.smoothMaxFold(x, gamma, grad, false, 1)
		smin := -s.smoothMaxFold(x, gamma, grad, true, 1)
		return smax - smin
	}
}

// NetBiGCHKS evaluates the BiG(CHKS) kernel with a throwaway scratch;
// convenient for tests and toy studies, allocation-free only via
// NewBiGKernel.
func NetBiGCHKS(x []float64, gamma float64, grad []float64) float64 {
	return NewBiGKernel()(x, gamma, grad)
}

// NewBiGCHKS returns the BiG wirelength model with the CHKS bivariate
// function, the re-implementation the paper compares against.
func NewBiGCHKS() Model {
	return NewKernelModel("BiG_CHKS", ParamGamma, NewBiGKernel())
}
