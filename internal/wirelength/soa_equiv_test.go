package wirelength

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
)

// refPointerWalk is the historical per-net evaluator: walk Design.Pins net
// by net through the AoS view, gather into throwaway buffers, call the
// kernel, scatter weighted gradients. It shares none of the SoA lane code,
// so it pins the gather/kernel/scatter refactor independently.
func refPointerWalk(d *netlist.Design, k Kernel, p float64, gx, gy []float64) float64 {
	sum := 0.0
	for e := 0; e < d.NumNets(); e++ {
		pins := d.NetPins(e)
		if len(pins) == 0 {
			continue
		}
		xs := make([]float64, len(pins))
		ys := make([]float64, len(pins))
		for i, pin := range pins {
			xs[i] = d.X[pin.Cell] + pin.Dx
			ys[i] = d.Y[pin.Cell] + pin.Dy
		}
		w := d.Nets[e].Weight
		var g []float64
		if gx != nil {
			g = make([]float64, len(pins))
		}
		sum += w * k(xs, p, g)
		if gx != nil {
			for i, pin := range pins {
				gx[pin.Cell] += w * g[i]
			}
		}
		sum += w * k(ys, p, g)
		if gy != nil {
			for i, pin := range pins {
				gy[pin.Cell] += w * g[i]
			}
		}
	}
	return sum
}

func refKernelFor(t *testing.T, name string) Kernel {
	t.Helper()
	switch name {
	case "ME":
		return NewMoreauKernel()
	case "WA":
		return NetWA
	case "LSE":
		return NetLSE
	case "BiG_CHKS":
		return NewBiGKernel()
	case "BiG_WA":
		return NewBiGWAKernel()
	case "HPWL":
		return NetHPWL
	}
	t.Fatalf("no reference kernel for %q", name)
	return nil
}

// TestSoAMatchesPointerWalk compares every model, at 1, 2, and 7 workers,
// against the pointer-walk reference at 1e-12 relative: the SoA lane
// refactor must be an optimization, not a numerical change. Net weights are
// perturbed after Build to pin the contract that lanes hold topology only
// and weights are read at evaluation time.
func TestSoAMatchesPointerWalk(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "soa", NumMovable: 400, NumPads: 8, NumNets: 500,
		AvgDegree: 3.8, Utilization: 0.7, TargetDensity: 1, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := range d.Nets {
		d.Nets[e].Weight = 1 + float64(e%5)*0.25
	}
	n := d.NumCells()
	for _, name := range append(AllModelNames(), "BiG_WA", "HPWL") {
		p := 2.5
		if name == "ME" {
			p = 1.5
		}
		gxRef := make([]float64, n)
		gyRef := make([]float64, n)
		vRef := refPointerWalk(d, refKernelFor(t, name), p, gxRef, gyRef)
		for _, workers := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				m, err := ParallelByNameStats(name, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				gx := make([]float64, n)
				gy := make([]float64, n)
				v := m.WirelengthGrad(d, p, gx, gy)
				if math.Abs(v-vRef) > 1e-12*(1+math.Abs(vRef)) {
					t.Errorf("value %g, pointer-walk reference %g", v, vRef)
				}
				for i := 0; i < n; i++ {
					if math.Abs(gx[i]-gxRef[i]) > 1e-12*(1+math.Abs(gxRef[i])) ||
						math.Abs(gy[i]-gyRef[i]) > 1e-12*(1+math.Abs(gyRef[i])) {
						t.Fatalf("grad mismatch at cell %d: (%g,%g) vs (%g,%g)",
							i, gx[i], gy[i], gxRef[i], gyRef[i])
					}
				}
			})
		}
	}
}

// TestTotalHPWLMatchesPointerWalk pins the lane-based TotalHPWL against a
// direct AoS walk — these must agree exactly (identical comparison order).
func TestTotalHPWLMatchesPointerWalk(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "hp", NumMovable: 300, NumPads: 6, NumNets: 350,
		AvgDegree: 3.5, Utilization: 0.7, TargetDensity: 1, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for e := 0; e < d.NumNets(); e++ {
		pins := d.NetPins(e)
		if len(pins) == 0 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, pin := range pins {
			x := d.X[pin.Cell] + pin.Dx
			y := d.Y[pin.Cell] + pin.Dy
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		want += d.Nets[e].Weight * ((maxX - minX) + (maxY - minY))
	}
	if got := TotalHPWL(d); got != want {
		t.Errorf("TotalHPWL = %g, pointer-walk reference %g", got, want)
	}
}
