package wirelength

import "repro/internal/moreau"

// NewMoreauKernel returns the paper's Moreau-envelope kernel with private
// sort scratch. The value is W_e^t(x) + t (the paper's reported model); the
// gradient is the exact envelope gradient of Corollary 1, which the +t
// offset does not affect.
func NewMoreauKernel() Kernel {
	return NewMoreauKernelStats(nil)
}

// NewMoreauKernelStats is NewMoreauKernel with an optional shared branch
// counter; each kernel instance gets private sort scratch but all feed the
// same atomic Stats. stats == nil disables counting.
func NewMoreauKernelStats(stats *moreau.Stats) Kernel {
	ev := moreau.NewEvaluator(64)
	ev.Stats = stats
	return func(x []float64, t float64, grad []float64) float64 {
		checkKernelArgs(x, t)
		r := ev.EnvelopeGrad(x, t, grad)
		return r.Value + t
	}
}

// NetMoreau evaluates the Moreau-envelope kernel with a throwaway
// evaluator; see NewMoreauKernel for the allocation-free variant.
func NetMoreau(x []float64, t float64, grad []float64) float64 {
	return NewMoreauKernel()(x, t, grad)
}

// NewMoreau returns the Moreau-envelope wirelength model ("ME", ours).
func NewMoreau() Model {
	return NewMoreauStats(nil)
}

// NewMoreauStats is NewMoreau with a shared branch counter (see
// NewMoreauKernelStats). The returned model evaluates whole net ranges
// through moreau.GradBatch over the design's SoA lanes — per-net arithmetic
// identical to the kernel path, minus the per-net call overhead.
func NewMoreauStats(stats *moreau.Stats) Model {
	ev := moreau.NewEvaluator(64)
	ev.Stats = stats
	return &kernelModel{name: "ME", kind: ParamMoreauT, batch: ev}
}
