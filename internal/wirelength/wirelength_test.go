package wirelength

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// namedKernels lists every differentiable kernel under test.
func namedKernels() map[string]Kernel {
	return map[string]Kernel{
		"LSE": NetLSE,
		"WA":  NetWA,
		"BiG": NewBiGKernel(),
		"ME":  NewMoreauKernel(),
	}
}

func TestKernelGradientsMatchFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, k := range namedKernels() {
		t.Run(name, func(t *testing.T) {
			for iter := 0; iter < 100; iter++ {
				n := 2 + rng.Intn(8)
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64() * 20
				}
				p := 0.5 + rng.Float64()*5
				g := make([]float64, n)
				k(x, p, g)
				const h = 1e-5
				for i := range x {
					xp := append([]float64(nil), x...)
					xm := append([]float64(nil), x...)
					xp[i] += h
					xm[i] -= h
					fd := (k(xp, p, nil) - k(xm, p, nil)) / (2 * h)
					if math.Abs(fd-g[i]) > 2e-4*(1+math.Abs(fd)) {
						t.Fatalf("%s grad[%d] = %g, fd %g (x=%v p=%g)", name, i, g[i], fd, x, p)
					}
				}
			}
		})
	}
}

func TestKernelsConvergeToHPWL(t *testing.T) {
	x := []float64{-40, 3, 18, 77}
	want := 117.0
	for name, k := range namedKernels() {
		v := k(x, 0.01, nil)
		if math.Abs(v-want) > 0.2 {
			t.Errorf("%s at p=0.01: %g, want ~%g", name, v, want)
		}
	}
}

// Known one-sided biases: LSE and BiG over-approximate HPWL; WA and the
// Moreau envelope under-approximate it (ME's +t offset keeps it within +t).
func TestKernelBiasDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		p := 0.1 + rng.Float64()*20
		w := NetHPWL(x, 0, nil)
		if v := NetLSE(x, p, nil); v < w-1e-9 {
			t.Fatalf("LSE %g under HPWL %g", v, w)
		}
		if v := NetBiGCHKS(x, p, nil); v < w-1e-9 {
			t.Fatalf("BiG %g under HPWL %g", v, w)
		}
		if v := NetWA(x, p, nil); v > w+1e-9 {
			t.Fatalf("WA %g over HPWL %g", v, w)
		}
		if v := NetMoreau(x, p, nil); v > w+p+1e-9 {
			t.Fatalf("ME+t %g over HPWL+t %g", v, w+p)
		}
	}
}

// Section II-D(1): the naive exponential kernels overflow where the
// stabilized ones and the Moreau envelope stay finite.
func TestNumericalStabilityNaiveVsStable(t *testing.T) {
	x := []float64{0, 350, 700, 1000} // realistic placement spread
	gamma := 1.0

	if v := NetWANaive(x, gamma, nil); !math.IsNaN(v) && !math.IsInf(v, 0) {
		t.Errorf("naive WA unexpectedly finite: %g", v)
	}
	if v := NetLSENaive(x, gamma, nil); !math.IsInf(v, 1) && !math.IsNaN(v) {
		t.Errorf("naive LSE unexpectedly finite: %g", v)
	}

	for name, k := range namedKernels() {
		v := k(x, gamma, nil)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("stable %s overflowed: %g", name, v)
		}
		if math.Abs(v-1000) > 10 {
			t.Errorf("stable %s far from HPWL: %g", name, v)
		}
	}
}

// Theorem 5: the WA smooth maximum has gradient components summing to 1.
func TestWASmoothMaxGradientSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(10)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50
		}
		p := 0.1 + rng.Float64()*10
		g := make([]float64, n)
		NetWASmoothMax(x, p, g)
		s := 0.0
		for _, v := range g {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("smooth-max grad sum = %g, want 1 (x=%v)", s, x)
		}
	}
}

// Corollary 2 (and the analogous property for every model): full-span
// gradient components sum to 0.
func TestKernelGradientsSumToZero(t *testing.T) {
	for name, k := range namedKernels() {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(12)
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 100
			}
			p := 0.1 + rng.Float64()*10
			g := make([]float64, n)
			k(x, p, g)
			s, scale := 0.0, 0.0
			for _, v := range g {
				s += v
				scale += math.Abs(v)
			}
			return math.Abs(s) <= 1e-8*(1+scale)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Permutation invariance: shuffling pin order leaves the value unchanged
// for LSE/WA/ME. BiG folds CHKS sequentially, so its over-approximation
// amount genuinely depends on fold order; its values under permutation may
// differ by up to the smoothing amount, never more.
func TestKernelPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for name, k := range namedKernels() {
		tol := 1e-12
		if name == "BiG" {
			tol = 1e-9 // fold order changes rounding, not semantics
		}
		for iter := 0; iter < 50; iter++ {
			n := 2 + rng.Intn(8)
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64() * 10
			}
			p := 0.5 + rng.Float64()*3
			v1 := k(x, p, nil)
			perm := rng.Perm(n)
			y := make([]float64, n)
			for i, j := range perm {
				y[i] = x[j]
			}
			v2 := k(y, p, nil)
			if name == "BiG" {
				// Order changes only the smoothing slack (< gamma per
				// side), never the underlying span.
				if math.Abs(v1-v2) > 2*p {
					t.Fatalf("%s permutation gap beyond smoothing slack: %g vs %g (p=%g)", name, v1, v2, p)
				}
				continue
			}
			if math.Abs(v1-v2) > tol*(1+math.Abs(v1)) {
				t.Fatalf("%s not permutation invariant: %g vs %g", name, v1, v2)
			}
		}
	}
}

// Translation invariance of the span value and gradient.
func TestKernelTranslationInvariance(t *testing.T) {
	for name, k := range namedKernels() {
		x := []float64{0, 2, 5, 9}
		g1 := make([]float64, 4)
		g2 := make([]float64, 4)
		v1 := k(x, 1.7, g1)
		y := make([]float64, 4)
		for i := range x {
			y[i] = x[i] + 500.25
		}
		v2 := k(y, 1.7, g2)
		if math.Abs(v1-v2) > 1e-7*(1+math.Abs(v1)) {
			t.Errorf("%s value not translation invariant: %g vs %g", name, v1, v2)
		}
		for i := range g1 {
			if math.Abs(g1[i]-g2[i]) > 1e-7 {
				t.Errorf("%s grad[%d] not translation invariant", name, i)
			}
		}
	}
}

// Fig. 1(a)'s claim: the WA model is non-convex even on a 3-pin net with the
// outer pins fixed at 0 and 100. We probe convexity of f(x) = WA({0,x,100})
// and require at least one violated midpoint inequality.
func TestWANonConvexOn3PinNet(t *testing.T) {
	gamma := 10.0
	f := func(x float64) float64 { return NetWA([]float64{0, x, 100}, gamma, nil) }
	violated := false
	for a := 0.0; a <= 98; a += 0.5 {
		for b := a + 1; b <= 100; b += 0.5 {
			mid := (a + b) / 2
			if f(mid) > (f(a)+f(b))/2+1e-9 {
				violated = true
			}
		}
	}
	if !violated {
		t.Error("expected to find a convexity violation in WA on a 3-pin net")
	}
	// The Moreau envelope on the same family must be convex everywhere.
	g := func(x float64) float64 { return NetMoreau([]float64{0, x, 100}, gamma, nil) }
	for a := 0.0; a <= 98; a += 0.5 {
		for b := a + 1; b <= 100; b += 0.5 {
			mid := (a + b) / 2
			if g(mid) > (g(a)+g(b))/2+1e-9 {
				t.Fatalf("ME convexity violated at a=%g b=%g", a, b)
			}
		}
	}
}

// --- whole-design model tests ---

// buildModelTestDesign: three movable cells with off-center pins, one fixed
// pad, two nets (one weighted 2.0).
func buildModelTestDesign(t testing.TB) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("wl-test")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 200, YH: 200})
	c0 := b.AddCell("c0", netlist.Movable, 4, 2, 10, 10)
	c1 := b.AddCell("c1", netlist.Movable, 4, 2, 50, 70)
	c2 := b.AddCell("c2", netlist.Movable, 4, 2, 120, 40)
	pad := b.AddCell("pad", netlist.Terminal, 0, 0, 0, 200)
	n0 := b.AddNet("n0", 1)
	b.AddPin(n0, c0, 2, 1)
	b.AddPin(n0, c1, 0, 0)
	b.AddPin(n0, c2, 4, 2)
	n1 := b.AddNet("n1", 2) // weighted net
	b.AddPin(n1, c1, 1, 1)
	b.AddPin(n1, pad, 0, 0)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTotalHPWLHandComputed(t *testing.T) {
	d := buildModelTestDesign(t)
	// n0 pins: (12,11), (50,70), (124,42) -> span (112) + (59) = 171.
	// n1 pins: (51,71), (0,200) -> (51 + 129) * weight 2 = 360.
	want := 171.0 + 360.0
	if got := TotalHPWL(d); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalHPWL = %g, want %g", got, want)
	}
}

func TestModelWirelengthGradMatchesFiniteDifference(t *testing.T) {
	d := buildModelTestDesign(t)
	for _, name := range append(AllModelNames(), "HPWL") {
		if name == "HPWL" {
			continue // subgradient, not differentiable
		}
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := 3.0
		gx := make([]float64, d.NumCells())
		gy := make([]float64, d.NumCells())
		m.WirelengthGrad(d, p, gx, gy)
		const h = 1e-5
		for c := 0; c < d.NumCells(); c++ {
			x0 := d.X[c]
			d.X[c] = x0 + h
			fp := m.WirelengthGrad(d, p, nil, nil)
			d.X[c] = x0 - h
			fm := m.WirelengthGrad(d, p, nil, nil)
			d.X[c] = x0
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-gx[c]) > 1e-3*(1+math.Abs(fd)) {
				t.Errorf("%s: dW/dx[%d] = %g, fd %g", name, c, gx[c], fd)
			}
			y0 := d.Y[c]
			d.Y[c] = y0 + h
			fp = m.WirelengthGrad(d, p, nil, nil)
			d.Y[c] = y0 - h
			fm = m.WirelengthGrad(d, p, nil, nil)
			d.Y[c] = y0
			fd = (fp - fm) / (2 * h)
			if math.Abs(fd-gy[c]) > 1e-3*(1+math.Abs(fd)) {
				t.Errorf("%s: dW/dy[%d] = %g, fd %g", name, c, gy[c], fd)
			}
		}
	}
}

func TestModelRespectsNetWeights(t *testing.T) {
	d := buildModelTestDesign(t)
	m := NewWA()
	base := m.WirelengthGrad(d, 1.0, nil, nil)
	d.Nets[1].Weight = 4 // double the weighted net
	boosted := m.WirelengthGrad(d, 1.0, nil, nil)
	if boosted <= base {
		t.Errorf("boosting net weight did not increase objective: %g -> %g", base, boosted)
	}
}

func TestModelValueApproachesTotalHPWL(t *testing.T) {
	d := buildModelTestDesign(t)
	want := TotalHPWL(d)
	for _, name := range AllModelNames() {
		m, _ := ByName(name)
		got := m.WirelengthGrad(d, 0.01, nil, nil)
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("%s at small param: %g, want ~%g", name, got, want)
		}
	}
}

func TestModelGradZeroedBetweenCalls(t *testing.T) {
	d := buildModelTestDesign(t)
	m := NewMoreau()
	gx := make([]float64, d.NumCells())
	gy := make([]float64, d.NumCells())
	for i := range gx {
		gx[i] = 1e9 // garbage that must be cleared
		gy[i] = -1e9
	}
	m.WirelengthGrad(d, 1.0, gx, gy)
	for i := range gx {
		if math.Abs(gx[i]) > 1e6 || math.Abs(gy[i]) > 1e6 {
			t.Fatalf("gradient buffer not zeroed at %d: %g,%g", i, gx[i], gy[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LSE", "WA", "BiG_CHKS", "ME", "HPWL"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
	me, _ := ByName("ME")
	if me.ParamKind() != ParamMoreauT {
		t.Error("ME should use the Moreau t schedule")
	}
	wa, _ := ByName("WA")
	if wa.ParamKind() != ParamGamma {
		t.Error("WA should use the gamma schedule")
	}
}

func TestSinglePinNetContributesNothing(t *testing.T) {
	b := netlist.NewBuilder("single")
	b.SetRegion(geom.Rect{XH: 10, YH: 10})
	c := b.AddCell("c", netlist.Movable, 1, 1, 5, 5)
	n := b.AddNet("n", 1)
	b.AddPin(n, c, 0, 0)
	d := b.MustBuild()
	for _, name := range AllModelNames() {
		m, _ := ByName(name)
		gx := make([]float64, 1)
		gy := make([]float64, 1)
		v := m.WirelengthGrad(d, 1.0, gx, gy)
		// ME reports +t per axis on singleton nets; all gradients are zero.
		if gx[0] != 0 || gy[0] != 0 {
			t.Errorf("%s: singleton net produced gradient (%g,%g)", name, gx[0], gy[0])
		}
		if name != "ME" && v != 0 {
			t.Errorf("%s: singleton net value %g, want 0", name, v)
		}
	}
}

func TestCHKSProperties(t *testing.T) {
	// chks(a,b) >= max(a,b), equality gap gamma at a==b.
	if CHKS(3, 3, 2) != 5 {
		t.Errorf("CHKS(3,3,2) = %g, want 5", CHKS(3, 3, 2))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a, b := rng.NormFloat64()*10, rng.NormFloat64()*10
		g := rng.Float64()*5 + 0.01
		v := CHKS(a, b, g)
		if v < math.Max(a, b)-1e-12 {
			t.Fatalf("CHKS below max: chks(%g,%g,%g)=%g", a, b, g, v)
		}
		if v > math.Max(a, b)+g+1e-12 {
			t.Fatalf("CHKS above max+gamma: chks(%g,%g,%g)=%g", a, b, g, v)
		}
		da, db := chksPartials(a, b, g)
		if math.Abs(da+db-1) > 1e-12 || da < 0 || db < 0 {
			t.Fatalf("CHKS partials invalid: %g,%g", da, db)
		}
	}
}

// --- kernel benchmarks used by the runtime-ratio discussion ---

func benchmarkKernel(b *testing.B, k Kernel, degree int) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, degree)
	for i := range x {
		x[i] = rng.Float64() * 1000
	}
	g := make([]float64, degree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k(x, 4.0, g)
	}
}

func BenchmarkKernelWADegree4(b *testing.B)  { benchmarkKernel(b, NetWA, 4) }
func BenchmarkKernelLSEDegree4(b *testing.B) { benchmarkKernel(b, NetLSE, 4) }
func BenchmarkKernelBiGDegree4(b *testing.B) { benchmarkKernel(b, NewBiGKernel(), 4) }
func BenchmarkKernelMEDegree4(b *testing.B)  { benchmarkKernel(b, NewMoreauKernel(), 4) }
func BenchmarkKernelWADegree32(b *testing.B) { benchmarkKernel(b, NetWA, 32) }
func BenchmarkKernelMEDegree32(b *testing.B) { benchmarkKernel(b, NewMoreauKernel(), 32) }

// BiG_WA: the alternative bivariate fold. Same invariants as BiG_CHKS plus
// the under-approximation direction of WA.
func TestBiGWAKernel(t *testing.T) {
	k := NewBiGWAKernel()
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 30
		}
		p := 0.5 + rng.Float64()*5
		g := make([]float64, n)
		v := k(x, p, g)
		// Converges to HPWL.
		if p < 1 {
			w := NetHPWL(x, 0, nil)
			if math.Abs(v-w) > 6*p {
				t.Fatalf("BiG_WA far from HPWL: %g vs %g (p=%g)", v, w, p)
			}
		}
		// Gradient sums to zero.
		s, scale := 0.0, 0.0
		for _, gv := range g {
			s += gv
			scale += math.Abs(gv)
		}
		if math.Abs(s) > 1e-8*(1+scale) {
			t.Fatalf("BiG_WA grad sum = %g", s)
		}
		// Finite differences.
		const h = 1e-5
		for i := range x {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += h
			xm[i] -= h
			fd := (k(xp, p, nil) - k(xm, p, nil)) / (2 * h)
			if math.Abs(fd-g[i]) > 2e-4*(1+math.Abs(fd)) {
				t.Fatalf("BiG_WA grad[%d] = %g, fd %g", i, g[i], fd)
			}
		}
	}
	// ByName lookup.
	m, err := ByName("BiG_WA")
	if err != nil || m.Name() != "BiG_WA" {
		t.Errorf("ByName(BiG_WA): %v, %v", m, err)
	}
}

// The two BiG variants should agree closely at small smoothing (the paper
// reports roughly equal quality for BiG_WA and BiG_CHKS).
func TestBiGVariantsAgreeAtSmallGamma(t *testing.T) {
	chks := NewBiGKernel()
	wa := NewBiGWAKernel()
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(6)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		a := chks(x, 0.05, nil)
		b := wa(x, 0.05, nil)
		if math.Abs(a-b) > 1 {
			t.Fatalf("BiG variants diverge: %g vs %g", a, b)
		}
	}
}
