// Package wirelength implements the wirelength models compared in the paper
// behind a single interface: the exact (non-differentiable) HPWL, the
// log-sum-exp (LSE) model, the weighted-average (WA) model, the bivariate
// gradient-based BiG model with the CHKS smoothing function, and the paper's
// Moreau-envelope model.
//
// Every model exposes the same two views:
//
//   - a per-net, one-dimensional kernel operating on raw pin coordinates
//     (used by the toy studies of Fig. 1 and by unit tests), and
//   - a whole-design evaluator that assembles pin coordinates from cell
//     positions plus pin offsets, evaluates both axes, and scatters the
//     gradient back onto cells (used by the global placer).
//
// The smoothing parameter has a per-model meaning (gamma for the
// exponential models, t for the Moreau envelope); ParamKind tells the placer
// which update schedule applies.
package wirelength

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/moreau"
	"repro/internal/netlist"
)

// ParamKind selects the smoothing-parameter schedule a model requires.
type ParamKind int

const (
	// ParamGamma marks exponential models driven by the ePlace
	// gamma(overflow) schedule.
	ParamGamma ParamKind = iota
	// ParamMoreauT marks the Moreau-envelope model driven by the paper's
	// tangent t(overflow) schedule (Eq. 14).
	ParamMoreauT
)

// Kernel is a one-dimensional per-net wirelength approximation: it returns
// the approximate span of the coordinates x under smoothing parameter p and,
// when grad is non-nil, writes the partial derivatives into grad (len(x)).
// Kernels must accept len(x) >= 1.
type Kernel func(x []float64, p float64, grad []float64) float64

// Model is a differentiable wirelength approximation over a whole design.
type Model interface {
	// Name identifies the model in tables ("WA", "LSE", "BiG_CHKS", "ME").
	Name() string
	// ParamKind reports which smoothing schedule the model uses.
	ParamKind() ParamKind
	// WirelengthGrad returns the total weighted approximate wirelength of
	// the design under smoothing parameter p and, when gradX/gradY are
	// non-nil, overwrites them with the objective's gradient w.r.t. each
	// cell's position. gradX and gradY must have d.NumCells() entries.
	WirelengthGrad(d *netlist.Design, p float64, gradX, gradY []float64) float64
}

// TotalHPWL returns the exact total weighted half-perimeter wirelength of
// the design at its current placement. This is the evaluation metric used in
// every table of the paper. It streams over the design's flat SoA pin lanes
// (cell-index, dx, dy) instead of walking 24-byte Pin records; the
// comparison order matches the record walk exactly, so the value is
// bit-identical to it.
func TotalHPWL(d *netlist.Design) float64 {
	ln := d.PinLanes()
	pc, pdx, pdy := ln.PinCell, ln.PinDx, ln.PinDy
	X, Y := d.X, d.Y
	total := 0.0
	for e := range d.Nets {
		s0, s1 := int(d.NetStart[e]), int(d.NetStart[e+1])
		if s1 == s0 {
			continue
		}
		c := pc[s0]
		xl := X[c] + pdx[s0]
		yl := Y[c] + pdy[s0]
		xh, yh := xl, yl
		for i := s0 + 1; i < s1; i++ {
			c := pc[i]
			x := X[c] + pdx[i]
			y := Y[c] + pdy[i]
			if x < xl {
				xl = x
			}
			if x > xh {
				xh = x
			}
			if y < yl {
				yl = y
			}
			if y > yh {
				yh = y
			}
		}
		total += d.Nets[e].Weight * ((xh - xl) + (yh - yl))
	}
	return total
}

// NetHPWL is the exact span kernel max(x)-min(x). Its grad output is a
// canonical subgradient (Eq. 17 of the paper): 1/n_max at maxima, -1/n_min
// at minima. Provided for reference flows and tests.
func NetHPWL(x []float64, _ float64, grad []float64) float64 {
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if grad != nil {
		nmin, nmax := 0, 0
		for _, v := range x {
			if v == lo {
				nmin++
			}
			if v == hi {
				nmax++
			}
		}
		for i, v := range x {
			g := 0.0
			if v == hi {
				g += 1 / float64(nmax)
			}
			if v == lo {
				g -= 1 / float64(nmin)
			}
			grad[i] = g
		}
	}
	return hi - lo
}

// kernelModel adapts a per-net Kernel (or the Moreau batch evaluator) into
// a whole-design Model streaming over the design's SoA pin lanes: one gather
// pass cells→pin coordinates, per-net kernels over contiguous slices of the
// gathered lanes, and a scatter pass back onto cell gradients.
type kernelModel struct {
	name   string
	kind   ParamKind
	kernel Kernel
	// batch, when non-nil, selects the Moreau batch path instead of the
	// per-net kernel: whole net ranges evaluate in single GradBatch calls.
	batch *moreau.Evaluator
	s     laneScratch
}

// NewKernelModel wraps a one-dimensional kernel as a full-design Model.
func NewKernelModel(name string, kind ParamKind, k Kernel) Model {
	return &kernelModel{name: name, kind: kind, kernel: k}
}

func (m *kernelModel) Name() string         { return m.name }
func (m *kernelModel) ParamKind() ParamKind { return m.kind }

func (m *kernelModel) WirelengthGrad(d *netlist.Design, p float64, gradX, gradY []float64) float64 {
	if gradX != nil {
		for i := range gradX {
			gradX[i] = 0
		}
		for i := range gradY {
			gradY[i] = 0
		}
	}
	total := 0.0
	if n := d.NumNets(); n > 0 {
		ln := d.PinLanes()
		if m.batch != nil {
			total = evalBatchRange(d, ln, &m.s, m.batch, 0, n, p, gradX, gradY)
		} else {
			total = evalKernelRange(d, ln, &m.s, m.kernel, 0, n, p, gradX, gradY)
		}
	}
	if h := GradHook; h != nil && gradX != nil {
		h(m.name, gradX, gradY)
	}
	return total
}

// ByName constructs one of the comparison models used in the paper's tables:
// "LSE", "WA", "BiG_CHKS", "ME" (ours), or "HPWL" (exact subgradient
// reference). The lookup is case-insensitive on these exact names.
func ByName(name string) (Model, error) {
	return ByNameStats(name, nil)
}

// ByNameStats is ByName with an optional Moreau branch counter: when stats
// is non-nil and the model is the Moreau envelope, its evaluator reports
// branch statistics (evaluations, degenerate collapses, large sorts) into
// stats. Other models ignore stats.
func ByNameStats(name string, stats *moreau.Stats) (Model, error) {
	switch name {
	case "LSE", "lse":
		return NewLSE(), nil
	case "WA", "wa":
		return NewWA(), nil
	case "BiG_CHKS", "big_chks", "BIG_CHKS", "big":
		return NewBiGCHKS(), nil
	case "BiG_WA", "big_wa", "BIG_WA":
		return NewBiGWA(), nil
	case "ME", "me", "moreau", "Moreau":
		return NewMoreauStats(stats), nil
	case "HPWL", "hpwl":
		return NewKernelModel("HPWL", ParamGamma, NetHPWL), nil
	}
	return nil, fmt.Errorf("wirelength: unknown model %q (want LSE, WA, BiG_CHKS, BiG_WA, ME, or HPWL)", name)
}

// AllModelNames lists the models compared in Tables II/III, in table order.
func AllModelNames() []string { return []string{"BiG_CHKS", "LSE", "WA", "ME"} }

// spanExtremes returns min, max of x.
func spanExtremes(x []float64) (lo, hi float64) {
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// sortedCoords returns a sorted copy of x (test/analysis helper).
func sortedCoords(x []float64) []float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return s
}

var _ = sortedCoords // referenced by analysis tests

// checkKernelArgs validates common kernel preconditions.
func checkKernelArgs(x []float64, p float64) {
	if len(x) == 0 {
		panic("wirelength: empty coordinate slice")
	}
	if !(p > 0) || math.IsInf(p, 0) {
		panic("wirelength: smoothing parameter must be positive and finite")
	}
}
