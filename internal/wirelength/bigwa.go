package wirelength

import "math"

// bivariateWA is the two-argument weighted-average smooth maximum used by
// the BiG_WA variant (Sun & Chang report BiG_WA and BiG_CHKS perform about
// equally; the paper re-implements the CHKS one, and we provide both):
//
//	f(a, b) = (a*e^{a/g} + b*e^{b/g}) / (e^{a/g} + e^{b/g}),
//
// stabilized by factoring out max(a, b). Unlike CHKS it under-approximates
// the maximum.
func bivariateWA(a, b, gamma float64) float64 {
	m := math.Max(a, b)
	ea := math.Exp((a - m) / gamma)
	eb := math.Exp((b - m) / gamma)
	return (a*ea + b*eb) / (ea + eb)
}

// bivariateWAPartials returns df/da and df/db.
func bivariateWAPartials(a, b, gamma float64) (da, db float64) {
	m := math.Max(a, b)
	ea := math.Exp((a - m) / gamma)
	eb := math.Exp((b - m) / gamma)
	den := ea + eb
	f := (a*ea + b*eb) / den
	da = ea / den * (1 + (a-f)/gamma)
	db = eb / den * (1 + (b-f)/gamma)
	return
}

// NewBiGWAKernel returns the BiG kernel built on the bivariate WA smooth
// maximum instead of CHKS.
func NewBiGWAKernel() Kernel {
	var s bigScratch
	return func(x []float64, gamma float64, grad []float64) float64 {
		checkKernelArgs(x, gamma)
		if grad != nil {
			for i := range grad {
				grad[i] = 0
			}
		}
		if len(x) == 1 {
			return 0
		}
		smax := s.foldWA(x, gamma, grad, false, 1)
		smin := -s.foldWA(x, gamma, grad, true, 1)
		return smax - smin
	}
}

// foldWA mirrors bigScratch.smoothMaxFold with the WA bivariate function.
func (s *bigScratch) foldWA(x []float64, gamma float64, grad []float64, negate bool, sign float64) float64 {
	n := len(x)
	s.ensure(n)
	get := func(i int) float64 {
		if negate {
			return -x[i]
		}
		return x[i]
	}
	m := get(0)
	s.da[0], s.db[0] = 0, 1
	for k := 1; k < n; k++ {
		v := get(k)
		da, db := bivariateWAPartials(m, v, gamma)
		m = bivariateWA(m, v, gamma)
		s.da[k], s.db[k] = da, db
	}
	if grad != nil {
		suffix := 1.0
		for k := n - 1; k >= 0; k-- {
			g := s.db[k] * suffix
			if negate {
				g = -g
			}
			grad[k] += sign * g
			suffix *= s.da[k]
		}
	}
	return m
}

// NewBiGWA returns the BiG wirelength model with the bivariate WA function.
func NewBiGWA() Model {
	return NewKernelModel("BiG_WA", ParamGamma, NewBiGWAKernel())
}
