package wirelength_test

import (
	"fmt"

	"repro/internal/wirelength"
)

// ExampleByName compares the four differentiable models on one net at equal
// smoothing. LSE and BiG over-approximate the true span of 10; WA
// under-approximates; the paper's Moreau model (envelope + t) is nearly
// exact.
func ExampleByName() {
	x := []float64{0, 2, 5, 10}
	fmt.Printf("HPWL %.3f\n", wirelength.NetHPWL(x, 0, nil))
	fmt.Printf("LSE  %.3f\n", wirelength.NetLSE(x, 0.5, nil))
	fmt.Printf("WA   %.3f\n", wirelength.NetWA(x, 0.5, nil))
	fmt.Printf("BiG  %.3f\n", wirelength.NetBiGCHKS(x, 0.5, nil))
	fmt.Printf("ME   %.3f\n", wirelength.NetMoreau(x, 0.5, nil))
	// Output:
	// HPWL 10.000
	// LSE  10.009
	// WA   9.964
	// BiG  10.241
	// ME   10.000
}
