package wirelength

import "math"

// NetWA is the weighted-average smooth HPWL kernel (Hsu, Chang, Balabanov):
//
//	W = sum(x_i*e^{x_i/g})/sum(e^{x_i/g}) - sum(x_i*e^{-x_i/g})/sum(e^{-x_i/g}).
//
// Exponentials are stabilized by shifting by the extreme coordinate, which
// leaves both quotients unchanged. The analytic gradient of the smooth-max
// part is
//
//	d/dx_i = w_i/B * (1 + (x_i - f)/gamma),  w_i = e^{(x_i-hi)/gamma},
//
// with the mirrored expression for the smooth-min part.
func NetWA(x []float64, gamma float64, grad []float64) float64 {
	checkKernelArgs(x, gamma)
	lo, hi := spanExtremes(x)
	inv := 1 / gamma

	var numHi, denHi, numLo, denLo float64
	for _, v := range x {
		wh := math.Exp((v - hi) * inv)
		wl := math.Exp((lo - v) * inv)
		numHi += v * wh
		denHi += wh
		numLo += v * wl
		denLo += wl
	}
	smax := numHi / denHi
	smin := numLo / denLo

	if grad != nil {
		for i, v := range x {
			wh := math.Exp((v - hi) * inv)
			wl := math.Exp((lo - v) * inv)
			dmax := wh / denHi * (1 + (v-smax)*inv)
			dmin := wl / denLo * (1 - (v-smin)*inv)
			grad[i] = dmax - dmin
		}
	}
	return smax - smin
}

// NetWANaive is the WA kernel without exponent shifting, kept for the
// Section II-D(1) overflow study. With coordinate spreads in the hundreds
// and small gamma it produces Inf/Inf = NaN. Never use it in a flow.
func NetWANaive(x []float64, gamma float64, grad []float64) float64 {
	checkKernelArgs(x, gamma)
	inv := 1 / gamma
	var numHi, denHi, numLo, denLo float64
	for _, v := range x {
		wh := math.Exp(v * inv)
		wl := math.Exp(-v * inv)
		numHi += v * wh
		denHi += wh
		numLo += v * wl
		denLo += wl
	}
	smax := numHi / denHi
	smin := numLo / denLo
	if grad != nil {
		for i, v := range x {
			wh := math.Exp(v * inv)
			wl := math.Exp(-v * inv)
			grad[i] = wh/denHi*(1+(v-smax)*inv) - wl/denLo*(1-(v-smin)*inv)
		}
	}
	return smax - smin
}

// NetWASmoothMax returns only the smooth-max half of the WA model and its
// gradient; used by tests of Theorem 5 (smooth-max gradient components sum
// to one).
func NetWASmoothMax(x []float64, gamma float64, grad []float64) float64 {
	checkKernelArgs(x, gamma)
	_, hi := spanExtremes(x)
	inv := 1 / gamma
	var num, den float64
	for _, v := range x {
		w := math.Exp((v - hi) * inv)
		num += v * w
		den += w
	}
	f := num / den
	if grad != nil {
		for i, v := range x {
			w := math.Exp((v - hi) * inv)
			grad[i] = w / den * (1 + (v-f)*inv)
		}
	}
	return f
}

// NewWA returns the weighted-average wirelength model.
func NewWA() Model { return NewKernelModel("WA", ParamGamma, NetWA) }
