package wirelength

import (
	"math"
	"testing"

	"repro/internal/synth"
)

func TestParallelMatchesSequential(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "par", NumMovable: 600, NumPads: 8, NumNets: 700,
		AvgDegree: 3.9, Utilization: 0.7, TargetDensity: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range append(AllModelNames(), "BiG_WA", "HPWL") {
		seq, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelByName(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Name() != seq.Name() || par.ParamKind() != seq.ParamKind() {
			t.Errorf("%s: metadata mismatch", name)
		}
		n := d.NumCells()
		gxS := make([]float64, n)
		gyS := make([]float64, n)
		gxP := make([]float64, n)
		gyP := make([]float64, n)
		p := 2.5
		vS := seq.WirelengthGrad(d, p, gxS, gyS)
		vP := par.WirelengthGrad(d, p, gxP, gyP)
		if math.Abs(vS-vP) > 1e-9*(1+math.Abs(vS)) {
			t.Errorf("%s: value %g vs parallel %g", name, vS, vP)
		}
		for i := 0; i < n; i++ {
			if math.Abs(gxS[i]-gxP[i]) > 1e-9*(1+math.Abs(gxS[i])) ||
				math.Abs(gyS[i]-gyP[i]) > 1e-9*(1+math.Abs(gyS[i])) {
				t.Fatalf("%s: grad mismatch at cell %d", name, i)
			}
		}
		// Value-only call (nil gradients) must also work.
		if v := par.WirelengthGrad(d, p, nil, nil); math.Abs(v-vS) > 1e-9*(1+math.Abs(vS)) {
			t.Errorf("%s: value-only parallel %g vs %g", name, v, vS)
		}
	}
}

func TestParallelizeOneWorkerPassthrough(t *testing.T) {
	base, _ := ByName("WA")
	m, err := Parallelize(base, 1, nil)
	if err != nil || m != base {
		t.Errorf("workers=1 should return the base model unchanged: %v %v", m, err)
	}
	if _, err := Parallelize(base, 4, nil); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := ParallelByName("nope", 4); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestParallelRepeatedCallsStable(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "rep", NumMovable: 200, NumPads: 4, NumNets: 220,
		AvgDegree: 3.5, Utilization: 0.7, TargetDensity: 1, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelByName("ME", 3)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumCells()
	gx := make([]float64, n)
	gy := make([]float64, n)
	v1 := par.WirelengthGrad(d, 1.5, gx, gy)
	g0 := gx[0]
	v2 := par.WirelengthGrad(d, 1.5, gx, gy)
	if v1 != v2 || gx[0] != g0 {
		t.Errorf("repeated parallel calls differ: %g vs %g", v1, v2)
	}
}
