package ecocache

import (
	"fmt"
	"hash/fnv"
)

// ConfigFingerprint covers every configuration knob that changes the
// placement a job produces. Two jobs with equal design hashes and equal
// fingerprints are the same computation, so the cached result of one answers
// the other exactly. Display-only knobs (trajectory recording, observability,
// timeouts) are deliberately absent; worker count participates because the
// parallel reduction order makes results worker-count dependent at the bit
// level, and bit-identical replay is exactly what an exact hit promises.
type ConfigFingerprint struct {
	Model         string
	GridX, GridY  int
	TargetDensity float64
	MaxIters      int
	StopOverflow  float64
	Gamma0        float64
	T0, Delta     float64
	NoFillers     bool
	Seed          int64
	Init          string
	Optimizer     string
	Schedule      string
	Precondition  bool
	Workers       int
	// Flow shape: which stages ran after global placement.
	GPOnly       bool
	SkipDetailed bool
	UseTetris    bool
	// Guard shape: a guard rollback replays iterations from a snapshot, so
	// guarded and unguarded runs of the same spec may produce different bits.
	Guard        bool
	GuardRetries int
}

// Key condenses the fingerprint to the uint64 half of the cache key (FNV-64a
// over an unambiguous textual rendering of every field).
func (f ConfigFingerprint) Key() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "m=%s|g=%dx%d|td=%x|it=%d|so=%x|g0=%x|t0=%x|dl=%x|nf=%t|s=%d|in=%s|op=%s|sc=%s|pc=%t|w=%d|go=%t|sd=%t|ut=%t|gd=%t|gr=%d",
		f.Model, f.GridX, f.GridY, f.TargetDensity, f.MaxIters, f.StopOverflow,
		f.Gamma0, f.T0, f.Delta, f.NoFillers, f.Seed, f.Init, f.Optimizer,
		f.Schedule, f.Precondition, f.Workers, f.GPOnly, f.SkipDetailed, f.UseTetris,
		f.Guard, f.GuardRetries)
	return h.Sum64()
}
