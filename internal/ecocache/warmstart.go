package ecocache

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/netlist"
)

// WarmStartOptions tunes the near-hit planner. Zero values pick defaults.
type WarmStartOptions struct {
	// MaxTouchedFrac is the delta-size threshold: when the diff touches more
	// than this fraction of the child's movable cells, the plan falls back
	// to a cold start (default 0.05, per the locality result the warm-start
	// quality bound is tested against).
	MaxTouchedFrac float64
	// Hops is the blast-region expansion depth beyond the directly touched
	// cells (default 1).
	Hops int
}

func (o WarmStartOptions) withDefaults() WarmStartOptions {
	if o.MaxTouchedFrac <= 0 {
		o.MaxTouchedFrac = 0.05
	}
	if o.Hops <= 0 {
		o.Hops = 1
	}
	return o
}

// WarmStart is a ready-to-run partial-release plan: the child design's
// positions have been seeded from the parent placement, and Freeze marks the
// cells the placer must keep pinned (everything outside the blast region).
type WarmStart struct {
	// Freeze is the per-cell mask for placer.Config.Freeze.
	Freeze []bool
	// Released counts movable cells left free; Frozen the pinned remainder.
	Released, Frozen int
	// TouchedFrac is the diff size that qualified this plan as a near hit.
	TouchedFrac float64
	// Delta is the structural diff the plan came from.
	Delta *netlist.Delta
}

// PlanWarmStart decides whether child can be served as a near hit off the
// parent's cached placement and, when it can, mutates child in place: every
// matched movable cell takes the parent's final position, added cells are
// centroid-seeded, and the returned Freeze mask releases only the delta's
// blast region. Returns (nil, reason) when the job should cold-start instead:
// the delta is empty (caller should have seen an exact hash hit), too large,
// or the parent result does not cover the parent design.
func PlanWarmStart(parent *checkpoint.PlacementResult, parentD, childD *netlist.Design, opts WarmStartOptions) (*WarmStart, string) {
	opts = opts.withDefaults()
	if len(parent.X) != parentD.NumCells() {
		return nil, fmt.Sprintf("parent result covers %d cells, parent design has %d", len(parent.X), parentD.NumCells())
	}
	dl := netlist.Diff(parentD, childD)
	if dl.Empty() {
		return nil, "empty delta"
	}
	frac := dl.TouchedFraction(childD)
	if frac > opts.MaxTouchedFrac {
		return nil, fmt.Sprintf("delta touches %.1f%% of movable cells (threshold %.1f%%)", 100*frac, 100*opts.MaxTouchedFrac)
	}
	release := dl.BlastRegion(childD, opts.Hops)
	ws := &WarmStart{Freeze: make([]bool, childD.NumCells()), TouchedFrac: frac, Delta: dl}
	for i, c := range childD.Cells {
		if !c.Kind.Moves() {
			continue
		}
		if release[i] {
			ws.Released++
		} else {
			ws.Freeze[i] = true
			ws.Frozen++
		}
	}
	if ws.Released == 0 {
		return nil, "delta releases no movable cells"
	}
	dl.WarmPositions(parent.X, parent.Y, childD)
	return ws, ""
}
