package ecocache

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

func synthDesign(t testing.TB, cells int) *netlist.Design {
	t.Helper()
	d, err := synth.Generate(synth.Spec{
		Name:           "eco-test",
		NumMovable:     cells,
		NumPads:        8,
		NumFixedBlocks: 1,
		NumNets:        cells + cells/10,
		AvgDegree:      3.8,
		Utilization:    0.7,
		TargetDensity:  1.0,
		Seed:           17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func gpConfig() placer.Config {
	m, _ := wirelength.ByName("ME")
	cfg := placer.DefaultConfig(m)
	cfg.MaxIters = 600
	cfg.StopOverflow = 0.10
	return cfg
}

func resultOf(d *netlist.Design, res *placer.Result) *checkpoint.PlacementResult {
	return &checkpoint.PlacementResult{
		HPWL:       res.HPWL,
		Overflow:   res.Overflow,
		Iterations: res.Iterations,
		Seconds:    res.Seconds,
		X:          append([]float64(nil), d.X...),
		Y:          append([]float64(nil), d.Y...),
	}
}

func TestPlanWarmStartRejectsLargeAndEmptyDeltas(t *testing.T) {
	parentD := synthDesign(t, 300)
	parent := &checkpoint.PlacementResult{
		X: append([]float64(nil), parentD.X...),
		Y: append([]float64(nil), parentD.Y...),
	}

	if ws, reason := PlanWarmStart(parent, parentD, parentD.Clone(), WarmStartOptions{}); ws != nil || reason != "empty delta" {
		t.Fatalf("empty delta accepted: %v %q", ws, reason)
	}

	big, err := netlist.Perturb(parentD, netlist.Perturbation{Seed: 3, CellFrac: 0.5, NetFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ws, _ := PlanWarmStart(parent, parentD, big, WarmStartOptions{}); ws != nil {
		t.Fatal("half-design delta accepted as a near hit")
	}

	short := &checkpoint.PlacementResult{X: []float64{1}, Y: []float64{1}}
	if ws, _ := PlanWarmStart(short, parentD, big, WarmStartOptions{}); ws != nil {
		t.Fatal("undersized parent result accepted")
	}
}

func TestPlanWarmStartSeedsPositionsAndFreezesRest(t *testing.T) {
	parentD := synthDesign(t, 600)
	cfg := gpConfig()
	res, err := placer.Place(parentD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parent := resultOf(parentD, res)

	child, err := netlist.Perturb(parentD, netlist.Perturbation{Seed: 5, CellFrac: 0.01, NetFrac: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	ws, reason := PlanWarmStart(parent, parentD, child, WarmStartOptions{})
	if ws == nil {
		t.Fatalf("near hit rejected: %s", reason)
	}
	if ws.Released == 0 || ws.Frozen == 0 {
		t.Fatalf("degenerate release split: %+v", ws)
	}
	if ws.TouchedFrac <= 0 || ws.TouchedFrac > 0.05 {
		t.Fatalf("TouchedFrac = %g", ws.TouchedFrac)
	}
	// Every frozen matched cell must carry the parent's final position.
	for i, frozen := range ws.Freeze {
		if !frozen {
			continue
		}
		pi := ws.Delta.CellMap[i]
		if pi < 0 {
			t.Fatalf("added cell %d was frozen", i)
		}
		if child.X[i] != parent.X[pi] || child.Y[i] != parent.Y[pi] {
			t.Fatalf("frozen cell %d not at parent position", i)
		}
	}
}

// TestWarmStartQualityVsCold pins the PR's acceptance criterion: a <=5%-of-
// cells perturbation served as a near-hit warm start reaches within 1% of the
// cold-start final HPWL in at most 40% of the cold-start GP iterations.
func TestWarmStartQualityVsCold(t *testing.T) {
	parentD := synthDesign(t, 600)
	cfg := gpConfig()
	parentRes, err := placer.Place(parentD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parent := resultOf(parentD, parentRes)

	child, err := netlist.Perturb(parentD, netlist.Perturbation{Seed: 7, CellFrac: 0.01, NetFrac: 0.004})
	if err != nil {
		t.Fatal(err)
	}

	coldD := child.Clone()
	coldRes, err := placer.Place(coldD, gpConfig())
	if err != nil {
		t.Fatal(err)
	}

	warmD := child.Clone()
	ws, reason := PlanWarmStart(parent, parentD, warmD, WarmStartOptions{})
	if ws == nil {
		t.Fatalf("perturbation not served as near hit: %s", reason)
	}
	warmCfg := gpConfig()
	warmCfg.Init = "keep"
	warmCfg.Freeze = ws.Freeze
	warmRes, err := placer.Place(warmD, warmCfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("cold: HPWL %.0f in %d iters; warm: HPWL %.0f in %d iters (touched %.2f%%, released %d, frozen %d)",
		coldRes.HPWL, coldRes.Iterations, warmRes.HPWL, warmRes.Iterations,
		100*ws.TouchedFrac, ws.Released, ws.Frozen)

	if warmRes.HPWL > 1.01*coldRes.HPWL {
		t.Errorf("warm HPWL %.0f exceeds cold %.0f by more than 1%%", warmRes.HPWL, coldRes.HPWL)
	}
	if maxIters := (coldRes.Iterations * 40) / 100; warmRes.Iterations > maxIters {
		t.Errorf("warm start took %d iterations, budget is %d (40%% of cold's %d)",
			warmRes.Iterations, maxIters, coldRes.Iterations)
	}
	// Frozen cells must be bit-identical to the parent placement.
	for i, frozen := range ws.Freeze {
		if frozen {
			pi := ws.Delta.CellMap[i]
			if warmD.X[i] != parent.X[pi] || warmD.Y[i] != parent.Y[pi] {
				t.Fatalf("frozen cell %d moved during warm start", i)
			}
		}
	}
}
