package ecocache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/netlist"
)

func testKey(b byte, cfg uint64) Key {
	var h netlist.Hash
	for i := range h {
		h[i] = b
	}
	return Key{Design: h, Config: cfg}
}

func testResult(n int, seed float64) *checkpoint.PlacementResult {
	r := &checkpoint.PlacementResult{HPWL: 100 * seed, Iterations: 42, Seconds: 1.5}
	for i := 0; i < n; i++ {
		r.X = append(r.X, seed+float64(i))
		r.Y = append(r.Y, seed-float64(i))
	}
	return r
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1, 7)
	if c.Get(key) != nil {
		t.Fatal("empty cache returned a result")
	}
	want := testResult(5, 3)
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got := c.Get(key)
	if got == nil {
		t.Fatal("stored entry not found")
	}
	for i := range want.X {
		if got.X[i] != want.X[i] || got.Y[i] != want.Y[i] {
			t.Fatalf("position %d not bit-identical", i)
		}
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2, 9)
	if err := c.Put(key, testResult(3, 1)); err != nil {
		t.Fatal(err)
	}
	// A foreign file in the directory must not break recovery.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", st.Entries)
	}
	if r := c2.Get(key); r == nil || r.HPWL != 100 {
		t.Fatalf("reopened cache lost the entry: %+v", r)
	}
}

func TestCacheDropsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3, 11)
	if err := c.Put(key, testResult(4, 2)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.fileName())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Get(key) != nil {
		t.Fatal("cache served a corrupt entry")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("corrupt entry not dropped: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file left on disk")
	}
}

func TestCacheEvictsLRUByEntries(t *testing.T) {
	c, err := Open(t.TempDir(), Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := testKey(1, 1), testKey(2, 2), testKey(3, 3)
	for _, k := range []Key{k1, k2} {
		if err := c.Put(k, testResult(2, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k1 so k2 is the LRU victim.
	if c.Get(k1) == nil {
		t.Fatal("k1 missing")
	}
	if err := c.Put(k3, testResult(2, 1)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if c.Get(k2) != nil {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if c.Get(k1) == nil || c.Get(k3) == nil {
		t.Fatal("wrong entry evicted")
	}
}

func TestCacheEvictsByBytes(t *testing.T) {
	big := testResult(1000, 1)
	size := int64(len(checkpoint.EncodeResult(big)))
	c, err := Open(t.TempDir(), Options{MaxEntries: 100, MaxBytes: size + size/2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(1, 1), big); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(testKey(2, 2), big); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes > size+size/2 {
		t.Fatalf("byte bound not enforced: %+v (entry size %d)", st, size)
	}
}

func TestKeyFileNameRoundTrip(t *testing.T) {
	key := testKey(0xab, 0x1234567890abcdef)
	got, ok := parseFileName(key.fileName())
	if !ok || got != key {
		t.Fatalf("parseFileName(%q) = %v, %t", key.fileName(), got, ok)
	}
	for _, bad := range []string{"x.place", "notes.txt", "deadbeef-0.place"} {
		if _, ok := parseFileName(bad); ok {
			t.Errorf("parseFileName accepted %q", bad)
		}
	}
}

func TestConfigFingerprintKeySensitivity(t *testing.T) {
	base := ConfigFingerprint{Model: "ME", GridX: 64, GridY: 64, MaxIters: 500, Seed: 1, Workers: 4}
	k := base.Key()
	edits := map[string]func(*ConfigFingerprint){
		"model":     func(f *ConfigFingerprint) { f.Model = "WA" },
		"grid":      func(f *ConfigFingerprint) { f.GridX = 128 },
		"iters":     func(f *ConfigFingerprint) { f.MaxIters = 400 },
		"seed":      func(f *ConfigFingerprint) { f.Seed = 2 },
		"workers":   func(f *ConfigFingerprint) { f.Workers = 8 },
		"gponly":    func(f *ConfigFingerprint) { f.GPOnly = true },
		"schedule":  func(f *ConfigFingerprint) { f.Schedule = "tangent" },
		"precond":   func(f *ConfigFingerprint) { f.Precondition = true },
		"nofillers": func(f *ConfigFingerprint) { f.NoFillers = true },
		"guard":     func(f *ConfigFingerprint) { f.Guard = true },
	}
	for name, edit := range edits {
		f := base
		edit(&f)
		if f.Key() == k {
			t.Errorf("edit %q did not change the config key", name)
		}
	}
	if base.Key() != k {
		t.Fatal("config key is not deterministic")
	}
}
