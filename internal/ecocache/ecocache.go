// Package ecocache is the serving fast path for resubmitted placement jobs:
// a durable, size-bounded cache of finished placements keyed by (design
// content hash, config fingerprint), plus the warm-start planner that turns a
// near-hit — a small netlist delta against a cached parent — into a partial
// release for the placer (parent positions kept, only the delta's blast
// region unfrozen).
//
// Entries are one file each in the cache directory, written atomically
// (temp + rename) in the checkpoint result codec, so a crash mid-write never
// corrupts an entry and a daemon restart recovers the cache by scanning the
// directory. Eviction is LRU over a logical clock seeded from file mtimes,
// bounded by both entry count and total bytes.
package ecocache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/netlist"
)

// Key identifies one cached placement: the canonical design hash plus the
// semantic config fingerprint of the run that produced it.
type Key struct {
	Design netlist.Hash
	Config uint64
}

// fileName is the on-disk name of an entry: design hash then config key, both
// hex, joined so a directory listing reconstructs the full key.
func (k Key) fileName() string {
	return fmt.Sprintf("%s-%016x.place", k.Design.String(), k.Config)
}

// parseFileName inverts fileName; ok is false for foreign files.
func parseFileName(name string) (Key, bool) {
	base, found := strings.CutSuffix(name, ".place")
	if !found {
		return Key{}, false
	}
	dot := strings.LastIndexByte(base, '-')
	if dot != 64 || len(base) != 64+1+16 {
		return Key{}, false
	}
	h, err := netlist.ParseHash(base[:64])
	if err != nil {
		return Key{}, false
	}
	var cfg uint64
	if _, err := fmt.Sscanf(base[65:], "%016x", &cfg); err != nil {
		return Key{}, false
	}
	return Key{Design: h, Config: cfg}, true
}

// Options bounds the cache. Zero values select the defaults.
type Options struct {
	// MaxEntries caps the number of cached placements (default 256).
	MaxEntries int
	// MaxBytes caps the total size of entry files (default 256 MiB).
	MaxBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 256
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	return o
}

// entry is the in-memory index record for one cached file.
type entry struct {
	size int64
	used int64 // logical LRU clock; larger = more recent
}

// Cache is a durable placement-result cache. All methods are safe for
// concurrent use.
type Cache struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[Key]*entry
	bytes   int64
	clock   int64
}

// Open loads (or creates) the cache rooted at dir, recovering the index from
// the files already present. Unparseable file names are ignored; undecodable
// entries are dropped lazily on first Get.
func Open(dir string, opts Options) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ecocache: %w", err)
	}
	c := &Cache{dir: dir, opts: opts.withDefaults(), entries: make(map[Key]*entry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ecocache: %w", err)
	}
	type seeded struct {
		key Key
		e   *entry
		mod time.Time
	}
	var found []seeded
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		key, ok := parseFileName(de.Name())
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, seeded{key, &entry{size: info.Size()}, info.ModTime()})
	}
	// Seed the LRU clock from mtimes: oldest file gets the smallest tick.
	sort.Slice(found, func(a, b int) bool { return found[a].mod.Before(found[b].mod) })
	for _, s := range found {
		c.clock++
		s.e.used = c.clock
		c.entries[s.key] = s.e
		c.bytes += s.e.size
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

// Get returns the cached placement for key, or nil when absent. A file that
// fails to decode (truncation, corruption, foreign version) is removed and
// reported as a miss — the cache never serves a damaged placement.
func (c *Cache) Get(key Key) *checkpoint.PlacementResult {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.clock++
		e.used = c.clock
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	path := filepath.Join(c.dir, key.fileName())
	data, err := os.ReadFile(path)
	if err == nil {
		var r *checkpoint.PlacementResult
		if r, err = checkpoint.DecodeResult(data); err == nil {
			// Touch the file so the durable LRU order survives a restart.
			now := time.Now()
			os.Chtimes(path, now, now) //nolint:errcheck // best-effort
			return r
		}
	}
	c.mu.Lock()
	c.dropLocked(key)
	c.mu.Unlock()
	return nil
}

// Put stores a placement under key, atomically, and evicts past the bounds.
func (c *Cache) Put(key Key, r *checkpoint.PlacementResult) error {
	data := checkpoint.EncodeResult(r)
	path := filepath.Join(c.dir, key.fileName())
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("ecocache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // cleanup
		return fmt.Errorf("ecocache: %w", werr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.size
	}
	c.clock++
	c.entries[key] = &entry{size: int64(len(data)), used: c.clock}
	c.bytes += int64(len(data))
	c.evictLocked()
	return nil
}

// dropLocked removes one entry and its file. Caller holds c.mu.
func (c *Cache) dropLocked(key Key) {
	if e, ok := c.entries[key]; ok {
		c.bytes -= e.size
		delete(c.entries, key)
		os.Remove(filepath.Join(c.dir, key.fileName())) //nolint:errcheck // best-effort
	}
}

// evictLocked drops least-recently-used entries until both bounds hold.
// Caller holds c.mu.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.opts.MaxEntries || c.bytes > c.opts.MaxBytes {
		var victim Key
		oldest := int64(1<<63 - 1)
		for k, e := range c.entries {
			if e.used < oldest {
				oldest = e.used
				victim = k
			}
		}
		if oldest == 1<<63-1 {
			return
		}
		c.dropLocked(victim)
	}
}

// Stats reports the cache's current footprint.
type Stats struct {
	Entries int
	Bytes   int64
}

// Stats returns the current entry count and total stored bytes.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: len(c.entries), Bytes: c.bytes}
}
