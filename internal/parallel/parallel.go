// Package parallel provides the shared worker-pool primitives used by the
// wirelength and density subsystems: contiguous-range fan-out over a fixed
// worker count and deterministic (worker-ordered) floating-point reductions.
//
// Determinism contract: for a fixed worker count the range partition is a
// pure function of (workers, n), so every element is processed by the same
// worker with the same chunk boundaries on every call. Reductions that sum
// per-worker partials in worker index order therefore produce bit-identical
// results across runs; only changing the worker count reassociates the
// floating-point sums (within ~1e-15 relative).
package parallel

import "sync"

// clampWorkers bounds workers to [1, n] so every active worker owns at least
// one element.
func clampWorkers(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Active returns the number of workers that For/SumOrdered actually run for
// a range of n elements: min(workers, n), at least 1. Callers that maintain
// per-worker scratch reduce over exactly this many partials.
func Active(workers, n int) int { return clampWorkers(workers, n) }

// For splits [0, n) into one contiguous chunk per worker and calls
// fn(w, lo, hi) for each, concurrently when workers > 1. The worker index w
// ranges over [0, Active(workers, n)), so per-worker scratch indexed by w is
// race-free. workers <= 1 (or n <= 1) runs fn inline on the caller's
// goroutine with the full range — the exact serial path, no goroutines.
func For(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// SumOrdered computes per-worker partial sums over [0, n) concurrently and
// reduces them in worker index order, so the result is deterministic for a
// fixed worker count. workers <= 1 reduces to a single inline fn call.
func SumOrdered(workers, n int, fn func(w, lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		return fn(0, 0, n)
	}
	partials := make([]float64, workers)
	For(workers, n, func(w, lo, hi int) {
		partials[w] = fn(w, lo, hi)
	})
	sum := 0.0
	for _, p := range partials {
		sum += p
	}
	return sum
}
