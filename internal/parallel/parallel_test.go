package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 31, 100} {
			hits := make([]int32, n)
			For(workers, n, func(w, lo, hi int) {
				if w < 0 || w >= Active(workers, n) {
					t.Errorf("workers=%d n=%d: worker index %d out of range", workers, n, w)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: element %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSerialRunsInline(t *testing.T) {
	calls := 0
	For(1, 10, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("serial call got (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial For made %d calls", calls)
	}
}

func TestSumOrderedDeterministic(t *testing.T) {
	n := 1000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * 1e3
	}
	sum := func(w, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	serial := SumOrdered(1, n, sum)
	for _, workers := range []int{2, 3, 7} {
		a := SumOrdered(workers, n, sum)
		b := SumOrdered(workers, n, sum)
		if a != b {
			t.Fatalf("workers=%d: repeated SumOrdered differs: %v vs %v", workers, a, b)
		}
		if rel := math.Abs(a-serial) / math.Max(1, math.Abs(serial)); rel > 1e-12 {
			t.Fatalf("workers=%d: parallel sum %v too far from serial %v (rel %g)", workers, a, serial, rel)
		}
	}
}
