package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %g, want 5", d)
	}
	if d := p.ManhattanDist(q); math.Abs(d-7) > 1e-12 {
		t.Errorf("ManhattanDist = %g, want 7", d)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{1, 2, 5, 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.W() != 4 || r.H() != 2 {
		t.Errorf("W/H = %g/%g", r.W(), r.H())
	}
	if r.Area() != 8 {
		t.Errorf("Area = %g", r.Area())
	}
	if r.Empty() {
		t.Error("Empty = true for non-empty rect")
	}
	if c := r.Center(); c != (Point{2, 1}) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Point{4, 2}) {
		t.Error("Contains should be inclusive of boundary")
	}
	if r.Contains(Point{4.01, 2}) {
		t.Error("Contains outside point")
	}
}

func TestEmptyRect(t *testing.T) {
	r := Rect{3, 3, 3, 5} // zero width
	if !r.Empty() {
		t.Error("zero-width rect should be empty")
	}
	if r.Area() != 0 {
		t.Errorf("empty rect area = %g", r.Area())
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got := a.Intersect(b)
	want := Rect{2, 2, 4, 4}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if ov := a.OverlapArea(b); ov != 4 {
		t.Errorf("OverlapArea = %g, want 4", ov)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Errorf("Union = %v", u)
	}
	// Union with empty ignores the empty operand.
	e := Rect{1, 1, 1, 1}
	if u2 := a.Union(e); u2 != a {
		t.Errorf("Union with empty = %v, want %v", u2, a)
	}
	if u3 := e.Union(a); u3 != a {
		t.Errorf("empty.Union = %v, want %v", u3, a)
	}
}

func TestRectOverlapsDisjoint(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{1, 0, 2, 1} // touching edge: no positive-area overlap
	if a.Overlaps(b) {
		t.Error("edge-touching rects should not overlap")
	}
	if a.OverlapArea(b) != 0 {
		t.Error("edge-touching rects overlap area != 0")
	}
}

func TestRectTranslateExpandContainsRect(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.Translate(1, -1); got != (Rect{1, -1, 3, 1}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Expand(0.5); got != (Rect{-0.5, -0.5, 2.5, 2.5}) {
		t.Errorf("Expand = %v", got)
	}
	if !(Rect{-1, -1, 3, 3}).ContainsRect(r) {
		t.Error("ContainsRect false negative")
	}
	if (Rect{0.5, 0, 2, 2}).ContainsRect(r) {
		t.Error("ContainsRect false positive")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %g", iv.Len())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(5.1) {
		t.Error("Contains boundary behaviour wrong")
	}
	if iv.Clamp(0) != 2 || iv.Clamp(9) != 5 || iv.Clamp(3) != 3 {
		t.Error("Clamp wrong")
	}
	x := iv.Intersect(Interval{4, 9})
	if x != (Interval{4, 5}) {
		t.Errorf("Intersect = %v", x)
	}
	d := iv.Intersect(Interval{6, 9})
	if d.Len() >= 0 {
		t.Errorf("disjoint intersect should have negative length, got %v", d)
	}
}

// Property: intersection area is symmetric and never exceeds either area.
func TestOverlapAreaProperties(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) bool {
		// Map unbounded floats into a sane range to avoid inf/NaN noise.
		m := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := NewRect(m(ax1), m(ay1), m(ax2), m(ay2))
		b := NewRect(m(bx1), m(by1), m(bx2), m(by2))
		ov1 := a.OverlapArea(b)
		ov2 := b.OverlapArea(a)
		if ov1 != ov2 {
			return false
		}
		return ov1 <= a.Area()+1e-9 && ov1 <= b.Area()+1e-9 && ov1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clamping is idempotent and lands inside the interval.
func TestClampProperties(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
