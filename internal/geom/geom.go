// Package geom provides small geometric primitives shared across the placer:
// points, rectangles, and closed intervals on float64 coordinates.
//
// Coordinates follow the usual placement convention: x grows rightward,
// y grows upward, and a Rect is defined by its lower-left and upper-right
// corners.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [XL,XH] x [YL,YH].
type Rect struct {
	XL, YL, XH, YH float64
}

// NewRect builds a rectangle from any two opposite corners.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

// W returns the width of r. Negative widths indicate an empty rectangle.
func (r Rect) W() float64 { return r.XH - r.XL }

// H returns the height of r.
func (r Rect) H() float64 { return r.YH - r.YL }

// Area returns the area of r, or 0 if r is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r has non-positive extent in either dimension.
func (r Rect) Empty() bool { return r.XH <= r.XL || r.YH <= r.YL }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.XL + r.XH) / 2, (r.YL + r.YH) / 2} }

// Contains reports whether p lies inside r (inclusive boundaries).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.XL && p.X <= r.XH && p.Y >= r.YL && p.Y <= r.YH
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.XL >= r.XL && s.XH <= r.XH && s.YL >= r.YL && s.YH <= r.YH
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		XL: math.Max(r.XL, s.XL),
		YL: math.Max(r.YL, s.YL),
		XH: math.Min(r.XH, s.XH),
		YH: math.Min(r.YH, s.YH),
	}
}

// Union returns the bounding box of r and s. Empty rectangles are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		XL: math.Min(r.XL, s.XL),
		YL: math.Min(r.YL, s.YL),
		XH: math.Max(r.XH, s.XH),
		YH: math.Max(r.YH, s.YH),
	}
}

// Overlaps reports whether r and s share positive area.
func (r Rect) Overlaps(s Rect) bool {
	return r.XL < s.XH && s.XL < r.XH && r.YL < s.YH && s.YL < r.YH
}

// OverlapArea returns the area shared by r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.XL + dx, r.YL + dy, r.XH + dx, r.YH + dy}
}

// Expand returns r grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{r.XL - m, r.YL - m, r.XH + m, r.YH + m}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.XL, r.XH, r.YL, r.YH)
}

// Clamp returns v limited to [lo, hi]. It assumes lo <= hi.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Interval is a closed interval [Lo, Hi] on one axis.
type Interval struct {
	Lo, Hi float64
}

// Len returns the interval length (possibly negative when invalid).
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v is inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Clamp limits v to the interval.
func (iv Interval) Clamp(v float64) float64 { return Clamp(v, iv.Lo, iv.Hi) }

// Intersect returns the overlap of two intervals (Hi < Lo when disjoint).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}
