// Package faultinject provides a deterministic, seed-driven fault plan for
// exercising the placer's recovery paths: divergence guard rollback,
// checkpoint write retry, and service-level panic isolation.
//
// A Plan is a set of scheduled Faults, each bound to an injection Site (a
// named hook point in wirelength, density, checkpoint, or service code).
// Production code never imports this package; instead each instrumented
// package exposes a plain nil-checked hook variable (wirelength.GradHook,
// density.SolveHook, checkpoint.WriteHook, ...) and tests install closures
// that consult a Plan. The hot path pays one nil check when no plan is
// armed, and there are no build tags to keep in sync.
//
// Determinism: a Fault fires on exact visit counts (After+1 .. After+Times
// arrivals at its Site), and FromSeed derives any randomized injection
// points from a fixed seed, so every failing schedule is reproducible from
// (seed, plan) alone.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Site names a hook point where a fault can be injected.
type Site string

// The injection sites wired up by this repo's test hooks.
const (
	// SiteWirelengthGrad is consulted once per whole-design wirelength
	// gradient evaluation (wirelength.GradHook).
	SiteWirelengthGrad Site = "wirelength-grad"
	// SitePoissonSolve is consulted once per spectral Poisson solve
	// (density.SolveHook).
	SitePoissonSolve Site = "poisson-solve"
	// SiteCheckpointWrite is consulted once per checkpoint write attempt
	// (checkpoint.WriteHook), before any bytes land on disk.
	SiteCheckpointWrite Site = "checkpoint-write"
	// SiteServiceRun is consulted once per job execution at the top of the
	// service worker's run function.
	SiteServiceRun Site = "service-run"
)

// Mode says what the injected fault does at its site.
type Mode string

const (
	// ModeNaN poisons numeric outputs with NaN.
	ModeNaN Mode = "nan"
	// ModeError makes the site return a transient error.
	ModeError Mode = "error"
	// ModePoison corrupts one value of the site's output (finite garbage).
	ModePoison Mode = "poison"
	// ModePanic makes the site panic.
	ModePanic Mode = "panic"
)

// ErrInjected is the sentinel wrapped by every error this package
// fabricates, so tests can errors.Is their way past wrapping layers.
var ErrInjected = errors.New("injected fault")

// Fault schedules one Mode at one Site. It fires on the After+1-th through
// After+Times-th visits to the site; Times <= 0 means exactly once, and
// Forever makes it fire on every visit past After. Every > 0 switches to
// periodic scheduling: the fault fires on every Every-th visit past After,
// indefinitely (Times is ignored; Forever still wins).
type Fault struct {
	Site    Site
	Mode    Mode
	After   int  // visits to skip before firing
	Times   int  // number of consecutive visits to fire on (<=0 means 1)
	Every   int  // fire on every Every-th visit past After (periodic)
	Forever bool // fire on every visit past After (overrides Times/Every)
}

// fires reports whether the fault fires on the visit-th arrival (1-based).
func (f Fault) fires(visit int) bool {
	if visit <= f.After {
		return false
	}
	if f.Forever {
		return true
	}
	if f.Every > 0 {
		return (visit-f.After-1)%f.Every == 0
	}
	times := f.Times
	if times <= 0 {
		times = 1
	}
	return visit <= f.After+times
}

// Err fabricates the transient error for a ModeError firing.
func (f Fault) Err() error {
	return fmt.Errorf("faultinject: %s at %s: %w", f.Mode, f.Site, ErrInjected)
}

// Plan is a concurrency-safe set of scheduled faults with per-site visit
// counters. The zero value is unusable; use NewPlan or FromSeed.
type Plan struct {
	mu     sync.Mutex
	faults []Fault
	visits map[Site]int
	fired  map[Site]int
}

// NewPlan builds a plan from an explicit fault schedule.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{
		faults: append([]Fault(nil), faults...),
		visits: make(map[Site]int),
		fired:  make(map[Site]int),
	}
}

// FromSeed builds a plan whose faults with After < 0 get a reproducible
// injection point drawn uniformly from [0, spread) by a generator seeded
// with seed. Faults with After >= 0 are kept as given. spread < 1 is
// treated as 1.
func FromSeed(seed int64, spread int, faults ...Fault) *Plan {
	if spread < 1 {
		spread = 1
	}
	rng := rand.New(rand.NewSource(seed))
	fs := append([]Fault(nil), faults...)
	for i := range fs {
		if fs[i].After < 0 {
			fs[i].After = rng.Intn(spread)
		}
	}
	return NewPlan(fs...)
}

// Visit records one arrival at site and returns the fault that fires on
// this visit, if any. When several faults at the same site fire on the
// same visit, the first in schedule order wins.
func (p *Plan) Visit(site Site) (Fault, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.visits[site]++
	v := p.visits[site]
	for _, f := range p.faults {
		if f.Site == site && f.fires(v) {
			p.fired[site]++
			return f, true
		}
	}
	return Fault{}, false
}

// Visits returns how many times site has been visited so far.
func (p *Plan) Visits(site Site) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.visits[site]
}

// Fired returns how many faults have fired at site so far.
func (p *Plan) Fired(site Site) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[site]
}

// String summarizes the schedule, deterministically ordered, for test logs.
func (p *Plan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	parts := make([]string, len(p.faults))
	for i, f := range p.faults {
		reps := "x1"
		switch {
		case f.Forever:
			reps = "forever"
		case f.Every > 0:
			reps = fmt.Sprintf("every%d", f.Every)
		case f.Times > 1:
			reps = fmt.Sprintf("x%d", f.Times)
		}
		parts[i] = fmt.Sprintf("%s:%s@%d:%s", f.Site, f.Mode, f.After, reps)
	}
	sort.Strings(parts)
	return "plan{" + strings.Join(parts, " ") + "}"
}
