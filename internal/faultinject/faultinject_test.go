package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFaultFiresOnExactVisits(t *testing.T) {
	p := NewPlan(Fault{Site: SiteWirelengthGrad, Mode: ModeNaN, After: 2, Times: 2})
	var fired []int
	for v := 1; v <= 6; v++ {
		if _, ok := p.Visit(SiteWirelengthGrad); ok {
			fired = append(fired, v)
		}
	}
	if want := []int{3, 4}; fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired on visits %v, want %v", fired, want)
	}
	if got := p.Visits(SiteWirelengthGrad); got != 6 {
		t.Errorf("Visits = %d, want 6", got)
	}
	if got := p.Fired(SiteWirelengthGrad); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestFaultDefaultsToOnce(t *testing.T) {
	p := NewPlan(Fault{Site: SitePoissonSolve, Mode: ModePoison})
	n := 0
	for v := 0; v < 5; v++ {
		if _, ok := p.Visit(SitePoissonSolve); ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("default Times fired %d times, want 1", n)
	}
}

func TestFaultForever(t *testing.T) {
	p := NewPlan(Fault{Site: SiteCheckpointWrite, Mode: ModeError, After: 1, Forever: true})
	n := 0
	for v := 0; v < 10; v++ {
		if _, ok := p.Visit(SiteCheckpointWrite); ok {
			n++
		}
	}
	if n != 9 {
		t.Fatalf("Forever fault fired %d times after 10 visits, want 9", n)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	p := NewPlan(
		Fault{Site: SiteWirelengthGrad, Mode: ModeNaN, After: 0},
		Fault{Site: SiteServiceRun, Mode: ModePanic, After: 0},
	)
	if _, ok := p.Visit(SiteWirelengthGrad); !ok {
		t.Fatal("wirelength fault did not fire on first visit")
	}
	if p.Fired(SiteServiceRun) != 0 {
		t.Fatal("visiting one site fired another")
	}
	if f, ok := p.Visit(SiteServiceRun); !ok || f.Mode != ModePanic {
		t.Fatalf("service fault = %+v fired=%v, want panic fault", f, ok)
	}
}

func TestFromSeedIsDeterministic(t *testing.T) {
	mk := func(seed int64) *Plan {
		return FromSeed(seed, 50,
			Fault{Site: SiteWirelengthGrad, Mode: ModeNaN, After: -1},
			Fault{Site: SitePoissonSolve, Mode: ModePoison, After: -1},
			Fault{Site: SiteCheckpointWrite, Mode: ModeError, After: 7},
		)
	}
	a, b := mk(42), mk(42)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans:\n%s\n%s", a, b)
	}
	if a.faults[2].After != 7 {
		t.Errorf("explicit After was rewritten: %d", a.faults[2].After)
	}
	if a.faults[0].After < 0 || a.faults[0].After >= 50 {
		t.Errorf("randomized After out of range: %d", a.faults[0].After)
	}
	c := mk(43)
	if a.String() == c.String() {
		t.Logf("seeds 42 and 43 collided (possible but unlikely): %s", a)
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	f := Fault{Site: SiteCheckpointWrite, Mode: ModeError}
	if !errors.Is(f.Err(), ErrInjected) {
		t.Fatal("Fault.Err does not wrap ErrInjected")
	}
}

func TestPlanConcurrentVisits(t *testing.T) {
	p := NewPlan(Fault{Site: SiteCheckpointWrite, Mode: ModeError, After: 0, Forever: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Visit(SiteCheckpointWrite)
			}
		}()
	}
	wg.Wait()
	if got := p.Visits(SiteCheckpointWrite); got != 800 {
		t.Fatalf("Visits = %d, want 800", got)
	}
}

func TestFaultEveryPeriodic(t *testing.T) {
	p := NewPlan(Fault{Site: SiteServiceRun, Mode: ModeError, After: 2, Every: 3})
	var fired []int
	for v := 1; v <= 12; v++ {
		if _, ok := p.Visit(SiteServiceRun); ok {
			fired = append(fired, v)
		}
	}
	// Past After=2, every 3rd visit: 3, 6, 9, 12.
	want := []int{3, 6, 9, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
	if got := p.Fired(SiteServiceRun); got != 4 {
		t.Errorf("Fired = %d, want 4", got)
	}
	if s := p.String(); !strings.Contains(s, "every3") {
		t.Errorf("String() = %q, want every3 marker", s)
	}
}

func TestFaultForeverOverridesEvery(t *testing.T) {
	f := Fault{Site: SiteServiceRun, Mode: ModeError, Every: 5, Forever: true}
	for v := 1; v <= 7; v++ {
		if !f.fires(v) {
			t.Fatalf("Forever fault skipped visit %d", v)
		}
	}
}
