package optimizer

import (
	"math"
	"testing"
)

// quadEval is a smooth non-separable objective with enough curvature
// variation to exercise the BB step prediction and backtracking.
func quadEval(pos, grad []float64) float64 {
	val := 0.0
	n := len(pos)
	for i := range pos {
		c := 1.0 + float64(i%7)
		d := pos[i] - float64(i%3)
		val += 0.5 * c * d * d
		grad[i] = c * d
		if i+1 < n {
			val += 0.1 * pos[i] * pos[i+1]
			grad[i] += 0.1 * pos[i+1]
			grad[i+1] += 0.1 * pos[i]
		}
	}
	return val
}

func startVec(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*1.7) * 3
	}
	return x
}

// TestSnapshotRestoreBitExact runs each optimizer for a while, snapshots it,
// keeps the original going, restores a fresh optimizer from the snapshot,
// and checks that both produce bit-identical iterates from there on.
func TestSnapshotRestoreBitExact(t *testing.T) {
	const n, pre, post = 40, 25, 25
	project := func(p []float64) {
		for i := range p {
			if p[i] > 50 {
				p[i] = 50
			} else if p[i] < -50 {
				p[i] = -50
			}
		}
	}
	cases := []struct {
		name string
		make func() Stateful
	}{
		{"nesterov", func() Stateful { return NewNesterov(startVec(n), 0.1, project) }},
		{"adam", func() Stateful { return NewAdam(startVec(n), 0.05, project) }},
		{"momentum", func() Stateful { return NewMomentum(startVec(n), 0.01, 0.9, project) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.make()
			for i := 0; i < pre; i++ {
				orig.Step(quadEval)
			}
			snap := orig.Snapshot()
			if snap.Kind != tc.name {
				t.Fatalf("Snapshot Kind = %q, want %q", snap.Kind, tc.name)
			}

			resumed := tc.make()
			if err := resumed.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for i := 0; i < post; i++ {
				vo := orig.Step(quadEval)
				vr := resumed.Step(quadEval)
				if vo != vr {
					t.Fatalf("step %d: objective diverged: %v vs %v", i, vo, vr)
				}
			}
			po, pr := orig.Pos(), resumed.Pos()
			for i := range po {
				if po[i] != pr[i] {
					t.Fatalf("pos[%d] diverged after resume: %v vs %v", i, po[i], pr[i])
				}
			}
		})
	}
}

// TestSnapshotIsDeepCopy mutating the snapshot must not affect the optimizer.
func TestSnapshotIsDeepCopy(t *testing.T) {
	o := NewNesterov(startVec(8), 0.1, nil)
	o.Step(quadEval)
	snap := o.Snapshot()
	before := append([]float64(nil), o.Pos()...)
	for _, v := range snap.Vectors {
		for i := range v {
			v[i] = math.NaN()
		}
	}
	for i, v := range o.Pos() {
		if v != before[i] {
			t.Fatal("Snapshot shares memory with the optimizer")
		}
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	o := NewNesterov(startVec(8), 0.1, nil)
	good := o.Snapshot()

	wrongKind := good
	wrongKind.Kind = "adam"
	if err := o.Restore(wrongKind); err == nil {
		t.Error("Restore accepted a state of the wrong kind")
	}

	short := o.Snapshot()
	short.Vectors[2] = short.Vectors[2][:3]
	if err := o.Restore(short); err == nil {
		t.Error("Restore accepted a state with a short vector")
	}

	missing := o.Snapshot()
	missing.Scalars = missing.Scalars[:1]
	if err := o.Restore(missing); err == nil {
		t.Error("Restore accepted a state with missing scalars")
	}

	if err := o.Restore(good); err != nil {
		t.Errorf("Restore rejected its own snapshot: %v", err)
	}
}
