package optimizer

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic returns an Evaluate for f(x) = 1/2 sum c_i (x_i - b_i)^2.
func quadratic(c, b []float64) Evaluate {
	return func(pos, grad []float64) float64 {
		v := 0.0
		for i := range pos {
			d := pos[i] - b[i]
			grad[i] = c[i] * d
			v += 0.5 * c[i] * d * d
		}
		return v
	}
}

func TestNesterovMinimizesQuadratic(t *testing.T) {
	n := 50
	rng := rand.New(rand.NewSource(1))
	c := make([]float64, n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range c {
		c[i] = 0.5 + rng.Float64()*10 // condition number ~20
		b[i] = rng.NormFloat64() * 5
		x0[i] = rng.NormFloat64() * 5
	}
	o := NewNesterov(x0, 0.01, nil)
	eval := quadratic(c, b)
	for k := 0; k < 300; k++ {
		o.Step(eval)
	}
	for i, v := range o.Pos() {
		if math.Abs(v-b[i]) > 1e-3 {
			t.Fatalf("x[%d] = %g, want %g", i, v, b[i])
		}
	}
}

func TestNesterovBeatsMomentumOnIllConditioned(t *testing.T) {
	n := 40
	c := make([]float64, n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range c {
		c[i] = math.Pow(10, 3*float64(i)/float64(n-1)) // kappa = 1e3
		b[i] = 1
		x0[i] = 0
	}
	iters := 200
	eval := quadratic(c, b)

	nes := NewNesterov(x0, 1e-4, nil)
	for k := 0; k < iters; k++ {
		nes.Step(eval)
	}
	mom := NewMomentum(x0, 1e-4, 0.9, nil)
	for k := 0; k < iters; k++ {
		mom.Step(eval)
	}
	g := make([]float64, n)
	fNes := eval(nes.Pos(), g)
	fMom := eval(mom.Pos(), g)
	if fNes >= fMom {
		t.Errorf("Nesterov (%g) should beat fixed-LR momentum (%g) on ill-conditioned quadratic", fNes, fMom)
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	n := 10
	c := make([]float64, n)
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range c {
		c[i] = 1 + float64(i)
		b[i] = float64(i) - 4
		x0[i] = 10
	}
	o := NewAdam(x0, 0.2, nil)
	eval := quadratic(c, b)
	for k := 0; k < 2000; k++ {
		o.Step(eval)
	}
	for i, v := range o.Pos() {
		if math.Abs(v-b[i]) > 1e-2 {
			t.Fatalf("adam x[%d] = %g, want %g", i, v, b[i])
		}
	}
}

func TestMomentumMinimizesQuadratic(t *testing.T) {
	c := []float64{1, 2}
	b := []float64{3, -1}
	o := NewMomentum([]float64{0, 0}, 0.05, 0.8, nil)
	eval := quadratic(c, b)
	for k := 0; k < 500; k++ {
		o.Step(eval)
	}
	for i, v := range o.Pos() {
		if math.Abs(v-b[i]) > 1e-4 {
			t.Fatalf("momentum x[%d] = %g, want %g", i, v, b[i])
		}
	}
}

func TestProjectionKeepsIteratesFeasible(t *testing.T) {
	// Minimize (x-10)^2 constrained to [0, 2]: projection must hold the
	// iterate at the boundary 2.
	proj := func(pos []float64) {
		for i := range pos {
			if pos[i] < 0 {
				pos[i] = 0
			}
			if pos[i] > 2 {
				pos[i] = 2
			}
		}
	}
	eval := quadratic([]float64{1}, []float64{10})
	for _, o := range []Optimizer{
		NewNesterov([]float64{1}, 0.1, proj),
		NewMomentum([]float64{1}, 0.1, 0.9, proj),
		NewAdam([]float64{1}, 0.1, proj),
	} {
		for k := 0; k < 200; k++ {
			o.Step(eval)
		}
		if got := o.Pos()[0]; got < 0 || got > 2 {
			t.Errorf("%T iterate %g escaped [0,2]", o, got)
		}
		if got := o.Pos()[0]; math.Abs(got-2) > 1e-6 {
			t.Errorf("%T converged to %g, want boundary 2", o, got)
		}
	}
}

// The BB step prediction must adapt: on a pure quadratic with uniform
// curvature c the predicted step approaches 1/c.
func TestNesterovStepAdaptsToCurvature(t *testing.T) {
	c := 4.0
	eval := quadratic([]float64{c, c, c}, []float64{0, 0, 0})
	o := NewNesterov([]float64{1, 2, 3}, 1e-3, nil)
	for k := 0; k < 10; k++ {
		o.Step(eval)
	}
	// After convergence the estimate must persist at the curvature inverse.
	if got := o.LastStepSize(); math.Abs(got-1/c) > 1e-6 {
		t.Errorf("BB step = %g, want %g", got, 1/c)
	}
}

func TestNesterovAlphaMaxClamp(t *testing.T) {
	eval := quadratic([]float64{1e-6}, []float64{0}) // tiny curvature -> huge BB step
	o := NewNesterov([]float64{1}, 0.1, nil)
	o.AlphaMax = 0.5
	for k := 0; k < 5; k++ {
		o.Step(eval)
	}
	if o.LastStepSize() > 0.5 {
		t.Errorf("step %g exceeded AlphaMax", o.LastStepSize())
	}
}

func TestGradNorm(t *testing.T) {
	eval := quadratic([]float64{1, 1}, []float64{0, 0})
	o := NewMomentum([]float64{3, 4}, 0.1, 0, nil)
	if got := GradNorm(o, eval); math.Abs(got-5) > 1e-12 {
		t.Errorf("GradNorm = %g, want 5", got)
	}
}

// Nonconvex sanity: optimizers still descend on a Rosenbrock-like surface.
func TestNesterovDescendsRosenbrock(t *testing.T) {
	eval := func(pos, grad []float64) float64 {
		x, y := pos[0], pos[1]
		f := (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
		grad[0] = -2*(1-x) - 400*x*(y-x*x)
		grad[1] = 200 * (y - x*x)
		return f
	}
	o := NewNesterov([]float64{-1, 1}, 1e-4, nil)
	o.AlphaMax = 1e-2
	first := o.Step(eval)
	var last float64
	for k := 0; k < 3000; k++ {
		last = o.Step(eval)
	}
	if last >= first {
		t.Errorf("no descent on Rosenbrock: %g -> %g", first, last)
	}
	if last > 1 {
		t.Errorf("Rosenbrock value after 3000 iters = %g, want < 1", last)
	}
}

func BenchmarkNesterovStep(b *testing.B) {
	n := 10000
	c := make([]float64, n)
	bb := make([]float64, n)
	x0 := make([]float64, n)
	for i := range c {
		c[i] = 1 + float64(i%7)
		x0[i] = float64(i % 13)
	}
	o := NewNesterov(x0, 1e-3, nil)
	eval := quadratic(c, bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Step(eval)
	}
}
