// Package optimizer provides the first-order methods used by the global
// placer: Nesterov's accelerated gradient with Barzilai-Borwein step-size
// prediction (the ePlace optimizer), plus plain gradient descent with
// momentum and Adam for ablation studies.
//
// Optimizers operate on a flat parameter vector; the placer packs movable
// cell coordinates as [x0..xn-1, y0..yn-1]. The objective is a callback that
// fills the gradient and returns the value. An optional projection callback
// (e.g. clamping to the placement region) runs after every parameter update.
package optimizer

import "math"

// Evaluate computes the objective at pos, writes the gradient into grad
// (same length), and returns the objective value.
type Evaluate func(pos, grad []float64) float64

// Project restricts a parameter vector to the feasible set in place.
type Project func(pos []float64)

// Optimizer advances a parameter vector one iteration at a time.
type Optimizer interface {
	// Step performs one iteration and returns the objective value
	// observed during the step.
	Step(eval Evaluate) float64
	// Pos returns the current (primary) iterate. The slice is owned by
	// the optimizer; callers must copy if they mutate.
	Pos() []float64
}

// StepSizer is implemented by optimizers that can report the step size used
// by their most recent Step; observability layers record it as a convergence
// diagnostic (the Barzilai-Borwein alpha for Nesterov, the fixed learning
// rate for the baselines).
type StepSizer interface {
	LastStepSize() float64
}

// norm2 returns the Euclidean norm of x.
func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Nesterov is the ePlace flavour of Nesterov's accelerated gradient method.
// The step size is predicted from the inverse local Lipschitz estimate
//
//	alpha_k = ||v_k - v_{k-1}|| / ||grad(v_k) - grad(v_{k-1})||,
//
// and the usual two-sequence acceleration
//
//	u_{k+1} = v_k - alpha*grad(v_k)
//	a_{k+1} = (1 + sqrt(4 a_k^2 + 1))/2
//	v_{k+1} = u_{k+1} + (a_k - 1)/a_{k+1} * (u_{k+1} - u_k)
//
// is applied. An optional projection keeps iterates feasible.
type Nesterov struct {
	u, v, prevV []float64
	g, prevG    []float64
	uT, vT, gT  []float64 // backtracking trial buffers
	a           float64
	alpha0      float64 // step for the very first iteration
	AlphaMax    float64 // upper clamp on the predicted step
	// MaxBacktrack bounds the line-search re-evaluations per step
	// (ePlace's predict-and-check; 2 is the DREAMPlace default).
	MaxBacktrack int
	project      Project
	haveLastStep bool
	lastAlpha    float64
	evalCount    int
}

// NewNesterov creates the optimizer starting at x0 with initial step size
// alpha0 and an optional projection (nil for unconstrained).
func NewNesterov(x0 []float64, alpha0 float64, project Project) *Nesterov {
	n := len(x0)
	o := &Nesterov{
		u:            append([]float64(nil), x0...),
		v:            append([]float64(nil), x0...),
		prevV:        make([]float64, n),
		g:            make([]float64, n),
		prevG:        make([]float64, n),
		uT:           make([]float64, n),
		vT:           make([]float64, n),
		gT:           make([]float64, n),
		a:            1,
		alpha0:       alpha0,
		AlphaMax:     math.Inf(1),
		MaxBacktrack: 2,
		project:      project,
	}
	return o
}

// Pos returns the major iterate u.
func (o *Nesterov) Pos() []float64 { return o.u }

// LastStepSize returns the step size used by the most recent Step.
func (o *Nesterov) LastStepSize() float64 { return o.lastAlpha }

// EvalCount returns the total number of objective evaluations so far
// (including backtracking trials).
func (o *Nesterov) EvalCount() int { return o.evalCount }

// bbStep returns the Barzilai-Borwein inverse-Lipschitz estimate
// ||v1-v0|| / ||g1-g0||, or fallback when the denominator vanishes.
func bbStep(v1, v0, g1, g0 []float64, fallback float64) float64 {
	var dv, dg float64
	for i := range v1 {
		d := v1[i] - v0[i]
		dv += d * d
		e := g1[i] - g0[i]
		dg += e * e
	}
	if dg <= 0 {
		return fallback
	}
	return math.Sqrt(dv / dg)
}

// Step performs one accelerated gradient iteration with predict-and-check
// backtracking on the step size.
func (o *Nesterov) Step(eval Evaluate) float64 {
	val := eval(o.v, o.g)
	o.evalCount++

	alpha := o.alpha0
	if o.haveLastStep {
		alpha = bbStep(o.v, o.prevV, o.g, o.prevG, o.lastAlpha)
	}
	if alpha > o.AlphaMax {
		alpha = o.AlphaMax
	}
	if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		alpha = o.alpha0
	}

	aNext := (1 + math.Sqrt(4*o.a*o.a+1)) / 2
	coef := (o.a - 1) / aNext

	trial := func(step float64) {
		for i := range o.u {
			uNext := o.v[i] - step*o.g[i]
			o.vT[i] = uNext + coef*(uNext-o.u[i])
			o.uT[i] = uNext
		}
		if o.project != nil {
			o.project(o.uT)
			o.project(o.vT)
		}
	}

	trial(alpha)
	// Predict-and-check: the trial step is acceptable when the Lipschitz
	// estimate measured *across the trial move* does not shrink below the
	// step we used (ePlace uses a 0.95 safety margin).
	for bt := 0; bt < o.MaxBacktrack; bt++ {
		eval(o.vT, o.gT)
		o.evalCount++
		alphaHat := bbStep(o.vT, o.v, o.gT, o.g, alpha)
		if alphaHat >= 0.95*alpha {
			break
		}
		alpha = alphaHat
		trial(alpha)
	}
	o.lastAlpha = alpha

	copy(o.prevV, o.v)
	copy(o.prevG, o.g)
	o.haveLastStep = true
	copy(o.u, o.uT)
	copy(o.v, o.vT)
	o.a = aNext
	return val
}

// Momentum is gradient descent with classical momentum, the simplest
// baseline optimizer.
type Momentum struct {
	x, vel, g []float64
	LR        float64
	Beta      float64
	project   Project
}

// NewMomentum creates a momentum optimizer starting at x0.
func NewMomentum(x0 []float64, lr, beta float64, project Project) *Momentum {
	return &Momentum{
		x:       append([]float64(nil), x0...),
		vel:     make([]float64, len(x0)),
		g:       make([]float64, len(x0)),
		LR:      lr,
		Beta:    beta,
		project: project,
	}
}

// Pos returns the current iterate.
func (o *Momentum) Pos() []float64 { return o.x }

// LastStepSize returns the (fixed) learning rate.
func (o *Momentum) LastStepSize() float64 { return o.LR }

// Step performs one momentum update.
func (o *Momentum) Step(eval Evaluate) float64 {
	val := eval(o.x, o.g)
	for i := range o.x {
		o.vel[i] = o.Beta*o.vel[i] - o.LR*o.g[i]
		o.x[i] += o.vel[i]
	}
	if o.project != nil {
		o.project(o.x)
	}
	return val
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	x, g, m, v2 []float64
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	t           int
	project     Project
}

// NewAdam creates an Adam optimizer starting at x0 with standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(x0 []float64, lr float64, project Project) *Adam {
	return &Adam{
		x:       append([]float64(nil), x0...),
		g:       make([]float64, len(x0)),
		m:       make([]float64, len(x0)),
		v2:      make([]float64, len(x0)),
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Eps:     1e-8,
		project: project,
	}
}

// Pos returns the current iterate.
func (o *Adam) Pos() []float64 { return o.x }

// LastStepSize returns the (fixed) base learning rate.
func (o *Adam) LastStepSize() float64 { return o.LR }

// Step performs one Adam update.
func (o *Adam) Step(eval Evaluate) float64 {
	val := eval(o.x, o.g)
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := range o.x {
		o.m[i] = o.Beta1*o.m[i] + (1-o.Beta1)*o.g[i]
		o.v2[i] = o.Beta2*o.v2[i] + (1-o.Beta2)*o.g[i]*o.g[i]
		mh := o.m[i] / bc1
		vh := o.v2[i] / bc2
		o.x[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
	}
	if o.project != nil {
		o.project(o.x)
	}
	return val
}

// GradNorm evaluates the objective once at the optimizer's current position
// and returns the gradient norm; a convergence diagnostic.
func GradNorm(o Optimizer, eval Evaluate) float64 {
	g := make([]float64, len(o.Pos()))
	eval(o.Pos(), g)
	return norm2(g)
}
