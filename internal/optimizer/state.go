package optimizer

import "fmt"

// State is a serializable dump of an optimizer's internal iterate and
// history, sufficient to restore it mid-run and continue bit-exactly: a
// restored optimizer produces the same sequence of Step results as one that
// was never interrupted. The layout is optimizer-specific but uses only flat
// primitive slices, so any codec (e.g. internal/checkpoint) can frame it
// without knowing which optimizer produced it.
type State struct {
	// Kind names the producing optimizer: "nesterov", "adam", "momentum".
	Kind string
	// Scalars, Ints, Bools, Vectors hold the optimizer's state in a fixed
	// per-kind order documented on each Snapshot method.
	Scalars []float64
	Ints    []int64
	Bools   []bool
	Vectors [][]float64
}

// Stateful is implemented by optimizers that can be checkpointed mid-run.
type Stateful interface {
	Optimizer
	// Snapshot returns a deep copy of the optimizer's internal state.
	Snapshot() State
	// Restore overwrites the optimizer's state from a Snapshot taken from
	// an optimizer of the same kind and dimension.
	Restore(State) error
}

// checkShape validates the common State invariants before a Restore.
func checkShape(s State, kind string, scalars, ints, bools, vectors, dim int) error {
	if s.Kind != kind {
		return fmt.Errorf("optimizer: state is for %q, not %q", s.Kind, kind)
	}
	if len(s.Scalars) != scalars || len(s.Ints) != ints || len(s.Bools) != bools || len(s.Vectors) != vectors {
		return fmt.Errorf("optimizer: %s state has shape %d/%d/%d/%d, want %d/%d/%d/%d",
			kind, len(s.Scalars), len(s.Ints), len(s.Bools), len(s.Vectors),
			scalars, ints, bools, vectors)
	}
	for i, v := range s.Vectors {
		if len(v) != dim {
			return fmt.Errorf("optimizer: %s state vector %d has %d entries, want %d", kind, i, len(v), dim)
		}
	}
	return nil
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }

// Snapshot returns the Nesterov state. Layout: Scalars = [a, alpha0,
// alphaMax, lastAlpha]; Ints = [maxBacktrack, evalCount]; Bools =
// [haveLastStep]; Vectors = [u, v, prevV, g, prevG].
func (o *Nesterov) Snapshot() State {
	return State{
		Kind:    "nesterov",
		Scalars: []float64{o.a, o.alpha0, o.AlphaMax, o.lastAlpha},
		Ints:    []int64{int64(o.MaxBacktrack), int64(o.evalCount)},
		Bools:   []bool{o.haveLastStep},
		Vectors: [][]float64{cloneVec(o.u), cloneVec(o.v), cloneVec(o.prevV), cloneVec(o.g), cloneVec(o.prevG)},
	}
}

// Restore overwrites the Nesterov state from a snapshot.
func (o *Nesterov) Restore(s State) error {
	if err := checkShape(s, "nesterov", 4, 2, 1, 5, len(o.u)); err != nil {
		return err
	}
	o.a, o.alpha0, o.AlphaMax, o.lastAlpha = s.Scalars[0], s.Scalars[1], s.Scalars[2], s.Scalars[3]
	o.MaxBacktrack = int(s.Ints[0])
	o.evalCount = int(s.Ints[1])
	o.haveLastStep = s.Bools[0]
	copy(o.u, s.Vectors[0])
	copy(o.v, s.Vectors[1])
	copy(o.prevV, s.Vectors[2])
	copy(o.g, s.Vectors[3])
	copy(o.prevG, s.Vectors[4])
	return nil
}

// Snapshot returns the Adam state. Layout: Scalars = [lr, beta1, beta2,
// eps]; Ints = [t]; Vectors = [x, m, v2].
func (o *Adam) Snapshot() State {
	return State{
		Kind:    "adam",
		Scalars: []float64{o.LR, o.Beta1, o.Beta2, o.Eps},
		Ints:    []int64{int64(o.t)},
		Vectors: [][]float64{cloneVec(o.x), cloneVec(o.m), cloneVec(o.v2)},
	}
}

// Restore overwrites the Adam state from a snapshot.
func (o *Adam) Restore(s State) error {
	if err := checkShape(s, "adam", 4, 1, 0, 3, len(o.x)); err != nil {
		return err
	}
	o.LR, o.Beta1, o.Beta2, o.Eps = s.Scalars[0], s.Scalars[1], s.Scalars[2], s.Scalars[3]
	o.t = int(s.Ints[0])
	copy(o.x, s.Vectors[0])
	copy(o.m, s.Vectors[1])
	copy(o.v2, s.Vectors[2])
	return nil
}

// Snapshot returns the Momentum state. Layout: Scalars = [lr, beta];
// Vectors = [x, vel].
func (o *Momentum) Snapshot() State {
	return State{
		Kind:    "momentum",
		Scalars: []float64{o.LR, o.Beta},
		Vectors: [][]float64{cloneVec(o.x), cloneVec(o.vel)},
	}
}

// Restore overwrites the Momentum state from a snapshot.
func (o *Momentum) Restore(s State) error {
	if err := checkShape(s, "momentum", 2, 0, 0, 2, len(o.x)); err != nil {
		return err
	}
	o.LR, o.Beta = s.Scalars[0], s.Scalars[1]
	copy(o.x, s.Vectors[0])
	copy(o.vel, s.Vectors[1])
	return nil
}
