package quadratic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/synth"
	"repro/internal/wirelength"
)

// --- sparse / CG ---

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddDiag(0, 2)
	b.AddSym(0, 1, -1)
	b.AddSym(0, 1, -0.5) // duplicate entry must sum
	b.AddDiag(1, 2)
	b.AddDiag(2, 1)
	m := b.Build()
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	m.MulVec(y, x)
	// Row 0: 2*1 + (-1.5)*2 = -1 ; row 1: -1.5*1 + 2*2 = 2.5 ; row 2: 3.
	want := []float64{-1, 2.5, 3}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

// laplacian1D builds the SPD system of a 1-D chain with anchored ends.
func laplacian1D(n int) (*SymCSR, []float64) {
	b := NewBuilder(n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 2)
		if i+1 < n {
			b.AddSym(i, i+1, -1)
		}
	}
	// Boundary conditions: ends pulled to 0 and 1.
	rhs[n-1] = 1
	return b.Build(), rhs
}

func TestSolveCGLaplacian(t *testing.T) {
	n := 100
	m, rhs := laplacian1D(n)
	x := make([]float64, n)
	iters, res, err := m.SolveCG(x, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-9 {
		t.Errorf("residual %g after %d iters", res, iters)
	}
	// Solution is the linear ramp x_i = (i+1)/(n+1).
	for i := 0; i < n; i++ {
		want := float64(i+1) / float64(n+1)
		if math.Abs(x[i]-want) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestSolveCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 60
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddDiag(i, 4+rng.Float64())
	}
	for k := 0; k < 150; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		// Diagonally dominant: small off-diagonals.
		b.AddSym(i, j, -0.02*rng.Float64())
	}
	m := b.Build()
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	rhs := make([]float64, n)
	m.MulVec(rhs, want)
	x := make([]float64, n)
	if _, _, err := m.SolveCG(x, rhs, CGOptions{Tol: 1e-12, MaxIters: 2000}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveCGWarmStart(t *testing.T) {
	n := 50
	m, rhs := laplacian1D(n)
	x := make([]float64, n)
	m.SolveCG(x, rhs, CGOptions{Tol: 1e-12})
	// Warm-started solve from the solution should converge immediately.
	iters, _, err := m.SolveCG(x, rhs, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if iters > 1 {
		t.Errorf("warm start took %d iterations", iters)
	}
}

func TestSolveCGRejectsBadDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.AddDiag(0, 1) // diag[1] stays zero
	m := b.Build()
	x := make([]float64, 2)
	if _, _, err := m.SolveCG(x, []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("zero diagonal accepted")
	}
	if _, _, err := m.SolveCG(x, []float64{1}, CGOptions{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// --- B2B placement ---

func TestPlaceB2BReducesHPWL(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "b2b", NumMovable: 800, NumPads: 12, NumNets: 900,
		AvgDegree: 3.7, Utilization: 0.7, TargetDensity: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := wirelength.TotalHPWL(d)
	if err := PlaceB2B(d, B2BOptions{}); err != nil {
		t.Fatal(err)
	}
	after := wirelength.TotalHPWL(d)
	// Quadratic placement from a random start should slash wirelength.
	if after > before/2 {
		t.Errorf("B2B barely improved HPWL: %g -> %g", before, after)
	}
	// Everything stays in the region.
	for _, c := range d.MovableIndices() {
		if !d.Region.ContainsRect(d.CellRect(c)) {
			t.Fatalf("cell %d left the region", c)
		}
	}
	// Fixed cells stay put (pads on the periphery anchor the system).
	for i, cell := range d.Cells {
		if !cell.Kind.Moves() && (d.X[i] < d.Region.XL-1 || d.X[i] > d.Region.XH+1) {
			t.Fatalf("fixed cell %d moved", i)
		}
	}
}

func TestPlaceB2BDeterministic(t *testing.T) {
	spec := synth.Spec{
		Name: "b2bdet", NumMovable: 200, NumPads: 8, NumNets: 220,
		AvgDegree: 3.5, Utilization: 0.7, TargetDensity: 1, Seed: 5,
	}
	d1, _ := synth.Generate(spec)
	d2, _ := synth.Generate(spec)
	if err := PlaceB2B(d1, B2BOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := PlaceB2B(d2, B2BOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		if d1.X[i] != d2.X[i] || d1.Y[i] != d2.Y[i] {
			t.Fatalf("nondeterministic B2B at cell %d", i)
		}
	}
}

func TestPlaceB2BRequiresMovables(t *testing.T) {
	d, _ := synth.Generate(synth.Spec{
		Name: "nm", NumMovable: 10, NumPads: 2, NumNets: 10,
		AvgDegree: 2, Utilization: 0.5, TargetDensity: 1, Seed: 1,
	})
	for i := range d.Cells {
		d.Cells[i].Kind = 1 // Fixed
	}
	if err := PlaceB2B(d, B2BOptions{}); err == nil {
		t.Error("B2B accepted design without movables")
	}
}

// B2B rounds should be (weakly) converging: more rounds never blow up the
// wirelength.
func TestPlaceB2BMoreRoundsStable(t *testing.T) {
	spec := synth.Spec{
		Name: "rounds", NumMovable: 400, NumPads: 8, NumNets: 450,
		AvgDegree: 3.6, Utilization: 0.7, TargetDensity: 1, Seed: 6,
	}
	d2, _ := synth.Generate(spec)
	d8, _ := synth.Generate(spec)
	if err := PlaceB2B(d2, B2BOptions{Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	if err := PlaceB2B(d8, B2BOptions{Rounds: 8}); err != nil {
		t.Fatal(err)
	}
	w2 := wirelength.TotalHPWL(d2)
	w8 := wirelength.TotalHPWL(d8)
	if w8 > w2*1.05 {
		t.Errorf("8 rounds (%g) much worse than 2 rounds (%g)", w8, w2)
	}
}

func BenchmarkPlaceB2B(b *testing.B) {
	d, err := synth.Generate(synth.Spec{
		Name: "bench", NumMovable: 2000, NumPads: 16, NumNets: 2200,
		AvgDegree: 3.8, Utilization: 0.7, TargetDensity: 1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dd := d.Clone()
		if err := PlaceB2B(dd, B2BOptions{Rounds: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
