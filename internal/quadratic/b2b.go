package quadratic

import (
	"fmt"
	"math"

	"repro/internal/netlist"
)

// B2BOptions tunes the Bound2Bound placement.
type B2BOptions struct {
	// Rounds of B2B reweighting (each round rebuilds the system from the
	// current placement and solves it); default 8.
	Rounds int
	// CG configures the inner linear solves.
	CG CGOptions
	// MinDist floors pin distances in the B2B weights to keep the system
	// well conditioned (default 1.0, roughly one site).
	MinDist float64
}

// PlaceB2B computes a Bound2Bound quadratic placement of the movable cells
// (in place). The result minimizes the B2B-weighted quadratic wirelength —
// heavily overlapping, as quadratic placements are, but wirelength-aware;
// it serves as an initial placement for the nonlinear placer and as the
// classic quadratic baseline.
//
// The B2B model (Spindler et al., Kraftwerk2) decomposes each p-pin net per
// axis: the two boundary pins connect to each other and to every internal
// pin, each two-pin edge (i,j) weighted w_e * 2 / ((p-1)*|x_i - x_j|), which
// makes the quadratic form's value equal the net's HPWL at the linearization
// point.
func PlaceB2B(d *netlist.Design, opt B2BOptions) error {
	if opt.Rounds <= 0 {
		opt.Rounds = 8
	}
	if opt.MinDist <= 0 {
		opt.MinDist = 1.0
	}
	mov := d.MovableIndices()
	if len(mov) == 0 {
		return fmt.Errorf("quadratic: no movable cells")
	}
	idx := make(map[int32]int, len(mov)) // cell -> system index
	for i, c := range mov {
		idx[int32(c)] = i
	}

	for round := 0; round < opt.Rounds; round++ {
		for axis := 0; axis < 2; axis++ {
			if err := solveAxis(d, mov, idx, axis, opt); err != nil {
				return err
			}
		}
	}
	d.ClampToRegion()
	return nil
}

// solveAxis builds and solves the B2B system for one axis.
func solveAxis(d *netlist.Design, mov []int, idx map[int32]int, axis int, opt B2BOptions) error {
	n := len(mov)
	b := NewBuilder(n)
	rhs := make([]float64, n)

	pinPos := func(p netlist.Pin) float64 {
		if axis == 0 {
			return d.X[p.Cell] + p.Dx
		}
		return d.Y[p.Cell] + p.Dy
	}
	pinOffset := func(p netlist.Pin) float64 {
		if axis == 0 {
			return p.Dx
		}
		return p.Dy
	}

	// addEdge connects pins a and (b) with weight w, handling fixed cells
	// by moving their contribution to the RHS; the variable is the cell's
	// lower-left coordinate, so pin offsets shift the RHS.
	addEdge := func(pa, pb netlist.Pin, w float64) {
		ia, movA := idx[pa.Cell]
		ib, movB := idx[pb.Cell]
		oa, ob := pinOffset(pa), pinOffset(pb)
		switch {
		case movA && movB:
			b.AddDiag(ia, w)
			b.AddDiag(ib, w)
			if ia != ib {
				b.AddSym(ia, ib, -w)
			} else {
				// Two pins of the same cell: the edge is constant;
				// cancel the double-counted diagonal.
				b.AddDiag(ia, -2*w)
			}
			rhs[ia] += w * (ob - oa)
			rhs[ib] += w * (oa - ob)
		case movA:
			b.AddDiag(ia, w)
			rhs[ia] += w * (pinPos(pb) - oa)
		case movB:
			b.AddDiag(ib, w)
			rhs[ib] += w * (pinPos(pa) - ob)
		}
	}

	for e := range d.Nets {
		pins := d.NetPins(e)
		p := len(pins)
		if p < 2 {
			continue
		}
		// Boundary pins on this axis.
		lo, hi := 0, 0
		for i := 1; i < p; i++ {
			if pinPos(pins[i]) < pinPos(pins[lo]) {
				lo = i
			}
			if pinPos(pins[i]) > pinPos(pins[hi]) {
				hi = i
			}
		}
		if lo == hi {
			hi = (lo + 1) % p
		}
		we := d.Nets[e].Weight * 2 / float64(p-1)
		weight := func(a, b netlist.Pin) float64 {
			dist := math.Abs(pinPos(a) - pinPos(b))
			if dist < opt.MinDist {
				dist = opt.MinDist
			}
			return we / dist
		}
		addEdge(pins[lo], pins[hi], weight(pins[lo], pins[hi]))
		for i := range pins {
			if i == lo || i == hi {
				continue
			}
			addEdge(pins[i], pins[lo], weight(pins[i], pins[lo]))
			addEdge(pins[i], pins[hi], weight(pins[i], pins[hi]))
		}
	}

	// Anchor any completely unconnected movable (keeps SPD).
	x := make([]float64, n)
	for i, c := range mov {
		if axis == 0 {
			x[i] = d.X[c]
		} else {
			x[i] = d.Y[c]
		}
	}
	m := b.Build()
	for i := 0; i < n; i++ {
		if m.diag[i] == 0 {
			m.diag[i] = 1
			rhs[i] = x[i]
		}
	}
	if _, _, err := m.SolveCG(x, rhs, opt.CG); err != nil {
		return fmt.Errorf("quadratic: axis %d: %w", axis, err)
	}
	for i, c := range mov {
		if axis == 0 {
			d.X[c] = x[i]
		} else {
			d.Y[c] = x[i]
		}
	}
	return nil
}
