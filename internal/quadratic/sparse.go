// Package quadratic implements the quadratic-placement substrate the paper
// discusses as background (Section I): the Bound2Bound (B2B) net model of
// Kraftwerk2, which approximates HPWL by a reweighted quadratic form, solved
// with a Jacobi-preconditioned conjugate-gradient method. The placer uses it
// as an optional wirelength-aware initial placement; it also serves as the
// classic quadratic baseline family (SimPL/Kraftwerk-style) for studies.
package quadratic

import (
	"fmt"
	"math"
	"sort"
)

// triplet is one (row, col, value) matrix entry before compression.
type triplet struct {
	r, c int32
	v    float64
}

// SymCSR is a symmetric sparse matrix in compressed-sparse-row form; only
// used via multiply, so both halves are stored explicitly.
type SymCSR struct {
	n     int
	start []int32
	col   []int32
	val   []float64
	diag  []float64
}

// Builder accumulates triplets for an n-by-n symmetric matrix.
type Builder struct {
	n    int
	ts   []triplet
	diag []float64
}

// NewBuilder creates a builder for an n-dimensional system.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, diag: make([]float64, n)}
}

// AddDiag adds v to entry (i, i).
func (b *Builder) AddDiag(i int, v float64) {
	b.diag[i] += v
}

// AddSym adds v to entries (i, j) and (j, i), i != j.
func (b *Builder) AddSym(i, j int, v float64) {
	b.ts = append(b.ts, triplet{int32(i), int32(j), v}, triplet{int32(j), int32(i), v})
}

// Build compresses the triplets into CSR, summing duplicates.
func (b *Builder) Build() *SymCSR {
	sort.Slice(b.ts, func(a, c int) bool {
		if b.ts[a].r != b.ts[c].r {
			return b.ts[a].r < b.ts[c].r
		}
		return b.ts[a].c < b.ts[c].c
	})
	m := &SymCSR{
		n:     b.n,
		start: make([]int32, b.n+1),
		diag:  append([]float64(nil), b.diag...),
	}
	for i := 0; i < len(b.ts); {
		t := b.ts[i]
		v := t.v
		j := i + 1
		for j < len(b.ts) && b.ts[j].r == t.r && b.ts[j].c == t.c {
			v += b.ts[j].v
			j++
		}
		m.col = append(m.col, t.c)
		m.val = append(m.val, v)
		m.start[t.r+1]++
		i = j
	}
	for r := 0; r < b.n; r++ {
		m.start[r+1] += m.start[r]
	}
	return m
}

// N returns the dimension.
func (m *SymCSR) N() int { return m.n }

// MulVec computes y = (D + A) x where D is the diagonal part.
func (m *SymCSR) MulVec(y, x []float64) {
	for r := 0; r < m.n; r++ {
		s := m.diag[r] * x[r]
		for k := m.start[r]; k < m.start[r+1]; k++ {
			s += m.val[k] * x[m.col[k]]
		}
		y[r] = s
	}
}

// CGOptions tunes the conjugate-gradient solve.
type CGOptions struct {
	// MaxIters caps iterations (default 500).
	MaxIters int
	// Tol is the relative residual target (default 1e-6).
	Tol float64
}

// SolveCG solves (D+A) x = rhs with Jacobi preconditioning, starting from
// the provided x (a warm start). It returns the iteration count and final
// relative residual.
func (m *SymCSR) SolveCG(x, rhs []float64, opt CGOptions) (int, float64, error) {
	if len(x) != m.n || len(rhs) != m.n {
		return 0, 0, fmt.Errorf("quadratic: dimension mismatch")
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 500
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-6
	}
	inv := make([]float64, m.n)
	for i, d := range m.diag {
		if d <= 0 {
			return 0, 0, fmt.Errorf("quadratic: non-positive diagonal at %d (%g); matrix not SPD", i, d)
		}
		inv[i] = 1 / d
	}
	r := make([]float64, m.n)
	z := make([]float64, m.n)
	p := make([]float64, m.n)
	ap := make([]float64, m.n)

	m.MulVec(r, x)
	rhsNorm := 0.0
	for i := range r {
		r[i] = rhs[i] - r[i]
		rhsNorm += rhs[i] * rhs[i]
	}
	rhsNorm = math.Sqrt(rhsNorm)
	if rhsNorm == 0 {
		rhsNorm = 1
	}
	rz := 0.0
	for i := range r {
		z[i] = inv[i] * r[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	var relRes float64
	for k := 0; k < opt.MaxIters; k++ {
		rNorm := 0.0
		for i := range r {
			rNorm += r[i] * r[i]
		}
		relRes = math.Sqrt(rNorm) / rhsNorm
		if relRes < opt.Tol {
			return k, relRes, nil
		}
		m.MulVec(ap, p)
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return k, relRes, fmt.Errorf("quadratic: matrix not positive definite (pAp=%g)", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rzNew := 0.0
		for i := range r {
			z[i] = inv[i] * r[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return opt.MaxIters, relRes, nil
}
