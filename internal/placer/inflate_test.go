package placer

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/wirelength"
)

func TestInflateCongestedGrowsHotCells(t *testing.T) {
	d := testDesign(t, 400, 0)
	// Cluster everything so the center bins are congested.
	c := d.Region.Center()
	for _, i := range d.MovableIndices() {
		d.SetCenter(i, c.X, c.Y)
	}
	origArea := 0.0
	for _, i := range d.MovableIndices() {
		origArea += d.Cells[i].Area()
	}
	origW, res, err := InflateCongested(d, InflateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inflated == 0 {
		t.Fatal("clustered placement inflated nothing")
	}
	if res.AreaRatio <= 1 {
		t.Errorf("area ratio = %g, want > 1", res.AreaRatio)
	}
	// Restore brings sizes back exactly.
	RestoreSizes(d, origW)
	area := 0.0
	for _, i := range d.MovableIndices() {
		area += d.Cells[i].Area()
	}
	if area != origArea {
		t.Errorf("RestoreSizes: area %g, want %g", area, origArea)
	}
}

func TestPlaceRoutabilityImprovesCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("routability loop in -short mode")
	}
	d := testDesign(t, 500, 0)
	m, _ := wirelength.ByName("ME")
	cfg := fastConfig(m)
	cfg.MaxIters = 300

	base := d.Clone()
	if _, err := Place(base, cfg); err != nil {
		t.Fatal(err)
	}
	baseMap, _ := congestion.RUDY(base, 32, 32)
	basePeak := baseMap.ComputeStats().Peak

	res, info, err := PlaceRoutability(d, cfg, 2, InflateOptions{Threshold: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.HPWL <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	routMap, _ := congestion.RUDY(d, 32, 32)
	routPeak := routMap.ComputeStats().Peak
	// Either nothing was congested enough to inflate, or the peak should
	// not get meaningfully worse (it usually improves).
	if info != nil && info.Inflated > 0 && routPeak > basePeak*1.15 {
		t.Errorf("routability mode worsened peak congestion: %g -> %g", basePeak, routPeak)
	}
	// Cell sizes restored.
	for _, i := range d.MovableIndices() {
		if d.Cells[i].W != base.Cells[i].W {
			t.Fatalf("cell %d width not restored: %g vs %g", i, d.Cells[i].W, base.Cells[i].W)
		}
	}
}
