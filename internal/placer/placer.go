// Package placer implements ePlace-style analytical global placement: the
// wirelength model (pluggable; the paper compares LSE, WA, BiG and its
// Moreau-envelope model) plus the electrostatic density penalty, minimized
// by Nesterov's method with Barzilai-Borwein step prediction.
//
// The objective is Eq. (1) of the paper,
//
//	min_{x,y}  sum_e W_e(x, y) + lambda * D(x, y),
//
// with the smoothing parameter driven by the density overflow (the ePlace
// gamma schedule for exponential models, the paper's tangent t schedule for
// the Moreau model) and lambda driven by Eq. (15).
package placer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/density"
	"repro/internal/guard"
	"repro/internal/moreau"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/parallel"
	"repro/internal/quadratic"
	"repro/internal/wirelength"
)

// Config controls a global placement run.
type Config struct {
	// Model is the differentiable wirelength model (required).
	Model wirelength.Model
	// GridX, GridY are the density grid dimensions (powers of two);
	// zero selects them automatically from the design size.
	GridX, GridY int
	// TargetDensity overrides the design's bin density target when > 0.
	TargetDensity float64
	// MaxIters caps global placement iterations (default 1000).
	MaxIters int
	// StopOverflow ends global placement once the density overflow drops
	// below it (default 0.07, the usual ePlace target).
	StopOverflow float64
	// Gamma0 is the base multiplier of the ePlace gamma schedule
	// (default 4.0); used by LSE/WA/BiG.
	Gamma0 float64
	// T0 and Delta parameterize the paper's tangent t schedule (Eq. 14);
	// defaults 4.0 and 1e-4.
	T0, Delta float64
	// NoFillers disables whitespace filler cell insertion (fillers are
	// on by default).
	NoFillers bool
	// Seed randomizes the initial placement jitter.
	Seed int64
	// RecordEvery records a trajectory point (exact HPWL vs overflow)
	// every that many iterations; 0 disables recording.
	RecordEvery int
	// KeepPositions starts from the design's input placement instead of
	// the default ePlace center-with-jitter initialization.
	KeepPositions bool
	// Init selects the initial placement explicitly and overrides
	// KeepPositions: "center" (ePlace default), "keep" (input positions),
	// or "quadratic" (Bound2Bound quadratic placement, Kraftwerk2-style).
	Init string
	// Optimizer selects the first-order method: "nesterov" (default),
	// "adam", or "momentum" (ablation study).
	Optimizer string
	// Schedule overrides the smoothing-parameter schedule: "" picks by
	// the model's ParamKind, "gamma" forces the ePlace schedule,
	// "tangent" forces the paper's Eq. 14 schedule (ablation study).
	Schedule string
	// Precondition divides each cell's gradient by (#pins + lambda*area),
	// the DREAMPlace Jacobi preconditioner, equalizing step scales
	// between hub cells and leaf cells.
	Precondition bool
	// Workers > 1 runs the whole evaluation pipeline — the wirelength
	// model (which must be one of the named models), density stamping,
	// the spectral Poisson solve, and the field gather — on a shared
	// pool of that many goroutines. Results are deterministic for a
	// fixed worker count (per-worker partials reduce in index order) and
	// match the serial path up to floating-point addition order.
	// (The old WLWorkers alias is gone from this struct; the service
	// layer still accepts the wl_workers JSON knob and folds it into
	// Workers before the config reaches the placer.)
	Workers int
	// Obs, when non-nil, receives the run's observability streams:
	// structured logs, per-phase trace spans (one per engine phase per
	// iteration), and convergence metrics. A nil Obs — or an Obs with
	// neither tracer nor metrics — costs one pointer check per phase and
	// leaves the hot path unchanged.
	Obs *obs.Observer
	// OnIteration, when non-nil, is invoked after every optimizer
	// iteration with the current trajectory sample (exact HPWL included).
	// Returning false stops the run early; the partial result is returned
	// with a nil error and Result.Stopped set. The hook is called from the
	// placement goroutine, so it must be fast and must not block.
	OnIteration func(TrajectoryPoint) bool
	// Checkpoint enables periodic crash-safe snapshots of the run state
	// (see CheckpointConfig in resume.go).
	Checkpoint CheckpointConfig
	// Resume warm-starts the run from a snapshot instead of the usual
	// initialization. The snapshot's config fingerprint must match this
	// run (same design, grid, worker count, model, optimizer, seed);
	// otherwise PlaceContext fails with checkpoint.ErrMismatch. With a
	// matching setup the resumed run finishes bit-identical to an
	// uninterrupted one.
	Resume *checkpoint.Snapshot
	// ResumeDir warm-starts the run from the newest snapshot in this
	// directory whose config fingerprint matches the run, scanning
	// backwards past corrupt or mismatched files; when nothing matches the
	// run cold-starts (no error). Mutually exclusive with Resume.
	ResumeDir string
	// Freeze, when non-nil, must have one entry per design cell and marks
	// movable cells that this run must NOT move: an ECO warm start releases
	// only the perturbed blast region and freezes the rest. Frozen cells
	// are stamped into the density grid as fixed obstacles (so released
	// cells avoid them), excluded from the optimization vector and the
	// overflow normalization, and their nets drop out of the wirelength
	// evaluation unless a released cell shares the net (the model then runs
	// on a subset view of the netlist that shares the position arrays).
	// Entries for non-movable cells are ignored. Typically combined with
	// Init "keep" so the released cells start from the cached placement.
	Freeze []bool
	// Guard, when non-nil, enables the divergence guard: per-iteration
	// numerical-health checks (finite positions/objective, HPWL growth vs.
	// a trailing window, optional overflow-stall and step-ceiling checks)
	// with automatic rollback to an in-memory snapshot ring, step
	// shrinking with exponential backoff on repeated trips, and a typed
	// guard.DivergenceError once the retry budget is exhausted.
	// &guard.Config{} selects all defaults. A nil Guard costs one pointer
	// check per iteration and leaves results bit-identical.
	Guard *guard.Config
}

// DefaultConfig returns the standard configuration for a model.
func DefaultConfig(m wirelength.Model) Config {
	return Config{
		Model:        m,
		MaxIters:     1000,
		StopOverflow: 0.07,
		Gamma0:       4.0,
		T0:           4.0,
		Delta:        1e-4,
		Seed:         1,
	}
}

// TrajectoryPoint is one sample of the Fig. 3 curve: exact HPWL against
// density overflow during global placement.
type TrajectoryPoint struct {
	Iter      int
	Overflow  float64
	HPWL      float64
	Objective float64
	Param     float64 // smoothing parameter (gamma or t) at this iteration
	Lambda    float64
}

// Result summarizes a global placement run. All durations are measured with
// the monotonic clock (time.Since on a single start reading), so they stay
// correct across wall-clock adjustments.
type Result struct {
	HPWL        float64 // exact HPWL of the final placement
	Overflow    float64 // final density overflow
	Iterations  int
	Evaluations int // objective/gradient evaluations (incl. backtracking)
	// Seconds is the total runtime; SetupSeconds covers everything before
	// the first optimizer iteration (grid, fillers, initial placement,
	// lambda calibration) and LoopSeconds the main Nesterov loop.
	Seconds      float64
	SetupSeconds float64
	LoopSeconds  float64
	// Stopped reports that the OnIteration hook ended the run early.
	Stopped bool
	// ResumedFrom is the iteration the run was warm-started at via
	// Config.Resume (0 for a cold start).
	ResumedFrom int
	// Checkpoints counts the snapshots written during this run.
	Checkpoints int
	// ReleasedCells and FrozenCells report the partial-release split of an
	// ECO warm start: movable cells the optimizer moved vs. cells pinned by
	// Config.Freeze (FrozenCells is 0 for a full run).
	ReleasedCells int
	FrozenCells   int
	// GuardTrips, GuardRollbacks, and GuardRecoveries count divergence-
	// guard activity (all zero when Config.Guard is nil or the run stayed
	// healthy): invariant violations detected, successful rollbacks, and
	// episodes closed cleanly after their recovery window.
	GuardTrips      int
	GuardRollbacks  int
	GuardRecoveries int
	Trajectory      []TrajectoryPoint
}

// engine carries the mutable state of one global placement run.
type engine struct {
	d   *netlist.Design
	cfg Config
	// wlD is the design view the wirelength model evaluates: d itself for a
	// full run, or a net-subset view (sharing d's position arrays) holding
	// only nets with at least one released pin when Config.Freeze is set.
	wlD       *netlist.Design
	mov       []int // released movable cell indices
	numFrozen int   // movable cells pinned by Config.Freeze
	workers   int   // shared worker-pool size (>= 1)

	grid    *density.Grid
	elec    *density.Electro
	stamper *density.Stamper

	// project clamps a position vector into the placeable region.
	project func([]float64)

	// Filler cells: anonymous movable whitespace charges.
	fillerW, fillerH float64
	numFillers       int

	// Per-position-entry half-dimensions for projection and stamping:
	// entries 0..n-1 are cells (in mov order), n..n+numFillers-1 fillers.
	halfW, halfH []float64

	wgx, wgy []float64 // per-cell wirelength gradient scratch

	movableArea float64
	// overflowArea normalizes the density overflow: the full movable area
	// including frozen cells. A partial release otherwise divides the
	// design's residual overlap by the small released area, demanding a
	// density far beyond the parent placement's equilibrium and over-
	// spreading the released cells. Equals movableArea for a full run.
	overflowArea  float64
	targetDensity float64

	param    float64 // current smoothing parameter
	lambda   float64
	overflow float64

	lastEnergy float64

	// Prebuilt hot-path closures and their parameter fields: closures
	// handed to parallel.For / the stamper from inside eval would escape
	// to the heap on every call, so they are constructed once (initHotPath)
	// and read the current position/gradient vectors from pos/grad. eval
	// is never called concurrently with itself, so plain fields are safe.
	pos, grad    []float64
	evalFn       func(pos, grad []float64) float64
	fnGatherMov  func(w, lo, hi int)
	fnGatherFill func(w, lo, hi int)
	fnStampMov   func(i int) (float64, float64, float64, float64)
	fnStampFill  func(f int) (float64, float64, float64, float64)
}

// isFrozen reports whether cell i is pinned by Config.Freeze.
func (en *engine) isFrozen(i int) bool {
	return en.cfg.Freeze != nil && en.cfg.Freeze[i]
}

// autoGrid picks a power-of-two grid dimension from the design size.
func autoGrid(numMovable int) int {
	g := 32
	for g*g < numMovable && g < 512 {
		g *= 2
	}
	return g
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks cfg for errors that would otherwise surface as panics or
// late failures deep inside a run: a nil model, grid dimensions the spectral
// density solver cannot handle, and unknown enum strings.
func (cfg *Config) Validate() error {
	if cfg.Model == nil {
		return fmt.Errorf("placer: config has no wirelength model")
	}
	if cfg.GridX != 0 && !isPow2(cfg.GridX) {
		return fmt.Errorf("placer: GridX %d must be a positive power of two (or 0 for auto)", cfg.GridX)
	}
	if cfg.GridY != 0 && !isPow2(cfg.GridY) {
		return fmt.Errorf("placer: GridY %d must be a positive power of two (or 0 for auto)", cfg.GridY)
	}
	switch cfg.Optimizer {
	case "", "nesterov", "adam", "momentum":
	default:
		return fmt.Errorf("placer: unknown optimizer %q (want nesterov, adam, or momentum)", cfg.Optimizer)
	}
	switch cfg.Init {
	case "", "center", "keep", "quadratic":
	default:
		return fmt.Errorf("placer: unknown init %q (want center, keep, or quadratic)", cfg.Init)
	}
	switch cfg.Schedule {
	case "", "gamma", "tangent":
	default:
		return fmt.Errorf("placer: unknown schedule %q (want gamma or tangent)", cfg.Schedule)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("placer: Workers %d must be >= 0", cfg.Workers)
	}
	if cfg.Checkpoint.Every < 0 {
		return fmt.Errorf("placer: Checkpoint.Every %d must be >= 0", cfg.Checkpoint.Every)
	}
	if cfg.Checkpoint.Keep < 0 {
		return fmt.Errorf("placer: Checkpoint.Keep %d must be >= 0", cfg.Checkpoint.Keep)
	}
	if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Dir == "" {
		return fmt.Errorf("placer: Checkpoint.Every is set but Checkpoint.Dir is empty")
	}
	if cfg.Resume != nil && cfg.ResumeDir != "" {
		return fmt.Errorf("placer: Resume and ResumeDir are both set; pick one")
	}
	if cfg.Guard != nil {
		if err := cfg.Guard.Validate(); err != nil {
			return fmt.Errorf("placer: %w", err)
		}
	}
	return nil
}

// optName resolves the optimizer config string to its canonical name.
func optName(s string) string {
	if s == "" {
		return "nesterov"
	}
	return s
}

// effectiveWorkers resolves the worker-pool size (0 means serial).
func (cfg *Config) effectiveWorkers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return 1
}

// newEngine builds the run state of one global placement: the density grid
// and spectral solver (sized to the worker pool), fillers, per-entry half
// dimensions, the initial position vector, and the projection operator. It
// is the setup phase of PlaceContext, split out so equivalence tests and
// benchmarks can drive engine.eval directly. cfg must already carry its
// numeric defaults and a (possibly parallelized) model.
func newEngine(d *netlist.Design, cfg Config, workers int) (*engine, []float64, error) {
	if workers < 1 {
		workers = 1
	}
	en := &engine{d: d, wlD: d, cfg: cfg, mov: d.MovableIndices(), workers: workers}
	if cfg.Freeze != nil {
		if len(cfg.Freeze) != d.NumCells() {
			return nil, nil, fmt.Errorf("placer: Freeze has %d entries, design has %d cells", len(cfg.Freeze), d.NumCells())
		}
		released := en.mov[:0]
		for _, c := range en.mov {
			if cfg.Freeze[c] {
				en.numFrozen++
			} else {
				released = append(released, c)
			}
		}
		en.mov = released
	}
	if len(en.mov) == 0 {
		return nil, nil, fmt.Errorf("placer: design %q has no movable cells", d.Name)
	}
	if en.numFrozen > 0 {
		// Restrict the wirelength model to nets a released cell can still
		// change; frozen-only nets are constant and would only add noise to
		// the objective. The subset shares d's position backing arrays, so
		// unpack keeps it current for free.
		keep := make([]bool, d.NumNets())
		for _, c := range en.mov {
			for _, pi := range d.PinsOfCell(c) {
				keep[d.Pins[pi].Net] = true
			}
		}
		en.wlD = d.NetSubset(keep)
	}

	gx, gy := cfg.GridX, cfg.GridY
	if gx == 0 {
		gx = autoGrid(len(en.mov))
	}
	if gy == 0 {
		gy = gx
	}
	en.grid = density.NewGrid(d.Region, gx, gy)
	en.elec = density.NewElectroWorkers(en.grid, workers)
	en.elec.Obs = cfg.Obs
	en.stamper = density.NewStamper(en.grid, workers)

	en.targetDensity = d.TargetDensity
	if cfg.TargetDensity > 0 {
		en.targetDensity = cfg.TargetDensity
	}
	if en.targetDensity <= 0 || en.targetDensity > 1 {
		en.targetDensity = 1
	}

	for _, c := range en.mov {
		en.movableArea += d.Cells[c].Area()
	}
	en.overflowArea = en.movableArea
	for i, c := range d.Cells {
		if c.Kind.Moves() && en.isFrozen(i) {
			en.overflowArea += c.Area()
		}
	}
	// Stamp fixed cells once; frozen movable cells are obstacles too.
	for i, c := range d.Cells {
		if (c.Kind.Moves() && !en.isFrozen(i)) || c.Area() == 0 {
			continue
		}
		r := d.CellRect(i)
		en.grid.StampFixedRect(r.XL, r.YL, r.XH, r.YH, 1)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	en.setupFillers(rng)

	n := len(en.mov) + en.numFillers
	pos := make([]float64, 2*n)
	en.halfW = make([]float64, n)
	en.halfH = make([]float64, n)
	for i, c := range en.mov {
		en.halfW[i] = d.Cells[c].W / 2
		en.halfH[i] = d.Cells[c].H / 2
	}
	for f := 0; f < en.numFillers; f++ {
		en.halfW[len(en.mov)+f] = en.fillerW / 2
		en.halfH[len(en.mov)+f] = en.fillerH / 2
	}

	// Initial placement.
	initMode := cfg.Init
	if initMode == "" {
		if cfg.KeepPositions {
			initMode = "keep"
		} else {
			initMode = "center"
		}
	}
	switch initMode {
	case "center", "keep":
	case "quadratic":
		if err := quadratic.PlaceB2B(d, quadratic.B2BOptions{}); err != nil {
			return nil, nil, fmt.Errorf("placer: quadratic init: %w", err)
		}
	default:
		return nil, nil, fmt.Errorf("placer: unknown init %q (want center, keep, or quadratic)", cfg.Init)
	}
	cx, cy := d.Region.Center().X, d.Region.Center().Y
	jx := d.Region.W() * 0.001
	jy := d.Region.H() * 0.001
	for i, c := range en.mov {
		if initMode == "center" {
			pos[i] = cx + rng.NormFloat64()*jx
			pos[n+i] = cy + rng.NormFloat64()*jy
		} else {
			pos[i] = d.CenterX(c)
			pos[n+i] = d.CenterY(c)
		}
	}
	for f := 0; f < en.numFillers; f++ {
		i := len(en.mov) + f
		if en.numFrozen > 0 {
			// Partial release: the placement is already spread out, so
			// center-clustered fillers would spend the whole (short) warm
			// run migrating outward. Scatter them uniformly instead — the
			// whitespace they model is distributed across the die.
			pos[i] = d.Region.XL + rng.Float64()*d.Region.W()
			pos[n+i] = d.Region.YL + rng.Float64()*d.Region.H()
		} else {
			pos[i] = cx + rng.NormFloat64()*jx
			pos[n+i] = cy + rng.NormFloat64()*jy
		}
	}

	en.project = func(p []float64) {
		r := d.Region
		for i := 0; i < n; i++ {
			lo, hi := r.XL+en.halfW[i], r.XH-en.halfW[i]
			if hi < lo {
				lo, hi = (r.XL+r.XH)/2, (r.XL+r.XH)/2
			}
			if p[i] < lo {
				p[i] = lo
			} else if p[i] > hi {
				p[i] = hi
			}
			lo, hi = r.YL+en.halfH[i], r.YH-en.halfH[i]
			if hi < lo {
				lo, hi = (r.YL+r.YH)/2, (r.YL+r.YH)/2
			}
			if p[n+i] < lo {
				p[n+i] = lo
			} else if p[n+i] > hi {
				p[n+i] = hi
			}
		}
	}
	en.project(pos)

	en.wgx = make([]float64, d.NumCells())
	en.wgy = make([]float64, d.NumCells())
	en.initHotPath()
	return en, pos, nil
}

// initHotPath constructs the closures used by every eval once, so the
// steady-state objective/gradient evaluation performs no allocations: the
// stamping callbacks, the per-cell and per-filler field gather bodies, and
// the optimizer's evaluation function (a method value created per call would
// itself allocate).
func (en *engine) initHotPath() {
	d := en.d
	n := len(en.mov) + en.numFillers
	nm := len(en.mov)
	en.evalFn = en.eval
	en.fnStampMov = func(i int) (float64, float64, float64, float64) {
		return en.pos[i], en.pos[n+i], 2 * en.halfW[i], 2 * en.halfH[i]
	}
	en.fnStampFill = func(f int) (float64, float64, float64, float64) {
		i := nm + f
		return en.pos[i], en.pos[n+i], en.fillerW, en.fillerH
	}
	// The per-cell field gather is embarrassingly parallel: entry i writes
	// only grad[i] and grad[n+i] and reads shared immutable state, so the
	// result is worker-count independent.
	en.fnGatherMov = func(_, lo, hi int) {
		pos, grad := en.pos, en.grad
		for i := lo; i < hi; i++ {
			c := en.mov[i]
			fx, fy := en.grid.SampleSmoothed(en.elec.Ex, en.elec.Ey, pos[i], pos[n+i], 2*en.halfW[i], 2*en.halfH[i])
			grad[i] = en.wgx[c] - en.lambda*fx
			grad[n+i] = en.wgy[c] - en.lambda*fy
			if en.cfg.Precondition {
				p := float64(len(d.PinsOfCell(c))) + en.lambda*d.Cells[c].Area()
				if p < 1 {
					p = 1
				}
				grad[i] /= p
				grad[n+i] /= p
			}
		}
	}
	en.fnGatherFill = func(_, lo, hi int) {
		pos, grad := en.pos, en.grad
		fillerPre := 1.0
		if en.cfg.Precondition {
			fillerPre = en.lambda * en.fillerW * en.fillerH
			if fillerPre < 1 {
				fillerPre = 1
			}
		}
		for f := lo; f < hi; f++ {
			i := nm + f
			fx, fy := en.grid.SampleSmoothed(en.elec.Ex, en.elec.Ey, pos[i], pos[n+i], en.fillerW, en.fillerH)
			grad[i] = -en.lambda * fx / fillerPre
			grad[n+i] = -en.lambda * fy / fillerPre
		}
	}
}

// Place runs global placement on d (in place) and returns the result.
func Place(d *netlist.Design, cfg Config) (*Result, error) {
	return PlaceContext(context.Background(), d, cfg)
}

// PlaceContext is Place with cancellation: the context is checked once per
// optimizer iteration, and when it is cancelled (or its deadline passes) the
// run stops promptly, returning the partial Result alongside ctx.Err().
func PlaceContext(ctx context.Context, d *netlist.Design, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 1000
	}
	if cfg.StopOverflow <= 0 {
		cfg.StopOverflow = 0.07
	}
	if cfg.Gamma0 <= 0 {
		cfg.Gamma0 = 4.0
	}
	if cfg.T0 <= 0 {
		cfg.T0 = 4.0
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 1e-4
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("placer: %w", err)
	}
	workers := cfg.effectiveWorkers()
	o := cfg.Obs
	logger := o.Logger()
	// With metrics enabled, rebuild the named model so its kernels share one
	// branch-statistics counter; custom (unnamed) models stay untouched.
	var mstats *moreau.Stats
	if o != nil && o.Metrics != nil {
		mstats = &moreau.Stats{}
	}
	if workers > 1 {
		pm, err := wirelength.ParallelByNameStats(cfg.Model.Name(), workers, mstats)
		if err != nil {
			return nil, fmt.Errorf("placer: parallel wirelength: %w", err)
		}
		cfg.Model = pm
	} else if mstats != nil {
		if sm, err := wirelength.ByNameStats(cfg.Model.Name(), mstats); err == nil {
			cfg.Model = sm
		} else {
			mstats = nil
		}
	}
	if o != nil && o.Trace != nil {
		o.Trace.SetWorkers(workers)
	}

	start := time.Now()
	setup := o.StartPhase(obs.PhaseSetup)
	en, pos, err := newEngine(d, cfg, workers)
	if err != nil {
		return nil, err
	}

	gammaSched := GammaSchedule{Gamma0: cfg.Gamma0, BinW: en.grid.BinW, BinH: en.grid.BinH}
	tSched := TSchedule{T0: cfg.T0, Delta: cfg.Delta, BinW: en.grid.BinW, BinH: en.grid.BinH}
	useTangent := cfg.Model.ParamKind() == wirelength.ParamMoreauT
	switch cfg.Schedule {
	case "":
	case "gamma":
		useTangent = false
	case "tangent":
		useTangent = true
	default:
		return nil, fmt.Errorf("placer: unknown schedule %q (want gamma or tangent)", cfg.Schedule)
	}
	schedule := func(phi float64) float64 {
		if useTangent {
			return tSched.At(phi)
		}
		return gammaSched.At(phi)
	}

	if cfg.Resume == nil && cfg.ResumeDir != "" {
		fp := en.fingerprint()
		snap, path, lerr := checkpoint.LoadLatestMatching(cfg.ResumeDir, func(s *checkpoint.Snapshot) error {
			return fp.Match(s.Fingerprint)
		})
		switch {
		case lerr == nil:
			cfg.Resume = snap
			logger.Info("gp: resume dir matched snapshot", "path", path, "iter", snap.Iter)
		case errors.Is(lerr, checkpoint.ErrNoSnapshot):
			logger.Info("gp: resume dir has no matching snapshot; cold start", "dir", cfg.ResumeDir)
		default:
			return nil, fmt.Errorf("placer: resume dir: %w", lerr)
		}
	}

	lu := NewLambdaUpdater()
	startIter := 0
	var prevSetup, prevLoop float64
	if cfg.Resume != nil {
		// Warm start: skip initialization and lambda calibration entirely;
		// every scheduled quantity comes from the snapshot.
		if err := en.restore(pos, cfg.Resume, lu); err != nil {
			return nil, err
		}
		startIter = cfg.Resume.Iter
		prevSetup = cfg.Resume.SetupSeconds
		prevLoop = cfg.Resume.LoopSeconds
		logger.Info("gp: resuming from checkpoint", "design", d.Name, "iter", startIter, "overflow", en.overflow)
	} else {
		// Measure the initial overflow and calibrate lambda0 from the ratio
		// of wirelength to density gradient magnitudes (ePlace).
		en.unpack(pos)
		en.overflow = en.stampAndOverflow(pos)
		en.param = schedule(en.overflow)
		en.elec.SolveFromGrid()
		lambda0 := en.calibrateLambda0(pos)
		lu.Prime(lambda0, en.elec.Energy())
		en.lambda = lu.Lambda()
	}
	setup.End()
	logger.Info("gp: starting",
		"design", d.Name, "cells", d.NumCells(), "nets", d.NumNets(),
		"model", cfg.Model.Name(), "optimizer", optName(cfg.Optimizer),
		"workers", workers, "grid", fmt.Sprintf("%dx%d", en.grid.Nx, en.grid.Ny),
		"fillers", en.numFillers, "lambda0", en.lambda, "overflow0", en.overflow)

	var opt optimizer.Optimizer
	binScale := en.grid.BinW + en.grid.BinH
	switch cfg.Optimizer {
	case "", "nesterov":
		opt = optimizer.NewNesterov(pos, 1e-3*binScale, en.project)
	case "adam":
		// Adam's normalized step moves each coordinate by up to LR per
		// iteration; half a bin keeps spreading stable.
		opt = optimizer.NewAdam(pos, 0.25*binScale, en.project)
	case "momentum":
		opt = optimizer.NewMomentum(pos, 1e-2*binScale, 0.9, en.project)
	default:
		return nil, fmt.Errorf("placer: unknown optimizer %q (want nesterov, adam, or momentum)", cfg.Optimizer)
	}

	res := &Result{ReleasedCells: len(en.mov), FrozenCells: en.numFrozen}
	if cfg.Resume != nil {
		st, ok := opt.(optimizer.Stateful)
		if !ok {
			return nil, fmt.Errorf("placer: optimizer %T does not support resume", opt)
		}
		if err := st.Restore(cfg.Resume.Opt); err != nil {
			return nil, fmt.Errorf("placer: resume: %w", err)
		}
		res.ResumedFrom = startIter
		res.Iterations = startIter
		res.Trajectory = resumeTrajectory(cfg.Resume)
	}
	var grd *guardian
	if cfg.Guard != nil {
		grd = newGuardian(en, cfg.Guard, lu, res, opt)
	}
	res.SetupSeconds = prevSetup + time.Since(start).Seconds()
	loopStart := time.Now()
	// finalize writes the (possibly partial) placement back into the design
	// and fills the result metrics; used on every exit path so a cancelled
	// run still reports a usable partial Result.
	finalize := func() {
		en.unpack(opt.Pos())
		d.ClampToRegion()
		res.HPWL = wirelength.TotalHPWL(d)
		res.Overflow = en.overflow
		if nes, ok := opt.(*optimizer.Nesterov); ok {
			res.Evaluations = nes.EvalCount()
		} else {
			res.Evaluations = res.Iterations
		}
		res.LoopSeconds = prevLoop + time.Since(loopStart).Seconds()
		res.Seconds = prevSetup + prevLoop + time.Since(start).Seconds()
		if mstats != nil {
			m := o.Metrics
			m.Count("moreau_net_evals", mstats.Evals.Load())
			m.Count("moreau_degenerate", mstats.Degenerate.Load())
			m.Count("moreau_large_sorts", mstats.LargeSorts.Load())
		}
		logger.Info("gp: done",
			"design", d.Name, "hpwl", res.HPWL, "overflow", res.Overflow,
			"iterations", res.Iterations, "evaluations", res.Evaluations,
			"seconds", res.Seconds, "stopped", res.Stopped)
	}

	// writeCkpt snapshots the loop state after iter completed iterations.
	// bestEffort suppresses write errors on exit paths that already carry a
	// more important outcome (cancellation, early stop).
	writeCkpt := func(iter int, bestEffort bool) error {
		if cfg.Checkpoint.Dir == "" {
			return nil
		}
		snap, err := en.snapshot(iter, opt, lu, res)
		if err == nil {
			snap.SetupSeconds = res.SetupSeconds
			snap.LoopSeconds = prevLoop + time.Since(loopStart).Seconds()
			_, err = checkpoint.WriteRotating(cfg.Checkpoint.Dir, snap, cfg.Checkpoint.keepOrDefault())
		}
		if err == nil {
			res.Checkpoints++
			if o != nil {
				o.Metrics.CheckpointDone()
			}
			logger.Debug("gp: checkpoint written", "iter", iter)
			return nil
		}
		if bestEffort {
			logger.Warn("gp: best-effort checkpoint failed", "iter", iter, "err", err)
			return nil
		}
		return fmt.Errorf("placer: checkpoint at iteration %d: %w", iter, err)
	}

	for k := startIter; k < cfg.MaxIters; k++ {
		if err := ctx.Err(); err != nil {
			// Persist the freshest state so a graceful drain can resume
			// exactly where the run stopped.
			logger.Warn("gp: cancelled", "iter", k, "err", err)
			writeCkpt(k, true) //nolint:errcheck // best-effort by design
			finalize()
			return res, err
		}
		if grd != nil {
			grd.release(k, opt)
			grd.maybeSnapshot(k, opt)
		}
		it := o.StartIteration(k)
		en.param = schedule(en.overflow)
		sp := o.StartPhase(obs.PhaseStep)
		obj := opt.Step(en.evalFn)
		sp.End()
		en.lambda = lu.Update(en.lastEnergy)

		// Exact HPWL is probed at most once per iteration and shared by
		// every consumer (guard growth check, trajectory recording, the
		// iteration hook); it used to be re-derived by each of them.
		record := cfg.RecordEvery > 0 && k%cfg.RecordEvery == 0
		wantHPWL := record || cfg.OnIteration != nil
		hpwl := 0.0
		if grd != nil || wantHPWL {
			en.unpack(opt.Pos())
			hpwl = wirelength.TotalHPWL(d)
		}
		if grd != nil {
			if v := grd.check(k, obj, hpwl, opt); v != nil {
				restart, gerr := grd.handle(k, v, opt)
				it.End()
				if gerr != nil {
					finalize()
					return res, gerr
				}
				// Replay from the restored iteration: the convergence break,
				// recording, and periodic checkpoints below all belong to the
				// abandoned pass and are skipped.
				k = restart - 1
				continue
			}
		}
		res.Iterations = k + 1

		stop := false
		if wantHPWL {
			pt := TrajectoryPoint{
				Iter:      k,
				Overflow:  en.overflow,
				HPWL:      hpwl,
				Objective: obj,
				Param:     en.param,
				Lambda:    en.lambda,
			}
			if record {
				res.Trajectory = append(res.Trajectory, pt)
				logger.Debug("gp: iteration",
					"iter", k, "hpwl", pt.HPWL, "overflow", pt.Overflow,
					"lambda", pt.Lambda, "param", pt.Param)
			}
			if cfg.OnIteration != nil && !cfg.OnIteration(pt) {
				res.Stopped = true
				stop = true
			}
		}
		if o != nil && o.Metrics != nil {
			step := 0.0
			if ss, ok := opt.(optimizer.StepSizer); ok {
				step = ss.LastStepSize()
			}
			// The gauge reports HPWL only on iterations that sampled it
			// for the trajectory/hook, matching the historical stream.
			gaugeHPWL := 0.0
			if wantHPWL {
				gaugeHPWL = hpwl
			}
			o.Metrics.Record(obs.Point{
				Iter: k, HPWL: gaugeHPWL, Overflow: en.overflow,
				Lambda: en.lambda, Param: en.param, Step: step,
			})
		}
		if stop {
			logger.Info("gp: stopped by iteration hook", "iter", k)
			writeCkpt(k+1, true) //nolint:errcheck // best-effort by design
			it.End()
			break
		}
		if cfg.Checkpoint.Every > 0 && (k+1)%cfg.Checkpoint.Every == 0 {
			if err := writeCkpt(k+1, false); err != nil {
				it.End()
				finalize()
				return res, err
			}
		}
		it.End()
		if en.overflow < cfg.StopOverflow {
			logger.Info("gp: overflow target reached", "iter", k, "overflow", en.overflow)
			break
		}
	}

	finalize()
	return res, nil
}

// setupFillers computes filler dimensions and count from the whitespace
// budget: fillerArea = targetDensity*freeArea - movableArea.
func (en *engine) setupFillers(rng *rand.Rand) {
	if en.cfg.NoFillers {
		return
	}
	d := en.d
	fixedArea := 0.0
	for i, c := range d.Cells {
		if !c.Kind.Moves() || en.isFrozen(i) {
			fixedArea += d.CellRect(i).Intersect(d.Region).Area()
		}
	}
	free := d.Region.Area() - fixedArea
	budget := en.targetDensity*free - en.movableArea
	if budget <= 0 {
		return
	}
	// Filler size: the average movable standard-cell size (macros skew the
	// mean, so use the median-ish harmonic of small cells).
	var wSum, hSum float64
	var cnt int
	for _, c := range en.mov {
		cell := d.Cells[c]
		if cell.Kind == netlist.MovableMacro {
			continue
		}
		wSum += cell.W
		hSum += cell.H
		cnt++
	}
	if cnt == 0 {
		return
	}
	en.fillerW = wSum / float64(cnt)
	en.fillerH = hSum / float64(cnt)
	if en.fillerW <= 0 || en.fillerH <= 0 {
		return
	}
	en.numFillers = int(budget / (en.fillerW * en.fillerH))
	// Cap fillers to keep the optimization vector bounded.
	if max := 4 * len(en.mov); en.numFillers > max {
		scale := math.Sqrt(budget / (float64(max) * en.fillerW * en.fillerH))
		en.fillerW *= scale
		en.fillerH *= scale
		en.numFillers = max
	}
	_ = rng
}

// unpack writes the position vector back into the design's movable cells.
// Filler positions live only in the vector itself.
func (en *engine) unpack(pos []float64) {
	n := len(en.mov) + en.numFillers
	for i, c := range en.mov {
		en.d.SetCenter(c, pos[i], pos[n+i])
	}
}

// stampAndOverflow stamps movable cells, measures overflow, then stamps the
// fillers on top (ready for the field solve) and returns the overflow. Both
// stamping passes and the overflow reduction run on the engine's worker
// pool; per-worker partials reduce in worker order (deterministic for a
// fixed worker count).
func (en *engine) stampAndOverflow(pos []float64) float64 {
	en.pos = pos
	en.grid.Clear()
	en.stamper.StampSmoothed(len(en.mov), en.fnStampMov)
	phi := en.grid.OverflowWorkers(en.targetDensity, en.overflowArea, en.workers)
	en.stamper.StampSmoothed(en.numFillers, en.fnStampFill)
	return phi
}

// calibrateLambda0 returns the ePlace initial density weight: the ratio of
// the wirelength gradient L1 norm to the density gradient L1 norm at the
// initial placement. The field must already be solved.
func (en *engine) calibrateLambda0(pos []float64) float64 {
	en.cfg.Model.WirelengthGrad(en.wlD, en.param, en.wgx, en.wgy)
	var wlNorm, denNorm float64
	n := len(en.mov) + en.numFillers
	for i, c := range en.mov {
		wlNorm += math.Abs(en.wgx[c]) + math.Abs(en.wgy[c])
		fx, fy := en.grid.SampleSmoothed(en.elec.Ex, en.elec.Ey, pos[i], pos[n+i], 2*en.halfW[i], 2*en.halfH[i])
		denNorm += math.Abs(fx) + math.Abs(fy)
	}
	if denNorm <= 0 {
		return 1e-4
	}
	return wlNorm / denNorm
}

// eval is the full objective W + lambda*D with gradient, used by the
// optimizer (including its backtracking trials).
func (en *engine) eval(pos, grad []float64) float64 {
	o := en.cfg.Obs
	if o != nil {
		o.Metrics.EvalDone()
	}
	en.unpack(pos)
	sp := o.StartPhase(obs.PhaseWirelength)
	w := en.cfg.Model.WirelengthGrad(en.wlD, en.param, en.wgx, en.wgy)
	sp.End()

	sp = o.StartPhase(obs.PhaseStamp)
	en.overflow = en.stampAndOverflow(pos)
	sp.End()
	sp = o.StartPhase(obs.PhaseSolve)
	en.elec.SolveFromGrid()
	energy := en.elec.Energy()
	en.lastEnergy = energy
	sp.End()
	sp = o.StartPhase(obs.PhaseGather)
	defer sp.End()

	en.pos, en.grad = pos, grad
	parallel.For(en.workers, len(en.mov), en.fnGatherMov)
	parallel.For(en.workers, en.numFillers, en.fnGatherFill)
	return w + en.lambda*energy
}
