package placer

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/optimizer"
)

// guardian wires a guard.Monitor into the placement loop: it keeps a ring
// of recent in-memory snapshots (the same checkpoint.Snapshot the on-disk
// path uses, so optimizer, schedules, and scalars all rewind together),
// and on an invariant violation rolls the run back to the newest snapshot,
// shrinking the optimizer step with exponential backoff on repeated trips
// within one divergence episode.
//
// Retry accounting is per episode: trips escalate the shrink factor until
// either the run survives RecoveryWindow clean iterations (the cap is
// released and the budget resets) or the budget is exhausted and the run
// fails with guard.DivergenceError — after restoring the last good
// snapshot, so the caller never sees non-finite positions.
type guardian struct {
	en  *engine
	cfg guard.Config // effective config (defaults applied)
	mon *guard.Monitor
	lu  *LambdaUpdater
	res *Result
	o   *obs.Observer

	ring []*checkpoint.Snapshot // oldest → newest, len <= cfg.RingSize

	trips      int // violations in the current episode
	capUntil   int // iteration at which the current episode ends cleanly
	capActive  bool
	violations []guard.Violation // full history, across episodes

	// lastGoodStep is the most recent healthy BB/backtracking step, the
	// reference the Nesterov shrink cap is computed from (AlphaMax itself
	// defaults to +Inf, so capping a fraction of it would be a no-op).
	lastGoodStep float64
	baseAlphaMax float64
	baseLR       float64
}

func newGuardian(en *engine, cfg *guard.Config, lu *LambdaUpdater, res *Result, opt optimizer.Optimizer) *guardian {
	g := &guardian{
		en:  en,
		mon: guard.NewMonitor(*cfg),
		lu:  lu,
		res: res,
		o:   en.cfg.Obs,
	}
	g.cfg = g.mon.Config()
	switch v := opt.(type) {
	case *optimizer.Nesterov:
		g.baseAlphaMax = v.AlphaMax
	case *optimizer.Adam:
		g.baseLR = v.LR
	case *optimizer.Momentum:
		g.baseLR = v.LR
	}
	return g
}

func (g *guardian) emit(ev guard.Event) {
	if g.cfg.OnEvent != nil {
		g.cfg.OnEvent(ev)
	}
}

func (g *guardian) count(name string) {
	if g.o != nil {
		g.o.Metrics.Count(name, 1)
	}
}

// maybeSnapshot captures the loop state at the top of iteration k (which
// the previous iteration's check vouched for) on the SnapshotEvery cadence,
// or immediately when the ring is still empty. Post-rollback replays skip
// the capture: the tail entry already holds that iteration.
func (g *guardian) maybeSnapshot(k int, opt optimizer.Optimizer) {
	if len(g.ring) > 0 {
		if k%g.cfg.SnapshotEvery != 0 || g.ring[len(g.ring)-1].Iter == k {
			return
		}
	}
	snap, err := g.en.snapshot(k, opt, g.lu, g.res)
	if err != nil {
		g.o.Logger().Warn("guard: snapshot failed", "iter", k, "err", err)
		return
	}
	g.ring = append(g.ring, snap)
	if len(g.ring) > g.cfg.RingSize {
		copy(g.ring, g.ring[1:])
		g.ring[len(g.ring)-1] = nil
		g.ring = g.ring[:len(g.ring)-1]
	}
}

// check runs the per-iteration invariants after the optimizer step of
// iteration k. hpwl is the exact HPWL of the current positions, computed
// once per iteration by the placement loop and shared with trajectory
// recording (it used to be re-derived here, doubling the probe whenever the
// guard and the recorder ran in the same iteration). All reads are
// side-effect free with respect to the run, so an enabled-but-never-
// tripping guard leaves the trajectory bit-identical to a guardless run.
func (g *guardian) check(k int, obj, hpwl float64, opt optimizer.Optimizer) *guard.Violation {
	pos := opt.Pos()
	step := 0.0
	if ss, ok := opt.(optimizer.StepSizer); ok {
		step = ss.LastStepSize()
	}
	v := g.mon.Check(guard.Sample{
		Iter:      k,
		Objective: obj,
		HPWL:      hpwl,
		Overflow:  g.en.overflow,
		Step:      step,
		Pos:       pos,
	})
	if v == nil && step > 0 && !math.IsInf(step, 0) && !math.IsNaN(step) {
		g.lastGoodStep = step
	}
	return v
}

// handle performs the rollback for a violation at iteration k. It returns
// the iteration index to resume from, or a *guard.DivergenceError once the
// episode's retry budget is exhausted (with the last good snapshot already
// restored, so the design holds finite positions either way).
func (g *guardian) handle(k int, v *guard.Violation, opt optimizer.Optimizer) (int, error) {
	g.trips++
	g.violations = append(g.violations, *v)
	g.res.GuardTrips++
	g.count("guard_trips")
	g.emit(guard.Event{Kind: guard.EventTrip, Iter: k, Retry: g.trips, Violation: v})
	logger := g.o.Logger()
	logger.Warn("guard: invariant tripped",
		"iter", k, "kind", string(v.Kind), "value", v.Value, "limit", v.Limit, "retry", g.trips)

	sp := g.o.StartPhase(obs.PhaseGuardRollback)
	defer sp.End()

	snap := g.latestSnapshot()
	if snap == nil {
		g.count("guard_failures")
		g.emit(guard.Event{Kind: guard.EventFail, Iter: k, RestoredIter: -1, Retry: g.trips, Violation: v})
		return 0, &guard.DivergenceError{
			Violations: append([]guard.Violation(nil), g.violations...),
			Retries:    g.trips - 1,
			LastGood:   -1,
		}
	}
	// Restore even when the budget is already exhausted: the caller gets
	// the last good state, never the diverged one.
	if err := g.restoreTo(snap, opt); err != nil {
		return 0, fmt.Errorf("placer: guard rollback to iteration %d: %w", snap.Iter, err)
	}
	if g.trips > g.cfg.MaxRetries {
		g.count("guard_failures")
		g.emit(guard.Event{Kind: guard.EventFail, Iter: k, RestoredIter: snap.Iter, Retry: g.trips, Violation: v})
		logger.Error("guard: divergence, retry budget exhausted",
			"iter", k, "restored", snap.Iter, "retries", g.cfg.MaxRetries)
		return 0, &guard.DivergenceError{
			Violations: append([]guard.Violation(nil), g.violations...),
			Retries:    g.cfg.MaxRetries,
			LastGood:   snap.Iter,
		}
	}
	// Retry r replays at Shrink^(r-1): the first rollback runs at full
	// step, so a pure transient (one poisoned evaluation) is absorbed with
	// zero distortion of the trajectory; persistent trouble backs off
	// exponentially.
	factor := math.Pow(g.cfg.Shrink, float64(g.trips-1))
	g.applyCap(opt, factor)
	g.capUntil = snap.Iter + g.cfg.RecoveryWindow
	g.res.GuardRollbacks++
	g.count("guard_rollbacks")
	g.emit(guard.Event{Kind: guard.EventRollback, Iter: k, RestoredIter: snap.Iter, Retry: g.trips, Shrink: factor, Violation: v})
	logger.Warn("guard: rolled back", "from", k, "to", snap.Iter, "shrink", factor, "retry", g.trips)
	return snap.Iter, nil
}

// latestSnapshot returns the rollback target: the newest ring entry, or —
// if the ring is somehow empty — the newest matching on-disk checkpoint.
func (g *guardian) latestSnapshot() *checkpoint.Snapshot {
	if n := len(g.ring); n > 0 {
		return g.ring[n-1]
	}
	if dir := g.en.cfg.Checkpoint.Dir; dir != "" {
		fp := g.en.fingerprint()
		snap, path, err := checkpoint.LoadLatestMatching(dir, func(s *checkpoint.Snapshot) error {
			return fp.Match(s.Fingerprint)
		})
		if err == nil {
			g.o.Logger().Info("guard: falling back to on-disk snapshot", "path", path, "iter", snap.Iter)
			return snap
		}
	}
	return nil
}

// restoreTo rewinds optimizer, engine scalars, schedules, trajectory, and
// the monitor windows to a snapshot taken earlier in this same run (no
// fingerprint re-check needed for ring entries; disk fallbacks were
// already matched by latestSnapshot).
func (g *guardian) restoreTo(snap *checkpoint.Snapshot, opt optimizer.Optimizer) error {
	st, ok := opt.(optimizer.Stateful)
	if !ok {
		return fmt.Errorf("optimizer %T does not support rollback", opt)
	}
	if err := st.Restore(snap.Opt); err != nil {
		return err
	}
	en := g.en
	en.param = snap.Param
	en.lambda = snap.Lambda
	en.overflow = snap.Overflow
	en.lastEnergy = snap.LastEnergy
	g.lu.RestoreState(snap.LambdaSched)
	en.unpack(opt.Pos())
	// Drop everything recorded in the abandoned future, so the replay
	// appends over a trajectory identical to a run that never diverged.
	tr := g.res.Trajectory
	n := len(tr)
	for n > 0 && tr[n-1].Iter >= snap.Iter {
		n--
	}
	g.res.Trajectory = tr[:n]
	g.res.Iterations = snap.Iter
	g.mon.Rewind(snap.Iter)
	return nil
}

// applyCap shrinks the optimizer step by factor. It runs after Restore
// (which overwrites AlphaMax/LR from the snapshot), so the cap survives
// the rollback it belongs to.
func (g *guardian) applyCap(opt optimizer.Optimizer, factor float64) {
	g.capActive = factor < 1
	if !g.capActive {
		return
	}
	switch v := opt.(type) {
	case *optimizer.Nesterov:
		if g.lastGoodStep > 0 {
			v.AlphaMax = g.lastGoodStep * factor
		} else {
			// No healthy step observed yet (trip on the very first
			// iteration): nothing meaningful to cap against.
			g.capActive = false
		}
	case *optimizer.Adam:
		v.LR = g.baseLR * factor
	case *optimizer.Momentum:
		v.LR = g.baseLR * factor
	default:
		g.capActive = false
	}
}

// release closes a divergence episode once iteration k reaches the end of
// its recovery window: the step cap (if any) returns to its base value and
// the retry budget resets, so a later, unrelated transient gets the full
// budget again.
func (g *guardian) release(k int, opt optimizer.Optimizer) {
	if g.trips == 0 || k < g.capUntil {
		return
	}
	if g.capActive {
		switch v := opt.(type) {
		case *optimizer.Nesterov:
			v.AlphaMax = g.baseAlphaMax
		case *optimizer.Adam:
			v.LR = g.baseLR
		case *optimizer.Momentum:
			v.LR = g.baseLR
		}
		g.capActive = false
	}
	retries := g.trips
	g.trips = 0
	g.res.GuardRecoveries++
	g.count("guard_recoveries")
	g.emit(guard.Event{Kind: guard.EventRecover, Iter: k, Retry: retries})
	g.o.Logger().Info("guard: recovered", "iter", k, "episode_retries", retries)
}
