package placer

import (
	"context"
	"errors"
	"testing"

	"repro/internal/wirelength"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	m := wirelength.NewWA()
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil model", func(c *Config) { c.Model = nil }},
		{"non-pow2 GridX", func(c *Config) { c.GridX = 100 }},
		{"negative GridX", func(c *Config) { c.GridX = -8 }},
		{"non-pow2 GridY", func(c *Config) { c.GridY = 48 }},
		{"unknown optimizer", func(c *Config) { c.Optimizer = "sgd" }},
		{"unknown init", func(c *Config) { c.Init = "random" }},
		{"unknown schedule", func(c *Config) { c.Schedule = "cosine" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(m)
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted a bad config")
			}
			// Place must reject it too, without panicking.
			d := testDesign(t, 60, 0)
			if _, err := Place(d, cfg); err == nil {
				t.Fatal("Place accepted a bad config")
			}
		})
	}
}

func TestValidateAcceptsGoodConfig(t *testing.T) {
	cfg := DefaultConfig(wirelength.NewWA())
	cfg.GridX, cfg.GridY = 64, 32
	cfg.Optimizer = "adam"
	cfg.Init = "quadratic"
	cfg.Schedule = "tangent"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected a good config: %v", err)
	}
}

func TestPlaceContextCancelledMidRun(t *testing.T) {
	d := testDesign(t, 200, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := fastConfig(wirelength.NewWA())
	cfg.MaxIters = 10000
	cfg.StopOverflow = 1e-9 // never reached: only cancellation can stop us
	cfg.OnIteration = func(pt TrajectoryPoint) bool {
		if pt.Iter >= 3 {
			cancel()
		}
		return true
	}
	res, err := PlaceContext(ctx, d, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run must still return a partial result")
	}
	if res.Iterations < 4 || res.Iterations > 10 {
		t.Errorf("expected prompt cancellation after ~4 iterations, ran %d", res.Iterations)
	}
	if res.HPWL <= 0 {
		t.Errorf("partial result has no HPWL: %+v", res)
	}
	if res.Seconds <= 0 {
		t.Errorf("partial result missing timing: %+v", res)
	}
}

func TestPlaceContextCancelledBeforeStart(t *testing.T) {
	d := testDesign(t, 60, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PlaceContext(ctx, d, fastConfig(wirelength.NewWA()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Iterations != 0 {
		t.Fatalf("want zero-iteration partial result, got %+v", res)
	}
}

func TestOnIterationFalseStopsRun(t *testing.T) {
	d := testDesign(t, 120, 0)
	cfg := fastConfig(wirelength.NewWA())
	cfg.MaxIters = 5000
	cfg.StopOverflow = 1e-9
	const stopAt = 5
	var calls int
	cfg.OnIteration = func(pt TrajectoryPoint) bool {
		calls++
		if pt.HPWL <= 0 {
			t.Errorf("hook point missing HPWL: %+v", pt)
		}
		return pt.Iter < stopAt
	}
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatalf("hook stop must not be an error: %v", err)
	}
	if !res.Stopped {
		t.Error("Result.Stopped not set after hook stop")
	}
	if res.Iterations != stopAt+1 {
		t.Errorf("ran %d iterations, want %d", res.Iterations, stopAt+1)
	}
	if calls != stopAt+1 {
		t.Errorf("hook called %d times, want %d", calls, stopAt+1)
	}
}

func TestPhaseTimingIsPopulated(t *testing.T) {
	d := testDesign(t, 100, 0)
	cfg := fastConfig(wirelength.NewWA())
	cfg.MaxIters = 30
	cfg.StopOverflow = 1e-9
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SetupSeconds < 0 || res.LoopSeconds <= 0 {
		t.Errorf("phase timings not populated: setup=%g loop=%g", res.SetupSeconds, res.LoopSeconds)
	}
	if res.Seconds < res.LoopSeconds {
		t.Errorf("total %g < loop %g", res.Seconds, res.LoopSeconds)
	}
	if res.Seconds < res.SetupSeconds+res.LoopSeconds-1e-3 {
		t.Errorf("total %g inconsistent with setup %g + loop %g",
			res.Seconds, res.SetupSeconds, res.LoopSeconds)
	}
}
