package placer

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/wirelength"
)

// TestObservedRunTraceRoundTrip runs an instrumented placement and pins the
// span accounting: the optimizer-step and iteration spans appear exactly
// once per iteration, the four eval phases once per evaluation (>= once per
// iteration: Nesterov backtracking re-evaluates), and the exported Chrome
// trace decodes back to the identical event list.
func TestObservedRunTraceRoundTrip(t *testing.T) {
	d := testDesign(t, 80, 0)
	cfg := fastConfig(wirelength.NewMoreau())
	cfg.MaxIters = 25
	cfg.StopOverflow = 1e-9
	cfg.RecordEvery = 5 // HPWL is measured on recorded iterations; exercise the gauge
	o := &obs.Observer{Trace: obs.NewTracer(), Metrics: obs.NewMetrics()}
	cfg.Obs = o
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != cfg.MaxIters {
		t.Fatalf("ran %d iterations, want %d", res.Iterations, cfg.MaxIters)
	}

	perPhase := map[string]int{}
	maxIterTag := -1
	for _, ev := range o.Trace.Events() {
		perPhase[ev.Name]++
		if ev.Iter > maxIterTag {
			maxIterTag = ev.Iter
		}
	}
	if got := perPhase[obs.PhaseStep]; got != res.Iterations {
		t.Errorf("%s spans = %d, want exactly %d (one per iteration)", obs.PhaseStep, got, res.Iterations)
	}
	if got := perPhase[obs.PhaseIteration]; got != res.Iterations {
		t.Errorf("%s spans = %d, want exactly %d", obs.PhaseIteration, got, res.Iterations)
	}
	for _, p := range []string{obs.PhaseWirelength, obs.PhaseStamp, obs.PhaseSolve, obs.PhaseGather} {
		if got := perPhase[p]; got != res.Evaluations {
			t.Errorf("%s spans = %d, want %d (one per evaluation)", p, got, res.Evaluations)
		}
	}
	if res.Evaluations < res.Iterations {
		t.Errorf("evaluations %d < iterations %d", res.Evaluations, res.Iterations)
	}
	if perPhase[obs.PhaseSetup] != 1 {
		t.Errorf("%s spans = %d, want 1", obs.PhaseSetup, perPhase[obs.PhaseSetup])
	}
	if maxIterTag != res.Iterations-1 {
		t.Errorf("max iteration tag = %d, want %d", maxIterTag, res.Iterations-1)
	}

	var buf bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("exported trace does not decode: %v", err)
	}
	want := o.Trace.Events()
	got := rt.Events
	if len(got) != len(want) {
		t.Fatalf("round trip lost spans: %d -> %d", len(want), len(got))
	}
	// The exporter reorders (ts asc, parents first) but must keep every span
	// bit-identical; compare as multisets.
	index := map[obs.SpanEvent]int{}
	for _, ev := range want {
		index[ev]++
	}
	for _, ev := range got {
		index[ev]--
		if index[ev] < 0 {
			t.Fatalf("round trip invented span %+v", ev)
		}
	}

	// The metrics registry agrees with the engine's own accounting, and the
	// Moreau evaluator counters flow through for the ME model.
	snap := o.Metrics.Snapshot()
	if int(snap.Iterations) != res.Iterations || int(snap.Evaluations) != res.Evaluations {
		t.Errorf("metrics iterations/evaluations = %d/%d, want %d/%d",
			snap.Iterations, snap.Evaluations, res.Iterations, res.Evaluations)
	}
	if snap.Counters["moreau_net_evals"] <= 0 {
		t.Errorf("moreau_net_evals = %d, want > 0 for the ME model", snap.Counters["moreau_net_evals"])
	}
	if snap.Iter != res.Iterations-1 {
		t.Errorf("last recorded iteration gauge = %d, want %d", snap.Iter, res.Iterations-1)
	}
	if snap.HPWL <= 0 || snap.Overflow <= 0 {
		t.Errorf("convergence gauges unset: hpwl=%g overflow=%g", snap.HPWL, snap.Overflow)
	}
}

// TestObservedRunMatchesUnobserved: attaching a full observer must not
// change the optimization itself — positions and HPWL stay bit-identical.
func TestObservedRunMatchesUnobserved(t *testing.T) {
	cfgA := fastConfig(wirelength.NewWA())
	cfgA.MaxIters = 30
	cfgA.StopOverflow = 1e-9
	dA := testDesign(t, 80, 0)
	resA, err := Place(dA, cfgA)
	if err != nil {
		t.Fatal(err)
	}

	cfgB := fastConfig(wirelength.NewWA())
	cfgB.MaxIters = 30
	cfgB.StopOverflow = 1e-9
	cfgB.Obs = &obs.Observer{Trace: obs.NewTracer(), Metrics: obs.NewMetrics()}
	dB := testDesign(t, 80, 0)
	resB, err := Place(dB, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resA.HPWL != resB.HPWL || resA.Evaluations != resB.Evaluations {
		t.Errorf("observer changed the run: HPWL %v vs %v, evals %d vs %d",
			resA.HPWL, resB.HPWL, resA.Evaluations, resB.Evaluations)
	}
	for c := range dA.Cells {
		if dA.X[c] != dB.X[c] || dA.Y[c] != dB.Y[c] {
			t.Fatalf("cell %d diverged under observation", c)
		}
	}
	if !reflect.DeepEqual(resA.Trajectory, resB.Trajectory) {
		t.Error("trajectory diverged under observation")
	}
}

// TestObsCancelCheckpointRace cancels an instrumented run from its
// OnIteration hook while checkpoint-on-cancel is armed. Under -race this
// exercises the observer sinks, the engine goroutine, and the cancel path
// together; the run must still leave a resumable snapshot behind.
func TestObsCancelCheckpointRace(t *testing.T) {
	dir := t.TempDir()
	d := testDesign(t, 60, 0)
	ctx, cancel := context.WithCancel(context.Background())

	met := obs.NewMetrics()
	var sinkCalls atomic.Int64
	met.OnIteration = func(float64) { sinkCalls.Add(1) }
	met.OnPhase = func(string, float64) { sinkCalls.Add(1) }

	cfg := resumeBase(2) // parallel workers: eval spans come from pool goroutines
	cfg.Checkpoint = CheckpointConfig{Dir: dir}
	cfg.Obs = &obs.Observer{Trace: obs.NewTracer(), Metrics: met}
	cfg.OnIteration = func(pt TrajectoryPoint) bool {
		if pt.Iter >= 10 {
			cancel()
		}
		return true
	}
	_, err := PlaceContext(ctx, d, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sinkCalls.Load() == 0 {
		t.Error("metrics sinks never fired")
	}

	snap, _, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatalf("no snapshot after cancel: %v", err)
	}
	if snap.Iter < 10 {
		t.Fatalf("cancel snapshot at iteration %d, want >= 10", snap.Iter)
	}
	c := resumeBase(2)
	c.Resume = snap
	res, err := Place(testDesign(t, 60, 0), c)
	if err != nil {
		t.Fatalf("resume after observed cancel: %v", err)
	}
	if res.Iterations != c.MaxIters {
		t.Errorf("resumed run did %d iterations, want %d", res.Iterations, c.MaxIters)
	}
}
