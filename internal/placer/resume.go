package placer

import (
	"fmt"
	"hash/fnv"

	"repro/internal/checkpoint"
	"repro/internal/optimizer"
)

// CheckpointConfig enables periodic crash-safe snapshots of a run. Snapshots
// are written atomically into Dir under rotating names; together with the
// deterministic evaluation pipeline they allow a killed run to resume and
// finish with bit-identical positions and HPWL (same worker count required).
type CheckpointConfig struct {
	// Every writes a snapshot after each that many completed iterations
	// (0 disables periodic checkpointing; Validate rejects negatives).
	Every int
	// Dir is the snapshot directory, created on first write. Required when
	// Every > 0. When set, a final snapshot is also written if the run is
	// cancelled or stopped early by the OnIteration hook, so the freshest
	// state survives a graceful drain.
	Dir string
	// Keep bounds how many snapshots are retained in Dir (default 3).
	Keep int
}

// keepOrDefault resolves the retention count.
func (c CheckpointConfig) keepOrDefault() int {
	if c.Keep > 0 {
		return c.Keep
	}
	return 3
}

// optimizerName canonicalizes the Config.Optimizer enum for fingerprints.
func (cfg *Config) optimizerName() string {
	if cfg.Optimizer == "" {
		return "nesterov"
	}
	return cfg.Optimizer
}

// fingerprint pins the run setup a snapshot belongs to. Every field affects
// either the trajectory itself or its bit-level determinism, so resume is
// refused unless all of them match.
func (en *engine) fingerprint() checkpoint.Fingerprint {
	d := en.d
	return checkpoint.Fingerprint{
		Design:        d.Name,
		NumCells:      d.NumCells(),
		NumNets:       d.NumNets(),
		NumPins:       d.NumPins(),
		NumMovable:    len(en.mov),
		NumFillers:    en.numFillers,
		GridX:         en.grid.Nx,
		GridY:         en.grid.Ny,
		Workers:       en.workers,
		Model:         en.cfg.Model.Name(),
		Optimizer:     en.cfg.optimizerName(),
		Seed:          en.cfg.Seed,
		TargetDensity: en.targetDensity,
		RegionXL:      d.Region.XL,
		RegionYL:      d.Region.YL,
		RegionXH:      d.Region.XH,
		RegionYH:      d.Region.YH,
		FreezeHash:    FreezeHash(en.cfg.Freeze),
	}
}

// FreezeHash condenses a partial-release mask into the fingerprint: FNV-64a
// over the mask bits, 0 for a full run (nil or all-false mask). Exported so
// the ecocache layer can label warm-start plans the same way snapshots do.
func FreezeHash(freeze []bool) uint64 {
	any := false
	for _, f := range freeze {
		if f {
			any = true
			break
		}
	}
	if !any {
		return 0
	}
	h := fnv.New64a()
	buf := make([]byte, len(freeze))
	for i, f := range freeze {
		if f {
			buf[i] = 1
		}
	}
	h.Write(buf)
	return h.Sum64()
}

// snapshot captures the loop state at an iteration boundary: iter is the
// number of completed iterations, i.e. the next iteration index to run.
func (en *engine) snapshot(iter int, opt optimizer.Optimizer, lu *LambdaUpdater, res *Result) (*checkpoint.Snapshot, error) {
	st, ok := opt.(optimizer.Stateful)
	if !ok {
		return nil, fmt.Errorf("placer: optimizer %T does not support checkpointing", opt)
	}
	evals := iter
	if nes, ok := opt.(*optimizer.Nesterov); ok {
		evals = nes.EvalCount()
	}
	traj := make([]checkpoint.TrajectoryPoint, len(res.Trajectory))
	for i, p := range res.Trajectory {
		traj[i] = checkpoint.TrajectoryPoint{
			Iter: p.Iter, Overflow: p.Overflow, HPWL: p.HPWL,
			Objective: p.Objective, Param: p.Param, Lambda: p.Lambda,
		}
	}
	return &checkpoint.Snapshot{
		Fingerprint: en.fingerprint(),
		Iter:        iter,
		Evaluations: evals,
		Param:       en.param,
		Lambda:      en.lambda,
		Overflow:    en.overflow,
		LastEnergy:  en.lastEnergy,
		LambdaSched: lu.State(),
		Pos:         append([]float64(nil), opt.Pos()...),
		Opt:         st.Snapshot(),
		Trajectory:  traj,
	}, nil
}

// restore warm-starts the engine from a snapshot: positions, smoothing
// parameter, density weight, lambda-updater state, and the last observed
// overflow/energy. The optimizer is restored separately (it is constructed
// after the engine). Fails with checkpoint.ErrMismatch when the snapshot
// came from a different run setup.
func (en *engine) restore(pos []float64, snap *checkpoint.Snapshot, lu *LambdaUpdater) error {
	if err := en.fingerprint().Match(snap.Fingerprint); err != nil {
		return fmt.Errorf("placer: resume: %w", err)
	}
	if len(snap.Pos) != len(pos) {
		return fmt.Errorf("placer: resume: %w: position vector has %d entries, run needs %d",
			checkpoint.ErrCorrupt, len(snap.Pos), len(pos))
	}
	copy(pos, snap.Pos)
	en.param = snap.Param
	en.lambda = snap.Lambda
	en.overflow = snap.Overflow
	en.lastEnergy = snap.LastEnergy
	lu.RestoreState(snap.LambdaSched)
	en.unpack(pos)
	return nil
}

// resumeTrajectory converts the snapshot's recorded trajectory back into
// placer points, so the resumed run's final trajectory matches the
// uninterrupted one.
func resumeTrajectory(snap *checkpoint.Snapshot) []TrajectoryPoint {
	if len(snap.Trajectory) == 0 {
		return nil
	}
	out := make([]TrajectoryPoint, len(snap.Trajectory))
	for i, p := range snap.Trajectory {
		out[i] = TrajectoryPoint{
			Iter: p.Iter, Overflow: p.Overflow, HPWL: p.HPWL,
			Objective: p.Objective, Param: p.Param, Lambda: p.Lambda,
		}
	}
	return out
}
