package placer

import (
	"testing"

	"repro/internal/wirelength"
)

// freezeConfig places d once cold, then freezes every movable cell except a
// small released window and re-runs with Init "keep" — the ECO warm-start
// shape the ecocache layer drives.
func TestFreezePinsCellsAndReportsCounts(t *testing.T) {
	d := testDesign(t, 400, 0)
	m, _ := wirelength.ByName("ME")
	cold := fastConfig(m)
	if _, err := Place(d, cold); err != nil {
		t.Fatal(err)
	}

	freeze := make([]bool, d.NumCells())
	released := 0
	for _, c := range d.MovableIndices() {
		if released < 40 {
			released++
			continue
		}
		freeze[c] = true
	}
	frozenX := append([]float64(nil), d.X...)
	frozenY := append([]float64(nil), d.Y...)

	warm := fastConfig(m)
	warm.Init = "keep"
	warm.Freeze = freeze
	warm.MaxIters = 60
	warm.StopOverflow = 1e-9 // run the full 60 iterations
	res, err := Place(d, warm)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReleasedCells != released {
		t.Errorf("ReleasedCells = %d, want %d", res.ReleasedCells, released)
	}
	if want := len(d.MovableIndices()) - released; res.FrozenCells != want {
		t.Errorf("FrozenCells = %d, want %d", res.FrozenCells, want)
	}
	movedReleased := false
	for i := range d.Cells {
		if freeze[i] {
			if d.X[i] != frozenX[i] || d.Y[i] != frozenY[i] {
				t.Fatalf("frozen cell %d moved from (%g,%g) to (%g,%g)",
					i, frozenX[i], frozenY[i], d.X[i], d.Y[i])
			}
		} else if d.Cells[i].Kind.Moves() && (d.X[i] != frozenX[i] || d.Y[i] != frozenY[i]) {
			movedReleased = true
		}
	}
	if !movedReleased {
		t.Error("no released cell moved; the partial-release run was a no-op")
	}
}

func TestFreezeRejectsBadMaskLength(t *testing.T) {
	d := testDesign(t, 100, 0)
	m, _ := wirelength.ByName("WA")
	cfg := fastConfig(m)
	cfg.Freeze = make([]bool, d.NumCells()+1)
	if _, err := Place(d, cfg); err == nil {
		t.Fatal("mis-sized Freeze mask was accepted")
	}
	cfg.Freeze = make([]bool, d.NumCells())
	for _, c := range d.MovableIndices() {
		cfg.Freeze[c] = true
	}
	if _, err := Place(d, cfg); err == nil {
		t.Fatal("all-frozen run was accepted")
	}
}

func TestFreezeHashDistinguishesMasks(t *testing.T) {
	if FreezeHash(nil) != 0 {
		t.Error("nil mask must hash to 0")
	}
	if FreezeHash(make([]bool, 8)) != 0 {
		t.Error("all-false mask must hash to 0")
	}
	a := []bool{true, false, false}
	b := []bool{false, true, false}
	if FreezeHash(a) == 0 || FreezeHash(a) == FreezeHash(b) {
		t.Errorf("mask hashes collide: %d vs %d", FreezeHash(a), FreezeHash(b))
	}
	// A frozen run's snapshot must not resume a differently-frozen run.
	d := testDesign(t, 120, 0)
	m, _ := wirelength.ByName("WA")
	cfg := fastConfig(m)
	cfg.Freeze = make([]bool, d.NumCells())
	cfg.Freeze[d.MovableIndices()[0]] = true
	en1, _, err := newEngine(d, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Freeze = nil
	en2, _, err := newEngine(d.Clone(), cfg2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := en1.fingerprint().Match(en2.fingerprint()); err == nil {
		t.Fatal("fingerprints with different freeze masks matched")
	}
}
