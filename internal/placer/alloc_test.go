package placer

import (
	"testing"

	"repro/internal/wirelength"
)

// TestEvalSteadyStateAllocFree pins the zero-allocation contract of the full
// objective/gradient evaluation (wirelength + density stamp + spectral solve
// + field gather). The first call grows the wirelength lane scratch to the
// design's pin count; every call after that must not touch the heap.
func TestEvalSteadyStateAllocFree(t *testing.T) {
	d := testDesign(t, 2000, 2)
	m, err := wirelength.ParallelByName("ME", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(m)
	cfg.Workers = 1
	cfg.GridX, cfg.GridY = 64, 64
	en, pos, err := newEngine(d, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	en.param = 1.5
	en.lambda = 1e-3
	grad := make([]float64, len(pos))
	en.eval(pos, grad) // warm up: lane scratch growth happens here

	if n := testing.AllocsPerRun(10, func() { en.eval(pos, grad) }); n != 0 {
		t.Errorf("engine.eval allocates %v times per call in steady state, want 0", n)
	}
}
