package placer

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/wirelength"
)

// BenchmarkEvalGrad measures one full objective/gradient evaluation —
// parallel wirelength, density stamping, overflow, spectral solve, and field
// gather — the unit of work the Nesterov loop repeats every iteration. The
// workers=4 vs workers=1 ratio is the end-to-end speedup recorded in
// BENCH_PR2.json (meaningful only on a 4+-core machine).
func BenchmarkEvalGrad(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d := testDesign(b, 6000, 4)
			m, err := wirelength.ParallelByName("ME", workers)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig(m)
			cfg.Workers = workers
			cfg.GridX, cfg.GridY = 128, 128
			en, pos, err := newEngine(d, cfg, workers)
			if err != nil {
				b.Fatal(err)
			}
			en.param = 1.5
			en.lambda = 1e-3
			grad := make([]float64, len(pos))
			// Warm up so short -benchtime runs measure the steady state
			// (faulted-in buffers, hot caches, trained branch predictors),
			// and settle the garbage from engine construction so no GC cycle
			// lands inside a measured iteration.
			for i := 0; i < 3; i++ {
				en.eval(pos, grad)
			}
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en.eval(pos, grad)
			}
		})
	}
}
