package placer

import (
	"math"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

func testDesign(t testing.TB, cells int, macros int) *netlist.Design {
	t.Helper()
	spec := synth.Spec{
		Name:           "placer-test",
		NumMovable:     cells,
		NumMacros:      macros,
		NumPads:        8,
		NumFixedBlocks: 1,
		NumNets:        cells + cells/10,
		AvgDegree:      3.8,
		Utilization:    0.7,
		TargetDensity:  1.0,
		Seed:           11,
	}
	d, err := synth.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fastConfig(m wirelength.Model) Config {
	cfg := DefaultConfig(m)
	cfg.MaxIters = 400
	cfg.StopOverflow = 0.15
	return cfg
}

func TestPlaceReducesOverflow(t *testing.T) {
	d := testDesign(t, 600, 0)
	m, _ := wirelength.ByName("WA")
	res, err := Place(d, fastConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow >= 0.15 {
		t.Errorf("final overflow = %g, want < 0.15", res.Overflow)
	}
	if res.Iterations <= 0 || res.Evaluations < res.Iterations {
		t.Errorf("iterations=%d evaluations=%d inconsistent", res.Iterations, res.Evaluations)
	}
}

func TestPlaceAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep in -short mode")
	}
	d := testDesign(t, 400, 0)
	for _, name := range wirelength.AllModelNames() {
		m, _ := wirelength.ByName(name)
		dd := d.Clone()
		res, err := Place(dd, fastConfig(m))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Overflow >= 0.25 {
			t.Errorf("%s: overflow %g did not converge", name, res.Overflow)
		}
		if math.IsNaN(res.HPWL) || res.HPWL <= 0 {
			t.Errorf("%s: HPWL = %g", name, res.HPWL)
		}
	}
}

func TestPlaceKeepsCellsInsideRegion(t *testing.T) {
	d := testDesign(t, 500, 2)
	m, _ := wirelength.ByName("ME")
	if _, err := Place(d, fastConfig(m)); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.MovableIndices() {
		r := d.CellRect(c)
		if !d.Region.ContainsRect(r) {
			t.Fatalf("cell %d at %v escaped region %v", c, r, d.Region)
		}
	}
}

func TestPlaceDoesNotMoveFixedCells(t *testing.T) {
	d := testDesign(t, 300, 0)
	fixedPos := map[int][2]float64{}
	for i, c := range d.Cells {
		if !c.Kind.Moves() {
			fixedPos[i] = [2]float64{d.X[i], d.Y[i]}
		}
	}
	m, _ := wirelength.ByName("WA")
	if _, err := Place(d, fastConfig(m)); err != nil {
		t.Fatal(err)
	}
	for i, p := range fixedPos {
		if d.X[i] != p[0] || d.Y[i] != p[1] {
			t.Fatalf("fixed cell %d moved from (%g,%g) to (%g,%g)", i, p[0], p[1], d.X[i], d.Y[i])
		}
	}
}

func TestPlaceTrajectoryRecordsDescent(t *testing.T) {
	d := testDesign(t, 500, 0)
	m, _ := wirelength.ByName("ME")
	cfg := fastConfig(m)
	cfg.RecordEvery = 10
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) < 3 {
		t.Fatalf("trajectory has %d points", len(res.Trajectory))
	}
	first := res.Trajectory[0]
	last := res.Trajectory[len(res.Trajectory)-1]
	if last.Overflow >= first.Overflow {
		t.Errorf("overflow did not decrease: %g -> %g", first.Overflow, last.Overflow)
	}
	for _, p := range res.Trajectory {
		if p.Param <= 0 {
			t.Errorf("iteration %d: non-positive smoothing parameter %g", p.Iter, p.Param)
		}
		if p.Lambda <= 0 {
			t.Errorf("iteration %d: non-positive lambda %g", p.Iter, p.Lambda)
		}
	}
}

func TestPlaceBeatsRandomPlacementHPWL(t *testing.T) {
	d := testDesign(t, 600, 0)
	randomHPWL := wirelength.TotalHPWL(d) // synth scatters cells randomly
	m, _ := wirelength.ByName("ME")
	res, err := Place(d, fastConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL >= randomHPWL {
		t.Errorf("placed HPWL %g not better than random %g", res.HPWL, randomHPWL)
	}
}

func TestPlaceErrors(t *testing.T) {
	d := testDesign(t, 100, 0)
	if _, err := Place(d, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	// No movable cells.
	m, _ := wirelength.ByName("WA")
	for i := range d.Cells {
		d.Cells[i].Kind = netlist.Fixed
	}
	if _, err := Place(d, DefaultConfig(m)); err == nil {
		t.Error("design without movable cells accepted")
	}
}

func TestGammaScheduleMonotone(t *testing.T) {
	s := GammaSchedule{Gamma0: 4, BinW: 2, BinH: 2}
	prev := 0.0
	for _, phi := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1.0} {
		g := s.At(phi)
		if g <= prev {
			t.Fatalf("gamma not increasing at phi=%g: %g <= %g", phi, g, prev)
		}
		prev = g
	}
	// The schedule spans 10x base at phi=1 down to 0.1x at phi=0.1.
	base := 4.0 / 2 * (2 + 2)
	if g := s.At(1); math.Abs(g-10*base) > 1e-9 {
		t.Errorf("gamma(1) = %g, want %g", g, 10*base)
	}
	if g := s.At(0.1); math.Abs(g-0.1*base) > 1e-9 {
		t.Errorf("gamma(0.1) = %g, want %g", g, 0.1*base)
	}
	// Out-of-range overflow is clamped, not extrapolated.
	if s.At(1.5) != s.At(1) || s.At(-1) != s.At(0) {
		t.Error("gamma schedule must clamp phi to [0,1]")
	}
}

func TestTScheduleProperties(t *testing.T) {
	s := TSchedule{T0: 4, Delta: 1e-4, BinW: 2, BinH: 2}
	// Strictly positive everywhere, monotone above the clamp zone.
	prev := 0.0
	for _, phi := range []float64{0, 1e-5, 0.01, 0.07, 0.2, 0.5, 0.9, 0.999, 1.0} {
		v := s.At(phi)
		if v <= 0 {
			t.Fatalf("t(%g) = %g, want > 0", phi, v)
		}
		if v < prev {
			t.Fatalf("t not non-decreasing at phi=%g", phi)
		}
		prev = v
	}
	// Eq. 14 exactly at a mid overflow.
	phi := 0.5
	want := 4.0 / 2 * 4 * math.Tan(math.Pi/2*phi-1e-4)
	if got := s.At(phi); math.Abs(got-want) > 1e-9 {
		t.Errorf("t(0.5) = %g, want %g", got, want)
	}
	// Near phi=1 the tangent is huge but finite.
	if v := s.At(1); math.IsInf(v, 0) || v < 1000 {
		t.Errorf("t(1) = %g, want large finite", v)
	}
}

func TestLambdaUpdater(t *testing.T) {
	u := NewLambdaUpdater()
	u.Prime(0.1, 100)
	if u.Lambda() != 0.1 {
		t.Errorf("lambda0 = %g", u.Lambda())
	}
	prev := u.Lambda()
	prevAlpha := 0.0
	for k := 0; k < 50; k++ {
		l := u.Update(100)
		if l <= prev {
			t.Fatalf("lambda not increasing at step %d", k)
		}
		alpha := l - prev
		if prevAlpha > 0 {
			rate := alpha / prevAlpha
			if rate < 1.005 || rate > 1.02+1e-9 {
				t.Fatalf("alpha growth rate %g outside (alphaL,alphaH]", rate)
			}
		}
		prevAlpha = alpha
		prev = l
	}
}

func TestLambdaUpdaterDensityDependence(t *testing.T) {
	// Per Eq. 15 a large residual density keeps the growth rate near
	// alphaH (fast ramp, push harder); a small residual keeps it near
	// alphaL (gentle ramp).
	hot := NewLambdaUpdater()
	hot.Prime(1, 100)
	cold := NewLambdaUpdater()
	cold.Prime(1, 100)
	for k := 0; k < 30; k++ {
		hot.Update(1000) // density still high
		cold.Update(0.001)
	}
	if hot.Lambda() <= cold.Lambda() {
		t.Errorf("high-density lambda %g should grow faster than low-density %g", hot.Lambda(), cold.Lambda())
	}
}

func TestLambdaUpdaterPanicsUnprimed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Update before Prime did not panic")
		}
	}()
	(&LambdaUpdater{AlphaL: 1.01, AlphaH: 1.02, Beta: 2000}).Update(1)
}

func TestAutoGrid(t *testing.T) {
	cases := []struct{ cells, want int }{
		{10, 32},
		{1024, 32},
		{1025, 64},
		{5000, 128},
		{100000, 512},
		{10000000, 512}, // capped
	}
	for _, c := range cases {
		if got := autoGrid(c.cells); got != c.want {
			t.Errorf("autoGrid(%d) = %d, want %d", c.cells, got, c.want)
		}
	}
}

func TestPlaceRejectsInvalidDesign(t *testing.T) {
	d := testDesign(t, 50, 0)
	d.X = d.X[:1] // corrupt
	m, _ := wirelength.ByName("WA")
	if _, err := Place(d, DefaultConfig(m)); err == nil {
		t.Error("corrupted design accepted")
	}
}

func TestPlaceWithoutFillers(t *testing.T) {
	d := testDesign(t, 300, 0)
	m, _ := wirelength.ByName("WA")
	cfg := fastConfig(m)
	cfg.NoFillers = true
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow >= 0.3 {
		t.Errorf("no-filler run overflow = %g", res.Overflow)
	}
}

func TestPlaceKeepInputPositions(t *testing.T) {
	// KeepPositions must start from the given placement; a design
	// that is already spread out should keep overflow low from the start.
	d := testDesign(t, 300, 0)
	m, _ := wirelength.ByName("WA")
	cfg := fastConfig(m)
	cfg.KeepPositions = true
	cfg.MaxIters = 5
	cfg.RecordEvery = 1
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("no trajectory")
	}
	if res.Trajectory[0].Overflow > 0.9 {
		t.Errorf("spread input collapsed: initial overflow %g", res.Trajectory[0].Overflow)
	}
}

func TestPlaceOptimizerVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizer sweep in -short mode")
	}
	d := testDesign(t, 300, 0)
	m, _ := wirelength.ByName("ME")
	for _, opt := range []string{"nesterov", "adam", "momentum"} {
		cfg := fastConfig(m)
		cfg.Optimizer = opt
		cfg.MaxIters = 200
		cfg.StopOverflow = 0.3
		res, err := Place(d.Clone(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", opt, err)
		}
		if math.IsNaN(res.HPWL) || res.HPWL <= 0 {
			t.Errorf("%s: HPWL = %g", opt, res.HPWL)
		}
	}
	cfg := fastConfig(m)
	cfg.Optimizer = "bogus"
	if _, err := Place(d.Clone(), cfg); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

func TestPlaceScheduleOverride(t *testing.T) {
	d := testDesign(t, 200, 0)
	m, _ := wirelength.ByName("ME")
	for _, sched := range []string{"gamma", "tangent"} {
		cfg := fastConfig(m)
		cfg.Schedule = sched
		cfg.MaxIters = 100
		cfg.StopOverflow = 0.4
		if _, err := Place(d.Clone(), cfg); err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
	}
	cfg := fastConfig(m)
	cfg.Schedule = "nope"
	if _, err := Place(d.Clone(), cfg); err == nil {
		t.Error("unknown schedule accepted")
	}
}

func TestPlaceQuadraticInit(t *testing.T) {
	d := testDesign(t, 250, 0)
	m, _ := wirelength.ByName("ME")
	cfg := fastConfig(m)
	cfg.Init = "quadratic"
	cfg.MaxIters = 150
	cfg.StopOverflow = 0.3
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 {
		t.Errorf("HPWL = %g", res.HPWL)
	}
	cfg.Init = "bogus"
	if _, err := Place(d.Clone(), cfg); err == nil {
		t.Error("unknown init accepted")
	}
}

func TestPlacePreconditioned(t *testing.T) {
	d := testDesign(t, 300, 0)
	m, _ := wirelength.ByName("ME")
	cfg := fastConfig(m)
	cfg.Precondition = true
	cfg.MaxIters = 800
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow >= 0.3 {
		t.Errorf("preconditioned run stuck at overflow %g", res.Overflow)
	}
	if math.IsNaN(res.HPWL) || res.HPWL <= 0 {
		t.Errorf("HPWL = %g", res.HPWL)
	}
}

func TestPlaceParallelWirelengthMatches(t *testing.T) {
	d1 := testDesign(t, 300, 0)
	d2 := d1.Clone()
	m, _ := wirelength.ByName("ME")
	cfg := fastConfig(m)
	cfg.MaxIters = 120
	cfg.StopOverflow = 0.4
	r1, err := Place(d1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Workers = 3
	r2, err := Place(d2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// The parallel evaluator reduces worker-partial gradients in a fixed
	// order, so the trajectory may differ only by last-bit rounding; the
	// final quality must agree tightly.
	if math.Abs(r1.HPWL-r2.HPWL) > 0.01*r1.HPWL {
		t.Errorf("parallel placement diverged: %g vs %g", r1.HPWL, r2.HPWL)
	}
}
