package placer

import (
	"math"

	"repro/internal/checkpoint"
)

// GammaSchedule is the ePlace smoothing schedule for exponential wirelength
// models (LSE/WA/BiG):
//
//	gamma(phi) = gamma0/2 * (binW + binH) * 10^((20*phi - 11)/9),
//
// which spans 10x the base smoothing at full overflow (phi = 1) down to
// 0.1x at phi = 0.1. Higher overflow trades approximation accuracy for a
// smoother, easier objective.
type GammaSchedule struct {
	// Gamma0 is the base multiplier (ePlace uses 4.0).
	Gamma0 float64
	// BinW, BinH are the density bin dimensions.
	BinW, BinH float64
}

// At returns gamma for density overflow phi.
func (s GammaSchedule) At(phi float64) float64 {
	phi = clampUnit(phi)
	return s.Gamma0 / 2 * (s.BinW + s.BinH) * math.Pow(10, (20*phi-11)/9)
}

// TSchedule is the paper's tangent-based update for the Moreau smoothing
// parameter (Eq. 14):
//
//	t(phi) = t0/2 * (binW + binH) * tan(pi/2*phi - delta),
//
// with delta a small positive offset preventing the tangent from blowing up
// at phi = 1. The result is clamped below by TMin to stay strictly positive
// once the overflow gets small (the raw tangent crosses zero at
// phi = 2*delta/pi).
type TSchedule struct {
	// T0 is the base multiplier; the paper reports t0 = 4 works well.
	T0 float64
	// Delta is the overflow offset; the paper uses 1e-4.
	Delta float64
	// BinW, BinH are the density bin dimensions.
	BinW, BinH float64
	// TMin floors the parameter (default: 1e-6 * (binW+binH)).
	TMin float64
}

// At returns t for density overflow phi.
func (s TSchedule) At(phi float64) float64 {
	phi = clampUnit(phi)
	tmin := s.TMin
	if tmin <= 0 {
		tmin = 1e-6 * (s.BinW + s.BinH)
	}
	// Keep the tangent argument strictly inside (-pi/2, pi/2).
	arg := math.Pi/2*phi - s.Delta
	if arg >= math.Pi/2 {
		arg = math.Pi/2 - 1e-9
	}
	t := s.T0 / 2 * (s.BinW + s.BinH) * math.Tan(arg)
	if t < tmin {
		return tmin
	}
	return t
}

// LambdaUpdater implements the density-weight schedule of Eq. 15
// (DREAMPlace 3.0 / elfPlace style):
//
//	lambda_{k+1} = lambda_k + alpha_k,
//	alpha_k = (alphaH - (alphaH - alphaL)/(1 + ln(1 + beta*D_k/D_0))) * alpha_{k-1},
//
// where D_k is the density penalty at iteration k. alpha grows geometrically
// with a rate between alphaL and alphaH: a large residual density keeps the
// rate near alphaH (push spreading harder), a small residual keeps it near
// alphaL.
type LambdaUpdater struct {
	// AlphaL, AlphaH bound the growth rate; defaults (1.01, 1.02).
	AlphaL, AlphaH float64
	// Beta scales the density ratio inside the log; default 2000.
	Beta float64

	lambda float64
	alpha  float64
	d0     float64
	primed bool
}

// NewLambdaUpdater creates the updater with the paper's default parameters.
func NewLambdaUpdater() *LambdaUpdater {
	return &LambdaUpdater{AlphaL: 1.01, AlphaH: 1.02, Beta: 2000}
}

// Prime sets the initial density weight lambda0 and records the initial
// density penalty D_0; alpha_0 = (alphaL - 1) * lambda0 per the paper.
func (u *LambdaUpdater) Prime(lambda0, d0 float64) {
	u.lambda = lambda0
	u.alpha = (u.AlphaL - 1) * lambda0
	if d0 <= 0 {
		d0 = 1
	}
	u.d0 = d0
	u.primed = true
}

// Lambda returns the current density weight.
func (u *LambdaUpdater) Lambda() float64 { return u.lambda }

// State dumps the updater's mutable state for checkpointing.
func (u *LambdaUpdater) State() checkpoint.LambdaState {
	return checkpoint.LambdaState{Lambda: u.lambda, Alpha: u.alpha, D0: u.d0, Primed: u.primed}
}

// RestoreState overwrites the updater's mutable state from a checkpoint.
func (u *LambdaUpdater) RestoreState(s checkpoint.LambdaState) {
	u.lambda, u.alpha, u.d0, u.primed = s.Lambda, s.Alpha, s.D0, s.Primed
}

// Update advances lambda given the density penalty observed this iteration.
func (u *LambdaUpdater) Update(dk float64) float64 {
	if !u.primed {
		panic("placer: LambdaUpdater used before Prime")
	}
	ratio := u.Beta * dk / u.d0
	if ratio < 0 {
		ratio = 0
	}
	rate := u.AlphaH - (u.AlphaH-u.AlphaL)/(1+math.Log(1+ratio))
	u.alpha *= rate
	u.lambda += u.alpha
	return u.lambda
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
