package placer

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/density"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/wirelength"
)

// finitePositions fails the test if any movable cell of d sits at a
// non-finite coordinate.
func finitePositions(t *testing.T, res *Result) {
	t.Helper()
	if math.IsNaN(res.HPWL) || math.IsInf(res.HPWL, 0) {
		t.Fatalf("result HPWL is non-finite: %v", res.HPWL)
	}
	if math.IsNaN(res.Overflow) || math.IsInf(res.Overflow, 0) {
		t.Fatalf("result overflow is non-finite: %v", res.Overflow)
	}
}

// TestGuardNilAndIdleAreBitIdentical the acceptance equivalence check: a
// run with the guard enabled but never tripping must be bit-identical to a
// guardless run — every guard read is side-effect free — and Guard == nil
// must cost nothing.
func TestGuardNilAndIdleAreBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 3} {
		dA := testDesign(t, 80, 0)
		cfgA := resumeBase(workers)
		resA, err := Place(dA, cfgA)
		if err != nil {
			t.Fatal(err)
		}

		dB := testDesign(t, 80, 0)
		cfgB := resumeBase(workers)
		cfgB.Guard = &guard.Config{}
		resB, err := Place(dB, cfgB)
		if err != nil {
			t.Fatal(err)
		}

		if resB.GuardTrips != 0 || resB.GuardRollbacks != 0 {
			t.Fatalf("workers=%d: healthy run tripped the guard: %d trips, %d rollbacks",
				workers, resB.GuardTrips, resB.GuardRollbacks)
		}
		if resA.HPWL != resB.HPWL || resA.Overflow != resB.Overflow {
			t.Errorf("workers=%d: HPWL/overflow diverged: %v/%v vs %v/%v",
				workers, resA.HPWL, resA.Overflow, resB.HPWL, resB.Overflow)
		}
		if resA.Evaluations != resB.Evaluations {
			t.Errorf("workers=%d: Evaluations = %d vs %d", workers, resA.Evaluations, resB.Evaluations)
		}
		if !reflect.DeepEqual(resA.Trajectory, resB.Trajectory) {
			t.Errorf("workers=%d: trajectories diverged", workers)
		}
		for c := range dA.Cells {
			if dA.X[c] != dB.X[c] || dA.Y[c] != dB.Y[c] {
				t.Fatalf("workers=%d: cell %d diverged: (%v,%v) vs (%v,%v)",
					workers, c, dA.X[c], dA.Y[c], dB.X[c], dB.Y[c])
			}
		}
	}
}

// TestGuardRecoversFromInjectedNaN the headline fault-injection test: one
// NaN poisoned into the wirelength gradient mid-loop trips the guard in
// the same iteration, rolls back, and — because the first retry replays at
// full step and the fault is transient — finishes bit-identical to the
// clean run (far inside the 1% acceptance tolerance).
func TestGuardRecoversFromInjectedNaN(t *testing.T) {
	dClean := testDesign(t, 80, 0)
	clean, err := Place(dClean, resumeBase(1))
	if err != nil {
		t.Fatal(err)
	}

	// Eval 40 lands mid-loop: past setup calibration (1 visit) and well
	// into the Nesterov iterations (1-3 evals each).
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteWirelengthGrad, Mode: faultinject.ModeNaN, After: 40,
	})
	wirelength.GradHook = func(model string, gradX, gradY []float64) {
		if _, ok := plan.Visit(faultinject.SiteWirelengthGrad); ok {
			for i := range gradX {
				gradX[i] = math.NaN()
			}
		}
	}
	defer func() { wirelength.GradHook = nil }()

	var events []guard.Event
	d := testDesign(t, 80, 0)
	cfg := resumeBase(1)
	cfg.Guard = &guard.Config{OnEvent: func(ev guard.Event) { events = append(events, ev) }}
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if plan.Fired(faultinject.SiteWirelengthGrad) != 1 {
		t.Fatalf("fault fired %d times, want 1", plan.Fired(faultinject.SiteWirelengthGrad))
	}
	if res.GuardTrips != 1 || res.GuardRollbacks != 1 {
		t.Fatalf("GuardTrips=%d GuardRollbacks=%d, want 1/1", res.GuardTrips, res.GuardRollbacks)
	}
	if res.GuardRecoveries != 1 {
		t.Errorf("GuardRecoveries = %d, want 1 (episode should close within the run)", res.GuardRecoveries)
	}
	finitePositions(t, res)
	if res.HPWL != clean.HPWL {
		t.Errorf("HPWL after recovery = %v, want bit-identical %v (diff %g)",
			res.HPWL, clean.HPWL, res.HPWL-clean.HPWL)
	}
	if math.Abs(res.HPWL-clean.HPWL) > 0.01*clean.HPWL {
		t.Errorf("HPWL after recovery off by more than 1%%: %v vs %v", res.HPWL, clean.HPWL)
	}
	for c := range d.Cells {
		if d.X[c] != dClean.X[c] || d.Y[c] != dClean.Y[c] {
			t.Fatalf("cell %d diverged after recovery", c)
		}
	}

	var kinds []guard.EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []guard.EventKind{guard.EventTrip, guard.EventRollback, guard.EventRecover}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("event sequence = %v, want %v", kinds, want)
	}
	if events[0].Violation == nil || events[0].Violation.Kind != guard.KindNonFinitePositions {
		t.Errorf("trip violation = %+v, want %s", events[0].Violation, guard.KindNonFinitePositions)
	}
}

// TestGuardDivergenceErrorAfterRetryBudget a fault that poisons every
// gradient evaluation can never be replayed past: the guard burns its
// whole retry budget and fails with a typed DivergenceError — no panic,
// and the returned result holds the restored (finite) last-good state.
func TestGuardDivergenceErrorAfterRetryBudget(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteWirelengthGrad, Mode: faultinject.ModeNaN, After: 40, Forever: true,
	})
	wirelength.GradHook = func(model string, gradX, gradY []float64) {
		if _, ok := plan.Visit(faultinject.SiteWirelengthGrad); ok {
			for i := range gradX {
				gradX[i] = math.NaN()
			}
		}
	}
	defer func() { wirelength.GradHook = nil }()

	d := testDesign(t, 80, 0)
	cfg := resumeBase(1)
	cfg.Guard = &guard.Config{MaxRetries: 2}
	res, err := Place(d, cfg)
	var de *guard.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *guard.DivergenceError", err)
	}
	if de.Retries != 2 {
		t.Errorf("Retries = %d, want 2", de.Retries)
	}
	if len(de.Violations) != 3 {
		t.Errorf("violation history has %d entries, want 3 (2 retries + final)", len(de.Violations))
	}
	if de.LastGood < 0 {
		t.Errorf("LastGood = %d, want a valid iteration", de.LastGood)
	}
	if res == nil {
		t.Fatal("failed run returned no partial result")
	}
	finitePositions(t, res)
	for c := range d.Cells {
		if math.IsNaN(d.X[c]) || math.IsNaN(d.Y[c]) {
			t.Fatalf("cell %d left at NaN after divergence failure", c)
		}
	}
	if res.GuardTrips != 3 {
		t.Errorf("GuardTrips = %d, want 3", res.GuardTrips)
	}
}

// TestGuardRecoversFromPoisonedSolve one poisoned Poisson field output
// propagates NaN through the density gradient; the guard absorbs it the
// same way as a wirelength fault.
func TestGuardRecoversFromPoisonedSolve(t *testing.T) {
	dClean := testDesign(t, 80, 0)
	clean, err := Place(dClean, resumeBase(1))
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SitePoissonSolve, Mode: faultinject.ModePoison, After: 35,
	})
	density.SolveHook = func(e *density.Electro) {
		if _, ok := plan.Visit(faultinject.SitePoissonSolve); ok {
			for i := range e.Ex {
				e.Ex[i] = math.NaN()
			}
		}
	}
	defer func() { density.SolveHook = nil }()

	d := testDesign(t, 80, 0)
	cfg := resumeBase(1)
	cfg.Guard = &guard.Config{}
	res, err := Place(d, cfg)
	if err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if res.GuardTrips < 1 {
		t.Fatal("poisoned solve never tripped the guard")
	}
	finitePositions(t, res)
	if res.HPWL != clean.HPWL {
		t.Errorf("HPWL after recovery = %v, want bit-identical %v", res.HPWL, clean.HPWL)
	}
}

// TestUnguardedNaNDoesNotPanic without the guard an injected NaN must
// still not crash the process (the density stamp/sample clamps make NaN
// footprints empty); the run just produces a garbage result. This pins
// down the failure mode the EXPERIMENTS note contrasts with guarded runs.
func TestUnguardedNaNDoesNotPanic(t *testing.T) {
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteWirelengthGrad, Mode: faultinject.ModeNaN, After: 40,
	})
	wirelength.GradHook = func(model string, gradX, gradY []float64) {
		if _, ok := plan.Visit(faultinject.SiteWirelengthGrad); ok {
			for i := range gradX {
				gradX[i] = math.NaN()
			}
		}
	}
	defer func() { wirelength.GradHook = nil }()

	d := testDesign(t, 80, 0)
	res, err := Place(d, resumeBase(1))
	if err != nil {
		t.Fatalf("unguarded run errored (want silent garbage): %v", err)
	}
	if !math.IsNaN(res.HPWL) {
		t.Logf("unguarded HPWL survived as %v (positions clamped)", res.HPWL)
	}
}
