package placer

import (
	"math"
	"testing"

	"repro/internal/wirelength"
)

// evalOnce builds an engine at the given worker count and runs one full
// objective/gradient evaluation (wirelength + stamping + spectral solve +
// field gather) at the initial placement.
func evalOnce(t *testing.T, workers int) (obj float64, grad []float64) {
	t.Helper()
	d := testDesign(t, 600, 2)
	cfg := DefaultConfig(wirelength.NewMoreau())
	cfg.Workers = workers
	en, pos, err := newEngine(d, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	en.param = 1.5
	en.lambda = 1e-3
	grad = make([]float64, len(pos))
	return en.eval(pos, grad), grad
}

// TestEvalParallelMatchesSerial checks the documented 1e-12 contract for the
// full evaluation pipeline: serial and parallel engines must agree on the
// objective and every gradient component for ragged and even pool sizes.
// The wirelength model is the same serial instance in every engine, so this
// isolates the density pipeline (stamping, overflow, solve, gather).
func TestEvalParallelMatchesSerial(t *testing.T) {
	refObj, refGrad := evalOnce(t, 1)
	for _, workers := range []int{1, 2, 7} {
		obj, grad := evalOnce(t, workers)
		if rel := math.Abs(obj-refObj) / math.Max(1, math.Abs(refObj)); rel > 1e-12 {
			t.Errorf("workers=%d: objective %v vs serial %v (rel %g)", workers, obj, refObj, rel)
		}
		for i := range grad {
			if d := math.Abs(grad[i]-refGrad[i]) / math.Max(1, math.Abs(refGrad[i])); d > 1e-12 {
				t.Fatalf("workers=%d: grad[%d] = %v vs serial %v", workers, i, grad[i], refGrad[i])
			}
		}
	}
}

// TestPlaceParallelMatchesSerialRun runs a short full placement serially and
// with a pool; with the deterministic per-worker reduction the trajectories
// must track each other to high precision (identical iteration count and
// near-identical final wirelength).
func TestPlaceParallelMatchesSerialRun(t *testing.T) {
	run := func(workers int) *Result {
		d := testDesign(t, 400, 0)
		cfg := fastConfig(wirelength.NewMoreau())
		cfg.MaxIters = 60
		cfg.Workers = workers
		res, err := Place(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	par := run(3)
	if par.Iterations != serial.Iterations {
		t.Errorf("iterations: parallel %d vs serial %d", par.Iterations, serial.Iterations)
	}
	if rel := math.Abs(par.HPWL-serial.HPWL) / serial.HPWL; rel > 1e-6 {
		t.Errorf("HPWL diverged: parallel %v vs serial %v (rel %g)", par.HPWL, serial.HPWL, rel)
	}
}

// TestEffectiveWorkersDefault pins that an unset worker knob means serial.
// (The deprecated WLWorkers alias lives only in the service JSON layer now;
// its one pinning test is service.TestPlacerSpecWorkers.)
func TestEffectiveWorkersDefault(t *testing.T) {
	for _, c := range []struct{ workers, want int }{{0, 1}, {1, 1}, {4, 4}} {
		cfg := Config{Workers: c.workers}
		if got := cfg.effectiveWorkers(); got != c.want {
			t.Errorf("Workers=%d: effectiveWorkers() = %d, want %d", c.workers, got, c.want)
		}
	}
}
