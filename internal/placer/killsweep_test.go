package placer

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/wirelength"
)

// TestKillAtEveryIterationSweep kills a run at iteration k for every k in
// the loop (checkpointing every iteration), resumes each via ResumeDir,
// and checks every resumed run completes with the uninterrupted run's
// exact final HPWL — the deterministic pipeline makes "within tolerance"
// collapse to bit-identical.
func TestKillAtEveryIterationSweep(t *testing.T) {
	const iters = 12
	base := func() Config {
		cfg := DefaultConfig(wirelength.NewWA())
		cfg.MaxIters = iters
		cfg.StopOverflow = 1e-9 // never triggers: every run does all iterations
		cfg.GridX, cfg.GridY = 16, 16
		return cfg
	}

	dRef := testDesign(t, 40, 0)
	ref, err := Place(dRef, base())
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= iters; k++ {
		k := k
		t.Run(fmt.Sprintf("kill-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			cfg := base()
			cfg.Checkpoint = CheckpointConfig{Every: 1, Dir: dir, Keep: 2}
			cfg.OnIteration = func(pt TrajectoryPoint) bool {
				if pt.Iter >= k-1 {
					cancel() // takes effect at the top of iteration k
				}
				return true
			}
			_, err := PlaceContext(ctx, testDesign(t, 40, 0), cfg)
			if !errors.Is(err, context.Canceled) && err != nil {
				t.Fatalf("killed run: err = %v", err)
			}
			if _, _, err := checkpoint.LoadLatest(dir); err != nil {
				t.Fatalf("no snapshot after kill at %d: %v", k, err)
			}

			d := testDesign(t, 40, 0)
			rcfg := base()
			rcfg.ResumeDir = dir
			res, err := Place(d, rcfg)
			if err != nil {
				t.Fatalf("resume after kill at %d: %v", k, err)
			}
			if res.ResumedFrom < k {
				t.Errorf("ResumedFrom = %d, want >= %d", res.ResumedFrom, k)
			}
			if res.Iterations != iters {
				t.Errorf("resumed run did %d iterations, want %d", res.Iterations, iters)
			}
			if res.HPWL != ref.HPWL {
				t.Errorf("kill at %d: HPWL = %v, want bit-identical %v (diff %g)",
					k, res.HPWL, ref.HPWL, res.HPWL-ref.HPWL)
			}
			for c := range dRef.Cells {
				if d.X[c] != dRef.X[c] || d.Y[c] != dRef.Y[c] {
					t.Fatalf("kill at %d: cell %d diverged", k, c)
				}
			}
		})
	}
}

// TestResumeDirColdStartAndMismatch ResumeDir with an empty directory (or
// only mismatched snapshots) cold-starts instead of failing, and
// Resume+ResumeDir together are rejected by Validate.
func TestResumeDirColdStartAndMismatch(t *testing.T) {
	cfg := resumeBase(1)
	cfg.MaxIters = 5
	cfg.ResumeDir = t.TempDir() // empty: cold start
	res, err := Place(testDesign(t, 40, 0), cfg)
	if err != nil {
		t.Fatalf("empty ResumeDir: %v", err)
	}
	if res.ResumedFrom != 0 {
		t.Errorf("ResumedFrom = %d, want 0 (cold start)", res.ResumedFrom)
	}

	// A directory holding only a snapshot from a different setup also
	// cold-starts (the fingerprint filter skips it).
	dir := t.TempDir()
	other := resumeBase(1)
	other.MaxIters = 4
	other.Seed = 99
	other.Checkpoint = CheckpointConfig{Every: 2, Dir: dir}
	if _, err := Place(testDesign(t, 40, 0), other); err != nil {
		t.Fatal(err)
	}
	cfg2 := resumeBase(1) // Seed 1 != 99: fingerprint mismatch
	cfg2.MaxIters = 5
	cfg2.ResumeDir = dir
	res2, err := Place(testDesign(t, 40, 0), cfg2)
	if err != nil {
		t.Fatalf("mismatched ResumeDir: %v", err)
	}
	if res2.ResumedFrom != 0 {
		t.Errorf("ResumedFrom = %d, want 0 (mismatch skipped)", res2.ResumedFrom)
	}

	bad := resumeBase(1)
	bad.ResumeDir = dir
	bad.Resume = &checkpoint.Snapshot{}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted Resume and ResumeDir together")
	}
}
