package placer

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/wirelength"
)

// resumeBase is the shared config of the equivalence tests: long enough to
// spread cells, small enough to run in milliseconds, and with a stop
// overflow that never triggers so every run executes exactly MaxIters.
func resumeBase(workers int) Config {
	cfg := DefaultConfig(wirelength.NewWA())
	cfg.MaxIters = 60
	cfg.StopOverflow = 1e-9
	cfg.GridX, cfg.GridY = 16, 16
	cfg.RecordEvery = 7
	cfg.Workers = workers
	return cfg
}

// TestCheckpointResumeBitExact is the kill-and-resume equivalence check: a
// run checkpointed at iteration k and restarted from the snapshot (same
// worker count) must finish with bit-identical positions, HPWL, and
// trajectory to the run that was never interrupted.
func TestCheckpointResumeBitExact(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Reference: uninterrupted run.
			dA := testDesign(t, 80, 0)
			resA, err := Place(dA, resumeBase(workers))
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: stops after 30 iterations, snapshots every 10.
			dir := t.TempDir()
			dB := testDesign(t, 80, 0)
			cfgB := resumeBase(workers)
			cfgB.MaxIters = 30
			cfgB.Checkpoint = CheckpointConfig{Every: 10, Dir: dir, Keep: 2}
			resB, err := Place(dB, cfgB)
			if err != nil {
				t.Fatal(err)
			}
			if resB.Checkpoints != 3 {
				t.Fatalf("interrupted run wrote %d checkpoints, want 3", resB.Checkpoints)
			}
			names, err := checkpoint.List(dir)
			if err != nil {
				t.Fatal(err)
			}
			if want := []string{checkpoint.FileName(20), checkpoint.FileName(30)}; !reflect.DeepEqual(names, want) {
				t.Fatalf("Keep=2 retained %v, want %v", names, want)
			}

			snap, _, err := checkpoint.LoadLatest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Iter != 30 {
				t.Fatalf("latest snapshot is at iteration %d, want 30", snap.Iter)
			}

			// Resume on a fresh copy of the design and finish the run.
			dC := testDesign(t, 80, 0)
			cfgC := resumeBase(workers)
			cfgC.Resume = snap
			resC, err := Place(dC, cfgC)
			if err != nil {
				t.Fatal(err)
			}

			if resC.ResumedFrom != 30 {
				t.Errorf("ResumedFrom = %d, want 30", resC.ResumedFrom)
			}
			if resC.Iterations != resA.Iterations {
				t.Errorf("Iterations = %d, want %d", resC.Iterations, resA.Iterations)
			}
			if resC.Evaluations != resA.Evaluations {
				t.Errorf("Evaluations = %d, want %d", resC.Evaluations, resA.Evaluations)
			}
			if resC.HPWL != resA.HPWL {
				t.Errorf("HPWL = %v, want bit-identical %v (diff %g)", resC.HPWL, resA.HPWL, resC.HPWL-resA.HPWL)
			}
			if resC.Overflow != resA.Overflow {
				t.Errorf("Overflow = %v, want bit-identical %v", resC.Overflow, resA.Overflow)
			}
			for c := range dA.Cells {
				if dA.X[c] != dC.X[c] || dA.Y[c] != dC.Y[c] {
					t.Fatalf("cell %d position diverged: (%v,%v) vs (%v,%v)",
						c, dA.X[c], dA.Y[c], dC.X[c], dC.Y[c])
				}
			}
			if !reflect.DeepEqual(resA.Trajectory, resC.Trajectory) {
				t.Errorf("trajectories diverged: %d vs %d points", len(resA.Trajectory), len(resC.Trajectory))
			}
		})
	}
}

// TestResumeRejectsMismatchedConfig resume under a different worker count,
// model, or design must fail with checkpoint.ErrMismatch (determinism — and
// hence bit-exact resume — only holds for the identical setup).
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	d := testDesign(t, 60, 0)
	cfg := resumeBase(1)
	cfg.MaxIters = 10
	cfg.Checkpoint = CheckpointConfig{Every: 5, Dir: dir}
	if _, err := Place(d, cfg); err != nil {
		t.Fatal(err)
	}
	snap, _, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"workers", func(c *Config) { c.Workers = 4 }},
		{"model", func(c *Config) { c.Model = wirelength.NewLSE() }},
		{"grid", func(c *Config) { c.GridX, c.GridY = 32, 32 }},
		{"optimizer", func(c *Config) { c.Optimizer = "adam" }},
		{"seed", func(c *Config) { c.Seed = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := resumeBase(1)
			c.Resume = snap
			tc.mut(&c)
			_, err := Place(testDesign(t, 60, 0), c)
			if !errors.Is(err, checkpoint.ErrMismatch) {
				t.Errorf("err = %v, want checkpoint.ErrMismatch", err)
			}
		})
	}

	t.Run("different design", func(t *testing.T) {
		c := resumeBase(1)
		c.Resume = snap
		_, err := Place(testDesign(t, 90, 0), c)
		if !errors.Is(err, checkpoint.ErrMismatch) {
			t.Errorf("err = %v, want checkpoint.ErrMismatch", err)
		}
	})
}

// TestCheckpointOnCancel a cancelled run leaves a snapshot of its freshest
// state behind, and that snapshot resumes cleanly.
func TestCheckpointOnCancel(t *testing.T) {
	dir := t.TempDir()
	d := testDesign(t, 60, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := resumeBase(1)
	cfg.Checkpoint = CheckpointConfig{Dir: dir} // no periodic writes: only the cancel path
	cfg.OnIteration = func(pt TrajectoryPoint) bool {
		if pt.Iter >= 12 {
			cancel()
		}
		return true
	}
	_, err := PlaceContext(ctx, d, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap, _, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatalf("no snapshot after cancel: %v", err)
	}
	if snap.Iter < 12 {
		t.Fatalf("cancel snapshot at iteration %d, want >= 12", snap.Iter)
	}
	c := resumeBase(1)
	c.Resume = snap
	c.OnIteration = nil
	res, err := Place(testDesign(t, 60, 0), c)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if res.Iterations != c.MaxIters {
		t.Errorf("resumed run did %d iterations, want %d", res.Iterations, c.MaxIters)
	}
}

// TestCheckpointOnEarlyStop the OnIteration-stop path also snapshots.
func TestCheckpointOnEarlyStop(t *testing.T) {
	dir := t.TempDir()
	cfg := resumeBase(1)
	cfg.Checkpoint = CheckpointConfig{Dir: dir}
	cfg.OnIteration = func(pt TrajectoryPoint) bool { return pt.Iter < 7 }
	res, err := Place(testDesign(t, 60, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("run was not stopped by the hook")
	}
	snap, _, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatalf("no snapshot after early stop: %v", err)
	}
	if snap.Iter != 8 {
		t.Errorf("early-stop snapshot at iteration %d, want 8", snap.Iter)
	}
}

func TestValidateRejectsNegativeKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative Workers", func(c *Config) { c.Workers = -1 }},
		{"negative Checkpoint.Every", func(c *Config) { c.Checkpoint.Every = -5 }},
		{"negative Checkpoint.Keep", func(c *Config) { c.Checkpoint.Keep = -1 }},
		{"Every without Dir", func(c *Config) { c.Checkpoint.Every = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(wirelength.NewWA())
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted a bad config")
			}
			if _, err := Place(testDesign(t, 60, 0), cfg); err == nil {
				t.Fatal("Place accepted a bad config")
			}
		})
	}
}
