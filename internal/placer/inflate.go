package placer

import (
	"context"
	"fmt"

	"repro/internal/congestion"
	"repro/internal/netlist"
)

// InflateOptions tunes congestion-driven cell inflation (the RePlAce-style
// routability loop: cells in congested bins get virtual area so the density
// system spreads them apart, trading wirelength for routability).
type InflateOptions struct {
	// GridX, GridY size the RUDY congestion map (default 64x64).
	GridX, GridY int
	// Threshold marks a bin congested when its demand exceeds
	// Threshold * average demand (default 2.0).
	Threshold float64
	// MaxRatio caps the per-cell inflation factor (default 2.0).
	MaxRatio float64
}

// InflationResult reports what a congestion-driven inflation pass did.
type InflationResult struct {
	// Inflated counts cells that received virtual area.
	Inflated int
	// AreaRatio is total inflated area / original movable area.
	AreaRatio float64
	// PeakBefore is the congestion peak that drove the inflation.
	PeakBefore float64
}

// InflateCongested grows the width of movable standard cells located in
// congested bins of the current placement, proportionally to the bin's
// demand ratio (capped at MaxRatio). The caller re-runs global placement
// with KeepPositions=true afterwards; RestoreSizes undoes the inflation
// before legalization. Returns the per-cell original widths needed by
// RestoreSizes.
func InflateCongested(d *netlist.Design, opt InflateOptions) ([]float64, *InflationResult, error) {
	if opt.GridX <= 0 {
		opt.GridX = 64
	}
	if opt.GridY <= 0 {
		opt.GridY = 64
	}
	if opt.Threshold <= 0 {
		opt.Threshold = 2.0
	}
	if opt.MaxRatio <= 1 {
		opt.MaxRatio = 2.0
	}
	cmap, err := congestion.RUDY(d, opt.GridX, opt.GridY)
	if err != nil {
		return nil, nil, fmt.Errorf("placer: inflation: %w", err)
	}
	stats := cmap.ComputeStats()
	if stats.Avg <= 0 {
		return nil, &InflationResult{}, nil
	}
	origW := make([]float64, d.NumCells())
	for i := range d.Cells {
		origW[i] = d.Cells[i].W
	}
	res := &InflationResult{PeakBefore: stats.Peak}
	var origArea, newArea float64
	for _, c := range d.MovableIndices() {
		cell := &d.Cells[c]
		origArea += cell.Area()
		if cell.Kind == netlist.MovableMacro {
			newArea += cell.Area()
			continue
		}
		ix := int((d.CenterX(c) - cmap.Region.XL) / cmap.BinW)
		iy := int((d.CenterY(c) - cmap.Region.YL) / cmap.BinH)
		if ix < 0 || ix >= cmap.Nx || iy < 0 || iy >= cmap.Ny {
			newArea += cell.Area()
			continue
		}
		ratio := cmap.Demand[iy*cmap.Nx+ix] / (opt.Threshold * stats.Avg)
		if ratio > 1 {
			if ratio > opt.MaxRatio {
				ratio = opt.MaxRatio
			}
			cell.W *= ratio
			res.Inflated++
		}
		newArea += cell.Area()
	}
	if origArea > 0 {
		res.AreaRatio = newArea / origArea
	}
	return origW, res, nil
}

// RestoreSizes undoes InflateCongested using the widths it returned.
func RestoreSizes(d *netlist.Design, origW []float64) {
	for i := range d.Cells {
		if i < len(origW) {
			d.Cells[i].W = origW[i]
		}
	}
}

// PlaceRoutability runs the routability-driven loop: a normal global
// placement, then up to `rounds` of congestion-driven inflation followed by
// incremental re-placement from the previous solution, and finally restores
// true cell sizes. The returned result is the last placement's.
func PlaceRoutability(d *netlist.Design, cfg Config, rounds int, inflate InflateOptions) (*Result, *InflationResult, error) {
	return PlaceRoutabilityContext(context.Background(), d, cfg, rounds, inflate)
}

// PlaceRoutabilityContext is PlaceRoutability with per-iteration context
// cancellation (see PlaceContext).
func PlaceRoutabilityContext(ctx context.Context, d *netlist.Design, cfg Config, rounds int, inflate InflateOptions) (*Result, *InflationResult, error) {
	if rounds <= 0 {
		rounds = 1
	}
	res, err := PlaceContext(ctx, d, cfg)
	if err != nil {
		return nil, nil, err
	}
	var lastInfo *InflationResult
	for r := 0; r < rounds; r++ {
		origW, info, err := InflateCongested(d, inflate)
		if err != nil {
			return nil, nil, err
		}
		lastInfo = info
		if info.Inflated == 0 {
			break
		}
		incr := cfg
		incr.KeepPositions = true
		incr.Init = "keep"
		// Incremental rounds need fewer iterations: start from the
		// previous solution.
		if incr.MaxIters == 0 || incr.MaxIters > 300 {
			incr.MaxIters = 300
		}
		res, err = PlaceContext(ctx, d, incr)
		RestoreSizes(d, origW)
		if err != nil {
			return nil, nil, err
		}
	}
	d.ClampToRegion()
	return res, lastInfo, nil
}
