package density

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/geom"
)

// benchWorkerCounts are the pool sizes the perf trajectory tracks; the
// Workers=4 vs Workers=1 ratio is the PR-over-PR speedup metric recorded in
// BENCH_PR2.json (meaningful only on a 4+-core machine).
var benchWorkerCounts = []int{1, 2, 4}

// BenchmarkElectroSolve measures one spectral Poisson solve (forward 2-D
// DCT, three scaled syntheses) on a 256x256 grid, the dominant density cost
// of a Nesterov iteration on large designs.
func BenchmarkElectroSolve(b *testing.B) {
	const nx, ny = 256, 256
	region := geom.Rect{XL: 0, YL: 0, XH: 1000, YH: 1000}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewElectroWorkers(NewGrid(region, nx, ny), workers)
			for i := range e.Rho {
				e.Rho[i] = float64(i%97) / 97
			}
			// Warm up so short -benchtime runs measure the steady state
			// (faulted-in buffers, hot caches), not process start-up, and
			// settle construction garbage so no GC cycle lands inside a
			// measured iteration.
			for i := 0; i < 3; i++ {
				e.Solve()
			}
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Solve()
			}
		})
	}
}

// BenchmarkStamp measures one full movable-cell scatter (50k smoothed
// footprints) onto a 256x256 grid, including the per-worker reduction.
func BenchmarkStamp(b *testing.B) {
	const nCells = 50000
	region := geom.Rect{XL: 0, YL: 0, XH: 1000, YH: 1000}
	cx, cy, w, h := testCells(nCells, region, 3)
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			g := NewGrid(region, 256, 256)
			s := NewStamper(g, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Clear()
				s.StampSmoothed(nCells, func(i int) (float64, float64, float64, float64) {
					return cx[i], cy[i], w[i], h[i]
				})
			}
		})
	}
}
