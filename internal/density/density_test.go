package density

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func testRegion() geom.Rect { return geom.Rect{XL: 0, YL: 0, XH: 64, YH: 32} }

func TestNewGridRejectsBadShapes(t *testing.T) {
	for _, dims := range [][2]int{{0, 8}, {8, 0}, {7, 8}, {8, 12}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(%v) did not panic", dims)
				}
			}()
			NewGrid(testRegion(), dims[0], dims[1])
		}()
	}
}

func TestBinGeometry(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8)
	if g.BinW != 4 || g.BinH != 4 {
		t.Fatalf("bin size = %gx%g, want 4x4", g.BinW, g.BinH)
	}
	ix, iy := g.BinIndex(5, 9)
	if ix != 1 || iy != 2 {
		t.Errorf("BinIndex(5,9) = %d,%d", ix, iy)
	}
	// Clamping outside the region.
	ix, iy = g.BinIndex(-10, 1000)
	if ix != 0 || iy != 7 {
		t.Errorf("clamped BinIndex = %d,%d", ix, iy)
	}
}

func TestStampRectConservesArea(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8)
	g.StampRect(3, 5, 13, 11, 1)
	if got, want := g.SumDensity(), 60.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("stamped area = %g, want %g", got, want)
	}
	// A rect crossing the region boundary only deposits the clipped part.
	g.Clear()
	g.StampRect(-10, -10, 4, 4, 1)
	if got, want := g.SumDensity(), 16.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("clipped stamped area = %g, want %g", got, want)
	}
}

func TestStampRectDistribution(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8)
	// A 2x2 rect exactly in the corner of bin (0,0).
	g.StampRect(0, 0, 2, 2, 1)
	if g.Density[0] != 4 {
		t.Errorf("bin(0,0) = %g, want 4", g.Density[0])
	}
	// A rect straddling two bins horizontally splits proportionally.
	g.Clear()
	g.StampRect(3, 0, 5, 1, 1)
	if math.Abs(g.Density[0]-1) > 1e-12 || math.Abs(g.Density[1]-1) > 1e-12 {
		t.Errorf("straddle split = %g, %g, want 1, 1", g.Density[0], g.Density[1])
	}
}

func TestStampSmoothedConservesArea(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8)
	// Tiny cell (1x1, smaller than sqrt2*4): expanded but area-preserving.
	g.StampSmoothed(32, 16, 1, 1)
	if got := g.SumDensity(); math.Abs(got-1) > 1e-9 {
		t.Errorf("smoothed stamp area = %g, want 1", got)
	}
	// Large cell: stamped at true size.
	g.Clear()
	g.StampSmoothed(32, 16, 20, 10)
	if got := g.SumDensity(); math.Abs(got-200) > 1e-9 {
		t.Errorf("large stamp area = %g, want 200", got)
	}
}

func TestOverflow(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8) // bin area 16
	// One bin at double target, everything else empty.
	g.Density[0] = 32
	movableArea := 32.0
	phi := g.Overflow(1.0, movableArea)
	// overflow = (32-16)/32 = 0.5
	if math.Abs(phi-0.5) > 1e-12 {
		t.Errorf("overflow = %g, want 0.5", phi)
	}
	// Fixed density shrinks the free area of the bin.
	g.FixedDensity[0] = 8
	phi = g.Overflow(1.0, movableArea)
	if math.Abs(phi-(32-8)/32.0) > 1e-12 {
		t.Errorf("overflow with blockage = %g, want 0.75", phi)
	}
	// Uniform spread at exactly target density has no overflow.
	g.Clear()
	g.ClearFixed()
	for i := range g.Density {
		g.Density[i] = 8 // half of bin area, target 0.5
	}
	if phi := g.Overflow(0.5, 8*16*8); phi != 0 {
		t.Errorf("balanced overflow = %g, want 0", phi)
	}
}

func TestOverflowZeroMovableArea(t *testing.T) {
	g := NewGrid(testRegion(), 8, 8)
	if g.Overflow(1, 0) != 0 {
		t.Error("overflow with no movable area should be 0")
	}
}

// The spectral solver must reproduce the analytic solution for a single
// cosine mode: rho = cos(wu x)cos(wv y) => psi = rho/(wu^2+wv^2),
// Ex = wu/(wu^2+wv^2) sin(wu x)cos(wv y).
func TestElectroSingleModeAnalytic(t *testing.T) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 128, YH: 64}, 64, 32)
	e := NewElectro(g)
	u0, v0 := 3, 2
	wu := math.Pi * float64(u0) / g.Region.W()
	wv := math.Pi * float64(v0) / g.Region.H()
	for iy := 0; iy < g.Ny; iy++ {
		y := (float64(iy) + 0.5) * g.BinH
		for ix := 0; ix < g.Nx; ix++ {
			x := (float64(ix) + 0.5) * g.BinW
			e.Rho[iy*g.Nx+ix] = math.Cos(wu*x) * math.Cos(wv*y)
		}
	}
	e.Solve()
	k2 := wu*wu + wv*wv
	for iy := 0; iy < g.Ny; iy++ {
		y := (float64(iy) + 0.5) * g.BinH
		for ix := 0; ix < g.Nx; ix++ {
			x := (float64(ix) + 0.5) * g.BinW
			i := iy*g.Nx + ix
			wantPsi := math.Cos(wu*x) * math.Cos(wv*y) / k2
			if math.Abs(e.Psi[i]-wantPsi) > 1e-9 {
				t.Fatalf("psi[%d,%d] = %g, want %g", ix, iy, e.Psi[i], wantPsi)
			}
			wantEx := wu / k2 * math.Sin(wu*x) * math.Cos(wv*y)
			if math.Abs(e.Ex[i]-wantEx) > 1e-9 {
				t.Fatalf("Ex[%d,%d] = %g, want %g", ix, iy, e.Ex[i], wantEx)
			}
			wantEy := wv / k2 * math.Cos(wu*x) * math.Sin(wv*y)
			if math.Abs(e.Ey[i]-wantEy) > 1e-9 {
				t.Fatalf("Ey[%d,%d] = %g, want %g", ix, iy, e.Ey[i], wantEy)
			}
		}
	}
}

// For arbitrary density, the interior of the solved potential must satisfy
// the Poisson equation laplacian(psi) = -(rho - mean(rho)) to discretization
// accuracy, and the field must be the negative gradient of psi.
func TestElectroPoissonResidual(t *testing.T) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 64, YH: 64}, 64, 64)
	e := NewElectro(g)
	rng := rand.New(rand.NewSource(1))
	// Smooth random density: a few random low-frequency modes.
	type mode struct {
		u, v int
		amp  float64
	}
	modes := []mode{}
	for k := 0; k < 6; k++ {
		modes = append(modes, mode{1 + rng.Intn(5), 1 + rng.Intn(5), rng.NormFloat64()})
	}
	for iy := 0; iy < g.Ny; iy++ {
		y := (float64(iy) + 0.5) * g.BinH
		for ix := 0; ix < g.Nx; ix++ {
			x := (float64(ix) + 0.5) * g.BinW
			s := 0.0
			for _, m := range modes {
				s += m.amp * math.Cos(math.Pi*float64(m.u)*x/64) * math.Cos(math.Pi*float64(m.v)*y/64)
			}
			e.Rho[iy*g.Nx+ix] = s
		}
	}
	e.Solve()
	mean := 0.0
	for _, v := range e.Rho {
		mean += v
	}
	mean /= float64(len(e.Rho))

	h := g.BinW
	idx := func(ix, iy int) int { return iy*g.Nx + ix }
	for iy := 2; iy < g.Ny-2; iy++ {
		for ix := 2; ix < g.Nx-2; ix++ {
			lap := (e.Psi[idx(ix+1, iy)] + e.Psi[idx(ix-1, iy)] +
				e.Psi[idx(ix, iy+1)] + e.Psi[idx(ix, iy-1)] -
				4*e.Psi[idx(ix, iy)]) / (h * h)
			want := -(e.Rho[idx(ix, iy)] - mean)
			if math.Abs(lap-want) > 0.05*(1+math.Abs(want)) {
				t.Fatalf("Poisson residual at (%d,%d): lap=%g want=%g", ix, iy, lap, want)
			}
			gradX := (e.Psi[idx(ix+1, iy)] - e.Psi[idx(ix-1, iy)]) / (2 * h)
			if math.Abs(e.Ex[idx(ix, iy)]+gradX) > 0.02*(1+math.Abs(gradX)) {
				t.Fatalf("Ex != -dpsi/dx at (%d,%d): %g vs %g", ix, iy, e.Ex[idx(ix, iy)], -gradX)
			}
		}
	}
}

// Uniform density produces (numerically) zero field everywhere.
func TestElectroUniformDensityZeroField(t *testing.T) {
	g := NewGrid(testRegion(), 32, 16)
	e := NewElectro(g)
	for i := range e.Rho {
		e.Rho[i] = 0.7
	}
	e.Solve()
	for i := range e.Ex {
		if math.Abs(e.Ex[i]) > 1e-9 || math.Abs(e.Ey[i]) > 1e-9 {
			t.Fatalf("field nonzero under uniform density: (%g,%g)", e.Ex[i], e.Ey[i])
		}
	}
}

// The field must point away from a concentrated blob (positive charge repels
// positive test charge), pushing cells apart.
func TestElectroFieldPointsAwayFromBlob(t *testing.T) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 64, YH: 64}, 64, 64)
	e := NewElectro(g)
	// Blob in the center.
	g.StampRect(28, 28, 36, 36, 1)
	e.SolveFromGrid()
	// Right of the blob: Ex should be positive (pointing right/outward).
	iRight := 32*g.Nx + 44
	if e.Ex[iRight] <= 0 {
		t.Errorf("Ex right of blob = %g, want > 0", e.Ex[iRight])
	}
	iLeft := 32*g.Nx + 20
	if e.Ex[iLeft] >= 0 {
		t.Errorf("Ex left of blob = %g, want < 0", e.Ex[iLeft])
	}
	iUp := 44*g.Nx + 32
	if e.Ey[iUp] <= 0 {
		t.Errorf("Ey above blob = %g, want > 0", e.Ey[iUp])
	}
}

// SampleSmoothed must act as the adjoint of StampSmoothed: sampling a
// delta-field returns exactly the stamped weight of that bin.
func TestSampleSmoothedAdjoint(t *testing.T) {
	g := NewGrid(testRegion(), 16, 8)
	ex := make([]float64, 16*8)
	ey := make([]float64, 16*8)
	targetBin := 3*16 + 5
	ex[targetBin] = 1

	cx, cy, w, h := 22.0, 13.0, 3.0, 2.0
	fx, _ := g.SampleSmoothed(ex, ey, cx, cy, w, h)

	g.Clear()
	g.StampSmoothed(cx, cy, w, h)
	if math.Abs(fx-g.Density[targetBin]) > 1e-12 {
		t.Errorf("SampleSmoothed = %g, stamped weight = %g", fx, g.Density[targetBin])
	}
}

func TestEnergyNonNegativeForBlob(t *testing.T) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 64, YH: 64}, 32, 32)
	e := NewElectro(g)
	g.StampRect(24, 24, 40, 40, 1)
	e.SolveFromGrid()
	if e.Energy() <= 0 {
		t.Errorf("blob energy = %g, want > 0", e.Energy())
	}
}

func BenchmarkElectroSolve256(b *testing.B) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 256, YH: 256}, 256, 256)
	e := NewElectro(g)
	rng := rand.New(rand.NewSource(2))
	for i := range e.Rho {
		e.Rho[i] = rng.Float64()
	}
	// Warm up once so short -benchtime runs measure the steady state.
	e.Solve()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Solve()
	}
}

func BenchmarkStampSmoothed(b *testing.B) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 512, YH: 512}, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StampSmoothed(float64(i%500), float64((i*7)%500), 1.5, 1.5)
	}
}
