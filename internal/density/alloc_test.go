package density

import (
	"testing"

	"repro/internal/geom"
)

// TestSolveSteadyStateAllocFree pins the zero-allocation contract of the
// spectral solve: after the first call (which faults in nothing — all
// buffers are built by NewElectro), repeated Solves must not touch the heap.
// The loop bodies handed to parallel.For are prebuilt in the constructor and
// parameterized through struct fields precisely so this holds.
func TestSolveSteadyStateAllocFree(t *testing.T) {
	g := NewGrid(geom.Rect{XL: 0, YL: 0, XH: 256, YH: 256}, 128, 128)
	e := NewElectro(g)
	for i := range e.Rho {
		e.Rho[i] = float64(i%113) / 113
	}
	e.Solve() // warm up

	if n := testing.AllocsPerRun(10, func() { e.Solve() }); n != 0 {
		t.Errorf("Electro.Solve allocates %v times per call in steady state, want 0", n)
	}
}
