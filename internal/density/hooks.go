package density

// SolveHook, when non-nil, runs at the end of every spectral Poisson solve
// with the solver itself, so it can inspect — or deliberately poison — the
// freshly computed potential (Psi) and field (Ex, Ey) buffers. It is a
// build-tag-free fault-injection seam for the divergence-guard tests:
// production code pays one nil check per solve and never sets it.
//
// The hook is read without synchronization from the placement goroutine;
// install it before a run starts and clear it after the run finishes.
var SolveHook func(e *Electro)
