package density

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// parallelWorkerCounts are the pool sizes every parallel path must match the
// serial path for: 1 (the serial fast path itself), an even split, and a
// prime that leaves ragged chunks.
var parallelWorkerCounts = []int{1, 2, 7}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / math.Max(1, math.Abs(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestElectroParallelMatchesSerial solves the same charge distribution with
// the serial solver and with worker pools, comparing potential and field.
// The parallel transform computes every output vector with the same
// arithmetic as the serial path, so the match is exact; 1e-12 is the
// documented contract.
func TestElectroParallelMatchesSerial(t *testing.T) {
	for _, dims := range [][2]int{{32, 32}, {64, 16}} {
		nx, ny := dims[0], dims[1]
		region := geom.Rect{XL: 0, YL: 0, XH: 100, YH: 80}
		rng := rand.New(rand.NewSource(5))
		rho := make([]float64, nx*ny)
		for i := range rho {
			rho[i] = rng.Float64()
		}

		serial := NewElectro(NewGrid(region, nx, ny))
		copy(serial.Rho, rho)
		serial.Solve()

		for _, workers := range parallelWorkerCounts {
			e := NewElectroWorkers(NewGrid(region, nx, ny), workers)
			if e.Workers() != workers && workers >= 1 {
				t.Fatalf("Workers() = %d, want %d", e.Workers(), workers)
			}
			copy(e.Rho, rho)
			e.Solve()
			for name, pair := range map[string][2][]float64{
				"Coeff": {e.Coeff, serial.Coeff},
				"Psi":   {e.Psi, serial.Psi},
				"Ex":    {e.Ex, serial.Ex},
				"Ey":    {e.Ey, serial.Ey},
			} {
				if d := maxRelDiff(pair[0], pair[1]); d > 1e-12 {
					t.Errorf("%dx%d workers=%d: %s max rel diff %g > 1e-12", nx, ny, workers, name, d)
				}
			}
		}
	}
}

// TestElectroParallelDeterministic re-solves with the same pool and demands
// bit-identical output (the ordered-reduction determinism contract).
func TestElectroParallelDeterministic(t *testing.T) {
	region := geom.Rect{XL: 0, YL: 0, XH: 50, YH: 50}
	rng := rand.New(rand.NewSource(9))
	e := NewElectroWorkers(NewGrid(region, 32, 32), 3)
	for i := range e.Rho {
		e.Rho[i] = rng.Float64()
	}
	e.Solve()
	first := append([]float64(nil), e.Psi...)
	e.Solve()
	for i := range first {
		if e.Psi[i] != first[i] {
			t.Fatalf("Psi[%d] changed across identical solves: %v vs %v", i, first[i], e.Psi[i])
		}
	}
}

// testCells generates a deterministic mix of small cells and macro-sized
// rectangles, some hanging past the region edge.
func testCells(n int, region geom.Rect, seed int64) (cx, cy, w, h []float64) {
	rng := rand.New(rand.NewSource(seed))
	cx = make([]float64, n)
	cy = make([]float64, n)
	w = make([]float64, n)
	h = make([]float64, n)
	for i := 0; i < n; i++ {
		cx[i] = region.XL + rng.Float64()*region.W()
		cy[i] = region.YL + rng.Float64()*region.H()
		w[i] = 0.5 + rng.Float64()*2
		h[i] = 0.5 + rng.Float64()*2
		if i%50 == 0 { // occasional macro spanning many bins
			w[i] *= 20
			h[i] *= 15
		}
	}
	return
}

// TestStamperMatchesSerial stamps the same cell set serially and through
// worker pools and compares the density maps and overflow.
func TestStamperMatchesSerial(t *testing.T) {
	region := geom.Rect{XL: 0, YL: 0, XH: 64, YH: 64}
	const n = 500
	cx, cy, w, h := testCells(n, region, 21)

	serial := NewGrid(region, 32, 32)
	serial.StampFixedRect(5, 5, 20, 12, 1)
	for i := 0; i < n; i++ {
		serial.StampSmoothed(cx[i], cy[i], w[i], h[i])
	}
	wantPhi := serial.Overflow(0.9, float64(n))

	for _, workers := range parallelWorkerCounts {
		g := NewGrid(region, 32, 32)
		g.StampFixedRect(5, 5, 20, 12, 1)
		s := NewStamper(g, workers)
		if s.Workers() < 1 {
			t.Fatalf("Workers() = %d", s.Workers())
		}
		s.StampSmoothed(n, func(i int) (float64, float64, float64, float64) {
			return cx[i], cy[i], w[i], h[i]
		})
		if d := maxRelDiff(g.Density, serial.Density); d > 1e-12 {
			t.Errorf("workers=%d: density max rel diff %g > 1e-12", workers, d)
		}
		phi := g.OverflowWorkers(0.9, float64(n), workers)
		if rel := math.Abs(phi-wantPhi) / math.Max(1, wantPhi); rel > 1e-12 {
			t.Errorf("workers=%d: overflow %v vs serial %v", workers, phi, wantPhi)
		}
	}
}

// TestStamperAccumulates checks that stamping twice adds on top of the
// existing map (the movable+filler two-pass contract of the placer).
func TestStamperAccumulates(t *testing.T) {
	region := geom.Rect{XL: 0, YL: 0, XH: 32, YH: 32}
	g := NewGrid(region, 16, 16)
	s := NewStamper(g, 3)
	stamp := func() {
		s.StampSmoothed(10, func(i int) (float64, float64, float64, float64) {
			return 4 + float64(i)*2, 16, 2, 2
		})
	}
	stamp()
	once := g.SumDensity()
	stamp()
	if twice := g.SumDensity(); math.Abs(twice-2*once) > 1e-9*once {
		t.Fatalf("second stamp did not accumulate: %v vs 2*%v", twice, once)
	}
}

// TestStamperFewerCellsThanWorkers covers the clamped-pool path (stale
// partials of inactive workers must not leak into the reduction).
func TestStamperFewerCellsThanWorkers(t *testing.T) {
	region := geom.Rect{XL: 0, YL: 0, XH: 32, YH: 32}
	serial := NewGrid(region, 16, 16)
	serial.StampSmoothed(10, 10, 3, 3)
	serial.StampSmoothed(20, 20, 3, 3)

	g := NewGrid(region, 16, 16)
	s := NewStamper(g, 7)
	coords := [][4]float64{{10, 10, 3, 3}, {20, 20, 3, 3}}
	// Stamp a big batch first so worker partials hold stale nonzero data.
	s.StampSmoothed(300, func(i int) (float64, float64, float64, float64) {
		return 16, 16, 1, 1
	})
	g.Clear()
	s.StampSmoothed(len(coords), func(i int) (float64, float64, float64, float64) {
		c := coords[i]
		return c[0], c[1], c[2], c[3]
	})
	if d := maxRelDiff(g.Density, serial.Density); d > 1e-12 {
		t.Fatalf("clamped-pool stamp diverges from serial: max rel diff %g", d)
	}
}
