package density

import (
	"math"

	"repro/internal/fft"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Electro is the spectral Poisson solver of the ePlace electrostatic system.
// Given the grid's charge density rho (utilization per bin) it solves
//
//	laplacian(psi) = -rho   with Neumann boundary conditions,
//
// by expanding rho in a 2-D cosine basis (DCT), dividing by w_u^2 + w_v^2,
// and synthesizing the potential (IDCT) and field components (shifted sine
// synthesis along the derivative axis). The zero-frequency mode is dropped,
// which is equivalent to solving with the mean charge removed — physically,
// the neutralizing background charge of ePlace.
//
// The 2-D transforms run on a fixed worker pool (NewElectroWorkers): row
// transforms are partitioned across workers, and column transforms become
// contiguous row transforms through a cache-friendly tiled transpose. Every
// output element is computed by exactly one worker with the same per-vector
// arithmetic as the serial path, so results are identical for any worker
// count. A Solve is not safe for concurrent use; create one Electro per
// placement run.
type Electro struct {
	g       *Grid
	workers int

	// Obs, when non-nil, receives sub-spans for each stage of Solve
	// (forward DCT, then one synthesis per output). Nil costs one pointer
	// check per Solve.
	Obs *obs.Observer

	// planXs/planYs hold one CosPlan per worker and axis; plans carry
	// mutable FFT scratch, so they are never shared between workers.
	planXs, planYs []*fft.CosPlan

	// wu, wv are the spatial frequencies pi*u/W and pi*v/H.
	wu, wv []float64

	// Rho is the input utilization per bin (filled by SolveFromGrid).
	Rho []float64
	// Coeff holds the 2-D DCT of Rho after Solve.
	Coeff []float64
	// Psi is the potential, Ex/Ey the field components, all per bin.
	Psi, Ex, Ey []float64

	// rowBufs/colBufs are per-worker copy buffers for the non-aliasing
	// IDXST (length nx and ny respectively).
	rowBufs, colBufs [][]float64
	// tbuf is the transposed intermediate (nx rows of ny) the column
	// transforms run over.
	tbuf   []float64
	scaled []float64
}

// NewElectro builds a serial solver bound to grid g.
func NewElectro(g *Grid) *Electro { return NewElectroWorkers(g, 1) }

// NewElectroWorkers builds a solver bound to grid g that runs its transforms
// and scaling loops on a pool of the given size. workers <= 1 is the serial
// solver.
func NewElectroWorkers(g *Grid, workers int) *Electro {
	if workers < 1 {
		workers = 1
	}
	e := &Electro{
		g:       g,
		workers: workers,
		wu:      make([]float64, g.Nx),
		wv:      make([]float64, g.Ny),
		Rho:     make([]float64, g.Nx*g.Ny),
		Coeff:   make([]float64, g.Nx*g.Ny),
		Psi:     make([]float64, g.Nx*g.Ny),
		Ex:      make([]float64, g.Nx*g.Ny),
		Ey:      make([]float64, g.Nx*g.Ny),
		tbuf:    make([]float64, g.Nx*g.Ny),
		scaled:  make([]float64, g.Nx*g.Ny),
	}
	for w := 0; w < workers; w++ {
		e.planXs = append(e.planXs, fft.NewCosPlan(g.Nx))
		e.planYs = append(e.planYs, fft.NewCosPlan(g.Ny))
		e.rowBufs = append(e.rowBufs, make([]float64, g.Nx))
		e.colBufs = append(e.colBufs, make([]float64, g.Ny))
	}
	for u := 0; u < g.Nx; u++ {
		e.wu[u] = math.Pi * float64(u) / g.Region.W()
	}
	for v := 0; v < g.Ny; v++ {
		e.wv[v] = math.Pi * float64(v) / g.Region.H()
	}
	return e
}

// Workers returns the solver's worker-pool size.
func (e *Electro) Workers() int { return e.workers }

// transposeTile is the blocking factor of the tiled transpose; 64 float64s
// per tile row keeps both the read and write streams inside L1.
const transposeTile = 64

// transposeInto writes the rows-by-cols row-major matrix src into dst
// transposed (cols rows of rows entries): dst[c*rows+r] = src[r*cols+c].
// Workers partition the destination rows (source columns), so writes are
// disjoint; tiling bounds the cache footprint of the strided reads.
func (e *Electro) transposeInto(dst, src []float64, rows, cols int) {
	parallel.For(e.workers, cols, func(_, lo, hi int) {
		for c0 := lo; c0 < hi; c0 += transposeTile {
			c1 := c0 + transposeTile
			if c1 > hi {
				c1 = hi
			}
			for r0 := 0; r0 < rows; r0 += transposeTile {
				r1 := r0 + transposeTile
				if r1 > rows {
					r1 = rows
				}
				for c := c0; c < c1; c++ {
					drow := dst[c*rows : (c+1)*rows]
					for r := r0; r < r1; r++ {
						drow[r] = src[r*cols+c]
					}
				}
			}
		}
	})
}

// dct2DForward computes the per-axis DCT-II of src into dst (both nx*ny).
// Rows transform in parallel; columns are transposed into contiguous rows,
// transformed, and transposed back.
func (e *Electro) dct2DForward(dst, src []float64) {
	nx, ny := e.g.Nx, e.g.Ny
	// Rows (x axis).
	parallel.For(e.workers, ny, func(w, lo, hi int) {
		plan := e.planXs[w]
		for iy := lo; iy < hi; iy++ {
			plan.DCT2(dst[iy*nx:(iy+1)*nx], src[iy*nx:(iy+1)*nx])
		}
	})
	// Columns (y axis): transpose so each column is a contiguous row.
	e.transposeInto(e.tbuf, dst, ny, nx)
	parallel.For(e.workers, nx, func(w, lo, hi int) {
		plan := e.planYs[w]
		for ix := lo; ix < hi; ix++ {
			col := e.tbuf[ix*ny : (ix+1)*ny]
			plan.DCT2(col, col)
		}
	})
	e.transposeInto(dst, e.tbuf, nx, ny)
}

// synth2D synthesizes dst from 2-D DCT coefficients src, applying transform
// xT along rows and yT along columns (each either IDCT or IDXST).
func (e *Electro) synth2D(dst, src []float64, xSine, ySine bool) {
	nx, ny := e.g.Nx, e.g.Ny
	// Columns first (y axis), as contiguous rows of the transpose.
	e.transposeInto(e.tbuf, src, ny, nx)
	parallel.For(e.workers, nx, func(w, lo, hi int) {
		plan := e.planYs[w]
		buf := e.colBufs[w]
		for ix := lo; ix < hi; ix++ {
			col := e.tbuf[ix*ny : (ix+1)*ny]
			if ySine {
				copy(buf, col)
				plan.IDXST(col, buf)
			} else {
				plan.IDCT(col, col)
			}
		}
	})
	e.transposeInto(dst, e.tbuf, nx, ny)
	// Rows (x axis).
	parallel.For(e.workers, ny, func(w, lo, hi int) {
		plan := e.planXs[w]
		buf := e.rowBufs[w]
		for iy := lo; iy < hi; iy++ {
			row := dst[iy*nx : (iy+1)*nx]
			if xSine {
				copy(buf, row)
				plan.IDXST(row, buf)
			} else {
				plan.IDCT(row, row)
			}
		}
	})
}

// SolveFromGrid loads the grid's current total density (movable + fixed),
// converts it to utilization, and solves for potential and field.
func (e *Electro) SolveFromGrid() {
	invBin := 1 / e.g.BinArea()
	parallel.For(e.workers, len(e.Rho), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Rho[i] = (e.g.Density[i] + e.g.FixedDensity[i]) * invBin
		}
	})
	e.Solve()
}

// scaleCoeff fills e.scaled with Coeff[i] * num(u, v) / (wu^2 + wv^2),
// zeroing the DC term; the numerator selects potential (1), Ex (wu), or Ey
// (wv) synthesis. Rows are partitioned across workers; every element is
// computed independently, so the result is worker-count independent.
func (e *Electro) scaleCoeff(numX, numY bool) {
	nx := e.g.Nx
	parallel.For(e.workers, e.g.Ny, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			wv2 := e.wv[v] * e.wv[v]
			for u := 0; u < nx; u++ {
				i := v*nx + u
				if u == 0 && v == 0 {
					e.scaled[i] = 0
					continue
				}
				num := 1.0
				if numX {
					num = e.wu[u]
				} else if numY {
					num = e.wv[v]
				}
				e.scaled[i] = e.Coeff[i] * num / (e.wu[u]*e.wu[u] + wv2)
			}
		}
	})
}

// Solve runs the spectral solve on the current contents of Rho.
func (e *Electro) Solve() {
	sp := e.Obs.StartPhase(obs.PhaseDCT)
	e.dct2DForward(e.Coeff, e.Rho)
	sp.End()

	// Potential coefficients: A/(wu^2+wv^2), zero DC.
	sp = e.Obs.StartPhase(obs.PhaseSynthPsi)
	e.scaleCoeff(false, false)
	e.synth2D(e.Psi, e.scaled, false, false)
	sp.End()

	// Ex = sum B*wu * sin(wu x) cos(wv y): sine along x.
	sp = e.Obs.StartPhase(obs.PhaseSynthEx)
	e.scaleCoeff(true, false)
	e.synth2D(e.Ex, e.scaled, true, false)
	sp.End()

	// Ey: sine along y.
	sp = e.Obs.StartPhase(obs.PhaseSynthEy)
	e.scaleCoeff(false, true)
	e.synth2D(e.Ey, e.scaled, false, true)
	sp.End()

	if h := SolveHook; h != nil {
		h(e)
	}
}

// Energy returns the total electrostatic energy sum_b q_b * psi_b over the
// movable charge, the ePlace density penalty D of Eq. (1). Partial sums are
// reduced in worker order, so the value is deterministic for a fixed worker
// count.
func (e *Electro) Energy() float64 {
	return parallel.SumOrdered(e.workers, len(e.g.Density), func(_, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += e.g.Density[i] * e.Psi[i]
		}
		return s
	})
}

// Grid returns the bound grid.
func (e *Electro) Grid() *Grid { return e.g }
