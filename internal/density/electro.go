package density

import (
	"math"

	"repro/internal/fft"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Electro is the spectral Poisson solver of the ePlace electrostatic system.
// Given the grid's charge density rho (utilization per bin) it solves
//
//	laplacian(psi) = -rho   with Neumann boundary conditions,
//
// by expanding rho in a 2-D cosine basis (DCT), dividing by w_u^2 + w_v^2,
// and synthesizing the potential (IDCT) and field components (shifted sine
// synthesis along the derivative axis). The zero-frequency mode is dropped,
// which is equivalent to solving with the mean charge removed — physically,
// the neutralizing background charge of ePlace.
//
// The coefficient grid is kept column-major (coeffT, one contiguous column
// per x index) so each synthesis starts directly on contiguous columns, and
// the 1/(w_u^2+w_v^2) scaling (and its w_u/w_v numerators) lives in
// precomputed column-major lanes that the fused fft.IDCTScale/IDXSTScale
// entry points consume during the spectrum-packing pass — no separate
// whole-grid scaling loop and no per-Solve divisions. A full Solve performs
// five tiled transposes (two forward, one per synthesis back to row-major)
// instead of the eight of a row-major pipeline.
//
// The 2-D transforms run on a fixed worker pool (NewElectroWorkers): row
// transforms are partitioned across workers, and column transforms are
// contiguous in coeffT. Every output element is computed by exactly one
// worker with the same per-vector arithmetic as the serial path, so results
// are identical for any worker count. The per-worker CosPlans share their
// twiddle/quarter-wave tables read-only through the fft plan cache but keep
// private packing scratch. All loop bodies handed to the worker pool are
// prebuilt at construction (parameters pass through struct fields), so a
// Solve is allocation-free in steady state — and, for the same reason, not
// safe for concurrent use; create one Electro per placement run.
type Electro struct {
	g       *Grid
	workers int

	// Obs, when non-nil, receives sub-spans for each stage of Solve
	// (forward DCT, then one synthesis per output). Nil costs one pointer
	// check per Solve.
	Obs *obs.Observer

	// planXs/planYs hold one CosPlan per worker and axis; plans carry
	// mutable FFT scratch, so they are never shared between workers.
	planXs, planYs []*fft.CosPlan

	// wu, wv are the spatial frequencies pi*u/W and pi*v/H.
	wu, wv []float64

	// Rho is the input utilization per bin (filled by SolveFromGrid).
	Rho []float64
	// Coeff holds the 2-D DCT of Rho after Solve (row-major, v*nx+u).
	Coeff []float64
	// Psi is the potential, Ex/Ey the field components, all per bin.
	Psi, Ex, Ey []float64

	// coeffT is the canonical column-major coefficient store (nx columns of
	// ny, index u*ny+v); Coeff is its row-major transpose kept for external
	// consumers.
	coeffT []float64
	// tbuf is the column-major intermediate of each synthesis.
	tbuf []float64

	// recipT/scaleXT/scaleYT are the precomputed column-major synthesis
	// scale lanes: 1/(wu^2+wv^2), wu/(wu^2+wv^2), wv/(wu^2+wv^2), with the
	// DC entry zeroed.
	recipT, scaleXT, scaleYT []float64

	// Prebuilt worker-pool loop bodies and their per-call parameter fields.
	// Closures passed to parallel.For escape to the heap when built at the
	// call site, so Solve builds them once here and passes parameters
	// through the fields below instead (Solve is single-caller, so plain
	// fields are safe).
	tDst, tSrc   []float64
	tRows, tCols int
	fnTranspose  func(w, lo, hi int)

	fnFwdRows func(w, lo, hi int)
	fnFwdCols func(w, lo, hi int)

	csScale    []float64
	csSine     bool
	fnColSynth func(w, lo, hi int)

	rsDst      []float64
	rsSine     bool
	fnRowSynth func(w, lo, hi int)

	fnFill   func(w, lo, hi int)
	fnEnergy func(w, lo, hi int) float64
}

// NewElectro builds a serial solver bound to grid g.
func NewElectro(g *Grid) *Electro { return NewElectroWorkers(g, 1) }

// NewElectroWorkers builds a solver bound to grid g that runs its transforms
// and scaling loops on a pool of the given size. workers <= 1 is the serial
// solver.
func NewElectroWorkers(g *Grid, workers int) *Electro {
	if workers < 1 {
		workers = 1
	}
	e := &Electro{
		g:       g,
		workers: workers,
		wu:      make([]float64, g.Nx),
		wv:      make([]float64, g.Ny),
		Rho:     make([]float64, g.Nx*g.Ny),
		Coeff:   make([]float64, g.Nx*g.Ny),
		Psi:     make([]float64, g.Nx*g.Ny),
		Ex:      make([]float64, g.Nx*g.Ny),
		Ey:      make([]float64, g.Nx*g.Ny),
		coeffT:  make([]float64, g.Nx*g.Ny),
		tbuf:    make([]float64, g.Nx*g.Ny),
		recipT:  make([]float64, g.Nx*g.Ny),
		scaleXT: make([]float64, g.Nx*g.Ny),
		scaleYT: make([]float64, g.Nx*g.Ny),
	}
	for w := 0; w < workers; w++ {
		e.planXs = append(e.planXs, fft.NewCosPlan(g.Nx))
		e.planYs = append(e.planYs, fft.NewCosPlan(g.Ny))
	}
	for u := 0; u < g.Nx; u++ {
		e.wu[u] = math.Pi * float64(u) / g.Region.W()
	}
	for v := 0; v < g.Ny; v++ {
		e.wv[v] = math.Pi * float64(v) / g.Region.H()
	}
	for u := 0; u < g.Nx; u++ {
		wu2 := e.wu[u] * e.wu[u]
		for v := 0; v < g.Ny; v++ {
			i := u*g.Ny + v
			if u == 0 && v == 0 {
				continue // DC lanes stay zero
			}
			r := 1 / (wu2 + e.wv[v]*e.wv[v])
			e.recipT[i] = r
			e.scaleXT[i] = e.wu[u] * r
			e.scaleYT[i] = e.wv[v] * r
		}
	}
	e.buildLoopBodies()
	return e
}

// buildLoopBodies constructs the closures handed to parallel.For once, so
// steady-state Solve/Energy calls never allocate.
func (e *Electro) buildLoopBodies() {
	nx, ny := e.g.Nx, e.g.Ny
	e.fnTranspose = func(_, lo, hi int) {
		dst, src, rows, cols := e.tDst, e.tSrc, e.tRows, e.tCols
		for c0 := lo; c0 < hi; c0 += transposeTile {
			c1 := c0 + transposeTile
			if c1 > hi {
				c1 = hi
			}
			for r0 := 0; r0 < rows; r0 += transposeTile {
				r1 := r0 + transposeTile
				if r1 > rows {
					r1 = rows
				}
				for c := c0; c < c1; c++ {
					drow := dst[c*rows : (c+1)*rows]
					for r := r0; r < r1; r++ {
						drow[r] = src[r*cols+c]
					}
				}
			}
		}
	}
	e.fnFwdRows = func(w, lo, hi int) {
		plan := e.planXs[w]
		for iy := lo; iy < hi; iy++ {
			plan.DCT2(e.tbuf[iy*nx:(iy+1)*nx], e.Rho[iy*nx:(iy+1)*nx])
		}
	}
	e.fnFwdCols = func(w, lo, hi int) {
		plan := e.planYs[w]
		for ix := lo; ix < hi; ix++ {
			col := e.coeffT[ix*ny : (ix+1)*ny]
			plan.DCT2(col, col)
		}
	}
	e.fnColSynth = func(w, lo, hi int) {
		plan := e.planYs[w]
		scale, sine := e.csScale, e.csSine
		for ix := lo; ix < hi; ix++ {
			dst := e.tbuf[ix*ny : (ix+1)*ny]
			src := e.coeffT[ix*ny : (ix+1)*ny]
			sc := scale[ix*ny : (ix+1)*ny]
			if sine {
				plan.IDXSTScale(dst, src, sc)
			} else {
				plan.IDCTScale(dst, src, sc)
			}
		}
	}
	e.fnRowSynth = func(w, lo, hi int) {
		plan := e.planXs[w]
		dst, sine := e.rsDst, e.rsSine
		for iy := lo; iy < hi; iy++ {
			row := dst[iy*nx : (iy+1)*nx]
			if sine {
				plan.IDXST(row, row)
			} else {
				plan.IDCT(row, row)
			}
		}
	}
	invBin := 1 / e.g.BinArea()
	e.fnFill = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e.Rho[i] = (e.g.Density[i] + e.g.FixedDensity[i]) * invBin
		}
	}
	e.fnEnergy = func(_, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += e.g.Density[i] * e.Psi[i]
		}
		return s
	}
}

// Workers returns the solver's worker-pool size.
func (e *Electro) Workers() int { return e.workers }

// transposeTile is the blocking factor of the tiled transpose; 64 float64s
// per tile row keeps both the read and write streams inside L1.
const transposeTile = 64

// transposeInto writes the rows-by-cols row-major matrix src into dst
// transposed (cols rows of rows entries): dst[c*rows+r] = src[r*cols+c].
// Workers partition the destination rows (source columns), so writes are
// disjoint; tiling bounds the cache footprint of the strided reads.
func (e *Electro) transposeInto(dst, src []float64, rows, cols int) {
	e.tDst, e.tSrc, e.tRows, e.tCols = dst, src, rows, cols
	parallel.For(e.workers, cols, e.fnTranspose)
}

// dct2DForward computes the 2-D DCT-II of Rho into coeffT (column-major) and
// mirrors it into Coeff (row-major). Rows transform in parallel into tbuf;
// the transpose makes each column a contiguous row of coeffT for the second
// pass.
func (e *Electro) dct2DForward() {
	nx, ny := e.g.Nx, e.g.Ny
	parallel.For(e.workers, ny, e.fnFwdRows)
	e.transposeInto(e.coeffT, e.tbuf, ny, nx)
	parallel.For(e.workers, nx, e.fnFwdCols)
	e.transposeInto(e.Coeff, e.coeffT, nx, ny)
}

// synth2D synthesizes dst from the column-major coefficients coeffT: the
// column pass fuses the elementwise scale lane into the y transform (IDCT,
// or IDXST when ySine), one transpose brings the result row-major, and the
// row pass applies the x transform in place (IDXST when xSine).
func (e *Electro) synth2D(dst, scale []float64, xSine, ySine bool) {
	nx, ny := e.g.Nx, e.g.Ny
	e.csScale, e.csSine = scale, ySine
	parallel.For(e.workers, nx, e.fnColSynth)
	e.transposeInto(dst, e.tbuf, nx, ny)
	e.rsDst, e.rsSine = dst, xSine
	parallel.For(e.workers, ny, e.fnRowSynth)
}

// SolveFromGrid loads the grid's current total density (movable + fixed),
// converts it to utilization, and solves for potential and field.
func (e *Electro) SolveFromGrid() {
	parallel.For(e.workers, len(e.Rho), e.fnFill)
	e.Solve()
}

// Solve runs the spectral solve on the current contents of Rho.
func (e *Electro) Solve() {
	sp := e.Obs.StartPhase(obs.PhaseDCT)
	e.dct2DForward()
	sp.End()

	// Potential: A/(wu^2+wv^2), zero DC — the recip lane fused into the
	// column IDCT.
	sp = e.Obs.StartPhase(obs.PhaseSynthPsi)
	e.synth2D(e.Psi, e.recipT, false, false)
	sp.End()

	// Ex = sum B*wu * sin(wu x) cos(wv y): sine along x, wu numerator.
	sp = e.Obs.StartPhase(obs.PhaseSynthEx)
	e.synth2D(e.Ex, e.scaleXT, true, false)
	sp.End()

	// Ey: sine along y, wv numerator.
	sp = e.Obs.StartPhase(obs.PhaseSynthEy)
	e.synth2D(e.Ey, e.scaleYT, false, true)
	sp.End()

	if h := SolveHook; h != nil {
		h(e)
	}
}

// Energy returns the total electrostatic energy sum_b q_b * psi_b over the
// movable charge, the ePlace density penalty D of Eq. (1). Partial sums are
// reduced in worker order, so the value is deterministic for a fixed worker
// count.
func (e *Electro) Energy() float64 {
	return parallel.SumOrdered(e.workers, len(e.g.Density), e.fnEnergy)
}

// Grid returns the bound grid.
func (e *Electro) Grid() *Grid { return e.g }
