package density

import (
	"math"

	"repro/internal/fft"
)

// Electro is the spectral Poisson solver of the ePlace electrostatic system.
// Given the grid's charge density rho (utilization per bin) it solves
//
//	laplacian(psi) = -rho   with Neumann boundary conditions,
//
// by expanding rho in a 2-D cosine basis (DCT), dividing by w_u^2 + w_v^2,
// and synthesizing the potential (IDCT) and field components (shifted sine
// synthesis along the derivative axis). The zero-frequency mode is dropped,
// which is equivalent to solving with the mean charge removed — physically,
// the neutralizing background charge of ePlace.
type Electro struct {
	g            *Grid
	planX, planY *fft.CosPlan

	// wu, wv are the spatial frequencies pi*u/W and pi*v/H.
	wu, wv []float64

	// Rho is the input utilization per bin (filled by SolveFromGrid).
	Rho []float64
	// Coeff holds the 2-D DCT of Rho after Solve.
	Coeff []float64
	// Psi is the potential, Ex/Ey the field components, all per bin.
	Psi, Ex, Ey []float64

	rowBuf, colBuf, colBuf2 []float64
	scaled                  []float64
}

// NewElectro builds a solver bound to grid g.
func NewElectro(g *Grid) *Electro {
	e := &Electro{
		g:       g,
		planX:   fft.NewCosPlan(g.Nx),
		planY:   fft.NewCosPlan(g.Ny),
		wu:      make([]float64, g.Nx),
		wv:      make([]float64, g.Ny),
		Rho:     make([]float64, g.Nx*g.Ny),
		Coeff:   make([]float64, g.Nx*g.Ny),
		Psi:     make([]float64, g.Nx*g.Ny),
		Ex:      make([]float64, g.Nx*g.Ny),
		Ey:      make([]float64, g.Nx*g.Ny),
		rowBuf:  make([]float64, g.Nx),
		colBuf:  make([]float64, g.Ny),
		colBuf2: make([]float64, g.Ny),
		scaled:  make([]float64, g.Nx*g.Ny),
	}
	for u := 0; u < g.Nx; u++ {
		e.wu[u] = math.Pi * float64(u) / g.Region.W()
	}
	for v := 0; v < g.Ny; v++ {
		e.wv[v] = math.Pi * float64(v) / g.Region.H()
	}
	return e
}

// dct2DForward computes the per-axis DCT-II of src into dst (both nx*ny).
func (e *Electro) dct2DForward(dst, src []float64) {
	nx, ny := e.g.Nx, e.g.Ny
	// Rows (x axis).
	for iy := 0; iy < ny; iy++ {
		row := src[iy*nx : (iy+1)*nx]
		e.planX.DCT2(dst[iy*nx:(iy+1)*nx], row)
	}
	// Columns (y axis).
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			e.colBuf[iy] = dst[iy*nx+ix]
		}
		e.planY.DCT2(e.colBuf2, e.colBuf)
		for iy := 0; iy < ny; iy++ {
			dst[iy*nx+ix] = e.colBuf2[iy]
		}
	}
}

// synth2D synthesizes dst from 2-D DCT coefficients src, applying transform
// xT along rows and yT along columns (each either IDCT or IDXST).
func (e *Electro) synth2D(dst, src []float64, xSine, ySine bool) {
	nx, ny := e.g.Nx, e.g.Ny
	// Columns first (y axis).
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			e.colBuf[iy] = src[iy*nx+ix]
		}
		if ySine {
			e.planY.IDXST(e.colBuf2, e.colBuf)
		} else {
			e.planY.IDCT(e.colBuf2, e.colBuf)
		}
		for iy := 0; iy < ny; iy++ {
			dst[iy*nx+ix] = e.colBuf2[iy]
		}
	}
	// Rows (x axis).
	for iy := 0; iy < ny; iy++ {
		row := dst[iy*nx : (iy+1)*nx]
		if xSine {
			copy(e.rowBuf, row)
			e.planX.IDXST(row, e.rowBuf)
		} else {
			e.planX.IDCT(row, row)
		}
	}
}

// SolveFromGrid loads the grid's current total density (movable + fixed),
// converts it to utilization, and solves for potential and field.
func (e *Electro) SolveFromGrid() {
	invBin := 1 / e.g.BinArea()
	for i := range e.Rho {
		e.Rho[i] = (e.g.Density[i] + e.g.FixedDensity[i]) * invBin
	}
	e.Solve()
}

// Solve runs the spectral solve on the current contents of Rho.
func (e *Electro) Solve() {
	nx, ny := e.g.Nx, e.g.Ny
	e.dct2DForward(e.Coeff, e.Rho)

	// Potential coefficients: A/(wu^2+wv^2), zero DC.
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			i := v*nx + u
			if u == 0 && v == 0 {
				e.scaled[i] = 0
				continue
			}
			e.scaled[i] = e.Coeff[i] / (e.wu[u]*e.wu[u] + e.wv[v]*e.wv[v])
		}
	}
	e.synth2D(e.Psi, e.scaled, false, false)

	// Ex = sum B*wu * sin(wu x) cos(wv y): sine along x.
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			i := v*nx + u
			if u == 0 && v == 0 {
				e.scaled[i] = 0
				continue
			}
			e.scaled[i] = e.Coeff[i] * e.wu[u] / (e.wu[u]*e.wu[u] + e.wv[v]*e.wv[v])
		}
	}
	e.synth2D(e.Ex, e.scaled, true, false)

	// Ey: sine along y.
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			i := v*nx + u
			if u == 0 && v == 0 {
				e.scaled[i] = 0
				continue
			}
			e.scaled[i] = e.Coeff[i] * e.wv[v] / (e.wu[u]*e.wu[u] + e.wv[v]*e.wv[v])
		}
	}
	e.synth2D(e.Ey, e.scaled, false, true)
}

// Energy returns the total electrostatic energy sum_b q_b * psi_b over the
// movable charge, the ePlace density penalty D of Eq. (1).
func (e *Electro) Energy() float64 {
	s := 0.0
	for i, q := range e.g.Density {
		s += q * e.Psi[i]
	}
	return s
}

// Grid returns the bound grid.
func (e *Electro) Grid() *Grid { return e.g }
