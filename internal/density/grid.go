// Package density implements the ePlace electrostatic density system: a bin
// grid with area stamping, the density overflow metric, and a spectral
// (DCT-based) Poisson solver that turns the charge density into an electric
// potential and field. The field supplies the density-penalty gradient of
// the global placement objective (Eq. 1 of the paper).
package density

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is a uniform bin grid over the placement region accumulating charge
// (area) density. Bins are indexed row-major: bin (ix, iy) lives at
// Density[iy*Nx+ix].
type Grid struct {
	Nx, Ny     int
	Region     geom.Rect
	BinW, BinH float64
	// Density is the movable (+filler) stamped area per bin; cleared and
	// restamped every placement iteration.
	Density []float64
	// FixedDensity is the fixed-cell stamped area per bin; stamped once.
	FixedDensity []float64
}

// NewGrid creates an nx-by-ny grid over region. Both dimensions must be
// positive powers of two so the spectral solver can run on the grid.
func NewGrid(region geom.Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 || nx&(nx-1) != 0 || ny&(ny-1) != 0 {
		panic(fmt.Sprintf("density: grid %dx%d must use powers of two", nx, ny))
	}
	if region.Empty() {
		panic("density: empty region")
	}
	return &Grid{
		Nx:           nx,
		Ny:           ny,
		Region:       region,
		BinW:         region.W() / float64(nx),
		BinH:         region.H() / float64(ny),
		Density:      make([]float64, nx*ny),
		FixedDensity: make([]float64, nx*ny),
	}
}

// Clear zeroes the movable density map.
func (g *Grid) Clear() {
	for i := range g.Density {
		g.Density[i] = 0
	}
}

// ClearFixed zeroes the fixed density map.
func (g *Grid) ClearFixed() {
	for i := range g.FixedDensity {
		g.FixedDensity[i] = 0
	}
}

// BinIndex returns the bin column/row containing x, y, clamped to the grid.
func (g *Grid) BinIndex(x, y float64) (ix, iy int) {
	ix = int((x - g.Region.XL) / g.BinW)
	iy = int((y - g.Region.YL) / g.BinH)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.Nx {
		ix = g.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.Ny {
		iy = g.Ny - 1
	}
	return
}

// BinArea returns the area of one bin.
func (g *Grid) BinArea() float64 { return g.BinW * g.BinH }

// stampInto distributes area*scale of the rectangle [xl,xh]x[yl,yh] over the
// bins of dst proportionally to geometric overlap.
func (g *Grid) stampInto(dst []float64, xl, yl, xh, yh, scale float64) {
	if xh <= xl || yh <= yl || scale == 0 {
		return
	}
	// Clip to region.
	xl = max(xl, g.Region.XL)
	yl = max(yl, g.Region.YL)
	xh = min(xh, g.Region.XH)
	yh = min(yh, g.Region.YH)
	if xh <= xl || yh <= yl {
		return
	}
	ix0 := int((xl - g.Region.XL) / g.BinW)
	ix1 := int((xh - g.Region.XL) / g.BinW)
	iy0 := int((yl - g.Region.YL) / g.BinH)
	iy1 := int((yh - g.Region.YL) / g.BinH)
	// The lower bounds are non-negative for any finite clipped rectangle,
	// but a NaN coordinate sails through the clips above (every comparison
	// is false) and int(NaN) is a huge negative number on amd64 — clamp so
	// non-finite inputs degrade to an empty stamp instead of a slice panic.
	// The divergence guard relies on this: it detects NaN positions after
	// the step, which requires the evaluations on them not to crash first.
	if ix0 < 0 {
		ix0 = 0
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if ix1 >= g.Nx {
		ix1 = g.Nx - 1
	}
	if iy1 >= g.Ny {
		iy1 = g.Ny - 1
	}
	for iy := iy0; iy <= iy1; iy++ {
		by := g.Region.YL + float64(iy)*g.BinH
		oy := min(yh, by+g.BinH) - max(yl, by)
		if oy <= 0 {
			continue
		}
		row := iy * g.Nx
		for ix := ix0; ix <= ix1; ix++ {
			bx := g.Region.XL + float64(ix)*g.BinW
			ox := min(xh, bx+g.BinW) - max(xl, bx)
			if ox <= 0 {
				continue
			}
			dst[row+ix] += ox * oy * scale
		}
	}
}

// StampRect adds the rectangle's overlap area (times scale) to the movable
// density map.
func (g *Grid) StampRect(xl, yl, xh, yh, scale float64) {
	g.stampInto(g.Density, xl, yl, xh, yh, scale)
}

// StampFixedRect adds the rectangle's overlap area (times scale) to the
// fixed density map.
func (g *Grid) StampFixedRect(xl, yl, xh, yh, scale float64) {
	g.stampInto(g.FixedDensity, xl, yl, xh, yh, scale)
}

// SmoothedFootprint returns the ePlace density footprint of a w-by-h cell
// centered at (cx, cy): dimensions smaller than sqrt(2) bins are inflated to
// sqrt(2) bins with a compensating density scale so the stamped area stays
// w*h.
func (g *Grid) SmoothedFootprint(cx, cy, w, h float64) (xl, yl, xh, yh, scale float64) {
	const sq2 = math.Sqrt2
	ew, eh := w, h
	scale = 1.0
	if minW := sq2 * g.BinW; ew < minW {
		if ew > 0 {
			scale *= ew / minW
		}
		ew = minW
	}
	if minH := sq2 * g.BinH; eh < minH {
		if eh > 0 {
			scale *= eh / minH
		}
		eh = minH
	}
	return cx - ew/2, cy - eh/2, cx + ew/2, cy + eh/2, scale
}

// StampSmoothed stamps a movable cell with the ePlace local smoothing; the
// total stamped area equals w*h (up to clipping at the region boundary).
func (g *Grid) StampSmoothed(cx, cy, w, h float64) {
	xl, yl, xh, yh, scale := g.SmoothedFootprint(cx, cy, w, h)
	g.StampRect(xl, yl, xh, yh, scale)
}

// TotalDensity returns movable + fixed stamped area in bin i.
func (g *Grid) TotalDensity(i int) float64 { return g.Density[i] + g.FixedDensity[i] }

// Overflow computes the total density overflow
//
//	phi = sum_b max(0, area_b - targetDensity*freeArea_b) / totalMovableArea,
//
// where area_b is the movable density in bin b and freeArea_b is the bin
// area not blocked by fixed cells. totalMovableArea normalizes the metric to
// [0, ~1]; pass the design's movable area (excluding fillers).
func (g *Grid) Overflow(targetDensity, totalMovableArea float64) float64 {
	if totalMovableArea <= 0 {
		return 0
	}
	binArea := g.BinArea()
	sum := 0.0
	for i, a := range g.Density {
		free := binArea - g.FixedDensity[i]
		if free < 0 {
			free = 0
		}
		if ov := a - targetDensity*free; ov > 0 {
			sum += ov
		}
	}
	return sum / totalMovableArea
}

// SampleSmoothed integrates the per-bin field over the same smoothed
// footprint used for stamping and returns the accumulated (fx, fy); this is
// the electric force on the cell, the exact adjoint of StampSmoothed.
func (g *Grid) SampleSmoothed(ex, ey []float64, cx, cy, w, h float64) (fx, fy float64) {
	xl, yl, xh, yh, scale := g.SmoothedFootprint(cx, cy, w, h)
	xl = max(xl, g.Region.XL)
	yl = max(yl, g.Region.YL)
	xh = min(xh, g.Region.XH)
	yh = min(yh, g.Region.YH)
	if xh <= xl || yh <= yl {
		return 0, 0
	}
	ix0 := int((xl - g.Region.XL) / g.BinW)
	ix1 := int((xh - g.Region.XL) / g.BinW)
	iy0 := int((yl - g.Region.YL) / g.BinH)
	iy1 := int((yh - g.Region.YL) / g.BinH)
	// Same non-finite clamp as stampInto: int(NaN) is hugely negative, and
	// the force sample must survive NaN positions for the guard to see them.
	if ix0 < 0 {
		ix0 = 0
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if ix1 >= g.Nx {
		ix1 = g.Nx - 1
	}
	if iy1 >= g.Ny {
		iy1 = g.Ny - 1
	}
	for iy := iy0; iy <= iy1; iy++ {
		by := g.Region.YL + float64(iy)*g.BinH
		oy := min(yh, by+g.BinH) - max(yl, by)
		if oy <= 0 {
			continue
		}
		row := iy * g.Nx
		for ix := ix0; ix <= ix1; ix++ {
			bx := g.Region.XL + float64(ix)*g.BinW
			ox := min(xh, bx+g.BinW) - max(xl, bx)
			if ox <= 0 {
				continue
			}
			q := ox * oy * scale
			fx += q * ex[row+ix]
			fy += q * ey[row+ix]
		}
	}
	return fx, fy
}

// SumDensity returns the total stamped movable area.
func (g *Grid) SumDensity() float64 {
	s := 0.0
	for _, v := range g.Density {
		s += v
	}
	return s
}
