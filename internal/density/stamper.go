package density

import "repro/internal/parallel"

// Stamper scatters many smoothed cell footprints into a grid's movable
// density map with a fixed worker pool. Each worker stamps its contiguous
// cell range into a private density accumulator; the partials are then
// reduced into g.Density worker-by-worker in index order (the same
// determinism contract as the parallel wirelength evaluator), so the map is
// bit-identical across runs for a fixed worker count and differs from the
// serial map only by floating-point addition order.
//
// A Stamper is bound to one grid and is not safe for concurrent use.
type Stamper struct {
	g       *Grid
	workers int
	parts   [][]float64 // per-worker density partials (workers > 1 only)
}

// NewStamper builds a stamper over g with the given pool size; workers <= 1
// stamps serially through Grid.StampSmoothed with no extra memory.
func NewStamper(g *Grid, workers int) *Stamper {
	if workers < 1 {
		workers = 1
	}
	s := &Stamper{g: g, workers: workers}
	if workers > 1 {
		s.parts = make([][]float64, workers)
		for w := range s.parts {
			s.parts[w] = make([]float64, g.Nx*g.Ny)
		}
	}
	return s
}

// Workers returns the stamper's worker-pool size.
func (s *Stamper) Workers() int { return s.workers }

// StampSmoothed stamps n cells into the grid's movable density map, adding
// on top of whatever is already there. cell reports cell i's center and full
// dimensions; it is called concurrently from the pool and must be pure.
func (s *Stamper) StampSmoothed(n int, cell func(i int) (cx, cy, w, h float64)) {
	if n <= 0 {
		return
	}
	if s.workers <= 1 {
		for i := 0; i < n; i++ {
			cx, cy, w, h := cell(i)
			s.g.StampSmoothed(cx, cy, w, h)
		}
		return
	}
	active := parallel.Active(s.workers, n)
	parallel.For(s.workers, n, func(w, lo, hi int) {
		part := s.parts[w]
		for i := range part {
			part[i] = 0
		}
		for i := lo; i < hi; i++ {
			cx, cy, cw, ch := cell(i)
			xl, yl, xh, yh, scale := s.g.SmoothedFootprint(cx, cy, cw, ch)
			s.g.stampInto(part, xl, yl, xh, yh, scale)
		}
	})
	// Reduce: bins are partitioned across workers, each summing every
	// active partial for its bin range in worker order (deterministic).
	parallel.For(s.workers, s.g.Nx*s.g.Ny, func(_, lo, hi int) {
		dst := s.g.Density[lo:hi]
		for w := 0; w < active; w++ {
			part := s.parts[w][lo:hi]
			for i, v := range part {
				dst[i] += v
			}
		}
	})
}

// OverflowWorkers computes Overflow with a worker pool; per-worker partial
// sums are reduced in worker index order, so the result is deterministic for
// a fixed worker count. workers <= 1 is exactly Overflow.
func (g *Grid) OverflowWorkers(targetDensity, totalMovableArea float64, workers int) float64 {
	if workers <= 1 {
		return g.Overflow(targetDensity, totalMovableArea)
	}
	if totalMovableArea <= 0 {
		return 0
	}
	binArea := g.BinArea()
	sum := parallel.SumOrdered(workers, len(g.Density), func(_, lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			free := binArea - g.FixedDensity[i]
			if free < 0 {
				free = 0
			}
			if ov := g.Density[i] - targetDensity*free; ov > 0 {
				s += ov
			}
		}
		return s
	})
	return sum / totalMovableArea
}
