package synth

import (
	"math"
	"testing"

	"repro/internal/netlist"
)

func smallSpec() Spec {
	return Spec{
		Name:           "unit",
		NumMovable:     500,
		NumMacros:      2,
		NumPads:        8,
		NumFixedBlocks: 3,
		NumNets:        520,
		AvgDegree:      3.8,
		Utilization:    0.7,
		TargetDensity:  1.0,
		Seed:           7,
	}
}

func TestGenerateValidDesign(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated design invalid: %v", err)
	}
	s := d.ComputeStats()
	if s.NumMovable != 502 { // cells + macros
		t.Errorf("movable = %d, want 502", s.NumMovable)
	}
	if s.NumFixed != 11 { // pads + blocks
		t.Errorf("fixed = %d, want 11", s.NumFixed)
	}
	if s.NumNets != 520 {
		t.Errorf("nets = %d, want 520", s.NumNets)
	}
	if s.NumMacros != 2 {
		t.Errorf("macros = %d, want 2", s.NumMacros)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPins() != b.NumPins() {
		t.Fatalf("pin counts differ: %d vs %d", a.NumPins(), b.NumPins())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("positions differ at cell %d", i)
		}
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatalf("pins differ at %d", i)
		}
	}
}

func TestGenerateAvgDegreeApproximatelyMatches(t *testing.T) {
	spec := smallSpec()
	spec.NumNets = 5000
	spec.NumMovable = 4000
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(d.NumPins()) / float64(d.NumNets())
	if math.Abs(got-spec.AvgDegree) > 0.4 {
		t.Errorf("avg degree = %g, want ~%g", got, spec.AvgDegree)
	}
}

func TestGenerateUtilization(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := d.ComputeStats()
	if math.Abs(s.Utilization-0.7) > 0.1 {
		t.Errorf("utilization = %g, want ~0.7", s.Utilization)
	}
}

func TestGenerateNoOrphanMovables(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.MovableIndices() {
		if len(d.PinsOfCell(c)) == 0 {
			t.Fatalf("cell %d has no pins", c)
		}
	}
}

func TestGenerateRowsCoverRegion(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) == 0 {
		t.Fatal("no rows generated")
	}
	var rowArea float64
	for _, r := range d.Rows {
		rowArea += (r.XH - r.XL) * r.Height
	}
	if math.Abs(rowArea-d.Region.Area()) > 1e-6*d.Region.Area() {
		t.Errorf("row area %g != region area %g", rowArea, d.Region.Area())
	}
}

func TestGeneratePinOffsetsInsideCells(t *testing.T) {
	d, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Pins {
		c := d.Cells[p.Cell]
		if p.Dx < 0 || p.Dx > c.W || p.Dy < 0 || p.Dy > c.H {
			t.Fatalf("pin %d offset (%g,%g) outside cell %gx%g", i, p.Dx, p.Dy, c.W, c.H)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "a", NumMovable: 0, NumNets: 1, AvgDegree: 2, Utilization: 0.5},
		{Name: "b", NumMovable: 1, NumNets: 0, AvgDegree: 2, Utilization: 0.5},
		{Name: "c", NumMovable: 1, NumNets: 1, AvgDegree: 1.5, Utilization: 0.5},
		{Name: "d", NumMovable: 1, NumNets: 1, AvgDegree: 2, Utilization: 0},
		{Name: "e", NumMovable: 1, NumNets: 1, AvgDegree: 2, Utilization: 1.5},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %s accepted", s.Name)
		}
	}
}

func TestContestTables(t *testing.T) {
	if len(ISPD2006) != 8 {
		t.Errorf("ISPD2006 has %d designs, want 8", len(ISPD2006))
	}
	if len(ISPD2019) != 10 {
		t.Errorf("ISPD2019 has %d designs, want 10", len(ISPD2019))
	}
	// Spot checks against Table I.
	if ISPD2006[1].Name != "newblue1" || ISPD2006[1].Movable != 330137 {
		t.Error("newblue1 row mismatch")
	}
	if ISPD2019[9].Pins != 3957499 {
		t.Error("ispd19_test10 pins mismatch")
	}
	if d := ISPD2019[0].AvgDegree(); math.Abs(d-5.456) > 0.01 {
		t.Errorf("test1 avg degree = %g", d)
	}
}

func TestSpecFromContestRatios(t *testing.T) {
	spec := SpecFromContest(ISPD2006[1], Scale2006) // newblue1
	if spec.NumMovable != 3301 {
		t.Errorf("scaled movable = %d, want 3301", spec.NumMovable)
	}
	if spec.NumMacros == 0 {
		t.Error("newblue1-like spec must keep movable macros")
	}
	if math.Abs(spec.AvgDegree-ISPD2006[1].AvgDegree()) > 1e-9 {
		t.Error("avg degree must carry over unchanged")
	}
	// 2019 suite gets routability-style utilization.
	s19 := SpecFromContest(ISPD2019[4], Scale2019)
	if s19.Utilization != 0.55 || s19.TargetDensity != 0.90 {
		t.Errorf("2019 util/td = %g/%g", s19.Utilization, s19.TargetDensity)
	}
}

func TestSuitesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	// Generate the smallest member of each suite end to end.
	spec := SpecFromContest(ISPD2019[0], Scale2019)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := SuiteScaled("bogus", 1); err == nil {
		t.Error("unknown suite accepted")
	}
	specs, err := SuiteScaled("ispd2006", 0.001)
	if err != nil || len(specs) != 8 {
		t.Errorf("SuiteScaled: %v, %d specs", err, len(specs))
	}
}

func TestMacroAreaSignificant(t *testing.T) {
	spec := smallSpec()
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var macroArea, stdArea float64
	for _, c := range d.Cells {
		switch c.Kind {
		case netlist.MovableMacro:
			macroArea += c.Area()
		case netlist.Movable:
			stdArea += c.Area()
		}
	}
	if macroArea <= 0.01*stdArea {
		t.Errorf("macros too small to matter: %g vs std %g", macroArea, stdArea)
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	spec := Spec{
		Name: "bench", NumMovable: 10000, NumMacros: 4, NumPads: 32,
		NumFixedBlocks: 4, NumNets: 11000, AvgDegree: 3.9,
		Utilization: 0.7, TargetDensity: 1, Seed: 3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}
