// Package synth generates deterministic synthetic placement benchmarks with
// contest-like structure: Rent's-rule locality (nets connect cells that are
// close in a hierarchical ordering), realistic net-degree distributions,
// peripheral I/O pads, fixed blockages, and movable macros.
//
// The ISPD2006 and ISPD2019 contest suites used in the paper's Tables I-III
// are mirrored at reduced scale by SpecFromContest: the generator reproduces
// each design's movable/fixed/net/pin ratios while shrinking absolute counts
// so a pure-Go flow finishes in CPU-minutes instead of GPU-hours (see
// DESIGN.md, substitution table).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Spec parameterizes one synthetic design.
type Spec struct {
	Name string
	// NumMovable counts movable standard cells (excluding macros).
	NumMovable int
	// NumMacros counts movable macros (newblue1-style).
	NumMacros int
	// NumPads counts fixed zero-area I/O terminals on the periphery.
	NumPads int
	// NumFixedBlocks counts fixed rectangular blockages inside the core.
	NumFixedBlocks int
	// NumNets counts nets; AvgDegree sets the mean pins per net (>= 2).
	NumNets   int
	AvgDegree float64
	// Utilization is movableArea / freeArea used to size the region.
	Utilization float64
	// TargetDensity is the bin density target stored on the design.
	TargetDensity float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate checks the spec for generability.
func (s Spec) Validate() error {
	if s.NumMovable <= 0 {
		return fmt.Errorf("synth: %s: NumMovable must be positive", s.Name)
	}
	if s.NumNets <= 0 {
		return fmt.Errorf("synth: %s: NumNets must be positive", s.Name)
	}
	if s.AvgDegree < 2 {
		return fmt.Errorf("synth: %s: AvgDegree %g < 2", s.Name, s.AvgDegree)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		return fmt.Errorf("synth: %s: Utilization %g outside (0,1]", s.Name, s.Utilization)
	}
	return nil
}

// Generate builds the design described by spec.
func Generate(spec Spec) (*netlist.Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name)

	td := spec.TargetDensity
	if td <= 0 {
		td = 1
	}
	b.SetTargetDensity(td)

	// --- geometry budget ---
	const rowHeight = 1.0
	// Standard-cell widths: 1..4 sites, biased small like real libraries.
	widths := []float64{1, 1, 1, 2, 2, 3, 4}
	var stdArea float64
	cellW := make([]float64, spec.NumMovable)
	for i := range cellW {
		cellW[i] = widths[rng.Intn(len(widths))]
		stdArea += cellW[i] * rowHeight
	}
	// Macros take ~2% of std area each.
	macroSide := math.Sqrt(0.02 * stdArea)
	macroSide = math.Max(macroSide, 4*rowHeight)
	macroArea := float64(spec.NumMacros) * macroSide * macroSide
	movableArea := stdArea + macroArea

	// Fixed blocks take ~1.5% of movable area each.
	blockSide := math.Sqrt(0.015 * movableArea)
	fixedArea := float64(spec.NumFixedBlocks) * blockSide * blockSide

	regionArea := movableArea/spec.Utilization + fixedArea
	side := math.Sqrt(regionArea)
	// Snap the region height to whole rows.
	numRows := int(math.Ceil(side / rowHeight))
	region := geom.Rect{XL: 0, YL: 0, XH: side, YH: float64(numRows) * rowHeight}
	b.SetRegion(region)
	for r := 0; r < numRows; r++ {
		b.AddRow(netlist.Row{
			Y:      float64(r) * rowHeight,
			Height: rowHeight,
			XL:     0,
			XH:     side,
			SiteW:  1,
		})
	}

	// --- cells ---
	// dims tracks every added cell's size for pin-offset sampling.
	var dimW, dimH []float64
	addCell := func(name string, kind netlist.CellKind, w, h, x, y float64) int {
		dimW = append(dimW, w)
		dimH = append(dimH, h)
		return b.AddCell(name, kind, w, h, x, y)
	}
	// Movable standard cells with random initial positions (the placer
	// re-initializes; these make the raw design legal-ish to inspect).
	for i := 0; i < spec.NumMovable; i++ {
		x := rng.Float64() * (region.W() - cellW[i])
		y := math.Floor(rng.Float64()*float64(numRows)) * rowHeight
		addCell(fmt.Sprintf("o%d", i), netlist.Movable, cellW[i], rowHeight, x, y)
	}
	for m := 0; m < spec.NumMacros; m++ {
		x := rng.Float64() * (region.W() - macroSide)
		y := rng.Float64() * (region.H() - macroSide)
		addCell(fmt.Sprintf("macro%d", m), netlist.MovableMacro, macroSide, macroSide, x, y)
	}
	for f := 0; f < spec.NumFixedBlocks; f++ {
		x := rng.Float64() * (region.W() - blockSide)
		y := rng.Float64() * (region.H() - blockSide)
		addCell(fmt.Sprintf("fixed%d", f), netlist.Fixed, blockSide, blockSide, x, y)
	}
	firstPad := b.NumCells()
	for p := 0; p < spec.NumPads; p++ {
		// Pads on the periphery, cycling the four edges.
		var x, y float64
		frac := rng.Float64()
		switch p % 4 {
		case 0:
			x, y = frac*region.W(), region.YL
		case 1:
			x, y = frac*region.W(), region.YH
		case 2:
			x, y = region.XL, frac*region.H()
		case 3:
			x, y = region.XH, frac*region.H()
		}
		addCell(fmt.Sprintf("pad%d", p), netlist.Terminal, 0, 0, x, y)
	}

	// --- nets ---
	// Degree = 2 + geometric(p) with mean matching AvgDegree; locality via
	// hierarchical index windows (cells close in index are "close" in the
	// logical hierarchy, mimicking Rent's rule).
	numConnectable := spec.NumMovable + spec.NumMacros
	p := 0.0
	if spec.AvgDegree > 2 {
		p = (spec.AvgDegree - 2) / (spec.AvgDegree - 1)
	}
	sampleDegree := func() int {
		deg := 2
		for deg < 64 && rng.Float64() < p {
			deg++
		}
		return deg
	}
	pinOffset := func(ci int) (dx, dy float64) {
		// A pin somewhere on the cell body.
		return rng.Float64() * dimW[ci], rng.Float64() * dimH[ci]
	}
	seen := make(map[int]bool, 64)
	for e := 0; e < spec.NumNets; e++ {
		net := b.AddNet(fmt.Sprintf("n%d", e), 1)
		deg := sampleDegree()
		// Window size: power-law over the hierarchy (small windows
		// dominate -> local nets dominate).
		window := 4 << uint(rng.Intn(10)) // 4 .. 4096
		if window > numConnectable {
			window = numConnectable
		}
		center := rng.Intn(numConnectable)
		lo := center - window/2
		if lo < 0 {
			lo = 0
		}
		hi := lo + window
		if hi > numConnectable {
			hi = numConnectable
			lo = hi - window
			if lo < 0 {
				lo = 0
			}
		}
		for k := range seen {
			delete(seen, k)
		}
		for d := 0; d < deg; d++ {
			var ci int
			if spec.NumPads > 0 && d == 0 && rng.Float64() < 0.02 {
				// ~2% of nets are I/O nets anchored at a pad.
				ci = firstPad + rng.Intn(spec.NumPads)
			} else {
				ci = lo + rng.Intn(hi-lo)
				for tries := 0; seen[ci] && tries < 4; tries++ {
					ci = rng.Intn(numConnectable)
				}
				if seen[ci] {
					continue
				}
				seen[ci] = true
			}
			dx, dy := pinOffset(ci)
			b.AddPin(net, ci, dx, dy)
		}
	}

	d, err := b.Build()
	if err != nil {
		return nil, err
	}
	// Connect any isolated movable cells to a random existing net so every
	// cell has wirelength pull (real benchmarks have almost no orphans).
	// Rebuild only if needed.
	orphans := []int{}
	for _, c := range d.MovableIndices() {
		if len(d.PinsOfCell(c)) == 0 {
			orphans = append(orphans, c)
		}
	}
	if len(orphans) > 0 {
		d = attachOrphans(d, orphans, rng)
	}
	return d, nil
}

// attachOrphans appends one pin per orphan cell to a random net, rebuilding
// the design's CSR arrays.
func attachOrphans(d *netlist.Design, orphans []int, rng *rand.Rand) *netlist.Design {
	b := netlist.NewBuilder(d.Name)
	b.SetRegion(d.Region)
	b.SetTargetDensity(d.TargetDensity)
	for _, r := range d.Rows {
		b.AddRow(r)
	}
	for i, c := range d.Cells {
		b.AddCell(c.Name, c.Kind, c.W, c.H, d.X[i], d.Y[i])
	}
	for e := range d.Nets {
		ne := b.AddNet(d.Nets[e].Name, d.Nets[e].Weight)
		for _, p := range d.NetPins(e) {
			b.AddPin(ne, int(p.Cell), p.Dx, p.Dy)
		}
	}
	for _, c := range orphans {
		e := rng.Intn(len(d.Nets))
		b.AddPin(e, c, rng.Float64()*d.Cells[c].W, rng.Float64()*d.Cells[c].H)
	}
	return b.MustBuild()
}
