package synth

import (
	"fmt"
	"math"
)

// ContestDesign records the published statistics of one contest benchmark
// (Table I of the paper).
type ContestDesign struct {
	Name    string
	Movable int
	Fixed   int
	Nets    int
	Pins    int
	// Macros marks designs with movable macros (the paper highlights
	// newblue1, whose large movable macros drive its 5.4% gain).
	Macros int
}

// AvgDegree returns pins per net.
func (c ContestDesign) AvgDegree() float64 {
	return float64(c.Pins) / float64(c.Nets)
}

// ISPD2006 lists the ISPD2006 contest suite exactly as in Table I.
var ISPD2006 = []ContestDesign{
	{Name: "adaptec5", Movable: 842482, Fixed: 646, Nets: 867798, Pins: 3433359},
	{Name: "newblue1", Movable: 330137, Fixed: 337, Nets: 338901, Pins: 1223165, Macros: 64},
	{Name: "newblue2", Movable: 440239, Fixed: 1277, Nets: 465219, Pins: 1761069},
	{Name: "newblue3", Movable: 482833, Fixed: 11178, Nets: 552199, Pins: 1881267},
	{Name: "newblue4", Movable: 642717, Fixed: 3422, Nets: 637051, Pins: 2455617},
	{Name: "newblue5", Movable: 1228177, Fixed: 4881, Nets: 1284251, Pins: 4849194},
	{Name: "newblue6", Movable: 1248150, Fixed: 6889, Nets: 1288443, Pins: 5200208},
	{Name: "newblue7", Movable: 2481372, Fixed: 26582, Nets: 2636820, Pins: 9971913},
}

// ISPD2019 lists the ISPD2019 contest suite exactly as in Table I.
var ISPD2019 = []ContestDesign{
	{Name: "ispd19_test1", Movable: 8879, Fixed: 0, Nets: 3153, Pins: 17203},
	{Name: "ispd19_test2", Movable: 72090, Fixed: 4, Nets: 72410, Pins: 318245},
	{Name: "ispd19_test3", Movable: 8208, Fixed: 75, Nets: 8953, Pins: 30271},
	{Name: "ispd19_test4", Movable: 146435, Fixed: 7, Nets: 151612, Pins: 436707},
	{Name: "ispd19_test5", Movable: 28914, Fixed: 8, Nets: 29416, Pins: 80757},
	{Name: "ispd19_test6", Movable: 179865, Fixed: 16, Nets: 179863, Pins: 793289},
	{Name: "ispd19_test7", Movable: 359730, Fixed: 16, Nets: 358720, Pins: 1584844},
	{Name: "ispd19_test8", Movable: 539595, Fixed: 16, Nets: 537577, Pins: 2376399},
	{Name: "ispd19_test9", Movable: 899325, Fixed: 16, Nets: 895253, Pins: 3957481},
	{Name: "ispd19_test10", Movable: 899325, Fixed: 79, Nets: 895253, Pins: 3957499},
}

// Scale2006 and Scale2019 are the default reduction factors the experiment
// harness applies to the contest statistics (documented in DESIGN.md).
const (
	Scale2006 = 1.0 / 100
	Scale2019 = 1.0 / 20
)

// SpecFromContest derives a generator spec mirroring the contest design's
// movable/fixed/net/pin ratios at the given scale factor. Determinism: the
// seed is derived from the design name so suites are reproducible.
func SpecFromContest(cd ContestDesign, scale float64) Spec {
	mov := scaleCount(cd.Movable, scale, 64)
	nets := scaleCount(cd.Nets, scale, 32)
	fixed := scaleCount(cd.Fixed, scale, 0)
	macros := 0
	if cd.Macros > 0 {
		macros = scaleCount(cd.Macros, math.Sqrt(scale), 4)
	}
	// Split fixed cells: mostly pads, a few core blockages for designs
	// with many fixed objects (newblue3-style).
	blocks := 0
	if fixed > 24 {
		blocks = fixed / 10
		if blocks > 40 {
			blocks = 40
		}
	}
	pads := fixed - blocks
	if pads < 4 {
		pads = 4
	}
	util := 0.70
	td := 1.0
	if cd.Name[:4] == "ispd" {
		// The 2019 suite targets routability: lower utilization, denser
		// degree distribution.
		util = 0.55
		td = 0.90
	}
	seed := int64(0)
	for _, r := range cd.Name {
		seed = seed*131 + int64(r)
	}
	return Spec{
		Name:           cd.Name,
		NumMovable:     mov,
		NumMacros:      macros,
		NumPads:        pads,
		NumFixedBlocks: blocks,
		NumNets:        nets,
		AvgDegree:      cd.AvgDegree(),
		Utilization:    util,
		TargetDensity:  td,
		Seed:           seed,
	}
}

func scaleCount(v int, scale float64, floor int) int {
	s := int(math.Round(float64(v) * scale))
	if s < floor {
		s = floor
	}
	return s
}

// Suite2006 returns the generator specs of the ISPD2006-like suite at the
// default scale.
func Suite2006() []Spec { return suite(ISPD2006, Scale2006) }

// Suite2019 returns the generator specs of the ISPD2019-like suite at the
// default scale.
func Suite2019() []Spec { return suite(ISPD2019, Scale2019) }

// Suite2006WithScale returns the ISPD2006-like specs at an explicit scale.
func Suite2006WithScale(scale float64) []Spec { return suite(ISPD2006, scale) }

// Suite2019WithScale returns the ISPD2019-like specs at an explicit scale.
func Suite2019WithScale(scale float64) []Spec { return suite(ISPD2019, scale) }

// SuiteScaled returns contest specs at an arbitrary scale, for quick
// experiments and benchmarks.
func SuiteScaled(suiteName string, scale float64) ([]Spec, error) {
	switch suiteName {
	case "ispd2006":
		return suite(ISPD2006, scale), nil
	case "ispd2019":
		return suite(ISPD2019, scale), nil
	}
	return nil, fmt.Errorf("synth: unknown suite %q (want ispd2006 or ispd2019)", suiteName)
}

func suite(base []ContestDesign, scale float64) []Spec {
	specs := make([]Spec, len(base))
	for i, cd := range base {
		specs[i] = SpecFromContest(cd, scale)
	}
	return specs
}
