package congestion

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// twoPinDesign builds one net spanning a known box.
func twoPinDesign(t *testing.T) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("c")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 64, YH: 64})
	a := b.AddCell("a", netlist.Movable, 0, 0, 8, 8)
	c := b.AddCell("b", netlist.Movable, 0, 0, 40, 24)
	n := b.AddNet("n", 1)
	b.AddPin(n, a, 0, 0)
	b.AddPin(n, c, 0, 0)
	return b.MustBuild()
}

func TestRUDYSingleNetDemand(t *testing.T) {
	d := twoPinDesign(t)
	m, err := RUDY(d, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Net box: (8,8)-(40,24): w=32, h=16; density = (32+16)/(32*16) = 0.09375.
	// Total demand integrated over bins = density * boxArea / binArea.
	total := 0.0
	for _, v := range m.Demand {
		total += v
	}
	wantTotal := 0.09375 * (32 * 16) / (4 * 4)
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Errorf("total demand = %g, want %g", total, wantTotal)
	}
	// A bin fully inside the box carries exactly the density.
	ix, iy := 4, 3 // bin at (16..20, 12..16): inside the box
	if got := m.Demand[iy*16+ix]; math.Abs(got-0.09375) > 1e-12 {
		t.Errorf("inside-bin demand = %g, want 0.09375", got)
	}
	// A bin outside the box carries nothing.
	if got := m.Demand[15*16+15]; got != 0 {
		t.Errorf("outside-bin demand = %g", got)
	}
}

func TestRUDYNetWeightScales(t *testing.T) {
	d := twoPinDesign(t)
	m1, _ := RUDY(d, 8, 8)
	d.Nets[0].Weight = 3
	m3, _ := RUDY(d, 8, 8)
	for i := range m1.Demand {
		if math.Abs(m3.Demand[i]-3*m1.Demand[i]) > 1e-12 {
			t.Fatalf("weight did not scale demand at bin %d", i)
		}
	}
}

func TestRUDYDegenerateNet(t *testing.T) {
	// Two pins at the same point still demand wire (floored at one bin).
	b := netlist.NewBuilder("deg")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 32, YH: 32})
	a := b.AddCell("a", netlist.Movable, 0, 0, 16, 16)
	c := b.AddCell("b", netlist.Movable, 0, 0, 16, 16)
	n := b.AddNet("n", 1)
	b.AddPin(n, a, 0, 0)
	b.AddPin(n, c, 0, 0)
	d := b.MustBuild()
	m, err := RUDY(d, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range m.Demand {
		total += v
	}
	if total <= 0 {
		t.Error("degenerate net produced no demand")
	}
}

func TestRUDYSingletonNetIgnored(t *testing.T) {
	b := netlist.NewBuilder("s")
	b.SetRegion(geom.Rect{XL: 0, YL: 0, XH: 8, YH: 8})
	a := b.AddCell("a", netlist.Movable, 0, 0, 4, 4)
	n := b.AddNet("n", 1)
	b.AddPin(n, a, 0, 0)
	d := b.MustBuild()
	m, err := RUDY(d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Demand {
		if v != 0 {
			t.Fatal("singleton net should not demand wire")
		}
	}
}

func TestRUDYErrors(t *testing.T) {
	d := twoPinDesign(t)
	if _, err := RUDY(d, 0, 8); err == nil {
		t.Error("zero grid accepted")
	}
	d.Region = geom.Rect{}
	if _, err := RUDY(d, 8, 8); err == nil {
		t.Error("empty region accepted")
	}
}

func TestStatsOrdering(t *testing.T) {
	m := &Map{Nx: 4, Ny: 1, Demand: []float64{0, 1, 2, 10}}
	s := m.ComputeStats()
	if s.Peak != 10 {
		t.Errorf("Peak = %g", s.Peak)
	}
	if math.Abs(s.Avg-3.25) > 1e-12 {
		t.Errorf("Avg = %g", s.Avg)
	}
	if s.P99 < s.P95 || s.Peak < s.P99 {
		t.Errorf("percentiles out of order: %+v", s)
	}
	if s.HotspotFrac != 0.25 { // only the 10 exceeds 2*avg=6.5
		t.Errorf("HotspotFrac = %g", s.HotspotFrac)
	}
}

// Placement quality shows up in congestion: a clustered placement has a
// hotter map than a spread-out one of the same netlist.
func TestRUDYDetectsClustering(t *testing.T) {
	d, err := synth.Generate(synth.Spec{
		Name: "spread", NumMovable: 400, NumPads: 4, NumNets: 450,
		AvgDegree: 3.5, Utilization: 0.6, TargetDensity: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := RUDY(d, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Pile every cell into the corner.
	for _, c := range d.MovableIndices() {
		d.X[c], d.Y[c] = d.Region.XL, d.Region.YL
	}
	clustered, err := RUDY(d, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.ComputeStats().Peak <= spread.ComputeStats().Peak {
		t.Error("clustered placement should have higher peak congestion")
	}
}
