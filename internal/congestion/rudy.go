// Package congestion estimates routing congestion with the RUDY model
// (Rectangular Uniform wire DensitY, Spindler & Johannes): each net spreads
// a wire demand of (w + h) / (w * h) uniformly over its bounding box, and
// the per-bin accumulation approximates routing demand. The ISPD2019 suite
// the paper evaluates on is routability-driven, so the flow reports RUDY
// statistics alongside HPWL.
package congestion

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Map is a congestion grid over the placement region.
type Map struct {
	Nx, Ny     int
	Region     geom.Rect
	BinW, BinH float64
	// Demand is the RUDY wire demand per bin (dimensionless wire density),
	// indexed Demand[iy*Nx+ix].
	Demand []float64
}

// RUDY computes the congestion map of the design's current placement on an
// nx-by-ny grid.
func RUDY(d *netlist.Design, nx, ny int) (*Map, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("congestion: grid %dx%d invalid", nx, ny)
	}
	if d.Region.Empty() {
		return nil, fmt.Errorf("congestion: empty region")
	}
	m := &Map{
		Nx: nx, Ny: ny,
		Region: d.Region,
		BinW:   d.Region.W() / float64(nx),
		BinH:   d.Region.H() / float64(ny),
		Demand: make([]float64, nx*ny),
	}
	for e := range d.Nets {
		pins := d.NetPins(e)
		if len(pins) < 2 {
			continue
		}
		p0 := d.PinPos(pins[0])
		xl, xh, yl, yh := p0.X, p0.X, p0.Y, p0.Y
		for _, p := range pins[1:] {
			pt := d.PinPos(p)
			xl = math.Min(xl, pt.X)
			xh = math.Max(xh, pt.X)
			yl = math.Min(yl, pt.Y)
			yh = math.Max(yh, pt.Y)
		}
		// Degenerate boxes still demand wire along the non-degenerate
		// axis; floor each extent at one bin.
		w := math.Max(xh-xl, m.BinW)
		h := math.Max(yh-yl, m.BinH)
		density := d.Nets[e].Weight * (w + h) / (w * h)
		m.stamp(xl, yl, xl+w, yl+h, density)
	}
	return m, nil
}

// stamp adds density to every bin overlapping the box, weighted by overlap
// fraction of the bin.
func (m *Map) stamp(xl, yl, xh, yh, density float64) {
	xl = math.Max(xl, m.Region.XL)
	yl = math.Max(yl, m.Region.YL)
	xh = math.Min(xh, m.Region.XH)
	yh = math.Min(yh, m.Region.YH)
	if xh <= xl || yh <= yl {
		return
	}
	ix0 := int((xl - m.Region.XL) / m.BinW)
	ix1 := int((xh - m.Region.XL) / m.BinW)
	iy0 := int((yl - m.Region.YL) / m.BinH)
	iy1 := int((yh - m.Region.YL) / m.BinH)
	if ix1 >= m.Nx {
		ix1 = m.Nx - 1
	}
	if iy1 >= m.Ny {
		iy1 = m.Ny - 1
	}
	binArea := m.BinW * m.BinH
	for iy := iy0; iy <= iy1; iy++ {
		by := m.Region.YL + float64(iy)*m.BinH
		oy := math.Min(yh, by+m.BinH) - math.Max(yl, by)
		if oy <= 0 {
			continue
		}
		row := iy * m.Nx
		for ix := ix0; ix <= ix1; ix++ {
			bx := m.Region.XL + float64(ix)*m.BinW
			ox := math.Min(xh, bx+m.BinW) - math.Max(xl, bx)
			if ox <= 0 {
				continue
			}
			m.Demand[row+ix] += density * (ox * oy) / binArea
		}
	}
}

// Stats summarizes a congestion map.
type Stats struct {
	Peak, Avg float64
	// P99 and P95 are demand percentiles, more robust than the peak.
	P99, P95 float64
	// HotspotFrac is the fraction of bins above 2x the average demand.
	HotspotFrac float64
}

// ComputeStats derives the summary statistics of the map.
func (m *Map) ComputeStats() Stats {
	var s Stats
	n := len(m.Demand)
	if n == 0 {
		return s
	}
	sorted := append([]float64(nil), m.Demand...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	s.Avg = total / float64(n)
	s.Peak = sorted[n-1]
	s.P99 = sorted[min(n-1, n*99/100)]
	s.P95 = sorted[min(n-1, n*95/100)]
	hot := 0
	for _, v := range m.Demand {
		if v > 2*s.Avg {
			hot++
		}
	}
	s.HotspotFrac = float64(hot) / float64(n)
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
