package core

import (
	"path/filepath"
	"testing"

	"repro/internal/bookshelf"
	"repro/internal/congestion"
	"repro/internal/legalize"
	"repro/internal/metrics"
	"repro/internal/placer"
	"repro/internal/synth"
)

// TestBookshelfRoundTripFlow exercises the full external-format path: a
// synthetic design is written as Bookshelf, read back, placed end to end,
// and checked for legality — the workflow a user with the real ISPD files
// would follow.
func TestBookshelfRoundTripFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration flow in -short mode")
	}
	orig, err := synth.Generate(synth.Spec{
		Name: "roundtrip", NumMovable: 250, NumPads: 8, NumNets: 280,
		AvgDegree: 3.6, Utilization: 0.65, TargetDensity: 1, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux, err := bookshelf.WriteDesign(orig, dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := bookshelf.ReadDesign(aux)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFlowConfig("ME")
	cfg.GP = placer.Config{MaxIters: 300, StopOverflow: 0.2}
	res, err := RunFlow(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LegalizationOK {
		t.Error("flow on roundtripped design produced illegal placement")
	}
	// Write the placed result back out and re-read it: positions survive.
	outAux, err := bookshelf.WriteDesign(d, filepath.Join(dir, "placed"))
	if err != nil {
		t.Fatal(err)
	}
	placed, err := bookshelf.ReadDesign(outAux)
	if err != nil {
		t.Fatal(err)
	}
	if err := legalize.CheckLegal(placed); err != nil {
		t.Errorf("placed design lost legality through Bookshelf: %v", err)
	}
}

// TestFlowReducesOverlapAndCongestion ties the auxiliary metrics together:
// the flow must eliminate overlap entirely (legal output) and reduce RUDY
// peak congestion relative to the clustered initial state.
func TestFlowReducesOverlapAndCongestion(t *testing.T) {
	if testing.Short() {
		t.Skip("integration flow in -short mode")
	}
	d, err := synth.Generate(synth.Spec{
		Name: "metrics", NumMovable: 300, NumPads: 8, NumNets: 330,
		AvgDegree: 3.6, Utilization: 0.6, TargetDensity: 1, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clustered start: everything at the region center.
	c := d.Region.Center()
	for _, i := range d.MovableIndices() {
		d.SetCenter(i, c.X, c.Y)
	}
	before, err := congestion.RUDY(d, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	overlapBefore := metrics.TotalOverlap(d)
	if overlapBefore <= 0 {
		t.Fatal("clustered start should overlap")
	}
	cfg := DefaultFlowConfig("ME")
	cfg.GP = placer.Config{MaxIters: 400, StopOverflow: 0.15}
	if _, err := RunFlow(d, cfg); err != nil {
		t.Fatal(err)
	}
	if ov := metrics.TotalOverlap(d); ov > 1e-6 {
		t.Errorf("overlap after flow = %g, want 0", ov)
	}
	after, err := congestion.RUDY(d, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if after.ComputeStats().Peak >= before.ComputeStats().Peak {
		t.Errorf("peak congestion did not improve: %g -> %g",
			before.ComputeStats().Peak, after.ComputeStats().Peak)
	}
}
