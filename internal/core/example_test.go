package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/placer"
	"repro/internal/synth"
)

// ExampleRunFlow places a small synthetic design with the paper's
// Moreau-envelope model and reports the stage wirelengths. (No fixed Output:
// runtimes and HPWL depend on the host; see examples/quickstart for a
// runnable program.)
func ExampleRunFlow() {
	design, err := synth.Generate(synth.Spec{
		Name:          "example",
		NumMovable:    500,
		NumPads:       8,
		NumNets:       550,
		AvgDegree:     3.8,
		Utilization:   0.7,
		TargetDensity: 1.0,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultFlowConfig("ME")
	cfg.GP = placer.Config{MaxIters: 400, StopOverflow: 0.1}
	res, err := core.RunFlow(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal placement: %v, DPWL <= LGWL: %v",
		res.LegalizationOK, res.DPWL <= res.LGWL)
	// Output: legal placement: true, DPWL <= LGWL: true
}
