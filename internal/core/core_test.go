package core

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/placer"
	"repro/internal/synth"
)

func flowDesign(t testing.TB) *netlist.Design {
	t.Helper()
	d, err := synth.Generate(synth.Spec{
		Name: "flow-test", NumMovable: 300, NumPads: 8, NumNets: 330,
		AvgDegree: 3.6, Utilization: 0.65, TargetDensity: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fastFlow(model string) FlowConfig {
	cfg := DefaultFlowConfig(model)
	cfg.GP = placer.Config{MaxIters: 250, StopOverflow: 0.18}
	return cfg
}

func TestRunFlowStagesAreOrdered(t *testing.T) {
	d := flowDesign(t)
	res, err := RunFlow(d, fastFlow("ME"))
	if err != nil {
		t.Fatal(err)
	}
	if res.GPWL <= 0 || res.LGWL <= 0 || res.DPWL <= 0 {
		t.Fatalf("non-positive wirelengths: %+v", res)
	}
	// Detailed placement never worsens the legalized placement.
	if res.DPWL > res.LGWL+1e-9 {
		t.Errorf("DPWL %g > LGWL %g", res.DPWL, res.LGWL)
	}
	if !res.LegalizationOK {
		t.Error("final placement is not legal")
	}
	if res.Model != "ME" || res.Design != "flow-test" {
		t.Errorf("labels wrong: %q %q", res.Model, res.Design)
	}
	if res.TotalSeconds <= 0 || res.GPIters <= 0 {
		t.Errorf("metrics missing: %+v", res)
	}
}

func TestRunFlowTetrisReference(t *testing.T) {
	d := flowDesign(t)
	cfg := fastFlow("WA")
	cfg.UseTetris = true
	cfg.SkipDetailed = true
	res, err := RunFlow(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DPWL != res.LGWL {
		t.Error("SkipDetailed should report DPWL == LGWL")
	}
	if !res.LegalizationOK {
		t.Error("tetris output not legal")
	}
}

func TestRunFlowRecordsTrajectory(t *testing.T) {
	d := flowDesign(t)
	cfg := fastFlow("WA")
	cfg.GP.RecordEvery = 20
	res, err := RunFlow(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Error("no trajectory recorded")
	}
}

func TestRunFlowErrors(t *testing.T) {
	d := flowDesign(t)
	if _, err := RunFlow(d, FlowConfig{}); err == nil {
		t.Error("flow without model accepted")
	}
	if _, err := RunFlow(d, DefaultFlowConfig("nope")); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunFlowAllModelsProduceLegalPlacements(t *testing.T) {
	if testing.Short() {
		t.Skip("model sweep in -short mode")
	}
	base := flowDesign(t)
	for _, model := range []string{"LSE", "WA", "BiG_CHKS", "ME"} {
		res, err := RunFlow(base.Clone(), fastFlow(model))
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if !res.LegalizationOK {
			t.Errorf("%s: illegal placement", model)
		}
	}
}

func TestRunFlowRoutabilityMode(t *testing.T) {
	if testing.Short() {
		t.Skip("routability flow in -short mode")
	}
	d := flowDesign(t)
	cfg := fastFlow("ME")
	cfg.RoutabilityRounds = 1
	res, err := RunFlow(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LegalizationOK {
		t.Error("routability flow produced illegal placement")
	}
	if res.DPWL <= 0 {
		t.Errorf("DPWL = %g", res.DPWL)
	}
}
