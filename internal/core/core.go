// Package core is the top-level facade of the placement library: it wires
// global placement (internal/placer, with any wirelength model including the
// paper's Moreau-envelope model), Abacus legalization and detailed placement
// into the three-stage flow the paper's tables evaluate (GP -> LG -> DP),
// reporting the LGWL/DPWL/runtime triple of Tables II and III.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/detailed"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/placer"
	"repro/internal/wirelength"
)

// FlowConfig controls a full placement flow.
type FlowConfig struct {
	// ModelName selects the wirelength model: "LSE", "WA", "BiG_CHKS",
	// "ME" (the paper's Moreau envelope), or "HPWL".
	ModelName string
	// GP overrides the global placement configuration; when the Model
	// field is nil it is filled in from ModelName.
	GP placer.Config
	// UseTetris selects the greedy reference legalizer instead of Abacus
	// (used for the NTUPlace3-substitute reference column of Table II).
	UseTetris bool
	// SkipDetailed stops after legalization.
	SkipDetailed bool
	// GPOnly stops after global placement (no legalization or detailed
	// placement); LGWL/DPWL then repeat GPWL and no legality check runs.
	GPOnly bool
	// DP overrides detailed placement options.
	DP detailed.Options
	// RoutabilityRounds > 0 enables congestion-driven cell inflation
	// between global placement rounds (RePlAce-style routability mode).
	RoutabilityRounds int
	// Inflate tunes the inflation when RoutabilityRounds > 0.
	Inflate placer.InflateOptions
}

// DefaultFlowConfig returns the standard flow for a model name.
func DefaultFlowConfig(modelName string) FlowConfig {
	return FlowConfig{ModelName: modelName}
}

// FlowResult carries the per-stage metrics of one flow run.
type FlowResult struct {
	Design string
	Model  string

	// GPWL, LGWL, DPWL are the exact HPWL after global placement,
	// legalization, and detailed placement (the table columns).
	GPWL, LGWL, DPWL float64
	// Overflow is the final global placement density overflow.
	Overflow float64
	// GPIters counts global placement iterations.
	GPIters int
	// GPSeconds, LGSeconds, DPSeconds, TotalSeconds are stage runtimes
	// (monotonic-clock durations); GPSetupSeconds and GPLoopSeconds split
	// the global placement stage into setup and main-loop time.
	GPSeconds, LGSeconds, DPSeconds, TotalSeconds float64
	GPSetupSeconds, GPLoopSeconds                 float64
	// Trajectory is the recorded HPWL-vs-overflow curve (Fig. 3) when
	// GP.RecordEvery was set.
	Trajectory []placer.TrajectoryPoint
	// LegalizationOK reports whether the final placement passed the
	// legality check.
	LegalizationOK bool
	// ResumedFrom is the snapshot iteration a warm-started run continued
	// from (0 for a cold start).
	ResumedFrom int
	// GuardTrips/GuardRollbacks/GuardRecoveries count numerical-health guard
	// activity during global placement (zero unless GP.Guard was set).
	GuardTrips      int
	GuardRollbacks  int
	GuardRecoveries int
}

// RunFlow executes global placement, legalization, and detailed placement
// on d (in place) and returns the stage metrics.
func RunFlow(d *netlist.Design, cfg FlowConfig) (*FlowResult, error) {
	return RunFlowContext(context.Background(), d, cfg)
}

// RunFlowContext is RunFlow with cancellation: the context is threaded into
// global placement (checked every iteration) and re-checked between stages,
// so a cancelled flow returns ctx.Err() promptly.
func RunFlowContext(ctx context.Context, d *netlist.Design, cfg FlowConfig) (*FlowResult, error) {
	start := time.Now()
	gpCfg := cfg.GP
	if gpCfg.Model == nil {
		if cfg.ModelName == "" {
			return nil, fmt.Errorf("core: flow needs a model (set ModelName or GP.Model)")
		}
		m, err := wirelength.ByName(cfg.ModelName)
		if err != nil {
			return nil, err
		}
		// The zero Config is usable: placer.Place fills numeric defaults.
		gpCfg.Model = m
	}
	res := &FlowResult{Design: d.Name, Model: gpCfg.Model.Name()}

	var gp *placer.Result
	var err error
	if cfg.RoutabilityRounds > 0 {
		gp, _, err = placer.PlaceRoutabilityContext(ctx, d, gpCfg, cfg.RoutabilityRounds, cfg.Inflate)
	} else {
		gp, err = placer.PlaceContext(ctx, d, gpCfg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: global placement: %w", err)
	}
	res.GPWL = gp.HPWL
	res.Overflow = gp.Overflow
	res.GPIters = gp.Iterations
	res.GPSeconds = gp.Seconds
	res.GPSetupSeconds = gp.SetupSeconds
	res.GPLoopSeconds = gp.LoopSeconds
	res.Trajectory = gp.Trajectory
	res.ResumedFrom = gp.ResumedFrom
	res.GuardTrips = gp.GuardTrips
	res.GuardRollbacks = gp.GuardRollbacks
	res.GuardRecoveries = gp.GuardRecoveries

	if cfg.GPOnly {
		res.LGWL = gp.HPWL
		res.DPWL = gp.HPWL
		res.TotalSeconds = time.Since(start).Seconds()
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: cancelled before legalization: %w", err)
	}
	o := cfg.GP.Obs
	logger := o.Logger()
	if o != nil {
		// Post-GP spans are flow-level, not tied to an optimizer iteration.
		o.Trace.SetIter(-1)
	}

	lgStart := time.Now()
	sp := o.StartPhase(obs.PhaseLegalize)
	if cfg.UseTetris {
		lg, err := legalize.Tetris(d)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: legalization: %w", err)
		}
		res.LGWL = lg.HPWL
	} else {
		lg, err := legalize.Abacus(d, legalize.Options{SiteAlign: true})
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: legalization: %w", err)
		}
		res.LGWL = lg.HPWL
	}
	sp.End()
	res.LGSeconds = time.Since(lgStart).Seconds()
	logger.Info("lg: done", "hpwl", res.LGWL, "seconds", res.LGSeconds)

	if cfg.SkipDetailed {
		res.DPWL = res.LGWL
	} else {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: cancelled before detailed placement: %w", err)
		}
		dpStart := time.Now()
		sp = o.StartPhase(obs.PhaseDetailed)
		dp, err := detailed.Place(d, cfg.DP)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: detailed placement: %w", err)
		}
		res.DPWL = dp.HPWL
		res.DPSeconds = time.Since(dpStart).Seconds()
		logger.Info("dp: done", "hpwl", res.DPWL, "seconds", res.DPSeconds)
	}

	res.LegalizationOK = legalize.CheckLegal(d) == nil
	res.TotalSeconds = time.Since(start).Seconds()
	return res, nil
}
