package placertop

import (
	"strings"
	"testing"
	"time"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", s)
	}
	if got := Sparkline([]float64{1, 2}, 5); got != "   ▁█" {
		t.Errorf("short series not right-aligned: %q", got)
	}
	// Longer than width: newest values win.
	if got := Sparkline([]float64{9, 9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("tail window = %q", got)
	}
	// Flat series renders mid-height, not floor.
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▅▅▅" {
		t.Errorf("flat series = %q", got)
	}
	if Sparkline(nil, 0) != "" {
		t.Error("zero width must be empty")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "█████·····" {
		t.Errorf("half bar = %q", got)
	}
	if got := Bar(0, 4); got != "····" {
		t.Errorf("empty bar = %q", got)
	}
	if got := Bar(1.7, 4); got != "████" {
		t.Errorf("clamped bar = %q", got)
	}
	// Tiny non-zero load must stay visible.
	if got := Bar(0.001, 8); !strings.HasPrefix(got, "█") {
		t.Errorf("tiny load invisible: %q", got)
	}
}

func TestChartShape(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	rows := Chart(vals, 10, 4)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, r := range rows {
		if n := len([]rune(r)); n != 10 {
			t.Errorf("row %d width = %d, want 10 (%q)", i, n, r)
		}
	}
	// The max value fills the full height; the min only touches the bottom.
	if !strings.HasSuffix(rows[0], "█") {
		t.Errorf("top row must end with a full block: %q", rows[0])
	}
	if strings.TrimLeft(rows[0][:3], " ") != "" && rows[0][0] != ' ' {
		t.Errorf("low values must not reach the top row: %q", rows[0])
	}
	// Determinism: same input, same rows.
	again := Chart(vals, 10, 4)
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("chart not deterministic at row %d", i)
		}
	}
}

func TestFmtSI(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		987:    "987",
		1234:   "1.23k",
		45.6e6: "45.6M",
		1.16e6: "1.16M",
		2.5e9:  "2.50G",
		0.123:  "0.123",
		3.5:    "3.5",
		-2000:  "-2.0k",
	}
	for in, want := range cases {
		if got := fmtSI(in); got != want {
			t.Errorf("fmtSI(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtAge(t *testing.T) {
	cases := map[time.Duration]string{
		200 * time.Millisecond:        "0.2s",
		45 * time.Second:              "45s",
		2*time.Minute + 3*time.Second: "2m03s",
		90 * time.Minute:              "1h30m",
		-time.Second:                  "0.0s",
	}
	for in, want := range cases {
		if got := fmtAge(in); got != want {
			t.Errorf("fmtAge(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPad(t *testing.T) {
	if got := pad("ab", 4); got != "ab  " {
		t.Errorf("pad = %q", got)
	}
	if got := pad("abcdef", 4); got != "abc…" {
		t.Errorf("truncation = %q", got)
	}
}

func TestFrameClippingAndPlain(t *testing.T) {
	f := NewFrame(5, 2)
	f.Text(3, 0, "abcdef", SDefault) // clips at right edge
	f.Set(-1, 5, 'x', SDefault)      // out of bounds: ignored
	got := f.Plain()
	if got != "   ab\n\n" {
		t.Errorf("Plain = %q", got)
	}
}

func TestReplayStateTransport(t *testing.T) {
	st := &ReplayState{Points: mustLoadFixture(t), Speed: 5}
	st.Step()
	if st.Pos != 5 {
		t.Errorf("Pos after step = %d, want 5", st.Pos)
	}
	st.Paused = true
	st.Step()
	if st.Pos != 5 {
		t.Errorf("paused step moved playhead to %d", st.Pos)
	}
	st.Advance(-100)
	if st.Pos != 0 {
		t.Errorf("rewind clamp = %d", st.Pos)
	}
	st.Advance(1 << 20)
	if st.Pos != len(st.Points) {
		t.Errorf("forward clamp = %d, want %d", st.Pos, len(st.Points))
	}
}
