package placertop

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trajclient"
)

var updateGolden = flag.Bool("update", false, "rewrite golden frame files")

func mustLoadFixture(t *testing.T) []trajclient.Point {
	t.Helper()
	pts, err := LoadTrajectory(filepath.Join("testdata", "replay.ndjson"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return pts
}

// fleetSnapshot is a fixed, fully populated fleet view: every panel has
// content so the goldens cover the whole layout.
func fleetSnapshot(t *testing.T) *Snapshot {
	pts := mustLoadFixture(t)
	return &Snapshot{
		Mode:        "live",
		Source:      "http://coord:7171",
		WorkersLive: 1,
		Pending:     2,
		Seq:         42,
		Workers: []WorkerRow{
			{ID: "wA", Live: true, Age: 300 * time.Millisecond, QueueDepth: 3, QueueCap: 8,
				Running: 2, PlaceWorkers: 2, CacheHits: 12, CacheNear: 3, CacheMisses: 40},
			{ID: "wB", Live: false, Age: 7 * time.Second, QueueDepth: 7, QueueCap: 8,
				Running: 1, PlaceWorkers: 2, CacheMisses: 9},
		},
		Tenants: []TenantRow{
			{Name: "prod-eco", Class: "prod", InFlight: 1, MaxInFlight: 4, Admitted: 31},
			{Name: "batch-sweep", Class: "batch", InFlight: 6, Admitted: 120, RejectedRate: 4, RejectedQuota: 2},
		},
		Jobs: []JobRow{
			{ID: "fj-00000001", Tenant: "prod-eco", Class: "prod", State: "done", Worker: "wA",
				Iteration: 120, HPWL: 1.103e6, Overflow: 0.04, Points: pts},
			{ID: "fj-00000002", Tenant: "batch-sweep", Class: "batch", State: "running", Worker: "wA",
				Iteration: 64, HPWL: 1.21e6, Overflow: 0.18, GuardTrips: 1, Points: pts[:64]},
			{ID: "fj-00000003", Tenant: "batch-sweep", Class: "batch", State: "pending",
				Reroutes: 1},
		},
		TruncatedJobs: 5,
		Cache:         CacheStats{Hits: 12, NearHits: 3, Misses: 49},
		Alerts: []string{
			"guard trip on fj-00000002 (total 1)",
			"worker wB stopped heartbeating (age 7.0s)",
		},
	}
}

func replaySnapshot(t *testing.T, pos int) *Snapshot {
	return &Snapshot{
		Mode: "replay",
		Seq:  7,
		Replay: &ReplayState{
			File:   "testdata/replay.ndjson",
			Points: mustLoadFixture(t),
			Pos:    pos,
			Speed:  2,
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("frame %s drifted from golden (run go test -update after verifying):\n--- got ---\n%s", name, got)
	}
}

// TestGoldenFrames pins the rendered frames bit-for-bit at fixed terminal
// sizes: the fleet view and two replay positions, in both plain and ANSI
// form. Any layout change must come with regenerated goldens.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		snap *Snapshot
		w, h int
	}{
		{"fleet_80x24", fleetSnapshot(t), 80, 24},
		{"fleet_120x32", fleetSnapshot(t), 120, 32},
		{"replay_80x24_mid", replaySnapshot(t, 66), 80, 24},
		{"replay_120x32_end", replaySnapshot(t, 120), 120, 32},
		{"replay_80x24_start", replaySnapshot(t, 0), 80, 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Render(tc.snap, tc.w, tc.h)
			checkGolden(t, tc.name, f.Plain())
			checkGolden(t, tc.name+"_ansi", f.ANSI())

			// Bit-stability: a second render of the same snapshot must be
			// byte-identical (the replay determinism guarantee).
			again := Render(tc.snap, tc.w, tc.h)
			if f.ANSI() != again.ANSI() {
				t.Error("rendering is not deterministic")
			}
		})
	}
}

// TestRenderSmallTerminals: every tiny size must render without panicking
// and keep the header.
func TestRenderSmallTerminals(t *testing.T) {
	snap := fleetSnapshot(t)
	rep := replaySnapshot(t, 30)
	for _, wh := range [][2]int{{1, 1}, {20, 5}, {40, 10}, {79, 23}} {
		for _, s := range []*Snapshot{snap, rep} {
			f := Render(s, wh[0], wh[1])
			if f.W != max(wh[0], 1) || f.H != max(wh[1], 1) {
				t.Errorf("frame size %dx%d for requested %v", f.W, f.H, wh)
			}
		}
	}
	out := Render(snap, 40, 10).Plain()
	if !strings.Contains(out, "placertop") {
		t.Errorf("small frame lost header:\n%s", out)
	}
}

// TestPlainFrameMentionsEveryPanel sanity-checks the fleet layout without
// pinning bytes: worker IDs, tenant names, job IDs, and alerts all render.
func TestPlainFrameMentionsEveryPanel(t *testing.T) {
	snap := fleetSnapshot(t)
	out := Render(snap, 100, 30).Plain()
	for _, want := range []string{
		"wA", "wB", "prod-eco", "batch-sweep", "fj-00000001", "fj-00000003",
		"guard trip on fj-00000002", "cache hit 12 near 3 miss 49",
		"workers 1/2", "pending 2", "jobs (+5 older)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Error("no sparkline glyphs in fleet frame")
	}
}

// TestLoadTrajectoryErrors: empty and malformed recordings fail loudly.
func TestLoadTrajectoryErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.ndjson")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(empty); err == nil {
		t.Error("empty recording must error")
	}
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte("{\"iter\":0}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(bad); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line error = %v, want line 2 mention", err)
	}
	if _, err := LoadTrajectory(filepath.Join(dir, "missing.ndjson")); err == nil {
		t.Error("missing file must error")
	}
	pts, err := LoadTrajectory(filepath.Join("testdata", "replay.ndjson"))
	if err != nil || len(pts) != 120 {
		t.Fatalf("fixture load: %d points, err %v", len(pts), err)
	}
	if pts[64].GuardTrips != 1 || pts[63].GuardTrips != 0 {
		t.Errorf("fixture guard trip not at iter 64: %+v", pts[64])
	}
	_ = fmt.Sprintf
}
