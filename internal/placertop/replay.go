package placertop

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/trajclient"
)

// ReplayState is the trajectory-replay view: a recorded NDJSON trajectory
// (one `placerd` stream captured with curl, or the EXPERIMENTS fig3 data)
// scrubbed through offline. Points holds the full recording; Pos is how
// many points are currently "played". The replay view reproduces the
// paper's Fig. 3 convergence curves frame by frame.
type ReplayState struct {
	File   string
	Points []trajclient.Point
	// Pos is the number of points visible (clamped to [0, len(Points)]).
	Pos int
	// Speed is points advanced per tick; Paused freezes the playhead.
	Speed  int
	Paused bool
}

// LoadTrajectory reads an NDJSON trajectory recording: one JSON point per
// line, blank lines skipped. Returns an error for an empty or undecodable
// file so placertop fails loudly rather than rendering a blank replay.
func LoadTrajectory(path string) ([]trajclient.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := DecodeTrajectory(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// DecodeTrajectory decodes an NDJSON point stream from r.
func DecodeTrajectory(r io.Reader) ([]trajclient.Point, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pts []trajclient.Point
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p trajclient.Point
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("line %d: %w", len(pts)+1, err)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("no trajectory points")
	}
	return pts, nil
}

// Step advances the playhead by the current speed (no-op when paused).
func (rp *ReplayState) Step() {
	if rp.Paused {
		return
	}
	rp.Advance(rp.Speed)
}

// Advance moves the playhead by n points (negative rewinds), clamping to
// the recording bounds.
func (rp *ReplayState) Advance(n int) {
	rp.Pos = clampInt(rp.Pos+n, 0, len(rp.Points))
}

// visible returns the played prefix of the recording.
func (rp *ReplayState) visible() []trajclient.Point {
	return rp.Points[:clampInt(rp.Pos, 0, len(rp.Points))]
}

// renderReplay draws the single-trajectory view: an HPWL chart over an
// overflow chart, the current point's numbers, guard-trip markers, and a
// transport bar with the playhead position.
func renderReplay(f *Frame, s *Snapshot) {
	rp := s.Replay
	w, h := f.W, f.H
	f.Text(0, 0, "placertop replay", STitle)
	f.Text(17, 0, "· "+rp.File, SDim)
	mode := fmt.Sprintf("speed x%d", rp.Speed)
	if rp.Paused {
		mode = "paused"
	}
	f.TextRight(w-1, 0, fmt.Sprintf("%s  #%d", mode, s.Seq), SDefault)

	vis := rp.visible()
	chartW := w - 4

	// Split the vertical space: HPWL gets the larger chart.
	avail := h - 7 // header, 2 titles, stats line, transport, footer, spare
	hpwlH := clampInt(avail*3/5, 3, 12)
	ovH := clampInt(avail-hpwlH, 2, 8)

	y := 1
	f.Text(2, y, "hpwl", STitle)
	if n := len(vis); n > 0 {
		f.TextRight(w-3, y, fmtSI(vis[n-1].HPWL), SDefault)
	}
	y++
	hp := make([]float64, len(vis))
	ov := make([]float64, len(vis))
	for i, p := range vis {
		hp[i] = p.HPWL
		ov[i] = p.Overflow
	}
	for _, row := range Chart(hp, chartW, hpwlH) {
		f.Text(2, y, row, SAccent)
		y++
	}
	f.Text(2, y, "overflow", STitle)
	if n := len(vis); n > 0 {
		f.TextRight(w-3, y, fmtSI(vis[n-1].Overflow), overflowStyle(vis[n-1].Overflow))
	}
	y++
	for _, row := range Chart(ov, chartW, ovH) {
		f.Text(2, y, row, SWarn)
		y++
	}

	// Current-point stats and guard history.
	if n := len(vis); n > 0 {
		p := vis[n-1]
		stats := fmt.Sprintf("iter %-6d λ %-8s µ %-8s obj %-8s guard %d",
			p.Iter, fmtSI(p.Lambda), fmtSI(p.Param), fmtSI(p.Objective), p.GuardTrips)
		f.Text(2, y, stats, SDefault)
	} else {
		f.Text(2, y, "at start of recording", SDim)
	}
	y++

	// Transport: played fraction plus point counter.
	frac := 0.0
	if len(rp.Points) > 0 {
		frac = float64(rp.Pos) / float64(len(rp.Points))
	}
	counter := fmt.Sprintf(" %d/%d", rp.Pos, len(rp.Points))
	barW := w - 4 - len(counter)
	f.Text(2, y, Bar(frac, barW), SAccent)
	f.Text(2+barW, y, counter, SDim)

	f.Text(0, h-1, "space pause  ./, step  +/- speed  0 rewind  q quit", SDim)
}
