package placertop

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// sparkRunes are the eight block glyphs a sparkline or chart column is
// quantised onto, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline compresses a series into one row of block glyphs, width cells
// wide. The most recent values win when the series is longer than the
// width; shorter series are left-padded with spaces so the line stays
// right-aligned against its newest point. A flat series renders mid-height
// rather than collapsing to the floor.
func Sparkline(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for i := 0; i < width-len(vals); i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[clampInt(idx, 0, len(sparkRunes)-1)])
	}
	return b.String()
}

// Bar renders a horizontal gauge of the given width: '█' for the filled
// fraction, '·' for the rest. frac is clamped to [0,1]; any non-zero
// fraction shows at least one filled cell so load is never invisible.
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if math.IsNaN(frac) {
		frac = 0
	}
	frac = math.Max(0, math.Min(1, frac))
	fill := int(math.Round(frac * float64(width)))
	if frac > 0 && fill == 0 {
		fill = 1
	}
	return strings.Repeat("█", fill) + strings.Repeat("·", width-fill)
}

// Chart renders a series as a w×h column chart, one string per row, top
// row first. Columns are min-max scaled; partial cell tops use the block
// glyphs so adjacent values stay distinguishable even on shallow charts.
// The newest values win when the series is wider than the chart.
func Chart(vals []float64, w, h int) []string {
	rows := make([]string, h)
	if w <= 0 || h <= 0 {
		return rows
	}
	if len(vals) > w {
		vals = vals[len(vals)-w:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// eighths of cell height per column, 0..h*8
	levels := make([]int, len(vals))
	for i, v := range vals {
		frac := 0.5
		if hi > lo {
			frac = (v - lo) / (hi - lo)
		}
		levels[i] = clampInt(int(math.Round(frac*float64(h*8-1)))+1, 1, h*8)
	}
	pad := w - len(vals)
	for y := 0; y < h; y++ {
		var b strings.Builder
		floor := (h - 1 - y) * 8 // eighths below this row
		for i := 0; i < pad; i++ {
			b.WriteByte(' ')
		}
		for _, lv := range levels {
			switch {
			case lv >= floor+8:
				b.WriteRune('█')
			case lv <= floor:
				b.WriteByte(' ')
			default:
				b.WriteRune(sparkRunes[lv-floor-1])
			}
		}
		rows[y] = b.String()
	}
	return rows
}

// fmtSI renders a value with an SI magnitude suffix in at most 5 runes
// ("987", "1.23k", "45.6M") — tight enough for dashboard columns.
func fmtSI(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return trimSI(v/1e9) + "G"
	case av >= 1e6:
		return trimSI(v/1e6) + "M"
	case av >= 1e3:
		return trimSI(v/1e3) + "k"
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func trimSI(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	if len(s) > 4 {
		s = fmt.Sprintf("%.1f", v)
	}
	if len(s) > 4 {
		s = fmt.Sprintf("%.0f", v)
	}
	return s
}

// fmtAge renders a duration as a short age ("0.2s", "45s", "2m03s", "1h12m").
func fmtAge(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	switch {
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
