package placertop

import (
	"fmt"
	"time"

	"repro/internal/trajclient"
)

// WorkerRow is one worker's line in the dashboard: liveness and heartbeat
// age from the coordinator registry plus its last reported load and cache
// traffic.
type WorkerRow struct {
	ID           string
	URL          string
	Live         bool
	Age          time.Duration
	QueueDepth   int
	QueueCap     int
	Running      int
	PlaceWorkers int
	CacheHits    int64
	CacheNear    int64
	CacheMisses  int64
}

// TenantRow is one tenant's line in the admission panel.
type TenantRow struct {
	Name          string
	Class         string
	InFlight      int
	MaxInFlight   int
	Admitted      int64
	RejectedRate  int64
	RejectedQuota int64
}

// JobRow is one job's line: routing facts plus the trajectory tail that
// feeds the convergence sparklines.
type JobRow struct {
	ID         string
	Tenant     string
	Class      string
	State      string
	Worker     string
	Iteration  int
	HPWL       float64
	Overflow   float64
	Lambda     float64
	GuardTrips int
	Reroutes   int
	Steals     int
	// Points is the job's recent trajectory tail (oldest first).
	Points []trajclient.Point
}

// CacheStats aggregates the fleet-wide placement-cache traffic.
type CacheStats struct {
	Hits     int64
	NearHits int64
	Misses   int64
	Entries  int64
	Bytes    int64
}

// Snapshot is everything one dashboard frame renders. It is plain data:
// the collectors (live poller, replay reader) build Snapshots and the
// renderer turns them into frames, so rendering stays a pure function.
type Snapshot struct {
	// Mode is "live" or "replay"; Source names the polled URL or the replay
	// file.
	Mode   string
	Source string

	Workers     []WorkerRow
	WorkersLive int
	Pending     int
	Tenants     []TenantRow
	Jobs        []JobRow
	// TruncatedJobs counts job rows the overview dropped (shown so an
	// operator knows the list is not the whole fleet).
	TruncatedJobs int
	Cache         CacheStats

	// Alerts are the most recent operator-facing events (guard trips,
	// reroutes, steals, worker deaths), newest last.
	Alerts []string

	// Seq is the poll/frame counter shown in the footer — monotonic input
	// state, not wall-clock, so rendering stays deterministic.
	Seq int

	// Replay is set in replay mode and switches the layout to the
	// single-trajectory view.
	Replay *ReplayState
}

// Render draws the snapshot into a fresh w×h frame.
func Render(s *Snapshot, w, h int) *Frame {
	f := NewFrame(w, h)
	if s.Replay != nil {
		renderReplay(f, s)
		return f
	}
	renderFleet(f, s)
	return f
}

// renderFleet lays the fleet view out as vertical bands: header, workers,
// jobs (flexible), tenants, alerts, footer. Bands shrink in a fixed order
// when the terminal is short, so every height renders something sane.
func renderFleet(f *Frame, s *Snapshot) {
	w, h := f.W, f.H
	f.Text(0, 0, "placertop", STitle)
	f.Text(10, 0, "· "+s.Source, SDim)
	right := fmt.Sprintf("workers %d/%d  pending %d  #%d", s.WorkersLive, len(s.Workers), s.Pending, s.Seq)
	f.TextRight(w-1, 0, right, SDefault)

	// Fixed-height bands from both ends; the jobs box absorbs the rest.
	workersH := clampInt(len(s.Workers), 1, 6) + 2
	tenantsH := clampInt(len(s.Tenants), 1, 4) + 2
	alertsH := 4
	footerY := h - 1
	y := 1

	drawWorkers(f, s, 0, y, w, workersH)
	y += workersH

	jobsH := h - 1 - y - tenantsH - alertsH - 1
	if jobsH < 4 { // short terminal: sacrifice alerts, then tenants
		alertsH = 0
		jobsH = h - 1 - y - tenantsH - 1
	}
	if jobsH < 4 {
		tenantsH = 0
		jobsH = h - 1 - y - 1
	}
	if jobsH >= 3 {
		drawJobs(f, s, 0, y, w, jobsH)
		y += jobsH
	}
	if tenantsH > 0 {
		drawTenants(f, s, 0, y, w, tenantsH)
		y += tenantsH
	}
	if alertsH > 0 {
		drawAlerts(f, s, 0, y, w, alertsH)
	}

	cache := fmt.Sprintf("cache hit %d near %d miss %d", s.Cache.Hits, s.Cache.NearHits, s.Cache.Misses)
	f.Text(0, footerY, cache, SDim)
	f.TextRight(w-1, footerY, "q quit", SDim)
}

func drawWorkers(f *Frame, s *Snapshot, x, y, w, h int) {
	f.Box(x, y, w, h, "workers", SDim)
	rows := s.Workers
	if len(rows) > h-2 {
		rows = rows[:h-2]
	}
	for i, wk := range rows {
		ry := y + 1 + i
		st, dot := SGood, "●"
		if !wk.Live {
			st, dot = SBad, "○"
		}
		f.Text(x+2, ry, dot, st)
		f.Text(x+4, ry, pad(wk.ID, 10), SDefault)
		f.Text(x+15, ry, "age "+pad(fmtAge(wk.Age), 6), ageStyle(wk))
		barW := 10
		frac := 0.0
		if wk.QueueCap > 0 {
			frac = float64(wk.QueueDepth) / float64(wk.QueueCap)
		}
		f.Text(x+26, ry, "q ", SDim)
		f.Text(x+28, ry, Bar(frac, barW), queueStyle(frac))
		f.Text(x+28+barW+1, ry, fmt.Sprintf("%d/%d", wk.QueueDepth, wk.QueueCap), SDefault)
		f.Text(x+45, ry, fmt.Sprintf("run %d/%d", wk.Running, wk.PlaceWorkers), SDefault)
		f.TextRight(x+w-3, ry, fmt.Sprintf("cache %d/%d/%d", wk.CacheHits, wk.CacheNear, wk.CacheMisses), SDim)
	}
	if len(s.Workers) == 0 {
		f.Text(x+2, y+1, "no workers reporting", SWarn)
	}
}

func ageStyle(wk WorkerRow) Style {
	if !wk.Live {
		return SBad
	}
	return SDim
}

func queueStyle(frac float64) Style {
	switch {
	case frac >= 0.9:
		return SBad
	case frac >= 0.6:
		return SWarn
	}
	return SAccent
}

func drawJobs(f *Frame, s *Snapshot, x, y, w, h int) {
	title := "jobs"
	if s.TruncatedJobs > 0 {
		title = fmt.Sprintf("jobs (+%d older)", s.TruncatedJobs)
	}
	f.Box(x, y, w, h, title, SDim)
	rows := s.Jobs
	max := h - 2
	if len(rows) > max {
		// Most recent activity matters most; keep the tail.
		rows = rows[len(rows)-max:]
	}
	sparkX := x + 72
	sparkW := clampInt(x+w-2-sparkX, 0, 32)
	for i, j := range rows {
		ry := y + 1 + i
		f.Text(x+2, ry, pad(j.ID, 11), SDefault)
		f.Text(x+14, ry, pad(j.Tenant+"/"+j.Class, 11), SDim)
		f.Text(x+26, ry, pad(j.State, 7), stateStyle(j.State))
		f.Text(x+34, ry, pad(j.Worker, 6), SDim)
		f.Text(x+41, ry, fmt.Sprintf("it %-5d", j.Iteration), SDefault)
		f.Text(x+50, ry, "hp "+pad(fmtSI(j.HPWL), 5), SDefault)
		f.Text(x+59, ry, "ov "+pad(fmtSI(j.Overflow), 5), overflowStyle(j.Overflow))
		if j.GuardTrips > 0 {
			f.Text(x+68, ry, fmt.Sprintf("g%d", j.GuardTrips), SWarn)
		}
		if n := len(j.Points); n > 0 && sparkW >= 4 {
			hp := make([]float64, n)
			for k, p := range j.Points {
				hp[k] = p.HPWL
			}
			f.Text(sparkX, ry, Sparkline(hp, sparkW), SAccent)
		}
	}
	if len(s.Jobs) == 0 {
		f.Text(x+2, y+1, "no jobs", SDim)
	}
}

func stateStyle(state string) Style {
	switch state {
	case "done":
		return SGood
	case "failed", "cancelled":
		return SBad
	case "running":
		return SAccent
	default:
		return SWarn
	}
}

func overflowStyle(ov float64) Style {
	switch {
	case ov > 0.5:
		return SBad
	case ov > 0.1:
		return SWarn
	}
	return SGood
}

func drawTenants(f *Frame, s *Snapshot, x, y, w, h int) {
	f.Box(x, y, w, h, "tenants", SDim)
	rows := s.Tenants
	if len(rows) > h-2 {
		rows = rows[:h-2]
	}
	for i, tn := range rows {
		ry := y + 1 + i
		f.Text(x+2, ry, pad(tn.Name, 12), SDefault)
		f.Text(x+15, ry, pad(tn.Class, 6), SDim)
		quota := fmt.Sprintf("inflight %d", tn.InFlight)
		if tn.MaxInFlight > 0 {
			quota = fmt.Sprintf("inflight %d/%d", tn.InFlight, tn.MaxInFlight)
		}
		f.Text(x+22, ry, pad(quota, 16), SDefault)
		f.Text(x+39, ry, fmt.Sprintf("ok %-5d", tn.Admitted), SGood)
		rejSt := SDim
		if tn.RejectedRate+tn.RejectedQuota > 0 {
			rejSt = SWarn
		}
		f.Text(x+48, ry, fmt.Sprintf("429 rate %d quota %d", tn.RejectedRate, tn.RejectedQuota), rejSt)
	}
	if len(s.Tenants) == 0 {
		f.Text(x+2, y+1, "no tenants seen", SDim)
	}
}

func drawAlerts(f *Frame, s *Snapshot, x, y, w, h int) {
	f.Box(x, y, w, h, "alerts", SDim)
	rows := s.Alerts
	if len(rows) > h-2 {
		rows = rows[len(rows)-(h-2):]
	}
	for i, a := range rows {
		f.Text(x+2, y+1+i, "! "+a, SBad)
	}
	if len(s.Alerts) == 0 {
		f.Text(x+2, y+1, "none", SDim)
	}
}

// pad returns s left-aligned in exactly n runes (truncating with '…').
func pad(s string, n int) string {
	r := []rune(s)
	if len(r) > n {
		if n < 1 {
			return ""
		}
		return string(r[:n-1]) + "…"
	}
	for len(r) < n {
		r = append(r, ' ')
	}
	return string(r)
}
