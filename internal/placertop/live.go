package placertop

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/trajclient"
)

// Collector polls a fleet coordinator (preferred) or a single placerd
// worker and folds the responses into dashboard Snapshots. It keeps
// per-job trajectory tails across polls — each poll fetches only the
// points after the last delivered iteration, so tailing N jobs stays a
// handful of tiny requests per refresh.
type Collector struct {
	// Base is the coordinator or worker base URL.
	Base string
	// HTTP serves the JSON polls. nil uses a short-timeout default.
	HTTP *http.Client
	// MaxTrajJobs bounds how many active jobs get trajectory tails per poll
	// (default 8) — the sparkline column, not the job table, is capped.
	MaxTrajJobs int
	// TailLen bounds the points retained per job (default 180 ≈ one
	// sparkline at any terminal width).
	TailLen int

	traj     *trajclient.Client
	mode     string // "", "fleet", or "worker"
	seq      int
	tails    map[string][]trajclient.Point
	lastIter map[string]int

	prevGuard map[string]int
	prevMove  map[string]int // reroutes+steals per job
	prevLive  map[string]bool
	alerts    []string
}

const maxAlerts = 8

// NewCollector builds a collector for the given base URL.
func NewCollector(base string) *Collector {
	return &Collector{Base: base}
}

func (c *Collector) http_() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (c *Collector) init() {
	if c.tails == nil {
		c.tails = make(map[string][]trajclient.Point)
		c.lastIter = make(map[string]int)
		c.prevGuard = make(map[string]int)
		c.prevMove = make(map[string]int)
		c.prevLive = make(map[string]bool)
	}
	if c.traj == nil {
		c.traj = &trajclient.Client{Base: c.Base, HTTP: c.http_(), MaxAttempts: 1}
	}
	if c.MaxTrajJobs == 0 {
		c.MaxTrajJobs = 8
	}
	if c.TailLen == 0 {
		c.TailLen = 180
	}
}

// Snapshot performs one poll and returns the dashboard state. The first
// call probes for the coordinator's overview endpoint and falls back to
// single-worker mode when the base URL is a bare placerd.
func (c *Collector) Snapshot(ctx context.Context) (*Snapshot, error) {
	c.init()
	if c.mode == "" {
		if err := c.detect(ctx); err != nil {
			return nil, err
		}
	}
	var (
		s   *Snapshot
		err error
	)
	switch c.mode {
	case "fleet":
		s, err = c.pollFleet(ctx)
	default:
		s, err = c.pollWorker(ctx)
	}
	if err != nil {
		return nil, err
	}
	c.fetchTails(ctx, s)
	c.deriveAlerts(s)
	c.seq++
	s.Seq = c.seq
	s.Mode = "live"
	s.Source = c.Base
	return s, nil
}

// detect probes GET /v1/fleet/overview: a 200 means a coordinator, a 404
// means a bare worker (which serves /stats instead).
func (c *Collector) detect(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/fleet/overview", nil)
	if err != nil {
		return err
	}
	resp, err := c.http_().Do(req)
	if err != nil {
		return fmt.Errorf("placertop: cannot reach %s: %w", c.Base, err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		c.mode = "fleet"
	} else {
		c.mode = "worker"
	}
	return nil
}

func (c *Collector) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http_().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// pollFleet folds one coordinator overview document into a Snapshot.
func (c *Collector) pollFleet(ctx context.Context) (*Snapshot, error) {
	var ov fleet.Overview
	if err := c.getJSON(ctx, "/v1/fleet/overview", &ov); err != nil {
		return nil, err
	}
	s := &Snapshot{
		WorkersLive:   ov.WorkersLive,
		Pending:       ov.Pending,
		TruncatedJobs: ov.TruncatedJobs,
		Cache: CacheStats{
			Hits: ov.Cache.Hits, NearHits: ov.Cache.NearHits, Misses: ov.Cache.Misses,
			Entries: ov.Cache.Entries, Bytes: ov.Cache.Bytes,
		},
	}
	for _, w := range ov.Workers {
		s.Workers = append(s.Workers, WorkerRow{
			ID: w.ID, URL: w.URL, Live: w.Live,
			Age:        time.Duration(w.HeartbeatAgeSeconds * float64(time.Second)),
			QueueDepth: w.QueueDepth, QueueCap: w.QueueCap,
			Running: w.Running, PlaceWorkers: w.PlaceWorkers,
			CacheHits: w.CacheHits, CacheNear: w.CacheNearHits, CacheMisses: w.CacheMisses,
		})
	}
	for _, tn := range ov.Tenants {
		s.Tenants = append(s.Tenants, TenantRow{
			Name: tn.Name, Class: tn.Class,
			InFlight: tn.InFlight, MaxInFlight: tn.MaxInFlight,
			Admitted: tn.Admitted, RejectedRate: tn.RejectedRate, RejectedQuota: tn.RejectedQuota,
		})
	}
	for _, j := range ov.Jobs {
		s.Jobs = append(s.Jobs, JobRow{
			ID: j.ID, Tenant: j.Tenant, Class: j.Class, State: j.State, Worker: j.Worker,
			Iteration: j.Iteration, HPWL: j.HPWL, Overflow: j.Overflow,
			GuardTrips: j.GuardTrips, Reroutes: j.Reroutes, Steals: j.Steals,
		})
	}
	return s, nil
}

// pollWorker builds the same Snapshot from a bare placerd's /stats and
// /jobs endpoints (one synthetic worker row, no tenant panel).
func (c *Collector) pollWorker(ctx context.Context) (*Snapshot, error) {
	var stats service.ManagerStats
	if err := c.getJSON(ctx, "/stats", &stats); err != nil {
		return nil, err
	}
	var list struct {
		Jobs []service.JobView `json:"jobs"`
	}
	if err := c.getJSON(ctx, "/jobs", &list); err != nil {
		return nil, err
	}
	s := &Snapshot{
		WorkersLive: 1,
		Workers: []WorkerRow{{
			ID: "local", URL: c.Base, Live: true,
			QueueDepth: stats.QueueDepth, QueueCap: stats.QueueCap,
			Running: stats.Running, PlaceWorkers: stats.PlaceWorkers,
			CacheHits: stats.CacheHits, CacheNear: stats.CacheNearHits, CacheMisses: stats.CacheMisses,
		}},
		Cache: CacheStats{
			Hits: stats.CacheHits, NearHits: stats.CacheNearHits, Misses: stats.CacheMisses,
			Entries: stats.CacheEntries, Bytes: stats.CacheBytes,
		},
	}
	for _, v := range list.Jobs {
		row := JobRow{ID: v.ID, State: string(v.State), Worker: "local"}
		if v.Progress != nil {
			row.Iteration = v.Progress.Iteration
			row.HPWL = v.Progress.HPWL
			row.Overflow = v.Progress.Overflow
			row.Lambda = v.Progress.Lambda
		}
		if v.Guard != nil {
			row.GuardTrips = v.Guard.Trips
		}
		if v.Result != nil {
			row.Iteration = v.Result.GPIters
			row.HPWL = v.Result.GPWL
			row.Overflow = v.Result.Overflow
		}
		s.Jobs = append(s.Jobs, row)
	}
	return s, nil
}

// fetchTails tops up the trajectory tail of each active job (newest jobs
// first, capped) and attaches the tails to the job rows.
func (c *Collector) fetchTails(ctx context.Context, s *Snapshot) {
	fetched := 0
	for i := len(s.Jobs) - 1; i >= 0; i-- {
		j := &s.Jobs[i]
		if tail, ok := c.tails[j.ID]; ok {
			j.Points = tail
		}
		if fetched >= c.MaxTrajJobs || !trajectoryWorthFetching(j, c.lastIter[j.ID]) {
			continue
		}
		fetched++
		after := c.lastIter[j.ID] - 1 // lastIter is 0 before the first point
		pts, err := c.traj.Fetch(ctx, j.ID, after)
		if err != nil || len(pts) == 0 {
			continue // pending job, pruned job, or transient proxy failure
		}
		tail := append(c.tails[j.ID], pts...)
		if len(tail) > c.TailLen {
			tail = tail[len(tail)-c.TailLen:]
		}
		c.tails[j.ID] = tail
		c.lastIter[j.ID] = tail[len(tail)-1].Iter + 1
		j.Points = tail
	}
}

// trajectoryWorthFetching skips jobs that cannot yield new points: still
// pending (no worker), or terminal with a tail already drained past the
// final iteration.
func trajectoryWorthFetching(j *JobRow, nextIter int) bool {
	switch j.State {
	case "pending", "queued":
		return false
	case "running":
		return true
	default: // terminal: one final drain, then stop once the tail caught up
		return nextIter <= j.Iteration
	}
}

// deriveAlerts compares the poll against the previous one and appends
// operator-facing events: guard trips, job moves (reroute/steal), workers
// going dark. Alerts accumulate newest-last, bounded.
func (c *Collector) deriveAlerts(s *Snapshot) {
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if prev, seen := c.prevGuard[j.ID]; seen && j.GuardTrips > prev {
			c.push(fmt.Sprintf("guard trip on %s (total %d)", j.ID, j.GuardTrips))
		} else if !seen && j.GuardTrips > 0 {
			c.push(fmt.Sprintf("guard trip on %s (total %d)", j.ID, j.GuardTrips))
		}
		c.prevGuard[j.ID] = j.GuardTrips
		if move := j.Reroutes + j.Steals; move > c.prevMove[j.ID] {
			c.push(fmt.Sprintf("%s moved to %s (reroutes %d, steals %d)", j.ID, j.Worker, j.Reroutes, j.Steals))
			c.prevMove[j.ID] = move
		}
	}
	for _, w := range s.Workers {
		if prev, seen := c.prevLive[w.ID]; seen && prev && !w.Live {
			c.push(fmt.Sprintf("worker %s stopped heartbeating (age %s)", w.ID, fmtAge(w.Age)))
		}
		c.prevLive[w.ID] = w.Live
	}
	s.Alerts = append([]string(nil), c.alerts...)
}

func (c *Collector) push(alert string) {
	c.alerts = append(c.alerts, alert)
	if len(c.alerts) > maxAlerts {
		c.alerts = c.alerts[len(c.alerts)-maxAlerts:]
	}
}
