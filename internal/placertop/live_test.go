package placertop

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

func startFleetWorker(t *testing.T, id string) (*service.Manager, *httptest.Server) {
	t.Helper()
	mgr, err := service.OpenManager(service.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	})
	return mgr, srv
}

func placeSpec(seed int64) service.JobSpec {
	return service.JobSpec{
		Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64, Seed: seed}},
		Model:  "WA",
		Placer: service.PlacerSpec{MaxIters: 40, StopOverflow: 1e-9, GridX: 16, GridY: 16, Workers: 1},
		Flow:   service.FlowSpec{GPOnly: true},
	}
}

// TestCollectorAgainstLiveFleet is the -once acceptance path: a real
// coordinator fronting two real placerd workers, one completed job. A
// single Collector.Snapshot must show both workers with queue figures and
// yield a job row with a non-empty trajectory, and the rendered frame must
// carry sparkline glyphs.
func TestCollectorAgainstLiveFleet(t *testing.T) {
	mgrA, srvA := startFleetWorker(t, "wA")
	mgrB, srvB := startFleetWorker(t, "wB")
	c, err := fleet.NewCoordinator(fleet.Config{HeartbeatTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for id, pair := range map[string]struct {
		mgr *service.Manager
		srv *httptest.Server
	}{"wA": {mgrA, srvA}, "wB": {mgrB, srvB}} {
		hb := fleet.Heartbeat{ID: id, URL: pair.srv.URL, Stats: pair.mgr.Stats()}
		if err := c.RecordHeartbeat(hb, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	coord := httptest.NewServer(fleet.NewHandler(c))
	defer coord.Close()

	v, _, err := c.Submit(placeSpec(11), "tui-test")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, err := c.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	col := NewCollector(coord.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := col.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if len(snap.Workers) != 2 || snap.WorkersLive != 2 {
		t.Fatalf("snapshot workers = %d live %d, want 2/2", len(snap.Workers), snap.WorkersLive)
	}
	for _, w := range snap.Workers {
		if w.QueueCap <= 0 {
			t.Errorf("worker %s missing queue capacity: %+v", w.ID, w)
		}
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("snapshot jobs = %d, want 1", len(snap.Jobs))
	}
	job := snap.Jobs[0]
	if job.State != "done" || job.HPWL <= 0 {
		t.Errorf("job row incomplete: %+v", job)
	}
	if len(job.Points) == 0 {
		t.Fatal("job row has no trajectory points (coordinator proxy fetch failed)")
	}
	for i := 1; i < len(job.Points); i++ {
		if job.Points[i].Iter <= job.Points[i-1].Iter {
			t.Fatalf("trajectory tail not ascending at %d", i)
		}
	}
	if ten := snap.Tenants; len(ten) != 1 || ten[0].Name != "tui-test" || ten[0].Admitted != 1 {
		t.Errorf("tenant panel = %+v, want tui-test with 1 admitted", ten)
	}

	out := Render(snap, 100, 28).Plain()
	for _, want := range []string{"wA", "wB", v.ID, "tui-test"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered frame missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("no sparkline in live frame:\n%s", out)
	}

	// A second poll keeps the tail without refetching a drained terminal
	// job, and the snapshot sequence advances.
	snap2, err := col.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Seq != snap.Seq+1 {
		t.Errorf("Seq = %d then %d, want increment", snap.Seq, snap2.Seq)
	}
	if len(snap2.Jobs) != 1 || len(snap2.Jobs[0].Points) != len(job.Points) {
		t.Errorf("second poll lost the trajectory tail")
	}
}

// TestCollectorAgainstSingleWorker: pointed at a bare placerd, the
// collector falls back to /stats + /jobs and renders a one-worker fleet.
func TestCollectorAgainstSingleWorker(t *testing.T) {
	mgr, srv := startFleetWorker(t, "solo")
	v, err := mgr.Submit(placeSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, err := mgr.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	col := NewCollector(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := col.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Workers) != 1 || !snap.Workers[0].Live {
		t.Fatalf("single-worker snapshot = %+v", snap.Workers)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].State != "done" {
		t.Fatalf("jobs = %+v", snap.Jobs)
	}
	if len(snap.Jobs[0].Points) == 0 {
		t.Error("no trajectory tail in single-worker mode")
	}
	out := Render(snap, 80, 24).Plain()
	if !strings.Contains(out, "local") || !strings.Contains(out, v.ID) {
		t.Errorf("frame missing worker/job:\n%s", out)
	}
}
