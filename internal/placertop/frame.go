// Package placertop renders the placement-fleet dashboard: an
// immediate-mode terminal UI over the coordinator's /v1/fleet/overview
// document and the NDJSON trajectory streams. Every frame is rebuilt from a
// Snapshot into a fixed-size cell buffer and rendered either as an ANSI
// escape sequence (full-redraw, alternate screen friendly) or as plain text
// (headless -once mode, golden tests). Rendering is deliberately
// deterministic: the same Snapshot and terminal size always produce the
// same bytes, so frames can be golden-tested and replays are bit-stable.
package placertop

import "strings"

// Style selects one of the dashboard's fixed SGR palettes. The palette is
// small on purpose: frames stay diffable and golden tests stay readable.
type Style uint8

const (
	SDefault Style = iota // terminal default
	SDim                  // de-emphasised chrome (borders, footers)
	STitle                // bold cyan: box titles, the header bar
	SGood                 // green: live workers, done jobs
	SWarn                 // yellow: queued/pending, near-limit gauges
	SBad                  // bold red: dead workers, failures, alerts
	SAccent               // magenta: sparklines and chart ink
)

// sgr maps a Style onto its Select-Graphic-Rendition parameter string. The
// leading 0 resets the previous run so styles never bleed.
var sgr = [...]string{
	SDefault: "0",
	SDim:     "0;2",
	STitle:   "0;1;36",
	SGood:    "0;32",
	SWarn:    "0;33",
	SBad:     "0;1;31",
	SAccent:  "0;35",
}

type cell struct {
	r rune
	s Style
}

// Frame is a fixed-size cell buffer. (0,0) is the top-left corner; writes
// outside the bounds are clipped, so layout code never needs to guard.
type Frame struct {
	W, H  int
	cells []cell
}

// NewFrame returns a w×h frame of spaces in the default style.
func NewFrame(w, h int) *Frame {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	f := &Frame{W: w, H: h, cells: make([]cell, w*h)}
	for i := range f.cells {
		f.cells[i].r = ' '
	}
	return f
}

// Set writes one cell, clipping silently outside the frame.
func (f *Frame) Set(x, y int, r rune, s Style) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.cells[y*f.W+x] = cell{r: r, s: s}
}

// Text writes a string left-to-right from (x,y), clipping at the right
// edge, and returns the x position after the last rune written.
func (f *Frame) Text(x, y int, s string, st Style) int {
	for _, r := range s {
		f.Set(x, y, r, st)
		x++
	}
	return x
}

// TextRight writes a string so its last rune lands on column x2.
func (f *Frame) TextRight(x2, y int, s string, st Style) {
	n := 0
	for range s {
		n++
	}
	f.Text(x2-n+1, y, s, st)
}

// Box draws a light box-drawing border for the rectangle at (x,y) with the
// given outer size, embedding the title into the top border. Interior cells
// are untouched so content can be drawn before or after the border.
func (f *Frame) Box(x, y, w, h int, title string, st Style) {
	if w < 2 || h < 2 {
		return
	}
	f.Set(x, y, '┌', st)
	f.Set(x+w-1, y, '┐', st)
	f.Set(x, y+h-1, '└', st)
	f.Set(x+w-1, y+h-1, '┘', st)
	for i := 1; i < w-1; i++ {
		f.Set(x+i, y, '─', st)
		f.Set(x+i, y+h-1, '─', st)
	}
	for j := 1; j < h-1; j++ {
		f.Set(x, y+j, '│', st)
		f.Set(x+w-1, y+j, '│', st)
	}
	if title != "" {
		f.Text(x+2, y, " "+title+" ", STitle)
	}
}

// ANSI renders the frame as one full-redraw escape sequence: home the
// cursor, repaint every row with minimal SGR transitions, reset at the end.
// Full redraw (rather than diffing) keeps the output a pure function of the
// frame — exactly what the golden tests and the replay mode need.
func (f *Frame) ANSI() string {
	var b strings.Builder
	b.Grow(f.W*f.H + 256)
	b.WriteString("\x1b[H")
	cur := SDefault
	b.WriteString("\x1b[0m")
	for y := 0; y < f.H; y++ {
		if y > 0 {
			b.WriteString("\r\n")
		}
		for x := 0; x < f.W; x++ {
			c := f.cells[y*f.W+x]
			if c.s != cur {
				b.WriteString("\x1b[")
				b.WriteString(sgr[c.s])
				b.WriteString("m")
				cur = c.s
			}
			b.WriteRune(c.r)
		}
	}
	b.WriteString("\x1b[0m")
	return b.String()
}

// Plain renders the frame as styleless text, one line per row with
// trailing spaces trimmed — the -once snapshot output and the form most
// golden tests assert against.
func (f *Frame) Plain() string {
	var b strings.Builder
	for y := 0; y < f.H; y++ {
		end := f.W
		for end > 0 && f.cells[y*f.W+end-1].r == ' ' {
			end--
		}
		for x := 0; x < end; x++ {
			b.WriteRune(f.cells[y*f.W+x].r)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
