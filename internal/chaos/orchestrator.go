package chaos

import (
	"fmt"
	"sort"
	"sync"
)

// StopFunc tears one process instance down (kill -9 semantics: no drain).
type StopFunc func()

// StartFunc boots one process instance and returns its stopper.
type StartFunc func() (StopFunc, error)

// Orchestrator manages named restartable "processes" for chaos tests — in
// practice closures that boot a coordinator or worker (httptest server +
// state) and return how to kill it. Kill is abrupt by design: the stopper
// should drop the process without flushing, so tests exercise the same
// recovery paths a real kill -9 would.
type Orchestrator struct {
	mu    sync.Mutex
	procs map[string]*proc
}

type proc struct {
	start    StartFunc
	stop     StopFunc
	running  bool
	restarts int
}

// NewOrchestrator returns an empty orchestrator.
func NewOrchestrator() *Orchestrator {
	return &Orchestrator{procs: make(map[string]*proc)}
}

// Register names a process and how to start it. Registering does not start
// it; re-registering an existing name replaces its start function (the
// running instance, if any, keeps its old stopper).
func (o *Orchestrator) Register(name string, start StartFunc) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if p, ok := o.procs[name]; ok {
		p.start = start
		return
	}
	o.procs[name] = &proc{start: start}
}

// Start boots a registered, non-running process.
func (o *Orchestrator) Start(name string) error {
	o.mu.Lock()
	p, ok := o.procs[name]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("chaos: unknown process %q", name)
	}
	if p.running {
		o.mu.Unlock()
		return fmt.Errorf("chaos: process %q already running", name)
	}
	start := p.start
	o.mu.Unlock()

	// Boot outside the lock: StartFuncs may take their time (journal replay,
	// recovery) and other processes must stay killable meanwhile.
	stop, err := start()
	if err != nil {
		return fmt.Errorf("chaos: start %q: %w", name, err)
	}
	o.mu.Lock()
	p.stop, p.running = stop, true
	o.mu.Unlock()
	return nil
}

// Kill abruptly stops a running process. It reports whether anything was
// actually killed (false for unknown or already-dead names, so tests can
// kill unconditionally in cleanup).
func (o *Orchestrator) Kill(name string) bool {
	o.mu.Lock()
	p, ok := o.procs[name]
	if !ok || !p.running {
		o.mu.Unlock()
		return false
	}
	stop := p.stop
	p.stop, p.running = nil, false
	o.mu.Unlock()
	if stop != nil {
		stop()
	}
	return true
}

// Restart kills the process if running, then starts it again, bumping the
// restart counter.
func (o *Orchestrator) Restart(name string) error {
	o.Kill(name)
	if err := o.Start(name); err != nil {
		return err
	}
	o.mu.Lock()
	if p, ok := o.procs[name]; ok {
		p.restarts++
	}
	o.mu.Unlock()
	return nil
}

// Running reports whether the named process is up.
func (o *Orchestrator) Running(name string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.procs[name]
	return ok && p.running
}

// Restarts returns how many times the named process has been restarted.
func (o *Orchestrator) Restarts(name string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if p, ok := o.procs[name]; ok {
		return p.restarts
	}
	return 0
}

// KillAll stops every running process, in deterministic name order, for
// test cleanup.
func (o *Orchestrator) KillAll() {
	o.mu.Lock()
	names := make([]string, 0, len(o.procs))
	for name, p := range o.procs {
		if p.running {
			names = append(names, name)
		}
	}
	o.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		o.Kill(name)
	}
}
