// Package chaos turns the repo's deterministic fault scheduler
// (internal/faultinject) into a network-level chaos harness for the fleet:
// a Plan of named Rules drives an http.RoundTripper that injects latency
// spikes, dropped connections, synthetic 5xx responses, and blackholes into
// real HTTP traffic, and an Orchestrator kills and restarts named in-test
// processes (coordinators, workers) on demand.
//
// Determinism carries over from faultinject: every Rule is scheduled by
// exact visit counts (After/Times/Every/Forever), and rules with After < 0
// get a reproducible injection point derived from the plan seed. Two runs
// with the same seed and the same request sequence inject the same faults
// at the same requests, so a chaos failure reproduces from (seed, plan)
// alone.
//
// Production binaries never construct these types on their own; the load
// harness opts in with -chaos, and tests wrap httptest clients.
package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Kind says what a firing rule does to the matched request.
type Kind string

const (
	// KindLatency delays the request by the rule's Latency, then lets it
	// proceed normally.
	KindLatency Kind = "latency"
	// KindDrop fails the request with a transport error (as if the
	// connection reset) without reaching the server.
	KindDrop Kind = "drop"
	// KindHTTP500 answers the request locally with a 500 without reaching
	// the server — the shape of a crashed or mid-restart backend.
	KindHTTP500 Kind = "http500"
	// KindBlackhole holds the request until its context expires — the shape
	// of a network partition with no RST. The caller's client timeout or
	// context deadline bounds the stall.
	KindBlackhole Kind = "blackhole"
)

// Rule schedules one fault kind against a subset of requests. Scheduling
// fields mirror faultinject.Fault: the rule fires on the After+1-th through
// After+Times-th matched requests, Every > 0 makes it periodic, Forever
// fires on every match past After, and After < 0 asks the plan seed to pick
// a reproducible injection point.
type Rule struct {
	// Name identifies the rule in counters and logs; it doubles as the
	// faultinject site name and must be unique within a plan.
	Name string
	// Kind selects the injected effect.
	Kind Kind
	// Latency is the injected delay for KindLatency.
	Latency time.Duration
	// Method restricts the rule to one HTTP method ("" matches all).
	Method string
	// PathPrefix restricts the rule to request paths with this prefix
	// ("" matches all).
	PathPrefix string

	After   int  // matched requests to skip before firing (< 0: seeded)
	Times   int  // consecutive matches to fire on (<= 0 means 1)
	Every   int  // fire on every Every-th match past After (periodic)
	Forever bool // fire on every match past After
}

// matches reports whether the rule applies to the request at all
// (independent of its visit schedule).
func (r Rule) matches(req *http.Request) bool {
	if r.Method != "" && r.Method != req.Method {
		return false
	}
	if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
		return false
	}
	return true
}

// Stats counts injected faults by kind, plus total requests seen.
type Stats struct {
	Requests   int64 `json:"requests"`
	Latency    int64 `json:"latency"`
	Drops      int64 `json:"drops"`
	HTTP500s   int64 `json:"http_500s"`
	Blackholes int64 `json:"blackholes"`
}

// Injected is the total number of injected faults of any kind.
func (s Stats) Injected() int64 { return s.Latency + s.Drops + s.HTTP500s + s.Blackholes }

// Transport is an http.RoundTripper that consults a deterministic fault
// plan before forwarding each request to its base transport. It is safe for
// concurrent use; per-rule visit counting is serialized inside the plan, so
// under concurrency the *set* of injected requests is deterministic even
// though which goroutine draws each fault is not.
type Transport struct {
	base     http.RoundTripper
	plan     *faultinject.Plan
	rules    []Rule
	requests atomic.Int64
	latency  atomic.Int64
	drops    atomic.Int64
	http500s atomic.Int64
	blackhls atomic.Int64
}

// NewTransport builds a chaos transport over base (nil: http.DefaultTransport)
// from a seeded rule schedule. Rules with After < 0 get a reproducible
// injection point in [0, spread) drawn from seed; spread < 1 is treated as 1.
func NewTransport(base http.RoundTripper, seed int64, spread int, rules ...Rule) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	faults := make([]faultinject.Fault, len(rules))
	for i, r := range rules {
		faults[i] = faultinject.Fault{
			Site:    faultinject.Site(r.Name),
			Mode:    faultinject.ModeError,
			After:   r.After,
			Times:   r.Times,
			Every:   r.Every,
			Forever: r.Forever,
		}
	}
	return &Transport{
		base:  base,
		plan:  faultinject.FromSeed(seed, spread, faults...),
		rules: rules,
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:   t.requests.Load(),
		Latency:    t.latency.Load(),
		Drops:      t.drops.Load(),
		HTTP500s:   t.http500s.Load(),
		Blackholes: t.blackhls.Load(),
	}
}

// RoundTrip applies the first firing non-latency rule (latency rules stack:
// they delay and then let later rules and the real request proceed), then
// forwards to the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	for _, r := range t.rules {
		if !r.matches(req) {
			continue
		}
		if _, fired := t.plan.Visit(faultinject.Site(r.Name)); !fired {
			continue
		}
		switch r.Kind {
		case KindLatency:
			t.latency.Add(1)
			if err := sleepCtx(req.Context(), r.Latency); err != nil {
				return nil, &injectedError{rule: r.Name, kind: r.Kind, err: err}
			}
		case KindDrop:
			t.drops.Add(1)
			return nil, &injectedError{rule: r.Name, kind: r.Kind, err: faultinject.ErrInjected}
		case KindHTTP500:
			t.http500s.Add(1)
			return syntheticResponse(req, http.StatusInternalServerError,
				fmt.Sprintf(`{"error":"chaos: injected 500 (rule %s)"}`, r.Name)), nil
		case KindBlackhole:
			t.blackhls.Add(1)
			<-req.Context().Done()
			return nil, &injectedError{rule: r.Name, kind: r.Kind, err: req.Context().Err()}
		}
	}
	return t.base.RoundTrip(req)
}

// injectedError is the transport error fabricated for drops and blackholes.
// It wraps faultinject.ErrInjected (drops) or the context error (blackholes)
// so callers can classify it; fleet.Retryable treats both drops (unknown
// transport error) and 500s as retryable, and a blackhole surfaces as the
// caller's own deadline.
type injectedError struct {
	rule string
	kind Kind
	err  error
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s (rule %s): %v", e.kind, e.rule, e.err)
}

func (e *injectedError) Unwrap() error { return e.err }

// syntheticResponse fabricates a local response without touching the network.
func syntheticResponse(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode: status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// DefaultRules is the canonical placerload -chaos schedule: periodic latency
// spikes, dropped connections, and synthetic 500s across all coordinator
// traffic, with seeded injection points so two runs with the same seed hurt
// the same requests. Blackholes are left to targeted tests — a default-on
// blackhole turns every soak into a client-timeout stall.
func DefaultRules(latency time.Duration) []Rule {
	if latency <= 0 {
		latency = 25 * time.Millisecond
	}
	return []Rule{
		{Name: "latency-spike", Kind: KindLatency, Latency: latency, After: -1, Every: 7},
		{Name: "conn-drop", Kind: KindDrop, After: -1, Every: 11},
		{Name: "coord-500", Kind: KindHTTP500, After: -1, Every: 13},
	}
}
