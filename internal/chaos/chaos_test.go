package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func newEchoServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var arrivals atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv, &arrivals
}

// TestTransportDrop: a drop rule fails the request with an error wrapping
// faultinject.ErrInjected, and the request never reaches the server.
func TestTransportDrop(t *testing.T) {
	srv, arrivals := newEchoServer(t)
	tr := NewTransport(nil, 1, 1, Rule{Name: "d", Kind: KindDrop, After: 1})
	c := &http.Client{Transport: tr}

	if _, err := c.Get(srv.URL); err != nil {
		t.Fatalf("request 1 should pass: %v", err)
	}
	_, err := c.Get(srv.URL)
	if err == nil {
		t.Fatal("request 2 should be dropped")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("drop error should wrap ErrInjected, got %v", err)
	}
	if got := arrivals.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (drop must not reach it)", got)
	}
	if st := tr.Stats(); st.Drops != 1 || st.Requests != 2 || st.Injected() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransportHTTP500: the synthetic 500 is answered locally with a JSON
// body and never reaches the server.
func TestTransportHTTP500(t *testing.T) {
	srv, arrivals := newEchoServer(t)
	tr := NewTransport(nil, 1, 1, Rule{Name: "e", Kind: KindHTTP500, Forever: true})
	c := &http.Client{Transport: tr}

	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if arrivals.Load() != 0 {
		t.Fatal("synthetic 500 must not reach the server")
	}
}

// TestTransportLatencyStacks: a latency rule delays but still forwards, so
// the request succeeds and the server sees it.
func TestTransportLatencyStacks(t *testing.T) {
	srv, arrivals := newEchoServer(t)
	tr := NewTransport(nil, 1, 1, Rule{Name: "l", Kind: KindLatency, Latency: 10 * time.Millisecond, Forever: true})
	c := &http.Client{Transport: tr}

	start := time.Now()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency rule injected only %s", elapsed)
	}
	if arrivals.Load() != 1 {
		t.Fatal("latency rule must forward the request")
	}
	if st := tr.Stats(); st.Latency != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTransportBlackhole: the request stalls until its context deadline and
// surfaces the deadline error.
func TestTransportBlackhole(t *testing.T) {
	srv, arrivals := newEchoServer(t)
	tr := NewTransport(nil, 1, 1, Rule{Name: "b", Kind: KindBlackhole, Forever: true})
	c := &http.Client{Transport: tr}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("blackholed request should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole should surface the deadline, got %v", err)
	}
	if arrivals.Load() != 0 {
		t.Fatal("blackhole must not reach the server")
	}
}

// TestTransportMatch: Method and PathPrefix scope a rule to a traffic
// subset; unmatched requests pass untouched and don't advance the schedule.
func TestTransportMatch(t *testing.T) {
	srv, _ := newEchoServer(t)
	tr := NewTransport(nil, 1, 1,
		Rule{Name: "m", Kind: KindDrop, Method: http.MethodPost, PathPrefix: "/v1/jobs", Forever: true})
	c := &http.Client{Transport: tr}

	if resp, err := c.Get(srv.URL + "/v1/jobs"); err != nil {
		t.Fatalf("GET must pass the POST-only rule: %v", err)
	} else {
		resp.Body.Close()
	}
	if resp, err := c.Post(srv.URL+"/v1/workers/heartbeat", "", nil); err != nil {
		t.Fatalf("other path must pass: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := c.Post(srv.URL+"/v1/jobs", "", nil); err == nil {
		t.Fatal("matched POST /v1/jobs should drop")
	}
}

// TestTransportDeterminism: two transports with the same seed and rule set
// inject faults at exactly the same request indices.
func TestTransportDeterminism(t *testing.T) {
	srv, _ := newEchoServer(t)
	trace := func(seed int64) []bool {
		tr := NewTransport(nil, seed, 10, DefaultRules(time.Millisecond)...)
		c := &http.Client{Transport: tr}
		var failed []bool
		for i := 0; i < 60; i++ {
			resp, err := c.Get(srv.URL)
			bad := err != nil
			if err == nil {
				bad = resp.StatusCode != http.StatusOK
				resp.Body.Close()
			}
			failed = append(failed, bad)
		}
		return failed
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
	any := false
	for _, bad := range a {
		any = any || bad
	}
	if !any {
		t.Fatal("default rules injected nothing across 60 requests")
	}
}

// TestOrchestratorLifecycle: start/kill/restart bookkeeping, abrupt stops,
// and KillAll cleanup.
func TestOrchestratorLifecycle(t *testing.T) {
	o := NewOrchestrator()
	var alive atomic.Int64
	o.Register("coord", func() (StopFunc, error) {
		alive.Add(1)
		return func() { alive.Add(-1) }, nil
	})

	if err := o.Start("coord"); err != nil {
		t.Fatal(err)
	}
	if !o.Running("coord") || alive.Load() != 1 {
		t.Fatal("coord should be running")
	}
	if err := o.Start("coord"); err == nil {
		t.Fatal("double start should fail")
	}
	if !o.Kill("coord") || o.Running("coord") || alive.Load() != 0 {
		t.Fatal("kill should stop coord")
	}
	if o.Kill("coord") {
		t.Fatal("second kill should be a no-op")
	}
	if err := o.Restart("coord"); err != nil {
		t.Fatal(err)
	}
	if o.Restarts("coord") != 1 || alive.Load() != 1 {
		t.Fatalf("restarts = %d, alive = %d", o.Restarts("coord"), alive.Load())
	}
	if err := o.Restart("coord"); err != nil {
		t.Fatal(err)
	}
	if o.Restarts("coord") != 2 {
		t.Fatalf("restarts = %d, want 2", o.Restarts("coord"))
	}
	if err := o.Start("ghost"); err == nil {
		t.Fatal("unknown process should fail to start")
	}
	o.KillAll()
	if alive.Load() != 0 || o.Running("coord") {
		t.Fatal("KillAll should stop everything")
	}
}
