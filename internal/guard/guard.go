// Package guard implements the numerical-health sentinel of the guarded
// optimization loop: per-iteration invariant checks over the quantities the
// placer already computes (positions, objective, HPWL, overflow, BB step),
// plus the policy knobs and typed failure the placer's rollback machinery
// uses when an invariant trips.
//
// The package itself is engine-agnostic — it sees only Sample values and
// answers "is this iteration healthy?" — while internal/placer owns the
// snapshot ring and the actual rollback. That split keeps guard free of
// import cycles and makes the detector unit-testable with synthetic
// trajectories.
package guard

import (
	"fmt"
	"math"
	"strings"
)

// Kind classifies a detected invariant violation.
type Kind string

const (
	// KindNonFinitePositions — a coordinate went NaN or ±Inf.
	KindNonFinitePositions Kind = "nonfinite-positions"
	// KindNonFiniteObjective — the optimizer objective went NaN or ±Inf.
	KindNonFiniteObjective Kind = "nonfinite-objective"
	// KindHPWLExplosion — HPWL exceeded Growth× the trailing-window minimum.
	KindHPWLExplosion Kind = "hpwl-explosion"
	// KindOverflowStall — overflow has not improved by StallDelta over
	// StallWindow iterations while still above StallFloor.
	KindOverflowStall Kind = "overflow-stall"
	// KindStepCeiling — the BB/backtracking step exceeded MaxStep.
	KindStepCeiling Kind = "step-ceiling"
)

// Violation records one tripped invariant with enough context to debug the
// divergence after the fact.
type Violation struct {
	Kind  Kind
	Iter  int
	Value float64 // the offending quantity (HPWL, step, overflow, ...)
	Limit float64 // the threshold it crossed (0 when not applicable)
	Cell  int     // first offending cell index for position checks, else -1
}

func (v Violation) String() string {
	s := fmt.Sprintf("iter %d: %s (value %g", v.Iter, v.Kind, v.Value)
	if v.Limit != 0 {
		s += fmt.Sprintf(", limit %g", v.Limit)
	}
	if v.Cell >= 0 {
		s += fmt.Sprintf(", cell %d", v.Cell)
	}
	return s + ")"
}

// EventKind classifies guard lifecycle events.
type EventKind string

const (
	// EventTrip — an invariant violation was detected.
	EventTrip EventKind = "trip"
	// EventRollback — state was restored from a snapshot and the step
	// shrunk; the loop resumes from RestoredIter.
	EventRollback EventKind = "rollback"
	// EventRecover — the shrunken step was released after a clean recovery
	// window.
	EventRecover EventKind = "recover"
	// EventFail — the retry budget is exhausted; the run ends with a
	// DivergenceError.
	EventFail EventKind = "fail"
)

// Event is one guard lifecycle notification, delivered synchronously from
// the placement goroutine via Config.OnEvent.
type Event struct {
	Kind         EventKind
	Iter         int        // iteration the event happened at
	RestoredIter int        // rollback/fail: iteration rolled back to
	Retry        int        // rollback/fail: 1-based trip count
	Shrink       float64    // rollback: step shrink factor applied
	Violation    *Violation // trip/rollback/fail: the triggering violation
}

// Config tunes the sentinel. The zero value of every field selects a
// sensible default (see withDefaults); enabling the guard is done by
// setting placer.Config.Guard to a non-nil *Config, so &guard.Config{} is
// a complete, working configuration.
type Config struct {
	// Window is the trailing-window length (iterations) for the HPWL
	// growth check. Default 8.
	Window int
	// Growth is the allowed HPWL growth factor over the trailing-window
	// minimum before the guard trips. Default 10.
	Growth float64
	// StallWindow enables the overflow-stagnation check when > 0: the
	// guard trips if overflow improves by less than StallDelta over
	// StallWindow iterations while still above StallFloor. Default 0
	// (disabled) — stagnation is a soft failure and the check is opt-in.
	StallWindow int
	// StallDelta is the minimum overflow improvement expected per
	// StallWindow. Default 1e-4.
	StallDelta float64
	// StallFloor suppresses the stall check once overflow is below it
	// (the run is close enough to converged). Default 0.2.
	StallFloor float64
	// MaxStep trips the guard when the optimizer step size exceeds it.
	// Default 0 (disabled): the BB step is already clamped by the
	// optimizer's own AlphaMax, so this is an extra belt for tuned runs.
	MaxStep float64
	// MaxRetries bounds how many rollbacks a run may perform before the
	// guard declares divergence. Default 3.
	MaxRetries int
	// Shrink is the per-retry step-shrink base: retry r applies factor
	// Shrink^(r-1), so the first rollback replays at full step (a pure
	// transient is absorbed with zero distortion) and later ones back off
	// exponentially. Must be in (0, 1]. Default 0.5.
	Shrink float64
	// SnapshotEvery is the in-memory snapshot cadence in iterations.
	// Default 10.
	SnapshotEvery int
	// RingSize bounds the in-memory snapshot ring. Default 4.
	RingSize int
	// RecoveryWindow is how many clean iterations after a rollback before
	// the shrunken step is released back to its base value. Default 2 ×
	// SnapshotEvery.
	RecoveryWindow int
	// OnEvent, when non-nil, observes every trip/rollback/recover/fail
	// synchronously from the placement goroutine. Keep it fast.
	OnEvent func(Event)
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Growth <= 0 {
		c.Growth = 10
	}
	if c.StallDelta <= 0 {
		c.StallDelta = 1e-4
	}
	if c.StallFloor <= 0 {
		c.StallFloor = 0.2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Shrink <= 0 || c.Shrink > 1 {
		c.Shrink = 0.5
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 10
	}
	if c.RingSize <= 0 {
		c.RingSize = 4
	}
	if c.RecoveryWindow <= 0 {
		c.RecoveryWindow = 2 * c.SnapshotEvery
	}
	return c
}

// Validate rejects configurations that are actively contradictory (as
// opposed to merely zero, which means "use the default").
func (c *Config) Validate() error {
	if c.Window < 0 {
		return fmt.Errorf("guard: Window = %d, must be >= 0", c.Window)
	}
	if c.Growth < 0 {
		return fmt.Errorf("guard: Growth = %g, must be >= 0", c.Growth)
	}
	if c.StallWindow < 0 {
		return fmt.Errorf("guard: StallWindow = %d, must be >= 0", c.StallWindow)
	}
	if c.MaxStep < 0 || math.IsNaN(c.MaxStep) {
		return fmt.Errorf("guard: MaxStep = %g, must be >= 0", c.MaxStep)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("guard: MaxRetries = %d, must be >= 0", c.MaxRetries)
	}
	if c.Shrink < 0 || c.Shrink > 1 || math.IsNaN(c.Shrink) {
		return fmt.Errorf("guard: Shrink = %g, must be in (0, 1] (0 = default)", c.Shrink)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("guard: SnapshotEvery = %d, must be >= 0", c.SnapshotEvery)
	}
	if c.RingSize < 0 {
		return fmt.Errorf("guard: RingSize = %d, must be >= 0", c.RingSize)
	}
	if c.RecoveryWindow < 0 {
		return fmt.Errorf("guard: RecoveryWindow = %d, must be >= 0", c.RecoveryWindow)
	}
	return nil
}

// Sample is one iteration's health snapshot, built by the placer from
// quantities it already computes.
type Sample struct {
	Iter      int
	Objective float64   // optimizer objective returned by Step
	HPWL      float64   // exact HPWL at the new positions
	Overflow  float64   // density overflow at the last evaluation
	Step      float64   // optimizer step size (0 when unknown)
	Pos       []float64 // packed positions; checked for finiteness, not retained
}

// Monitor holds the trailing-window state of the invariant checks. Not
// safe for concurrent use; the placer calls it from the loop goroutine.
type Monitor struct {
	cfg Config

	hpwl []histPoint // trailing window for the growth check
	over []histPoint // trailing window for the stall check
}

type histPoint struct {
	iter int
	val  float64
}

// NewMonitor builds a monitor with cfg's defaults applied. The returned
// monitor's Config reports the effective (defaulted) values.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration (defaults applied).
func (m *Monitor) Config() Config { return m.cfg }

// Check evaluates all invariants against s and returns the first violation
// found, or nil. A healthy sample is appended to the trailing windows; a
// violating one is not (the caller is about to roll back past it anyway).
//
// Check order matters: finiteness first, so a NaN HPWL or overflow can
// never corrupt the window state used by the relative checks.
func (m *Monitor) Check(s Sample) *Violation {
	if c := firstNonFinite(s.Pos); c >= 0 {
		return &Violation{Kind: KindNonFinitePositions, Iter: s.Iter, Value: s.Pos[c], Cell: c}
	}
	if !finite(s.Objective) {
		return &Violation{Kind: KindNonFiniteObjective, Iter: s.Iter, Value: s.Objective, Cell: -1}
	}
	if !finite(s.HPWL) {
		return &Violation{Kind: KindHPWLExplosion, Iter: s.Iter, Value: s.HPWL, Cell: -1}
	}
	if len(m.hpwl) > 0 {
		min := m.hpwl[0].val
		for _, h := range m.hpwl[1:] {
			if h.val < min {
				min = h.val
			}
		}
		if limit := min * m.cfg.Growth; min > 0 && s.HPWL > limit {
			return &Violation{Kind: KindHPWLExplosion, Iter: s.Iter, Value: s.HPWL, Limit: limit, Cell: -1}
		}
	}
	if m.cfg.MaxStep > 0 && s.Step > m.cfg.MaxStep {
		return &Violation{Kind: KindStepCeiling, Iter: s.Iter, Value: s.Step, Limit: m.cfg.MaxStep, Cell: -1}
	}
	if m.cfg.StallWindow > 0 && s.Overflow > m.cfg.StallFloor && len(m.over) >= m.cfg.StallWindow {
		oldest := m.over[len(m.over)-m.cfg.StallWindow]
		if oldest.val-s.Overflow < m.cfg.StallDelta {
			return &Violation{Kind: KindOverflowStall, Iter: s.Iter, Value: s.Overflow, Limit: oldest.val, Cell: -1}
		}
	}

	m.hpwl = pushWindow(m.hpwl, histPoint{s.Iter, s.HPWL}, m.cfg.Window)
	if m.cfg.StallWindow > 0 {
		m.over = pushWindow(m.over, histPoint{s.Iter, s.Overflow}, m.cfg.StallWindow)
	}
	return nil
}

// Rewind drops window entries at or past iter, so a rollback to iter
// replays against the same history the original pass saw.
func (m *Monitor) Rewind(iter int) {
	m.hpwl = trimAfter(m.hpwl, iter)
	m.over = trimAfter(m.over, iter)
}

func pushWindow(w []histPoint, p histPoint, max int) []histPoint {
	w = append(w, p)
	if len(w) > max {
		copy(w, w[len(w)-max:])
		w = w[:max]
	}
	return w
}

func trimAfter(w []histPoint, iter int) []histPoint {
	n := len(w)
	for n > 0 && w[n-1].iter >= iter {
		n--
	}
	return w[:n]
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// firstNonFinite returns the index of the first non-finite element, or -1.
func firstNonFinite(xs []float64) int {
	for i, v := range xs {
		if !finite(v) {
			return i
		}
	}
	return -1
}

// DivergenceError is the typed failure returned when the retry budget is
// exhausted: the run could not be stabilized, but the caller still gets
// finite positions (the placer restores the last good snapshot before
// returning) plus the full violation history for diagnosis.
type DivergenceError struct {
	Violations []Violation // every trip, in order
	Retries    int         // rollbacks attempted before giving up
	LastGood   int         // iteration of the snapshot the run was left at
}

func (e *DivergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guard: divergence after %d rollback(s), state restored to iteration %d", e.Retries, e.LastGood)
	if len(e.Violations) > 0 {
		b.WriteString("; violations: ")
		for i, v := range e.Violations {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(v.String())
		}
	}
	return b.String()
}
