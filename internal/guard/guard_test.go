package guard

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func healthy(iter int, hpwl float64) Sample {
	return Sample{Iter: iter, Objective: hpwl, HPWL: hpwl, Overflow: 0.5, Step: 1, Pos: []float64{1, 2}}
}

func TestCheckPassesHealthyTrajectory(t *testing.T) {
	m := NewMonitor(Config{})
	for k := 0; k < 100; k++ {
		if v := m.Check(healthy(k, 1000-float64(k))); v != nil {
			t.Fatalf("healthy sample tripped at iter %d: %v", k, v)
		}
	}
}

func TestCheckNonFinitePositions(t *testing.T) {
	m := NewMonitor(Config{})
	s := healthy(3, 100)
	s.Pos = []float64{1, math.NaN(), 2}
	v := m.Check(s)
	if v == nil || v.Kind != KindNonFinitePositions {
		t.Fatalf("violation = %v, want %s", v, KindNonFinitePositions)
	}
	if v.Cell != 1 {
		t.Errorf("Cell = %d, want 1", v.Cell)
	}
	s.Pos = []float64{math.Inf(-1)}
	if v := m.Check(s); v == nil || v.Kind != KindNonFinitePositions {
		t.Fatalf("Inf position not caught: %v", v)
	}
}

func TestCheckNonFiniteObjective(t *testing.T) {
	m := NewMonitor(Config{})
	s := healthy(0, 100)
	s.Objective = math.NaN()
	if v := m.Check(s); v == nil || v.Kind != KindNonFiniteObjective {
		t.Fatalf("violation = %v, want %s", v, KindNonFiniteObjective)
	}
}

func TestCheckHPWLExplosion(t *testing.T) {
	m := NewMonitor(Config{Window: 4, Growth: 2})
	for k := 0; k < 4; k++ {
		if v := m.Check(healthy(k, 100)); v != nil {
			t.Fatalf("warmup tripped: %v", v)
		}
	}
	// 199 < 2×100: fine. 201 > 2×100: trips.
	if v := m.Check(healthy(4, 199)); v != nil {
		t.Fatalf("sub-threshold growth tripped: %v", v)
	}
	v := m.Check(healthy(5, 201))
	if v == nil || v.Kind != KindHPWLExplosion {
		t.Fatalf("violation = %v, want %s", v, KindHPWLExplosion)
	}
	if v.Limit != 200 {
		t.Errorf("Limit = %g, want 200", v.Limit)
	}
	// NaN HPWL also maps to explosion, before any window math.
	s := healthy(6, 100)
	s.HPWL = math.NaN()
	if v := m.Check(s); v == nil || v.Kind != KindHPWLExplosion {
		t.Fatalf("NaN HPWL: violation = %v, want %s", v, KindHPWLExplosion)
	}
}

func TestViolatingSampleNotAddedToWindow(t *testing.T) {
	m := NewMonitor(Config{Window: 4, Growth: 2})
	m.Check(healthy(0, 100))
	if v := m.Check(healthy(1, 500)); v == nil {
		t.Fatal("explosion not caught")
	}
	// Window min must still be 100: 150 stays legal, 201 still trips.
	if v := m.Check(healthy(2, 150)); v != nil {
		t.Fatalf("150 tripped after rejected 500: %v", v)
	}
	if v := m.Check(healthy(3, 201)); v == nil {
		t.Fatal("window was polluted by the rejected sample")
	}
}

func TestCheckStepCeiling(t *testing.T) {
	m := NewMonitor(Config{MaxStep: 10})
	s := healthy(0, 100)
	s.Step = 11
	if v := m.Check(s); v == nil || v.Kind != KindStepCeiling {
		t.Fatalf("violation = %v, want %s", v, KindStepCeiling)
	}
	// Disabled by default.
	m2 := NewMonitor(Config{})
	s.Step = 1e30
	if v := m2.Check(s); v != nil {
		t.Fatalf("step check fired while disabled: %v", v)
	}
}

func TestCheckOverflowStall(t *testing.T) {
	m := NewMonitor(Config{StallWindow: 5, StallDelta: 0.01, StallFloor: 0.2})
	mk := func(iter int, over float64) Sample {
		s := healthy(iter, 100)
		s.Overflow = over
		return s
	}
	// Improving run: no trip.
	for k := 0; k < 10; k++ {
		if v := m.Check(mk(k, 1.0-0.02*float64(k))); v != nil {
			t.Fatalf("improving overflow tripped at %d: %v", k, v)
		}
	}
	// Flat run above the floor: trips once the window fills.
	m = NewMonitor(Config{StallWindow: 5, StallDelta: 0.01, StallFloor: 0.2})
	var v *Violation
	for k := 0; k < 10 && v == nil; k++ {
		v = m.Check(mk(k, 0.8))
	}
	if v == nil || v.Kind != KindOverflowStall {
		t.Fatalf("flat overflow did not trip: %v", v)
	}
	// Flat run below the floor: converged, no trip.
	m = NewMonitor(Config{StallWindow: 5, StallDelta: 0.01, StallFloor: 0.2})
	for k := 0; k < 10; k++ {
		if v := m.Check(mk(k, 0.1)); v != nil {
			t.Fatalf("below-floor stall tripped: %v", v)
		}
	}
}

func TestRewindReplaysWindow(t *testing.T) {
	m := NewMonitor(Config{Window: 4, Growth: 2})
	for k := 0; k < 4; k++ {
		m.Check(healthy(k, 100))
	}
	m.Check(healthy(4, 150))
	m.Rewind(4)
	// After rewinding iteration 4, the window min is 100 again and the
	// same sample must behave identically to the first pass.
	if v := m.Check(healthy(4, 150)); v != nil {
		t.Fatalf("replay after rewind tripped: %v", v)
	}
	if v := m.Check(healthy(5, 201)); v == nil {
		t.Fatal("rewind lost the window history")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 8 || c.Growth != 10 || c.MaxRetries != 3 || c.Shrink != 0.5 ||
		c.SnapshotEvery != 10 || c.RingSize != 4 || c.RecoveryWindow != 20 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.StallWindow != 0 || c.MaxStep != 0 {
		t.Fatalf("opt-in checks enabled by default: %+v", c)
	}
	kept := Config{Window: 3, Shrink: 0.25, RecoveryWindow: 7}.withDefaults()
	if kept.Window != 3 || kept.Shrink != 0.25 || kept.RecoveryWindow != 7 {
		t.Fatalf("explicit values overwritten: %+v", kept)
	}
}

func TestValidate(t *testing.T) {
	good := []Config{{}, {Window: 5, Growth: 3, MaxRetries: 1, Shrink: 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Window: -1}, {Growth: -2}, {StallWindow: -1}, {MaxStep: -1},
		{MaxRetries: -1}, {Shrink: -0.5}, {Shrink: 1.5}, {Shrink: math.NaN()},
		{SnapshotEvery: -1}, {RingSize: -1}, {RecoveryWindow: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestDivergenceError(t *testing.T) {
	err := &DivergenceError{
		Violations: []Violation{
			{Kind: KindNonFinitePositions, Iter: 12, Value: math.NaN(), Cell: 7},
			{Kind: KindHPWLExplosion, Iter: 12, Value: 1e12, Limit: 1e9, Cell: -1},
		},
		Retries:  3,
		LastGood: 10,
	}
	msg := err.Error()
	for _, want := range []string{"3 rollback(s)", "iteration 10", string(KindNonFinitePositions), string(KindHPWLExplosion), "cell 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
	var de *DivergenceError
	if !errors.As(error(err), &de) {
		t.Fatal("errors.As failed on DivergenceError")
	}
}
