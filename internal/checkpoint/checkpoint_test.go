package checkpoint

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/optimizer"
)

// sampleSnapshot builds a representative snapshot with every field
// populated, including non-finite and negative-zero floats that a decimal
// codec would mangle.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Fingerprint: Fingerprint{
			Design: "newblue1", NumCells: 12, NumNets: 9, NumPins: 31,
			NumMovable: 3, NumFillers: 2, GridX: 32, GridY: 16, Workers: 4,
			Model: "ME", Optimizer: "nesterov", Seed: 7,
			TargetDensity: 0.85,
			RegionXL:      -1.5, RegionYL: 0, RegionXH: 100.25, RegionYH: 50,
		},
		Iter:        42,
		Evaluations: 97,
		Param:       3.5,
		Lambda:      1e-4,
		Overflow:    0.31,
		LastEnergy:  123.75,
		LambdaSched: LambdaState{Lambda: 1e-4, Alpha: 1e-6, D0: 42.5, Primed: true},
		Pos:         []float64{1, 2, 3, 4, 5, math.Copysign(0, -1), 7, 8, 9, 10},
		Opt: optimizer.State{
			Kind:    "nesterov",
			Scalars: []float64{1.5, 0.001, math.Inf(1), 0.002},
			Ints:    []int64{2, 97},
			Bools:   []bool{true},
			Vectors: [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}},
		},
		Trajectory: []TrajectoryPoint{
			{Iter: 0, Overflow: 0.9, HPWL: 1000, Objective: 1200, Param: 4, Lambda: 1e-5},
			{Iter: 25, Overflow: 0.5, HPWL: 900, Objective: 1100, Param: 2, Lambda: 2e-5},
		},
		SetupSeconds: 0.125,
		LoopSeconds:  2.5,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", s, got)
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	good := Encode(sampleSnapshot())

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated at every length", func(t *testing.T) {
		for n := 0; n < len(good)-1; n += 7 {
			_, err := Decode(good[:n])
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode(good[:%d]) err = %v, want a typed decode error", n, err)
			}
		}
	})
	t.Run("flipped CRC byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x01
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[headerLen+3] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad[len(Magic):], Version+1)
		if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("inconsistent pos length", func(t *testing.T) {
		s := sampleSnapshot()
		s.Pos = s.Pos[:4] // fingerprint implies 10 entries
		if _, err := Decode(Encode(s)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestFingerprintMatch(t *testing.T) {
	base := sampleSnapshot().Fingerprint
	if err := base.Match(base); err != nil {
		t.Fatalf("identical fingerprints rejected: %v", err)
	}
	muts := map[string]func(*Fingerprint){
		"design":    func(f *Fingerprint) { f.Design = "other" },
		"cells":     func(f *Fingerprint) { f.NumCells++ },
		"workers":   func(f *Fingerprint) { f.Workers = 8 },
		"model":     func(f *Fingerprint) { f.Model = "WA" },
		"optimizer": func(f *Fingerprint) { f.Optimizer = "adam" },
		"grid":      func(f *Fingerprint) { f.GridX *= 2 },
		"seed":      func(f *Fingerprint) { f.Seed = 99 },
		"region":    func(f *Fingerprint) { f.RegionXH += 1 },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			other := base
			mut(&other)
			if err := base.Match(other); !errors.Is(err, ErrMismatch) {
				t.Errorf("err = %v, want ErrMismatch", err)
			}
		})
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(42))
	s := sampleSnapshot()
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("file round trip mismatch")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after write, want 1", len(entries))
	}
}

func TestWriteRotatingKeepsLastK(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	for iter := 10; iter <= 60; iter += 10 {
		s.Iter = iter
		if _, err := WriteRotating(dir, s, 3); err != nil {
			t.Fatalf("WriteRotating(iter=%d): %v", iter, err)
		}
	}
	names, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{FileName(40), FileName(50), FileName(60)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
}

func TestLoadLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := sampleSnapshot()
	s.Iter = 10
	if _, err := WriteRotating(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	s.Iter = 20
	if _, err := WriteRotating(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file; LoadLatest must fall back to iter 10.
	if err := os.WriteFile(filepath.Join(dir, FileName(20)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got.Iter != 10 || filepath.Base(path) != FileName(10) {
		t.Fatalf("LoadLatest picked iter %d (%s), want 10", got.Iter, path)
	}
}

func TestLoadLatestErrNoSnapshot(t *testing.T) {
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("missing dir: err = %v, want ErrNoSnapshot", err)
	}
	if _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
}
