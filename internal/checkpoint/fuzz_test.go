package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, and any
// failure must be one of the package's typed errors. Inputs that decode
// cleanly must re-encode to bytes that decode to the same snapshot.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	good := Encode(sampleSnapshot())
	f.Add(good)
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	empty := Encode(&Snapshot{})
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			for _, want := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("Decode returned an untyped error: %v", err)
		}
		enc1 := Encode(s)
		re, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		// Compare at the byte level: bit patterns (incl. NaN payloads) must
		// survive, which reflect.DeepEqual cannot express for floats.
		if !bytes.Equal(enc1, Encode(re)) {
			t.Fatal("decode -> encode -> decode is not a fixed point")
		}
	})
}
