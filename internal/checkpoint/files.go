package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// snapshot file names sort by iteration: ckpt-000000123.ckpt.
const (
	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
)

// writeAttempts bounds the transient-error retry loop in WriteFile: a
// flaky filesystem (NFS hiccup, momentary ENOSPC) gets two more chances
// before the error propagates.
const writeAttempts = 3

// WriteHook, when non-nil, is consulted once per write attempt before any
// bytes land on disk; a non-nil return fails that attempt with the error.
// It is a build-tag-free fault-injection seam for the write-retry tests:
// production code pays one nil check per attempt and never sets it.
var WriteHook func(path string) error

// OnWriteRetry, when non-nil, observes every failed write attempt that is
// about to be retried (attempt is 1-based; the final failure is not
// reported here — it surfaces as WriteFile's error). Both CLIs install a
// logger/counter here at startup.
var OnWriteRetry func(path string, attempt int, err error)

// sleepFn is the retry backoff sleep, stubbed out in tests.
var sleepFn = time.Sleep

// retryBackoff returns the jittered delay before retrying attempt
// (1-based): 2ms·2^(attempt-1) plus up to 1ms of jitter, so concurrent
// writers against the same flaky volume don't retry in lockstep.
func retryBackoff(attempt int) time.Duration {
	base := 2 * time.Millisecond << (attempt - 1)
	return base + time.Duration(rand.Int63n(int64(time.Millisecond)))
}

// FileName returns the canonical snapshot file name for an iteration.
func FileName(iter int) string {
	return fmt.Sprintf("%s%09d%s", filePrefix, iter, fileSuffix)
}

// WriteFile atomically writes the snapshot to path, retrying transient
// failures with jittered exponential backoff (writeAttempts attempts
// total) so a momentary I/O error degrades to an OnWriteRetry
// notification instead of a lost snapshot. Each attempt lands the bytes
// in a temp file in the same directory, syncs, and renames over the
// destination, so a crash at any point leaves either the old file or the
// new one — never a torn write.
func WriteFile(path string, s *Snapshot) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = writeFileOnce(path, s)
		if err == nil {
			return nil
		}
		if attempt >= writeAttempts {
			return err
		}
		if f := OnWriteRetry; f != nil {
			f(path, attempt, err)
		}
		sleepFn(retryBackoff(attempt))
	}
}

func writeFileOnce(path string, s *Snapshot) error {
	if h := WriteHook; h != nil {
		if err := h(path); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	data := Encode(s)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and decodes one snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// WriteRotating writes the snapshot into dir under its canonical name and
// prunes older snapshots beyond keep (keep <= 0 means keep everything).
// Returns the path written.
func WriteRotating(dir string, s *Snapshot, keep int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, FileName(s.Iter))
	if err := WriteFile(path, s); err != nil {
		return "", err
	}
	if keep > 0 {
		names, err := List(dir)
		if err != nil {
			return path, nil // the write succeeded; pruning is best-effort
		}
		for len(names) > keep {
			os.Remove(filepath.Join(dir, names[0])) //nolint:errcheck // best-effort prune
			names = names[1:]
		}
	}
	return path, nil
}

// List returns the snapshot file names in dir, oldest first.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, fileSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatest returns the newest decodable snapshot in dir and its path.
// Snapshots that fail to decode (e.g. a corrupted latest file) are skipped
// in favor of older ones; ErrNoSnapshot is returned when none works, or
// when dir does not exist.
func LoadLatest(dir string) (*Snapshot, string, error) {
	return LoadLatestMatching(dir, nil)
}

// LoadLatestMatching returns the newest snapshot in dir that both decodes
// and passes accept (nil accept passes everything), scanning backwards
// past corrupt or rejected files, so one stale snapshot from a since-
// tweaked config mid-directory doesn't wedge resume. Returns
// ErrNoSnapshot when nothing qualifies or dir does not exist; the
// caller's accept typically returns ErrMismatch for fingerprint checks
// but any non-nil error skips the file.
func LoadLatestMatching(dir string, accept func(*Snapshot) error) (*Snapshot, string, error) {
	names, err := List(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, "", ErrNoSnapshot
		}
		return nil, "", err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		s, err := ReadFile(path)
		if err != nil {
			continue
		}
		if accept != nil {
			if err := accept(s); err != nil {
				continue
			}
		}
		return s, path, nil
	}
	return nil, "", ErrNoSnapshot
}
