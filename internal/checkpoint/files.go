package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// snapshot file names sort by iteration: ckpt-000000123.ckpt.
const (
	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
)

// FileName returns the canonical snapshot file name for an iteration.
func FileName(iter int) string {
	return fmt.Sprintf("%s%09d%s", filePrefix, iter, fileSuffix)
}

// WriteFile atomically writes the snapshot to path: the bytes land in a
// temp file in the same directory, are synced, and are renamed over the
// destination, so a crash at any point leaves either the old file or the
// new one — never a torn write.
func WriteFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	data := Encode(s)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and decodes one snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// WriteRotating writes the snapshot into dir under its canonical name and
// prunes older snapshots beyond keep (keep <= 0 means keep everything).
// Returns the path written.
func WriteRotating(dir string, s *Snapshot, keep int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, FileName(s.Iter))
	if err := WriteFile(path, s); err != nil {
		return "", err
	}
	if keep > 0 {
		names, err := List(dir)
		if err != nil {
			return path, nil // the write succeeded; pruning is best-effort
		}
		for len(names) > keep {
			os.Remove(filepath.Join(dir, names[0])) //nolint:errcheck // best-effort prune
			names = names[1:]
		}
	}
	return path, nil
}

// List returns the snapshot file names in dir, oldest first.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, fileSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatest returns the newest decodable snapshot in dir and its path.
// Snapshots that fail to decode (e.g. a corrupted latest file) are skipped
// in favor of older ones; ErrNoSnapshot is returned when none works, or
// when dir does not exist.
func LoadLatest(dir string) (*Snapshot, string, error) {
	names, err := List(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, "", ErrNoSnapshot
		}
		return nil, "", err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		s, err := ReadFile(path)
		if err == nil {
			return s, path, nil
		}
	}
	return nil, "", ErrNoSnapshot
}
