package checkpoint

import (
	"encoding/binary"
	"errors"
	"testing"
)

func sampleResult() *PlacementResult {
	r := &PlacementResult{
		ConfigKey:  0xdeadbeefcafe,
		HPWL:       1234.5,
		Overflow:   0.07,
		Iterations: 321,
		Seconds:    4.25,
		X:          []float64{0, 1.5, 2.25, -3},
		Y:          []float64{9, 8.5, 7.75, 6},
	}
	for i := range r.DesignHash {
		r.DesignHash[i] = byte(i * 7)
	}
	return r
}

func TestResultRoundTrip(t *testing.T) {
	want := sampleResult()
	got, err := DecodeResult(EncodeResult(want))
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if got.DesignHash != want.DesignHash || got.ConfigKey != want.ConfigKey {
		t.Fatal("key fields did not round trip")
	}
	if got.HPWL != want.HPWL || got.Overflow != want.Overflow ||
		got.Iterations != want.Iterations || got.Seconds != want.Seconds {
		t.Fatal("metric fields did not round trip")
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("X length %d, want %d", len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] || got.Y[i] != want.Y[i] {
			t.Fatalf("position %d did not round trip bit-exactly", i)
		}
	}
}

func TestResultRejectsMalformed(t *testing.T) {
	good := EncodeResult(sampleResult())

	t.Run("snapshot magic", func(t *testing.T) {
		// A placement snapshot must not decode as a result.
		if _, err := DecodeResult(append([]byte(Magic), good[len(ResultMagic):]...)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad[len(ResultMagic):], ResultVersion+1)
		if _, err := DecodeResult(bad); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeResult(good[:len(good)-9]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[headerLen+40] ^= 0x10
		if _, err := DecodeResult(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(sampleResult()))
	f.Add([]byte(ResultMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err == nil && len(r.X) != len(r.Y) {
			t.Fatal("decoded result with mismatched X/Y")
		}
		for _, want := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrCorrupt} {
			if errors.Is(err, want) {
				return
			}
		}
		if err != nil {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

func TestFingerprintFreezeHashMismatch(t *testing.T) {
	a := Fingerprint{Design: "d", FreezeHash: 1}
	b := a
	if err := a.Match(b); err != nil {
		t.Fatalf("identical fingerprints mismatch: %v", err)
	}
	b.FreezeHash = 2
	if err := a.Match(b); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch on freeze hash", err)
	}
}
