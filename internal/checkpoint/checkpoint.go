// Package checkpoint provides crash-safe snapshots of a global placement
// run: a versioned, CRC-checksummed binary codec for the full optimizer
// state (positions, Nesterov/BB history, density weight, smoothing schedule
// position, iteration counter) plus a config fingerprint that refuses to
// resume under a mismatched netlist, grid, or worker setup.
//
// Because the evaluation pipeline is deterministic at a fixed worker count,
// a run restored from a snapshot finishes with bit-identical positions and
// HPWL to one that was never interrupted — the codec therefore captures the
// state exactly (float bit patterns, not decimal round-trips).
//
// Files are written atomically (temp file + rename in the same directory),
// so a crash mid-write never corrupts the previous snapshot; WriteRotating
// keeps the last K snapshots and Latest picks the newest decodable one.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/optimizer"
)

// Magic identifies a snapshot file; Version is the current format revision.
const (
	Magic   = "MEGPCKPT"
	Version = 2
)

// Typed decode failures. Every malformed input maps onto one of these
// (wrapped with detail); Decode never panics.
var (
	ErrBadMagic   = errors.New("checkpoint: not a placement snapshot (bad magic)")
	ErrVersion    = errors.New("checkpoint: unsupported snapshot version")
	ErrTruncated  = errors.New("checkpoint: truncated snapshot")
	ErrChecksum   = errors.New("checkpoint: snapshot checksum mismatch")
	ErrCorrupt    = errors.New("checkpoint: corrupt snapshot payload")
	ErrMismatch   = errors.New("checkpoint: config fingerprint mismatch")
	ErrNoSnapshot = errors.New("checkpoint: no usable snapshot found")
)

// castagnoli is the CRC-32C table (same polynomial as iSCSI/ext4 metadata).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint pins a snapshot to the exact run configuration it came from.
// Resume is refused unless every field matches: determinism (and therefore
// bit-exact resume) holds only for the same netlist, grid, worker count,
// model, and optimizer.
type Fingerprint struct {
	Design     string
	NumCells   int
	NumNets    int
	NumPins    int
	NumMovable int
	NumFillers int
	GridX      int
	GridY      int
	Workers    int
	Model      string
	Optimizer  string
	Seed       int64
	// TargetDensity participates because it shapes fillers and overflow.
	TargetDensity float64
	// Region bounds guard against a same-named design with different die.
	RegionXL, RegionYL, RegionXH, RegionYH float64
	// FreezeHash pins the partial-release mask of an ECO warm start (0 for
	// a full run). A snapshot taken with some cells frozen cannot resume a
	// run that releases a different set: the packed position vector only
	// covers released cells.
	FreezeHash uint64
}

// Match reports whether other is the same run setup, returning an
// ErrMismatch-wrapped error naming the first differing field.
func (f Fingerprint) Match(other Fingerprint) error {
	type field struct {
		name string
		a, b any
	}
	fields := []field{
		{"design", f.Design, other.Design},
		{"cells", f.NumCells, other.NumCells},
		{"nets", f.NumNets, other.NumNets},
		{"pins", f.NumPins, other.NumPins},
		{"movable", f.NumMovable, other.NumMovable},
		{"fillers", f.NumFillers, other.NumFillers},
		{"grid_x", f.GridX, other.GridX},
		{"grid_y", f.GridY, other.GridY},
		{"workers", f.Workers, other.Workers},
		{"model", f.Model, other.Model},
		{"optimizer", f.Optimizer, other.Optimizer},
		{"seed", f.Seed, other.Seed},
		{"target_density", f.TargetDensity, other.TargetDensity},
		{"region_xl", f.RegionXL, other.RegionXL},
		{"region_yl", f.RegionYL, other.RegionYL},
		{"region_xh", f.RegionXH, other.RegionXH},
		{"region_yh", f.RegionYH, other.RegionYH},
		{"freeze_mask", f.FreezeHash, other.FreezeHash},
	}
	for _, fl := range fields {
		if fl.a != fl.b {
			return fmt.Errorf("%w: %s differs (snapshot %v, run %v)", ErrMismatch, fl.name, fl.b, fl.a)
		}
	}
	return nil
}

// LambdaState is the density-weight updater's internal state (Eq. 15).
type LambdaState struct {
	Lambda float64
	Alpha  float64
	D0     float64
	Primed bool
}

// TrajectoryPoint mirrors placer.TrajectoryPoint without importing it (the
// placer imports this package).
type TrajectoryPoint struct {
	Iter      int
	Overflow  float64
	HPWL      float64
	Objective float64
	Param     float64
	Lambda    float64
}

// Snapshot is the full resumable state of a global placement run, captured
// at an iteration boundary: everything the main loop reads at the top of
// iteration Iter.
type Snapshot struct {
	Fingerprint Fingerprint
	// Iter is the number of completed iterations — the index of the next
	// iteration to execute on resume.
	Iter int
	// Evaluations counts objective evaluations so far (incl. backtracking).
	Evaluations int
	// Param is the smoothing parameter (gamma or t), Lambda the density
	// weight, Overflow and LastEnergy the values left by the last eval.
	Param      float64
	Lambda     float64
	Overflow   float64
	LastEnergy float64
	// LambdaSched is the Eq. 15 updater state.
	LambdaSched LambdaState
	// Pos is the full packed position vector [x..., y...] including filler
	// cells (length 2*(movable+fillers)).
	Pos []float64
	// Opt is the optimizer's internal state (iterate + BB history).
	Opt optimizer.State
	// Trajectory holds the points recorded so far, so a resumed run's
	// final trajectory equals the uninterrupted one.
	Trajectory []TrajectoryPoint
	// SetupSeconds and LoopSeconds are the wall-clock time already spent,
	// carried forward into the resumed run's Result.
	SetupSeconds float64
	LoopSeconds  float64
}

// --- binary encoding -------------------------------------------------------

// enc accumulates the payload; all integers are little-endian.
type enc struct{ b []byte }

func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) boolean(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) vec(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// dec reads the payload back, returning ErrTruncated/ErrCorrupt instead of
// panicking on any malformed input.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail(ErrTruncated)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) boolean() bool {
	p := d.take(1)
	if p == nil {
		return false
	}
	switch p[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: invalid bool byte %d", ErrCorrupt, p[0]))
		return false
	}
}

// maxStringLen bounds decoded strings (names only; nothing legitimate is
// close to this).
const maxStringLen = 1 << 16

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: string length %d exceeds limit", ErrCorrupt, n))
		return ""
	}
	return string(d.take(int(n)))
}

func (d *dec) vec() []float64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	// Each element needs 8 payload bytes; bounding by the remaining bytes
	// prevents huge allocations from a corrupted length.
	if n > uint64(len(d.b)-d.off)/8 {
		d.fail(fmt.Errorf("%w: vector length %d exceeds payload", ErrCorrupt, n))
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

// intCount bounds decoded element counts for small collections.
func (d *dec) count(limit int, what string) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(limit) {
		d.fail(fmt.Errorf("%w: %s count %d exceeds limit %d", ErrCorrupt, what, n, limit))
		return 0
	}
	return int(n)
}

// Encode serializes the snapshot: magic, version, payload length, payload,
// CRC-32C over everything before the checksum.
func Encode(s *Snapshot) []byte {
	var p enc
	f := s.Fingerprint
	p.str(f.Design)
	p.i64(int64(f.NumCells))
	p.i64(int64(f.NumNets))
	p.i64(int64(f.NumPins))
	p.i64(int64(f.NumMovable))
	p.i64(int64(f.NumFillers))
	p.i64(int64(f.GridX))
	p.i64(int64(f.GridY))
	p.i64(int64(f.Workers))
	p.str(f.Model)
	p.str(f.Optimizer)
	p.i64(f.Seed)
	p.f64(f.TargetDensity)
	p.f64(f.RegionXL)
	p.f64(f.RegionYL)
	p.f64(f.RegionXH)
	p.f64(f.RegionYH)
	p.u64(f.FreezeHash)

	p.i64(int64(s.Iter))
	p.i64(int64(s.Evaluations))
	p.f64(s.Param)
	p.f64(s.Lambda)
	p.f64(s.Overflow)
	p.f64(s.LastEnergy)
	p.f64(s.LambdaSched.Lambda)
	p.f64(s.LambdaSched.Alpha)
	p.f64(s.LambdaSched.D0)
	p.boolean(s.LambdaSched.Primed)
	p.vec(s.Pos)

	p.str(s.Opt.Kind)
	p.vec(s.Opt.Scalars)
	p.u64(uint64(len(s.Opt.Ints)))
	for _, v := range s.Opt.Ints {
		p.i64(v)
	}
	p.u64(uint64(len(s.Opt.Bools)))
	for _, v := range s.Opt.Bools {
		p.boolean(v)
	}
	p.u64(uint64(len(s.Opt.Vectors)))
	for _, v := range s.Opt.Vectors {
		p.vec(v)
	}

	p.u64(uint64(len(s.Trajectory)))
	for _, t := range s.Trajectory {
		p.i64(int64(t.Iter))
		p.f64(t.Overflow)
		p.f64(t.HPWL)
		p.f64(t.Objective)
		p.f64(t.Param)
		p.f64(t.Lambda)
	}
	p.f64(s.SetupSeconds)
	p.f64(s.LoopSeconds)

	out := make([]byte, 0, len(Magic)+4+8+len(p.b)+4)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	return out
}

// headerLen is magic + version + payload length.
const headerLen = len(Magic) + 4 + 8

// Decode parses a snapshot, validating magic, version, length, and checksum
// before touching the payload. All failures return typed errors.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen {
		if len(data) >= len(Magic) && string(data[:len(Magic)]) != Magic {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(data[len(Magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersion, ver, Version)
	}
	plen := binary.LittleEndian.Uint64(data[len(Magic)+4:])
	if plen > uint64(len(data)-headerLen) {
		return nil, ErrTruncated
	}
	total := headerLen + int(plen)
	if len(data) < total+4 {
		return nil, ErrTruncated
	}
	sum := binary.LittleEndian.Uint32(data[total:])
	if crc32.Checksum(data[:total], castagnoli) != sum {
		return nil, ErrChecksum
	}

	d := &dec{b: data[headerLen:total]}
	s := &Snapshot{}
	f := &s.Fingerprint
	f.Design = d.str()
	f.NumCells = int(d.i64())
	f.NumNets = int(d.i64())
	f.NumPins = int(d.i64())
	f.NumMovable = int(d.i64())
	f.NumFillers = int(d.i64())
	f.GridX = int(d.i64())
	f.GridY = int(d.i64())
	f.Workers = int(d.i64())
	f.Model = d.str()
	f.Optimizer = d.str()
	f.Seed = d.i64()
	f.TargetDensity = d.f64()
	f.RegionXL = d.f64()
	f.RegionYL = d.f64()
	f.RegionXH = d.f64()
	f.RegionYH = d.f64()
	f.FreezeHash = d.u64()

	s.Iter = int(d.i64())
	s.Evaluations = int(d.i64())
	s.Param = d.f64()
	s.Lambda = d.f64()
	s.Overflow = d.f64()
	s.LastEnergy = d.f64()
	s.LambdaSched.Lambda = d.f64()
	s.LambdaSched.Alpha = d.f64()
	s.LambdaSched.D0 = d.f64()
	s.LambdaSched.Primed = d.boolean()
	s.Pos = d.vec()

	s.Opt.Kind = d.str()
	s.Opt.Scalars = d.vec()
	if n := d.count(64, "optimizer int"); n > 0 {
		s.Opt.Ints = make([]int64, n)
		for i := range s.Opt.Ints {
			s.Opt.Ints[i] = d.i64()
		}
	}
	if n := d.count(64, "optimizer bool"); n > 0 {
		s.Opt.Bools = make([]bool, n)
		for i := range s.Opt.Bools {
			s.Opt.Bools[i] = d.boolean()
		}
	}
	if n := d.count(64, "optimizer vector"); n > 0 {
		s.Opt.Vectors = make([][]float64, n)
		for i := range s.Opt.Vectors {
			s.Opt.Vectors[i] = d.vec()
		}
	}

	// Each trajectory point takes 48 payload bytes.
	if n := d.count((len(d.b)-d.off)/48+1, "trajectory point"); n > 0 && d.err == nil {
		s.Trajectory = make([]TrajectoryPoint, n)
		for i := range s.Trajectory {
			s.Trajectory[i] = TrajectoryPoint{
				Iter:      int(d.i64()),
				Overflow:  d.f64(),
				HPWL:      d.f64(),
				Objective: d.f64(),
				Param:     d.f64(),
				Lambda:    d.f64(),
			}
		}
	}
	s.SetupSeconds = d.f64()
	s.LoopSeconds = d.f64()

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b)-d.off)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate applies semantic sanity checks after a structurally clean decode.
func (s *Snapshot) validate() error {
	if s.Iter < 0 || s.Evaluations < 0 {
		return fmt.Errorf("%w: negative iteration counters", ErrCorrupt)
	}
	f := s.Fingerprint
	if f.NumMovable < 0 || f.NumFillers < 0 {
		return fmt.Errorf("%w: negative fingerprint counts", ErrCorrupt)
	}
	if want := 2 * (f.NumMovable + f.NumFillers); len(s.Pos) != want {
		return fmt.Errorf("%w: position vector has %d entries, fingerprint implies %d", ErrCorrupt, len(s.Pos), want)
	}
	return nil
}
