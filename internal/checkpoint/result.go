package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ResultMagic identifies a cached placement-result file; ResultVersion is the
// current format revision. Results reuse the snapshot codec's framing (magic,
// version, payload length, payload, CRC-32C) and bounded decoder, but carry a
// finished placement rather than mid-run optimizer state: the ecocache stores
// one of these per (design hash, config fingerprint) key.
const (
	ResultMagic   = "MEGPRSLT"
	ResultVersion = 1
)

// PlacementResult is a finished placement worth serving from cache: the final
// cell positions plus the headline metrics of the run that produced them.
type PlacementResult struct {
	// DesignHash is the canonical netlist content hash (see netlist.Hash)
	// and ConfigKey the semantic config fingerprint the run used. Together
	// they form the cache key; both are stored in the payload so an entry
	// renamed or copied on disk still self-identifies.
	DesignHash [32]byte
	ConfigKey  uint64
	// HPWL and Overflow are the final metrics of the originating run.
	HPWL     float64
	Overflow float64
	// Iterations is the number of GP iterations the run took and Seconds
	// its wall-clock cost — the baseline a warm start is measured against.
	Iterations int
	Seconds    float64
	// X, Y are lower-left cell positions for every cell, in index order
	// (the same order ContentHash pins down).
	X, Y []float64
}

// EncodeResult serializes the result with the same framing as Encode.
func EncodeResult(r *PlacementResult) []byte {
	var p enc
	p.b = append(p.b, r.DesignHash[:]...)
	p.u64(r.ConfigKey)
	p.f64(r.HPWL)
	p.f64(r.Overflow)
	p.i64(int64(r.Iterations))
	p.f64(r.Seconds)
	p.vec(r.X)
	p.vec(r.Y)

	out := make([]byte, 0, len(ResultMagic)+4+8+len(p.b)+4)
	out = append(out, ResultMagic...)
	out = binary.LittleEndian.AppendUint32(out, ResultVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(p.b)))
	out = append(out, p.b...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	return out
}

// DecodeResult parses a cached placement result, validating magic, version,
// length, and checksum before the payload. Never panics; all failures map to
// the package's typed errors.
func DecodeResult(data []byte) (*PlacementResult, error) {
	if len(data) < headerLen {
		if len(data) >= len(ResultMagic) && string(data[:len(ResultMagic)]) != ResultMagic {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if string(data[:len(ResultMagic)]) != ResultMagic {
		return nil, ErrBadMagic
	}
	ver := binary.LittleEndian.Uint32(data[len(ResultMagic):])
	if ver != ResultVersion {
		return nil, fmt.Errorf("%w: result version %d, this build reads %d", ErrVersion, ver, ResultVersion)
	}
	plen := binary.LittleEndian.Uint64(data[len(ResultMagic)+4:])
	if plen > uint64(len(data)-headerLen) {
		return nil, ErrTruncated
	}
	total := headerLen + int(plen)
	if len(data) < total+4 {
		return nil, ErrTruncated
	}
	sum := binary.LittleEndian.Uint32(data[total:])
	if crc32.Checksum(data[:total], castagnoli) != sum {
		return nil, ErrChecksum
	}

	d := &dec{b: data[headerLen:total]}
	r := &PlacementResult{}
	copy(r.DesignHash[:], d.take(len(r.DesignHash)))
	r.ConfigKey = d.u64()
	r.HPWL = d.f64()
	r.Overflow = d.f64()
	r.Iterations = int(d.i64())
	r.Seconds = d.f64()
	r.X = d.vec()
	r.Y = d.vec()

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b)-d.off)
	}
	if len(r.X) != len(r.Y) {
		return nil, fmt.Errorf("%w: X/Y length mismatch (%d vs %d)", ErrCorrupt, len(r.X), len(r.Y))
	}
	if r.Iterations < 0 {
		return nil, fmt.Errorf("%w: negative iteration count", ErrCorrupt)
	}
	return r, nil
}
