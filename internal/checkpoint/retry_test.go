package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// stubSleep replaces the retry backoff sleep for the duration of a test and
// records the requested delays.
func stubSleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	old := sleepFn
	sleepFn = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { sleepFn = old })
	return &slept
}

func TestWriteFileRetriesTransientErrors(t *testing.T) {
	slept := stubSleep(t)
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteCheckpointWrite, Mode: faultinject.ModeError, Times: 2,
	})
	WriteHook = func(path string) error {
		if f, ok := plan.Visit(faultinject.SiteCheckpointWrite); ok {
			return f.Err()
		}
		return nil
	}
	defer func() { WriteHook = nil }()

	var retries []int
	OnWriteRetry = func(path string, attempt int, err error) {
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("OnWriteRetry err = %v, want injected", err)
		}
		retries = append(retries, attempt)
	}
	defer func() { OnWriteRetry = nil }()

	path := filepath.Join(t.TempDir(), FileName(1))
	if err := WriteFile(path, sampleSnapshot()); err != nil {
		t.Fatalf("two transient failures should be absorbed: %v", err)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("retried attempts = %v, want [1 2]", retries)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2", len(*slept))
	}
	// Backoff grows and carries jitter: attempt 1 in [2ms, 3ms), attempt 2
	// in [4ms, 5ms).
	if s := *slept; len(s) == 2 {
		if s[0] < 2*time.Millisecond || s[0] >= 3*time.Millisecond {
			t.Errorf("first backoff = %v, want in [2ms, 3ms)", s[0])
		}
		if s[1] < 4*time.Millisecond || s[1] >= 5*time.Millisecond {
			t.Errorf("second backoff = %v, want in [4ms, 5ms)", s[1])
		}
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("snapshot unreadable after retried write: %v", err)
	}
}

func TestWriteFilePersistentErrorSurfaces(t *testing.T) {
	stubSleep(t)
	plan := faultinject.NewPlan(faultinject.Fault{
		Site: faultinject.SiteCheckpointWrite, Mode: faultinject.ModeError, Forever: true,
	})
	WriteHook = func(path string) error {
		if f, ok := plan.Visit(faultinject.SiteCheckpointWrite); ok {
			return f.Err()
		}
		return nil
	}
	defer func() { WriteHook = nil }()

	path := filepath.Join(t.TempDir(), FileName(1))
	err := WriteFile(path, sampleSnapshot())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected error after exhausting retries", err)
	}
	if got := plan.Visits(faultinject.SiteCheckpointWrite); got != writeAttempts {
		t.Errorf("write attempted %d times, want %d", got, writeAttempts)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed write left a file behind: %v", err)
	}
}

// TestLoadLatestMatchingSkipsMismatched the regression for resume wedging:
// a newer snapshot from a tweaked config must be skipped in favor of an
// older matching one, exactly like corrupt files already are.
func TestLoadLatestMatchingSkipsMismatched(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot()
	want.Iter = 10
	if err := WriteFile(filepath.Join(dir, FileName(10)), want); err != nil {
		t.Fatal(err)
	}
	tweaked := sampleSnapshot()
	tweaked.Iter = 20
	tweaked.Fingerprint.Workers = 99 // config tweak mid-directory
	if err := WriteFile(filepath.Join(dir, FileName(20)), tweaked); err != nil {
		t.Fatal(err)
	}

	fp := sampleSnapshot().Fingerprint
	s, path, err := LoadLatestMatching(dir, func(c *Snapshot) error {
		return fp.Match(c.Fingerprint)
	})
	if err != nil {
		t.Fatalf("LoadLatestMatching: %v", err)
	}
	if s.Iter != 10 || filepath.Base(path) != FileName(10) {
		t.Fatalf("loaded iter %d from %s, want the older matching snapshot (iter 10)", s.Iter, path)
	}

	// Nothing matching at all: ErrNoSnapshot.
	other := Fingerprint{Design: "other"}
	if _, _, err := LoadLatestMatching(dir, func(c *Snapshot) error {
		return other.Match(c.Fingerprint)
	}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}

	// A corrupt newest file is still skipped with a matcher installed.
	if err := os.WriteFile(filepath.Join(dir, FileName(30)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err = LoadLatestMatching(dir, func(c *Snapshot) error {
		return fp.Match(c.Fingerprint)
	})
	if err != nil || s.Iter != 10 {
		t.Fatalf("corrupt+mismatch scan: iter=%v err=%v, want 10/nil", s, err)
	}
}
