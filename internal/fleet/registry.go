package fleet

import (
	"sort"
	"sync"
	"time"
)

// workerState is one registered worker: its latest heartbeat and when it
// arrived.
type workerState struct {
	hb       Heartbeat
	lastSeen time.Time
}

// Registry tracks the live worker set. A worker is live while its most
// recent heartbeat is younger than the TTL; Expire removes (and returns)
// everyone older, which is the fleet's failure detector: an expired worker's
// jobs get re-routed by the coordinator.
type Registry struct {
	ttl time.Duration

	mu      sync.Mutex
	workers map[string]*workerState
}

// NewRegistry creates a registry with the given heartbeat TTL.
func NewRegistry(ttl time.Duration) *Registry {
	return &Registry{ttl: ttl, workers: make(map[string]*workerState)}
}

// Update records a heartbeat, reporting whether it registered a new worker
// (or re-registered one that had expired).
func (r *Registry) Update(hb Heartbeat, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, known := r.workers[hb.ID]
	r.workers[hb.ID] = &workerState{hb: hb, lastSeen: now}
	return !known
}

// Live returns the workers within their TTL, sorted by ID so every ranking
// pass over the same fleet sees the same order.
func (r *Registry) Live(now time.Time) []Heartbeat {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Heartbeat, 0, len(r.workers))
	for _, w := range r.workers {
		if now.Sub(w.lastSeen) <= r.ttl {
			out = append(out, w.hb)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Get returns a live worker by ID.
func (r *Registry) Get(id string, now time.Time) (Heartbeat, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok || now.Sub(w.lastSeen) > r.ttl {
		return Heartbeat{}, false
	}
	return w.hb, true
}

// Remove deletes a worker by ID regardless of TTL (the graceful-drain
// deregistration path), returning its final heartbeat so the coordinator can
// hand its checkpoints off.
func (r *Registry) Remove(id string) (Heartbeat, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return Heartbeat{}, false
	}
	delete(r.workers, id)
	return w.hb, true
}

// Expire removes every worker whose last heartbeat is older than the TTL
// and returns their final heartbeats (the coordinator re-routes their jobs,
// using the remembered DataDir for checkpoint handoff).
func (r *Registry) Expire(now time.Time) []Heartbeat {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dead []Heartbeat
	for id, w := range r.workers {
		if now.Sub(w.lastSeen) > r.ttl {
			dead = append(dead, w.hb)
			delete(r.workers, id)
		}
	}
	sort.Slice(dead, func(a, b int) bool { return dead[a].ID < dead[b].ID })
	return dead
}

// Snapshot returns every registered worker (live or not yet expired) as
// status rows, sorted by ID.
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerStatus{
			ID: w.hb.ID, URL: w.hb.URL, DataDir: w.hb.DataDir,
			Stats: w.hb.Stats, LastSeen: w.lastSeen,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
