package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// fakeClock is a mutable test clock shared by the coordinator and the test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(10000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testWorker is a real placerd worker (manager + HTTP API) under test.
type testWorker struct {
	id      string
	mgr     *service.Manager
	srv     *httptest.Server
	dataDir string
}

func (w *testWorker) heartbeat() Heartbeat {
	return Heartbeat{ID: w.id, URL: w.srv.URL, DataDir: w.dataDir, Stats: w.mgr.Stats()}
}

// startWorker boots a worker. A non-zero cfg.DataDir makes it durable.
func startWorker(t *testing.T, id string, cfg service.Config) *testWorker {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	mgr, err := service.OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(mgr))
	w := &testWorker{id: id, mgr: mgr, srv: srv, dataDir: cfg.DataDir}
	t.Cleanup(func() { w.stop(t) })
	return w
}

// stop tears the worker down gracefully (idempotent).
func (w *testWorker) stop(t *testing.T) {
	t.Helper()
	if w.srv != nil {
		w.srv.Close()
		w.srv = nil
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w.mgr.Shutdown(ctx) //nolint:errcheck
	}
}

// kill hard-stops the worker: the API vanishes and the manager drain runs
// with an already-expired budget, cancelling jobs mid-flight (which, for a
// durable worker, persists them as interrupted with a final snapshot).
func (w *testWorker) kill(t *testing.T) {
	t.Helper()
	w.srv.Close()
	w.srv = nil
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	if err := w.mgr.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("kill %s: Shutdown = %v, want DeadlineExceeded", w.id, err)
	}
}

// fastSpec finishes quickly; workers pinned to 1 for determinism.
func fastSpec(seed int64) service.JobSpec {
	return service.JobSpec{
		Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64, Seed: seed}},
		Model:  "WA",
		Placer: service.PlacerSpec{MaxIters: 25, StopOverflow: 1e-9, GridX: 16, GridY: 16, Workers: 1},
		Flow:   service.FlowSpec{GPOnly: true},
	}
}

// slowSpec never finishes on its own within a test run.
func slowSpec(seed int64) service.JobSpec {
	s := fastSpec(seed)
	s.Placer.MaxIters = 1 << 20
	return s
}

// durableFleetSpec runs long enough to checkpoint before being interrupted.
func durableFleetSpec(iters int) service.JobSpec {
	s := fastSpec(1)
	s.Placer.MaxIters = iters
	return s
}

// newTestCoordinator builds a coordinator on a fake clock with fast tests
// defaults.
func newTestCoordinator(t *testing.T, clock *fakeClock, adm *Admission) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{
		HeartbeatTTL: time.Second,
		Admission:    adm,
		Now:          clock.Now,
		// Dead-worker dispatch attempts should fail fast in tests, not
		// sleep through retry backoff.
		DispatchBackoff: time.Millisecond,
		Sleep:           func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitFleetState polls the coordinator until the job reaches want.
func waitFleetState(t *testing.T, c *Coordinator, clock *fakeClock, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, err := c.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if service.State(v.State).Terminal() {
			t.Fatalf("job %s reached %s, want %s (view %+v)", id, v.State, want, v)
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func TestCoordinatorRoutesAffinityAndCompletes(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	wA := startWorker(t, "wA", service.Config{})
	wB := startWorker(t, "wB", service.Config{})
	for _, w := range []*testWorker{wA, wB} {
		if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}

	v1, after, err := c.Submit(fastSpec(7), "t1")
	if err != nil {
		t.Fatalf("Submit: %v (after %s)", err, after)
	}
	if v1.Worker == "" {
		t.Fatalf("job not assigned with two live workers: %+v", v1)
	}
	done1 := waitFleetState(t, c, clock, v1.ID, "done")
	if done1.Job == nil || done1.Job.Result == nil {
		t.Fatalf("done view has no proxied result: %+v", done1)
	}

	// Resubmitting the byte-identical spec must hit checkpoint affinity:
	// same worker, flagged, counted.
	v2, _, err := c.Submit(fastSpec(7), "t1")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Worker != v1.Worker || !v2.AffinityHit {
		t.Errorf("resubmission routed to %s (affinity %v), want affine worker %s",
			v2.Worker, v2.AffinityHit, v1.Worker)
	}
	if got := c.Telemetry().AffinityHits.Value(); got != 1 {
		t.Errorf("AffinityHits = %d, want 1", got)
	}
	waitFleetState(t, c, clock, v2.ID, "done")

	// A different spec is free to land anywhere, but must complete too.
	v3, _, err := c.Submit(fastSpec(99), "t2")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c, clock, v3.ID, "done")

	if got := c.Telemetry().JobsAssigned.Value(); got != 3 {
		t.Errorf("JobsAssigned = %d, want 3", got)
	}
}

// TestCoordinatorRecoversFromWorkerDeath is the fleet acceptance test: kill
// a worker mid-job; after heartbeat expiry the coordinator re-routes the
// job to a surviving node, which resumes from the dead node's checkpoints
// (shared filesystem) and finishes with the HPWL of an uninterrupted run.
func TestCoordinatorRecoversFromWorkerDeath(t *testing.T) {
	const iters = 300
	root := t.TempDir()

	// Reference: the same spec run to completion on an isolated manager.
	ref := service.NewManager(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ref.Shutdown(ctx) //nolint:errcheck
	}()
	rv, err := ref.Submit(durableFleetSpec(iters))
	if err != nil {
		t.Fatal(err)
	}
	var refDone service.JobView
	for {
		refDone, err = ref.Get(rv.ID)
		if err != nil {
			t.Fatal(err)
		}
		if refDone.State.Terminal() {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}
	if refDone.State != service.StateDone || refDone.Result == nil {
		t.Fatalf("reference run ended %s", refDone.State)
	}

	// A 3-worker fleet on one shared filesystem root: each node has its own
	// durable store but may resume from any directory under the root.
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	workers := map[string]*testWorker{}
	for _, id := range []string{"wA", "wB", "wC"} {
		w := startWorker(t, id, service.Config{
			DataDir: root + "/" + id, CheckpointEvery: 5, ResumeRoot: root,
		})
		workers[id] = w
		if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}

	v, _, err := c.Submit(durableFleetSpec(iters), "t1")
	if err != nil {
		t.Fatal(err)
	}
	victim := workers[v.Worker]
	if victim == nil {
		t.Fatalf("job assigned to unknown worker %q", v.Worker)
	}

	// Let it run past a checkpoint boundary, then kill whichever node
	// rendezvous picked.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jv, err := victim.mgr.Get(v.RemoteID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.Progress != nil && jv.Progress.Iteration >= 20 {
			break
		}
		if jv.State.Terminal() {
			t.Fatalf("job finished before it could be killed: %+v", jv)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached iteration 20")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill(t)

	// The victim's heartbeats stop while the survivors keep reporting. Past
	// the TTL the coordinator expires it and re-routes the job with a resume
	// pointer into the dead node's durable store.
	clock.Advance(1500 * time.Millisecond)
	for id, w := range workers {
		if id != victim.id {
			if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Tick(clock.Now())

	moved, err := c.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Worker == "" || moved.Worker == victim.id || moved.Reroutes != 1 {
		t.Fatalf("after expiry job is on %q (reroutes %d), want a survivor with 1 reroute", moved.Worker, moved.Reroutes)
	}
	if got := c.Telemetry().JobsRerouted.Value(); got != 1 {
		t.Errorf("JobsRerouted = %d, want 1", got)
	}

	done := waitFleetState(t, c, clock, v.ID, "done")
	if done.Job == nil || done.Job.Result == nil {
		t.Fatal("re-routed job has no result")
	}
	if done.Job.Result.GPIters != iters {
		t.Errorf("re-routed job ran %d GP iterations, want %d", done.Job.Result.GPIters, iters)
	}
	if done.Job.Result.DPWL != refDone.Result.DPWL {
		t.Errorf("re-routed HPWL = %v, want bit-identical %v (diff %g)",
			done.Job.Result.DPWL, refDone.Result.DPWL, done.Job.Result.DPWL-refDone.Result.DPWL)
	}
}

func TestCoordinatorStealsQueuedWork(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	wA := startWorker(t, "wA", service.Config{})
	if err := c.RecordHeartbeat(wA.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}

	// Fill wA: one running (forever) plus one queued behind it.
	running, _, err := c.Submit(slowSpec(1), "t1")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c, clock, running.ID, "running")
	queued, _, err := c.Submit(fastSpec(2), "t1")
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != string(service.StateQueued) {
		t.Fatalf("second job state = %s, want queued behind the slow one", queued.State)
	}

	// An idle worker joins; heartbeats carry the fresh load reports and the
	// next tick steals the queued job over (never the running one).
	wB := startWorker(t, "wB", service.Config{})
	if err := c.RecordHeartbeat(wA.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	if err := c.RecordHeartbeat(wB.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	c.Tick(clock.Now())

	moved, err := c.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Worker != "wB" || moved.Steals != 1 {
		t.Fatalf("queued job on %q (steals %d), want stolen onto wB", moved.Worker, moved.Steals)
	}
	if got := c.Telemetry().JobsStolen.Value(); got != 1 {
		t.Errorf("JobsStolen = %d, want 1", got)
	}
	waitFleetState(t, c, clock, moved.ID, "done")

	still, err := c.Get(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if still.Worker != "wA" || still.State != string(service.StateRunning) {
		t.Errorf("running job disturbed by steal: %+v", still)
	}
	if _, err := c.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorHTTPBackpressureRetryAfter(t *testing.T) {
	clock := newFakeClock()
	adm, err := NewAdmission(TenantConfig{}, []TenantConfig{
		{Name: "ci", MaxInFlight: 1},
	}, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, clock, adm)
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(NewHandler(c))
	defer api.Close()

	post := func(tenant string, spec service.JobSpec) *http.Response {
		t.Helper()
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, api.URL+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := post("ci", slowSpec(1))
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", r1.StatusCode)
	}
	var v1 JobView
	if err := json.NewDecoder(r1.Body).Decode(&v1); err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()

	// Quota is 1 in-flight: the second submit must get a 429 with an
	// integer-seconds Retry-After any client can parse.
	r2 := post("ci", fastSpec(2))
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status = %d, want 429", r2.StatusCode)
	}
	ra := r2.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	r2.Body.Close()

	// Another tenant is not affected by ci's quota.
	r3 := post("other", fastSpec(3))
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant submit status = %d, want 202", r3.StatusCode)
	}
	r3.Body.Close()

	// Cancelling the hog frees the quota slot.
	req, _ := http.NewRequest(http.MethodDelete, api.URL+"/v1/jobs/"+v1.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := c.Get(v1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if service.State(v.State).Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never reached a terminal state")
		}
		time.Sleep(3 * time.Millisecond)
	}
	r4 := post("ci", fastSpec(4))
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("post-release submit status = %d, want 202", r4.StatusCode)
	}
	r4.Body.Close()
}

func TestCoordinatorHealthAndReadiness(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	api := httptest.NewServer(NewHandler(c))
	defer api.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz with no workers = %d, want 503", got)
	}
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz with a live worker = %d, want 200", got)
	}

	// Worker silence past the TTL flips readiness back off.
	clock.Advance(2 * time.Second)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz after heartbeat expiry = %d, want 503", got)
	}

	resp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "placercoord_heartbeats_total") {
		t.Error("/metrics missing placercoord_heartbeats_total")
	}
}

func TestCoordinatorTrajectoryProxy(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(NewHandler(c))
	defer api.Close()

	spec := fastSpec(5)
	spec.Placer.RecordEvery = 1
	v, _, err := c.Submit(spec, "t1")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c, clock, v.ID, "done")

	resp, err := http.Get(api.URL + "/v1/jobs/" + v.ID + "/trajectory?follow=false")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trajectory proxy status = %d, want 200", resp.StatusCode)
	}
	buf := make([]byte, 1<<20)
	total := 0
	for {
		n, err := resp.Body.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	lines := strings.Split(strings.TrimSpace(string(buf[:total])), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "\"hpwl\"") {
		t.Fatalf("proxied trajectory = %d lines (first %q), want NDJSON points", len(lines), lines[0])
	}
}
