package fleet

import (
	"testing"

	"repro/internal/service"
)

// TestECOParentRouting pins the fleet half of the ECO fast path: a child job
// carrying a parent reference adopts the parent's routing key, lands on the
// worker holding the parent's cached placement, and is served there as a
// near hit.
func TestECOParentRouting(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	w1 := startWorker(t, "w1", service.Config{DataDir: t.TempDir()})
	w2 := startWorker(t, "w2", service.Config{DataDir: t.TempDir()})
	for _, w := range []*testWorker{w1, w2} {
		if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}

	parent, _, err := c.Submit(fastSpec(7), "t1")
	if err != nil {
		t.Fatal(err)
	}
	pv := waitFleetState(t, c, clock, parent.ID, "done")
	if pv.Worker == "" {
		t.Fatal("parent finished without a worker assignment")
	}

	child := fastSpec(7)
	child.Parent = parent.ID
	child.Design.Perturb = &service.PerturbSpec{Seed: 5, CellFrac: 0.02}
	cv, _, err := c.Submit(child, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if cv.Worker != pv.Worker {
		t.Errorf("child routed to %q, parent placed on %q", cv.Worker, pv.Worker)
	}
	done := waitFleetState(t, c, clock, cv.ID, "done")
	if done.Job == nil || done.Job.Cache != "near_hit" {
		got := ""
		if done.Job != nil {
			got = done.Job.Cache
		}
		t.Errorf("child cache outcome %q, want near_hit", got)
	}
	if got := c.Status().Counters.ParentRoutes; got != 1 {
		t.Errorf("parent_routes counter = %d, want 1", got)
	}

	// An unknown parent reference must not break routing: the child keeps its
	// own spec key, is placed somewhere, and cold-starts on the worker.
	orphan := fastSpec(8)
	orphan.Parent = "fj-999999"
	ov, _, err := c.Submit(orphan, "t1")
	if err != nil {
		t.Fatal(err)
	}
	odone := waitFleetState(t, c, clock, ov.ID, "done")
	if odone.Job == nil || odone.Job.Cache != "miss" {
		t.Errorf("orphan child did not cold-start: %+v", odone.Job)
	}
	if got := c.Status().Counters.ParentRoutes; got != 1 {
		t.Errorf("orphan bumped parent_routes to %d", got)
	}
}

// TestSpecKeyIgnoresParentAndResume pins the routing-key contract the ECO
// path depends on: rewriting the parent reference (or attaching a resume
// pointer during re-route) must not change where a spec ranks.
func TestSpecKeyIgnoresParentAndResume(t *testing.T) {
	base := fastSpec(3)
	k := SpecKey(base)

	withParent := base
	withParent.Parent = "job-000042"
	if SpecKey(withParent) != k {
		t.Error("parent reference changed the spec key")
	}
	withResume := base
	withResume.Resume = &service.ResumeSpec{Dir: "/tmp/ckpts"}
	if SpecKey(withResume) != k {
		t.Error("resume pointer changed the spec key")
	}
	perturbed := base
	perturbed.Design.Perturb = &service.PerturbSpec{Seed: 1, CellFrac: 0.01}
	if SpecKey(perturbed) == k {
		t.Error("perturbation did not change the spec key")
	}
}
