package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"context cancel", context.Canceled, false},
		// Without a caller context, a deadline error is indistinguishable
		// from http.Client's per-request timeout (which matches
		// errors.Is(err, context.DeadlineExceeded) since Go 1.16): a slow
		// peer, retryable. RetryableCtx covers the caller-gave-up case.
		{"deadline", context.DeadlineExceeded, true},
		{"client timeout", &url.Error{Op: "Post", Err: fmt.Errorf("net/http: request canceled (%w)", context.DeadlineExceeded)}, true},
		{"wrapped cancel", fmt.Errorf("submit: %w", context.Canceled), false},
		{"status 500", &StatusError{Code: 500}, true},
		{"status 503", &StatusError{Code: 503}, true},
		{"status 429", &StatusError{Code: 429}, true},
		{"status 408", &StatusError{Code: 408}, true},
		{"status 404", &StatusError{Code: 404}, false},
		{"status 400", &StatusError{Code: 400}, false},
		{"wrapped status 404", fmt.Errorf("get: %w", &StatusError{Code: 404}), false},
		{"net op error", &net.OpError{Op: "dial", Err: errors.New("refused")}, true},
		{"url error around permanent", &url.Error{Op: "Post", Err: &StatusError{Code: 400}}, false},
		{"unknown error", errors.New("mystery"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryableCtx: the caller's own context is the arbiter for timeout
// errors — a per-request timeout with the ctx still live is a slow peer
// (retry), the same error once the ctx is done means the caller gave up.
func TestRetryableCtx(t *testing.T) {
	timeout := &url.Error{Op: "Post", Err: fmt.Errorf("net/http: request canceled (%w)", context.DeadlineExceeded)}
	if !RetryableCtx(context.Background(), timeout) {
		t.Error("client timeout with live ctx must be retryable")
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	if RetryableCtx(expired, timeout) {
		t.Error("timeout with the caller's deadline already expired must not be retryable")
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if RetryableCtx(cancelled, &StatusError{Code: 500}) {
		t.Error("once the caller cancelled, even a retryable status is not worth retrying")
	}
	if !RetryableCtx(context.Background(), &StatusError{Code: 500}) {
		t.Error("status 500 with live ctx must stay retryable")
	}
}

func TestBackoffBoundsAndReset(t *testing.T) {
	base := 100 * time.Millisecond
	b := NewBackoff(base, time.Second, 7)
	prevMax := time.Duration(0)
	for i := 0; i < 8; i++ {
		d := b.Next()
		if d < time.Millisecond || d > time.Second+time.Second/4 {
			t.Fatalf("attempt %d: delay %s outside [1ms, cap+25%%]", i, d)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax < base {
		t.Fatalf("delays never grew past the base: max %s", prevMax)
	}
	b.Reset()
	d := b.Next()
	// Post-reset the exponent is back at 0: base ± 25% jitter.
	if d > base+base/4 {
		t.Fatalf("post-reset delay %s, want ~base %s", d, base)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := NewBackoff(50*time.Millisecond, 0, 42)
	b := NewBackoff(50*time.Millisecond, 0, 42)
	for i := 0; i < 6; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("same seed diverged at attempt %d: %s vs %s", i, da, db)
		}
	}
}

func TestBreakerSuspectAndRecovery(t *testing.T) {
	clock := newFakeClock()
	b := newBreakerSet(3, 30*time.Second, clock.Now)

	if b.Suspect("w1") {
		t.Fatal("fresh worker already suspect")
	}
	for i := 0; i < 2; i++ {
		if b.Failure("w1") {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	if !b.Failure("w1") {
		t.Fatal("third failure should open the breaker")
	}
	if !b.Suspect("w1") || b.State("w1") != BreakerSuspect || b.Suspects() != 1 {
		t.Fatalf("state after open = %s (suspects %d)", b.State("w1"), b.Suspects())
	}

	// A success snaps it closed immediately.
	b.Success("w1")
	if b.Suspect("w1") || b.Suspects() != 0 {
		t.Fatal("success should close the breaker")
	}

	// Re-open, then let the reset window decay it (half-open: eligible again).
	for i := 0; i < 3; i++ {
		b.Failure("w1")
	}
	if !b.Suspect("w1") {
		t.Fatal("breaker should be open again")
	}
	clock.Advance(31 * time.Second)
	if b.Suspect("w1") {
		t.Fatal("suspicion should decay after the reset window")
	}

	// Forget drops all state.
	for i := 0; i < 3; i++ {
		b.Failure("w2")
	}
	b.Forget("w2")
	if b.Suspect("w2") || b.State("w2") != BreakerLive {
		t.Fatal("Forget should clear the entry")
	}
}
