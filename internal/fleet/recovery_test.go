package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// newJournalCoordinator builds a journaled coordinator on the shared fake
// clock; both "boots" of a crash test call this with the same path.
func newJournalCoordinator(t *testing.T, clock *fakeClock, path string) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(Config{
		HeartbeatTTL:    time.Second,
		JournalPath:     path,
		Now:             clock.Now,
		DispatchBackoff: time.Millisecond,
		Sleep:           func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCoordinatorCrashRecoveryZeroLoss is the tentpole acceptance test: a
// journaled coordinator is killed (abandoned, kill -9 style: no Close, no
// drain) together with the worker running a long job. A second coordinator
// booted on the same journal replays everything: the finished job stays in
// history, the orphaned assignment re-routes to a survivor with a resume
// pointer into the dead worker's checkpoints once the recovery grace lapses,
// the rerun finishes with the HPWL of an uninterrupted run (bit-identical),
// and a submit retried across the crash under its idempotency key returns
// the original job instead of a duplicate.
func TestCoordinatorCrashRecoveryZeroLoss(t *testing.T) {
	const iters = 300
	root := t.TempDir()
	journal := filepath.Join(root, "journal")

	// Reference HPWL: the same long spec run to completion, uninterrupted.
	ref := service.NewManager(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ref.Shutdown(ctx) //nolint:errcheck
	}()
	rv, err := ref.Submit(durableFleetSpec(iters))
	if err != nil {
		t.Fatal(err)
	}
	var refDone service.JobView
	for {
		refDone, err = ref.Get(rv.ID)
		if err != nil {
			t.Fatal(err)
		}
		if refDone.State.Terminal() {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}
	if refDone.State != service.StateDone || refDone.Result == nil {
		t.Fatalf("reference run ended %s", refDone.State)
	}

	// Boot 1: two durable workers on a shared resume root.
	clock := newFakeClock()
	c1 := newJournalCoordinator(t, clock, journal)
	workers := map[string]*testWorker{}
	for _, id := range []string{"wA", "wB"} {
		w := startWorker(t, id, service.Config{
			DataDir: filepath.Join(root, id), CheckpointEvery: 5, ResumeRoot: root,
		})
		workers[id] = w
		if err := c1.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
			t.Fatal(err)
		}
	}

	// A short job completes before the crash (terminal history in the journal),
	// submitted under an idempotency key so the post-crash retry can be tested.
	doneV, _, err := c1.SubmitIdem(fastSpec(50), "t1", "crash-idem-1")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c1, clock, doneV.ID, "done")

	// The long job runs past a checkpoint boundary on whichever worker
	// rendezvous picked.
	longV, _, err := c1.Submit(durableFleetSpec(iters), "t1")
	if err != nil {
		t.Fatal(err)
	}
	victim := workers[longV.Worker]
	if victim == nil {
		t.Fatalf("long job assigned to unknown worker %q", longV.Worker)
	}
	var survivor *testWorker
	for id, w := range workers {
		if id != victim.id {
			survivor = w
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		jv, err := victim.mgr.Get(longV.RemoteID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.Progress != nil && jv.Progress.Iteration >= 20 {
			break
		}
		if jv.State.Terminal() {
			t.Fatalf("long job finished before the crash: %+v", jv)
		}
		if time.Now().After(deadline) {
			t.Fatal("long job never reached iteration 20")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// kill -9 both the coordinator (abandoned, journal handle still open —
	// exactly what a dead process leaves behind) and the victim worker.
	victim.kill(t)

	// Boot 2: replay the journal.
	c2 := newJournalCoordinator(t, clock, journal)
	defer c2.Close()
	if got := c2.Telemetry().JobsRecovered.Value(); got != 1 {
		t.Errorf("JobsRecovered = %d, want 1 (only the long job was live)", got)
	}

	// Terminal history survived with its state.
	gotDone, err := c2.Get(doneV.ID)
	if err != nil {
		t.Fatalf("finished job lost across crash: %v", err)
	}
	if gotDone.State != "done" {
		t.Errorf("finished job state after replay = %s, want done", gotDone.State)
	}

	// The long job is back, flagged recovered, still naming the dead worker.
	gotLong, err := c2.Get(longV.ID)
	if err != nil {
		t.Fatalf("running job lost across crash: %v", err)
	}
	if !gotLong.Recovered || gotLong.Worker != victim.id {
		t.Fatalf("replayed long job = %+v, want recovered on %s", gotLong, victim.id)
	}

	// A submit retried across the crash with the same idempotency key must
	// return the original job, not create a duplicate.
	retryV, _, err := c2.SubmitIdem(fastSpec(50), "t1", "crash-idem-1")
	if err != nil {
		t.Fatal(err)
	}
	if retryV.ID != doneV.ID {
		t.Errorf("idempotent retry created %s, want original %s", retryV.ID, doneV.ID)
	}
	if n := len(c2.List()); n != 2 {
		t.Errorf("job table has %d jobs after idempotent retry, want 2", n)
	}

	// Within the recovery grace the coordinator waits for the dead worker.
	if err := c2.RecordHeartbeat(survivor.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	c2.Tick(clock.Now())
	if v, _ := c2.Get(longV.ID); v.Worker != victim.id {
		t.Fatalf("job rerouted before the recovery grace lapsed: %+v", v)
	}

	// Grace lapses (default 2×TTL): the orphan re-routes to the survivor
	// with a resume pointer into the dead worker's durable checkpoints.
	clock.Advance(2500 * time.Millisecond)
	if err := c2.RecordHeartbeat(survivor.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	c2.Tick(clock.Now())
	moved, err := c2.Get(longV.ID)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Worker != survivor.id || moved.Reroutes != 1 {
		t.Fatalf("after grace job is on %q (reroutes %d), want survivor %s", moved.Worker, moved.Reroutes, survivor.id)
	}
	if got := c2.Telemetry().JobsRerouted.Value(); got != 1 {
		t.Errorf("JobsRerouted = %d, want 1", got)
	}

	// The warm-started rerun completes bit-identically to the reference.
	final := waitFleetState(t, c2, clock, longV.ID, "done")
	if final.Job == nil || final.Job.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if final.Job.Result.GPIters != iters {
		t.Errorf("recovered job ran %d GP iterations, want %d", final.Job.Result.GPIters, iters)
	}
	if final.Job.Result.DPWL != refDone.Result.DPWL {
		t.Errorf("recovered HPWL = %v, want bit-identical %v (diff %g)",
			final.Job.Result.DPWL, refDone.Result.DPWL, final.Job.Result.DPWL-refDone.Result.DPWL)
	}
}

// TestCompactionConcurrentSubmitNoLoss: compaction racing live submits must
// never discard a durable record — a submit acked while the snapshot/rename
// swap is in flight has to survive a crash. Tight Retention plus heavy
// cancel churn forces multiple compactions mid-load; afterwards a second
// boot on the same journal must still hold every live acked job and its
// idempotency key.
func TestCompactionConcurrentSubmitNoLoss(t *testing.T) {
	clock := newFakeClock()
	path := filepath.Join(t.TempDir(), "journal")
	c1, err := NewCoordinator(Config{
		HeartbeatTTL: time.Second,
		PendingLimit: 1024,
		Retention:    1,
		JournalPath:  path,
		Now:          clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c1.Tick(clock.Now()) // prunes terminals and drives maybeCompact
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const submitters, perSubmitter = 4, 50
	var live [submitters][]string // acked jobs left pending (never cancelled)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				key := fmt.Sprintf("cc-%d-%d", g, i)
				v, _, err := c1.SubmitIdem(fastSpec(int64(g*1000+i)), "t1", key)
				if err != nil {
					t.Errorf("submit %s: %v", key, err)
					return
				}
				if i%10 == 0 {
					live[g] = append(live[g], v.ID)
				} else if _, err := c1.Cancel(v.ID); err != nil {
					t.Errorf("cancel %s: %v", v.ID, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	ticker.Wait()

	if since, total := c1.journal.AppendedSinceCompact(), int(c1.Telemetry().JournalRecords.Value()); since >= total {
		t.Fatalf("compaction never fired under load (appended since compact %d, total %d): test exercised nothing", since, total)
	}

	// kill -9: c1 is abandoned without Close; boot 2 replays the journal.
	c2 := newJournalCoordinator(t, clock, path)
	defer c2.Close()
	for g := range live {
		for _, id := range live[g] {
			v, err := c2.Get(id)
			if err != nil {
				t.Fatalf("acked job %s lost across compaction + crash: %v", id, err)
			}
			if v.State != "pending" {
				t.Errorf("job %s replayed as %q, want pending", id, v.State)
			}
		}
	}
	// The surviving jobs' idempotency keys still dedupe after replay.
	retry, _, err := c2.SubmitIdem(fastSpec(0), "t1", "cc-0-0")
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != live[0][0] {
		t.Errorf("post-crash idempotent retry created %s, want original %s", retry.ID, live[0][0])
	}
}

// TestJournalFailureRollbackConcurrent: when the journal cannot make an
// accept durable, the submit must be refused and rolled back completely.
// Under concurrent submits the rollback must remove the refused job itself
// (by identity), not whatever happens to sit at the tail of the submission
// order — truncation there leaks unreachable jobs and dangling order
// entries that replay and list views keep resurrecting.
func TestJournalFailureRollbackConcurrent(t *testing.T) {
	clock := newFakeClock()
	path := filepath.Join(t.TempDir(), "journal")
	c, err := NewCoordinator(Config{HeartbeatTTL: time.Second, JournalPath: path, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Break the journal the way a failed post-compaction reopen does.
	c.journal.mu.Lock()
	c.journal.f.Close()
	c.journal.f = nil
	c.journal.mu.Unlock()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v, _, err := c.SubmitIdem(fastSpec(int64(g*100+i)), "t1", fmt.Sprintf("jf-%d-%d", g, i))
				if err == nil {
					t.Errorf("submit %s acked without a durable record", v.ID)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := len(c.List()); n != 0 {
		t.Fatalf("job table holds %d jobs after refused submits, want 0", n)
	}
	c.mu.Lock()
	jobs, order, idem := len(c.jobs), len(c.order), len(c.idem)
	c.mu.Unlock()
	if jobs != 0 || order != 0 || idem != 0 {
		t.Fatalf("rollback residue: jobs=%d order=%d idem=%d, want all 0", jobs, order, idem)
	}
}

// TestSubmitIdempotencyKeyDedupe: within one boot, a retried key returns the
// same job without charging admission twice, and distinct keys create
// distinct jobs.
func TestSubmitIdempotencyKeyDedupe(t *testing.T) {
	clock := newFakeClock()
	adm, err := NewAdmission(TenantConfig{}, []TenantConfig{{Name: "ci", MaxInFlight: 2}}, clock.Now)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCoordinator(t, clock, adm)
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}

	v1, _, err := c.SubmitIdem(slowSpec(1), "ci", "key-a")
	if err != nil {
		t.Fatal(err)
	}
	// Quota is 2 and one slot is held: if the retry double-charged, the next
	// distinct submit would be rejected.
	v2, _, err := c.SubmitIdem(slowSpec(1), "ci", "key-a")
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("retried key got job %s, want %s", v2.ID, v1.ID)
	}
	v3, _, err := c.SubmitIdem(slowSpec(2), "ci", "key-b")
	if err != nil {
		t.Fatalf("distinct key rejected (retry double-charged admission?): %v", err)
	}
	if v3.ID == v1.ID {
		t.Fatal("distinct keys shared a job")
	}
	if n := len(c.List()); n != 2 {
		t.Fatalf("job table = %d jobs, want 2", n)
	}
	for _, id := range []string{v1.ID, v3.ID} {
		if _, err := c.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// fakeWorker is a minimal hand-rolled worker API for race tests: POST /jobs
// blocks until released, DELETE records the cancel, GET /jobs returns empty.
type fakeWorker struct {
	srv      *httptest.Server
	posted   chan struct{} // closed-ish signal: one token per POST arrival
	release  chan struct{} // each token lets one blocked POST respond
	posts    atomic.Int64
	cancels  atomic.Int64
	remoteID string
}

func newFakeWorker(t *testing.T, remoteID string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{
		posted:   make(chan struct{}, 16),
		release:  make(chan struct{}, 16),
		remoteID: remoteID,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		fw.posts.Add(1)
		fw.posted <- struct{}{}
		<-fw.release
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: fw.remoteID, State: service.StateQueued}) //nolint:errcheck
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fw.cancels.Add(1)
		json.NewEncoder(w).Encode(service.JobView{ID: r.PathValue("id"), State: service.StateCancelled}) //nolint:errcheck
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"jobs":[]}`)
	})
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fakeWorker) heartbeat() Heartbeat {
	return Heartbeat{ID: "fake", URL: fw.srv.URL, Stats: service.ManagerStats{PlaceWorkers: 1, QueueCap: 8}}
}

// TestCancelVsDispatchRace: a cancel that lands while the dispatch POST is
// in flight must not leave the job running on the worker. The coordinator
// notices the job went terminal while it was posting and revokes the
// assignment on the worker; the job's final state is cancelled.
func TestCancelVsDispatchRace(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	fw := newFakeWorker(t, "rw-1")
	if err := c.RecordHeartbeat(fw.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Submit(slowSpec(1), "t1") //nolint:errcheck // outcome checked via Get below
	}()

	// Wait until the dispatch POST is parked inside the fake worker, then
	// cancel through the coordinator while the assignment is still in flight.
	select {
	case <-fw.posted:
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch never reached the worker")
	}
	jobs := c.List()
	if len(jobs) != 1 {
		t.Fatalf("job table = %d jobs mid-dispatch, want 1", len(jobs))
	}
	id := jobs[0].ID
	if _, err := c.Cancel(id); err != nil {
		t.Fatal(err)
	}

	// Let the parked POST complete: the worker acks the job AFTER it was
	// cancelled. The coordinator must revoke it.
	fw.release <- struct{}{}
	<-done

	deadline := time.Now().Add(10 * time.Second)
	for fw.cancels.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never revoked the raced dispatch on the worker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "cancelled" {
		t.Fatalf("raced job state = %s, want cancelled", v.State)
	}
	if got := fw.posts.Load(); got != 1 {
		t.Fatalf("worker saw %d dispatches, want exactly 1", got)
	}
}

// TestPendingOverflowRetryAfter: with no live workers and the pending queue
// full, the HTTP API answers 429 with an integer Retry-After, and the
// overflow submit leaves no residue (its idempotency key is reusable once
// capacity exists).
func TestPendingOverflowRetryAfter(t *testing.T) {
	clock := newFakeClock()
	c, err := NewCoordinator(Config{
		HeartbeatTTL: time.Second,
		PendingLimit: 1,
		Now:          clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	api := httptest.NewServer(NewHandler(c))
	defer api.Close()

	post := func(key string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(fastSpec(1))
		req, err := http.NewRequest(http.MethodPost, api.URL+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := post("")
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202 (pending)", r1.StatusCode)
	}
	r1.Body.Close()

	r2 := post("ovf-key")
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", r2.StatusCode)
	}
	secs, err := strconv.Atoi(r2.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", r2.Header.Get("Retry-After"))
	}
	r2.Body.Close()
	if n := len(c.List()); n != 1 {
		t.Fatalf("job table = %d after overflow 429, want 1 (no residue)", n)
	}

	// Capacity appears; the SAME key must now be accepted as a fresh job —
	// the revoked accept did not poison it.
	w := startWorker(t, "w1", service.Config{})
	if err := c.RecordHeartbeat(w.heartbeat(), clock.Now()); err != nil {
		t.Fatal(err)
	}
	c.Tick(clock.Now())
	r3 := post("ovf-key")
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("retry after capacity = %d, want 202", r3.StatusCode)
	}
	r3.Body.Close()
}

// TestDispatchRetriesTransientFailure: a worker that fails its first POST
// with a 500 and accepts the retry still gets the job — one submit, one
// assignment, breaker closed again on success.
func TestDispatchRetriesTransientFailure(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	var posts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			http.Error(w, "mid-restart", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(service.JobView{ID: "rw-1", State: service.StateQueued}) //nolint:errcheck
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"jobs":[]}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	hb := Heartbeat{ID: "flaky", URL: srv.URL, Stats: service.ManagerStats{PlaceWorkers: 1, QueueCap: 8}}
	if err := c.RecordHeartbeat(hb, clock.Now()); err != nil {
		t.Fatal(err)
	}

	v, _, err := c.Submit(slowSpec(1), "t1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Worker != "flaky" {
		t.Fatalf("job not assigned through the transient failure: %+v", v)
	}
	if got := posts.Load(); got != 2 {
		t.Fatalf("worker saw %d POSTs, want 2 (fail + retry)", got)
	}
	if st := c.brk.State("flaky"); st != BreakerLive {
		t.Fatalf("breaker state after recovery = %s, want live", st)
	}
}
