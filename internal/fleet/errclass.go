package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// StatusError is returned by fleet HTTP helpers (and the tenant client) when
// the remote answered with an unexpected status, so callers can classify the
// failure as retryable or permanent instead of string-matching.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("http status %d", e.Code)
	}
	return fmt.Sprintf("http status %d: %s", e.Code, e.Msg)
}

// RetryableStatus reports whether an HTTP status code names a transient
// condition worth retrying: timeouts, pushback, and server-side errors.
// 4xx client errors (other than 408/429) are permanent — retrying a bad
// request cannot fix the request.
func RetryableStatus(code int) bool {
	switch {
	case code == 408 || code == 429:
		return true
	case code >= 500:
		return true
	default:
		return false
	}
}

// Retryable classifies an error from a fleet HTTP call when no request
// context is available. Transport-level failures — refused connections,
// resets, and timeouts, including http.Client's per-request timeout (which
// since Go 1.16 also matches errors.Is(err, context.DeadlineExceeded)) —
// are retryable: the peer may be slow or mid-restart. Explicit cancellation
// is not — the caller gave up. StatusError delegates to RetryableStatus.
// Callers that hold the request context should prefer RetryableCtx, which
// additionally tells the caller's own expired deadline from a wedged peer.
func Retryable(err error) bool { return retryable(nil, err) }

// RetryableCtx is Retryable informed by the caller's own context: once ctx
// is done nothing is retryable (the deadline or cancel belongs to the
// caller, not the peer), while a timeout with ctx still live is the
// transport giving up on a slow peer — exactly what retries are for.
func RetryableCtx(ctx context.Context, err error) bool { return retryable(ctx, err) }

func retryable(ctx context.Context, err error) bool {
	if err == nil {
		return false
	}
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return RetryableStatus(se.Code)
	}
	// Everything else out of the transport — per-request timeouts, refused
	// connections, resets, EOF mid-body, closed connections — is treated as
	// transient; callers bound the retries.
	return true
}

// Backoff produces jittered exponential delays: base·2^n with ±25% jitter,
// capped. The zero value is unusable; use NewBackoff. Safe for concurrent
// use.
type Backoff struct {
	base time.Duration
	cap  time.Duration

	mu  sync.Mutex
	n   int
	rng *rand.Rand
}

// NewBackoff builds a backoff schedule. base <= 0 defaults to 100ms, cap <=
// 0 to 30·base. seed fixes the jitter stream so tests are reproducible.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 30 * base
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay in the schedule and advances it.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.base << b.n
	if d > b.cap || d <= 0 {
		d = b.cap
	} else {
		b.n++
	}
	// ±25% jitter keeps a fleet of retriers from synchronizing.
	j := time.Duration(b.rng.Int63n(int64(d)/2+1)) - d/4
	d += j
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Reset rewinds the schedule to the base delay after a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.n = 0
	b.mu.Unlock()
}
