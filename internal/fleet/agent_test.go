package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

func TestAgentRegistersAndDeregisters(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	handler := NewHandler(c)
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "gone", http.StatusBadGateway)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()

	a := &Agent{
		Coordinator: srv.URL,
		ID:          "w1",
		URL:         "http://w1.example",
		DataDir:     "/data/w1",
		Stats:       func() service.ManagerStats { return service.ManagerStats{PlaceWorkers: 2, QueueCap: 8} },
		Interval:    5 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	wait("registration", a.Registered)
	hb, ok := c.Registry().Get("w1", clock.Now())
	if !ok || hb.URL != "http://w1.example" || hb.DataDir != "/data/w1" || hb.Stats.PlaceWorkers != 2 {
		t.Fatalf("registered heartbeat = %+v, %v", hb, ok)
	}

	// A failing coordinator clears the readiness flag; recovery restores it.
	down.Store(true)
	wait("deregistration", func() bool { return !a.Registered() })
	down.Store(false)
	wait("re-registration", a.Registered)
}

// TestAgentGracefulDeregister: the drain-time goodbye removes the worker
// from the registry immediately (no TTL wait) and is idempotent — a second
// Deregister hits 404 and still succeeds.
func TestAgentGracefulDeregister(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, clock, nil)
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	a := &Agent{Coordinator: srv.URL, ID: "w1", URL: "http://w1.example"}
	if err := c.RecordHeartbeat(Heartbeat{ID: "w1", URL: "http://w1.example"}, clock.Now()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Registry().Get("w1", clock.Now()); !ok {
		t.Fatal("worker not registered")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Deregister(ctx); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, ok := c.Registry().Get("w1", clock.Now()); ok {
		t.Fatal("worker still registered after Deregister")
	}
	if a.Registered() {
		t.Fatal("agent still reports registered")
	}
	if err := a.Deregister(ctx); err != nil {
		t.Fatalf("second Deregister should tolerate 404: %v", err)
	}
}
