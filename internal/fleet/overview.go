package fleet

import (
	"time"
)

// overviewJobCap bounds the job rows embedded in one overview document so
// the dashboard poll stays one small JSON body even on a coordinator with a
// deep retention history. Non-terminal jobs are always included; terminal
// ones fill whatever room is left, newest first.
const overviewJobCap = 64

// overviewTerminalCap bounds how many recently finished jobs ride along for
// context (the dashboard's "just completed" rows).
const overviewTerminalCap = 16

// WorkerOverview is one worker's row in the fleet overview: liveness and
// heartbeat age from the registry, capacity/queue/cache figures from the
// worker's most recent heartbeat report.
type WorkerOverview struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// Breaker is the worker's circuit-breaker state: "suspect" when recent
	// coordinator→worker calls keep failing (the worker is deprioritized for
	// dispatch), empty/"live" otherwise.
	Breaker string `json:"breaker,omitempty"`
	// HeartbeatAgeSeconds is how stale the worker's last report is; past the
	// registry TTL the worker is no longer live and its jobs get re-routed.
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	QueueDepth          int     `json:"queue_depth"`
	QueueCap            int     `json:"queue_cap"`
	Running             int     `json:"running"`
	PlaceWorkers        int     `json:"place_workers"`
	CacheEntries        int64   `json:"cache_entries,omitempty"`
	CacheBytes          int64   `json:"cache_bytes,omitempty"`
	CacheHits           int64   `json:"cache_hits,omitempty"`
	CacheNearHits       int64   `json:"cache_near_hits,omitempty"`
	CacheMisses         int64   `json:"cache_misses,omitempty"`
}

// JobOverview is one job's row: the flattened routing + progress facts a
// dashboard needs, without the full worker JobView payload.
type JobOverview struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	State  string `json:"state"`
	Worker string `json:"worker,omitempty"`
	// Iteration/HPWL/Overflow are the latest reported progress (zero until
	// the first worker sync lands).
	Iteration  int     `json:"iteration,omitempty"`
	HPWL       float64 `json:"hpwl,omitempty"`
	Overflow   float64 `json:"overflow,omitempty"`
	GuardTrips int     `json:"guard_trips,omitempty"`
	Reroutes   int     `json:"reroutes,omitempty"`
	Steals     int     `json:"steals,omitempty"`
	Cache      string  `json:"cache,omitempty"`
}

// CacheOverview aggregates the placement-result cache across every worker's
// heartbeat report.
type CacheOverview struct {
	Entries  int64 `json:"entries"`
	Bytes    int64 `json:"bytes"`
	Hits     int64 `json:"hits"`
	NearHits int64 `json:"near_hits"`
	Misses   int64 `json:"misses"`
}

// Overview is the GET /v1/fleet/overview document: one aggregated snapshot
// of the whole fleet — per-worker liveness/heartbeat age/queue depth,
// per-tenant admission accounting, cache hit rates, routing counters, and
// the active job set — so a dashboard polls a single URL instead of
// scraping every worker's /metrics page.
type Overview struct {
	GeneratedAt time.Time        `json:"generated_at"`
	Workers     []WorkerOverview `json:"workers"`
	WorkersLive int              `json:"workers_live"`
	// Pending is the coordinator-side queue of admitted jobs waiting for
	// fleet capacity.
	Pending  int            `json:"pending"`
	Tenants  []TenantStatus `json:"tenants"`
	Counters Counters       `json:"counters"`
	Cache    CacheOverview  `json:"cache"`
	// JobStates counts every retained job by state (pending, queued,
	// running, done, failed, cancelled).
	JobStates map[string]int `json:"job_states"`
	// Jobs lists every non-terminal job plus the most recently finished
	// ones, in submission order, capped (see TruncatedJobs).
	Jobs []JobOverview `json:"jobs"`
	// TruncatedJobs counts job rows dropped by the embed cap (0 = complete).
	TruncatedJobs int `json:"truncated_jobs,omitempty"`
}

// Overview builds the aggregated fleet snapshot at the coordinator's
// current clock reading.
func (c *Coordinator) Overview() Overview {
	now := c.now()
	ov := Overview{
		GeneratedAt: now,
		Tenants:     c.adm.Snapshot(),
		JobStates:   make(map[string]int),
		Counters: Counters{
			Submitted:    c.tel.JobsSubmitted.Value(),
			Rejected:     c.tel.JobsRejected.Value(),
			Assigned:     c.tel.JobsAssigned.Value(),
			Rerouted:     c.tel.JobsRerouted.Value(),
			Stolen:       c.tel.JobsStolen.Value(),
			AffinityHits: c.tel.AffinityHits.Value(),
			ParentRoutes: c.tel.ParentRoutes.Value(),
			Heartbeats:   c.tel.Heartbeats.Value(),
			Recovered:    c.tel.JobsRecovered.Value(),
		},
	}
	for _, ws := range c.reg.Snapshot() {
		age := now.Sub(ws.LastSeen).Seconds()
		if age < 0 {
			age = 0
		}
		breaker := ""
		if c.brk.Suspect(ws.ID) {
			breaker = BreakerSuspect
		}
		ov.Workers = append(ov.Workers, WorkerOverview{
			ID:                  ws.ID,
			URL:                 ws.URL,
			Live:                now.Sub(ws.LastSeen) <= c.cfg.HeartbeatTTL,
			Breaker:             breaker,
			HeartbeatAgeSeconds: age,
			QueueDepth:          ws.Stats.QueueDepth,
			QueueCap:            ws.Stats.QueueCap,
			Running:             ws.Stats.Running,
			PlaceWorkers:        ws.Stats.PlaceWorkers,
			CacheEntries:        ws.Stats.CacheEntries,
			CacheBytes:          ws.Stats.CacheBytes,
			CacheHits:           ws.Stats.CacheHits,
			CacheNearHits:       ws.Stats.CacheNearHits,
			CacheMisses:         ws.Stats.CacheMisses,
		})
	}
	for _, w := range ov.Workers {
		if w.Live {
			ov.WorkersLive++
		}
		ov.Cache.Entries += w.CacheEntries
		ov.Cache.Bytes += w.CacheBytes
		ov.Cache.Hits += w.CacheHits
		ov.Cache.NearHits += w.CacheNearHits
		ov.Cache.Misses += w.CacheMisses
	}

	c.mu.Lock()
	ov.Pending = len(c.pending)
	// Walk newest-first so the caps keep the most recent activity, then
	// reverse back into submission order.
	var rows []JobOverview
	terminal := 0
	for i := len(c.order) - 1; i >= 0; i-- {
		j := c.order[i]
		ov.JobStates[j.state]++
		if len(rows) >= overviewJobCap || (j.terminal && terminal >= overviewTerminalCap) {
			ov.TruncatedJobs++
			continue
		}
		if j.terminal {
			terminal++
		}
		row := JobOverview{
			ID:       j.id,
			Tenant:   j.tenant,
			Class:    j.class.String(),
			State:    j.state,
			Worker:   j.worker,
			Reroutes: j.reroutes,
			Steals:   j.steals,
		}
		if v := j.last; v != nil {
			row.Cache = v.Cache
			if v.Progress != nil {
				row.Iteration = v.Progress.Iteration
				row.HPWL = v.Progress.HPWL
				row.Overflow = v.Progress.Overflow
			}
			if v.Guard != nil {
				row.GuardTrips = v.Guard.Trips
			}
			if v.Result != nil {
				// Finished jobs report their final quality even after the
				// live progress block is gone.
				row.HPWL = v.Result.GPWL
				row.Overflow = v.Result.Overflow
				row.Iteration = v.Result.GPIters
			}
		}
		rows = append(rows, row)
	}
	c.mu.Unlock()
	for i, k := 0, len(rows)-1; i < k; i, k = i+1, k-1 {
		rows[i], rows[k] = rows[k], rows[i]
	}
	ov.Jobs = rows
	return ov
}
