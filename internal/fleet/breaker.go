package fleet

import (
	"sync"
	"time"
)

// Breaker state names, as exported on /metrics and /v1/fleet/overview.
const (
	BreakerLive    = "live"
	BreakerSuspect = "suspect"
)

// breakerSet tracks a per-worker circuit breaker with one intermediate
// state between live and dead: suspect. A worker that keeps heartbeating
// but fails dispatches (wedged listener, dying disk) trips to suspect
// after Threshold consecutive call failures; suspect workers are still
// eligible for work but are tried last, so each dispatch doubles as a
// half-open probe. Any successful call — or Reset elapsing since the last
// failure — closes the breaker. Death stays the registry's business: TTL
// expiry removes the worker (and its breaker entry) entirely.
type breakerSet struct {
	threshold int
	reset     time.Duration
	now       func() time.Time

	mu      sync.Mutex
	entries map[string]*breakerEntry
}

type breakerEntry struct {
	failures int
	lastFail time.Time
}

func newBreakerSet(threshold int, reset time.Duration, now func() time.Time) *breakerSet {
	if threshold <= 0 {
		threshold = 3
	}
	if reset <= 0 {
		reset = 30 * time.Second
	}
	return &breakerSet{
		threshold: threshold,
		reset:     reset,
		now:       now,
		entries:   make(map[string]*breakerEntry),
	}
}

// Failure records one failed call to the worker and reports whether the
// breaker is now open (suspect).
func (b *breakerSet) Failure(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[id]
	if e == nil {
		e = &breakerEntry{}
		b.entries[id] = e
	}
	e.failures++
	e.lastFail = b.now()
	return e.failures >= b.threshold
}

// Success records one successful call, closing the breaker.
func (b *breakerSet) Success(id string) {
	b.mu.Lock()
	delete(b.entries, id)
	b.mu.Unlock()
}

// Forget drops all state for a worker that left the fleet.
func (b *breakerSet) Forget(id string) {
	b.mu.Lock()
	delete(b.entries, id)
	b.mu.Unlock()
}

// Suspect reports whether the worker's breaker is open. Entries decay back
// to live once reset has elapsed since the last failure, so a worker that
// went quiet (no dispatches to probe it) isn't penalized forever.
func (b *breakerSet) Suspect(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[id]
	if e == nil || e.failures < b.threshold {
		return false
	}
	if b.now().Sub(e.lastFail) >= b.reset {
		delete(b.entries, id)
		return false
	}
	return true
}

// State returns the exported state string for a worker.
func (b *breakerSet) State(id string) string {
	if b.Suspect(id) {
		return BreakerSuspect
	}
	return BreakerLive
}

// Suspects returns how many workers are currently suspect.
func (b *breakerSet) Suspects() int {
	b.mu.Lock()
	ids := make([]string, 0, len(b.entries))
	for id := range b.entries {
		ids = append(ids, id)
	}
	b.mu.Unlock()
	n := 0
	for _, id := range ids {
		if b.Suspect(id) {
			n++
		}
	}
	return n
}
