package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Class is a tenant priority class. Lower values dispatch first when the
// fleet is saturated and the coordinator is draining its pending queue.
type Class int

const (
	// ClassProd is interactive/production traffic: first to dispatch.
	ClassProd Class = iota
	// ClassBatch is the default class for throughput traffic.
	ClassBatch
	// ClassFree is best-effort traffic: dispatched only after everyone else.
	ClassFree
)

// String returns the class's wire name.
func (c Class) String() string {
	switch c {
	case ClassProd:
		return "prod"
	case ClassFree:
		return "free"
	default:
		return "batch"
	}
}

// ParseClass resolves a class name ("" means batch).
func ParseClass(s string) (Class, error) {
	switch s {
	case "prod":
		return ClassProd, nil
	case "", "batch":
		return ClassBatch, nil
	case "free":
		return ClassFree, nil
	}
	return ClassBatch, fmt.Errorf("fleet: unknown priority class %q (want prod, batch, or free)", s)
}

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	Name string `json:"name"`
	// Class is the priority class: "prod", "batch" (default), or "free".
	Class string `json:"class,omitempty"`
	// Rate is the sustained submit rate in jobs/second replenishing the
	// tenant's token bucket; 0 disables rate limiting.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (max submits absorbed at once);
	// defaults to max(1, ceil(Rate)).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's jobs that are pending or running
	// anywhere in the fleet (the queue quota); 0 disables the quota.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// Admission errors. The coordinator maps both onto HTTP 429 with a
// Retry-After header.
var (
	ErrRateLimited    = errors.New("fleet: tenant rate limit exceeded")
	ErrQuotaExhausted = errors.New("fleet: tenant in-flight quota exhausted")
)

// tenantState is one tenant's live bucket and quota accounting, plus the
// cumulative admission outcome counters the fleet overview reports.
type tenantState struct {
	cfg      TenantConfig
	class    Class
	tokens   float64
	last     time.Time
	inFlight int

	admitted      int64
	rejectedRate  int64
	rejectedQuota int64
}

// Admission enforces per-tenant token-bucket rate limits and in-flight
// quotas. The clock is injectable so tests drive refill deterministically.
type Admission struct {
	defaults TenantConfig
	now      func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewAdmission builds an admission controller. Tenants not in the list get
// the defaults policy (zero-valued defaults admit everything). A nil now
// uses the wall clock.
func NewAdmission(defaults TenantConfig, tenants []TenantConfig, now func() time.Time) (*Admission, error) {
	if now == nil {
		now = time.Now
	}
	a := &Admission{defaults: defaults, now: now, tenants: make(map[string]*tenantState)}
	for _, tc := range tenants {
		if tc.Name == "" {
			return nil, errors.New("fleet: tenant config with empty name")
		}
		if tc.Rate < 0 || tc.Burst < 0 || tc.MaxInFlight < 0 {
			return nil, fmt.Errorf("fleet: tenant %q has negative rate/burst/quota", tc.Name)
		}
		st, err := newTenantState(tc, a.now())
		if err != nil {
			return nil, err
		}
		a.tenants[tc.Name] = st
	}
	if _, err := ParseClass(defaults.Class); err != nil {
		return nil, err
	}
	return a, nil
}

func newTenantState(tc TenantConfig, now time.Time) (*tenantState, error) {
	class, err := ParseClass(tc.Class)
	if err != nil {
		return nil, fmt.Errorf("fleet: tenant %q: %w", tc.Name, err)
	}
	if tc.Burst <= 0 && tc.Rate > 0 {
		tc.Burst = int(math.Max(1, math.Ceil(tc.Rate)))
	}
	return &tenantState{cfg: tc, class: class, tokens: float64(tc.Burst), last: now}, nil
}

// state returns (lazily creating) the tenant's accounting record.
func (a *Admission) state(tenant string) *tenantState {
	st, ok := a.tenants[tenant]
	if !ok {
		cfg := a.defaults
		cfg.Name = tenant
		st, _ = newTenantState(cfg, a.now()) // defaults.Class already validated
		a.tenants[tenant] = st
	}
	return st
}

// Admit charges one submission to the tenant. On success the tenant's
// in-flight count is incremented (balance it with Release when the job
// reaches a terminal state). On rejection it returns ErrRateLimited or
// ErrQuotaExhausted plus how long the caller should wait before retrying —
// the coordinator turns that into a 429 with a Retry-After header.
func (a *Admission) Admit(tenant string) (time.Duration, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	now := a.now()
	if st.cfg.Rate > 0 {
		st.tokens = math.Min(float64(st.cfg.Burst), st.tokens+now.Sub(st.last).Seconds()*st.cfg.Rate)
	}
	st.last = now
	if st.cfg.MaxInFlight > 0 && st.inFlight >= st.cfg.MaxInFlight {
		// The quota frees when a job finishes; without visibility into run
		// times, advise a one-second poll.
		st.rejectedQuota++
		return time.Second, ErrQuotaExhausted
	}
	if st.cfg.Rate > 0 {
		if st.tokens < 1 {
			wait := time.Duration((1 - st.tokens) / st.cfg.Rate * float64(time.Second))
			st.rejectedRate++
			return wait, ErrRateLimited
		}
		st.tokens--
	}
	st.inFlight++
	st.admitted++
	return 0, nil
}

// Adopt re-occupies one in-flight slot without charging the tenant's rate
// bucket or admission counters: journal recovery re-seating jobs that were
// admitted by a previous coordinator incarnation.
func (a *Admission) Adopt(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state(tenant).inFlight++
}

// Release returns one in-flight slot to the tenant (its job reached a
// terminal state or was never dispatched).
func (a *Admission) Release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	if st.inFlight > 0 {
		st.inFlight--
	}
}

// Class returns the tenant's priority class.
func (a *Admission) Class(tenant string) Class {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state(tenant).class
}

// InFlight returns the tenant's current in-flight count (for status pages
// and tests).
func (a *Admission) InFlight(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state(tenant).inFlight
}

// TenantStatus is one tenant's row in the fleet overview's admission panel:
// the configured policy next to the live accounting, so an operator can see
// at a glance who is saturating their quota and who is being pushed back.
type TenantStatus struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// InFlight / MaxInFlight are the live quota occupancy (MaxInFlight 0
	// means unlimited).
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Rate/Burst echo the token-bucket policy (Rate 0 = unlimited).
	Rate  float64 `json:"rate,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// Admitted counts successful admissions; RejectedRate and RejectedQuota
	// split the tenant's 429s by cause.
	Admitted      int64 `json:"admitted"`
	RejectedRate  int64 `json:"rejected_rate,omitempty"`
	RejectedQuota int64 `json:"rejected_quota,omitempty"`
}

// Snapshot returns every tenant seen so far, sorted by name, for the fleet
// overview document.
func (a *Admission) Snapshot() []TenantStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantStatus, 0, len(a.tenants))
	for name, st := range a.tenants {
		out = append(out, TenantStatus{
			Name:          name,
			Class:         st.class.String(),
			InFlight:      st.inFlight,
			MaxInFlight:   st.cfg.MaxInFlight,
			Rate:          st.cfg.Rate,
			Burst:         st.cfg.Burst,
			Admitted:      st.admitted,
			RejectedRate:  st.rejectedRate,
			RejectedQuota: st.rejectedQuota,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
