package fleet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/service"
)

func hb(id string) Heartbeat { return Heartbeat{ID: id, URL: "http://" + id} }

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(time.Second)
	t0 := time.Unix(1000, 0)

	if !r.Update(hb("w1"), t0) {
		t.Error("first Update should report a new worker")
	}
	if r.Update(hb("w1"), t0.Add(100*time.Millisecond)) {
		t.Error("second Update should not report a new worker")
	}
	r.Update(hb("w2"), t0)

	if live := r.Live(t0.Add(500 * time.Millisecond)); len(live) != 2 {
		t.Fatalf("Live = %d workers, want 2", len(live))
	}
	// w2's heartbeat ages out; w1 stays fresh.
	r.Update(hb("w1"), t0.Add(time.Second))
	dead := r.Expire(t0.Add(1500 * time.Millisecond))
	if len(dead) != 1 || dead[0].ID != "w2" {
		t.Fatalf("Expire = %+v, want [w2]", dead)
	}
	if live := r.Live(t0.Add(1500 * time.Millisecond)); len(live) != 1 || live[0].ID != "w1" {
		t.Fatalf("Live after expiry = %+v, want [w1]", live)
	}
	if _, ok := r.Get("w2", t0.Add(1500*time.Millisecond)); ok {
		t.Error("Get(w2) after expiry should miss")
	}
	// An expired worker that heartbeats again re-registers as new.
	if !r.Update(hb("w2"), t0.Add(2*time.Second)) {
		t.Error("re-registration after expiry should report a new worker")
	}
}

func TestSpecKeyIgnoresResume(t *testing.T) {
	spec := service.JobSpec{
		Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64, Seed: 1}},
		Model:  "WA",
	}
	k1 := SpecKey(spec)
	withResume := spec
	withResume.Resume = &service.ResumeSpec{Dir: "/somewhere/else"}
	if k2 := SpecKey(withResume); k2 != k1 {
		t.Errorf("SpecKey changed with resume block: %d vs %d (a re-routed job must keep its key)", k2, k1)
	}
	other := spec
	other.Design.Synth = &service.SynthSpec{Cells: 128, Seed: 1}
	if SpecKey(other) == k1 {
		t.Error("different designs should not collide on the same key")
	}
}

func TestRankDeterministicAndStable(t *testing.T) {
	workers := []Heartbeat{hb("w1"), hb("w2"), hb("w3"), hb("w4")}
	key := SpecKey(service.JobSpec{Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64}}})

	r1 := Rank(key, workers)
	r2 := Rank(key, workers)
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatalf("Rank not deterministic: %v vs %v", r1, r2)
		}
	}

	// Rendezvous stability: removing one worker must not change the relative
	// order of the survivors (only jobs on the removed worker remap).
	removed := r1[2].ID
	var rest []Heartbeat
	for _, w := range workers {
		if w.ID != removed {
			rest = append(rest, w)
		}
	}
	r3 := Rank(key, rest)
	var want []string
	for _, w := range r1 {
		if w.ID != removed {
			want = append(want, w.ID)
		}
	}
	for i := range r3 {
		if r3[i].ID != want[i] {
			t.Fatalf("removing %s reshuffled survivors: got %v, want %v", removed, r3, want)
		}
	}

	// Different keys should not all agree on the top worker (spread check
	// over a handful of keys; rendezvous makes collisions astronomically
	// unlikely to all line up).
	tops := map[string]bool{}
	for seed := int64(0); seed < 16; seed++ {
		k := SpecKey(service.JobSpec{Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64, Seed: seed}}})
		tops[Rank(k, workers)[0].ID] = true
	}
	if len(tops) < 2 {
		t.Errorf("16 distinct keys all ranked the same worker first: no spread")
	}
}

func TestAffinityBounded(t *testing.T) {
	a := NewAffinity(2)
	a.Set(1, "w1")
	a.Set(2, "w2")
	a.Set(3, "w3") // evicts key 1
	if _, ok := a.Get(1); ok {
		t.Error("key 1 should have been evicted at cap 2")
	}
	if id, ok := a.Get(3); !ok || id != "w3" {
		t.Errorf("Get(3) = %q,%v", id, ok)
	}
	a.Drop(3)
	if _, ok := a.Get(3); ok {
		t.Error("Drop should remove the entry")
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	adm, err := NewAdmission(TenantConfig{}, []TenantConfig{
		{Name: "ci", Rate: 1, Burst: 2},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}

	// Burst of 2 admits immediately, the third is rate-limited with a
	// positive retry hint.
	for i := 0; i < 2; i++ {
		if wait, err := adm.Admit("ci"); err != nil {
			t.Fatalf("Admit %d: %v (wait %s)", i, err, wait)
		}
	}
	wait, err := adm.Admit("ci")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third Admit err = %v, want ErrRateLimited", err)
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("retry hint = %s, want (0, 1s]", wait)
	}

	// After the advertised wait the bucket has refilled exactly one token.
	now = now.Add(wait)
	if _, err := adm.Admit("ci"); err != nil {
		t.Fatalf("Admit after waiting the hint: %v", err)
	}
	if _, err := adm.Admit("ci"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket should be empty again, got %v", err)
	}
}

func TestAdmissionQuota(t *testing.T) {
	adm, err := NewAdmission(TenantConfig{}, []TenantConfig{
		{Name: "ci", MaxInFlight: 2},
	}, func() time.Time { return time.Unix(5000, 0) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := adm.Admit("ci"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := adm.Admit("ci"); !errors.Is(err, ErrQuotaExhausted) {
		t.Fatalf("Admit over quota err = %v, want ErrQuotaExhausted", err)
	}
	if got := adm.InFlight("ci"); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	adm.Release("ci")
	if _, err := adm.Admit("ci"); err != nil {
		t.Fatalf("Admit after Release: %v", err)
	}
	// Unknown tenants fall back to the (unlimited) defaults policy.
	if _, err := adm.Admit("someone-else"); err != nil {
		t.Fatalf("default-policy Admit: %v", err)
	}
}

func TestAdmissionClassesAndValidation(t *testing.T) {
	adm, err := NewAdmission(TenantConfig{Class: "free"}, []TenantConfig{
		{Name: "interactive", Class: "prod"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := adm.Class("interactive"); got != ClassProd {
		t.Errorf("Class(interactive) = %v, want prod", got)
	}
	if got := adm.Class("anyone"); got != ClassFree {
		t.Errorf("Class(anyone) = %v, want free (the defaults class)", got)
	}

	if _, err := NewAdmission(TenantConfig{}, []TenantConfig{{Name: "x", Class: "vip"}}, nil); err == nil {
		t.Error("unknown class should be rejected")
	}
	if _, err := NewAdmission(TenantConfig{}, []TenantConfig{{Name: "", Rate: 1}}, nil); err == nil {
		t.Error("empty tenant name should be rejected")
	}
	if _, err := NewAdmission(TenantConfig{}, []TenantConfig{{Name: "x", Rate: -1}}, nil); err == nil {
		t.Error("negative rate should be rejected")
	}
	if c, err := ParseClass(""); err != nil || c != ClassBatch {
		t.Errorf("ParseClass(\"\") = %v, %v, want batch", c, err)
	}
}
