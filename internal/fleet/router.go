package fleet

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/service"
)

// SpecKey fingerprints a job spec for routing: identical specs (same design
// source, model, placer knobs) hash to the same key, so a resubmitted design
// ranks the same workers — and hits the checkpoint-affinity map — no matter
// which client sends it. The resume block is excluded: a re-routed copy of a
// job (which carries a resume pointer) must keep the original's key. The
// parent reference is excluded too — it is rewritten to a worker-local job ID
// during routing, and an ECO child adopts its parent's key outright so it
// lands on the node holding the parent's cached placement.
func SpecKey(spec service.JobSpec) uint64 {
	spec.Resume = nil
	spec.Parent = ""
	data, err := json.Marshal(spec)
	if err != nil {
		return 0 // unreachable for a decoded spec; 0 just degrades ranking
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

// rendezvousScore mixes a job key with a worker identity. Highest score
// wins (highest-random-weight hashing): every job has its own independent
// preference order over workers, so load spreads evenly, and removing a
// worker only remaps the jobs that preferred it.
func rendezvousScore(key uint64, workerID string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	h.Write(buf[:])
	h.Write([]byte(workerID))
	return h.Sum64()
}

// Rank orders workers for a job key by descending rendezvous score (ties
// broken by ID for determinism). The coordinator tries candidates in this
// order until one accepts the job.
func Rank(key uint64, workers []Heartbeat) []Heartbeat {
	out := append([]Heartbeat(nil), workers...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := rendezvousScore(key, out[a].ID), rendezvousScore(key, out[b].ID)
		if sa != sb {
			return sa > sb
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Affinity remembers which worker most recently held a spec key's
// checkpoints, overriding rendezvous ranking for resubmitted designs: the
// node that already has the snapshot warm-starts instead of replaying the
// whole Nesterov loop. Bounded FIFO so a long-lived coordinator cannot grow
// without limit.
type Affinity struct {
	cap int

	mu    sync.Mutex
	m     map[uint64]string
	order []uint64
}

// NewAffinity creates an affinity map retaining at most cap entries
// (default 4096 when cap <= 0).
func NewAffinity(cap int) *Affinity {
	if cap <= 0 {
		cap = 4096
	}
	return &Affinity{cap: cap, m: make(map[uint64]string)}
}

// Set records that worker holds the freshest checkpoints for key.
func (a *Affinity) Set(key uint64, workerID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.m[key]; !ok {
		a.order = append(a.order, key)
		if len(a.order) > a.cap {
			delete(a.m, a.order[0])
			a.order = a.order[1:]
		}
	}
	a.m[key] = workerID
}

// Get returns the affine worker for key, if any.
func (a *Affinity) Get(key uint64) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.m[key]
	return id, ok
}

// Drop removes key's affinity (used when the affine worker died, so stale
// entries do not keep steering submissions at a ghost).
func (a *Affinity) Drop(key uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.m, key)
}
