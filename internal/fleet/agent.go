package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Agent is the worker side of the fleet protocol: a heartbeat loop that
// registers a placerd node with the coordinator and keeps its capacity and
// queue-depth report fresh. The agent is deliberately dumb — all routing
// and re-routing intelligence lives in the coordinator; a worker only
// reports and serves its normal HTTP API.
type Agent struct {
	// Coordinator is the coordinator base URL (e.g. http://coord:7878).
	Coordinator string
	// ID is this worker's stable identity.
	ID string
	// URL is the advertised base URL of this worker's placerd API.
	URL string
	// DataDir is the durable store root advertised for checkpoint handoff
	// ("" when the store is private to this node).
	DataDir string
	// Stats supplies the live capacity/load snapshot for each heartbeat.
	Stats func() service.ManagerStats
	// Interval is the heartbeat period (default 1s).
	Interval time.Duration
	// Client is the HTTP client (nil: 5s timeout default).
	Client *http.Client
	// Log receives agent events; nil disables logging.
	Log *obs.Logger

	registered atomic.Bool
}

// Registered reports whether the most recent heartbeat was acknowledged —
// the worker's fleet-readiness signal.
func (a *Agent) Registered() bool { return a.registered.Load() }

// Run sends heartbeats until ctx ends. The first successful beat flips
// Registered, and every beat re-registers, so a restarted coordinator heals
// automatically on the next success. Failures back off with jittered
// exponential delays (capped at 16× the interval) instead of hammering a
// coordinator that is down or mid-restart; the first success snaps the
// cadence back to the configured interval.
func (a *Agent) Run(ctx context.Context) {
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	backoff := NewBackoff(interval, 16*interval, rand.Int63())
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		delay := interval
		if err := a.beat(ctx, client); err != nil {
			delay = backoff.Next()
			if a.registered.Swap(false) {
				a.Log.Warn("heartbeat failed, deregistered", "err", err, "retry_in", delay)
			}
		} else {
			backoff.Reset()
			if !a.registered.Swap(true) {
				a.Log.Info("registered with coordinator", "coordinator", a.Coordinator, "id", a.ID)
			}
		}
		timer.Reset(delay)
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
	}
}

// Deregister tells the coordinator this worker is draining: its registry
// entry drops immediately and its jobs re-route (with resume pointers into
// the drained checkpoints) without waiting out the heartbeat TTL. Called by
// placerd after its manager finishes the shutdown drain; ctx bounds the
// goodbye so a dead coordinator cannot stall the exit.
func (a *Agent) Deregister(ctx context.Context) error {
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	a.registered.Store(false)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		a.Coordinator+"/v1/workers/"+url.PathEscape(a.ID), nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("fleet: deregister: %w", &StatusError{Code: resp.StatusCode})
	}
	a.Log.Info("deregistered from coordinator", "coordinator", a.Coordinator, "id", a.ID)
	return nil
}

// beat posts one heartbeat.
func (a *Agent) beat(ctx context.Context, client *http.Client) error {
	hb := Heartbeat{ID: a.ID, URL: a.URL, DataDir: a.DataDir}
	if a.Stats != nil {
		hb.Stats = a.Stats()
	}
	body, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.Coordinator+"/v1/workers/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: heartbeat status %d", resp.StatusCode)
	}
	return nil
}
