package fleet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/service"
)

// The coordinator's job journal is an append-only record of every job-state
// transition that matters for crash recovery, framed with the same codec
// discipline as the checkpoint store (internal/checkpoint): a magic+version
// header, then length-prefixed records each guarded by a CRC-32C of the
// payload. Replay stops at the first bad frame — a torn tail from a crash
// mid-append loses at most the record being written, never the prefix — and
// the file is truncated back to the last good frame before appending
// resumes.
const (
	journalMagic   = "MEGPJRNL"
	journalVersion = 1
	// journalMaxRecord bounds one frame so a corrupt length prefix cannot
	// drive a huge allocation during replay.
	journalMaxRecord = 4 << 20
)

// Journal file-format errors. A torn tail is NOT an error (it is the
// expected crash artifact); these fire only when the file is not a journal
// at all.
var (
	ErrJournalMagic   = errors.New("fleet: journal has wrong magic")
	ErrJournalVersion = errors.New("fleet: unsupported journal version")
)

// errJournalBroken marks a journal whose handle was lost (the reopen after a
// compaction rename failed): appends must fail loudly rather than fsync into
// the unlinked pre-compaction inode.
var errJournalBroken = errors.New("fleet: journal broken (reopen after compaction failed)")

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// Journal record kinds, in the order a job's life emits them.
const (
	recAccepted = "accepted" // job admitted: spec, tenant, idempotency key
	recAssigned = "assigned" // job placed on a worker (also after a steal)
	recRerouted = "rerouted" // assignment cleared; optional resume pointer
	recTerminal = "terminal" // job reached done/failed/cancelled
	recMeta     = "meta"     // compaction header: sequence floor
)

// journalRecord is one framed JSON payload. A single struct covers every
// kind; unused fields are omitted on the wire.
type journalRecord struct {
	Kind      string           `json:"kind"`
	Job       string           `json:"job,omitempty"`
	Tenant    string           `json:"tenant,omitempty"`
	Class     string           `json:"class,omitempty"`
	IdemKey   string           `json:"idem,omitempty"`
	Key       uint64           `json:"key,omitempty"`
	Spec      *service.JobSpec `json:"spec,omitempty"`
	Submitted time.Time        `json:"submitted"`
	Worker    string           `json:"worker,omitempty"`
	WorkerURL string           `json:"worker_url,omitempty"`
	RemoteID  string           `json:"remote_id,omitempty"`
	DataDir   string           `json:"data_dir,omitempty"`
	ResumeDir string           `json:"resume_dir,omitempty"`
	State     string           `json:"state,omitempty"`
	Seq       int64            `json:"seq,omitempty"`
}

// Journal is the append-only, CRC-checked transition log backing coordinator
// crash recovery. Safe for concurrent use; every append is fsynced so an
// acknowledged submit survives kill -9.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	appended int // records appended since open/compact (compaction trigger)
}

// openJournal opens (creating if needed) the journal at path, replays every
// intact record, truncates away any torn tail, and leaves the file ready for
// appends. The returned records are in append order.
func openJournal(path string) (*Journal, []journalRecord, error) {
	recs, validLen, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if validLen == 0 {
		// Fresh (or empty) file: stamp the header.
		hdr := make([]byte, 0, len(journalMagic)+4)
		hdr = append(hdr, journalMagic...)
		hdr = binary.LittleEndian.AppendUint32(hdr, journalVersion)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else {
		// Drop the torn tail (no-op when the file ended cleanly) and position
		// at the end of the last good frame.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &Journal{path: path, f: f}, recs, nil
}

// readJournal scans the file, returning every intact record and the byte
// offset of the end of the last good frame. A missing file yields (nil, 0).
func readJournal(path string) ([]journalRecord, int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	hdr := make([]byte, len(journalMagic)+4)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, nil // shorter than a header: treat as empty
	}
	if string(hdr[:len(journalMagic)]) != journalMagic {
		return nil, 0, fmt.Errorf("%w: %q", ErrJournalMagic, hdr[:len(journalMagic)])
	}
	if v := binary.LittleEndian.Uint32(hdr[len(journalMagic):]); v != journalVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrJournalVersion, v)
	}
	var recs []journalRecord
	valid := int64(len(hdr))
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			return recs, valid, nil
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if n == 0 || n > journalMaxRecord {
			return recs, valid, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, valid, nil
		}
		if crc32.Checksum(payload, journalCRC) != sum {
			return recs, valid, nil
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(8 + n)
	}
}

// Append frames, writes, and fsyncs one record.
func (j *Journal) Append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, journalCRC))
	buf = append(buf, payload...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errJournalBroken
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.appended++
	return nil
}

// AppendedSinceCompact reports how many records landed since the journal was
// opened or last compacted — the coordinator's compaction trigger.
func (j *Journal) AppendedSinceCompact() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Compact atomically replaces the journal with a snapshot of the given
// records (temp file + fsync + rename, like every durable write in this
// repo), then reopens for appends. The snapshot is the coordinator's live
// job table re-serialized, so replay cost stays proportional to retained
// jobs instead of total history.
func (j *Journal) Compact(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	buf = append(buf, journalMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, journalVersion)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, journalCRC))
		buf = append(buf, payload...)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already installed the snapshot, but without a handle on
		// it the only open descriptor points at the unlinked pre-compaction
		// inode: a write through it would fsync into a deleted file and every
		// later "durable" transition would be a lie. Mark the journal broken
		// so Append fails loudly and the coordinator's refuse-on-append-
		// failure path engages instead of acking non-durable writes.
		old.Close()
		j.f = nil
		return err
	}
	old.Close()
	j.f = nf
	j.appended = 0
	return nil
}

// Close releases the file handle. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
