package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/telemetry"
)

// ErrSaturated means admission passed but no worker could take the job and
// the coordinator's pending queue is full. Mapped to 429 + Retry-After.
var ErrSaturated = errors.New("fleet: cluster is saturated")

// ErrUnknownJob mirrors the worker-side error for the fleet job table.
var ErrUnknownJob = errors.New("fleet: unknown job")

// Config tunes a Coordinator.
type Config struct {
	// HeartbeatTTL is how long a worker stays live without a heartbeat
	// (default 5s). Expiry is the failure detector: jobs on an expired
	// worker are re-routed.
	HeartbeatTTL time.Duration
	// PendingLimit bounds the coordinator-side queue of admitted jobs
	// waiting for fleet capacity (default 256).
	PendingLimit int
	// Retention caps retained terminal job records (default 1024).
	Retention int
	// Admission is the multi-tenant admission controller; nil admits
	// everything (a zero-valued policy for every tenant).
	Admission *Admission
	// Telemetry receives fleet metrics; nil allocates a private collector.
	Telemetry *telemetry.FleetCollector
	// Log receives coordinator events; nil disables logging.
	Log *obs.Logger
	// Client is the HTTP client for worker control calls (submit, status,
	// cancel); nil uses a 10-second-timeout default. Trajectory streaming
	// uses a separate timeout-free client bound to the request context.
	Client *http.Client
	// Now is the clock (tests inject a fake one); nil uses time.Now.
	Now func() time.Time
	// JournalPath, when non-empty, enables the crash-safe job journal: every
	// accepted/assigned/rerouted/terminal transition is appended (CRC-framed,
	// fsynced) and replayed at boot, so a coordinator restart loses no
	// accepted job. Empty keeps the coordinator purely in-memory.
	JournalPath string
	// DispatchRetries is how many extra attempts a retryable dispatch error
	// gets on the same worker before moving to the next candidate (default 1).
	DispatchRetries int
	// DispatchBackoff is the base delay of the jittered backoff between
	// dispatch retries (default 50ms; tests shrink it).
	DispatchBackoff time.Duration
	// BreakerThreshold is how many consecutive failed calls trip a worker's
	// circuit breaker to "suspect" (default 3).
	BreakerThreshold int
	// BreakerReset is how long a suspect worker stays suspect with no
	// further failures before decaying back to live (default 30s).
	BreakerReset time.Duration
	// RecoveryGrace is how long after boot a journal-recovered assignment
	// waits for its worker to re-heartbeat before being treated as dead and
	// re-routed (default 2×HeartbeatTTL).
	RecoveryGrace time.Duration
	// Sleep is the dispatch-retry sleeper; nil uses time.Sleep (tests
	// inject a no-op so retries don't slow the suite).
	Sleep func(time.Duration)
}

// fleetJob is the coordinator's record of one submitted job. All mutable
// fields are guarded by the coordinator's mu; assignment transitions happen
// on the submit path (fresh records) or inside Tick, never concurrently for
// the same record.
type fleetJob struct {
	id        string
	tenant    string
	class     Class
	spec      service.JobSpec
	key       uint64
	submitted time.Time
	idemKey   string // client idempotency key ("" = none)

	state       string // "pending" until assigned, then the worker-reported state
	worker      string
	workerURL   string
	remoteID    string
	dataDir     string // assigned worker's durable store root (journaled for post-crash reroute)
	last        *service.JobView
	affinityHit bool
	reroutes    int
	steals      int
	terminal    bool
	released    bool
	// recovered marks a journal-replayed assignment awaiting reconciliation:
	// re-adopted when its worker re-heartbeats, re-routed after the grace.
	recovered bool
}

// JobView is the fleet API's JSON snapshot of one job: coordinator routing
// metadata plus the latest proxied worker view.
type JobView struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	// State is "pending" while the job waits for fleet capacity, then the
	// worker-reported lifecycle state (queued, running, done, ...).
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	RemoteID string `json:"remote_id,omitempty"`
	// AffinityHit marks a submission routed to the worker already holding
	// checkpoints for the same spec.
	AffinityHit bool `json:"affinity_hit,omitempty"`
	// Reroutes counts moves off dead workers; Steals counts queue steals.
	Reroutes int `json:"reroutes,omitempty"`
	Steals   int `json:"steals,omitempty"`
	// Recovered marks a job reconstructed from the journal after a
	// coordinator restart and not yet reconciled with its worker.
	Recovered   bool             `json:"recovered,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	Job         *service.JobView `json:"job,omitempty"`
}

// Coordinator owns the fleet: worker registry, router state, admission
// controller, and the job table mapping fleet job IDs to worker-local ones.
type Coordinator struct {
	cfg      Config
	reg      *Registry
	aff      *Affinity
	adm      *Admission
	tel      *telemetry.FleetCollector
	log      *obs.Logger
	client   *http.Client
	stream   *http.Client
	now      func() time.Time
	sleep    func(time.Duration)
	brk      *breakerSet
	journal  *Journal
	bootedAt time.Time
	dseed    atomic.Int64 // dispatch-retry jitter seeds

	mu      sync.Mutex
	jobs    map[string]*fleetJob
	order   []*fleetJob
	pending []*fleetJob
	idem    map[string]string // idempotency key -> fleet job ID
	seq     int64
}

// NewCoordinator builds a coordinator from cfg. With a JournalPath it also
// opens (or creates) the job journal and replays it: terminal jobs come back
// as history, pending jobs re-enter the dispatch queue, and assigned jobs
// wait for their worker to re-heartbeat (re-adoption) or for the recovery
// grace to lapse (re-route through the dead worker's checkpoints).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = 5 * time.Second
	}
	if cfg.PendingLimit <= 0 {
		cfg.PendingLimit = 256
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 1024
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewFleetCollector()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Admission == nil {
		cfg.Admission, _ = NewAdmission(TenantConfig{}, nil, cfg.Now) // zero policy never errors
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.DispatchRetries <= 0 {
		cfg.DispatchRetries = 1
	}
	if cfg.DispatchBackoff <= 0 {
		cfg.DispatchBackoff = 50 * time.Millisecond
	}
	if cfg.RecoveryGrace <= 0 {
		cfg.RecoveryGrace = 2 * cfg.HeartbeatTTL
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	c := &Coordinator{
		cfg:      cfg,
		reg:      NewRegistry(cfg.HeartbeatTTL),
		aff:      NewAffinity(0),
		adm:      cfg.Admission,
		tel:      cfg.Telemetry,
		log:      cfg.Log,
		client:   cfg.Client,
		stream:   &http.Client{},
		now:      cfg.Now,
		sleep:    cfg.Sleep,
		brk:      newBreakerSet(cfg.BreakerThreshold, cfg.BreakerReset, cfg.Now),
		bootedAt: cfg.Now(),
		jobs:     make(map[string]*fleetJob),
		idem:     make(map[string]string),
	}
	if cfg.JournalPath != "" {
		jr, recs, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("fleet: open journal: %w", err)
		}
		c.journal = jr
		c.recoverFromJournal(recs)
		// Compact immediately: the replayed history collapses to one
		// snapshot of the retained table. Held under c.mu like maybeCompact
		// (no concurrency exists yet at boot, but the invariant is uniform:
		// snapshot and swap are never separated by an append window).
		c.mu.Lock()
		err = jr.Compact(c.journalSnapshotLocked())
		c.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("fleet: compact journal: %w", err)
		}
	}
	return c, nil
}

// Close releases the journal file handle (the coordinator itself has no
// background state beyond what Run's context owns).
func (c *Coordinator) Close() error {
	if c.journal != nil {
		return c.journal.Close()
	}
	return nil
}

// journalAppend appends one record, nil-safe and never fatal: a failed
// append on a non-accept record degrades durability (logged, counted), not
// availability. Callers holding c.mu may call it; the fsync happens at job
// granularity, far off any per-iteration hot path.
func (c *Coordinator) journalAppend(rec journalRecord) {
	if c.journal == nil {
		return
	}
	if err := c.journal.Append(rec); err != nil {
		c.log.Error("journal append failed", "kind", rec.Kind, "job", rec.Job, "err", err)
		return
	}
	c.tel.JournalRecords.Inc()
}

// recoverFromJournal folds replayed records back into the job table.
func (c *Coordinator) recoverFromJournal(recs []journalRecord) {
	c.mu.Lock()
	for _, rec := range recs {
		switch rec.Kind {
		case recMeta:
			if rec.Seq > c.seq {
				c.seq = rec.Seq
			}
		case recAccepted:
			if rec.Job == "" || rec.Spec == nil {
				continue
			}
			if _, dup := c.jobs[rec.Job]; dup {
				continue
			}
			class, _ := ParseClass(rec.Class)
			j := &fleetJob{
				id: rec.Job, tenant: rec.Tenant, class: class,
				spec: *rec.Spec, key: rec.Key, submitted: rec.Submitted,
				idemKey: rec.IdemKey, state: "pending",
			}
			c.jobs[j.id] = j
			c.order = append(c.order, j)
			if j.idemKey != "" {
				c.idem[j.idemKey] = j.id
			}
			var n int64
			if _, err := fmt.Sscanf(rec.Job, "fj-%d", &n); err == nil && n > c.seq {
				c.seq = n
			}
		case recAssigned:
			j := c.jobs[rec.Job]
			if j == nil {
				continue
			}
			j.worker, j.workerURL, j.remoteID, j.dataDir = rec.Worker, rec.WorkerURL, rec.RemoteID, rec.DataDir
			if rec.State != "" {
				j.state = rec.State
			} else {
				j.state = string(service.StateQueued)
			}
		case recRerouted:
			j := c.jobs[rec.Job]
			if j == nil {
				continue
			}
			if rec.ResumeDir != "" {
				j.spec.Resume = &service.ResumeSpec{Dir: rec.ResumeDir}
			}
			j.worker, j.workerURL, j.remoteID, j.dataDir = "", "", "", ""
			j.state = "pending"
			j.reroutes++
		case recTerminal:
			j := c.jobs[rec.Job]
			if j == nil {
				continue
			}
			if rec.State == "rejected" {
				// A saturation 429 revoked this accept: it never existed as
				// far as the client knows. Drop it and free its key.
				if j.idemKey != "" {
					delete(c.idem, j.idemKey)
				}
				delete(c.jobs, j.id)
				c.removeFromOrderLocked(j)
				continue
			}
			j.terminal = true
			j.released = true // admission state is fresh after a restart
			if rec.State != "" {
				j.state = rec.State
			}
		}
	}
	recovered := 0
	var assigned []*fleetJob
	for _, j := range c.order {
		if j.terminal {
			continue
		}
		recovered++
		// Re-occupy the tenant's quota slot (without charging its rate
		// bucket) so the fresh admission state matches the recovered load.
		c.adm.Adopt(j.tenant)
		j.released = false
		if j.worker == "" {
			// Accepted or rerouted but unplaced: straight back into the
			// dispatch queue. Recovery may exceed PendingLimit — accepted
			// jobs are never dropped at boot.
			c.pending = append(c.pending, j)
		} else {
			j.recovered = true
			assigned = append(assigned, j)
		}
	}
	c.mu.Unlock()
	for _, j := range assigned {
		c.aff.Set(j.key, j.worker)
	}
	c.tel.JournalReplays.Add(int64(len(recs)))
	c.tel.JobsRecovered.Add(int64(recovered))
	if len(recs) > 0 {
		c.log.Info("journal replayed", "records", len(recs),
			"jobs", len(c.jobs), "recovered", recovered, "assigned", len(assigned))
	}
}

// journalSnapshotLocked re-serializes the retained job table as a compact
// journal: per job, an accepted record plus assigned/terminal records as
// applicable (reroute history is already baked into the stored spec).
func (c *Coordinator) journalSnapshotLocked() []journalRecord {
	recs := make([]journalRecord, 0, 1+2*len(c.order))
	recs = append(recs, journalRecord{Kind: recMeta, Seq: c.seq})
	for _, j := range c.order {
		spec := j.spec
		recs = append(recs, journalRecord{
			Kind: recAccepted, Job: j.id, Tenant: j.tenant,
			Class: j.class.String(), IdemKey: j.idemKey, Key: j.key,
			Spec: &spec, Submitted: j.submitted,
		})
		if j.worker != "" {
			recs = append(recs, journalRecord{
				Kind: recAssigned, Job: j.id, Worker: j.worker,
				WorkerURL: j.workerURL, RemoteID: j.remoteID,
				DataDir: j.dataDir, State: j.state,
			})
		}
		if j.terminal {
			recs = append(recs, journalRecord{Kind: recTerminal, Job: j.id, State: j.state})
		}
	}
	return recs
}

// maybeCompact rewrites the journal once the appended history sufficiently
// outgrows the live table, keeping replay cost bounded during long soaks.
//
// The snapshot and the file swap run under one critical section: a record
// fsynced into the old file after the snapshot was taken would be silently
// discarded by the rename, losing an acked transition. Holding c.mu across
// Compact closes that window — every append either runs under c.mu itself
// (serialized after the swap, landing in the new file) or is SubmitIdem's
// accepted record, whose job was inserted into the table under c.mu before
// the append: the snapshot already carries it, and if its append races into
// the new file anyway, the duplicate accepted record is deduped at replay.
// Compaction is rare (history > 4× live table), so the fsync held under the
// lock stays off the hot path.
func (c *Coordinator) maybeCompact() {
	if c.journal == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal.AppendedSinceCompact() <= 4*len(c.order)+64 {
		return
	}
	if err := c.journal.Compact(c.journalSnapshotLocked()); err != nil {
		c.log.Error("journal compaction failed", "err", err)
	}
}

// Telemetry returns the coordinator's metrics collector.
func (c *Coordinator) Telemetry() *telemetry.FleetCollector { return c.tel }

// Registry returns the worker registry (tests and the status endpoint).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Run drives the background maintenance loop (expiry/re-route, state sync,
// pending dispatch, work stealing) every interval until ctx ends.
func (c *Coordinator) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Tick(c.now())
		}
	}
}

// Tick runs one maintenance pass at the given time. Exposed so tests drive
// the fleet deterministically without a background goroutine.
func (c *Coordinator) Tick(now time.Time) {
	c.expireAndReroute(now)
	c.reconcileRecovered(now)
	c.syncWorkers()
	c.dispatchPending()
	c.stealOnce(now)
	c.tel.WorkersLive.Set(int64(len(c.reg.Live(now))))
	c.tel.WorkersSuspect.Set(int64(c.brk.Suspects()))
	c.publishWorkerHealth(now)
	c.mu.Lock()
	c.tel.JobsPending.Set(int64(len(c.pending)))
	c.pruneLocked()
	c.mu.Unlock()
	c.maybeCompact()
}

// reconcileRecovered settles journal-recovered assignments: a worker that
// re-heartbeated re-adopts its jobs (syncWorkers folds the live state), and
// a worker still absent once the recovery grace lapses is treated as dead —
// its jobs re-route with a resume pointer into the journaled durable store,
// the same warm-start handoff as TTL expiry.
func (c *Coordinator) reconcileRecovered(now time.Time) {
	var orphans []*fleetJob
	c.mu.Lock()
	for _, j := range c.order {
		if !j.recovered || j.terminal {
			continue
		}
		if j.worker == "" {
			j.recovered = false
			continue
		}
		if _, live := c.reg.Get(j.worker, now); live {
			j.recovered = false
			c.log.Info("recovered job re-adopted", "job", j.id, "worker", j.worker)
			continue
		}
		if now.Sub(c.bootedAt) < c.cfg.RecoveryGrace {
			continue
		}
		if j.dataDir != "" && j.remoteID != "" {
			dir := filepath.Join(j.dataDir, "jobs", j.remoteID, "checkpoints")
			j.spec.Resume = &service.ResumeSpec{Dir: dir}
		}
		c.aff.Drop(j.key)
		j.worker, j.workerURL, j.remoteID, j.dataDir = "", "", "", ""
		j.state = "pending"
		j.reroutes++
		j.recovered = false
		c.journalAppend(rerouteRecord(j))
		orphans = append(orphans, j)
	}
	c.mu.Unlock()
	for _, j := range orphans {
		c.tel.JobsRerouted.Inc()
		c.log.Warn("recovered worker never returned, rerouting job",
			"job", j.id, "resume", j.spec.Resume != nil)
		if !c.assign(j) {
			c.enqueuePending(j)
		}
	}
}

// rerouteRecord builds the journal record for a job whose assignment was
// just cleared (call with c.mu held, after mutating the job).
func rerouteRecord(j *fleetJob) journalRecord {
	rec := journalRecord{Kind: recRerouted, Job: j.id}
	if j.spec.Resume != nil {
		rec.ResumeDir = j.spec.Resume.Dir
	}
	return rec
}

// publishWorkerHealth refreshes the per-worker liveness gauges on /metrics
// (heartbeat age, live flag, reported load) from the registry snapshot.
func (c *Coordinator) publishWorkerHealth(now time.Time) {
	snap := c.reg.Snapshot()
	ws := make([]telemetry.WorkerHealth, 0, len(snap))
	for _, s := range snap {
		age := now.Sub(s.LastSeen)
		ws = append(ws, telemetry.WorkerHealth{
			ID:         s.ID,
			AgeSeconds: max(age.Seconds(), 0),
			Live:       age <= c.cfg.HeartbeatTTL,
			Suspect:    c.brk.Suspect(s.ID),
			QueueDepth: s.Stats.QueueDepth,
			Running:    s.Stats.Running,
		})
	}
	c.tel.SetWorkerHealth(ws)
}

// RecordHeartbeat folds one worker report into the registry.
func (c *Coordinator) RecordHeartbeat(hb Heartbeat, now time.Time) error {
	if hb.ID == "" || hb.URL == "" {
		return fmt.Errorf("fleet: heartbeat needs id and url")
	}
	if c.reg.Update(hb, now) {
		c.log.Info("worker registered", "worker", hb.ID, "url", hb.URL,
			"place_workers", hb.Stats.PlaceWorkers, "data_dir", hb.DataDir)
	}
	c.tel.Heartbeats.Inc()
	return nil
}

// Submit admits and routes one job. On rejection it returns a non-zero
// retry-after hint with ErrRateLimited, ErrQuotaExhausted, or ErrSaturated;
// the HTTP layer maps all three to 429 + Retry-After.
func (c *Coordinator) Submit(spec service.JobSpec, tenant string) (JobView, time.Duration, error) {
	return c.SubmitIdem(spec, tenant, "")
}

// SubmitIdem is Submit with a client-supplied idempotency key: a retried
// submit carrying a key the coordinator has already accepted (this boot or,
// via the journal, any previous one) returns the existing job instead of
// creating a duplicate — the property that makes blind submit retries safe
// across coordinator crashes.
func (c *Coordinator) SubmitIdem(spec service.JobSpec, tenant, idemKey string) (JobView, time.Duration, error) {
	if tenant == "" {
		tenant = "default"
	}
	if err := spec.Validate(""); err != nil {
		return JobView{}, 0, fmt.Errorf("%w: %v", service.ErrSpecRejected, err)
	}
	if idemKey != "" {
		// Fast-path dedupe before admission so a retry is not charged
		// against the tenant's rate bucket. The authoritative check runs
		// again under the lock below (two concurrent retries).
		c.mu.Lock()
		j := c.idemJobLocked(idemKey)
		c.mu.Unlock()
		if j != nil {
			return c.view(j), 0, nil
		}
	}
	start := c.now()
	if after, err := c.adm.Admit(tenant); err != nil {
		c.tel.JobsRejected.Inc()
		return JobView{}, after, err
	}
	key := SpecKey(spec)
	if spec.Parent != "" {
		// ECO child: adopt the parent's routing key so rendezvous ranking and
		// the affinity map steer the child at the worker holding the parent's
		// cached placement. The parent reference itself stays fleet-level in
		// the stored spec — it is resolved to the parent's worker-local job ID
		// per dispatch (see dispatchSpec), because that name only means
		// anything on the parent's own worker. An unknown parent changes
		// nothing (the child routes by its own key and cold-starts).
		c.mu.Lock()
		if p, ok := c.jobs[spec.Parent]; ok {
			key = p.key
			c.mu.Unlock()
			c.tel.ParentRoutes.Inc()
		} else {
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	if idemKey != "" {
		if dup := c.idemJobLocked(idemKey); dup != nil {
			c.mu.Unlock()
			c.adm.Release(tenant) // give back the slot this retry charged
			return c.view(dup), 0, nil
		}
	}
	c.seq++
	j := &fleetJob{
		id:        fmt.Sprintf("fj-%06d", c.seq),
		tenant:    tenant,
		class:     c.adm.Class(tenant),
		spec:      spec,
		key:       key,
		submitted: start,
		state:     "pending",
		idemKey:   idemKey,
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j)
	if idemKey != "" {
		c.idem[idemKey] = j.id
	}
	c.mu.Unlock()
	// The accept must be durable before it is acknowledged: a journal that
	// cannot record the job refuses it (the client retries against a
	// coordinator that can uphold the no-loss guarantee).
	if c.journal != nil {
		specCopy := spec
		rec := journalRecord{
			Kind: recAccepted, Job: j.id, Tenant: tenant,
			Class: j.class.String(), IdemKey: idemKey, Key: key,
			Spec: &specCopy, Submitted: start,
		}
		if err := c.journal.Append(rec); err != nil {
			c.mu.Lock()
			delete(c.jobs, j.id)
			c.removeFromOrderLocked(j)
			if idemKey != "" {
				delete(c.idem, idemKey)
			}
			// Best-effort revocation: if a compaction snapshotted the job
			// between the insert and this failed append, only a surviving
			// "rejected" record keeps it from resurrecting at replay. With
			// the journal truly dead this append fails too, harmlessly.
			c.journalAppend(journalRecord{Kind: recTerminal, Job: j.id, State: "rejected"})
			c.mu.Unlock()
			c.adm.Release(tenant)
			c.tel.JobsRejected.Inc()
			c.log.Error("journal append failed, refusing job", "err", err)
			return JobView{}, 0, fmt.Errorf("fleet: journal accept: %w", err)
		}
		c.tel.JournalRecords.Inc()
	}
	c.tel.JobsSubmitted.Inc()

	if c.assign(j) {
		c.tel.SubmitSeconds.Observe(c.now().Sub(start).Seconds())
		return c.view(j), 0, nil
	}
	// No worker took it: hold the job in the coordinator's pending queue if
	// there is room, else push back on the client.
	c.mu.Lock()
	if len(c.pending) >= c.cfg.PendingLimit {
		delete(c.jobs, j.id)
		c.removeFromOrderLocked(j)
		if idemKey != "" {
			delete(c.idem, idemKey)
		}
		// "rejected" tells replay this accept was revoked with a 429 — the
		// job must not resurrect and its idempotency key must free up.
		c.journalAppend(journalRecord{Kind: recTerminal, Job: j.id, State: "rejected"})
		c.mu.Unlock()
		c.adm.Release(tenant)
		c.tel.JobsRejected.Inc()
		return JobView{}, 2 * time.Second, ErrSaturated
	}
	c.pending = append(c.pending, j)
	c.tel.JobsPending.Set(int64(len(c.pending)))
	c.mu.Unlock()
	c.log.Info("job pending", "job", j.id, "tenant", tenant)
	return c.view(j), 0, nil
}

// removeFromOrderLocked drops exactly j from the submission-order slice
// (call with c.mu held). Removal is by identity, never by truncating the
// tail: the rollback paths release c.mu between inserting a job and
// deciding to revoke it, so a concurrent Submit may have appended other
// jobs behind it in the meantime.
func (c *Coordinator) removeFromOrderLocked(j *fleetJob) {
	for i, o := range c.order {
		if o == j {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// idemJobLocked resolves an idempotency key to its retained job (nil when
// unknown or already pruned from retention).
func (c *Coordinator) idemJobLocked(idemKey string) *fleetJob {
	if id, ok := c.idem[idemKey]; ok {
		return c.jobs[id]
	}
	return nil
}

// Get returns one job's fleet view, refreshing it from the worker when the
// job is assigned and not yet known-terminal.
func (c *Coordinator) Get(id string) (JobView, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	var url, remote string
	var refresh bool
	if ok {
		url, remote = j.workerURL, j.remoteID
		refresh = j.worker != "" && !j.terminal
	}
	c.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	if refresh {
		if v, err := c.getRemote(url, remote); err == nil {
			c.mu.Lock()
			c.updateFromWorkerLocked(j, v)
			c.mu.Unlock()
		} else {
			c.tel.ProxyErrors.Inc()
		}
	}
	return c.view(j), nil
}

// Cancel cancels a job: pending jobs die in the coordinator, assigned ones
// are cancelled on their worker.
func (c *Coordinator) Cancel(id string) (JobView, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	var assigned bool
	var url, remote string
	if ok {
		assigned = j.worker != ""
		url, remote = j.workerURL, j.remoteID
		if !assigned && !j.terminal {
			j.terminal = true
			j.state = "cancelled"
			c.releaseLocked(j)
			c.dropPendingLocked(j)
			c.journalAppend(journalRecord{Kind: recTerminal, Job: j.id, State: j.state})
		}
	}
	c.mu.Unlock()
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	if assigned {
		if v, err := c.cancelRemote(url, remote); err == nil {
			c.mu.Lock()
			c.updateFromWorkerLocked(j, v)
			c.mu.Unlock()
		} else {
			c.tel.ProxyErrors.Inc()
		}
	}
	return c.view(j), nil
}

// List returns every retained job in submission order.
func (c *Coordinator) List() []JobView {
	c.mu.Lock()
	jobs := append([]*fleetJob(nil), c.order...)
	c.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = c.view(j)
	}
	return out
}

// Status builds the GET /v1/fleet document.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	return Status{
		Workers: c.reg.Snapshot(),
		Pending: pending,
		Counters: Counters{
			Submitted:    c.tel.JobsSubmitted.Value(),
			Rejected:     c.tel.JobsRejected.Value(),
			Assigned:     c.tel.JobsAssigned.Value(),
			Rerouted:     c.tel.JobsRerouted.Value(),
			Stolen:       c.tel.JobsStolen.Value(),
			AffinityHits: c.tel.AffinityHits.Value(),
			ParentRoutes: c.tel.ParentRoutes.Value(),
			Heartbeats:   c.tel.Heartbeats.Value(),
			Recovered:    c.tel.JobsRecovered.Value(),
		},
	}
}

// Ready reports whether the fleet can serve: at least one live worker.
func (c *Coordinator) Ready() bool { return len(c.reg.Live(c.now())) > 0 }

// view snapshots a job under the lock.
func (c *Coordinator) view(j *fleetJob) JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := JobView{
		ID: j.id, Tenant: j.tenant, Class: j.class.String(),
		State: j.state, Worker: j.worker, RemoteID: j.remoteID,
		AffinityHit: j.affinityHit, Reroutes: j.reroutes, Steals: j.steals,
		Recovered: j.recovered, SubmittedAt: j.submitted,
	}
	if j.last != nil {
		lv := *j.last
		v.Job = &lv
	}
	return v
}

// releaseLocked returns the job's admission slot exactly once.
func (c *Coordinator) releaseLocked(j *fleetJob) {
	if !j.released {
		j.released = true
		c.adm.Release(j.tenant)
	}
}

// dropPendingLocked removes a job from the pending slice.
func (c *Coordinator) dropPendingLocked(j *fleetJob) {
	for i, p := range c.pending {
		if p == j {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// updateFromWorkerLocked folds a proxied worker view into the record.
func (c *Coordinator) updateFromWorkerLocked(j *fleetJob, v service.JobView) {
	vv := v
	j.last = &vv
	j.state = string(v.State)
	if v.State.Terminal() && !j.terminal {
		j.terminal = true
		c.releaseLocked(j)
		c.journalAppend(journalRecord{Kind: recTerminal, Job: j.id, State: j.state})
	}
}

// pruneLocked drops the oldest terminal records beyond the retention cap.
func (c *Coordinator) pruneLocked() {
	terminal := 0
	for _, j := range c.order {
		if j.terminal {
			terminal++
		}
	}
	drop := terminal - c.cfg.Retention
	if drop <= 0 {
		return
	}
	kept := c.order[:0]
	for _, j := range c.order {
		if drop > 0 && j.terminal {
			delete(c.jobs, j.id)
			if j.idemKey != "" {
				delete(c.idem, j.idemKey)
			}
			drop--
			continue
		}
		kept = append(kept, j)
	}
	c.order = kept
}

// parentPlacement resolves an ECO child's parent to its current (worker,
// worker-local job ID) placement, or empty strings when the parent is
// unknown or not assigned anywhere.
func (c *Coordinator) parentPlacement(j *fleetJob) (worker, remote string) {
	if j.spec.Parent == "" {
		return "", ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.jobs[j.spec.Parent]; ok {
		return p.worker, p.remoteID
	}
	return "", ""
}

// dispatchSpec renders j's spec for one specific worker. The parent
// reference is worker-local: it is rewritten to the parent's remote job ID
// only when the job is posted to the worker actually holding the parent,
// and dropped everywhere else — a foreign worker could not resolve the
// fleet-level name, and must never resolve it to an unrelated job that
// happens to share the ID in its local table.
func dispatchSpec(j *fleetJob, workerID, pWorker, pRemote string) service.JobSpec {
	spec := j.spec
	if spec.Parent == "" {
		return spec
	}
	if pRemote != "" && workerID == pWorker {
		spec.Parent = pRemote
	} else {
		spec.Parent = ""
	}
	return spec
}

// assign routes one unassigned job: the worker holding its ECO parent
// first (that node serves the warm start), then the checkpoint-affinity
// worker (when live), then every live worker in rendezvous order, until
// one accepts. Returns false when nobody can take the job right now.
func (c *Coordinator) assign(j *fleetJob) bool {
	now := c.now()
	live := c.reg.Live(now)
	if len(live) == 0 {
		return false
	}
	pWorker, pRemote := c.parentPlacement(j)
	var cands []Heartbeat
	seen := make(map[string]bool)
	if pWorker != "" {
		if hb, live := c.reg.Get(pWorker, now); live {
			cands = append(cands, hb)
			seen[pWorker] = true
		}
	}
	affine := ""
	if wid, ok := c.aff.Get(j.key); ok {
		affine = wid // may coincide with pWorker; affinityHit still counts
		if hb, live := c.reg.Get(wid, now); live && !seen[wid] {
			cands = append(cands, hb)
			seen[wid] = true
		}
	}
	for _, hb := range Rank(j.key, live) {
		if !seen[hb.ID] {
			cands = append(cands, hb)
		}
	}
	// Suspect workers (breaker open) sink to the end of the candidate list:
	// healthy nodes absorb the load, and when only suspects remain each
	// dispatch doubles as a half-open probe that can close the breaker.
	sort.SliceStable(cands, func(a, b int) bool {
		return !c.brk.Suspect(cands[a].ID) && c.brk.Suspect(cands[b].ID)
	})
	for _, hb := range cands {
		rv, busy, err := c.postJob(hb, dispatchSpec(j, hb.ID, pWorker, pRemote))
		if err != nil {
			if !busy {
				c.tel.ProxyErrors.Inc()
			}
			continue
		}
		c.mu.Lock()
		if j.terminal {
			// Cancelled while the dispatch was in flight: the worker copy
			// is an orphan the fleet no longer tracks — cancel it there
			// rather than let a cancelled job burn a worker slot.
			c.mu.Unlock()
			if _, cerr := c.cancelRemote(hb.URL, rv.ID); cerr != nil {
				c.tel.ProxyErrors.Inc()
			}
			c.log.Info("dispatch raced cancel, revoked on worker",
				"job", j.id, "worker", hb.ID, "remote", rv.ID)
			return true
		}
		j.worker, j.workerURL, j.remoteID, j.dataDir = hb.ID, hb.URL, rv.ID, hb.DataDir
		c.updateFromWorkerLocked(j, rv)
		if hb.ID == affine {
			j.affinityHit = true
		}
		c.journalAppend(journalRecord{
			Kind: recAssigned, Job: j.id, Worker: hb.ID, WorkerURL: hb.URL,
			RemoteID: rv.ID, DataDir: hb.DataDir, State: j.state,
		})
		c.mu.Unlock()
		if hb.ID == affine {
			c.tel.AffinityHits.Inc()
		}
		c.aff.Set(j.key, hb.ID)
		c.tel.JobsAssigned.Inc()
		c.log.Info("job assigned", "job", j.id, "tenant", j.tenant, "worker", hb.ID,
			"remote", rv.ID, "affinity", hb.ID == affine, "reroutes", j.reroutes)
		return true
	}
	return false
}

// expireAndReroute removes workers past their heartbeat TTL and re-routes
// their unfinished jobs. When the dead worker advertised a reachable
// DataDir, the resubmitted spec carries a resume pointer at its checkpoint
// directory, so the new node warm-starts from the latest snapshot instead
// of replaying the whole run (fingerprint mismatches cold-start safely).
func (c *Coordinator) expireAndReroute(now time.Time) {
	dead := c.reg.Expire(now)
	if len(dead) == 0 {
		return
	}
	byID := make(map[string]Heartbeat, len(dead))
	for _, hb := range dead {
		byID[hb.ID] = hb
		c.brk.Forget(hb.ID)
		c.log.Warn("worker expired", "worker", hb.ID, "url", hb.URL)
	}
	c.rerouteOffWorkers(byID)
}

// DeregisterWorker handles a worker's graceful goodbye (placerd drain on
// SIGTERM): the worker is removed from the registry immediately — no TTL
// wait — and its jobs re-route through the same checkpoint handoff as
// expiry, warm-starting from whatever the drain persisted.
func (c *Coordinator) DeregisterWorker(id string) bool {
	hb, ok := c.reg.Remove(id)
	if !ok {
		return false
	}
	c.brk.Forget(id)
	c.log.Info("worker deregistered", "worker", id, "url", hb.URL)
	c.rerouteOffWorkers(map[string]Heartbeat{id: hb})
	return true
}

// rerouteOffWorkers moves every unfinished job off the given (gone) workers.
func (c *Coordinator) rerouteOffWorkers(byID map[string]Heartbeat) {
	var orphans []*fleetJob
	c.mu.Lock()
	for _, j := range c.order {
		if j.terminal || j.worker == "" {
			continue
		}
		hb, isDead := byID[j.worker]
		if !isDead {
			continue
		}
		if hb.DataDir != "" && j.remoteID != "" {
			dir := filepath.Join(hb.DataDir, "jobs", j.remoteID, "checkpoints")
			j.spec.Resume = &service.ResumeSpec{Dir: dir}
		}
		c.aff.Drop(j.key)
		j.worker, j.workerURL, j.remoteID, j.dataDir = "", "", "", ""
		j.state = "pending"
		j.reroutes++
		j.recovered = false
		c.journalAppend(rerouteRecord(j))
		orphans = append(orphans, j)
	}
	c.mu.Unlock()
	for _, j := range orphans {
		c.tel.JobsRerouted.Inc()
		c.log.Info("rerouting job off dead worker", "job", j.id, "resume", j.spec.Resume != nil)
		if !c.assign(j) {
			c.enqueuePending(j)
		}
	}
}

// enqueuePending parks an unassignable job in the pending queue (dropping
// it with a released quota slot only if the queue is full).
func (c *Coordinator) enqueuePending(j *fleetJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) >= c.cfg.PendingLimit {
		j.terminal = true
		j.state = "failed"
		c.releaseLocked(j)
		c.journalAppend(journalRecord{Kind: recTerminal, Job: j.id, State: j.state})
		c.log.Warn("pending queue full, dropping job", "job", j.id)
		return
	}
	c.pending = append(c.pending, j)
}

// syncWorkers polls each live worker's job list, folds the states into the
// fleet job table (releasing admission slots on terminal transitions), and
// re-routes jobs the worker no longer knows (e.g. a worker that restarted
// without a durable store).
func (c *Coordinator) syncWorkers() {
	now := c.now()
	for _, hb := range c.reg.Live(now) {
		views, err := c.listRemote(hb.URL)
		if err != nil {
			c.tel.ProxyErrors.Inc()
			c.brk.Failure(hb.ID)
			continue
		}
		c.brk.Success(hb.ID)
		byID := make(map[string]service.JobView, len(views))
		for _, v := range views {
			byID[v.ID] = v
		}
		var lost []*fleetJob
		c.mu.Lock()
		for _, j := range c.order {
			if j.terminal || j.worker != hb.ID {
				continue
			}
			v, ok := byID[j.remoteID]
			if !ok {
				j.worker, j.workerURL, j.remoteID, j.dataDir = "", "", "", ""
				j.state = "pending"
				j.reroutes++
				j.recovered = false
				c.journalAppend(rerouteRecord(j))
				lost = append(lost, j)
				continue
			}
			j.recovered = false
			c.updateFromWorkerLocked(j, v)
		}
		c.mu.Unlock()
		for _, j := range lost {
			c.tel.JobsRerouted.Inc()
			c.log.Warn("worker forgot job, rerouting", "job", j.id, "worker", hb.ID)
			if !c.assign(j) {
				c.enqueuePending(j)
			}
		}
	}
}

// dispatchPending retries parked jobs, highest priority class first (FIFO
// within a class). Each job gets one assignment attempt per tick.
func (c *Coordinator) dispatchPending() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(a, b int) bool { return batch[a].class < batch[b].class })
	var still []*fleetJob
	for _, j := range batch {
		if j.terminal { // cancelled while pending
			continue
		}
		if !c.assign(j) {
			still = append(still, j)
		}
	}
	c.mu.Lock()
	c.pending = append(still, c.pending...)
	c.mu.Unlock()
}

// stealOnce moves queued work from hot workers onto idle ones: for every
// idle worker (free run slots, empty queue) it picks the highest-priority,
// oldest fleet job queued on a busy worker, cancels it there with the
// steal-safe ?if=queued cancel (never touching a running placement), and
// resubmits it to the idle worker. Stale heartbeat stats are harmless: the
// worker-side conditional cancel arbitrates races.
func (c *Coordinator) stealOnce(now time.Time) {
	live := c.reg.Live(now)
	var idle []Heartbeat
	hot := make(map[string]bool)
	for _, hb := range live {
		switch {
		case hb.Stats.Running < hb.Stats.PlaceWorkers && hb.Stats.QueueDepth == 0:
			idle = append(idle, hb)
		case hb.Stats.QueueDepth > 0:
			hot[hb.ID] = true
		}
	}
	if len(idle) == 0 || len(hot) == 0 {
		return
	}
	// Steal candidates: fleet jobs sitting in a hot worker's queue, best
	// class first, oldest first.
	c.mu.Lock()
	var cands []*fleetJob
	for _, j := range c.order {
		if !j.terminal && j.worker != "" && hot[j.worker] && j.state == string(service.StateQueued) {
			cands = append(cands, j)
		}
	}
	c.mu.Unlock()
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].class < cands[b].class })
	for _, target := range idle {
		if len(cands) == 0 {
			return
		}
		j := cands[0]
		cands = cands[1:]
		if !c.stealTo(j, target) {
			continue
		}
	}
}

// stealTo moves one queued job onto the target worker. Returns false when
// the steal was abandoned (the job started running, finished, or vanished
// in the meantime — all safe outcomes).
func (c *Coordinator) stealTo(j *fleetJob, target Heartbeat) bool {
	c.mu.Lock()
	url, remote := j.workerURL, j.remoteID
	c.mu.Unlock()
	if ok, err := c.cancelQueuedRemote(url, remote); err != nil {
		c.tel.ProxyErrors.Inc()
		return false
	} else if !ok {
		return false // already running or gone; leave it be
	}
	// The source accepted the conditional cancel: the job now runs nowhere
	// and must be re-homed (the target, or anyone, or the pending queue).
	c.mu.Lock()
	j.worker, j.workerURL, j.remoteID, j.dataDir = "", "", "", ""
	j.state = "pending"
	c.journalAppend(rerouteRecord(j))
	c.mu.Unlock()
	pWorker, pRemote := c.parentPlacement(j)
	rv, _, err := c.postJob(target, dispatchSpec(j, target.ID, pWorker, pRemote))
	if err != nil {
		if !c.assign(j) {
			c.enqueuePending(j)
		}
		return true
	}
	c.mu.Lock()
	j.worker, j.workerURL, j.remoteID, j.dataDir = target.ID, target.URL, rv.ID, target.DataDir
	c.updateFromWorkerLocked(j, rv)
	j.steals++
	c.journalAppend(journalRecord{
		Kind: recAssigned, Job: j.id, Worker: target.ID, WorkerURL: target.URL,
		RemoteID: rv.ID, DataDir: target.DataDir, State: j.state,
	})
	c.mu.Unlock()
	c.aff.Set(j.key, target.ID)
	c.tel.JobsStolen.Inc()
	c.log.Info("job stolen onto idle worker", "job", j.id, "worker", target.ID, "remote", rv.ID)
	return true
}

// --- worker HTTP calls -------------------------------------------------

// postJob submits a spec to a worker, with a short jittered retry on
// retryable failures (the worker may be mid-restart or behind a flaky link)
// and circuit-breaker accounting on the outcome. busy=true flags a 429/503
// (queue full or draining — try the next candidate, not a fault).
func (c *Coordinator) postJob(hb Heartbeat, spec service.JobSpec) (service.JobView, bool, error) {
	var backoff *Backoff
	for attempt := 0; ; attempt++ {
		v, busy, err := c.postJobOnce(hb, spec)
		if err == nil {
			c.brk.Success(hb.ID)
			return v, false, nil
		}
		if busy {
			return v, true, err // pushback is load, not sickness
		}
		wasSuspect := c.brk.Suspect(hb.ID)
		if c.brk.Failure(hb.ID) && !wasSuspect {
			c.log.Warn("worker circuit breaker opened", "worker", hb.ID, "err", err)
		}
		if attempt >= c.cfg.DispatchRetries || !Retryable(err) {
			return v, false, err
		}
		if backoff == nil {
			backoff = NewBackoff(c.cfg.DispatchBackoff, 0, c.dseed.Add(1))
		}
		c.sleep(backoff.Next())
	}
}

// postJobOnce is one dispatch attempt.
func (c *Coordinator) postJobOnce(hb Heartbeat, spec service.JobSpec) (service.JobView, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.JobView{}, false, err
	}
	resp, err := c.client.Post(hb.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return service.JobView{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var v service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return service.JobView{}, false, err
		}
		return v, false, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return service.JobView{}, true, fmt.Errorf("fleet: worker %s busy (%d)", hb.ID, resp.StatusCode)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return service.JobView{}, false, fmt.Errorf("fleet: worker %s rejected job: %w",
			hb.ID, &StatusError{Code: resp.StatusCode, Msg: string(msg)})
	}
}

// getRemote fetches one worker job view.
func (c *Coordinator) getRemote(base, id string) (service.JobView, error) {
	resp, err := c.client.Get(base + "/jobs/" + id)
	if err != nil {
		return service.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobView{}, fmt.Errorf("fleet: worker status %d", resp.StatusCode)
	}
	var v service.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// listRemote fetches a worker's whole job table.
func (c *Coordinator) listRemote(base string) ([]service.JobView, error) {
	resp, err := c.client.Get(base + "/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: worker list status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []service.JobView `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out.Jobs, err
}

// cancelRemote cancels a worker job unconditionally.
func (c *Coordinator) cancelRemote(base, id string) (service.JobView, error) {
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		return service.JobView{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return service.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobView{}, fmt.Errorf("fleet: worker cancel status %d", resp.StatusCode)
	}
	var v service.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// cancelQueuedRemote is the steal-safe conditional cancel: true only when
// the worker confirmed the job was still queued and is now cancelled.
func (c *Coordinator) cancelQueuedRemote(base, id string) (bool, error) {
	req, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id+"?if=queued", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict, http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("fleet: conditional cancel status %d", resp.StatusCode)
}
