// Package client is the tenant-side SDK for the fleet coordinator: it
// submits jobs, polls them to completion, and — critically — honors the
// coordinator's admission-control backpressure, sleeping out 429 responses
// for exactly the Retry-After the server advertised instead of hammering a
// saturated fleet.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// RetryAfterError is a 429 pushback from the coordinator, carrying the
// parsed Retry-After interval.
type RetryAfterError struct {
	After  time.Duration
	Status int
	Msg    string
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("fleet pushback (%d, retry after %s): %s", e.Status, e.After, e.Msg)
}

// Client talks to one coordinator on behalf of one tenant.
type Client struct {
	// Base is the coordinator base URL.
	Base string
	// Tenant is sent as the X-Tenant header ("" means the default tenant).
	Tenant string
	// HTTP is the transport (nil: 10s timeout default).
	HTTP *http.Client
	// Poll is the status poll interval for the wait helpers (default 100ms).
	Poll time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 100 * time.Millisecond
}

// Submit sends one job spec. A 429 returns *RetryAfterError so callers can
// implement their own pacing; SubmitWait retries internally instead.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (fleet.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return fleet.JobView{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return fleet.JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var v fleet.JobView
		err := json.NewDecoder(resp.Body).Decode(&v)
		return v, err
	case http.StatusTooManyRequests:
		after := parseRetryAfter(resp.Header.Get("Retry-After"))
		msg := readError(resp.Body)
		return fleet.JobView{}, &RetryAfterError{After: after, Status: resp.StatusCode, Msg: msg}
	default:
		return fleet.JobView{}, fmt.Errorf("fleet submit: status %d: %s", resp.StatusCode, readError(resp.Body))
	}
}

// SubmitWait submits with backpressure compliance: on 429 it sleeps the
// advertised Retry-After (bounded by ctx) and retries until accepted.
func (c *Client) SubmitWait(ctx context.Context, spec service.JobSpec) (fleet.JobView, error) {
	for {
		v, err := c.Submit(ctx, spec)
		if err == nil {
			return v, nil
		}
		var ra *RetryAfterError
		if !errors.As(err, &ra) {
			return fleet.JobView{}, err
		}
		select {
		case <-ctx.Done():
			return fleet.JobView{}, ctx.Err()
		case <-time.After(ra.After):
		}
	}
}

// Get fetches one job's fleet view.
func (c *Client) Get(ctx context.Context, id string) (fleet.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fleet.JobView{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.JobView{}, fmt.Errorf("fleet get %s: status %d: %s", id, resp.StatusCode, readError(resp.Body))
	}
	var v fleet.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// WaitTerminal polls a job until its worker-reported state is terminal
// (done, failed, or cancelled), returning the final view.
func (c *Client) WaitTerminal(ctx context.Context, id string) (fleet.JobView, error) {
	t := time.NewTicker(c.poll())
	defer t.Stop()
	for {
		v, err := c.Get(ctx, id)
		if err != nil {
			return fleet.JobView{}, err
		}
		if service.State(v.State).Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Cancel cancels a job wherever it lives.
func (c *Client) Cancel(ctx context.Context, id string) (fleet.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fleet.JobView{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.JobView{}, fmt.Errorf("fleet cancel %s: status %d: %s", id, resp.StatusCode, readError(resp.Body))
	}
	var v fleet.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// Fleet fetches the fleet status document (workers + routing counters).
func (c *Client) Fleet(ctx context.Context) (fleet.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/fleet", nil)
	if err != nil {
		return fleet.Status{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.Status{}, fmt.Errorf("fleet status: %d: %s", resp.StatusCode, readError(resp.Body))
	}
	var s fleet.Status
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// parseRetryAfter decodes a delta-seconds Retry-After value, falling back
// to one second when missing or malformed.
func parseRetryAfter(s string) time.Duration {
	if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// readError extracts the {"error": ...} body, or raw text.
func readError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}
