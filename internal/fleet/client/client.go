// Package client is the tenant-side SDK for the fleet coordinator: it
// submits jobs, polls them to completion, and — critically — honors the
// coordinator's admission-control backpressure, sleeping out 429 responses
// for exactly the Retry-After the server advertised instead of hammering a
// saturated fleet.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// RetryAfterError is a 429 pushback from the coordinator, carrying the
// parsed Retry-After interval.
type RetryAfterError struct {
	After  time.Duration
	Status int
	Msg    string
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("fleet pushback (%d, retry after %s): %s", e.Status, e.After, e.Msg)
}

// Client talks to one coordinator on behalf of one tenant.
type Client struct {
	// Base is the coordinator base URL.
	Base string
	// Tenant is sent as the X-Tenant header ("" means the default tenant).
	Tenant string
	// HTTP is the transport (nil: 10s timeout default).
	HTTP *http.Client
	// Poll is the status poll interval for the wait helpers (default 100ms).
	Poll time.Duration
	// Retries bounds the transient-failure retries SubmitRetry makes beyond
	// the first attempt (0: default 4). 429 pushback never counts against
	// this budget — it is the coordinator pacing us, not failing.
	Retries int
	// Backoff is the base delay between transient retries (0: default 100ms),
	// growing exponentially with ±25% jitter.
	Backoff time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 100 * time.Millisecond
}

// Submit sends one job spec. A 429 returns *RetryAfterError so callers can
// implement their own pacing; SubmitWait retries internally instead.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (fleet.JobView, error) {
	return c.SubmitIdem(ctx, spec, "")
}

// SubmitIdem submits with an idempotency key: the coordinator journals the
// key with the accepted job, so a retried submit (same key) returns the
// existing job instead of duplicating it — across coordinator restarts too.
// An empty key degrades to a plain Submit. Non-429 HTTP failures wrap
// *fleet.StatusError so fleet.Retryable can classify them.
func (c *Client) SubmitIdem(ctx context.Context, spec service.JobSpec, idemKey string) (fleet.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return fleet.JobView{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return fleet.JobView{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	if idemKey != "" {
		req.Header.Set("X-Idempotency-Key", idemKey)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var v fleet.JobView
		err := json.NewDecoder(resp.Body).Decode(&v)
		return v, err
	case http.StatusTooManyRequests:
		after := parseRetryAfter(resp.Header.Get("Retry-After"))
		msg := readError(resp.Body)
		return fleet.JobView{}, &RetryAfterError{After: after, Status: resp.StatusCode, Msg: msg}
	default:
		return fleet.JobView{}, fmt.Errorf("fleet submit: %w",
			&fleet.StatusError{Code: resp.StatusCode, Msg: readError(resp.Body)})
	}
}

// SubmitRetry is the chaos-hardened submit: it retries transient failures
// (connection drops, 5xx, timeouts) with jittered exponential backoff under
// the idempotency key, and sleeps out 429 pushback for the advertised
// Retry-After without consuming the retry budget. The key makes the retries
// duplicate-safe: however many submits actually reach the coordinator, at
// most one job exists. Permanent errors (4xx other than 408/429) return
// immediately. rejected counts absorbed 429s, retries counts transient
// re-sends.
func (c *Client) SubmitRetry(ctx context.Context, spec service.JobSpec, idemKey string) (v fleet.JobView, rejected, retries int, err error) {
	budget := c.Retries
	if budget <= 0 {
		budget = 4
	}
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	backoff := fleet.NewBackoff(base, 0, time.Now().UnixNano())
	for {
		v, err = c.SubmitIdem(ctx, spec, idemKey)
		if err == nil {
			return v, rejected, retries, nil
		}
		var ra *RetryAfterError
		switch {
		case errors.As(err, &ra):
			rejected++
			if serr := sleepCtx(ctx, ra.After); serr != nil {
				return fleet.JobView{}, rejected, retries, serr
			}
		case fleet.RetryableCtx(ctx, err) && retries < budget:
			retries++
			if serr := sleepCtx(ctx, backoff.Next()); serr != nil {
				return fleet.JobView{}, rejected, retries, serr
			}
		default:
			return fleet.JobView{}, rejected, retries, err
		}
	}
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// SubmitWait submits with backpressure compliance: on 429 it sleeps the
// advertised Retry-After (bounded by ctx) and retries until accepted.
func (c *Client) SubmitWait(ctx context.Context, spec service.JobSpec) (fleet.JobView, error) {
	for {
		v, err := c.Submit(ctx, spec)
		if err == nil {
			return v, nil
		}
		var ra *RetryAfterError
		if !errors.As(err, &ra) {
			return fleet.JobView{}, err
		}
		select {
		case <-ctx.Done():
			return fleet.JobView{}, ctx.Err()
		case <-time.After(ra.After):
		}
	}
}

// Get fetches one job's fleet view.
func (c *Client) Get(ctx context.Context, id string) (fleet.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fleet.JobView{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.JobView{}, fmt.Errorf("fleet get %s: %w", id,
			&fleet.StatusError{Code: resp.StatusCode, Msg: readError(resp.Body)})
	}
	var v fleet.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// WaitTerminal polls a job until its worker-reported state is terminal
// (done, failed, or cancelled), returning the final view. Transient poll
// failures (drops, 5xx — a coordinator mid-restart) are absorbed and polling
// continues until ctx expires; permanent errors (404 for an unknown job)
// return immediately.
func (c *Client) WaitTerminal(ctx context.Context, id string) (fleet.JobView, error) {
	t := time.NewTicker(c.poll())
	defer t.Stop()
	for {
		v, err := c.Get(ctx, id)
		if err != nil && !fleet.RetryableCtx(ctx, err) {
			return fleet.JobView{}, err
		}
		if err == nil && service.State(v.State).Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			if err != nil {
				return fleet.JobView{}, err
			}
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Cancel cancels a job wherever it lives.
func (c *Client) Cancel(ctx context.Context, id string) (fleet.JobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return fleet.JobView{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.JobView{}, fmt.Errorf("fleet cancel %s: status %d: %s", id, resp.StatusCode, readError(resp.Body))
	}
	var v fleet.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// Fleet fetches the fleet status document (workers + routing counters).
func (c *Client) Fleet(ctx context.Context) (fleet.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/fleet", nil)
	if err != nil {
		return fleet.Status{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fleet.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.Status{}, fmt.Errorf("fleet status: %d: %s", resp.StatusCode, readError(resp.Body))
	}
	var s fleet.Status
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// parseRetryAfter decodes a delta-seconds Retry-After value, falling back
// to one second when missing or malformed.
func parseRetryAfter(s string) time.Duration {
	if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// readError extracts the {"error": ...} body, or raw text.
func readError(r io.Reader) string {
	data, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}
