package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/service"
)

// fakeCoord fakes just enough of the coordinator API: the first rejects
// submits with a 429, then accepts and drives the job to done.
func fakeCoord(rejects int32) (*httptest.Server, *atomic.Int32) {
	var submits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Tenant") != "ci" {
			http.Error(w, `{"error":"wrong tenant"}`, http.StatusBadRequest)
			return
		}
		if submits.Add(1) <= rejects {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"tenant rate limit exceeded"}`)) //nolint:errcheck
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"fj-000001","tenant":"ci","class":"batch","state":"queued","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/jobs/fj-000001", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"fj-000001","tenant":"ci","class":"batch","state":"done","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"workers":[{"id":"w1","url":"http://w1","stats":{"place_workers":1,"queue_cap":8,"queue_depth":0,"running":0},"last_seen":"2026-01-01T00:00:00Z"}],"pending":0,"counters":{"submitted":1,"rejected":1,"assigned":1,"rerouted":0,"stolen":0,"affinity_hits":0,"heartbeats":3}}`)) //nolint:errcheck
	})
	return httptest.NewServer(mux), &submits
}

func testSpec() service.JobSpec {
	return service.JobSpec{Design: service.DesignSpec{Synth: &service.SynthSpec{Cells: 64}}}
}

func TestSubmitSurfacesRetryAfter(t *testing.T) {
	srv, _ := fakeCoord(1)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci"}

	_, err := c.Submit(context.Background(), testSpec())
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("first Submit err = %v, want *RetryAfterError", err)
	}
	if ra.After != time.Second || ra.Status != http.StatusTooManyRequests {
		t.Errorf("RetryAfterError = %+v, want 1s/429", ra)
	}
	if ra.Msg == "" {
		t.Error("pushback message should carry the server's error text")
	}

	v, err := c.Submit(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if v.ID != "fj-000001" || v.Tenant != "ci" {
		t.Errorf("accepted view = %+v", v)
	}
}

func TestSubmitWaitHonorsBackpressure(t *testing.T) {
	srv, submits := fakeCoord(2)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci", Poll: time.Millisecond}

	start := time.Now()
	v, err := c.SubmitWait(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := submits.Load(); got != 3 {
		t.Errorf("submit attempts = %d, want 3 (two 429s absorbed)", got)
	}
	// Two advertised 1-second waits must actually have been slept out.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("SubmitWait returned after %s, want >= 2s of Retry-After pacing", elapsed)
	}
	final, err := c.WaitTerminal(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" {
		t.Errorf("final state = %q, want done", final.State)
	}
}

func TestFleetStatus(t *testing.T) {
	srv, _ := fakeCoord(0)
	defer srv.Close()
	c := &Client{Base: srv.URL}
	st, err := c.Fleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := fleet.Counters{Submitted: 1, Rejected: 1, Assigned: 1, Heartbeats: 3}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" || st.Counters != want {
		t.Errorf("Fleet() = %+v", st)
	}
}

func TestSubmitWaitRespectsContext(t *testing.T) {
	srv, _ := fakeCoord(1000)
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci"}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.SubmitWait(ctx, testSpec()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("SubmitWait under a dead context = %v, want DeadlineExceeded", err)
	}
}

// TestSubmitRetryUnderChaos drives SubmitRetry through a chaos transport
// that drops and 500s early requests: the submit must eventually land,
// carry the idempotency key on every attempt, and classify permanent errors
// without retrying them.
func TestSubmitRetryUnderChaos(t *testing.T) {
	var submits atomic.Int32
	keys := make(map[string]int32)
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		mu.Lock()
		keys[r.Header.Get("X-Idempotency-Key")]++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"fj-000009","tenant":"ci","class":"batch","state":"queued","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Per-rule visit counts advance only when a request reaches the rule, so
	// the 500 fires on the first attempt that survives the two drops.
	tr := chaos.NewTransport(nil, 3, 1,
		chaos.Rule{Name: "drop2", Kind: chaos.KindDrop, Times: 2},
		chaos.Rule{Name: "err1", Kind: chaos.KindHTTP500, Times: 1})
	c := &Client{
		Base: srv.URL, Tenant: "ci",
		HTTP:    &http.Client{Transport: tr},
		Backoff: time.Millisecond,
	}
	v, rejected, retries, err := c.SubmitRetry(context.Background(), testSpec(), "idem-9")
	if err != nil {
		t.Fatalf("SubmitRetry: %v (rejected %d, retries %d)", err, rejected, retries)
	}
	if v.ID != "fj-000009" || rejected != 0 || retries != 3 {
		t.Errorf("SubmitRetry = %+v, rejected %d, retries %d; want fj-000009 with 3 transient retries", v, rejected, retries)
	}
	// Only the post-fault attempt reached the server, with the key intact.
	if got := submits.Load(); got != 1 {
		t.Errorf("server saw %d submits, want 1 (faults never arrived)", got)
	}
	mu.Lock()
	if keys["idem-9"] != 1 {
		t.Errorf("idempotency keys seen = %v, want idem-9 once", keys)
	}
	mu.Unlock()
}

// TestSubmitRetryStopsOnPermanentError: a 400 is not retried.
func TestSubmitRetryStopsOnPermanentError(t *testing.T) {
	var submits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "ci", Backoff: time.Millisecond}
	_, _, retries, err := c.SubmitRetry(context.Background(), testSpec(), "k")
	if err == nil || retries != 0 {
		t.Fatalf("err = %v retries = %d, want immediate permanent failure", err, retries)
	}
	var se *fleet.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("error %v should wrap StatusError 400", err)
	}
	if submits.Load() != 1 {
		t.Fatalf("server saw %d submits, want 1", submits.Load())
	}
}

// TestWaitTerminalToleratesTransientPollFailures: Get failures that are
// retryable keep the poll alive; the wait still lands on done.
func TestWaitTerminalToleratesTransientPollFailures(t *testing.T) {
	var gets atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/fj-1", func(w http.ResponseWriter, r *http.Request) {
		n := gets.Add(1)
		if n <= 2 {
			http.Error(w, `{"error":"mid-restart"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		state := "running"
		if n >= 4 {
			state = "done"
		}
		w.Write([]byte(`{"id":"fj-1","tenant":"ci","class":"batch","state":"` + state + `","submitted_at":"2026-01-01T00:00:00Z"}`)) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := &Client{Base: srv.URL, Poll: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.WaitTerminal(ctx, "fj-1")
	if err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
	if v.State != "done" || gets.Load() < 4 {
		t.Fatalf("final = %+v after %d polls", v, gets.Load())
	}

	// An unknown job is permanent: no polling loop.
	gets.Store(0)
	if _, err := c.WaitTerminal(ctx, "nope"); err == nil {
		t.Fatal("unknown job should fail immediately")
	}
}
